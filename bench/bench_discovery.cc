// Dependency-mining bench: wall-time of the lattice miner vs mined row
// count and thread count on the SSB universe, plus the acceptance check
// that the date-hierarchy FDs the paper exploits are discovered at SF-0.1.
// Thread sweeps also verify the determinism contract: every thread count
// must produce the identical dependency set.
//
//   $ ./bench_discovery [--scale=0.1] [--arity=2] [--max_rows=8192]
//                       [--full=0] [--threads=1,2,4,8] [--fast]
//
// `--full=1` mines every universe row (exact verdicts, minutes at SF-0.1);
// the default mines uniform samples, which is what the designer pipeline
// does via DesignContext::MineDependencies. `--fast` shrinks the scale,
// row grid, and thread sweep for smoke/CI runs. Runs under the benchkit
// repetition harness; --json emits schema-v2 BENCH_discovery.json.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "discovery/fd_miner.h"

using namespace coradd;
using namespace coradd::bench;

namespace {

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

bool SameDependencies(const DiscoveredDependencies& a,
                      const DiscoveredDependencies& b) {
  if (a.fds().size() != b.fds().size()) return false;
  for (size_t i = 0; i < a.fds().size(); ++i) {
    if (a.fds()[i].lhs != b.fds()[i].lhs || a.fds()[i].rhs != b.fds()[i].rhs ||
        a.fds()[i].error != b.fds()[i].error) {
      return false;
    }
  }
  return a.keys() == b.keys() && a.constant_columns() == b.constant_columns();
}

size_t CountExact(const DiscoveredDependencies& d) {
  size_t n = 0;
  for (const auto& fd : d.fds()) n += fd.exact() ? 1 : 0;
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  Harness h("discovery", argc, argv);
  const double scale = FlagDouble(argc, argv, "scale", h.fast() ? 0.02 : 0.1);
  const size_t arity =
      static_cast<size_t>(FlagDouble(argc, argv, "arity", 2));
  const size_t max_rows = static_cast<size_t>(
      FlagDouble(argc, argv, "max_rows", h.fast() ? 2048 : 8192));
  const bool full = FlagDouble(argc, argv, "full", 0) != 0;
  std::vector<size_t> thread_counts;
  for (const std::string& t :
       Split(FlagValue(argc, argv, "threads", h.fast() ? "1,2" : "1,2,4"),
             ',')) {
    thread_counts.push_back(static_cast<size_t>(std::atoi(t.c_str())));
  }
  BenchJson& json = h.json();
  json.Config("scale", scale);
  json.Config("arity", static_cast<double>(arity));
  json.Config("max_rows", static_cast<double>(max_rows));

  h.Run([&](const RunPass& pass) {
    ssb::SsbOptions options;
    options.scale_factor = scale;
    auto catalog = ssb::MakeCatalog(options);
    Universe universe(*catalog, *catalog->GetFactInfo("lineorder"));
    if (pass.reporting) {
      std::printf("SSB scale %.3g: %zu universe rows, %zu columns\n", scale,
                  universe.NumRows(), universe.NumColumns());
    }

    // --- Wall-time vs row count and thread count. ---
    std::vector<size_t> row_grid;
    for (size_t r = 1024; r <= max_rows; r *= 2) row_grid.push_back(r);
    if (full) row_grid.push_back(universe.NumRows());

    if (pass.reporting) {
      PrintHeader("mining wall-time (lhs arity <= " +
                      std::to_string(arity) + ")",
                  {"rows", "threads", "wall", "exact", "afd", "soft",
                   "speedup", "same"});
    }
    for (size_t rows : row_grid) {
      const MinerInput input =
          (rows == universe.NumRows())
              ? MinerInput::FromUniverse(universe)
              : MinerInput::FromUniverse(universe, rows, /*seed=*/17);
      double base_seconds = 0.0;
      DiscoveredDependencies reference;
      for (size_t threads : thread_counts) {
        DependencyMinerOptions mopt;
        mopt.max_lhs_arity = arity;
        mopt.num_threads = threads;
        DependencyMiner miner(mopt);
        const auto t0 = std::chrono::steady_clock::now();
        DiscoveredDependencies report = miner.Mine(input);
        const double wall = Seconds(t0);
        if (rows == row_grid.back()) {
          h.Sample(StrFormat("mine_rows%zu_t%zu_seconds", rows, threads),
                   wall);
        }
        bool same = true;
        if (threads == thread_counts.front()) {
          base_seconds = wall;
          reference = std::move(report);
        } else {
          same = SameDependencies(reference, report);
        }
        const DiscoveredDependencies& r =
            threads == thread_counts.front() ? reference : report;
        if (!pass.reporting) continue;
        PrintRow({std::to_string(input.NumRows()),
                  std::to_string(threads), HumanSeconds(wall),
                  std::to_string(CountExact(r)),
                  std::to_string(r.fds().size() - CountExact(r)),
                  std::to_string(r.soft_correlations().size()),
                  StrFormat("%.2fx", base_seconds / wall),
                  same ? "yes" : "NO (BUG)"});
        json.Row({{"rows",
                   BenchJson::Num(static_cast<double>(input.NumRows()))},
                  {"threads", BenchJson::Num(static_cast<double>(threads))},
                  {"wall_seconds", BenchJson::Num(wall)},
                  {"exact_fds",
                   BenchJson::Num(static_cast<double>(CountExact(r)))},
                  {"afds", BenchJson::Num(static_cast<double>(
                               r.fds().size() - CountExact(r)))},
                  {"soft", BenchJson::Num(static_cast<double>(
                               r.soft_correlations().size()))},
                  {"deterministic",
                   same ? std::string("true") : std::string("false")}});
      }
    }

    // --- The paper's date hierarchy at this scale (acceptance check). ---
    if (pass.reporting) {
      DependencyMinerOptions mopt;
      mopt.max_lhs_arity = 2;
      mopt.num_threads = thread_counts.back();
      const MinerInput input = full ? MinerInput::FromUniverse(universe)
                                    : MinerInput::FromUniverse(universe,
                                                               max_rows, 17);
      const DiscoveredDependencies deps = DependencyMiner(mopt).Mine(input);
      std::printf("\ndate-hierarchy dependencies (%s rows):\n",
                  full ? "all" : std::to_string(input.NumRows()).c_str());
      const int datekey = deps.ColumnIndex("d_datekey");
      for (const char* rhs : {"d_year", "d_monthnuminyear", "d_yearmonthnum",
                              "d_yearmonth", "d_weeknuminyear"}) {
        const int r = deps.ColumnIndex(rhs);
        const bool found = datekey >= 0 && r >= 0 &&
                           deps.DeterminesExactly({datekey}, r);
        std::printf("  d_datekey -> %-18s %s\n", rhs,
                    found ? "exact" : "NOT FOUND");
      }
    }
  });
  return h.Finish();
}
