// bench_compare — statistical diff of BENCH_*.json perf records.
//
//   bench_compare <baseline.json> <current.json> [options]
//   bench_compare --baseline-dir=bench/baselines --run-dir=build [options]
//
// Options:
//   --metrics=wall_seconds     comma-separated metric names, or "all"
//   --min-effect=0.05          relative mean delta that counts as a change
//   --noise-floor=1e-4         both means below this => NO-CHANGE
//   --singleton-threshold=0.3  fallback threshold for single-shot (v1) files
//   --report=FILE              also write the report text to FILE
//   --gate                     CI mode: exit 1 on REGRESSION or error,
//                              0 otherwise (improvement / noise pass)
//
// Exit codes without --gate: 0 NO-CHANGE, 10 IMPROVEMENT, 11 TOO-NOISY,
// 12 REGRESSION, 1 error. Directory mode aggregates over every
// BENCH_*.json present in the run dir; the overall verdict is the most
// severe metric verdict. See docs/BENCHMARKING.md.
#include <cstdio>
#include <string>
#include <vector>

#include "benchkit/compare.h"
#include "benchkit/flags.h"
#include "common/string_util.h"

using namespace coradd;
using namespace coradd::benchkit;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: bench_compare <baseline.json> <current.json> [options]\n"
      "       bench_compare --baseline-dir=DIR --run-dir=DIR [options]\n"
      "options: --metrics=NAMES|all --min-effect=F --noise-floor=F\n"
      "         --singleton-threshold=F --report=FILE --gate\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CompareOptions options;
  options.min_effect = FlagDouble(argc, argv, "min-effect", 0.05);
  options.noise_floor_seconds = FlagDouble(argc, argv, "noise-floor", 1e-4);
  options.singleton_threshold =
      FlagDouble(argc, argv, "singleton-threshold", 0.30);
  const std::string metrics = FlagValue(argc, argv, "metrics", "");
  if (!metrics.empty()) {
    for (const std::string& m : Split(metrics, ',')) {
      if (!m.empty()) options.metrics.push_back(m);
    }
  }
  const bool gate = FlagBool(argc, argv, "gate");
  const std::string report_path = FlagValue(argc, argv, "report", "");
  const std::string baseline_dir = FlagValue(argc, argv, "baseline-dir", "");
  const std::string run_dir = FlagValue(argc, argv, "run-dir", "");

  Result<CompareReport> result = Status::InvalidArgument("unset");
  if (!baseline_dir.empty() || !run_dir.empty()) {
    if (baseline_dir.empty() || run_dir.empty()) return Usage();
    result = CompareDirs(baseline_dir, run_dir, options);
  } else {
    // Positional: the first two non-flag arguments.
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
      if (argv[i][0] != '-') files.push_back(argv[i]);
    }
    if (files.size() != 2) return Usage();
    result = CompareFiles(files[0], files[1], options);
  }
  if (!result.ok()) {
    std::fprintf(stderr, "bench_compare: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const CompareReport& report = *result;
  const std::string text = RenderReport(report);
  std::fputs(text.c_str(), stdout);
  if (!report_path.empty()) {
    std::FILE* f = std::fopen(report_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_compare: cannot write %s\n",
                   report_path.c_str());
      return 1;
    }
    std::fputs(text.c_str(), f);
    std::fclose(f);
  }
  if (gate) {
    return report.overall == Verdict::kRegression ? 1 : 0;
  }
  return VerdictExitCode(report.overall);
}
