// Reproduces Figure 10: cost-model error versus the number of fragments.
// One query with a commitdate predicate runs via a secondary structure on
// fact tables clustered by keys of decreasing correlation (orderdate ->
// ... -> orderkey). The commercial (oblivious) model predicts the same
// cost regardless of clustering, while the real runtime varies ~25x; the
// correlation-aware model tracks it. Runs under the benchkit repetition
// harness; --json emits schema-v2 BENCH_fig10_costmodel_error.json.
#include "cost/correlation_cost_model.h"
#include "cost/oblivious_cost_model.h"
#include "bench/bench_util.h"
#include "exec/executor.h"

using namespace coradd;
using namespace coradd::bench;

int main(int argc, char** argv) {
  Harness h("fig10_costmodel_error", argc, argv);
  const double scale = FlagDouble(argc, argv, "scale", 0.02);
  BenchJson& json = h.json();
  json.Config("scale", scale);

  h.Run([&](const RunPass& pass) {
    Fixture f = MakeSsbFixture(scale, 1024);
    const UniverseStats* stats = f.context->StatsForFact("lineorder");
    const Universe& u = stats->universe();
    CorrelationCostModel aware(&f.context->registry());
    ObliviousCostModel oblivious(&f.context->registry());
    Materializer materializer(f.context->UniverseForFact("lineorder"),
                              stats->options().disk);
    QueryExecutor executor(&f.context->registry(), &aware);

    // The A-2.1 query: AVG(price*discount) WHERE commitdate = <value>.
    // A range of a week keeps enough matching tuples at bench scale.
    Query q;
    q.id = "fig10";
    q.fact_table = "lineorder";
    q.predicates = {Predicate::Range("lo_commitdate", 19940601, 19940607)};
    q.aggregates = {{"lo_extendedprice", "lo_discount"}};

    // Clusterings from strongly correlated to uncorrelated with commitdate.
    const std::vector<std::string> clusterings = {
        "lo_commitdate", "lo_orderdate", "lo_orderkey", "lo_custkey",
        "lo_partkey"};

    if (pass.reporting) {
      PrintHeader(
          "Figure 10: errors in cost model (one query, many clusterings)",
          {"clustered_on", "fragments", "real[s]", "aware[s]",
           "commercial[s]"});
    }
    for (const auto& key : clusterings) {
      MvSpec spec;
      spec.name = "fact_" + key;
      spec.fact_table = "lineorder";
      for (size_t c = 0; c < u.fact_table().schema().NumColumns(); ++c) {
        spec.columns.push_back(u.fact_table().schema().Column(c).name);
      }
      spec.clustered_key = {key};
      spec.is_fact_recluster = true;

      CmSpec cm;
      cm.key_columns = {"lo_commitdate"};
      auto obj = materializer.Materialize(spec, {cm});
      DiskModel disk(stats->options().disk);
      // Force the CM plan, as the paper's query rewriting does: the point of
      // Fig 10 is the cost of the *same secondary plan* under different
      // clusterings, even where a full scan would win.
      const QueryRunResult run = executor.RunWithCm(q, *obj, 0, &disk);

      const CostBreakdown aware_est =
          aware.SecondaryPathCost(q, spec, {"lo_commitdate"});
      const CostBreakdown oblivious_est =
          oblivious.SecondaryCost(q, spec, {"lo_commitdate"});

      if (!pass.reporting) continue;
      PrintRow({key, std::to_string(run.fragments),
                StrFormat("%.4f", run.seconds),
                StrFormat("%.4f", aware_est.seconds),
                StrFormat("%.4f", oblivious_est.seconds)});
      json.Row({{"clustered_on", BenchJson::Quote(key)},
                {"fragments",
                 BenchJson::Num(static_cast<double>(run.fragments))},
                {"real_seconds", BenchJson::Num(run.seconds)},
                {"aware_seconds", BenchJson::Num(aware_est.seconds)},
                {"commercial_seconds",
                 BenchJson::Num(oblivious_est.seconds)}});
    }
    if (pass.reporting) {
      std::printf(
          "\nPaper shape check: the commercial column is flat while real\n"
          "runtime grows ~25x with fragments; the aware column tracks "
          "real.\n");
    }
  });
  return h.Finish();
}
