// Reproduces Figure 11: the augmented 52-query SSB workload — executed
// total runtime of CORADD vs the Naive designer (dedicated MVs +
// re-clusterings only) vs the commercial proxy, across budgets; plus the
// §7.2 designer-runtime breakdown. Paper shape: CORADD 1.5-2x better at
// tight budgets and 4-5x at large ones; Naive beats Commercial but trails
// CORADD because dedicated MVs share nothing.
//
// Designs are produced serially per budget, then every (designer, budget)
// cell is executed in one parallel RunMany sweep. --json emits
// BENCH_fig11_ssb.json.
#include "bench/bench_util.h"

using namespace coradd;
using namespace coradd::bench;

int main(int argc, char** argv) {
  WallTimer timer;
  const double scale = FlagDouble(argc, argv, "scale", 0.005);
  BenchJson json("fig11_ssb", argc, argv);
  json.Config("scale", scale);
  Fixture f = MakeSsbFixture(scale, 1024, /*augmented=*/true);
  std::printf("Augmented SSB: %zu queries, %zu lineorder rows\n",
              f.workload.queries.size(),
              f.catalog->GetTable("lineorder")->NumRows());

  CoraddDesigner coradd(f.context.get(), BenchCoraddOptions());
  NaiveDesigner naive(f.context.get());
  CommercialDesigner commercial(f.context.get());
  DesignEvaluator evaluator(f.context.get(), /*cache_capacity=*/64);

  double coradd_design_time = 0.0;
  SweepRunner sweep(&evaluator, &f.workload);
  for (uint64_t budget : BudgetGrid(f.fact_heap_bytes,
                                    {0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0})) {
    DatabaseDesign dc = coradd.Design(f.workload, budget);
    coradd_design_time += dc.design_seconds;
    sweep.Add("coradd", budget, std::move(dc), &coradd.model());
    sweep.Add("naive", budget, naive.Design(f.workload, budget),
              &naive.model());
    sweep.Add("commercial", budget, commercial.Design(f.workload, budget),
              &commercial.model());
  }
  const double design_done = timer.Seconds();
  const std::vector<WorkloadRunResult> runs = sweep.RunAll();
  const double eval_seconds = timer.Seconds() - design_done;

  PrintHeader("Figure 11: comparison on augmented SSB (52 queries)",
              {"budget", "CORADD[s]", "Naive[s]", "Commercial",
               "comm/coradd"});
  for (size_t i = 0; i + 2 < runs.size(); i += 3) {
    const double tc = runs[i].total_seconds;
    const double tn = runs[i + 1].total_seconds;
    const double tm = runs[i + 2].total_seconds;
    PrintRow({HumanBytes(sweep.budget(i)), StrFormat("%.3f", tc),
              StrFormat("%.3f", tn), StrFormat("%.3f", tm),
              StrFormat("%.2fx", tm / std::max(1e-12, tc))});
    for (size_t k : {i, i + 1, i + 2}) {
      json.Row({{"designer", BenchJson::Quote(sweep.label(k))},
                {"budget_bytes",
                 BenchJson::Num(static_cast<double>(sweep.budget(k)))},
                {"simulated_seconds",
                 BenchJson::Num(runs[k].total_seconds)}});
    }
  }

  const CoraddRunInfo& info = coradd.last_run();
  std::printf("\nDesigner runtime breakdown (last budget; cf. §7.2's "
              "22min stats / 1h candgen / 6h feedback at paper scale):\n");
  std::printf("  candidates enumerated : %zu (+%zu via feedback, %d iters)\n",
              info.candidates_enumerated, info.feedback_candidates_added,
              info.feedback_iterations);
  std::printf("  after domination      : %zu\n",
              info.candidates_after_domination);
  std::printf("  candgen time          : %s\n",
              HumanSeconds(info.candgen_seconds).c_str());
  std::printf("  solve+feedback time   : %s\n",
              HumanSeconds(info.solve_seconds).c_str());
  std::printf("  total CORADD design time across budgets: %s\n",
              HumanSeconds(coradd_design_time).c_str());
  std::printf(
      "\nPaper shape check: CORADD fastest at every budget; Naive between\n"
      "CORADD and Commercial, converging slowly as dedicated MVs fit.\n");
  std::printf("wall time: %.1fs (fixture+design %.1fs, evaluation %.1fs)\n",
              timer.Seconds(), design_done, eval_seconds);
  json.Config("eval_seconds", eval_seconds);
  json.Write(timer.Seconds());
  return 0;
}
