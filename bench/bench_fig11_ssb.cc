// Reproduces Figure 11: the augmented 52-query SSB workload — executed
// total runtime of CORADD vs the Naive designer (dedicated MVs +
// re-clusterings only) vs the commercial proxy, across budgets; plus the
// §7.2 designer-runtime breakdown. Paper shape: CORADD 1.5-2x better at
// tight budgets and 4-5x at large ones; Naive beats Commercial but trails
// CORADD because dedicated MVs share nothing.
//
// The CORADD grid goes through CoraddDesigner::DesignMany — one shared
// candidate pool and price table, solves warm-started budget to budget on
// the parallel solver engine — while the (const, thread-safe) baseline
// designers fill their cells concurrently on the shared pool. Every
// (designer, budget) cell is then executed in one parallel RunMany sweep.
// The whole pipeline (fixture build included) runs under the benchkit
// repetition harness; --json emits schema-v2 BENCH_fig11_ssb.json with
// wall / design / eval sample arrays.
#include "common/thread_pool.h"
#include "bench/bench_util.h"

using namespace coradd;
using namespace coradd::bench;

int main(int argc, char** argv) {
  Harness h("fig11_ssb", argc, argv);
  const double scale = FlagDouble(argc, argv, "scale", 0.005);
  // --mine additionally runs dependency discovery on the fixture before
  // designing (off by default: fig11 itself doesn't need it). The traced
  // CI run uses it so one trace file covers every subsystem, discovery
  // included. Deterministic, so it's safe under --trace bit-identity.
  const bool mine = FlagBool(argc, argv, "mine");
  BenchJson& json = h.json();
  json.Config("scale", scale);
  json.Config("mine", mine ? "true" : "false");

  h.Run([&](const RunPass& pass) {
    WallTimer timer;
    Fixture f = MakeSsbFixture(scale, 1024, /*augmented=*/true);
    if (mine) f.context->MineAllDependencies();
    if (pass.reporting) {
      std::printf("Augmented SSB: %zu queries, %zu lineorder rows\n",
                  f.workload.queries.size(),
                  f.catalog->GetTable("lineorder")->NumRows());
    }
    const double fixture_done = timer.Seconds();

    CoraddDesigner coradd(f.context.get(), BenchCoraddOptions());
    NaiveDesigner naive(f.context.get());
    CommercialDesigner commercial(f.context.get());
    DesignEvaluator evaluator(f.context.get(), /*cache_capacity=*/64);

    const std::vector<uint64_t> budgets =
        BudgetGrid(f.fact_heap_bytes, {0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0});

    // CORADD: warm-started chain across the grid (shared candidates/prices).
    std::vector<CoraddRunInfo> infos;
    std::vector<DatabaseDesign> coradd_designs =
        coradd.DesignMany(f.workload, budgets, &infos);

    // Baselines: every (designer, budget) cell designs concurrently.
    std::vector<DatabaseDesign> naive_designs(budgets.size());
    std::vector<DatabaseDesign> commercial_designs(budgets.size());
    ThreadPool::Shared().ParallelFor(budgets.size() * 2, [&](size_t i) {
      const size_t b = i / 2;
      if (i % 2 == 0) {
        naive_designs[b] = naive.Design(f.workload, budgets[b]);
      } else {
        commercial_designs[b] = commercial.Design(f.workload, budgets[b]);
      }
    });

    double coradd_design_time = 0.0;
    for (const auto& d : coradd_designs) coradd_design_time += d.design_seconds;
    SolverStats total_stats;
    for (const auto& info : infos) total_stats.Accumulate(info.solver_stats);

    SweepRunner sweep(&evaluator, &f.workload);
    for (size_t b = 0; b < budgets.size(); ++b) {
      sweep.Add("coradd", budgets[b], std::move(coradd_designs[b]),
                &coradd.model());
      sweep.Add("naive", budgets[b], std::move(naive_designs[b]),
                &naive.model());
      sweep.Add("commercial", budgets[b], std::move(commercial_designs[b]),
                &commercial.model());
    }
    const double design_done = timer.Seconds();
    const std::vector<WorkloadRunResult> runs = sweep.RunAll();
    const double eval_seconds = timer.Seconds() - design_done;
    h.Sample("design_seconds", design_done - fixture_done);
    h.Sample("eval_seconds", eval_seconds);

    if (!pass.reporting) return;
    PrintHeader("Figure 11: comparison on augmented SSB (52 queries)",
                {"budget", "CORADD[s]", "Naive[s]", "Commercial",
                 "comm/coradd"});
    for (size_t i = 0; i + 2 < runs.size(); i += 3) {
      const double tc = runs[i].total_seconds;
      const double tn = runs[i + 1].total_seconds;
      const double tm = runs[i + 2].total_seconds;
      PrintRow({HumanBytes(sweep.budget(i)), StrFormat("%.3f", tc),
                StrFormat("%.3f", tn), StrFormat("%.3f", tm),
                StrFormat("%.2fx", tm / std::max(1e-12, tc))});
      for (size_t k : {i, i + 1, i + 2}) {
        json.Row({{"designer", BenchJson::Quote(sweep.label(k))},
                  {"budget_bytes",
                   BenchJson::Num(static_cast<double>(sweep.budget(k)))},
                  {"simulated_seconds",
                   BenchJson::Num(runs[k].total_seconds)},
                  {"design_seconds",
                   BenchJson::Num(sweep.design(k).design_seconds)}});
      }
    }

    PrintHeader("CORADD designer profile per budget",
                {"budget", "design[s]", "solve[s]", "nodes", "warm",
                 "optimal"});
    for (size_t b = 0; b < budgets.size(); ++b) {
      const SolverStats& st = infos[b].solver_stats;
      PrintRow({HumanBytes(budgets[b]),
                StrFormat("%.2f", sweep.design(3 * b).design_seconds),
                StrFormat("%.2f", infos[b].solve_seconds),
                std::to_string(st.nodes_expanded),
                StrFormat("%llu/%llu",
                          static_cast<unsigned long long>(st.warm_wins),
                          static_cast<unsigned long long>(st.warm_solves)),
                st.proved_optimal ? "yes" : "no"});
    }

    const CoraddRunInfo& info = infos.back();
    std::printf("\nDesigner runtime breakdown (last budget; cf. §7.2's "
                "22min stats / 1h candgen / 6h feedback at paper scale):\n");
    std::printf("  candidates enumerated : %zu (+%zu via feedback, %d iters)\n",
                info.candidates_enumerated, info.feedback_candidates_added,
                info.feedback_iterations);
    std::printf("  after domination      : %zu\n",
                info.candidates_after_domination);
    std::printf("  candgen time          : %s (shared across the grid)\n",
                HumanSeconds(info.candgen_seconds).c_str());
    std::printf("  pricing+domination    : %s (shared across the grid)\n",
                HumanSeconds(info.pricing_seconds).c_str());
    std::printf("  solve+feedback time   : %s (last budget)\n",
                HumanSeconds(info.solve_seconds).c_str());
    std::printf("  total CORADD design time across budgets: %s\n",
                HumanSeconds(coradd_design_time).c_str());
    std::printf("  solver: %s\n", total_stats.ToString().c_str());
    std::printf(
        "\nPaper shape check: CORADD fastest at every budget; Naive between\n"
        "CORADD and Commercial, converging slowly as dedicated MVs fit.\n");
    std::printf(
        "wall time: %.1fs (fixture %.1fs, design %.1fs, evaluation %.1fs)\n",
        timer.Seconds(), fixture_done, design_done - fixture_done,
        eval_seconds);
    json.Config("eval_seconds", eval_seconds);
    json.Config("design_seconds", design_done - fixture_done);
    json.Config("solver_nodes",
                static_cast<double>(total_stats.nodes_expanded));
    json.Config("solver_warm_solves",
                static_cast<double>(total_stats.warm_solves));
    CandGenStats candgen = coradd.candgen_stats();
    candgen.Accumulate(naive.candgen_stats());
    candgen.Accumulate(commercial.candgen_stats());
    ReportCandgen(&json, *f.context, candgen);
  });
  return h.Finish();
}
