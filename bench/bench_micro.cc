// Microbenchmarks (google-benchmark) for the substrate hot paths: B+Tree
// range lookups, secondary-index lookups, CM lookups, fragment coalescing,
// AE estimation, k-means, and the simplex solver. These guard the designer
// runtime budget (§7.2 reports CORADD at 7.5h on paper hardware; our
// reproduction must stay interactive).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "ilp/lp.h"
#include "mv/kmeans.h"
#include "stats/ae_estimator.h"
#include "storage/clustered_table.h"
#include "storage/layout.h"
#include "storage/secondary_index.h"

namespace coradd {
namespace {

std::unique_ptr<ClusteredTable> MakeTable(size_t rows) {
  ColumnDef k1{"k1", ValueType::kInt, 4, {}};
  ColumnDef k2{"k2", ValueType::kInt, 4, {}};
  ColumnDef v{"v", ValueType::kInt, 4, {}};
  auto t = std::make_unique<Table>(Schema({k1, k2, v}), "t");
  Rng rng(1);
  t->Reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    t->AppendRow({static_cast<int64_t>(rng.Uniform(1000)),
                  static_cast<int64_t>(rng.Uniform(100)),
                  static_cast<int64_t>(rng.Uniform(1 << 20))});
  }
  return std::make_unique<ClusteredTable>(std::move(t),
                                          std::vector<int>{0, 1}, 8192);
}

void BM_ClusteredEqualRange(benchmark::State& state) {
  auto ct = MakeTable(static_cast<size_t>(state.range(0)));
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ct->EqualRange({static_cast<int64_t>(rng.Uniform(1000))}));
  }
}
BENCHMARK(BM_ClusteredEqualRange)->Arg(100000)->Arg(1000000);

void BM_SecondaryLookupRange(benchmark::State& state) {
  auto ct = MakeTable(static_cast<size_t>(state.range(0)));
  SecondaryBTreeIndex idx(ct.get(), 2);
  Rng rng(3);
  for (auto _ : state) {
    const int64_t lo = static_cast<int64_t>(rng.Uniform(1 << 20));
    benchmark::DoNotOptimize(idx.LookupRange(lo, lo + 1000));
  }
}
BENCHMARK(BM_SecondaryLookupRange)->Arg(100000)->Arg(1000000);

void BM_CoalescePages(benchmark::State& state) {
  Rng rng(4);
  std::vector<uint64_t> pages;
  for (int i = 0; i < state.range(0); ++i) pages.push_back(rng.Uniform(100000));
  std::sort(pages.begin(), pages.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(CoalescePages(pages, 4));
  }
}
BENCHMARK(BM_CoalescePages)->Arg(1000)->Arg(100000);

void BM_AeEstimate(benchmark::State& state) {
  Rng rng(5);
  std::vector<int64_t> sample;
  for (int i = 0; i < state.range(0); ++i) {
    sample.push_back(static_cast<int64_t>(rng.Uniform(5000)));
  }
  std::sort(sample.begin(), sample.end());
  for (auto _ : state) {
    const auto profile =
        SampleFrequencyProfile::FromSortedValues(sample, 10000000);
    benchmark::DoNotOptimize(EstimateDistinctAe(profile));
  }
}
BENCHMARK(BM_AeEstimate)->Arg(1024)->Arg(8192);

void BM_KMeans(benchmark::State& state) {
  Rng gen(6);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 52; ++i) {
    std::vector<double> p(static_cast<size_t>(state.range(0)));
    for (auto& x : p) x = gen.UniformDouble();
    points.push_back(std::move(p));
  }
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KMeans(points, 8, &rng));
  }
}
BENCHMARK(BM_KMeans)->Arg(40)->Arg(80);

void BM_SimplexSmall(benchmark::State& state) {
  Rng rng(8);
  LinearProgram lp;
  const int n = static_cast<int>(state.range(0));
  lp.num_vars = n;
  for (int j = 0; j < n; ++j) {
    lp.objective.push_back(-1.0 - static_cast<double>(rng.Uniform(10)));
  }
  for (int i = 0; i < n / 2; ++i) {
    std::vector<double> row(static_cast<size_t>(n));
    for (auto& v : row) v = static_cast<double>(rng.Uniform(4));
    lp.AddRow(std::move(row), 40.0 + static_cast<double>(rng.Uniform(40)));
  }
  lp.upper_bounds.assign(static_cast<size_t>(n), 5.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveLp(lp));
  }
}
BENCHMARK(BM_SimplexSmall)->Arg(30)->Arg(100);

}  // namespace
}  // namespace coradd

BENCHMARK_MAIN();
