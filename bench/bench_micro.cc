// Microbenchmarks for the substrate hot paths: B+Tree range lookups,
// secondary-index lookups, fragment coalescing, AE estimation, k-means,
// and the simplex solver. These guard the designer runtime budget (§7.2
// reports CORADD at 7.5h on paper hardware; our reproduction must stay
// interactive).
//
// Runs on benchkit::MeasureThroughput (batch-doubling calibration, then
// warmup + N timed batches; samples are seconds per iteration), replacing
// the earlier google-benchmark binary so the micro numbers flow through
// the same schema-v2 BENCH_micro.json / bench_compare pipeline as every
// other bench. `--fast` drops the large-table sizes for smoke/CI runs.
//
// The obs_* cases measure the tracing/metrics substrate itself:
// obs_span_disabled is the cost every instrumented scope pays when tracing
// is off, and `--assert-span-ns=N` turns its mean into a hard gate (exit 1
// above N ns/span) — the obs_overhead_smoke ctest pins the <25 ns contract.
// `--only=<substr>` runs just the matching cases.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "ilp/lp.h"
#include "mv/kmeans.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/ae_estimator.h"
#include "storage/clustered_table.h"
#include "storage/layout.h"
#include "storage/secondary_index.h"

using namespace coradd;
using namespace coradd::bench;

namespace {

std::unique_ptr<ClusteredTable> MakeTable(size_t rows) {
  ColumnDef k1{"k1", ValueType::kInt, 4, {}};
  ColumnDef k2{"k2", ValueType::kInt, 4, {}};
  ColumnDef v{"v", ValueType::kInt, 4, {}};
  auto t = std::make_unique<Table>(Schema({k1, k2, v}), "t");
  Rng rng(1);
  t->Reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    t->AppendRow({static_cast<int64_t>(rng.Uniform(1000)),
                  static_cast<int64_t>(rng.Uniform(100)),
                  static_cast<int64_t>(rng.Uniform(1 << 20))});
  }
  return std::make_unique<ClusteredTable>(std::move(t),
                                          std::vector<int>{0, 1}, 8192);
}

/// Keeps the optimizer from discarding a computed result (the moral
/// equivalent of benchmark::DoNotOptimize).
template <typename T>
inline void Consume(T&& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

std::string HumanPerIter(double seconds) {
  if (seconds < 1e-6) return StrFormat("%.1f ns", seconds * 1e9);
  if (seconds < 1e-3) return StrFormat("%.2f us", seconds * 1e6);
  if (seconds < 1.0) return StrFormat("%.2f ms", seconds * 1e3);
  return StrFormat("%.3f s", seconds);
}

/// Case-name filter from --only=<substr>; empty matches everything.
std::string g_only;

bool CaseSelected(const std::string& name) {
  return g_only.empty() || name.find(g_only) != std::string::npos;
}

/// Measures one micro case and records it as a metric named `name` in the
/// shared BENCH_micro.json. Returns the mean seconds per iteration (0.0
/// when the case was filtered out by --only).
template <typename Fn>
double RunCase(Harness& h, const std::string& name, Fn&& op) {
  if (!CaseSelected(name)) return 0.0;
  ThroughputOptions opts;
  opts.warmup = std::max(1, h.warmup());
  opts.repetitions = h.repetitions();
  const ThroughputResult r = MeasureThroughput(opts, op);
  const SampleStats s = Summarize(r.samples);
  PrintRow({name, HumanPerIter(s.mean),
            "±" + HumanPerIter(s.ci95_half),
            StrFormat("%.1f%%", 100.0 * s.rsd()),
            std::to_string(r.iterations)});
  h.json().MetricSamples(name, "s", r.samples, r.warmup_samples);
  return s.mean;
}

}  // namespace

int main(int argc, char** argv) {
  Harness h("micro", argc, argv);
  g_only = FlagValue(argc, argv, "only", "");
  const double assert_span_ns =
      FlagDouble(argc, argv, "assert-span-ns", 0.0);
  const size_t big_rows = h.fast() ? 100000 : 1000000;

  PrintHeader("substrate microbenchmarks (per-iteration, 95% CI)",
              {"case", "mean", "ci95", "rsd", "iters/batch"});

  // Table sizes: 100k always; the 1M variants only outside --fast (the
  // table build itself dominates smoke runtime).
  std::vector<size_t> table_rows = {100000};
  if (!h.fast()) table_rows.push_back(big_rows);
  for (const size_t rows : table_rows) {
    auto ct = MakeTable(rows);
    Rng rng(2);
    RunCase(h, StrFormat("clustered_equal_range_%zuk", rows / 1000), [&] {
      Consume(ct->EqualRange({static_cast<int64_t>(rng.Uniform(1000))}));
    });
    SecondaryBTreeIndex idx(ct.get(), 2);
    Rng rng2(3);
    RunCase(h, StrFormat("secondary_lookup_range_%zuk", rows / 1000), [&] {
      const int64_t lo = static_cast<int64_t>(rng2.Uniform(1 << 20));
      Consume(idx.LookupRange(lo, lo + 1000));
    });
  }
  for (const size_t n : {size_t{1000}, size_t{100000}}) {
    Rng rng(4);
    std::vector<uint64_t> pages;
    for (size_t i = 0; i < n; ++i) pages.push_back(rng.Uniform(100000));
    std::sort(pages.begin(), pages.end());
    RunCase(h, StrFormat("coalesce_pages_%zu", n),
            [&] { Consume(CoalescePages(pages, 4)); });
  }
  for (const size_t n : {size_t{1024}, size_t{8192}}) {
    Rng rng(5);
    std::vector<int64_t> sample;
    for (size_t i = 0; i < n; ++i) {
      sample.push_back(static_cast<int64_t>(rng.Uniform(5000)));
    }
    std::sort(sample.begin(), sample.end());
    RunCase(h, StrFormat("ae_estimate_%zu", n), [&] {
      const auto profile =
          SampleFrequencyProfile::FromSortedValues(sample, 10000000);
      Consume(EstimateDistinctAe(profile));
    });
  }
  for (const size_t dims : {size_t{40}, size_t{80}}) {
    Rng gen(6);
    std::vector<std::vector<double>> points;
    for (int i = 0; i < 52; ++i) {
      std::vector<double> p(dims);
      for (auto& x : p) x = gen.UniformDouble();
      points.push_back(std::move(p));
    }
    Rng rng(7);
    RunCase(h, StrFormat("kmeans_52x%zu", dims),
            [&] { Consume(KMeans(points, 8, &rng)); });
  }
  for (const int n : {30, 100}) {
    Rng rng(8);
    LinearProgram lp;
    lp.num_vars = n;
    for (int j = 0; j < n; ++j) {
      lp.objective.push_back(-1.0 - static_cast<double>(rng.Uniform(10)));
    }
    for (int i = 0; i < n / 2; ++i) {
      std::vector<double> row(static_cast<size_t>(n));
      for (auto& v : row) v = static_cast<double>(rng.Uniform(4));
      lp.AddRow(std::move(row), 40.0 + static_cast<double>(rng.Uniform(40)));
    }
    lp.upper_bounds.assign(static_cast<size_t>(n), 5.0);
    RunCase(h, StrFormat("simplex_small_%d", n),
            [&] { Consume(SolveLp(lp)); });
  }

  // --- Observability substrate costs. Tracing state is set explicitly per
  // case so the disabled number is the cost every instrumented scope in
  // the codebase pays during normal (untraced) runs.
  obs::Tracer::Global().Stop();
  const double disabled_mean = RunCase(h, "obs_span_disabled", [] {
    TRACE_SPAN("micro.probe", {{"k", 1}});
    Consume(obs::TraceEnabled());
  });
  if (CaseSelected("obs_span_enabled")) {
    obs::Tracer::Global().Clear();
    obs::Tracer::Global().Start();
    RunCase(h, "obs_span_enabled", [] {
      TRACE_SPAN("micro.probe", {{"k", 1}});
      Consume(obs::TraceEnabled());
    });
    obs::Tracer::Global().Stop();
    obs::Tracer::Global().Clear();
  }
  {
    static obs::Counter& c =
        *obs::MetricsRegistry::Global().GetCounter("micro.probe_counter");
    RunCase(h, "obs_counter_inc", [] {
      c.Add(1);
      Consume(c);
    });
  }

  const int rc = h.Finish();
  if (rc != 0) return rc;
  if (assert_span_ns > 0.0 && CaseSelected("obs_span_disabled")) {
    // Sanitizer builds intercept every memory access; the contract is for
    // production builds, so the budget widens rather than gates noise.
    double budget_ns = assert_span_ns;
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
    budget_ns *= 20.0;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
    budget_ns *= 20.0;
#endif
#endif
    const double got_ns = disabled_mean * 1e9;
    if (got_ns > budget_ns) {
      std::fprintf(stderr,
                   "FAIL: disabled span costs %.1f ns/span, budget %.1f ns\n",
                   got_ns, budget_ns);
      return 1;
    }
    std::printf("disabled span %.1f ns/span within %.1f ns budget\n", got_ns,
                budget_ns);
  }
  return 0;
}
