// Microbenchmarks for the substrate hot paths: B+Tree range lookups,
// secondary-index lookups, fragment coalescing, AE estimation, k-means,
// and the simplex solver. These guard the designer runtime budget (§7.2
// reports CORADD at 7.5h on paper hardware; our reproduction must stay
// interactive).
//
// Runs on benchkit::MeasureThroughput (batch-doubling calibration, then
// warmup + N timed batches; samples are seconds per iteration), replacing
// the earlier google-benchmark binary so the micro numbers flow through
// the same schema-v2 BENCH_micro.json / bench_compare pipeline as every
// other bench. `--fast` drops the large-table sizes for smoke/CI runs.
//
// The obs_* cases measure the tracing/metrics substrate itself:
// obs_span_disabled is the cost every instrumented scope pays when tracing
// is off, and `--assert-span-ns=N` turns its mean into a hard gate (exit 1
// above N ns/span) — the obs_overhead_smoke ctest pins the <25 ns contract.
// `--only=<substr>` runs just the matching cases.
//
// The parallel_for_* cases A/B the two ThreadPool::ParallelFor engines
// (docs/SCHEDULER.md) on an 8-worker pool: a uniform spin loop where the
// work-stealing path must match the fixed-chunk path (scheduling overhead
// only — the lazy-split check is one relaxed load per iteration), and a
// planted power-law-skewed loop (costs ~1/(n-i), heaviest last, so the
// fat tail lands inside the final fixed chunk) where lazy binary splitting
// must rebalance. Sleep-based skewed iterations overlap regardless of host
// core count, so the imbalance signal survives 1-core CI runners.
// `--assert-skew-speedup=X` gates steal-vs-fixed on the skewed case: exit 1
// unless the speedup is >= X and Welch-significant at the 5% level — the
// scheduler_bench_smoke ctest pins the >=1.5x contract from ISSUE 8.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "ilp/lp.h"
#include "mv/kmeans.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/ae_estimator.h"
#include "storage/clustered_table.h"
#include "storage/layout.h"
#include "storage/secondary_index.h"

using namespace coradd;
using namespace coradd::bench;

namespace {

std::unique_ptr<ClusteredTable> MakeTable(size_t rows) {
  ColumnDef k1{"k1", ValueType::kInt, 4, {}};
  ColumnDef k2{"k2", ValueType::kInt, 4, {}};
  ColumnDef v{"v", ValueType::kInt, 4, {}};
  auto t = std::make_unique<Table>(Schema({k1, k2, v}), "t");
  Rng rng(1);
  t->Reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    t->AppendRow({static_cast<int64_t>(rng.Uniform(1000)),
                  static_cast<int64_t>(rng.Uniform(100)),
                  static_cast<int64_t>(rng.Uniform(1 << 20))});
  }
  return std::make_unique<ClusteredTable>(std::move(t),
                                          std::vector<int>{0, 1}, 8192);
}

/// Keeps the optimizer from discarding a computed result (the moral
/// equivalent of benchmark::DoNotOptimize).
template <typename T>
inline void Consume(T&& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

std::string HumanPerIter(double seconds) {
  if (seconds < 1e-6) return StrFormat("%.1f ns", seconds * 1e9);
  if (seconds < 1e-3) return StrFormat("%.2f us", seconds * 1e6);
  if (seconds < 1.0) return StrFormat("%.2f ms", seconds * 1e3);
  return StrFormat("%.3f s", seconds);
}

/// Case-name filter from --only=<substr>; empty matches everything.
std::string g_only;

bool CaseSelected(const std::string& name) {
  return g_only.empty() || name.find(g_only) != std::string::npos;
}

/// Measures one micro case and records it as a metric named `name` in the
/// shared BENCH_micro.json. Returns the per-repetition samples (empty when
/// the case was filtered out by --only) for downstream Welch comparisons.
template <typename Fn>
ThroughputResult RunCase(Harness& h, const std::string& name, Fn&& op) {
  if (!CaseSelected(name)) return ThroughputResult{};
  ThroughputOptions opts;
  opts.warmup = std::max(1, h.warmup());
  opts.repetitions = h.repetitions();
  const ThroughputResult r = MeasureThroughput(opts, op);
  const SampleStats s = Summarize(r.samples);
  PrintRow({name, HumanPerIter(s.mean),
            "±" + HumanPerIter(s.ci95_half),
            StrFormat("%.1f%%", 100.0 * s.rsd()),
            std::to_string(r.iterations)});
  h.json().MetricSamples(name, "s", r.samples, r.warmup_samples);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Harness h("micro", argc, argv);
  g_only = FlagValue(argc, argv, "only", "");
  const double assert_span_ns =
      FlagDouble(argc, argv, "assert-span-ns", 0.0);
  const double assert_skew_speedup =
      FlagDouble(argc, argv, "assert-skew-speedup", 0.0);
  const size_t big_rows = h.fast() ? 100000 : 1000000;

  PrintHeader("substrate microbenchmarks (per-iteration, 95% CI)",
              {"case", "mean", "ci95", "rsd", "iters/batch"});

  // Table sizes: 100k always; the 1M variants only outside --fast (the
  // table build itself dominates smoke runtime).
  std::vector<size_t> table_rows = {100000};
  if (!h.fast()) table_rows.push_back(big_rows);
  for (const size_t rows : table_rows) {
    auto ct = MakeTable(rows);
    Rng rng(2);
    RunCase(h, StrFormat("clustered_equal_range_%zuk", rows / 1000), [&] {
      Consume(ct->EqualRange({static_cast<int64_t>(rng.Uniform(1000))}));
    });
    SecondaryBTreeIndex idx(ct.get(), 2);
    Rng rng2(3);
    RunCase(h, StrFormat("secondary_lookup_range_%zuk", rows / 1000), [&] {
      const int64_t lo = static_cast<int64_t>(rng2.Uniform(1 << 20));
      Consume(idx.LookupRange(lo, lo + 1000));
    });
  }
  for (const size_t n : {size_t{1000}, size_t{100000}}) {
    Rng rng(4);
    std::vector<uint64_t> pages;
    for (size_t i = 0; i < n; ++i) pages.push_back(rng.Uniform(100000));
    std::sort(pages.begin(), pages.end());
    RunCase(h, StrFormat("coalesce_pages_%zu", n),
            [&] { Consume(CoalescePages(pages, 4)); });
  }
  for (const size_t n : {size_t{1024}, size_t{8192}}) {
    Rng rng(5);
    std::vector<int64_t> sample;
    for (size_t i = 0; i < n; ++i) {
      sample.push_back(static_cast<int64_t>(rng.Uniform(5000)));
    }
    std::sort(sample.begin(), sample.end());
    RunCase(h, StrFormat("ae_estimate_%zu", n), [&] {
      const auto profile =
          SampleFrequencyProfile::FromSortedValues(sample, 10000000);
      Consume(EstimateDistinctAe(profile));
    });
  }
  for (const size_t dims : {size_t{40}, size_t{80}}) {
    Rng gen(6);
    std::vector<std::vector<double>> points;
    for (int i = 0; i < 52; ++i) {
      std::vector<double> p(dims);
      for (auto& x : p) x = gen.UniformDouble();
      points.push_back(std::move(p));
    }
    Rng rng(7);
    RunCase(h, StrFormat("kmeans_52x%zu", dims),
            [&] { Consume(KMeans(points, 8, &rng)); });
  }
  for (const int n : {30, 100}) {
    Rng rng(8);
    LinearProgram lp;
    lp.num_vars = n;
    for (int j = 0; j < n; ++j) {
      lp.objective.push_back(-1.0 - static_cast<double>(rng.Uniform(10)));
    }
    for (int i = 0; i < n / 2; ++i) {
      std::vector<double> row(static_cast<size_t>(n));
      for (auto& v : row) v = static_cast<double>(rng.Uniform(4));
      lp.AddRow(std::move(row), 40.0 + static_cast<double>(rng.Uniform(40)));
    }
    lp.upper_bounds.assign(static_cast<size_t>(n), 5.0);
    RunCase(h, StrFormat("simplex_small_%d", n),
            [&] { Consume(SolveLp(lp)); });
  }

  // --- ParallelFor engines: work-stealing vs legacy fixed-chunk on a
  // dedicated 8-worker pool (the thread count the ISSUE 8 gate names; the
  // shared pool stays untouched so CORADD_THREADS doesn't skew the A/B).
  std::vector<double> skew_steal, skew_fixed;
  {
    ThreadPool pool(8, "micro");
    const ParallelForOptions steal{ParallelForStrategy::kWorkStealing};
    const ParallelForOptions fixed{ParallelForStrategy::kFixedChunk};

    // Uniform: 8192 identical ~40 ns spin bodies. Both engines are bound by
    // the body; the work-stealing path may only add its one-relaxed-load
    // split check on top, which the bench-regress baseline gate pins.
    constexpr size_t kUniformN = 8192;
    auto spin_body = [](size_t i) {
      double acc = static_cast<double>(i) + 1.0;
      for (int k = 0; k < 16; ++k) acc = acc * 1.0000001 + 0.5;
      Consume(acc);
    };
    RunCase(h, "parallel_for_uniform",
            [&] { pool.ParallelFor(kUniformN, spin_body, steal); });
    RunCase(h, "parallel_for_uniform_fixed",
            [&] { pool.ParallelFor(kUniformN, spin_body, fixed); });

    // Skewed: planted power-law sleep costs growing toward the end of the
    // range — cost(i) = max(3500/(n-i), 40) us over 256 iterations (~20 ms
    // total), the work-list-sorted-ascending-by-size shape where the fat
    // tail lands in the final fixed chunk: iterations [248, 256) alone cost
    // ~9.5 ms, serialized on whichever worker claims that chunk while the
    // rest sit idle. Lazy splitting publishes the heavy *upper* half of a
    // range before running the cheap half, so thieves peel the tail apart
    // down to single iterations and the wall clock is bounded by the one
    // 3.5 ms heaviest body. The 40 us floor keeps every sleep above
    // timer-slack noise. (Heaviest-*first* power laws are the scheduler's
    // worst case — the owner keeps the lower half, so the head chain
    // serializes — which is exactly why the split rule gives away the
    // unstarted upper half: sorted work lists put the fat items at one end,
    // and the engine must win when that end is the stealable one.)
    constexpr size_t kSkewN = 256;
    std::vector<std::chrono::microseconds> cost(kSkewN);
    for (size_t i = 0; i < kSkewN; ++i) {
      cost[i] = std::chrono::microseconds(
          std::max<int64_t>(3500 / static_cast<int64_t>(kSkewN - i), 40));
    }
    auto skew_body = [&](size_t i) { std::this_thread::sleep_for(cost[i]); };
    skew_steal = RunCase(h, "parallel_for_skewed", [&] {
                   pool.ParallelFor(kSkewN, skew_body, steal);
                 }).samples;
    skew_fixed = RunCase(h, "parallel_for_skewed_fixed", [&] {
                   pool.ParallelFor(kSkewN, skew_body, fixed);
                 }).samples;
  }

  // --- Observability substrate costs. Tracing state is set explicitly per
  // case so the disabled number is the cost every instrumented scope in
  // the codebase pays during normal (untraced) runs.
  obs::Tracer::Global().Stop();
  const ThroughputResult disabled_r = RunCase(h, "obs_span_disabled", [] {
    TRACE_SPAN("micro.probe", {{"k", 1}});
    Consume(obs::TraceEnabled());
  });
  const double disabled_mean =
      disabled_r.samples.empty() ? 0.0 : Summarize(disabled_r.samples).mean;
  if (CaseSelected("obs_span_enabled")) {
    obs::Tracer::Global().Clear();
    obs::Tracer::Global().Start();
    RunCase(h, "obs_span_enabled", [] {
      TRACE_SPAN("micro.probe", {{"k", 1}});
      Consume(obs::TraceEnabled());
    });
    obs::Tracer::Global().Stop();
    obs::Tracer::Global().Clear();
  }
  {
    static obs::Counter& c =
        *obs::MetricsRegistry::Global().GetCounter("micro.probe_counter");
    RunCase(h, "obs_counter_inc", [] {
      c.Add(1);
      Consume(c);
    });
  }

  const int rc = h.Finish();
  if (rc != 0) return rc;
  if (assert_skew_speedup > 0.0 && !skew_steal.empty() &&
      !skew_fixed.empty()) {
    const double steal_mean = Summarize(skew_steal).mean;
    const double fixed_mean = Summarize(skew_fixed).mean;
    const double speedup = steal_mean > 0.0 ? fixed_mean / steal_mean : 0.0;
    const benchkit::WelchResult w =
        benchkit::WelchTTest(skew_fixed, skew_steal);
    if (speedup < assert_skew_speedup || !w.significant) {
      std::fprintf(stderr,
                   "FAIL: parallel_for_skewed steal-vs-fixed speedup %.2fx "
                   "(need >= %.2fx, Welch %ssignificant, t=%.2f df=%.1f)\n",
                   speedup, assert_skew_speedup, w.significant ? "" : "NOT ",
                   w.t, w.df);
      return 1;
    }
    std::printf(
        "parallel_for_skewed speedup %.2fx over fixed-chunk (>= %.2fx, "
        "Welch t=%.2f df=%.1f, significant)\n",
        speedup, assert_skew_speedup, w.t, w.df);
  }
  if (assert_span_ns > 0.0 && CaseSelected("obs_span_disabled")) {
    // Sanitizer builds intercept every memory access; the contract is for
    // production builds, so the budget widens rather than gates noise.
    double budget_ns = assert_span_ns;
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
    budget_ns *= 20.0;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
    budget_ns *= 20.0;
#endif
#endif
    const double got_ns = disabled_mean * 1e9;
    if (got_ns > budget_ns) {
      std::fprintf(stderr,
                   "FAIL: disabled span costs %.1f ns/span, budget %.1f ns\n",
                   got_ns, budget_ns);
      return 1;
    }
    std::printf("disabled span %.1f ns/span within %.1f ns budget\n", got_ns,
                budget_ns);
  }
  return 0;
}
