// Reproduces Figure 14 / A-3: elapsed time of 500k insertions into the SSB
// lineorder table while the system maintains a growing set of additional
// MVs. The paper observed a 67x blow-up from 1 GB to 3 GB of MVs on a
// machine whose 4 GB RAM held the 2 GB base table: cost explodes once the
// dirtied working set overflows the buffer pool. Runs under the benchkit
// repetition harness; --json emits schema-v2 BENCH_fig14_maintenance.json.
#include "bench/bench_util.h"
#include "cost/correlation_cost_model.h"
#include "exec/maintenance.h"
#include "serving/serving.h"

using namespace coradd;
using namespace coradd::bench;

int main(int argc, char** argv) {
  Harness h("fig14_maintenance", argc, argv);
  const double inserts = FlagDouble(argc, argv, "inserts", 500000);
  BenchJson& json = h.json();
  json.Config("inserts", inserts);

  h.Run([&](const RunPass& pass) {
    // Scaled geometry mirroring the paper's machine: the base table occupies
    // half the pool, so ~2 pool-sizes of additional MVs start thrashing.
    const uint64_t pool_pages = 64000;       // "4 GB RAM"
    const uint64_t base_heap = 32000;        // "2 GB lineorder"
    const uint64_t base_pk_index = 3200;

    MaintenanceOptions options;
    options.num_inserts = static_cast<uint64_t>(inserts);
    options.buffer_pool_pages = pool_pages;

    if (pass.reporting) {
      PrintHeader("Figure 14: cost of 500k insertions vs additional MV size",
                  {"mv_pages/pool", "elapsed[s]", "evictions", "misses"});
    }
    double at_half = 0.0, at_double = 0.0;
    for (double mv_fraction : {0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0}) {
      const uint64_t mv_pages =
          static_cast<uint64_t>(mv_fraction * static_cast<double>(pool_pages));
      std::vector<MaintainedObject> objects = {
          MaintainedObject{base_heap, base_pk_index, true}};
      // Additional MVs: four equal objects summing to mv_pages (the paper
      // materializes several MVs; inserts dirty each one).
      for (int i = 0; i < 4 && mv_pages > 0; ++i) {
        objects.push_back(
            MaintainedObject{mv_pages / 4, mv_pages / 40, false});
      }
      const MaintenanceResult r = SimulateInsertions(objects, options);
      if (mv_fraction == 0.5) at_half = r.seconds;
      if (mv_fraction == 2.0) at_double = r.seconds;
      if (!pass.reporting) continue;
      PrintRow({StrFormat("%.2f", mv_fraction),
                StrFormat("%.1f", r.seconds),
                std::to_string(r.dirty_evictions),
                std::to_string(r.pool_misses)});
      json.Row({{"mv_fraction", BenchJson::Num(mv_fraction)},
                {"simulated_seconds", BenchJson::Num(r.seconds)},
                {"dirty_evictions",
                 BenchJson::Num(static_cast<double>(r.dirty_evictions))},
                {"pool_misses",
                 BenchJson::Num(static_cast<double>(r.pool_misses))}});
    }
    if (pass.reporting) {
      std::printf(
          "\nblow-up (2.0x pool vs 0.5x pool): %.0fx   (paper: 67x from 1 GB\n"
          "to 3 GB of MVs on a 4 GB machine)\n",
          at_double / std::max(1e-9, at_half));
      json.Config("blowup", at_double / std::max(1e-9, at_half));

      // Cross-check against the serving engine (docs/SERVING.md): the same
      // 0.5x-pool experiment routed through SubmitMaintenance in batches,
      // interleaved with a reading client, must cost exactly what the
      // isolated simulation above measured — split invariance keeps the
      // live engine's maintenance numbers calibrated to this figure.
      const uint64_t half_mv = pool_pages / 2;
      std::vector<MaintainedObject> objects = {
          MaintainedObject{base_heap, base_pk_index, true}};
      for (int i = 0; i < 4; ++i) {
        objects.push_back(MaintainedObject{half_mv / 4, half_mv / 40, false});
      }
      const MaintenanceResult isolated = SimulateInsertions(objects, options);

      Fixture f = MakeSsbFixture(/*scale=*/0.001, /*page_size=*/1024);
      DatabaseDesign design;
      design.designer = "base-only";
      DesignedObject base_obj;
      base_obj.spec.name = "base";
      base_obj.spec.fact_table = "lineorder";
      const Universe* u = f.context->UniverseForFact("lineorder");
      for (size_t c = 0; c < u->fact_table().schema().NumColumns(); ++c) {
        base_obj.spec.columns.push_back(
            u->fact_table().schema().Column(c).name);
      }
      base_obj.spec.clustered_key = {"lo_orderkey", "lo_linenumber"};
      base_obj.spec.is_fact_recluster = true;
      base_obj.spec.is_base = true;
      design.objects.push_back(base_obj);
      design.object_for_query.assign(f.workload.queries.size(), 0);
      CorrelationCostModel planner(&f.context->registry());
      serving::ServingEngine engine(f.context.get(), &design, &f.workload,
                                    &planner, {});
      engine.ConfigureMaintenance(objects, options);
      engine.Start();
      const uint64_t total = static_cast<uint64_t>(inserts);
      for (int b = 0; b < 4; ++b) {
        engine.Submit(0).get();  // reads interleave between writer epochs
        engine.SubmitMaintenance(total / 4 + (b == 0 ? total % 4 : 0)).get();
      }
      const MaintenanceResult served = engine.FinishMaintenance();
      engine.Stop();
      const double ratio =
          isolated.seconds > 0.0 ? served.seconds / isolated.seconds : 0.0;
      std::printf(
          "serving-engine cross-check (0.5x pool, 4 batches + interleaved "
          "reads): %.1fs vs isolated %.1fs (ratio %.3f)\n",
          served.seconds, isolated.seconds, ratio);
      json.Config("serving_maintenance_seconds", served.seconds);
      json.Config("serving_vs_isolated_ratio", ratio);
    }
  });
  return h.Finish();
}
