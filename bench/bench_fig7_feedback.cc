// Reproduces Figure 7: solution quality of the plain ILP and ILP+Feedback
// relative to OPT across budgets. The paper obtained OPT by brute-forcing
// all 2^13-1 query groupings for a week on four servers; we brute-force all
// groupings of a 6-query subworkload (flights 1 and 2), which is exact and
// runs in minutes at our scale (substitution documented in DESIGN.md §2).
#include "cost/correlation_cost_model.h"
#include "bench/bench_util.h"
#include "feedback/ilp_feedback.h"
#include "ilp/branch_and_bound.h"
#include "ilp/problem_builder.h"
#include "mv/candidate_generator.h"
#include "mv/fk_clustering.h"

using namespace coradd;
using namespace coradd::bench;

int main(int argc, char** argv) {
  const double scale = FlagDouble(argc, argv, "scale", 0.02);
  Fixture f = MakeSsbFixture(scale, 1024);
  // Subworkload: flights 1 and 2 (queries 0..5).
  Workload sub;
  sub.name = "ssb6";
  for (int i = 0; i < 6; ++i) sub.queries.push_back(f.workload.queries[static_cast<size_t>(i)]);

  CorrelationCostModel model(&f.context->registry());
  CandidateGeneratorOptions gopt = BenchCoraddOptions().candidates;
  MvCandidateGenerator generator(f.catalog.get(), &f.context->registry(),
                                 &model, gopt);

  // --- OPT candidate pool: every non-empty query group (2^6 - 1 = 63).
  std::vector<MvSpec> opt_pool;
  for (int mask = 1; mask < (1 << 6); ++mask) {
    QueryGroup group;
    for (int i = 0; i < 6; ++i) {
      if (mask & (1 << i)) group.push_back(i);
    }
    for (auto& spec : generator.DesignForGroup(sub, group, "lineorder", 4)) {
      opt_pool.push_back(std::move(spec));
    }
  }
  {
    const UniverseStats* stats = f.context->StatsForFact("lineorder");
    for (auto& spec : FkReclusterCandidates(
             *f.catalog->GetFactInfo("lineorder"), *stats, sub)) {
      opt_pool.push_back(std::move(spec));
    }
  }
  std::printf("OPT pool from all 63 groupings: %zu candidates\n",
              opt_pool.size());

  // --- Initial (heuristic) candidate pool, as CORADD enumerates it.
  CandidateSet initial = generator.Generate(sub);

  PrintHeader("Figure 7: total runtime relative to OPT",
              {"budget", "OPT[s]", "ILP/OPT", "ILP+FB/OPT"});
  for (uint64_t budget :
       BudgetGrid(f.fact_heap_bytes, {0.125, 0.25, 0.5, 1.0, 2.0, 4.0})) {
    BuiltProblem opt_built = BuildSelectionProblem(
        sub, opt_pool, model, f.context->registry(), budget);
    const double opt = SolveSelectionExact(opt_built.problem).expected_cost;

    BuiltProblem ilp_built = BuildSelectionProblem(
        sub, initial.mvs, model, f.context->registry(), budget);
    const double ilp = SolveSelectionExact(ilp_built.problem).expected_cost;

    FeedbackOptions fopt;
    fopt.max_iterations = 2;
    const FeedbackOutcome fb = RunIlpFeedback(
        sub, generator, model, f.context->registry(),
        BuildSelectionProblem(sub, initial.mvs, model, f.context->registry(),
                              budget),
        budget, fopt);

    PrintRow({HumanBytes(budget), StrFormat("%.3f", opt),
              StrFormat("%.3f", ilp / std::max(1e-12, opt)),
              StrFormat("%.3f", fb.result.expected_cost / std::max(1e-12, opt))});
  }
  std::printf(
      "\nPaper shape check: ILP within ~1.0-1.4x of OPT; feedback closes\n"
      "most of the gap (reaching OPT at many budgets).\n");
  return 0;
}
