// Reproduces Figure 7: solution quality of the plain ILP and ILP+Feedback
// relative to OPT across budgets. The paper obtained OPT by brute-forcing
// all 2^13-1 query groupings for a week on four servers; we brute-force all
// groupings of a 6-query subworkload (flights 1 and 2), which is exact and
// runs in minutes at our scale (substitution documented in DESIGN.md §2).
//
// Every budget cell (OPT solve + ILP solve + feedback run) is independent —
// the sweep fans them out across the shared ThreadPool. Runs under the
// benchkit repetition harness; --json emits schema-v2
// BENCH_fig7_feedback.json.
#include "common/thread_pool.h"
#include "cost/correlation_cost_model.h"
#include "bench/bench_util.h"
#include "feedback/ilp_feedback.h"
#include "ilp/problem_builder.h"
#include "solver/solver.h"
#include "mv/candidate_generator.h"
#include "mv/fk_clustering.h"

using namespace coradd;
using namespace coradd::bench;

int main(int argc, char** argv) {
  Harness h("fig7_feedback", argc, argv);
  const double scale = FlagDouble(argc, argv, "scale", 0.02);
  BenchJson& json = h.json();
  json.Config("scale", scale);

  h.Run([&](const RunPass& pass) {
    Fixture f = MakeSsbFixture(scale, 1024);
    // Subworkload: flights 1 and 2 (queries 0..5).
    Workload sub;
    sub.name = "ssb6";
    for (int i = 0; i < 6; ++i) {
      sub.queries.push_back(f.workload.queries[static_cast<size_t>(i)]);
    }

    CorrelationCostModel model(&f.context->registry());
    CandidateGeneratorOptions gopt = BenchCoraddOptions().candidates;
    MvCandidateGenerator generator(f.catalog.get(), &f.context->registry(),
                                   &model, gopt);

    // --- OPT candidate pool: every non-empty query group (2^6 - 1 = 63).
    WallTimer pool_timer;
    std::vector<MvSpec> opt_pool;
    for (int mask = 1; mask < (1 << 6); ++mask) {
      QueryGroup group;
      for (int i = 0; i < 6; ++i) {
        if (mask & (1 << i)) group.push_back(i);
      }
      for (auto& spec : generator.DesignForGroup(sub, group, "lineorder", 4)) {
        opt_pool.push_back(std::move(spec));
      }
    }
    {
      const UniverseStats* stats = f.context->StatsForFact("lineorder");
      for (auto& spec : FkReclusterCandidates(
               *f.catalog->GetFactInfo("lineorder"), *stats, sub)) {
        opt_pool.push_back(std::move(spec));
      }
    }
    h.Sample("opt_pool_seconds", pool_timer.Seconds());
    if (pass.reporting) {
      std::printf("OPT pool from all 63 groupings: %zu candidates\n",
                  opt_pool.size());
    }

    // --- Initial (heuristic) candidate pool, as CORADD enumerates it.
    CandidateSet initial = generator.Generate(sub);

    // --- Sweep: one independent cell per budget, in parallel (the model's
    // memo caches are mutex-guarded; everything else is read-only). The
    // solver engine runs inline per cell — the budget grid itself is the
    // parallel axis here, so nesting wave parallelism under it buys nothing.
    const std::vector<uint64_t> budgets =
        BudgetGrid(f.fact_heap_bytes, {0.125, 0.25, 0.5, 1.0, 2.0, 4.0});
    struct Cell {
      double opt = 0.0;
      double ilp = 0.0;
      double fb = 0.0;
    };
    std::vector<Cell> cells(budgets.size());
    SolverOptions sopt;
    sopt.parallel = false;
    const SolverEngine engine(sopt);
    WallTimer sweep_timer;
    ThreadPool::Shared().ParallelFor(budgets.size(), [&](size_t i) {
      const uint64_t budget = budgets[i];
      BuiltProblem opt_built = BuildSelectionProblem(
          sub, opt_pool, model, f.context->registry(), budget);
      cells[i].opt = engine.Solve(opt_built.problem).expected_cost;

      BuiltProblem ilp_built = BuildSelectionProblem(
          sub, initial.mvs, model, f.context->registry(), budget);
      cells[i].ilp = engine.Solve(ilp_built.problem).expected_cost;

      FeedbackOptions fopt;
      fopt.max_iterations = 2;
      const FeedbackOutcome fb = RunIlpFeedback(
          sub, generator, model, f.context->registry(),
          BuildSelectionProblem(sub, initial.mvs, model,
                                f.context->registry(), budget),
          budget, fopt, sopt);
      cells[i].fb = fb.result.expected_cost;
    });
    h.Sample("sweep_seconds", sweep_timer.Seconds());

    if (!pass.reporting) return;
    PrintHeader("Figure 7: total runtime relative to OPT",
                {"budget", "OPT[s]", "ILP/OPT", "ILP+FB/OPT"});
    for (size_t i = 0; i < budgets.size(); ++i) {
      const Cell& c = cells[i];
      PrintRow({HumanBytes(budgets[i]), StrFormat("%.3f", c.opt),
                StrFormat("%.3f", c.ilp / std::max(1e-12, c.opt)),
                StrFormat("%.3f", c.fb / std::max(1e-12, c.opt))});
      json.Row({{"budget_bytes",
                 BenchJson::Num(static_cast<double>(budgets[i]))},
                {"opt_seconds", BenchJson::Num(c.opt)},
                {"ilp_seconds", BenchJson::Num(c.ilp)},
                {"feedback_seconds", BenchJson::Num(c.fb)}});
    }
    std::printf(
        "\nPaper shape check: ILP within ~1.0-1.4x of OPT; feedback closes\n"
        "most of the gap (reaching OPT at many budgets).\n");
  });
  return h.Finish();
}
