// Ablation for §4.2's claim that concatenation-only index merging (as in
// [6]) produces designs "up to 90% slower" than order-preserving
// interleaved merging: design shared MVs for two-flight query groups both
// ways and compare expected group runtimes under the correlation-aware
// model. Runs under the benchkit repetition harness; --json emits schema-v2
// BENCH_ablation_merging.json including the candgen segment (trials priced
// vs pruned by the interleaving bound).
#include "cost/correlation_cost_model.h"
#include "bench/bench_util.h"
#include "mv/index_merging.h"

using namespace coradd;
using namespace coradd::bench;

int main(int argc, char** argv) {
  Harness h("ablation_merging", argc, argv);
  const double scale = FlagDouble(argc, argv, "scale", 0.02);
  BenchJson& json = h.json();
  json.Config("scale", scale);

  h.Run([&](const RunPass& pass) {
    Fixture f = MakeSsbFixture(scale, 1024);
    CorrelationCostModel model(&f.context->registry());

    IndexMergingOptions interleave_options;
    ClusteredIndexDesigner interleaved(&f.context->registry(), &model,
                                       interleave_options);
    IndexMergingOptions concat_options;
    concat_options.concatenation_only = true;
    ClusteredIndexDesigner concat(&f.context->registry(), &model,
                                  concat_options);

    const std::vector<std::pair<std::string, QueryGroup>> groups = {
        {"Q1.1+Q2.1", {0, 3}},        {"Q1.2+Q3.3", {1, 8}},
        {"Q2.2+Q4.1", {4, 10}},       {"Q1.1+Q1.2+Q1.3", {0, 1, 2}},
        {"Q3.1+Q3.2+Q3.3", {6, 7, 8}}, {"Q2.1+Q3.4+Q4.3", {3, 9, 12}},
    };

    auto group_cost = [&](const std::vector<MvSpec>& specs,
                          const QueryGroup& group) {
      double best = kInfeasibleCost;
      for (const auto& spec : specs) {
        double total = 0.0;
        for (int qi : group) {
          total +=
              model.Seconds(f.workload.queries[static_cast<size_t>(qi)], spec);
        }
        best = std::min(best, total);
      }
      return best;
    };

    if (pass.reporting) {
      PrintHeader("Ablation: interleaved vs concatenation-only merging (§4.2)",
                  {"group", "interleave[s]", "concat[s]", "slowdown"});
    }
    WallTimer design_timer;
    for (const auto& [name, group] : groups) {
      const double inter = group_cost(
          interleaved.DesignGroup(f.workload, group, "lineorder", 4), group);
      const double cat = group_cost(
          concat.DesignGroup(f.workload, group, "lineorder", 4), group);
      if (!pass.reporting) continue;
      PrintRow({name, StrFormat("%.4f", inter), StrFormat("%.4f", cat),
                StrFormat("%+.0f%%",
                          (cat / std::max(1e-12, inter) - 1.0) * 100)});
      json.Row({{"group", BenchJson::Quote(name)},
                {"interleave_seconds", BenchJson::Num(inter)},
                {"concat_seconds", BenchJson::Num(cat)}});
    }
    h.Sample("design_seconds", design_timer.Seconds());
    if (!pass.reporting) return;
    std::printf(
        "\nPaper shape check: concatenation-only merging is never better and\n"
        "can be dramatically slower (paper observed up to 90%% slower).\n");

    CandGenStats candgen;
    candgen.trials_priced =
        interleaved.trials_priced() + concat.trials_priced();
    candgen.trials_pruned =
        interleaved.trials_pruned() + concat.trials_pruned();
    candgen.groups_designed = 2 * groups.size();
    ReportCandgen(&json, *f.context, candgen);
  });
  return h.Finish();
}
