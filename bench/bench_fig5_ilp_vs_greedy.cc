// Reproduces Figure 5: expected total runtime of the ILP-selected design
// vs Greedy(m,k) [5] across space budgets, on the SSB 13-query workload
// with CORADD's candidate pool. The paper reports ILP 20-40% better at
// most budgets, converging at very tight budgets where Greedy's exhaustive
// phase suffices.
#include "cost/correlation_cost_model.h"
#include "bench/bench_util.h"
#include "ilp/branch_and_bound.h"
#include "ilp/domination.h"
#include "ilp/greedy_mk.h"
#include "ilp/problem_builder.h"
#include "mv/candidate_generator.h"

using namespace coradd;
using namespace coradd::bench;

int main(int argc, char** argv) {
  const double scale = FlagDouble(argc, argv, "scale", 0.02);
  Fixture f = MakeSsbFixture(scale, 1024);
  CorrelationCostModel model(&f.context->registry());
  CandidateGeneratorOptions gopt = BenchCoraddOptions().candidates;
  MvCandidateGenerator generator(f.catalog.get(), &f.context->registry(),
                                 &model, gopt);
  CandidateSet candidates = generator.Generate(f.workload);
  std::printf("Candidate pool: %zu MVs (SSB 13 queries, scale %.3f)\n",
              candidates.mvs.size(), scale);

  PrintHeader("Figure 5: optimal (ILP) versus Greedy(m,k)",
              {"budget", "ILP[s]", "Greedy(m,k)[s]", "greedy/ilp",
               "ilp_nodes"});
  for (uint64_t budget : BudgetGrid(f.fact_heap_bytes)) {
    BuiltProblem built = BuildSelectionProblem(
        f.workload, candidates.mvs, model, f.context->registry(), budget);
    const auto mask = DominatedMask(built.problem);
    const SelectionProblem pruned = CompactProblem(built.problem, mask);

    const SelectionResult ilp = SolveSelectionExact(pruned);
    const SelectionResult greedy = SolveSelectionGreedyMk(pruned);
    PrintRow({HumanBytes(budget), StrFormat("%.3f", ilp.expected_cost),
              StrFormat("%.3f", greedy.expected_cost),
              StrFormat("%.2fx", greedy.expected_cost /
                                     std::max(1e-12, ilp.expected_cost)),
              std::to_string(ilp.nodes_explored)});
  }
  std::printf(
      "\nPaper shape check: greedy/ilp ~1.0 at tight budgets (exhaustive\n"
      "phase optimal), rising to ~1.2-1.4x at mid budgets.\n");
  return 0;
}
