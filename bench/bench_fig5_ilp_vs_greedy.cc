// Reproduces Figure 5: expected total runtime of the ILP-selected design
// vs Greedy(m,k) [5] across space budgets, on the SSB 13-query workload
// with CORADD's candidate pool. The paper reports ILP 20-40% better at
// most budgets, converging at very tight budgets where Greedy's exhaustive
// phase suffices.
//
// The ILP column runs on the parallel solver engine, warm-started across
// the budget grid through a WarmStartSession (the per-budget problems are
// rebuilt, so the session maps solutions by spec signature). Runs under
// the benchkit repetition harness; --json emits schema-v2
// BENCH_fig5_ilp_vs_greedy.json with per-budget SolverStats.
#include "cost/correlation_cost_model.h"
#include "bench/bench_util.h"
#include "ilp/domination.h"
#include "ilp/greedy_mk.h"
#include "ilp/problem_builder.h"
#include "mv/candidate_generator.h"
#include "solver/solver.h"
#include "solver/warm_start.h"

using namespace coradd;
using namespace coradd::bench;

int main(int argc, char** argv) {
  Harness h("fig5_ilp_vs_greedy", argc, argv);
  const double scale = FlagDouble(argc, argv, "scale", 0.02);
  BenchJson& json = h.json();
  json.Config("scale", scale);

  h.Run([&](const RunPass& pass) {
    Fixture f = MakeSsbFixture(scale, 1024);
    CorrelationCostModel model(&f.context->registry());
    CandidateGeneratorOptions gopt = BenchCoraddOptions().candidates;
    MvCandidateGenerator generator(f.catalog.get(), &f.context->registry(),
                                   &model, gopt);
    WallTimer gen_timer;
    CandidateSet candidates = generator.Generate(f.workload);
    h.Sample("candgen_seconds", gen_timer.Seconds());
    if (pass.reporting) {
      std::printf("Candidate pool: %zu MVs (SSB 13 queries, scale %.3f)\n",
                  candidates.mvs.size(), scale);
      PrintHeader("Figure 5: optimal (ILP) versus Greedy(m,k)",
                  {"budget", "ILP[s]", "Greedy(m,k)[s]", "greedy/ilp",
                   "ilp_nodes"});
    }

    const SolverEngine engine;
    WarmStartSession warm;
    WallTimer solve_timer;
    for (uint64_t budget : BudgetGrid(f.fact_heap_bytes)) {
      BuiltProblem built = BuildSelectionProblem(
          f.workload, candidates.mvs, model, f.context->registry(), budget);
      PruneDominated(&built);

      SolverStats stats;
      const std::vector<int> warm_chosen = warm.WarmChosen(built);
      const SelectionResult ilp =
          engine.Solve(built.problem, &stats,
                       warm_chosen.empty() ? nullptr : &warm_chosen);
      warm.Record(built, ilp);
      const SelectionResult greedy = SolveSelectionGreedyMk(built.problem);
      if (!pass.reporting) continue;
      PrintRow({HumanBytes(budget), StrFormat("%.3f", ilp.expected_cost),
                StrFormat("%.3f", greedy.expected_cost),
                StrFormat("%.2fx", greedy.expected_cost /
                                       std::max(1e-12, ilp.expected_cost)),
                std::to_string(ilp.nodes_explored)});
      json.Row({{"budget_bytes", BenchJson::Num(static_cast<double>(budget))},
                {"ilp_seconds", BenchJson::Num(ilp.expected_cost)},
                {"greedy_mk_seconds", BenchJson::Num(greedy.expected_cost)},
                {"solver_nodes", BenchJson::Num(static_cast<double>(
                                     stats.nodes_expanded))},
                {"solver_prunes", BenchJson::Num(static_cast<double>(
                                      stats.bound_prunes))},
                {"solver_warm", BenchJson::Num(static_cast<double>(
                                    stats.warm_solves))},
                {"solver_wall_seconds", BenchJson::Num(stats.wall_seconds)},
                {"proved_optimal",
                 stats.proved_optimal ? std::string("true")
                                      : std::string("false")}});
    }
    h.Sample("solve_grid_seconds", solve_timer.Seconds());
    if (pass.reporting) {
      std::printf(
          "\nPaper shape check: greedy/ilp ~1.0 at tight budgets "
          "(exhaustive\nphase optimal), rising to ~1.2-1.4x at mid "
          "budgets.\n");
    }
  });
  return h.Finish();
}
