// Shared infrastructure for the paper-reproduction bench binaries: flag
// parsing, scaled SSB/APB fixtures, budget grids, and aligned table output.
//
// Scale note: the paper ran SSB Scale 4 / APB 45M rows on a physical disk.
// The harness defaults to smaller row counts with proportionally smaller
// simulated pages, preserving the *page-count geometry* (thousands of heap
// pages, multi-level B+Trees) that drives every effect under study. Pass
// --scale / --pages to change.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apb/apb.h"
#include "common/string_util.h"
#include "core/baseline_designers.h"
#include "core/coradd_designer.h"
#include "core/evaluator.h"
#include "ssb/ssb.h"

namespace coradd {
namespace bench {

/// Minimal --key=value flag access.
inline std::string FlagValue(int argc, char** argv, const std::string& key,
                             const std::string& default_value) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return default_value;
}

inline double FlagDouble(int argc, char** argv, const std::string& key,
                         double default_value) {
  const std::string v = FlagValue(argc, argv, key, "");
  return v.empty() ? default_value : std::atof(v.c_str());
}

/// True when `--key` or `--key=<truthy>` was passed.
inline bool FlagBool(int argc, char** argv, const std::string& key) {
  const std::string bare = "--" + key;
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i]) return true;
  }
  const std::string v = FlagValue(argc, argv, key, "");
  return !(v.empty() || v == "0" || v == "false");
}

/// Wall-clock stopwatch for bench reporting.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// A ready-to-use experiment fixture.
struct Fixture {
  std::unique_ptr<Catalog> catalog;
  Workload workload;
  std::unique_ptr<DesignContext> context;
  uint64_t fact_heap_bytes = 0;  ///< For budget grids relative to data size.
};

inline StatsOptions DefaultStats(uint32_t page_size) {
  StatsOptions sopt;
  sopt.sample_rows = 8192;
  sopt.disk.page_size_bytes = page_size;
  // Keep the paper's seek:page-transfer ratio (5.5 ms : one 8 KB page)
  // when simulating smaller pages, so seeks are not over-weighted 8x.
  sopt.disk.seek_seconds =
      0.0055 * static_cast<double>(page_size) / 8192.0;
  return sopt;
}

inline uint64_t FactHeapBytes(const DesignContext& context,
                              const Workload& workload) {
  uint64_t total = 0;
  for (const auto& fact : workload.FactTables()) {
    const UniverseStats* stats = context.StatsForFact(fact);
    HeapLayout layout;
    layout.num_rows = stats->num_rows();
    layout.row_width_bytes =
        stats->universe().fact_table().schema().RowWidthBytes();
    layout.page_size_bytes = stats->options().disk.page_size_bytes;
    total += layout.SizeBytes();
  }
  return total;
}

/// SSB fixture (13-query workload unless augmented = true).
inline Fixture MakeSsbFixture(double scale, uint32_t page_size,
                              bool augmented = false) {
  Fixture f;
  ssb::SsbOptions options;
  options.scale_factor = scale;
  f.catalog = ssb::MakeCatalog(options);
  f.workload = augmented ? ssb::MakeAugmentedWorkload() : ssb::MakeWorkload();
  f.context = std::make_unique<DesignContext>(f.catalog.get(), f.workload,
                                              DefaultStats(page_size));
  f.fact_heap_bytes = FactHeapBytes(*f.context, f.workload);
  return f;
}

/// APB fixture (31 queries, two fact tables).
inline Fixture MakeApbFixture(double scale, uint32_t page_size) {
  Fixture f;
  apb::ApbOptions options;
  options.scale = scale;
  f.catalog = apb::MakeCatalog(options);
  f.workload = apb::MakeWorkload(options);
  f.context = std::make_unique<DesignContext>(f.catalog.get(), f.workload,
                                              DefaultStats(page_size));
  f.fact_heap_bytes = FactHeapBytes(*f.context, f.workload);
  return f;
}

/// Budget grid as multiples of the fact heap size (the paper's 0..22 GB
/// axis spans ~0..9x the 2.5 GB APB data).
inline std::vector<uint64_t> BudgetGrid(uint64_t fact_bytes,
                                        std::vector<double> multiples = {
                                            0.0, 0.125, 0.25, 0.5, 1.0, 2.0,
                                            4.0, 8.0}) {
  std::vector<uint64_t> out;
  for (double m : multiples) {
    out.push_back(static_cast<uint64_t>(m * static_cast<double>(fact_bytes)));
  }
  return out;
}

/// CORADD options tuned for bench turnaround (documented in EXPERIMENTS.md).
inline CoraddOptions BenchCoraddOptions() {
  CoraddOptions options;
  options.candidates.grouping.alphas = {0.0, 0.25, 0.5};
  options.candidates.grouping.restarts = 1;
  options.feedback.max_iterations = 1;
  options.feedback.max_new_per_iteration = 250;
  // Near-exhaustive budgets make the exact search plateau-heavy: the
  // incumbent — warm-started from the previous budget point and refined in
  // the first few waves — is optimal in practice (cf. Figure 5's node
  // counts), and everything past this cap is unprovable proof effort
  // against a loose bound. The cap is enforced at wave granularity, so
  // capped solves stay bit-identical at any thread count.
  options.solver.max_nodes = 60000;
  options.solver.time_limit_seconds = 20.0;
  return options;
}

/// Machine-readable bench output: when the bench was invoked with --json,
/// Write() emits BENCH_<name>.json — bench name, config key/values,
/// wall-time, and one record per result row (simulated seconds etc.) — the
/// repo's perf-trajectory record (CI uploads these as artifacts).
class BenchJson {
 public:
  BenchJson(std::string name, int argc, char** argv)
      : name_(std::move(name)), enabled_(FlagBool(argc, argv, "json")) {}

  bool enabled() const { return enabled_; }

  void Config(const std::string& key, const std::string& value) {
    config_.emplace_back(key, Quote(value));
  }
  void Config(const std::string& key, double value) {
    config_.emplace_back(key, StrFormat("%.6g", value));
  }

  /// One result record of (key, already-JSON-encoded value) pairs.
  void Row(std::vector<std::pair<std::string, std::string>> fields) {
    rows_.push_back(std::move(fields));
  }

  static std::string Quote(const std::string& s) { return "\"" + s + "\""; }
  static std::string Num(double v) { return StrFormat("%.9g", v); }

  /// Writes BENCH_<name>.json to the working directory (no-op without
  /// --json). `wall_seconds` is the bench's total wall-clock time.
  void Write(double wall_seconds) const {
    if (!enabled_) return;
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"wall_seconds\": %.3f,\n",
                 name_.c_str(), wall_seconds);
    std::fprintf(f, "  \"config\": {");
    for (size_t i = 0; i < config_.size(); ++i) {
      std::fprintf(f, "%s\"%s\": %s", i == 0 ? "" : ", ",
                   config_[i].first.c_str(), config_[i].second.c_str());
    }
    std::fprintf(f, "},\n  \"rows\": [\n");
    for (size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "    {");
      for (size_t i = 0; i < rows_[r].size(); ++i) {
        std::fprintf(f, "%s\"%s\": %s", i == 0 ? "" : ", ",
                     rows_[r][i].first.c_str(), rows_[r][i].second.c_str());
      }
      std::fprintf(f, "}%s\n", r + 1 == rows_.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
  }

 private:
  std::string name_;
  bool enabled_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

/// Prints and records the candidate-generation segment (wall seconds,
/// trials priced/pruned, generation-cache hits) in a bench's --json output:
/// cache-level counters come from the context's CandidateGenCache and
/// per-trial counters from the designers' generators (pass them accumulated
/// in `designer_totals`). BENCH_*.json thereby records the generation
/// trajectory next to the solver's.
inline void ReportCandgen(BenchJson* json, const DesignContext& context,
                          const CandGenStats& designer_totals) {
  CandGenStats cg = context.candgen_cache().stats();
  cg.Accumulate(designer_totals);
  std::printf("candgen: %s\n", cg.ToString().c_str());
  json->Config("candgen_wall_seconds", cg.wall_seconds);
  json->Config("candgen_trials_priced", static_cast<double>(cg.trials_priced));
  json->Config("candgen_trials_pruned", static_cast<double>(cg.trials_pruned));
  json->Config("candgen_groups_designed",
               static_cast<double>(cg.groups_designed));
  json->Config("candgen_cache_hits", static_cast<double>(cg.cache_hits));
  json->Config("candgen_cache_misses",
               static_cast<double>(cg.cache_misses));
}

/// Collects the (designer, budget) sweep of a figure bench and evaluates
/// every cell in one parallel DesignEvaluator::RunMany — designs are still
/// produced serially (designers share memoized models), but all executed
/// query runs fan out across the shared pool together.
class SweepRunner {
 public:
  SweepRunner(DesignEvaluator* evaluator, const Workload* workload)
      : evaluator_(evaluator), workload_(workload) {
    CORADD_CHECK(evaluator != nullptr && workload != nullptr);
  }

  /// Registers one sweep cell. Designs are moved in and kept alive here.
  void Add(std::string label, uint64_t budget, DatabaseDesign design,
           const CostModel* planner) {
    labels_.push_back(std::move(label));
    budgets_.push_back(budget);
    planners_.push_back(planner);
    designs_.push_back(
        std::make_unique<DatabaseDesign>(std::move(design)));
  }

  size_t size() const { return designs_.size(); }
  const std::string& label(size_t i) const { return labels_[i]; }
  uint64_t budget(size_t i) const { return budgets_[i]; }
  const DatabaseDesign& design(size_t i) const { return *designs_[i]; }

  /// Evaluates every registered cell; results align with Add() order.
  std::vector<WorkloadRunResult> RunAll() const {
    std::vector<EvalJob> jobs;
    jobs.reserve(designs_.size());
    for (size_t i = 0; i < designs_.size(); ++i) {
      jobs.push_back(EvalJob{designs_[i].get(), workload_, planners_[i]});
    }
    return evaluator_->RunMany(jobs);
  }

 private:
  DesignEvaluator* evaluator_;
  const Workload* workload_;
  std::vector<std::string> labels_;
  std::vector<uint64_t> budgets_;
  std::vector<const CostModel*> planners_;
  std::vector<std::unique_ptr<DatabaseDesign>> designs_;
};

/// Prints a row of right-aligned cells.
inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%*s", width, c.c_str());
  std::printf("\n");
}

inline void PrintHeader(const std::string& title,
                        const std::vector<std::string>& cells,
                        int width = 14) {
  std::printf("\n=== %s ===\n", title.c_str());
  PrintRow(cells, width);
  for (size_t i = 0; i < cells.size(); ++i) std::printf("%*s", width, "----");
  std::printf("\n");
}

}  // namespace bench
}  // namespace coradd
