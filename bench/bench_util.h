// Shared infrastructure for the paper-reproduction bench binaries: flag
// parsing, scaled SSB/APB fixtures, budget grids, and aligned table output.
//
// Scale note: the paper ran SSB Scale 4 / APB 45M rows on a physical disk.
// The harness defaults to smaller row counts with proportionally smaller
// simulated pages, preserving the *page-count geometry* (thousands of heap
// pages, multi-level B+Trees) that drives every effect under study. Pass
// --scale / --pages to change.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apb/apb.h"
#include "common/string_util.h"
#include "core/baseline_designers.h"
#include "core/coradd_designer.h"
#include "core/evaluator.h"
#include "ssb/ssb.h"

namespace coradd {
namespace bench {

/// Minimal --key=value flag access.
inline std::string FlagValue(int argc, char** argv, const std::string& key,
                             const std::string& default_value) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return default_value;
}

inline double FlagDouble(int argc, char** argv, const std::string& key,
                         double default_value) {
  const std::string v = FlagValue(argc, argv, key, "");
  return v.empty() ? default_value : std::atof(v.c_str());
}

/// A ready-to-use experiment fixture.
struct Fixture {
  std::unique_ptr<Catalog> catalog;
  Workload workload;
  std::unique_ptr<DesignContext> context;
  uint64_t fact_heap_bytes = 0;  ///< For budget grids relative to data size.
};

inline StatsOptions DefaultStats(uint32_t page_size) {
  StatsOptions sopt;
  sopt.sample_rows = 8192;
  sopt.disk.page_size_bytes = page_size;
  // Keep the paper's seek:page-transfer ratio (5.5 ms : one 8 KB page)
  // when simulating smaller pages, so seeks are not over-weighted 8x.
  sopt.disk.seek_seconds =
      0.0055 * static_cast<double>(page_size) / 8192.0;
  return sopt;
}

inline uint64_t FactHeapBytes(const DesignContext& context,
                              const Workload& workload) {
  uint64_t total = 0;
  for (const auto& fact : workload.FactTables()) {
    const UniverseStats* stats = context.StatsForFact(fact);
    HeapLayout layout;
    layout.num_rows = stats->num_rows();
    layout.row_width_bytes =
        stats->universe().fact_table().schema().RowWidthBytes();
    layout.page_size_bytes = stats->options().disk.page_size_bytes;
    total += layout.SizeBytes();
  }
  return total;
}

/// SSB fixture (13-query workload unless augmented = true).
inline Fixture MakeSsbFixture(double scale, uint32_t page_size,
                              bool augmented = false) {
  Fixture f;
  ssb::SsbOptions options;
  options.scale_factor = scale;
  f.catalog = ssb::MakeCatalog(options);
  f.workload = augmented ? ssb::MakeAugmentedWorkload() : ssb::MakeWorkload();
  f.context = std::make_unique<DesignContext>(f.catalog.get(), f.workload,
                                              DefaultStats(page_size));
  f.fact_heap_bytes = FactHeapBytes(*f.context, f.workload);
  return f;
}

/// APB fixture (31 queries, two fact tables).
inline Fixture MakeApbFixture(double scale, uint32_t page_size) {
  Fixture f;
  apb::ApbOptions options;
  options.scale = scale;
  f.catalog = apb::MakeCatalog(options);
  f.workload = apb::MakeWorkload(options);
  f.context = std::make_unique<DesignContext>(f.catalog.get(), f.workload,
                                              DefaultStats(page_size));
  f.fact_heap_bytes = FactHeapBytes(*f.context, f.workload);
  return f;
}

/// Budget grid as multiples of the fact heap size (the paper's 0..22 GB
/// axis spans ~0..9x the 2.5 GB APB data).
inline std::vector<uint64_t> BudgetGrid(uint64_t fact_bytes,
                                        std::vector<double> multiples = {
                                            0.0, 0.125, 0.25, 0.5, 1.0, 2.0,
                                            4.0, 8.0}) {
  std::vector<uint64_t> out;
  for (double m : multiples) {
    out.push_back(static_cast<uint64_t>(m * static_cast<double>(fact_bytes)));
  }
  return out;
}

/// CORADD options tuned for bench turnaround (documented in EXPERIMENTS.md).
inline CoraddOptions BenchCoraddOptions() {
  CoraddOptions options;
  options.candidates.grouping.alphas = {0.0, 0.25, 0.5};
  options.candidates.grouping.restarts = 1;
  options.feedback.max_iterations = 1;
  options.feedback.max_new_per_iteration = 250;
  // Near-exhaustive budgets make the exact search plateau-heavy; the
  // incumbent at this node cap is optimal in practice (cf. Figure 5's node
  // counts) and keeps sweep turnaround interactive.
  options.solver.max_nodes = 400000;
  options.solver.time_limit_seconds = 20.0;
  return options;
}

/// Prints a row of right-aligned cells.
inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%*s", width, c.c_str());
  std::printf("\n");
}

inline void PrintHeader(const std::string& title,
                        const std::vector<std::string>& cells,
                        int width = 14) {
  std::printf("\n=== %s ===\n", title.c_str());
  PrintRow(cells, width);
  for (size_t i = 0; i < cells.size(); ++i) std::printf("%*s", width, "----");
  std::printf("\n");
}

}  // namespace bench
}  // namespace coradd
