// Shared infrastructure for the paper-reproduction bench binaries: scaled
// SSB/APB fixtures, budget grids, aligned table output, and re-exports of
// the statistics-grade harness in src/benchkit/ (flags, repetition
// measurement, schema-v2 BENCH_*.json emission). Every bench runs its body
// through benchkit::Harness — warmup + N repetitions with per-repetition
// wall samples, summary statistics and 95% CIs; see docs/BENCHMARKING.md.
//
// Scale note: the paper ran SSB Scale 4 / APB 45M rows on a physical disk.
// The harness defaults to smaller row counts with proportionally smaller
// simulated pages, preserving the *page-count geometry* (thousands of heap
// pages, multi-level B+Trees) that drives every effect under study. Pass
// --scale / --pages to change.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apb/apb.h"
#include "benchkit/bench_json.h"
#include "benchkit/flags.h"
#include "benchkit/harness.h"
#include "common/string_util.h"
#include "core/baseline_designers.h"
#include "core/coradd_designer.h"
#include "core/evaluator.h"
#include "ssb/ssb.h"

namespace coradd {
namespace bench {

// Harness surface (implemented in src/benchkit/, shared with unit tests).
using benchkit::BenchJson;
using benchkit::FlagBool;
using benchkit::FlagDouble;
using benchkit::FlagInt;
using benchkit::FlagValue;
using benchkit::Harness;
using benchkit::MeasureThroughput;
using benchkit::RunPass;
using benchkit::SampleStats;
using benchkit::Summarize;
using benchkit::ThroughputOptions;
using benchkit::ThroughputResult;
using benchkit::WallTimer;

/// A ready-to-use experiment fixture.
struct Fixture {
  std::unique_ptr<Catalog> catalog;
  Workload workload;
  std::unique_ptr<DesignContext> context;
  uint64_t fact_heap_bytes = 0;  ///< For budget grids relative to data size.
};

inline StatsOptions DefaultStats(uint32_t page_size) {
  StatsOptions sopt;
  sopt.sample_rows = 8192;
  sopt.disk.page_size_bytes = page_size;
  // Keep the paper's seek:page-transfer ratio (5.5 ms : one 8 KB page)
  // when simulating smaller pages, so seeks are not over-weighted 8x.
  sopt.disk.seek_seconds =
      0.0055 * static_cast<double>(page_size) / 8192.0;
  return sopt;
}

inline uint64_t FactHeapBytes(const DesignContext& context,
                              const Workload& workload) {
  uint64_t total = 0;
  for (const auto& fact : workload.FactTables()) {
    const UniverseStats* stats = context.StatsForFact(fact);
    HeapLayout layout;
    layout.num_rows = stats->num_rows();
    layout.row_width_bytes =
        stats->universe().fact_table().schema().RowWidthBytes();
    layout.page_size_bytes = stats->options().disk.page_size_bytes;
    total += layout.SizeBytes();
  }
  return total;
}

/// SSB fixture (13-query workload unless augmented = true).
inline Fixture MakeSsbFixture(double scale, uint32_t page_size,
                              bool augmented = false) {
  Fixture f;
  ssb::SsbOptions options;
  options.scale_factor = scale;
  f.catalog = ssb::MakeCatalog(options);
  f.workload = augmented ? ssb::MakeAugmentedWorkload() : ssb::MakeWorkload();
  f.context = std::make_unique<DesignContext>(f.catalog.get(), f.workload,
                                              DefaultStats(page_size));
  f.fact_heap_bytes = FactHeapBytes(*f.context, f.workload);
  return f;
}

/// APB fixture (31 queries, two fact tables).
inline Fixture MakeApbFixture(double scale, uint32_t page_size) {
  Fixture f;
  apb::ApbOptions options;
  options.scale = scale;
  f.catalog = apb::MakeCatalog(options);
  f.workload = apb::MakeWorkload(options);
  f.context = std::make_unique<DesignContext>(f.catalog.get(), f.workload,
                                              DefaultStats(page_size));
  f.fact_heap_bytes = FactHeapBytes(*f.context, f.workload);
  return f;
}

/// Budget grid as multiples of the fact heap size (the paper's 0..22 GB
/// axis spans ~0..9x the 2.5 GB APB data).
inline std::vector<uint64_t> BudgetGrid(uint64_t fact_bytes,
                                        std::vector<double> multiples = {
                                            0.0, 0.125, 0.25, 0.5, 1.0, 2.0,
                                            4.0, 8.0}) {
  std::vector<uint64_t> out;
  for (double m : multiples) {
    out.push_back(static_cast<uint64_t>(m * static_cast<double>(fact_bytes)));
  }
  return out;
}

/// CORADD options tuned for bench turnaround (documented in EXPERIMENTS.md).
inline CoraddOptions BenchCoraddOptions() {
  CoraddOptions options;
  options.candidates.grouping.alphas = {0.0, 0.25, 0.5};
  options.candidates.grouping.restarts = 1;
  options.feedback.max_iterations = 1;
  options.feedback.max_new_per_iteration = 250;
  // Near-exhaustive budgets make the exact search plateau-heavy: the
  // incumbent — warm-started from the previous budget point and refined in
  // the first few waves — is optimal in practice (cf. Figure 5's node
  // counts), and everything past this cap is unprovable proof effort
  // against a loose bound. The cap is enforced at wave granularity, so
  // capped solves stay bit-identical at any thread count.
  options.solver.max_nodes = 60000;
  options.solver.time_limit_seconds = 20.0;
  return options;
}

/// Prints and records the candidate-generation segment (wall seconds,
/// trials priced/pruned, generation-cache hits) in a bench's --json output:
/// cache-level counters come from the context's CandidateGenCache and
/// per-trial counters from the designers' generators (pass them accumulated
/// in `designer_totals`). BENCH_*.json thereby records the generation
/// trajectory next to the solver's.
inline void ReportCandgen(BenchJson* json, const DesignContext& context,
                          const CandGenStats& designer_totals) {
  CandGenStats cg = context.candgen_cache().stats();
  cg.Accumulate(designer_totals);
  std::printf("candgen: %s\n", cg.ToString().c_str());
  json->Config("candgen_wall_seconds", cg.wall_seconds);
  json->Config("candgen_trials_priced", static_cast<double>(cg.trials_priced));
  json->Config("candgen_trials_pruned", static_cast<double>(cg.trials_pruned));
  json->Config("candgen_groups_designed",
               static_cast<double>(cg.groups_designed));
  json->Config("candgen_cache_hits", static_cast<double>(cg.cache_hits));
  json->Config("candgen_cache_misses",
               static_cast<double>(cg.cache_misses));
}

/// Collects the (designer, budget) sweep of a figure bench and evaluates
/// every cell in one parallel DesignEvaluator::RunMany — designs are still
/// produced serially (designers share memoized models), but all executed
/// query runs fan out across the shared pool together.
class SweepRunner {
 public:
  SweepRunner(DesignEvaluator* evaluator, const Workload* workload)
      : evaluator_(evaluator), workload_(workload) {
    CORADD_CHECK(evaluator != nullptr && workload != nullptr);
  }

  /// Registers one sweep cell. Designs are moved in and kept alive here.
  void Add(std::string label, uint64_t budget, DatabaseDesign design,
           const CostModel* planner) {
    labels_.push_back(std::move(label));
    budgets_.push_back(budget);
    planners_.push_back(planner);
    designs_.push_back(
        std::make_unique<DatabaseDesign>(std::move(design)));
  }

  size_t size() const { return designs_.size(); }
  const std::string& label(size_t i) const { return labels_[i]; }
  uint64_t budget(size_t i) const { return budgets_[i]; }
  const DatabaseDesign& design(size_t i) const { return *designs_[i]; }

  /// Evaluates every registered cell; results align with Add() order.
  std::vector<WorkloadRunResult> RunAll() const {
    std::vector<EvalJob> jobs;
    jobs.reserve(designs_.size());
    for (size_t i = 0; i < designs_.size(); ++i) {
      jobs.push_back(EvalJob{designs_[i].get(), workload_, planners_[i]});
    }
    return evaluator_->RunMany(jobs);
  }

 private:
  DesignEvaluator* evaluator_;
  const Workload* workload_;
  std::vector<std::string> labels_;
  std::vector<uint64_t> budgets_;
  std::vector<const CostModel*> planners_;
  std::vector<std::unique_ptr<DatabaseDesign>> designs_;
};

/// Prints a row of right-aligned cells.
inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%*s", width, c.c_str());
  std::printf("\n");
}

inline void PrintHeader(const std::string& title,
                        const std::vector<std::string>& cells,
                        int width = 14) {
  std::printf("\n=== %s ===\n", title.c_str());
  PrintRow(cells, width);
  for (size_t i = 0; i < cells.size(); ++i) std::printf("%*s", width, "----");
  std::printf("\n");
}

}  // namespace bench
}  // namespace coradd
