// Reproduces Figure 9: APB-1 comparison across space budgets —
// CORADD's executed runtime, CORADD's own model estimate (CORADD-Model),
// the commercial-proxy design's executed runtime (Commercial), and the
// oblivious model's estimate of its own design (Commercial Cost Model).
// Paper shape: CORADD 1.5-3x faster at tight budgets, 5-6x at large ones;
// CORADD-Model tracks reality; the commercial model underestimates badly.
#include "bench/bench_util.h"

using namespace coradd;
using namespace coradd::bench;

int main(int argc, char** argv) {
  const double scale = FlagDouble(argc, argv, "scale", 0.004);
  Fixture f = MakeApbFixture(scale, 1024);
  std::printf("APB-1-like: %zu actuals + %zu budget rows, 31 queries\n",
              f.catalog->GetTable("actuals")->NumRows(),
              f.catalog->GetTable("budget")->NumRows());

  CoraddDesigner coradd(f.context.get(), BenchCoraddOptions());
  CommercialDesigner commercial(f.context.get());
  DesignEvaluator evaluator(f.context.get(), /*cache_capacity=*/48);

  PrintHeader("Figure 9: comparison on APB-1 (total runtime of 31 queries)",
              {"budget", "CORADD[s]", "CORADD-Mod", "Commercial",
               "Comm-Model", "speedup"});
  for (uint64_t budget : BudgetGrid(f.fact_heap_bytes,
                                    {0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0})) {
    const DatabaseDesign dc = coradd.Design(f.workload, budget);
    const WorkloadRunResult rc =
        evaluator.Run(dc, f.workload, coradd.model());

    const DatabaseDesign dm = commercial.Design(f.workload, budget);
    const WorkloadRunResult rm =
        evaluator.Run(dm, f.workload, commercial.model());

    PrintRow({HumanBytes(budget), StrFormat("%.3f", rc.total_seconds),
              StrFormat("%.3f", rc.expected_seconds),
              StrFormat("%.3f", rm.total_seconds),
              StrFormat("%.3f", rm.expected_seconds),
              StrFormat("%.2fx", rm.total_seconds /
                                     std::max(1e-12, rc.total_seconds))});
  }
  std::printf(
      "\nPaper shape check: speedup grows with budget (1.5-3x tight,\n"
      "5-6x large); CORADD-Mod ~= CORADD; Comm-Model << Commercial.\n");
  return 0;
}
