// Reproduces Figure 9: APB-1 comparison across space budgets —
// CORADD's executed runtime, CORADD's own model estimate (CORADD-Model),
// the commercial-proxy design's executed runtime (Commercial), and the
// oblivious model's estimate of its own design (Commercial Cost Model).
// Paper shape: CORADD 1.5-3x faster at tight budgets, 5-6x at large ones;
// CORADD-Model tracks reality; the commercial model underestimates badly.
//
// CORADD designs through the warm-started DesignMany chain (shared
// candidate pool and prices), the commercial proxy fills its budget cells
// concurrently, then every (designer, budget) cell is executed in one
// parallel RunMany sweep — all under the benchkit repetition harness.
// --json emits schema-v2 BENCH_fig9_apb.json.
#include "common/thread_pool.h"
#include "bench/bench_util.h"

using namespace coradd;
using namespace coradd::bench;

int main(int argc, char** argv) {
  Harness h("fig9_apb", argc, argv);
  const double scale = FlagDouble(argc, argv, "scale", 0.004);
  BenchJson& json = h.json();
  json.Config("scale", scale);

  h.Run([&](const RunPass& pass) {
    WallTimer timer;
    Fixture f = MakeApbFixture(scale, 1024);
    if (pass.reporting) {
      std::printf("APB-1-like: %zu actuals + %zu budget rows, 31 queries\n",
                  f.catalog->GetTable("actuals")->NumRows(),
                  f.catalog->GetTable("budget")->NumRows());
    }

    CoraddDesigner coradd(f.context.get(), BenchCoraddOptions());
    CommercialDesigner commercial(f.context.get());
    DesignEvaluator evaluator(f.context.get(), /*cache_capacity=*/48);

    const std::vector<uint64_t> budgets =
        BudgetGrid(f.fact_heap_bytes, {0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0});
    std::vector<DatabaseDesign> coradd_designs =
        coradd.DesignMany(f.workload, budgets);
    std::vector<DatabaseDesign> commercial_designs(budgets.size());
    ThreadPool::Shared().ParallelFor(budgets.size(), [&](size_t b) {
      commercial_designs[b] = commercial.Design(f.workload, budgets[b]);
    });

    SweepRunner sweep(&evaluator, &f.workload);
    for (size_t b = 0; b < budgets.size(); ++b) {
      sweep.Add("coradd", budgets[b], std::move(coradd_designs[b]),
                &coradd.model());
      sweep.Add("commercial", budgets[b], std::move(commercial_designs[b]),
                &commercial.model());
    }
    const double design_done = timer.Seconds();
    const std::vector<WorkloadRunResult> runs = sweep.RunAll();
    const double eval_seconds = timer.Seconds() - design_done;
    h.Sample("design_seconds", design_done);
    h.Sample("eval_seconds", eval_seconds);

    if (!pass.reporting) return;
    PrintHeader("Figure 9: comparison on APB-1 (total runtime of 31 queries)",
                {"budget", "CORADD[s]", "CORADD-Mod", "Commercial",
                 "Comm-Model", "speedup"});
    for (size_t i = 0; i + 1 < runs.size(); i += 2) {
      const WorkloadRunResult& rc = runs[i];      // coradd
      const WorkloadRunResult& rm = runs[i + 1];  // commercial
      PrintRow({HumanBytes(sweep.budget(i)),
                StrFormat("%.3f", rc.total_seconds),
                StrFormat("%.3f", rc.expected_seconds),
                StrFormat("%.3f", rm.total_seconds),
                StrFormat("%.3f", rm.expected_seconds),
                StrFormat("%.2fx", rm.total_seconds /
                                       std::max(1e-12, rc.total_seconds))});
      for (size_t k : {i, i + 1}) {
        json.Row({{"designer", BenchJson::Quote(sweep.label(k))},
                  {"budget_bytes",
                   BenchJson::Num(static_cast<double>(sweep.budget(k)))},
                  {"simulated_seconds", BenchJson::Num(runs[k].total_seconds)},
                  {"expected_seconds",
                   BenchJson::Num(runs[k].expected_seconds)}});
      }
    }
    std::printf(
        "\nPaper shape check: speedup grows with budget (1.5-3x tight,\n"
        "5-6x large); CORADD-Mod ~= CORADD; Comm-Model << Commercial.\n");
    std::printf("wall time: %.1fs (fixture+design %.1fs, evaluation %.1fs)\n",
                timer.Seconds(), design_done, eval_seconds);
    json.Config("eval_seconds", eval_seconds);
    CandGenStats candgen = coradd.candgen_stats();
    candgen.Accumulate(commercial.candgen_stats());
    ReportCandgen(&json, *f.context, candgen);
  });
  return h.Finish();
}
