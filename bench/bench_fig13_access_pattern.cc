// Reproduces Figure 13 / A-2.1: the same secondary lookup on commitdate
// against a fact table clustered by orderdate (correlated) vs orderkey
// (uncorrelated). The paper measured 6s vs 150s (25x) on SSB Scale 20.
// Also prints a coarse visualization of which heap regions are touched.
// Runs under the benchkit repetition harness; --json emits schema-v2
// BENCH_fig13_access_pattern.json.
#include "cost/correlation_cost_model.h"
#include "bench/bench_util.h"
#include "exec/executor.h"

using namespace coradd;
using namespace coradd::bench;

int main(int argc, char** argv) {
  Harness h("fig13_access_pattern", argc, argv);
  const double scale = FlagDouble(argc, argv, "scale", 0.02);
  BenchJson& json = h.json();
  json.Config("scale", scale);

  h.Run([&](const RunPass& pass) {
    Fixture f = MakeSsbFixture(scale, 1024);
    const UniverseStats* stats = f.context->StatsForFact("lineorder");
    const Universe& u = stats->universe();
    CorrelationCostModel model(&f.context->registry());
    Materializer materializer(f.context->UniverseForFact("lineorder"),
                              stats->options().disk);
    QueryExecutor executor(&f.context->registry(), &model);

    Query q;
    q.id = "fig13";
    q.fact_table = "lineorder";
    q.predicates = {Predicate::Range("lo_commitdate", 19950101, 19950103)};
    q.aggregates = {{"lo_extendedprice", "lo_discount"}};

    struct Case {
      const char* name;
      const char* key;
    };
    double correlated_seconds = 0.0, uncorrelated_seconds = 0.0;
    for (const Case c : {Case{"orderdate (correlated)", "lo_orderdate"},
                         Case{"orderkey (uncorrelated)", "lo_orderkey"}}) {
      MvSpec spec;
      spec.name = std::string("fact_by_") + c.key;
      spec.fact_table = "lineorder";
      for (size_t col = 0; col < u.fact_table().schema().NumColumns(); ++col) {
        spec.columns.push_back(u.fact_table().schema().Column(col).name);
      }
      spec.clustered_key = {c.key};
      spec.is_fact_recluster = true;
      CmSpec cm;
      cm.key_columns = {"lo_commitdate"};
      auto obj = materializer.Materialize(spec, {cm});

      DiskModel disk(stats->options().disk);
      const QueryRunResult run = executor.Run(q, *obj, &disk);
      if (c.key == std::string("lo_orderdate")) {
        correlated_seconds = run.seconds;
      } else {
        uncorrelated_seconds = run.seconds;
      }

      if (!pass.reporting) continue;
      // Visualize the touched pages as a 64-char strip (Fig 13 style).
      std::string strip(64, '.');
      const int cd = obj->table->table().schema().ColumnIndex("lo_commitdate");
      for (RowId r = 0; r < obj->table->NumRows(); ++r) {
        const int64_t v = obj->table->table().Value(r, static_cast<size_t>(cd));
        if (v >= 19950101 && v <= 19950103) {
          strip[static_cast<size_t>(obj->table->PageOfRow(r) * 64 /
                                    obj->table->NumPages())] = '#';
        }
      }
      std::printf("clustered on %-26s [%s]\n", c.name, strip.c_str());
      std::printf("  fragments=%llu pages_read=%llu seeks=%llu time=%s\n",
                  static_cast<unsigned long long>(run.fragments),
                  static_cast<unsigned long long>(run.pages_read),
                  static_cast<unsigned long long>(run.seeks),
                  HumanSeconds(run.seconds).c_str());
      json.Row({{"clustered_on", BenchJson::Quote(c.key)},
                {"fragments",
                 BenchJson::Num(static_cast<double>(run.fragments))},
                {"pages_read",
                 BenchJson::Num(static_cast<double>(run.pages_read))},
                {"seeks", BenchJson::Num(static_cast<double>(run.seeks))},
                {"simulated_seconds", BenchJson::Num(run.seconds)}});
    }
    if (pass.reporting) {
      std::printf(
          "\nuncorrelated/correlated runtime ratio: %.1fx  (paper: 150s/6s = "
          "25x at Scale 20)\n",
          uncorrelated_seconds / std::max(1e-12, correlated_seconds));
      json.Config("runtime_ratio",
                  uncorrelated_seconds / std::max(1e-12, correlated_seconds));
    }
  });
  return h.Finish();
}
