// Reproduces Tables 1 and 2: selectivity vectors of SSB Q1.1-Q1.3 before
// and after Selectivity Propagation, plus the correlation strengths the
// propagation uses. Run: bench_table1_2_selectivity [--scale=0.02]
#include "bench/bench_util.h"
#include "mv/selectivity_vector.h"

using namespace coradd;
using namespace coradd::bench;

int main(int argc, char** argv) {
  const double scale = FlagDouble(argc, argv, "scale", 0.02);
  Fixture f = MakeSsbFixture(scale, 1024);
  const UniverseStats* stats = f.context->StatsForFact("lineorder");
  const Universe& u = stats->universe();

  const std::vector<std::string> attrs = {"d_year", "d_yearmonthnum",
                                          "d_weeknuminyear", "lo_discount",
                                          "lo_quantity"};
  SelectivityVectorBuilder builder(stats);

  PrintHeader("Table 1: selectivity vectors of SSB (before propagation)",
              {"query", "year", "yearmonth", "weeknum", "discount", "qty"});
  for (int qi = 0; qi < 3; ++qi) {
    const Query& q = f.workload.queries[static_cast<size_t>(qi)];
    const auto v = builder.Raw(q);
    std::vector<std::string> row = {q.id};
    for (const auto& a : attrs) {
      row.push_back(StrFormat("%.4f", v[static_cast<size_t>(u.ColumnIndex(a))]));
    }
    PrintRow(row);
  }

  const CorrelationCatalog& corr = stats->correlations();
  const int year = u.ColumnIndex("d_year");
  const int ymn = u.ColumnIndex("d_yearmonthnum");
  const int week = u.ColumnIndex("d_weeknuminyear");
  std::printf("\nStrength(yearmonth -> year)          = %.3f\n",
              corr.Strength(ymn, year));
  std::printf("Strength(year -> yearmonth)          = %.3f\n",
              corr.Strength(year, ymn));
  std::printf("Strength(weeknum -> yearmonth)       = %.3f\n",
              corr.Strength(week, ymn));
  std::printf("Strength(yearmonth -> year,weeknum)  = %.3f\n",
              corr.Strength(std::vector<int>{ymn}, std::vector<int>{year, week}));

  PrintHeader("Table 2: selectivity vectors after propagation",
              {"query", "year", "yearmonth", "weeknum", "discount", "qty"});
  for (int qi = 0; qi < 3; ++qi) {
    const Query& q = f.workload.queries[static_cast<size_t>(qi)];
    const auto v = builder.Propagated(q);
    std::vector<std::string> row = {q.id};
    for (const auto& a : attrs) {
      row.push_back(StrFormat("%.4f", v[static_cast<size_t>(u.ColumnIndex(a))]));
    }
    PrintRow(row);
  }
  std::printf(
      "\nPaper shape check: after propagation Q1.2's `year` and Q1.3's\n"
      "`yearmonth` drop from 1.0 to ~the determining attribute's level.\n");
  return 0;
}
