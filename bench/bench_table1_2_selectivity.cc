// Reproduces Tables 1 and 2: selectivity vectors of SSB Q1.1-Q1.3 before
// and after Selectivity Propagation, plus the correlation strengths the
// propagation uses. Runs under the benchkit repetition harness; --json
// emits schema-v2 BENCH_table1_2_selectivity.json.
// Run: bench_table1_2_selectivity [--scale=0.02]
#include "bench/bench_util.h"
#include "mv/selectivity_vector.h"

using namespace coradd;
using namespace coradd::bench;

int main(int argc, char** argv) {
  Harness h("table1_2_selectivity", argc, argv);
  const double scale = FlagDouble(argc, argv, "scale", 0.02);
  BenchJson& json = h.json();
  json.Config("scale", scale);

  h.Run([&](const RunPass& pass) {
    Fixture f = MakeSsbFixture(scale, 1024);
    const UniverseStats* stats = f.context->StatsForFact("lineorder");
    const Universe& u = stats->universe();

    const std::vector<std::string> attrs = {"d_year", "d_yearmonthnum",
                                            "d_weeknuminyear", "lo_discount",
                                            "lo_quantity"};
    SelectivityVectorBuilder builder(stats);

    auto emit = [&](const char* table, bool propagated) {
      if (pass.reporting) {
        PrintHeader(table, {"query", "year", "yearmonth", "weeknum",
                            "discount", "qty"});
      }
      for (int qi = 0; qi < 3; ++qi) {
        const Query& q = f.workload.queries[static_cast<size_t>(qi)];
        const auto v = propagated ? builder.Propagated(q) : builder.Raw(q);
        if (!pass.reporting) continue;
        std::vector<std::string> row = {q.id};
        std::vector<std::pair<std::string, std::string>> fields = {
            {"table", BenchJson::Quote(propagated ? "after" : "before")},
            {"query", BenchJson::Quote(q.id)}};
        for (const auto& a : attrs) {
          const double sel = v[static_cast<size_t>(u.ColumnIndex(a))];
          row.push_back(StrFormat("%.4f", sel));
          fields.emplace_back(a, BenchJson::Num(sel));
        }
        PrintRow(row);
        json.Row(std::move(fields));
      }
    };

    emit("Table 1: selectivity vectors of SSB (before propagation)", false);

    const CorrelationCatalog& corr = stats->correlations();
    const int year = u.ColumnIndex("d_year");
    const int ymn = u.ColumnIndex("d_yearmonthnum");
    const int week = u.ColumnIndex("d_weeknuminyear");
    if (pass.reporting) {
      std::printf("\nStrength(yearmonth -> year)          = %.3f\n",
                  corr.Strength(ymn, year));
      std::printf("Strength(year -> yearmonth)          = %.3f\n",
                  corr.Strength(year, ymn));
      std::printf("Strength(weeknum -> yearmonth)       = %.3f\n",
                  corr.Strength(week, ymn));
      std::printf("Strength(yearmonth -> year,weeknum)  = %.3f\n",
                  corr.Strength(std::vector<int>{ymn},
                                std::vector<int>{year, week}));
    }

    emit("Table 2: selectivity vectors after propagation", true);
    if (pass.reporting) {
      std::printf(
          "\nPaper shape check: after propagation Q1.2's `year` and Q1.3's\n"
          "`yearmonth` drop from 1.0 to ~the determining attribute's "
          "level.\n");
    }
  });
  return h.Finish();
}
