// Reproduces Figure 6: solver runtime versus number of MV candidates.
// The paper's CPLEX solved its LP in minutes up to 20k candidates; we
// report the parallel solver engine (solver/solver.h) side by side with
// the legacy serial branch & bound it replaced, on synthetic pools up to
// 20k candidates, plus the dense-simplex LP relaxation at smaller sizes
// (the substitution is documented in DESIGN.md §2). The exact-size section
// doubles as a live old-vs-new cross-check: both engines must agree on the
// objective. Runs under the benchkit repetition harness; --json emits
// schema-v2 BENCH_fig6_solver_runtime.json with SolverStats.
#include <chrono>
#include <cmath>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "ilp/branch_and_bound.h"
#include "ilp/ilp_problem.h"
#include "solver/solver.h"

using namespace coradd;
using namespace coradd::bench;

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Synthetic selection instance shaped like CORADD's: each candidate is an
/// MV built for a small query group (serving 1-3 queries), bigger MVs tend
/// to be faster for their group (more useful columns, better clustering),
/// and the budget binds like the paper's mid-range points.
SelectionProblem Synthetic(size_t num_candidates, size_t num_queries,
                           uint64_t seed) {
  Rng rng(seed);
  SelectionProblem p;
  p.sizes = {0};
  p.forced = {0};
  p.costs.resize(num_queries);
  for (auto& row : p.costs) row.push_back(120.0);  // base full scan

  uint64_t total_bytes = 0;
  for (size_t m = 1; m < num_candidates; ++m) {
    const uint64_t size = (rng.Uniform(64) + 1) << 20;
    p.sizes.push_back(size);
    total_bytes += size;
    // Query group of 1-3 queries; runtime improves with size, plus noise
    // so every candidate is distinct (real cost tables have no ties).
    const size_t group = 1 + rng.Uniform(3);
    const double quality =
        120.0 / (1.0 + static_cast<double>(size >> 20) / 8.0);
    for (size_t g = 0; g < group; ++g) {
      const size_t q = rng.Uniform(num_queries);
      p.costs[q].resize(num_candidates, kInfeasibleCost);
      p.costs[q][m] = quality * (0.8 + 0.4 * rng.UniformDouble());
    }
  }
  for (auto& row : p.costs) row.resize(num_candidates, kInfeasibleCost);
  p.budget_bytes = total_bytes / 6;  // binding, like the paper's mid budgets
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  Harness h("fig6_solver_runtime", argc, argv);
  const double max_thousands =
      FlagDouble(argc, argv, "max", h.fast() ? 2.0 : 20.0);
  BenchJson& json = h.json();
  json.Config("max_thousands", max_thousands);

  h.Run([&](const RunPass& pass) {
    // Realistic sizes first: what actually reaches the solver after
    // domination pruning (§5.3: ~160 candidates) is solved to proven
    // optimality in well under the paper's <1s — by both engines, which
    // must agree on the objective (the legacy serial search stays as the
    // reference implementation).
    const SolverEngine engine;
    if (pass.reporting) {
      PrintHeader("Exact solve at post-domination sizes (proven optimal)",
                  {"#cands", "engine[s]", "legacy[s]", "nodes", "match",
                   "expected[s]"});
    }
    for (size_t n : {100ul, 200ul, 400ul, 800ul}) {
      const SelectionProblem p = Synthetic(n, 13, n);
      SolverStats stats;
      const double t0 = Now();
      const SelectionResult r = engine.Solve(p, &stats);
      const double engine_secs = Now() - t0;
      const double t1 = Now();
      const SelectionResult legacy = SolveSelectionExact(p);
      const double legacy_secs = Now() - t1;
      if (n == 800ul) {
        h.Sample("exact800_engine_seconds", engine_secs);
        h.Sample("exact800_legacy_seconds", legacy_secs);
      }
      // Objective equality within the engine's optimality gap (the chosen
      // sets may differ on equal-cost plateaus, and a gap-pruned engine
      // solve may sit up to relative_gap above the legacy optimum; each
      // engine is individually deterministic).
      const double tol =
          2.0 * engine.options().relative_gap * (1.0 + legacy.expected_cost);
      const bool match =
          std::abs(r.expected_cost - legacy.expected_cost) <= tol &&
          r.proved_optimal && legacy.proved_optimal;
      if (!pass.reporting) continue;
      PrintRow({std::to_string(n), StrFormat("%.3f", engine_secs),
                StrFormat("%.3f", legacy_secs),
                std::to_string(r.nodes_explored), match ? "yes" : "NO",
                StrFormat("%.1f", r.expected_cost)});
      json.Row({{"section", BenchJson::Quote("exact")},
                {"candidates", BenchJson::Num(static_cast<double>(n))},
                {"engine_seconds", BenchJson::Num(engine_secs)},
                {"legacy_seconds", BenchJson::Num(legacy_secs)},
                {"solver_nodes",
                 BenchJson::Num(static_cast<double>(stats.nodes_expanded))},
                {"solver_prunes",
                 BenchJson::Num(static_cast<double>(stats.bound_prunes))},
                {"solver_waves",
                 BenchJson::Num(static_cast<double>(stats.waves))},
                {"objective", BenchJson::Num(r.expected_cost)},
                {"objectives_match",
                 match ? std::string("true") : std::string("false")}});
    }

    // Stress scale (the paper's 0-20k sweep): time-capped search; quality
    // is reported against the density-greedy heuristic (the incumbent is
    // always at least as good; "optimal=yes" means proven).
    if (pass.reporting) {
      PrintHeader("Figure 6: solver runtime vs #MV candidates (20s cap)",
                  {"#cands", "engine[s]", "optimal", "engine_cost",
                   "greedy_cost"});
    }
    for (size_t n : {1000ul, 2000ul, 5000ul, 10000ul, 15000ul, 20000ul}) {
      if (n > static_cast<size_t>(max_thousands * 1000)) break;
      const SelectionProblem p = Synthetic(n, 13, n);
      SolverOptions options;
      options.time_limit_seconds = h.fast() ? 2.0 : 20.0;
      const SolverEngine capped(options);
      SolverStats stats;
      const double t0 = Now();
      const SelectionResult r = capped.Solve(p, &stats);
      const double secs = Now() - t0;
      const SelectionResult greedy = SolveSelectionGreedyDensity(p);
      if (!pass.reporting) continue;
      PrintRow({std::to_string(n), StrFormat("%.3f", secs),
                r.proved_optimal ? "yes" : "no",
                StrFormat("%.1f", r.expected_cost),
                StrFormat("%.1f", greedy.expected_cost)});
      json.Row({{"section", BenchJson::Quote("stress")},
                {"candidates", BenchJson::Num(static_cast<double>(n))},
                {"engine_seconds", BenchJson::Num(secs)},
                {"solver_nodes",
                 BenchJson::Num(static_cast<double>(stats.nodes_expanded))},
                {"proved_optimal", r.proved_optimal ? std::string("true")
                                                    : std::string("false")},
                {"engine_cost", BenchJson::Num(r.expected_cost)},
                {"greedy_cost", BenchJson::Num(greedy.expected_cost)}});
    }

    if (pass.reporting) {
      PrintHeader("LP relaxation (dense two-phase simplex) runtime",
                  {"#cands", "lp[s]", "iters", "objective"});
    }
    for (size_t n : {50ul, 100ul, 200ul, 400ul}) {
      const SelectionProblem p = Synthetic(n, 13, n + 7);
      const PaperIlpFormulation form = BuildPaperIlp(p);
      const double t0 = Now();
      const LpSolution s = SolvePaperLpRelaxation(form);
      const double secs = Now() - t0;
      if (n == 400ul) h.Sample("lp400_seconds", secs);
      if (!pass.reporting) continue;
      PrintRow({std::to_string(n), StrFormat("%.3f", secs),
                std::to_string(s.iterations),
                s.status == LpStatus::kOptimal
                    ? StrFormat("%.1f", s.objective)
                    : std::string("n/a")});
      json.Row({{"section", BenchJson::Quote("lp")},
                {"candidates", BenchJson::Num(static_cast<double>(n))},
                {"lp_seconds", BenchJson::Num(secs)},
                {"lp_iterations",
                 BenchJson::Num(static_cast<double>(s.iterations))}});
    }
    if (pass.reporting) {
      std::printf(
          "\nPaper shape check: proven-optimal in <<1s at the "
          "~160-candidate\nsizes domination pruning leaves on real workloads "
          "(§5.3); at the\nsynthetic 0-20k stress sweep, runtime grows with "
          "candidate count and\nthe capped search still returns solutions no "
          "worse than greedy\n(the paper's CPLEX needed minutes at 20k).\n");
    }
  });
  return h.Finish();
}
