// Concurrent query-serving bench (ROADMAP item 1, docs/SERVING.md): N
// closed-loop client sessions stream Zipf-skewed ("lookalike-heavy") SSB
// queries into the ServingEngine over a base-only design, with shared-scan
// batching on vs off, across a (threads x clients) grid. Reports served
// QPS and p50/p95/p99 latency per cell; --json emits schema-v2
// BENCH_serving.json with per-repetition qps_*/spq_*/p95_* samples (spq =
// seconds per query, the lower-is-better form bench_compare gates on).
//
// The batching win is WORK REDUCTION, not parallelism, so it survives
// 1-core CI runners: one cooperative pass gathers each batch's provenance
// columns once for the whole group, and lookalike dedup executes each
// DISTINCT query once per group — duplicates (frequent under Zipf skew)
// receive the bit-identical result without re-running filter/aggregate.
// `--assert-shared-speedup=X` gates batching-on vs off QPS at the largest
// client count: exit 1 unless the speedup is >= X and Welch-significant at
// the 5% level.
//
// A maintenance row routes insert batches through the engine concurrently
// with a single reading client (writer epochs interleave with read epochs)
// and cross-checks the engine's cumulative cost against the isolated
// SimulateInsertions run of the same total — split invariance makes the
// ratio exactly 1.
//
// A pooled section switches to a per-query MV design (selective clustered
// plans, so the working set is cacheable — the base-only full scans above
// would just cycle any pool) and sweeps the engine's shared buffer pool
// size, reporting warm hit rate, served QPS, and warm simulated
// seconds-per-query vs the cold solo cost. `--assert-hit-rate=X` gates the
// warm hit rate at `--pool-frac` (default 0.25: pool = 25% of the working
// set): exit 1 unless the mean rate is >= X and Welch-distinguishable from
// it. `--pool-pages=N` pins an absolute capacity instead of the sweep.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "cost/correlation_cost_model.h"
#include "exec/maintenance.h"
#include "serving/client_driver.h"
#include "serving/serving.h"

using namespace coradd;
using namespace coradd::bench;

namespace {

using serving::ArrivalMode;
using serving::ClientRunOptions;
using serving::MakeLookalikeStream;
using serving::RunClients;
using serving::ServingEngine;
using serving::ServingOptions;
using serving::ServingRunStats;
using serving::ServingStats;

/// Base-only design: every query routed to the PK-clustered base, so every
/// plan is a full scan of the same object — the maximal-sharing regime a
/// lookalike-heavy stream produces (richer designs group per (object,
/// ranges); the base-only case isolates the batching effect itself).
DatabaseDesign BaseOnlyDesign(const Fixture& f) {
  DatabaseDesign d;
  d.designer = "base-only";
  DesignedObject obj;
  obj.spec.name = "base";
  obj.spec.fact_table = "lineorder";
  const Universe* u = f.context->UniverseForFact("lineorder");
  for (size_t c = 0; c < u->fact_table().schema().NumColumns(); ++c) {
    obj.spec.columns.push_back(u->fact_table().schema().Column(c).name);
  }
  obj.spec.clustered_key = {"lo_orderkey", "lo_linenumber"};
  obj.spec.is_fact_recluster = true;
  obj.spec.is_base = true;
  d.objects.push_back(obj);
  d.object_for_query.assign(f.workload.queries.size(), 0);
  return d;
}

/// Per-query MV design: one materialized view per query, clustered on the
/// query's predicate columns, so selected plans are narrow clustered range
/// scans. This is the regime where a shared pool pays off: a Zipf-skewed
/// stream concentrates touches on the hot queries' page ranges.
DatabaseDesign PerQueryMvDesign(const Fixture& f) {
  DatabaseDesign d;
  d.designer = "per-query-mv";
  for (size_t qi = 0; qi < f.workload.queries.size(); ++qi) {
    const Query& q = f.workload.queries[qi];
    DesignedObject obj;
    obj.spec.name = "mv_q" + std::to_string(qi);
    obj.spec.fact_table = q.fact_table;
    obj.spec.columns = q.AllColumns();
    obj.spec.clustered_key = q.PredicateColumns();
    d.objects.push_back(obj);
    d.object_for_query.push_back(qi);
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  Harness h("serving", argc, argv);
  // Fast mode keeps the full scale: below ~0.01 per-query work shrinks to
  // the engine's dispatch overhead and the batching A/B loses resolution.
  const double scale = FlagDouble(argc, argv, "scale", 0.01);
  const size_t per_client = static_cast<size_t>(
      FlagDouble(argc, argv, "queries", h.fast() ? 32 : 64));
  const double zipf_s = FlagDouble(argc, argv, "zipf", 1.2);
  const double assert_shared_speedup =
      FlagDouble(argc, argv, "assert-shared-speedup", 0.0);
  const double pool_frac = FlagDouble(argc, argv, "pool-frac", 0.25);
  const int pool_pages_flag = FlagInt(argc, argv, "pool-pages", 0);
  const double assert_hit_rate = FlagDouble(argc, argv, "assert-hit-rate", 0.0);
  const std::vector<size_t> thread_grid =
      h.fast() ? std::vector<size_t>{2} : std::vector<size_t>{1, 2, 4};
  const std::vector<size_t> client_grid =
      h.fast() ? std::vector<size_t>{1, 4} : std::vector<size_t>{1, 4, 8};

  BenchJson& json = h.json();
  json.Config("scale", scale);
  json.Config("queries_per_client", static_cast<double>(per_client));
  json.Config("zipf_s", zipf_s);

  // Gate samples: QPS per measured pass at the largest client count, and
  // warm pool hit rate at the gate pool size.
  const size_t gate_clients = client_grid.back();
  std::vector<double> gate_qps_on, gate_qps_off;
  std::vector<double> gate_hit_rate;

  PrintHeader(
      "served QPS and latency: threads x clients x shared-scan batching",
      {"threads", "clients", "batching", "qps", "p50[ms]", "p95[ms]",
       "p99[ms]", "shared", "groups", "dedup"});

  h.Run([&](const RunPass& pass) {
    Fixture f = MakeSsbFixture(scale, /*page_size=*/1024);
    const DatabaseDesign design = BaseOnlyDesign(f);
    CorrelationCostModel planner(&f.context->registry());
    if (pass.reporting) {
      std::printf("SSB scale %.3g: %zu workload queries, %zu-row stream "
                  "per client (zipf s=%.2f)\n",
                  scale, f.workload.queries.size(), per_client, zipf_s);
    }

    for (size_t threads : thread_grid) {
      ThreadPool pool(threads);
      for (size_t clients : client_grid) {
        std::vector<std::vector<size_t>> streams;
        for (size_t c = 0; c < clients; ++c) {
          streams.push_back(MakeLookalikeStream(
              f.workload.queries.size(), per_client, 100 + c, zipf_s));
        }
        for (const bool batching : {true, false}) {
          ServingOptions options;
          options.shared_scan = batching;
          options.exec.pool = &pool;
          ServingEngine engine(f.context.get(), &design, &f.workload,
                               &planner, options);
          engine.Start();
          const ServingRunStats run = RunClients(&engine, streams);
          engine.Stop();
          const ServingStats stats = engine.stats();

          const std::string tag = StrFormat(
              "t%zu_c%zu_%s", threads, clients, batching ? "on" : "off");
          h.Sample("qps_" + tag, run.qps);
          h.Sample("spq_" + tag,
                   run.qps > 0.0 ? 1.0 / run.qps : 0.0);
          h.Sample("p95_" + tag, run.p95_latency_seconds);
          if (clients == gate_clients && !pass.warmup) {
            (batching ? gate_qps_on : gate_qps_off).push_back(run.qps);
          }
          if (!pass.reporting) continue;
          PrintRow({std::to_string(threads), std::to_string(clients),
                    batching ? "on" : "off", StrFormat("%.0f", run.qps),
                    StrFormat("%.3f", 1e3 * run.p50_latency_seconds),
                    StrFormat("%.3f", 1e3 * run.p95_latency_seconds),
                    StrFormat("%.3f", 1e3 * run.p99_latency_seconds),
                    std::to_string(run.shared),
                    std::to_string(stats.groups),
                    std::to_string(stats.lookalike_hits)});
          json.Row(
              {{"threads", BenchJson::Num(static_cast<double>(threads))},
               {"clients", BenchJson::Num(static_cast<double>(clients))},
               {"batching", batching ? std::string("true")
                                     : std::string("false")},
               {"qps", BenchJson::Num(run.qps)},
               {"p50_seconds", BenchJson::Num(run.p50_latency_seconds)},
               {"p95_seconds", BenchJson::Num(run.p95_latency_seconds)},
               {"p99_seconds", BenchJson::Num(run.p99_latency_seconds)},
               {"shared", BenchJson::Num(static_cast<double>(run.shared))},
               {"solo", BenchJson::Num(static_cast<double>(run.solo))},
               {"groups",
                BenchJson::Num(static_cast<double>(stats.groups))},
               {"lookalike_hits",
                BenchJson::Num(static_cast<double>(stats.lookalike_hits))},
               {"epochs",
                BenchJson::Num(static_cast<double>(stats.epochs))}});
        }
      }
    }

    // --- Maintenance interleaved with a single reading client: writer
    // epochs alternate with read epochs; the engine's cumulative simulated
    // cost must equal the isolated run of the same insert total exactly.
    {
      ThreadPool pool(2);
      ServingOptions options;
      options.exec.pool = &pool;
      ServingEngine engine(f.context.get(), &design, &f.workload, &planner,
                           options);
      MaintenanceOptions mopt;
      mopt.buffer_pool_pages = 2000;
      const std::vector<MaintainedObject> objects =
          engine.DerivedMaintainedObjects();
      engine.ConfigureMaintenance(objects, mopt);
      engine.Start();
      constexpr uint64_t kBatches = 8;
      constexpr uint64_t kPerBatch = 2500;
      const std::vector<size_t> stream =
          MakeLookalikeStream(f.workload.queries.size(), 16, 999, zipf_s);
      const WallTimer timer;
      std::thread reader([&] {
        for (size_t qi : stream) engine.Submit(qi).get();
      });
      for (uint64_t b = 0; b < kBatches; ++b) {
        engine.SubmitMaintenance(kPerBatch).get();
      }
      reader.join();
      const MaintenanceResult served = engine.FinishMaintenance();
      const double wall = timer.Seconds();
      engine.Stop();

      MaintenanceOptions iso = mopt;
      iso.num_inserts = kBatches * kPerBatch;
      const MaintenanceResult isolated = SimulateInsertions(objects, iso);
      const double ratio =
          isolated.seconds > 0.0 ? served.seconds / isolated.seconds : 0.0;
      const double inserts_per_second =
          wall > 0.0 ? static_cast<double>(kBatches * kPerBatch) / wall : 0.0;
      h.Sample("maintenance_inserts_per_second", inserts_per_second);
      if (pass.reporting) {
        std::printf(
            "\nmaintenance interleaved with 1 reading client: %llu inserts "
            "in %.3fs wall (%.0f inserts/s), simulated %.2fs vs isolated "
            "%.2fs (ratio %.3f, exact split invariance)\n",
            static_cast<unsigned long long>(kBatches * kPerBatch), wall,
            inserts_per_second, served.seconds, isolated.seconds, ratio);
        json.Config("maintenance_simulated_seconds", served.seconds);
        json.Config("maintenance_isolated_seconds", isolated.seconds);
        json.Config("maintenance_ratio", ratio);
      }
    }

    // --- Pooled serving: warm hit rate + served QPS vs pool size. The
    // base-only design above full-scans one object, which cycles any pool
    // smaller than the object; the per-query MV design gives selective
    // clustered plans, so the Zipf stream revisits a cacheable working set
    // and the shared pool's hit rate becomes the experiment.
    {
      const DatabaseDesign mv_design = PerQueryMvDesign(f);
      ThreadPool pool(2);
      std::vector<std::vector<size_t>> streams;
      for (size_t c = 0; c < gate_clients; ++c) {
        streams.push_back(MakeLookalikeStream(
            f.workload.queries.size(), per_client, 700 + c, zipf_s));
      }
      const std::vector<double> fracs =
          h.fast() ? std::vector<double>{pool_frac}
                   : std::vector<double>{0.10, pool_frac, 0.50, 1.0};
      if (pass.reporting) {
        PrintHeader(
            "pooled serving (per-query MV design): warm hit rate vs pool "
            "size",
            {"pool_frac", "pages", "wset", "hit_rate", "qps", "warm_spq[ms]",
             "cold_spq[ms]"});
      }
      for (const double frac : fracs) {
        ServingOptions options;
        options.exec.pool = &pool;
        if (pool_pages_flag > 0) {
          options.pool_pages = static_cast<uint64_t>(pool_pages_flag);
        } else {
          options.pool_fraction = frac;
        }
        ServingEngine engine(f.context.get(), &mv_design, &f.workload,
                             &planner, options);
        const uint64_t ws = engine.WorkingSetPages();
        const uint64_t pages = engine.page_pool()->capacity_pages();
        engine.Start();
        // Warm pass fills the pool; the measured pass quotes steady state.
        RunClients(&engine, streams);
        const ServingStats w0 = engine.stats();
        const ServingRunStats run = RunClients(&engine, streams);
        const ServingStats w1 = engine.stats();
        const uint64_t d_touches = w1.pool.touches - w0.pool.touches;
        const double hit_rate =
            d_touches > 0
                ? static_cast<double>(w1.pool.hits - w0.pool.hits) /
                      static_cast<double>(d_touches)
                : 0.0;
        // Warm simulated seconds-per-query vs the cold solo reference, over
        // one client's stream (sequential, so hits are the steady state's).
        double warm_sim = 0.0, cold_sim = 0.0;
        for (size_t qi : streams[0]) {
          warm_sim += engine.Submit(qi).get().simulated_seconds;
          cold_sim += engine.RunSolo(qi).seconds;
        }
        engine.Stop();
        const double warm_spq = warm_sim / static_cast<double>(streams[0].size());
        const double cold_spq = cold_sim / static_cast<double>(streams[0].size());

        const std::string tag =
            pool_pages_flag > 0 ? std::string("pinned")
                                : StrFormat("f%.0f", 100.0 * frac);
        h.Sample("pool_hit_rate_" + tag, hit_rate);
        h.Sample("pool_qps_" + tag, run.qps);
        h.Sample("pool_sim_spq_" + tag, warm_spq);
        h.Sample("cold_sim_spq_" + tag, cold_spq);
        const bool is_gate_size = pool_pages_flag > 0 || frac == pool_frac;
        if (is_gate_size && !pass.warmup) gate_hit_rate.push_back(hit_rate);
        if (!pass.reporting) continue;
        PrintRow({StrFormat("%.2f", frac), std::to_string(pages),
                  std::to_string(ws), StrFormat("%.3f", hit_rate),
                  StrFormat("%.0f", run.qps), StrFormat("%.3f", 1e3 * warm_spq),
                  StrFormat("%.3f", 1e3 * cold_spq)});
        json.Row({{"pool_frac", BenchJson::Num(frac)},
                  {"pool_pages", BenchJson::Num(static_cast<double>(pages))},
                  {"working_set_pages",
                   BenchJson::Num(static_cast<double>(ws))},
                  {"hit_rate", BenchJson::Num(hit_rate)},
                  {"pool_qps", BenchJson::Num(run.qps)},
                  {"warm_spq_seconds", BenchJson::Num(warm_spq)},
                  {"cold_spq_seconds", BenchJson::Num(cold_spq)}});
      }
    }

    // --- One open-loop row (fixed-interval arrivals): latency under an
    // offered load the engine must absorb rather than pace.
    if (pass.reporting) {
      ThreadPool pool(2);
      ServingOptions options;
      options.exec.pool = &pool;
      ServingEngine engine(f.context.get(), &design, &f.workload, &planner,
                           options);
      engine.Start();
      std::vector<std::vector<size_t>> streams;
      for (size_t c = 0; c < gate_clients; ++c) {
        streams.push_back(MakeLookalikeStream(
            f.workload.queries.size(), per_client, 500 + c, zipf_s));
      }
      ClientRunOptions copt;
      copt.mode = ArrivalMode::kOpenLoop;
      copt.think_seconds = 0.0005;
      const ServingRunStats run = RunClients(&engine, streams, copt);
      engine.Stop();
      std::printf(
          "open-loop (%zu clients, 0.5ms inter-arrival): %.0f qps, "
          "p95 %.3f ms\n",
          gate_clients, run.qps, 1e3 * run.p95_latency_seconds);
      json.Config("openloop_qps", run.qps);
      json.Config("openloop_p95_seconds", run.p95_latency_seconds);
    }
  });

  const int rc = h.Finish();
  if (rc != 0) return rc;
  if (assert_shared_speedup > 0.0 && !gate_qps_on.empty() &&
      !gate_qps_off.empty()) {
    const double on_mean = Summarize(gate_qps_on).mean;
    const double off_mean = Summarize(gate_qps_off).mean;
    const double speedup = off_mean > 0.0 ? on_mean / off_mean : 0.0;
    const benchkit::WelchResult w =
        benchkit::WelchTTest(gate_qps_off, gate_qps_on);
    if (speedup < assert_shared_speedup || !w.significant) {
      std::fprintf(stderr,
                   "FAIL: shared-scan batching QPS speedup %.2fx at %zu "
                   "clients (need >= %.2fx, Welch %ssignificant, t=%.2f "
                   "df=%.1f)\n",
                   speedup, gate_clients, assert_shared_speedup,
                   w.significant ? "" : "NOT ", w.t, w.df);
      return 1;
    }
    std::printf(
        "shared-scan batching speedup %.2fx at %zu clients (>= %.2fx, "
        "Welch t=%.2f df=%.1f, significant)\n",
        speedup, gate_clients, assert_shared_speedup, w.t, w.df);
  }
  if (assert_hit_rate > 0.0 && !gate_hit_rate.empty()) {
    const double mean = Summarize(gate_hit_rate).mean;
    const std::vector<double> threshold(gate_hit_rate.size(),
                                        assert_hit_rate);
    const benchkit::WelchResult w =
        benchkit::WelchTTest(threshold, gate_hit_rate);
    if (mean < assert_hit_rate || !w.significant) {
      std::fprintf(stderr,
                   "FAIL: warm pool hit rate %.3f at pool-frac %.2f (need "
                   ">= %.3f, Welch %ssignificant, t=%.2f df=%.1f)\n",
                   mean, pool_frac, assert_hit_rate,
                   w.significant ? "" : "NOT ", w.t, w.df);
      return 1;
    }
    std::printf(
        "warm pool hit rate %.3f at pool-frac %.2f (>= %.3f, Welch t=%.2f "
        "df=%.1f, significant)\n",
        mean, pool_frac, assert_hit_rate, w.t, w.df);
  }
  return 0;
}
