// Reproduces the Section 5.3 measurements: candidate counts before/after
// dominated-candidate pruning, the resulting paper-ILP size (variables /
// constraints), solve time, and the Table 4 domination example. Runs under
// the benchkit repetition harness; --json emits schema-v2
// BENCH_sec53_shrinking.json.
#include <chrono>

#include "cost/correlation_cost_model.h"
#include "bench/bench_util.h"
#include "ilp/branch_and_bound.h"
#include "ilp/domination.h"
#include "ilp/ilp_problem.h"
#include "ilp/problem_builder.h"
#include "mv/candidate_generator.h"

using namespace coradd;
using namespace coradd::bench;

int main(int argc, char** argv) {
  Harness h("sec53_shrinking", argc, argv);
  const double scale = FlagDouble(argc, argv, "scale", 0.02);
  BenchJson& json = h.json();
  json.Config("scale", scale);

  h.Run([&](const RunPass& pass) {
    Fixture f = MakeSsbFixture(scale, 1024);
    CorrelationCostModel model(&f.context->registry());
    MvCandidateGenerator generator(f.catalog.get(), &f.context->registry(),
                                   &model, BenchCoraddOptions().candidates);
    CandidateSet candidates = generator.Generate(f.workload);

    const uint64_t budget = f.fact_heap_bytes * 2;
    BuiltProblem built = BuildSelectionProblem(
        f.workload, candidates.mvs, model, f.context->registry(), budget);

    const auto t0 = std::chrono::steady_clock::now();
    const auto mask = DominatedMask(built.problem);
    const SelectionProblem pruned = CompactProblem(built.problem, mask);
    const double prune_secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    size_t dominated = 0;
    for (bool b : mask) dominated += b ? 1 : 0;

    const PaperIlpFormulation form = BuildPaperIlp(pruned);

    const auto t1 = std::chrono::steady_clock::now();
    const SelectionResult r = SolveSelectionExact(pruned);
    const double solve_secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
            .count();

    h.Sample("domination_seconds", prune_secs);
    h.Sample("solve_seconds", solve_secs);

    if (!pass.reporting) return;
    std::printf("Section 5.3 reproduction (SSB 13 queries, scale %.3f)\n",
                scale);
    std::printf("  enumerated candidates : %zu\n", candidates.mvs.size());
    std::printf("  dominated (removed)   : %zu\n", dominated);
    std::printf("  surviving candidates  : %zu   (paper: 1600 -> 160)\n",
                pruned.NumCandidates());
    std::printf("  domination time       : %s\n",
                HumanSeconds(prune_secs).c_str());
    std::printf("  ILP variables         : %d  (y=%d, x=%d; paper: 2,080)\n",
                form.NumVariables(), form.num_y, form.num_x);
    std::printf("  ILP constraints       : %d  (paper: 2,240)\n",
                form.num_constraints);
    std::printf("  exact solve time      : %s  (paper: <1s)  optimal=%s\n",
                HumanSeconds(solve_secs).c_str(),
                r.proved_optimal ? "yes" : "no");
    json.Row({{"enumerated",
               BenchJson::Num(static_cast<double>(candidates.mvs.size()))},
              {"dominated", BenchJson::Num(static_cast<double>(dominated))},
              {"surviving",
               BenchJson::Num(static_cast<double>(pruned.NumCandidates()))},
              {"ilp_variables",
               BenchJson::Num(static_cast<double>(form.NumVariables()))},
              {"ilp_constraints",
               BenchJson::Num(static_cast<double>(form.num_constraints))},
              {"proved_optimal", r.proved_optimal ? std::string("true")
                                                  : std::string("false")}});

    // --- Table 4 example.
    PrintHeader("Table 4: MV1 dominates MV2 but not MV3",
                {"", "MV1", "MV2", "MV3"});
    PrintRow({"Q1", "1 sec", "5 sec", "5 sec"});
    PrintRow({"Q2", "N/A", "N/A", "5 sec"});
    PrintRow({"Q3", "1 sec", "2 sec", "5 sec"});
    PrintRow({"Size", "1 GB", "2 GB", "3 GB"});
    SelectionProblem table4;
    table4.sizes = {1ull << 30, 2ull << 30, 3ull << 30};
    table4.costs = {{1, 5, 5},
                    {kInfeasibleCost, kInfeasibleCost, 5},
                    {1, 2, 5}};
    table4.budget_bytes = 10ull << 30;
    const auto t4 = DominatedMask(table4);
    std::printf("dominated: MV1=%s MV2=%s MV3=%s  (paper: only MV2)\n",
                t4[0] ? "yes" : "no", t4[1] ? "yes" : "no",
                t4[2] ? "yes" : "no");
  });
  return h.Finish();
}
