// Ablation for §4.1.3's target-attribute weight alpha: sweep single alpha
// values and compare the resulting design quality against the paper's
// union-over-alphas approach, at a tight and a loose budget. Lower alpha
// favors merging queries aggressively (good when space is plentiful);
// higher alpha penalizes non-overlapping targets (good when space is
// tight); the union dominates both. Runs under the benchkit repetition
// harness; --json emits schema-v2 BENCH_ablation_alpha.json.
#include "cost/correlation_cost_model.h"
#include "bench/bench_util.h"
#include "ilp/branch_and_bound.h"
#include "ilp/problem_builder.h"
#include "mv/candidate_generator.h"

using namespace coradd;
using namespace coradd::bench;

int main(int argc, char** argv) {
  Harness h("ablation_alpha", argc, argv);
  const double scale = FlagDouble(argc, argv, "scale", 0.02);
  BenchJson& json = h.json();
  json.Config("scale", scale);

  h.Run([&](const RunPass& pass) {
    Fixture f = MakeSsbFixture(scale, 1024);
    CorrelationCostModel model(&f.context->registry());

    const uint64_t tight = f.fact_heap_bytes / 4;
    const uint64_t loose = f.fact_heap_bytes * 4;

    auto solve = [&](const std::vector<double>& alphas, uint64_t budget) {
      CandidateGeneratorOptions gopt;
      gopt.grouping.alphas = alphas;
      gopt.grouping.restarts = 1;
      MvCandidateGenerator generator(f.catalog.get(), &f.context->registry(),
                                     &model, gopt);
      CandidateSet set = generator.Generate(f.workload);
      BuiltProblem built = BuildSelectionProblem(
          f.workload, std::move(set.mvs), model, f.context->registry(),
          budget);
      return std::make_pair(SolveSelectionExact(built.problem).expected_cost,
                            built.specs.size());
    };

    if (pass.reporting) {
      PrintHeader("Ablation: target-attribute weight alpha (§4.1.3)",
                  {"alphas", "#cands", "tight[s]", "loose[s]"});
    }
    const std::vector<std::pair<std::string, std::vector<double>>> settings = {
        {"0.0", {0.0}},
        {"0.1", {0.1}},
        {"0.25", {0.25}},
        {"0.5", {0.5}},
        {"union(all)", {0.0, 0.1, 0.25, 0.5}},
    };
    for (const auto& [name, alphas] : settings) {
      const auto [cost_tight, n1] = solve(alphas, tight);
      const auto [cost_loose, n2] = solve(alphas, loose);
      if (!pass.reporting) continue;
      PrintRow({name, std::to_string(n1), StrFormat("%.3f", cost_tight),
                StrFormat("%.3f", cost_loose)});
      json.Row({{"alphas", BenchJson::Quote(name)},
                {"candidates", BenchJson::Num(static_cast<double>(n1))},
                {"tight_seconds", BenchJson::Num(cost_tight)},
                {"loose_seconds", BenchJson::Num(cost_loose)}});
    }
    if (pass.reporting) {
      std::printf(
          "\nExpected shape: no single alpha wins both budgets; the union "
          "is\nat least as good everywhere (the paper's reason to sweep "
          "alpha).\n");
    }
  });
  return h.Finish();
}
