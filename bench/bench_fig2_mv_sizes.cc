// Reproduces Figure 2: MV size vs. covered queries for groups with
// overlapping (Q1.1+Q1.2) and disjoint (Q1.2+Q3.4) target attributes.
// Runs under the benchkit repetition harness; --json emits schema-v2
// BENCH_fig2_mv_sizes.json.
#include "bench/bench_util.h"
#include "cost/correlation_cost_model.h"
#include "mv/index_merging.h"

using namespace coradd;
using namespace coradd::bench;

int main(int argc, char** argv) {
  Harness h("fig2_mv_sizes", argc, argv);
  const double scale = FlagDouble(argc, argv, "scale", 0.02);
  BenchJson& json = h.json();
  json.Config("scale", scale);

  h.Run([&](const RunPass& pass) {
    Fixture f = MakeSsbFixture(scale, 1024);
    const UniverseStats* stats = f.context->StatsForFact("lineorder");
    CorrelationCostModel model(&f.context->registry());
    ClusteredIndexDesigner designer(&f.context->registry(), &model);

    // Workload indices: Q1.1 = 0, Q1.2 = 1, Q3.4 = 9.
    const std::vector<std::pair<std::string, QueryGroup>> groups = {
        {"{Q1.1}", {0}},        {"{Q1.2}", {1}},       {"{Q3.4}", {9}},
        {"{Q1.1,Q1.2}", {0, 1}}, {"{Q1.2,Q3.4}", {1, 9}},
    };

    if (pass.reporting) {
      PrintHeader("Figure 2: MV candidate sizes (overlap vs no overlap)",
                  {"group", "columns", "size", "size/fact"});
    }
    for (const auto& [name, group] : groups) {
      const auto specs = designer.DesignGroup(f.workload, group, "lineorder");
      const MvSpec& spec = specs.front();
      const uint64_t size =
          EstimateMvSizeBytes(spec, *stats, stats->options().disk);
      if (!pass.reporting) continue;
      PrintRow({name, std::to_string(spec.columns.size()),
                HumanBytes(size),
                StrFormat("%.2f", static_cast<double>(size) /
                                      static_cast<double>(f.fact_heap_bytes))});
      json.Row({{"group", BenchJson::Quote(name)},
                {"columns",
                 BenchJson::Num(static_cast<double>(spec.columns.size()))},
                {"size_bytes", BenchJson::Num(static_cast<double>(size))}});
    }
    if (pass.reporting) {
      std::printf(
          "\nPaper shape check: size({Q1.1,Q1.2}) is barely above the "
          "singletons\n(targets overlap); size({Q1.2,Q3.4}) is much larger "
          "(disjoint targets).\n");
    }
  });
  return h.Finish();
}
