// Reproduces Figure 2: MV size vs. covered queries for groups with
// overlapping (Q1.1+Q1.2) and disjoint (Q1.2+Q3.4) target attributes.
#include "bench/bench_util.h"
#include "cost/correlation_cost_model.h"
#include "mv/index_merging.h"

using namespace coradd;
using namespace coradd::bench;

int main(int argc, char** argv) {
  const double scale = FlagDouble(argc, argv, "scale", 0.02);
  Fixture f = MakeSsbFixture(scale, 1024);
  const UniverseStats* stats = f.context->StatsForFact("lineorder");
  CorrelationCostModel model(&f.context->registry());
  ClusteredIndexDesigner designer(&f.context->registry(), &model);

  // Workload indices: Q1.1 = 0, Q1.2 = 1, Q3.4 = 9.
  const std::vector<std::pair<std::string, QueryGroup>> groups = {
      {"{Q1.1}", {0}},        {"{Q1.2}", {1}},       {"{Q3.4}", {9}},
      {"{Q1.1,Q1.2}", {0, 1}}, {"{Q1.2,Q3.4}", {1, 9}},
  };

  PrintHeader("Figure 2: MV candidate sizes (overlap vs no overlap)",
              {"group", "columns", "size", "size/fact"});
  for (const auto& [name, group] : groups) {
    const auto specs = designer.DesignGroup(f.workload, group, "lineorder");
    const MvSpec& spec = specs.front();
    const uint64_t size =
        EstimateMvSizeBytes(spec, *stats, stats->options().disk);
    PrintRow({name, std::to_string(spec.columns.size()),
              HumanBytes(size),
              StrFormat("%.2f", static_cast<double>(size) /
                                    static_cast<double>(f.fact_heap_bytes))});
  }
  std::printf(
      "\nPaper shape check: size({Q1.1,Q1.2}) is barely above the singletons\n"
      "(targets overlap); size({Q1.2,Q3.4}) is much larger (disjoint targets).\n");
  return 0;
}
