// Correlation explorer: discover soft functional dependencies in a star
// schema the way CORADD's statistics layer does — strengths from distinct
// counts (AE over a synopsis), Gibbons distinct sampling, the dependency
// miner's FD/AFD discoveries side by side with the seeded estimates, and
// what those correlations buy: compact correlation maps instead of dense
// B+Trees (the A-1 People(city,state) example, on real SSB data).
//
//   $ ./examples/correlation_explorer
//   $ ./examples/correlation_explorer --trace=explorer_trace.json
#include <algorithm>
#include <cstdio>

#include "common/string_util.h"
#include "cm/cm_designer.h"
#include "discovery/fd_miner.h"
#include "exec/materialize.h"
#include "obs/trace.h"
#include "ssb/ssb.h"
#include "stats/distinct_sampler.h"

using namespace coradd;

int main(int argc, char** argv) {
  const obs::TraceSession trace = obs::TraceSession::FromArgs(argc, argv);
  ssb::SsbOptions options;
  options.scale_factor = 0.01;
  auto catalog = ssb::MakeCatalog(options);
  Universe universe(*catalog, *catalog->GetFactInfo("lineorder"));
  StatsOptions sopt;
  sopt.disk.page_size_bytes = 1024;
  sopt.disk.seek_seconds = 0.0055 / 8.0;
  UniverseStats stats(&universe, sopt);

  // --- 1. Distinct sampling (Gibbons) vs exact counts.
  std::printf("Distinct-value estimation (Gibbons sampler, capacity 256):\n");
  for (const char* col : {"lo_orderdate", "c_city", "p_brand1", "d_year"}) {
    const int ucol = universe.ColumnIndex(col);
    DistinctSampler sampler(256);
    for (RowId r = 0; r < universe.NumRows(); ++r) {
      sampler.Add(universe.Value(r, ucol));
    }
    std::printf("  %-14s exact=%-8zu estimated=%-10.0f level=%d\n", col,
                universe.DistinctCount(ucol), sampler.EstimateDistinct(),
                sampler.level());
  }

  // --- 2. Correlation strengths (the CORDS measure CORADD uses), with the
  //        dependency miner's verdict on the same pairs next to the seeded
  //        synopsis estimates.
  const DiscoveredDependencies mined = DependencyMiner().Mine(
      MinerInput::FromSynopsis(universe, stats.synopsis()));

  struct Pair {
    const char* from;
    const char* to;
  };
  std::printf("\nCorrelation strengths  strength(A->B) = |A| / |A,B|:\n");
  std::printf("  %-16s    %-16s %8s %8s  %s\n", "A", "B", "seeded", "mined",
              "mined verdict");
  for (const Pair p : {Pair{"c_city", "c_nation"},
                       Pair{"c_nation", "c_region"},
                       Pair{"p_brand1", "p_category"},
                       Pair{"d_yearmonthnum", "d_year"},
                       Pair{"lo_orderdate", "lo_commitdate"},
                       Pair{"lo_orderdate", "d_year"},
                       Pair{"lo_discount", "lo_quantity"}}) {
    const double s = stats.correlations().Strength(
        universe.ColumnIndex(p.from), universe.ColumnIndex(p.to));
    const int mfrom = mined.ColumnIndex(p.from);
    const int mto = mined.ColumnIndex(p.to);
    const double ms = mined.StrengthFor({mfrom}, {mto});
    const FunctionalDependency* fd = mined.FindFd({mfrom}, mto);
    const char* verdict = mined.DeterminesExactly({mfrom}, mto) ? "exact FD"
                          : fd != nullptr                       ? "afd"
                          : ms > 0.5                            ? "(strong)"
                          : ms > 0.05                           ? "(weak)"
                                                                : "(none)";
    std::printf("  %-16s -> %-16s %8.3f %8.3f  %s\n", p.from, p.to, s,
                std::max(ms, 0.0), verdict);
  }

  // --- 2b. The full discovered dependency list (what the designer would
  //         consume via DesignContext::MineDependencies).
  std::printf("\n%s", mined.ToString(/*max_fds=*/24).c_str());
  std::printf("  (plus %zu near-key columns excluded as LHS)\n",
              mined.near_key_columns().size());

  // --- 3. What correlations buy: CM vs dense B+Tree on the fact table
  //        clustered by orderdate (correlated with date attributes).
  MvSpec spec;
  spec.name = "lineorder_by_orderdate";
  spec.fact_table = "lineorder";
  for (size_t c = 0; c < universe.fact_table().schema().NumColumns(); ++c) {
    spec.columns.push_back(universe.fact_table().schema().Column(c).name);
  }
  spec.clustered_key = {"lo_orderdate"};
  spec.is_fact_recluster = true;

  Materializer materializer(&universe, sopt.disk);
  CmSpec cm_commit;
  cm_commit.key_columns = {"lo_commitdate"};
  CmSpec cm_year;
  cm_year.key_columns = {"d_year"};
  auto obj =
      materializer.Materialize(spec, {cm_commit, cm_year}, {"lo_commitdate"});

  std::printf("\nSecondary access structures on lineorder(clustered by "
              "lo_orderdate):\n");
  std::printf("  dense B+Tree on lo_commitdate : %s\n",
              HumanBytes(obj->btrees[0]->SizeBytes()).c_str());
  std::printf("  CM on lo_commitdate           : %s  (%llu pairs)\n",
              HumanBytes(obj->cms[0]->SizeBytes()).c_str(),
              static_cast<unsigned long long>(obj->cms[0]->NumPairs()));
  std::printf("  CM on d_year                  : %s  (%llu pairs)\n",
              HumanBytes(obj->cms[1]->SizeBytes()).c_str(),
              static_cast<unsigned long long>(obj->cms[1]->NumPairs()));
  std::printf("\nThe correlated CMs are orders of magnitude smaller than the "
              "dense index\nwhile steering the executor to the same heap "
              "regions (A-1).\n");
  return 0;
}
