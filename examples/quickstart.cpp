// Quickstart: generate a small SSB instance, run the CORADD designer under
// a space budget, inspect the recommended design, and execute the workload
// against it on the storage simulator.
//
//   $ ./examples/quickstart
//   $ ./examples/quickstart --trace=quickstart_trace.json   # Perfetto file
#include <cstdio>

#include "common/string_util.h"
#include "core/coradd_designer.h"
#include "core/ddl_export.h"
#include "core/evaluator.h"
#include "obs/trace.h"
#include "ssb/ssb.h"

using namespace coradd;

int main(int argc, char** argv) {
  const obs::TraceSession trace = obs::TraceSession::FromArgs(argc, argv);
  // 1. Data + workload: the Star Schema Benchmark at a laptop-scale factor.
  ssb::SsbOptions data_options;
  data_options.scale_factor = 0.01;  // 60k lineorder rows
  std::unique_ptr<Catalog> catalog = ssb::MakeCatalog(data_options);
  Workload workload = ssb::MakeWorkload();  // the 13 SSB queries
  std::printf("Loaded SSB: %zu lineorder rows, %zu queries\n",
              catalog->GetTable("lineorder")->NumRows(),
              workload.queries.size());

  // 2. Statistics (one scan: histograms, synopsis, correlations).
  StatsOptions stats_options;
  stats_options.disk.page_size_bytes = 1024;  // scaled page geometry
  stats_options.disk.seek_seconds = 0.0055 / 8.0;
  DesignContext context(catalog.get(), workload, stats_options);

  // 3. Design within a space budget.
  const uint64_t budget = 16ull << 20;  // 16 MB of additional objects
  CoraddDesigner designer(&context);
  DatabaseDesign design = designer.Design(workload, budget);
  std::printf("\n%s\n", design.ToString().c_str());
  for (const auto& obj : design.objects) {
    std::printf("  %s\n", obj.spec.ToString().c_str());
    for (const auto& cm : obj.cms) {
      std::printf("     +%s\n", cm.ToString().c_str());
    }
  }

  // 4. Execute the workload on the design and compare with the estimate.
  DesignEvaluator evaluator(&context);
  const WorkloadRunResult run =
      evaluator.Run(design, workload, designer.model());
  std::printf("\n%-6s %-28s %12s %12s\n", "query", "served by", "expected",
              "measured");
  for (const auto& rec : run.per_query) {
    std::printf("%-6s %-28s %12s %12s\n", rec.query_id.c_str(),
                rec.object_name.c_str(),
                HumanSeconds(rec.expected_seconds).c_str(),
                HumanSeconds(rec.real_seconds).c_str());
  }
  std::printf("\nworkload total: expected %s, measured %s\n",
              HumanSeconds(run.expected_seconds).c_str(),
              HumanSeconds(run.total_seconds).c_str());

  // 5. Export the design as DDL a DBA could apply.
  std::printf("\n%s", ExportDdl(design, workload).c_str());
  return 0;
}
