// Custom schema: using the public API end to end on your own star schema —
// define tables, register the fact table, write queries, and let CORADD
// design MVs + clustered indexes + correlation maps for it. The schema here
// is the paper's running example: People-style geography where city
// determines state (Section 1).
//
//   $ ./examples/custom_schema
//   $ ./examples/custom_schema --trace=custom_trace.json   # Perfetto file
#include <cstdio>

#include "common/string_util.h"
#include "common/rng.h"
#include "core/coradd_designer.h"
#include "core/evaluator.h"
#include "obs/trace.h"

using namespace coradd;

namespace {

ColumnDef Int(const std::string& name, uint32_t bytes = 4) {
  ColumnDef c;
  c.name = name;
  c.byte_size = bytes;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const obs::TraceSession trace = obs::TraceSession::FromArgs(argc, argv);
  // --- 1. Schema: a sales fact with a geography dimension where
  // city -> state -> region is a hard hierarchy (50 cities per state).
  auto catalog = std::make_unique<Catalog>();
  {
    Schema s;
    s.AddColumn(Int("g_key"));
    s.AddColumn(Int("g_city", 10));
    s.AddColumn(Int("g_state", 2));
    s.AddColumn(Int("g_region", 1));
    auto geo = std::make_unique<Table>(std::move(s), "geo");
    for (int64_t k = 0; k < 500; ++k) {
      geo->AppendRow({k, k, k / 50, k / 250});
    }
    catalog->AddTable(std::move(geo));
  }
  {
    Schema s;
    s.AddColumn(Int("s_id", 8));
    s.AddColumn(Int("s_geo"));
    s.AddColumn(Int("s_day"));      // 1..365, correlated with s_week
    s.AddColumn(Int("s_week", 1));  // s_day / 7
    s.AddColumn(Int("s_amount"));
    auto sales = std::make_unique<Table>(std::move(s), "sales");
    Rng rng(1234);
    for (int64_t i = 0; i < 200000; ++i) {
      const int64_t day = static_cast<int64_t>(rng.Uniform(365)) + 1;
      sales->AppendRow({i, static_cast<int64_t>(rng.Uniform(500)), day,
                        (day - 1) / 7 + 1,
                        static_cast<int64_t>(rng.Uniform(1000))});
    }
    catalog->AddTable(std::move(sales));
  }
  FactTableInfo fact;
  fact.name = "sales";
  fact.primary_key = {"s_id"};
  fact.foreign_keys = {{"s_geo", "geo", "g_key"}};
  catalog->RegisterFactTable(fact);

  // --- 2. Workload: three analytic queries over correlated attributes.
  Workload workload;
  workload.name = "sales_demo";
  {
    Query q;
    q.id = "ByState";
    q.fact_table = "sales";
    q.predicates = {Predicate::Eq("g_state", 3)};
    q.group_by = {"g_city"};
    q.aggregates = {{"s_amount", ""}};
    workload.queries.push_back(q);
  }
  {
    Query q;
    q.id = "ByWeek";
    q.fact_table = "sales";
    q.predicates = {Predicate::Range("s_week", 10, 12),
                    Predicate::Eq("g_region", 1)};
    q.aggregates = {{"s_amount", ""}};
    workload.queries.push_back(q);
  }
  {
    Query q;
    q.id = "CityDay";
    q.fact_table = "sales";
    q.predicates = {Predicate::In("g_city", {42, 43, 44}),
                    Predicate::Range("s_day", 100, 120)};
    q.group_by = {"g_city"};
    q.aggregates = {{"s_amount", ""}};
    workload.queries.push_back(q);
  }

  // --- 3. Design and evaluate.
  StatsOptions sopt;
  sopt.disk.page_size_bytes = 1024;
  sopt.disk.seek_seconds = 0.0055 / 8.0;
  DesignContext context(catalog.get(), workload, sopt);
  CoraddDesigner designer(&context);
  const DatabaseDesign design = designer.Design(workload, 4ull << 20);

  std::printf("Design for the custom schema (budget 4 MB):\n");
  for (const auto& obj : design.objects) {
    std::printf("  %s\n", obj.spec.ToString().c_str());
    for (const auto& cm : obj.cms) std::printf("    +%s\n", cm.ToString().c_str());
  }
  DesignEvaluator evaluator(&context);
  const WorkloadRunResult run =
      evaluator.Run(design, workload, designer.model());
  for (const auto& rec : run.per_query) {
    std::printf("  %-8s on %-24s measured %s\n", rec.query_id.c_str(),
                rec.object_name.c_str(),
                HumanSeconds(rec.real_seconds).c_str());
  }
  std::printf("total measured: %s\n", HumanSeconds(run.total_seconds).c_str());
  return 0;
}
