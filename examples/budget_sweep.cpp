// Budget sweep: the workflow a database administrator would actually run —
// sweep the space budget, compare the three designers (CORADD, Naive,
// commercial-style), and read off the knee of the cost/space curve. This is
// the Figure 9/11 methodology as a user-facing tool.
//
//   $ ./examples/budget_sweep
//   $ ./examples/budget_sweep --trace=sweep_trace.json   # Perfetto file
#include <cstdio>

#include "common/string_util.h"
#include "core/baseline_designers.h"
#include "core/coradd_designer.h"
#include "core/evaluator.h"
#include "obs/trace.h"
#include "ssb/ssb.h"

using namespace coradd;

int main(int argc, char** argv) {
  const obs::TraceSession trace = obs::TraceSession::FromArgs(argc, argv);
  ssb::SsbOptions data_options;
  data_options.scale_factor = 0.01;
  auto catalog = ssb::MakeCatalog(data_options);
  Workload workload = ssb::MakeWorkload();
  StatsOptions sopt;
  sopt.disk.page_size_bytes = 1024;
  sopt.disk.seek_seconds = 0.0055 / 8.0;
  DesignContext context(catalog.get(), workload, sopt);

  CoraddOptions copt;
  copt.candidates.grouping.restarts = 1;
  copt.feedback.max_iterations = 1;
  CoraddDesigner coradd(&context, copt);
  NaiveDesigner naive(&context);
  CommercialDesigner commercial(&context);
  DesignEvaluator evaluator(&context, 48);

  std::printf("%12s %12s %12s %12s %10s\n", "budget", "CORADD", "Naive",
              "Commercial", "objects");
  for (double mb : {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    const uint64_t budget = static_cast<uint64_t>(mb * (1 << 20));
    const DatabaseDesign dc = coradd.Design(workload, budget);
    const DatabaseDesign dn = naive.Design(workload, budget);
    const DatabaseDesign dm = commercial.Design(workload, budget);
    const double tc = evaluator.Run(dc, workload, coradd.model()).total_seconds;
    const double tn = evaluator.Run(dn, workload, naive.model()).total_seconds;
    const double tm =
        evaluator.Run(dm, workload, commercial.model()).total_seconds;
    std::printf("%12s %12s %12s %12s %10zu\n", HumanBytes(budget).c_str(),
                HumanSeconds(tc).c_str(), HumanSeconds(tn).c_str(),
                HumanSeconds(tm).c_str(), dc.objects.size());
  }
  std::printf("\nReading the curve: the budget where CORADD's runtime "
              "flattens is the\npoint past which extra space buys little — "
              "the paper's Figures 9/11 knee.\n");
  return 0;
}
