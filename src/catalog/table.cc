#include "catalog/table.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "common/hash.h"
#include "common/string_util.h"

namespace coradd {

void Table::Reserve(size_t rows) {
  for (auto& c : columns_) c.reserve(rows);
}

void Table::AppendRow(const std::vector<int64_t>& row) {
  CORADD_CHECK(row.size() == columns_.size());
  for (size_t i = 0; i < row.size(); ++i) columns_[i].push_back(row[i]);
}

std::vector<RowId> Table::SortByColumns(const std::vector<int>& sort_cols) {
  const size_t n = NumRows();
  std::vector<RowId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [&](RowId a, RowId b) {
    for (int c : sort_cols) {
      const int64_t va = columns_[static_cast<size_t>(c)][a];
      const int64_t vb = columns_[static_cast<size_t>(c)][b];
      if (va != vb) return va < vb;
    }
    return false;
  });
  // Apply the permutation to every column.
  for (auto& col : columns_) {
    std::vector<int64_t> next(n);
    for (size_t i = 0; i < n; ++i) next[i] = col[perm[i]];
    col = std::move(next);
  }
  return perm;
}

size_t Table::DistinctCount(size_t col) const {
  std::unordered_set<int64_t> seen;
  seen.reserve(NumRows() / 4 + 16);
  for (int64_t v : columns_[col]) seen.insert(v);
  return seen.size();
}

size_t Table::DistinctCountComposite(const std::vector<int>& cols) const {
  std::unordered_set<uint64_t> seen;
  seen.reserve(NumRows() / 4 + 16);
  const size_t n = NumRows();
  for (size_t r = 0; r < n; ++r) {
    uint64_t h = 0x12345678abcdef01ULL;
    for (int c : cols) {
      h = HashCombine(h, static_cast<uint64_t>(columns_[static_cast<size_t>(c)][r]));
    }
    seen.insert(h);
  }
  return seen.size();
}

std::string Table::RenderRow(RowId row) const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    parts.push_back(schema_.Column(c).Render(Value(row, c)));
  }
  return "[" + Join(parts, ", ") + "]";
}

}  // namespace coradd
