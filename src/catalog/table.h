// In-memory columnar table. Data is stored column-major as int64 codes;
// the schema carries the declared on-disk widths used for size accounting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"

namespace coradd {

/// Row identifier within a table (position in the current physical order).
using RowId = uint32_t;

/// A columnar in-memory table.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema, std::string name = "")
      : name_(std::move(name)), schema_(std::move(schema)) {
    columns_.resize(schema_.NumColumns());
  }

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t NumRows() const { return columns_.empty() ? 0 : columns_[0].size(); }
  size_t NumColumns() const { return columns_.size(); }

  /// Reserves capacity in every column.
  void Reserve(size_t rows);

  /// Appends one row. Precondition: row.size() == NumColumns().
  void AppendRow(const std::vector<int64_t>& row);

  int64_t Value(RowId row, size_t col) const { return columns_[col][row]; }
  void SetValue(RowId row, size_t col, int64_t v) { columns_[col][row] = v; }

  const std::vector<int64_t>& ColumnData(size_t col) const {
    return columns_[col];
  }
  std::vector<int64_t>* MutableColumnData(size_t col) { return &columns_[col]; }

  /// Sorts rows lexicographically by the given column indices (stable).
  /// Returns the permutation applied: perm[new_pos] = old_pos.
  std::vector<RowId> SortByColumns(const std::vector<int>& sort_cols);

  /// Exact number of distinct values in a column (scans the column).
  size_t DistinctCount(size_t col) const;

  /// Exact number of distinct joint values across `cols`.
  size_t DistinctCountComposite(const std::vector<int>& cols) const;

  /// Declared on-disk size in bytes (rows * row width), ignoring page slack.
  uint64_t DataBytes() const {
    return static_cast<uint64_t>(NumRows()) * schema_.RowWidthBytes();
  }

  /// Renders row `row` for debugging.
  std::string RenderRow(RowId row) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<std::vector<int64_t>> columns_;
};

}  // namespace coradd
