// The pre-joined "universe" relation of a fact table.
//
// CORADD's MV candidates are pre-joined projections of the star join
// (fact ⋈ all dimensions). Rather than materializing that join, Universe
// exposes it virtually: one logical row per fact row whose columns are all
// fact columns plus all dimension columns reachable through the registered
// foreign keys. Dimension access goes through a precomputed PK -> row-id
// lookup, so reading any universe cell is O(1).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"

namespace coradd {

/// One column of the universe relation.
struct UniverseColumn {
  std::string name;          ///< Unique name across the universe.
  const Table* source;       ///< Owning physical table.
  int source_col;            ///< Column index inside `source`.
  int fk_index;              ///< Index into FactTableInfo::foreign_keys, or -1
                             ///< if this is a fact-table column.
  ValueType type;
  uint32_t byte_size;
};

/// Virtual pre-joined relation over one fact table and its dimensions.
class Universe {
 public:
  /// Builds the universe for `fact_info` against `catalog`. Aborts on
  /// dangling FK values (generator bugs), since designs would be meaningless.
  Universe(const Catalog& catalog, const FactTableInfo& fact_info);

  const std::string& fact_name() const { return fact_info_.name; }
  const FactTableInfo& fact_info() const { return fact_info_; }
  const Table& fact_table() const { return *fact_; }

  size_t NumRows() const { return fact_->NumRows(); }
  size_t NumColumns() const { return columns_.size(); }
  const UniverseColumn& Column(size_t i) const { return columns_[i]; }

  /// Index of universe column `name`, or -1.
  int ColumnIndex(const std::string& name) const;

  /// Value of universe column `ucol` for fact row `row`.
  int64_t Value(RowId row, int ucol) const {
    const UniverseColumn& c = columns_[static_cast<size_t>(ucol)];
    if (c.fk_index < 0) return c.source->Value(row, static_cast<size_t>(c.source_col));
    const RowId dim_row = dim_row_of_fact_[static_cast<size_t>(c.fk_index)][row];
    return c.source->Value(dim_row, static_cast<size_t>(c.source_col));
  }

  /// Exact distinct count of a universe column over the join result.
  size_t DistinctCount(int ucol) const;

  /// Exact distinct count of the joint values of `ucols` over the join.
  size_t DistinctCountComposite(const std::vector<int>& ucols) const;

  /// Materializes the projection of the given universe columns as a Table,
  /// in fact-row order. Column names and byte sizes are preserved.
  std::unique_ptr<Table> MaterializeProjection(
      const std::vector<int>& ucols, const std::string& table_name) const;

  /// Schema of the full universe (for display / size estimation).
  Schema MakeSchema(const std::vector<int>& ucols) const;

 private:
  FactTableInfo fact_info_;
  const Table* fact_;
  std::vector<UniverseColumn> columns_;
  std::unordered_map<std::string, int> index_;
  /// dim_row_of_fact_[fk][fact_row] = row id in the dimension table.
  std::vector<std::vector<RowId>> dim_row_of_fact_;
};

}  // namespace coradd
