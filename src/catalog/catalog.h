// The database catalog: named tables plus star-schema metadata (which tables
// are facts, their foreign keys into dimensions, and primary keys).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/table.h"

namespace coradd {

/// A foreign-key edge from a fact table into a dimension table.
struct ForeignKey {
  std::string fact_column;    ///< FK column in the fact table.
  std::string dim_table;      ///< Referenced dimension table.
  std::string dim_pk_column;  ///< Primary-key column of the dimension.
};

/// Star-schema metadata for one fact table.
struct FactTableInfo {
  std::string name;
  /// Primary key columns of the fact table (used for the default clustering
  /// and for charging the PK secondary index when re-clustering, cf. §4.3).
  std::vector<std::string> primary_key;
  std::vector<ForeignKey> foreign_keys;
};

/// Owns tables and star metadata. Not thread-safe (the designer is
/// single-threaded, matching the paper's offline tool setting).
class Catalog {
 public:
  /// Adds a table, taking ownership. Precondition: name not already present.
  Table* AddTable(std::unique_ptr<Table> table);

  /// Returns the table or nullptr.
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  /// Registers star metadata for a fact table already in the catalog.
  void RegisterFactTable(FactTableInfo info);

  const std::vector<FactTableInfo>& fact_tables() const { return facts_; }
  const FactTableInfo* GetFactInfo(const std::string& fact_name) const;

  std::vector<std::string> TableNames() const;

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<FactTableInfo> facts_;
};

}  // namespace coradd
