#include "catalog/schema.h"

#include "common/string_util.h"

namespace coradd {

std::string ColumnDef::Render(int64_t code) const {
  if (type == ValueType::kString) {
    if (code >= 0 && static_cast<size_t>(code) < dictionary.size()) {
      return dictionary[static_cast<size_t>(code)];
    }
    return StrFormat("<str:%lld>", static_cast<long long>(code));
  }
  return std::to_string(code);
}

Schema::Schema(std::vector<ColumnDef> columns) {
  for (auto& c : columns) AddColumn(std::move(c));
}

void Schema::AddColumn(ColumnDef col) {
  CORADD_CHECK(index_.find(col.name) == index_.end());
  index_[col.name] = static_cast<int>(columns_.size());
  columns_.push_back(std::move(col));
}

int Schema::ColumnIndex(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

uint32_t Schema::RowWidthBytes() const {
  uint32_t w = 0;
  for (const auto& c : columns_) w += c.byte_size;
  return w;
}

Schema Schema::Project(const std::vector<int>& column_indices) const {
  Schema out;
  for (int idx : column_indices) {
    CORADD_CHECK(idx >= 0 && static_cast<size_t>(idx) < columns_.size());
    out.AddColumn(columns_[static_cast<size_t>(idx)]);
  }
  return out;
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const auto& c : columns_) {
    parts.push_back(StrFormat("%s:%s(%u)", c.name.c_str(),
                              c.type == ValueType::kInt ? "int" : "str",
                              c.byte_size));
  }
  return "(" + Join(parts, ", ") + ")";
}

}  // namespace coradd
