#include "catalog/catalog.h"

#include <algorithm>

namespace coradd {

Table* Catalog::AddTable(std::unique_ptr<Table> table) {
  CORADD_CHECK(table != nullptr);
  const std::string name = table->name();
  CORADD_CHECK(!name.empty());
  CORADD_CHECK(tables_.find(name) == tables_.end());
  Table* raw = table.get();
  tables_[name] = std::move(table);
  return raw;
}

Table* Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

void Catalog::RegisterFactTable(FactTableInfo info) {
  CORADD_CHECK(GetTable(info.name) != nullptr);
  for (const auto& fk : info.foreign_keys) {
    CORADD_CHECK(GetTable(fk.dim_table) != nullptr);
  }
  facts_.push_back(std::move(info));
}

const FactTableInfo* Catalog::GetFactInfo(const std::string& fact_name) const {
  for (const auto& f : facts_) {
    if (f.name == fact_name) return &f;
  }
  return nullptr;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace coradd
