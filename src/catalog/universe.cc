#include "catalog/universe.h"

#include <unordered_set>

#include "common/hash.h"

namespace coradd {

Universe::Universe(const Catalog& catalog, const FactTableInfo& fact_info)
    : fact_info_(fact_info) {
  fact_ = catalog.GetTable(fact_info_.name);
  CORADD_CHECK(fact_ != nullptr);

  // Fact columns come first, under their own names.
  for (size_t c = 0; c < fact_->schema().NumColumns(); ++c) {
    const ColumnDef& def = fact_->schema().Column(c);
    UniverseColumn uc{def.name, fact_, static_cast<int>(c), -1, def.type,
                      def.byte_size};
    index_[uc.name] = static_cast<int>(columns_.size());
    columns_.push_back(std::move(uc));
  }

  // Then each dimension's columns, resolved through the FK.
  dim_row_of_fact_.resize(fact_info_.foreign_keys.size());
  for (size_t f = 0; f < fact_info_.foreign_keys.size(); ++f) {
    const ForeignKey& fk = fact_info_.foreign_keys[f];
    const Table* dim = catalog.GetTable(fk.dim_table);
    CORADD_CHECK(dim != nullptr);
    const int pk_col = dim->schema().ColumnIndex(fk.dim_pk_column);
    CORADD_CHECK(pk_col >= 0);
    const int fact_fk_col = fact_->schema().ColumnIndex(fk.fact_column);
    CORADD_CHECK(fact_fk_col >= 0);

    // PK value -> dimension row id.
    std::unordered_map<int64_t, RowId> pk_to_row;
    pk_to_row.reserve(dim->NumRows() * 2);
    for (RowId r = 0; r < dim->NumRows(); ++r) {
      pk_to_row[dim->Value(r, static_cast<size_t>(pk_col))] = r;
    }

    auto& mapping = dim_row_of_fact_[f];
    mapping.resize(fact_->NumRows());
    const auto& fk_data = fact_->ColumnData(static_cast<size_t>(fact_fk_col));
    for (size_t r = 0; r < fk_data.size(); ++r) {
      auto it = pk_to_row.find(fk_data[r]);
      CORADD_CHECK(it != pk_to_row.end());
      mapping[r] = it->second;
    }

    for (size_t c = 0; c < dim->schema().NumColumns(); ++c) {
      const ColumnDef& def = dim->schema().Column(c);
      if (index_.find(def.name) != index_.end()) continue;  // PK shadows FK.
      UniverseColumn uc{def.name, dim, static_cast<int>(c),
                       static_cast<int>(f), def.type, def.byte_size};
      index_[uc.name] = static_cast<int>(columns_.size());
      columns_.push_back(std::move(uc));
    }
  }
}

int Universe::ColumnIndex(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

size_t Universe::DistinctCount(int ucol) const {
  std::unordered_set<int64_t> seen;
  const size_t n = NumRows();
  seen.reserve(n / 4 + 16);
  for (RowId r = 0; r < n; ++r) seen.insert(Value(r, ucol));
  return seen.size();
}

size_t Universe::DistinctCountComposite(const std::vector<int>& ucols) const {
  std::unordered_set<uint64_t> seen;
  const size_t n = NumRows();
  seen.reserve(n / 4 + 16);
  for (RowId r = 0; r < n; ++r) {
    uint64_t h = 0xabcdef0123456789ULL;
    for (int c : ucols) h = HashCombine(h, static_cast<uint64_t>(Value(r, c)));
    seen.insert(h);
  }
  return seen.size();
}

Schema Universe::MakeSchema(const std::vector<int>& ucols) const {
  Schema schema;
  for (int c : ucols) {
    const UniverseColumn& uc = columns_[static_cast<size_t>(c)];
    ColumnDef def;
    def.name = uc.name;
    def.type = uc.type;
    def.byte_size = uc.byte_size;
    const ColumnDef& src = uc.source->schema().Column(static_cast<size_t>(uc.source_col));
    def.dictionary = src.dictionary;
    schema.AddColumn(std::move(def));
  }
  return schema;
}

std::unique_ptr<Table> Universe::MaterializeProjection(
    const std::vector<int>& ucols, const std::string& table_name) const {
  auto out = std::make_unique<Table>(MakeSchema(ucols), table_name);
  const size_t n = NumRows();
  out->Reserve(n);
  std::vector<int64_t> row(ucols.size());
  for (RowId r = 0; r < n; ++r) {
    for (size_t i = 0; i < ucols.size(); ++i) row[i] = Value(r, ucols[i]);
    out->AppendRow(row);
  }
  return out;
}

}  // namespace coradd
