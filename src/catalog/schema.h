// Schema metadata: column definitions with declared on-disk byte widths.
//
// All column data in this library is stored as 64-bit integer codes; string
// domains are dictionary-encoded with the dictionary kept in the ColumnDef.
// The declared `byte_size` is the width the value would occupy in an on-disk
// row (e.g. 4 for an int, 10 for CHAR(10)), which drives every size estimate
// (heap pages, B+Tree entries, MV space accounting) exactly as in the paper.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace coradd {

/// Logical value domain of a column. Representation is always int64 codes;
/// the type controls rendering and dictionary usage.
enum class ValueType { kInt = 0, kString = 1 };

/// A single column: name, logical type, and on-disk byte width.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kInt;
  /// Bytes one value occupies in a stored row; drives size estimation.
  uint32_t byte_size = 4;
  /// For kString columns: code -> string. May be empty for kInt.
  std::vector<std::string> dictionary;

  /// Renders a stored code as a display string.
  std::string Render(int64_t code) const;
};

/// An ordered list of columns with O(1) name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  /// Appends a column. Precondition: name not already present.
  void AddColumn(ColumnDef col);

  size_t NumColumns() const { return columns_.size(); }
  const ColumnDef& Column(size_t i) const { return columns_[i]; }
  ColumnDef* MutableColumn(size_t i) { return &columns_[i]; }

  /// Returns the index of `name`, or -1 if absent.
  int ColumnIndex(const std::string& name) const;

  /// True iff a column called `name` exists.
  bool HasColumn(const std::string& name) const {
    return ColumnIndex(name) >= 0;
  }

  /// Total declared row width in bytes (sum of column byte sizes).
  uint32_t RowWidthBytes() const;

  /// Returns the subset schema for the given column indices (in that order).
  Schema Project(const std::vector<int>& column_indices) const;

  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace coradd
