// The 13 SSB queries (flights Q1..Q4) and the paper's augmented 52-query
// workload. Queries follow O'Neil et al.'s SSB specification; predicates on
// string-valued attributes use the generator's dictionary codes.
#include "ssb/ssb.h"

#include "common/string_util.h"

namespace coradd {
namespace ssb {

namespace {

Query MakeQ1(const std::string& id, std::vector<Predicate> preds) {
  Query q;
  q.id = id;
  q.fact_table = "lineorder";
  q.predicates = std::move(preds);
  q.aggregates = {{"lo_extendedprice", "lo_discount"}};
  return q;
}

Query MakeQ2(const std::string& id, std::vector<Predicate> preds,
             std::vector<std::string> group_by = {"d_year", "p_brand1"}) {
  Query q;
  q.id = id;
  q.fact_table = "lineorder";
  q.predicates = std::move(preds);
  q.group_by = std::move(group_by);
  q.aggregates = {{"lo_revenue", ""}};
  return q;
}

Query MakeQ3(const std::string& id, std::vector<Predicate> preds,
             std::vector<std::string> group_by) {
  Query q;
  q.id = id;
  q.fact_table = "lineorder";
  q.predicates = std::move(preds);
  q.group_by = std::move(group_by);
  q.aggregates = {{"lo_revenue", ""}};
  return q;
}

Query MakeQ4(const std::string& id, std::vector<Predicate> preds,
             std::vector<std::string> group_by) {
  Query q;
  q.id = id;
  q.fact_table = "lineorder";
  q.predicates = std::move(preds);
  q.group_by = std::move(group_by);
  // SUM(lo_revenue - lo_supplycost): two sums, same attribute coverage.
  q.aggregates = {{"lo_revenue", ""}, {"lo_supplycost", ""}};
  return q;
}

std::vector<int64_t> Cities(std::initializer_list<const char*> names) {
  std::vector<int64_t> out;
  for (const char* n : names) out.push_back(CityCode(n));
  return out;
}

}  // namespace

Workload MakeWorkload() {
  Workload w;
  w.name = "ssb13";

  // --- Flight 1: restrictions on date + discount + quantity, no group-by.
  w.queries.push_back(MakeQ1(
      "Q1.1", {Predicate::Eq("d_year", 1993),
               Predicate::Range("lo_discount", 1, 3),
               Predicate::Range("lo_quantity", 1, 24)}));
  w.queries.push_back(MakeQ1(
      "Q1.2", {Predicate::Eq("d_yearmonthnum", YearMonthNum(1994, 1)),
               Predicate::Range("lo_discount", 4, 6),
               Predicate::Range("lo_quantity", 26, 35)}));
  w.queries.push_back(MakeQ1(
      "Q1.3", {Predicate::Eq("d_weeknuminyear", 6),
               Predicate::Eq("d_year", 1994),
               Predicate::Range("lo_discount", 5, 7),
               Predicate::Range("lo_quantity", 26, 35)}));

  // --- Flight 2: part category/brand + supplier region.
  w.queries.push_back(MakeQ2(
      "Q2.1", {Predicate::Eq("p_category", CategoryCode("MFGR#12")),
               Predicate::Eq("s_region", RegionCode("AMERICA"))}));
  w.queries.push_back(MakeQ2(
      "Q2.2", {Predicate::Range("p_brand1", BrandCode("MFGR#2221"),
                                BrandCode("MFGR#2228")),
               Predicate::Eq("s_region", RegionCode("ASIA"))}));
  w.queries.push_back(MakeQ2(
      "Q2.3", {Predicate::Eq("p_brand1", BrandCode("MFGR#2239")),
               Predicate::Eq("s_region", RegionCode("EUROPE"))}));

  // --- Flight 3: customer/supplier geography over a year range.
  w.queries.push_back(MakeQ3(
      "Q3.1",
      {Predicate::Eq("c_region", RegionCode("ASIA")),
       Predicate::Eq("s_region", RegionCode("ASIA")),
       Predicate::Range("d_year", 1992, 1997)},
      {"c_nation", "s_nation", "d_year"}));
  w.queries.push_back(MakeQ3(
      "Q3.2",
      {Predicate::Eq("c_nation", NationCode("UNITED STATES")),
       Predicate::Eq("s_nation", NationCode("UNITED STATES")),
       Predicate::Range("d_year", 1992, 1997)},
      {"c_city", "s_city", "d_year"}));
  w.queries.push_back(MakeQ3(
      "Q3.3",
      {Predicate::In("c_city", Cities({"UNITED KI1", "UNITED KI5"})),
       Predicate::In("s_city", Cities({"UNITED KI1", "UNITED KI5"})),
       Predicate::Range("d_year", 1992, 1997)},
      {"c_city", "s_city", "d_year"}));
  w.queries.push_back(MakeQ3(
      "Q3.4",
      {Predicate::In("c_city", Cities({"UNITED KI1", "UNITED KI5"})),
       Predicate::In("s_city", Cities({"UNITED KI1", "UNITED KI5"})),
       Predicate::Eq("d_yearmonth", YearMonthCode(1997, 12))},
      {"c_city", "s_city", "d_year"}));

  // --- Flight 4: profit drill-down.
  w.queries.push_back(MakeQ4(
      "Q4.1",
      {Predicate::Eq("c_region", RegionCode("AMERICA")),
       Predicate::Eq("s_region", RegionCode("AMERICA")),
       Predicate::In("p_mfgr", {MfgrCode("MFGR#1"), MfgrCode("MFGR#2")})},
      {"d_year", "c_nation"}));
  w.queries.push_back(MakeQ4(
      "Q4.2",
      {Predicate::Eq("c_region", RegionCode("AMERICA")),
       Predicate::Eq("s_region", RegionCode("AMERICA")),
       Predicate::In("d_year", {1997, 1998}),
       Predicate::In("p_mfgr", {MfgrCode("MFGR#1"), MfgrCode("MFGR#2")})},
      {"d_year", "s_nation", "p_category"}));
  w.queries.push_back(MakeQ4(
      "Q4.3",
      {Predicate::Eq("c_region", RegionCode("AMERICA")),
       Predicate::Eq("s_nation", NationCode("UNITED STATES")),
       Predicate::In("d_year", {1997, 1998}),
       Predicate::Eq("p_category", CategoryCode("MFGR#14"))},
      {"d_year", "s_city", "p_brand1"}));

  return w;
}

Workload MakeAugmentedWorkload() {
  Workload w = MakeWorkload();
  w.name = "ssb52";

  auto add = [&w](Query q) { w.queries.push_back(std::move(q)); };

  // ---- Flight 1 variants: other dates, shifted windows, other measures.
  for (int v = 0; v < 3; ++v) {
    const int year = 1995 + v;  // 1995, 1996, 1997
    Query q = MakeQ1(StrFormat("Q1.1v%d", v + 1),
                     {Predicate::Eq("d_year", year),
                      Predicate::Range("lo_discount", 1 + v, 3 + v),
                      Predicate::Range("lo_quantity", 1, 20 + 5 * v)});
    if (v == 1) q.aggregates = {{"lo_revenue", ""}};  // varied aggregate
    if (v == 2) q.group_by = {"d_year"};              // varied target attrs
    add(q);
  }
  for (int v = 0; v < 3; ++v) {
    const int64_t ym = YearMonthNum(1995 + v, 3 + 2 * v);
    Query q = MakeQ1(StrFormat("Q1.2v%d", v + 1),
                     {Predicate::Eq("d_yearmonthnum", ym),
                      Predicate::Range("lo_discount", 4, 6),
                      Predicate::Range("lo_quantity", 25 - 5 * v, 35)});
    if (v == 2) q.aggregates = {{"lo_extendedprice", ""}};
    add(q);
  }
  for (int v = 0; v < 3; ++v) {
    Query q = MakeQ1(StrFormat("Q1.3v%d", v + 1),
                     {Predicate::Eq("d_weeknuminyear", 10 + 10 * v),
                      Predicate::Eq("d_year", 1995 + v),
                      Predicate::Range("lo_discount", 5, 7),
                      Predicate::Range("lo_quantity", 26, 35)});
    if (v == 1) q.group_by = {"d_weeknuminyear"};
    add(q);
  }

  // ---- Flight 2 variants: other categories/brands/regions and group-bys.
  const char* kCats[] = {"MFGR#23", "MFGR#31", "MFGR#45"};
  const char* kRegs[] = {"EUROPE", "AFRICA", "AMERICA"};
  for (int v = 0; v < 3; ++v) {
    Query q = MakeQ2(StrFormat("Q2.1v%d", v + 1),
                     {Predicate::Eq("p_category", CategoryCode(kCats[v])),
                      Predicate::Eq("s_region", RegionCode(kRegs[v]))});
    if (v == 2) q.group_by = {"d_year", "p_brand1", "s_nation"};
    add(q);
  }
  const char* kBrandLo[] = {"MFGR#1221", "MFGR#3331", "MFGR#4411"};
  const char* kBrandHi[] = {"MFGR#1228", "MFGR#3338", "MFGR#4418"};
  for (int v = 0; v < 3; ++v) {
    Query q = MakeQ2(
        StrFormat("Q2.2v%d", v + 1),
        {Predicate::Range("p_brand1", BrandCode(kBrandLo[v]),
                          BrandCode(kBrandHi[v])),
         Predicate::Eq("s_region", RegionCode(kRegs[2 - v]))});
    if (v == 1) q.aggregates = {{"lo_revenue", ""}, {"lo_quantity", ""}};
    add(q);
  }
  const char* kBrandsEq[] = {"MFGR#1125", "MFGR#3217", "MFGR#5533"};
  for (int v = 0; v < 3; ++v) {
    Query q = MakeQ2(StrFormat("Q2.3v%d", v + 1),
                     {Predicate::Eq("p_brand1", BrandCode(kBrandsEq[v])),
                      Predicate::Eq("s_region", RegionCode(kRegs[v]))},
                     {"d_year", "p_brand1"});
    if (v == 2) q.group_by = {"d_yearmonthnum", "p_brand1"};
    add(q);
  }

  // ---- Flight 3 variants: other geographies / time windows.
  const char* kRegPairs[][2] = {
      {"EUROPE", "EUROPE"}, {"AMERICA", "ASIA"}, {"AFRICA", "AFRICA"}};
  for (int v = 0; v < 3; ++v) {
    Query q = MakeQ3(
        StrFormat("Q3.1v%d", v + 1),
        {Predicate::Eq("c_region", RegionCode(kRegPairs[v][0])),
         Predicate::Eq("s_region", RegionCode(kRegPairs[v][1])),
         Predicate::Range("d_year", 1993 + v, 1996 + v > 1998 ? 1998 : 1996 + v)},
        {"c_nation", "s_nation", "d_year"});
    add(q);
  }
  const char* kNats[] = {"CHINA", "FRANCE", "BRAZIL"};
  for (int v = 0; v < 3; ++v) {
    Query q = MakeQ3(StrFormat("Q3.2v%d", v + 1),
                     {Predicate::Eq("c_nation", NationCode(kNats[v])),
                      Predicate::Eq("s_nation", NationCode(kNats[v])),
                      Predicate::Range("d_year", 1992, 1995 + v)},
                     {"c_city", "s_city", "d_year"});
    add(q);
  }
  for (int v = 0; v < 3; ++v) {
    const char* c1 = v == 0 ? "CHINA    0" : (v == 1 ? "FRANCE   2" : "BRAZIL   4");
    const char* c2 = v == 0 ? "CHINA    5" : (v == 1 ? "FRANCE   7" : "BRAZIL   9");
    Query q = MakeQ3(StrFormat("Q3.3v%d", v + 1),
                     {Predicate::In("c_city", Cities({c1, c2})),
                      Predicate::In("s_city", Cities({c1, c2})),
                      Predicate::Range("d_year", 1994, 1997)},
                     {"c_city", "s_city", "d_year"});
    add(q);
  }
  for (int v = 0; v < 3; ++v) {
    Query q = MakeQ3(
        StrFormat("Q3.4v%d", v + 1),
        {Predicate::In("c_city", Cities({"UNITED KI1", "UNITED KI5"})),
         Predicate::In("s_city", Cities({"UNITED KI1", "UNITED KI5"})),
         Predicate::Eq("d_yearmonth", YearMonthCode(1994 + v, 3 + 3 * v))},
        {"c_city", "s_city", "d_year"});
    add(q);
  }

  // ---- Flight 4 variants.
  for (int v = 0; v < 3; ++v) {
    Query q = MakeQ4(
        StrFormat("Q4.1v%d", v + 1),
        {Predicate::Eq("c_region", RegionCode(kRegs[v])),
         Predicate::Eq("s_region", RegionCode(kRegs[v])),
         Predicate::In("p_mfgr",
                       {MfgrCode("MFGR#3"), MfgrCode("MFGR#4")})},
        {"d_year", "c_nation"});
    if (v == 2) q.group_by = {"d_year", "c_nation", "p_mfgr"};
    add(q);
  }
  for (int v = 0; v < 3; ++v) {
    Query q = MakeQ4(
        StrFormat("Q4.2v%d", v + 1),
        {Predicate::Eq("c_region", RegionCode("ASIA")),
         Predicate::Eq("s_region", RegionCode(kRegs[v])),
         Predicate::In("d_year", {1995 + v, 1996 + v}),
         Predicate::In("p_mfgr",
                       {MfgrCode("MFGR#2"), MfgrCode("MFGR#5")})},
        {"d_year", "s_nation", "p_category"});
    add(q);
  }
  const char* kCats4[] = {"MFGR#21", "MFGR#33", "MFGR#52"};
  const char* kNats4[] = {"CHINA", "GERMANY", "CANADA"};
  for (int v = 0; v < 3; ++v) {
    Query q = MakeQ4(StrFormat("Q4.3v%d", v + 1),
                     {Predicate::Eq("c_region", RegionCode("EUROPE")),
                      Predicate::Eq("s_nation", NationCode(kNats4[v])),
                      Predicate::In("d_year", {1996, 1997}),
                      Predicate::Eq("p_category", CategoryCode(kCats4[v]))},
                     {"d_year", "s_city", "p_brand1"});
    add(q);
  }

  return w;
}

}  // namespace ssb
}  // namespace coradd
