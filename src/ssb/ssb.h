// Star Schema Benchmark (O'Neil, O'Neil & Chen 2007) generator and
// workloads, built from scratch (§7.1 of the paper evaluates on SSB Scale 4
// and an augmented 52-query variant).
//
// The generator reproduces the correlation structure CORADD exploits:
//   * date hierarchy: d_datekey -> d_yearmonthnum -> d_year; d_weeknuminyear
//     correlates with month/year (Table 1/2 of the paper),
//   * geography: city -> nation -> region in customer and supplier,
//   * product: p_brand1 -> p_category -> p_mfgr,
//   * lo_commitdate is a few days after lo_orderdate (Fig 13's correlated
//     secondary-attribute example).
// All strings are dictionary-encoded; declared byte widths follow the SSB
// column definitions so size accounting matches the benchmark's row widths.
#pragma once

#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "workload/query.h"

namespace coradd {
namespace ssb {

/// Generation knobs. Scale factor 1 = 6M lineorder rows (SSB dbgen).
struct SsbOptions {
  double scale_factor = 0.05;
  uint64_t seed = 7;
  /// Part table rows; SSB's 200k*(1+log2(SF)) is clamped to scale*200000
  /// with a floor so small scales stay proportionate.
  uint64_t PartRows() const;
  uint64_t CustomerRows() const;
  uint64_t SupplierRows() const;
  uint64_t LineorderRows() const;
};

/// Number of days / years covered by the date dimension (1992..1998).
inline constexpr int kFirstYear = 1992;
inline constexpr int kNumYears = 7;
inline constexpr int kNumNations = 25;
inline constexpr int kNumRegions = 5;
inline constexpr int kCitiesPerNation = 10;

/// Region index (0..4) of a nation index (0..24).
int RegionOfNation(int nation);
/// Nation display name.
const char* NationName(int nation);
/// Region display name.
const char* RegionName(int region);

/// --- Encoded-value helpers (codes used in generated columns) ---
/// City code: nation*10 + digit, e.g. CityCode("UNITED KI1").
int64_t CityCode(const std::string& city_name);
int64_t NationCode(const std::string& nation_name);
int64_t RegionCode(const std::string& region_name);
/// "MFGR#2" -> mfgr code 1 (0-based).
int64_t MfgrCode(const std::string& mfgr);
/// "MFGR#12" -> category code: mfgr*5 + (digit-1).
int64_t CategoryCode(const std::string& category);
/// "MFGR#2221" -> brand code: category*40 + (suffix-1).
int64_t BrandCode(const std::string& brand);
/// Year-month code for d_yearmonthnum-style predicates: yyyymm.
int64_t YearMonthNum(int year, int month);
/// d_yearmonth code ("Dec1997" style): (year-kFirstYear)*12 + month-1.
int64_t YearMonthCode(int year, int month);

/// Builds the SSB catalog: date, customer, supplier, part, lineorder, with
/// fact metadata (PK lo_orderkey+lo_linenumber; FKs into all dimensions).
std::unique_ptr<Catalog> MakeCatalog(const SsbOptions& options);

/// The 13 standard SSB queries (Q1.1 .. Q4.3).
Workload MakeWorkload();

/// The paper's augmented workload: 52 queries derived from the original 13
/// with varied predicates, target attributes, group-bys and aggregates
/// (§7.1, Experiment 2).
Workload MakeAugmentedWorkload();

}  // namespace ssb
}  // namespace coradd
