#include "ssb/ssb.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"

namespace coradd {
namespace ssb {

namespace {

// TPC-H nation table (alphabetical, nation key order) with region indices:
// 0 AFRICA, 1 AMERICA, 2 ASIA, 3 EUROPE, 4 MIDDLE EAST.
struct NationDef {
  const char* name;
  int region;
};
constexpr NationDef kNations[kNumNations] = {
    {"ALGERIA", 0},       {"ARGENTINA", 1},  {"BRAZIL", 1},
    {"CANADA", 1},        {"EGYPT", 4},      {"ETHIOPIA", 0},
    {"FRANCE", 3},        {"GERMANY", 3},    {"INDIA", 2},
    {"INDONESIA", 2},     {"IRAN", 4},       {"IRAQ", 4},
    {"JAPAN", 2},         {"JORDAN", 4},     {"KENYA", 0},
    {"MOROCCO", 0},       {"MOZAMBIQUE", 0}, {"PERU", 1},
    {"CHINA", 2},         {"ROMANIA", 3},    {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},       {"RUSSIA", 3},     {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1},
};
constexpr const char* kRegions[kNumRegions] = {"AFRICA", "AMERICA", "ASIA",
                                               "EUROPE", "MIDDLE EAST"};
constexpr const char* kMonthNames[12] = {"Jan", "Feb", "Mar", "Apr",
                                         "May", "Jun", "Jul", "Aug",
                                         "Sep", "Oct", "Nov", "Dec"};
constexpr const char* kSeasons[5] = {"Winter", "Spring", "Summer", "Fall",
                                     "Christmas"};
constexpr const char* kMktSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                         "HOUSEHOLD", "MACHINERY"};
constexpr const char* kShipModes[7] = {"AIR", "FOB", "MAIL", "RAIL",
                                       "REG AIR", "SHIP", "TRUCK"};
constexpr const char* kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                        "4-NOT SPECI", "5-LOW"};

/// SSB city name: first 9 chars of the nation (space padded) + digit.
std::string CityName(int nation, int digit) {
  std::string base = kNations[nation].name;
  base.resize(9, ' ');
  return base + std::to_string(digit);
}

bool IsLeap(int y) { return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0; }

int DaysInMonth(int y, int m) {
  static constexpr int kDays[12] = {31, 28, 31, 30, 31, 30,
                                    31, 31, 30, 31, 30, 31};
  if (m == 2 && IsLeap(y)) return 29;
  return kDays[m - 1];
}

struct Date {
  int year, month, day;
  int64_t Key() const { return year * 10000 + month * 100 + day; }
};

/// Total number of days in the SSB calendar.
int TotalDays() {
  int n = 0;
  for (int y = kFirstYear; y < kFirstYear + kNumYears; ++y) {
    n += IsLeap(y) ? 366 : 365;
  }
  return n;
}

/// day_index (0-based from 1992-01-01) -> Date.
Date DateOfIndex(int idx) {
  int y = kFirstYear;
  while (idx >= (IsLeap(y) ? 366 : 365)) {
    idx -= IsLeap(y) ? 366 : 365;
    ++y;
  }
  int m = 1;
  while (idx >= DaysInMonth(y, m)) {
    idx -= DaysInMonth(y, m);
    ++m;
  }
  return Date{y, m, idx + 1};
}

std::vector<std::string> MakeDict(const char* const* names, int n) {
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out.emplace_back(names[i]);
  return out;
}

ColumnDef IntCol(std::string name, uint32_t bytes = 4) {
  ColumnDef c;
  c.name = std::move(name);
  c.type = ValueType::kInt;
  c.byte_size = bytes;
  return c;
}

ColumnDef StrCol(std::string name, uint32_t bytes,
                 std::vector<std::string> dict) {
  ColumnDef c;
  c.name = std::move(name);
  c.type = ValueType::kString;
  c.byte_size = bytes;
  c.dictionary = std::move(dict);
  return c;
}

std::vector<std::string> CityDict() {
  std::vector<std::string> d;
  d.reserve(kNumNations * kCitiesPerNation);
  for (int n = 0; n < kNumNations; ++n) {
    for (int c = 0; c < kCitiesPerNation; ++c) d.push_back(CityName(n, c));
  }
  return d;
}

std::vector<std::string> NationDict() {
  std::vector<std::string> d;
  for (const auto& n : kNations) d.emplace_back(n.name);
  return d;
}

std::vector<std::string> YearMonthDict() {
  std::vector<std::string> d;
  for (int y = kFirstYear; y < kFirstYear + kNumYears; ++y) {
    for (int m = 1; m <= 12; ++m) {
      d.push_back(StrFormat("%s%d", kMonthNames[m - 1], y));
    }
  }
  return d;
}

std::vector<std::string> MfgrDict() {
  std::vector<std::string> d;
  for (int i = 1; i <= 5; ++i) d.push_back(StrFormat("MFGR#%d", i));
  return d;
}

std::vector<std::string> CategoryDict() {
  std::vector<std::string> d;
  for (int m = 1; m <= 5; ++m) {
    for (int c = 1; c <= 5; ++c) d.push_back(StrFormat("MFGR#%d%d", m, c));
  }
  return d;
}

std::vector<std::string> BrandDict() {
  std::vector<std::string> d;
  for (int m = 1; m <= 5; ++m) {
    for (int c = 1; c <= 5; ++c) {
      for (int b = 1; b <= 40; ++b) {
        d.push_back(StrFormat("MFGR#%d%d%02d", m, c, b));
      }
    }
  }
  return d;
}

}  // namespace

uint64_t SsbOptions::PartRows() const {
  const double rows = 200000.0 * std::max(0.01, scale_factor);
  return static_cast<uint64_t>(std::max(2000.0, rows));
}
uint64_t SsbOptions::CustomerRows() const {
  return static_cast<uint64_t>(std::max(300.0, 30000.0 * scale_factor));
}
uint64_t SsbOptions::SupplierRows() const {
  return static_cast<uint64_t>(std::max(100.0, 2000.0 * scale_factor));
}
uint64_t SsbOptions::LineorderRows() const {
  return static_cast<uint64_t>(6000000.0 * scale_factor);
}

int RegionOfNation(int nation) { return kNations[nation].region; }
const char* NationName(int nation) { return kNations[nation].name; }
const char* RegionName(int region) { return kRegions[region]; }

int64_t CityCode(const std::string& city_name) {
  for (int n = 0; n < kNumNations; ++n) {
    for (int c = 0; c < kCitiesPerNation; ++c) {
      if (CityName(n, c) == city_name) return n * kCitiesPerNation + c;
    }
  }
  CORADD_CHECK(false);
  return -1;
}

int64_t NationCode(const std::string& nation_name) {
  for (int n = 0; n < kNumNations; ++n) {
    if (nation_name == kNations[n].name) return n;
  }
  CORADD_CHECK(false);
  return -1;
}

int64_t RegionCode(const std::string& region_name) {
  for (int r = 0; r < kNumRegions; ++r) {
    if (region_name == kRegions[r]) return r;
  }
  CORADD_CHECK(false);
  return -1;
}

int64_t MfgrCode(const std::string& mfgr) {
  CORADD_CHECK(mfgr.size() == 6 && mfgr.rfind("MFGR#", 0) == 0);
  return mfgr[5] - '1';
}

int64_t CategoryCode(const std::string& category) {
  CORADD_CHECK(category.size() == 7 && category.rfind("MFGR#", 0) == 0);
  const int m = category[5] - '1';
  const int c = category[6] - '1';
  return m * 5 + c;
}

int64_t BrandCode(const std::string& brand) {
  CORADD_CHECK(brand.size() == 9 && brand.rfind("MFGR#", 0) == 0);
  const int m = brand[5] - '1';
  const int c = brand[6] - '1';
  const int b = (brand[7] - '0') * 10 + (brand[8] - '0') - 1;
  return (m * 5 + c) * 40 + b;
}

int64_t YearMonthNum(int year, int month) { return year * 100 + month; }

int64_t YearMonthCode(int year, int month) {
  return (year - kFirstYear) * 12 + (month - 1);
}

std::unique_ptr<Catalog> MakeCatalog(const SsbOptions& options) {
  auto catalog = std::make_unique<Catalog>();
  Rng rng(options.seed);

  // ---- date dimension ----
  {
    Schema s;
    s.AddColumn(IntCol("d_datekey"));
    s.AddColumn(IntCol("d_year"));
    s.AddColumn(IntCol("d_yearmonthnum"));
    s.AddColumn(StrCol("d_yearmonth", 7, YearMonthDict()));
    s.AddColumn(IntCol("d_monthnuminyear"));
    s.AddColumn(IntCol("d_weeknuminyear"));
    s.AddColumn(IntCol("d_daynuminweek"));
    s.AddColumn(IntCol("d_daynuminmonth"));
    s.AddColumn(IntCol("d_daynuminyear"));
    s.AddColumn(StrCol("d_sellingseason", 12, MakeDict(kSeasons, 5)));
    s.AddColumn(IntCol("d_holidayfl", 1));
    s.AddColumn(IntCol("d_weekdayfl", 1));
    auto t = std::make_unique<Table>(std::move(s), "date");
    const int total = TotalDays();
    t->Reserve(static_cast<size_t>(total));
    int day_of_year = 0;
    int last_year = kFirstYear;
    for (int i = 0; i < total; ++i) {
      const Date d = DateOfIndex(i);
      if (d.year != last_year) {
        day_of_year = 0;
        last_year = d.year;
      }
      ++day_of_year;
      const int dow = (i % 7) + 1;  // 1..7, 1992-01-01 treated as day 1.
      int season;
      if (d.month == 12) {
        season = 4;  // Christmas
      } else if (d.month <= 2) {
        season = 0;
      } else if (d.month <= 5) {
        season = 1;
      } else if (d.month <= 8) {
        season = 2;
      } else {
        season = 3;
      }
      t->AppendRow({d.Key(), d.year, YearMonthNum(d.year, d.month),
                    YearMonthCode(d.year, d.month), d.month,
                    (day_of_year - 1) / 7 + 1, dow, d.day, day_of_year, season,
                    (dow >= 6 || (d.month == 12 && d.day >= 24)) ? 1 : 0,
                    dow <= 5 ? 1 : 0});
    }
    catalog->AddTable(std::move(t));
  }

  // ---- customer dimension ----
  const auto city_dict = CityDict();
  {
    Schema s;
    s.AddColumn(IntCol("c_custkey"));
    s.AddColumn(StrCol("c_city", 10, city_dict));
    s.AddColumn(StrCol("c_nation", 15, NationDict()));
    s.AddColumn(StrCol("c_region", 12, MakeDict(kRegions, kNumRegions)));
    s.AddColumn(StrCol("c_mktsegment", 10, MakeDict(kMktSegments, 5)));
    auto t = std::make_unique<Table>(std::move(s), "customer");
    const uint64_t n = options.CustomerRows();
    t->Reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      const int64_t nation = static_cast<int64_t>(rng.Uniform(kNumNations));
      const int64_t city =
          nation * kCitiesPerNation + static_cast<int64_t>(rng.Uniform(kCitiesPerNation));
      t->AppendRow({static_cast<int64_t>(i + 1), city, nation,
                    RegionOfNation(static_cast<int>(nation)),
                    static_cast<int64_t>(rng.Uniform(5))});
    }
    catalog->AddTable(std::move(t));
  }

  // ---- supplier dimension ----
  {
    Schema s;
    s.AddColumn(IntCol("s_suppkey"));
    s.AddColumn(StrCol("s_city", 10, city_dict));
    s.AddColumn(StrCol("s_nation", 15, NationDict()));
    s.AddColumn(StrCol("s_region", 12, MakeDict(kRegions, kNumRegions)));
    auto t = std::make_unique<Table>(std::move(s), "supplier");
    const uint64_t n = options.SupplierRows();
    t->Reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      const int64_t nation = static_cast<int64_t>(rng.Uniform(kNumNations));
      const int64_t city =
          nation * kCitiesPerNation + static_cast<int64_t>(rng.Uniform(kCitiesPerNation));
      t->AppendRow({static_cast<int64_t>(i + 1), city, nation,
                    RegionOfNation(static_cast<int>(nation))});
    }
    catalog->AddTable(std::move(t));
  }

  // ---- part dimension ----
  {
    Schema s;
    s.AddColumn(IntCol("p_partkey"));
    s.AddColumn(StrCol("p_mfgr", 6, MfgrDict()));
    s.AddColumn(StrCol("p_category", 7, CategoryDict()));
    s.AddColumn(StrCol("p_brand1", 9, BrandDict()));
    s.AddColumn(IntCol("p_color", 11));
    s.AddColumn(IntCol("p_type", 25));
    s.AddColumn(IntCol("p_size"));
    s.AddColumn(IntCol("p_container", 10));
    auto t = std::make_unique<Table>(std::move(s), "part");
    const uint64_t n = options.PartRows();
    t->Reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      const int64_t brand = static_cast<int64_t>(rng.Uniform(1000));
      const int64_t category = brand / 40;
      const int64_t mfgr = category / 5;
      t->AppendRow({static_cast<int64_t>(i + 1), mfgr, category, brand,
                    static_cast<int64_t>(rng.Uniform(92)),
                    static_cast<int64_t>(rng.Uniform(150)),
                    static_cast<int64_t>(rng.Uniform(50) + 1),
                    static_cast<int64_t>(rng.Uniform(40))});
    }
    catalog->AddTable(std::move(t));
  }

  // ---- lineorder fact ----
  {
    Schema s;
    s.AddColumn(IntCol("lo_orderkey"));
    s.AddColumn(IntCol("lo_linenumber", 1));
    s.AddColumn(IntCol("lo_custkey"));
    s.AddColumn(IntCol("lo_partkey"));
    s.AddColumn(IntCol("lo_suppkey"));
    s.AddColumn(IntCol("lo_orderdate"));
    s.AddColumn(StrCol("lo_orderpriority", 15, MakeDict(kPriorities, 5)));
    s.AddColumn(IntCol("lo_shippriority", 1));
    s.AddColumn(IntCol("lo_quantity", 1));
    s.AddColumn(IntCol("lo_extendedprice"));
    s.AddColumn(IntCol("lo_ordtotalprice"));
    s.AddColumn(IntCol("lo_discount", 1));
    s.AddColumn(IntCol("lo_revenue"));
    s.AddColumn(IntCol("lo_supplycost"));
    s.AddColumn(IntCol("lo_tax", 1));
    s.AddColumn(IntCol("lo_commitdate"));
    s.AddColumn(StrCol("lo_shipmode", 10, MakeDict(kShipModes, 7)));
    auto t = std::make_unique<Table>(std::move(s), "lineorder");
    const uint64_t target = options.LineorderRows();
    t->Reserve(target);
    const int total_days = TotalDays();
    const uint64_t n_cust = options.CustomerRows();
    const uint64_t n_supp = options.SupplierRows();
    const uint64_t n_part = options.PartRows();

    uint64_t rows = 0;
    int64_t orderkey = 0;
    while (rows < target) {
      ++orderkey;
      const int lines =
          1 + static_cast<int>(rng.Uniform(7));  // 1..7 lines per order.
      const int order_day = static_cast<int>(rng.Uniform(total_days));
      const Date od = DateOfIndex(order_day);
      const int64_t custkey = static_cast<int64_t>(rng.Uniform(n_cust)) + 1;
      const int64_t ordtotal = static_cast<int64_t>(rng.Uniform(500000)) + 1;
      for (int l = 1; l <= lines && rows < target; ++l, ++rows) {
        // Commit 30..90 days after the order, clamped to the calendar:
        // the correlated pair the paper's Fig 13 visualizes.
        const int commit_day =
            std::min(order_day + 30 + static_cast<int>(rng.Uniform(61)),
                     total_days - 1);
        const Date cd = DateOfIndex(commit_day);
        const int64_t quantity = static_cast<int64_t>(rng.Uniform(50)) + 1;
        const int64_t price = static_cast<int64_t>(rng.Uniform(10000)) + 90;
        const int64_t discount = static_cast<int64_t>(rng.Uniform(11));
        const int64_t revenue = price * (100 - discount) / 100;
        t->AppendRow({orderkey, l, custkey,
                      static_cast<int64_t>(rng.Uniform(n_part)) + 1,
                      static_cast<int64_t>(rng.Uniform(n_supp)) + 1, od.Key(),
                      static_cast<int64_t>(rng.Uniform(5)),
                      0, quantity, price, ordtotal, discount, revenue,
                      price * 6 / 10, static_cast<int64_t>(rng.Uniform(9)),
                      cd.Key(), static_cast<int64_t>(rng.Uniform(7))});
      }
    }
    catalog->AddTable(std::move(t));
  }

  FactTableInfo fact;
  fact.name = "lineorder";
  fact.primary_key = {"lo_orderkey", "lo_linenumber"};
  fact.foreign_keys = {
      {"lo_orderdate", "date", "d_datekey"},
      {"lo_custkey", "customer", "c_custkey"},
      {"lo_suppkey", "supplier", "s_suppkey"},
      {"lo_partkey", "part", "p_partkey"},
  };
  catalog->RegisterFactTable(std::move(fact));
  return catalog;
}

}  // namespace ssb
}  // namespace coradd
