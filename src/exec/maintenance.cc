#include "exec/maintenance.h"

#include <utility>

#include "common/status.h"

namespace coradd {

InsertionSimulator::InsertionSimulator(std::vector<MaintainedObject> objects,
                                       const MaintenanceOptions& options)
    : objects_(std::move(objects)),
      disk_(options.disk),
      pool_(options.buffer_pool_pages, &disk_),
      rng_(options.seed) {
  CORADD_CHECK(options.buffer_pool_pages > 0);
}

void InsertionSimulator::ApplyInserts(uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t object_id = 0;
    for (const auto& obj : objects_) {
      ++object_id;
      if (obj.heap_pages == 0) continue;
      // Heap page the new row lands on.
      const uint64_t heap_page =
          obj.append_only ? obj.heap_pages - 1 : rng_.Uniform(obj.heap_pages);
      pool_.Write(PageKey{object_id, heap_page});
      if (mirror_ != nullptr) mirror_->Write(PageKey{object_id, heap_page});
      // One leaf page of each secondary structure (PK index, dense B+Tree)
      // is dirtied per insert as well.
      if (obj.index_pages > 0) {
        const PageKey index_key{object_id | kIndexPageObjectFlag,
                                rng_.Uniform(obj.index_pages)};
        pool_.Write(index_key);
        if (mirror_ != nullptr) mirror_->Write(index_key);
      }
    }
  }
  inserts_applied_ += count;
}

void InsertionSimulator::Flush() { pool_.FlushAll(); }

MaintenanceResult InsertionSimulator::Totals() const {
  MaintenanceResult out;
  out.seconds = disk_.elapsed_seconds();
  out.dirty_evictions = pool_.dirty_evictions();
  out.pool_misses = pool_.misses();
  out.pages_written = disk_.pages_written();
  return out;
}

MaintenanceResult SimulateInsertions(
    const std::vector<MaintainedObject>& objects,
    const MaintenanceOptions& options) {
  InsertionSimulator sim(objects, options);
  sim.ApplyInserts(options.num_inserts);
  sim.Flush();
  return sim.Totals();
}

}  // namespace coradd
