#include "exec/maintenance.h"

#include "common/rng.h"
#include "common/status.h"

namespace coradd {

MaintenanceResult SimulateInsertions(
    const std::vector<MaintainedObject>& objects,
    const MaintenanceOptions& options) {
  CORADD_CHECK(options.buffer_pool_pages > 0);
  DiskModel disk(options.disk);
  BufferPool pool(options.buffer_pool_pages, &disk);
  Rng rng(options.seed);

  for (uint64_t i = 0; i < options.num_inserts; ++i) {
    uint32_t object_id = 0;
    for (const auto& obj : objects) {
      ++object_id;
      if (obj.heap_pages == 0) continue;
      // Heap page the new row lands on.
      const uint64_t heap_page =
          obj.append_only ? obj.heap_pages - 1 : rng.Uniform(obj.heap_pages);
      pool.Write(PageKey{object_id, heap_page});
      // One leaf page of each secondary structure (PK index, dense B+Tree)
      // is dirtied per insert as well.
      if (obj.index_pages > 0) {
        pool.Write(PageKey{object_id | 0x80000000u,
                           rng.Uniform(obj.index_pages)});
      }
    }
  }
  pool.FlushAll();

  MaintenanceResult out;
  out.seconds = disk.elapsed_seconds();
  out.dirty_evictions = pool.dirty_evictions();
  out.pool_misses = pool.misses();
  out.pages_written = disk.pages_written();
  return out;
}

}  // namespace coradd
