#include "exec/rewrite.h"

#include <algorithm>
#include <set>

namespace coradd {

RewriteResult RewriteWithCms(const Query& q, const MaterializedObject& obj,
                             size_t max_in_values) {
  RewriteResult out;
  out.query = q;
  if (obj.spec.clustered_key.empty()) return out;
  const std::string& clustered_attr = obj.spec.clustered_key[0];
  const int clustered_col =
      obj.table->table().schema().ColumnIndex(clustered_attr);
  CORADD_CHECK(clustered_col >= 0);

  // Already predicated on the clustered attribute: nothing to steer.
  for (const auto& p : q.predicates) {
    if (p.column == clustered_attr) return out;
  }

  const auto pred_cols = q.PredicateColumns();
  for (const auto& cm : obj.cms) {
    // The CM applies if at least one of its key columns is predicated.
    bool applies = false;
    for (const auto& key : cm->key_columns()) {
      if (std::find(pred_cols.begin(), pred_cols.end(), key) !=
          pred_cols.end()) {
        applies = true;
        break;
      }
    }
    if (!applies) continue;

    // Bucket matchers from the query's predicates (unpredicated key
    // columns match everything), mirroring the executor's CM plan.
    std::vector<std::function<bool(int64_t, int64_t)>> matchers;
    for (const auto& key : cm->key_columns()) {
      const Predicate* pred = nullptr;
      for (const auto& p : out.query.predicates) {
        if (p.column == key) {
          pred = &p;
          break;
        }
      }
      if (pred == nullptr) {
        matchers.push_back([](int64_t, int64_t) { return true; });
      } else if (pred->type == PredicateType::kEquality) {
        const int64_t v = pred->value;
        matchers.push_back(
            [v](int64_t lo, int64_t hi) { return v >= lo && v <= hi; });
      } else if (pred->type == PredicateType::kRange) {
        const int64_t plo = pred->lo, phi = pred->hi;
        matchers.push_back([plo, phi](int64_t lo, int64_t hi) {
          return plo <= hi && lo <= phi;
        });
      } else {
        const std::vector<int64_t>& vals = pred->in_values;
        matchers.push_back([&vals](int64_t lo, int64_t hi) {
          auto it = std::lower_bound(vals.begin(), vals.end(), lo);
          return it != vals.end() && *it <= hi;
        });
      }
    }

    // Expand matching clustered buckets into the distinct values of the
    // leading clustered attribute they contain.
    const std::vector<uint32_t> buckets = cm->LookupBuckets(matchers);
    std::set<int64_t> values;
    const uint64_t num_pages = obj.table->NumPages();
    const uint64_t rpp = obj.table->layout().RowsPerPage();
    bool too_many = false;
    for (uint32_t b : buckets) {
      const PageRun run = cm->BucketPages(b, num_pages);
      const RowId row_begin = static_cast<RowId>(run.first_page * rpp);
      const RowId row_end = static_cast<RowId>(std::min<uint64_t>(
          (run.last_page + 1) * rpp, obj.table->NumRows()));
      for (RowId r = row_begin; r < row_end; ++r) {
        values.insert(
            obj.table->table().Value(r, static_cast<size_t>(clustered_col)));
        if (values.size() > max_in_values) {
          too_many = true;
          break;
        }
      }
      if (too_many) break;
    }
    if (too_many || values.empty()) continue;

    out.query.predicates.push_back(Predicate::In(
        clustered_attr, std::vector<int64_t>(values.begin(), values.end())));
    out.rewritten = true;
    ++out.added_predicates;
    out.enumerated_values += values.size();
    break;  // one steering predicate suffices (the paper adds one IN)
  }
  return out;
}

}  // namespace coradd
