// Batched scan kernels shared by the solo executor (exec/executor.cc) and
// the cooperative shared-scan pass (serving/shared_scan.cc). Everything here
// is deterministic by construction: per-aggregate accumulators run in row
// order across batch boundaries, so any batch size — and any caller that
// preserves the (range, partition, batch) decomposition — produces
// bit-identical doubles (see docs/EXECUTION.md).
#pragma once

#include <cstdint>
#include <vector>

#include "exec/materialize.h"
#include "workload/query.h"

namespace coradd::exec {

/// One query resolved against one object: the unique columns each batch must
/// expose, plus predicates and aggregates rewritten as indexes into that
/// column list. Built once per executed plan — the batched kernels below
/// never touch a column name again.
struct ResolvedQuery {
  std::vector<ResolvedColumn> cols;
  /// When every column is stored in the object (the common MV case),
  /// the table-column indexes, and range scans go straight through
  /// ClusteredTable::ScanBatch with no provenance machinery.
  std::vector<int> stored_cols;
  bool all_stored = false;
  std::vector<const Predicate*> preds;
  std::vector<size_t> pred_col;  ///< preds[j] reads cols[pred_col[j]].
  struct Agg {
    int col_a = -1;
    int col_b = -1;  ///< -1 => SUM(col_a); else SUM(col_a * col_b).
  };
  std::vector<Agg> aggs;
};

/// Interns `name` into `cols`, returning its index (existing or appended).
size_t InternColumn(const MaterializedObject& obj, const std::string& name,
                    std::vector<ResolvedColumn>* cols);

ResolvedQuery ResolveQuery(const Query& q, const MaterializedObject& obj);

/// Fills `sel` with the batch-local indexes of rows matching `p`; the
/// predicate type is dispatched once per batch, not once per row.
size_t FilterFirst(const int64_t* col, size_t n, const Predicate& p,
                   uint32_t* sel);

/// Compacts `sel` in place to the survivors of `p` — the short circuit:
/// each further predicate only touches rows still selected.
size_t FilterNext(const int64_t* col, const Predicate& p, uint32_t* sel,
                  size_t k);

/// Per-partition partial result: one running sum per aggregate, accumulated
/// in row order across batch boundaries (so batch size never regroups the
/// floating-point additions), combined left-to-right at merge time.
struct PartialAgg {
  std::vector<double> acc;
  uint64_t rows = 0;
};

/// Runs the full predicate chain of `rq` over a batch of `n` rows whose
/// columns are indexed by rq.pred_col. Returns the survivor count in `sel`;
/// when `rq` has no predicates returns `n` and leaves `sel` untouched (the
/// all-rows fast path — callers pass all_rows=true downstream).
size_t FilterBatch(const ResolvedQuery& rq, const ColumnBatch& batch,
                   size_t n, uint32_t* sel);

void AccumulateBatch(const ColumnBatch& batch, const ResolvedQuery& rq,
                     const uint32_t* sel, size_t k, bool all_rows,
                     PartialAgg* pa);

/// Scans one contiguous partition in batches of `batch_rows`.
void AggregateRangePartition(const ResolvedQuery& rq,
                             const MaterializedObject& obj, RowRange part,
                             size_t batch_rows, PartialAgg* pa);

/// Same over a slice of an explicit row-id list (secondary B+Tree fetches).
void AggregateRidPartition(const ResolvedQuery& rq,
                           const MaterializedObject& obj, const RowId* rids,
                           size_t count, size_t batch_rows, PartialAgg* pa);

}  // namespace coradd::exec
