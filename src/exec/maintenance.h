// Maintenance-cost simulation (A-3, Figure 14): inserting tuples into a
// database with additional materialized objects dirties more distinct
// pages; once the working set overflows the buffer pool, each insert
// triggers dirty-page evictions and random writes, so maintenance cost
// grows super-linearly with the total size of materialized objects.
//
// The stateful InsertionSimulator applies inserts in increments, so the
// serving engine (src/serving/) can interleave maintenance batches with
// reads while the buffer pool and RNG persist across batches. Applying the
// same total insert count in any batch split touches the identical page
// sequence — SimulateInsertions(n) == ApplyInserts(a) + ApplyInserts(n - a)
// + Flush() for every split, which keeps bench_fig14's isolated numbers and
// the serving engine's live numbers mutually calibrated.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "storage/disk_model.h"

namespace coradd {

/// A maintained object, abstracted to what the simulation needs: its page
/// count (insert position is random within it, because MV clustered keys
/// are unrelated to arrival order) plus its secondary-structure pages.
struct MaintainedObject {
  uint64_t heap_pages = 0;
  uint64_t index_pages = 0;
  /// True for the base table: inserts append (sequential tail page) rather
  /// than landing at a random clustered position.
  bool append_only = false;
};

/// Parameters of the insert experiment.
struct MaintenanceOptions {
  uint64_t num_inserts = 500000;   ///< The paper inserts 500k tuples.
  uint64_t buffer_pool_pages = 0;  ///< Required: the 4 GB-RAM equivalent.
  uint64_t seed = 11;
  DiskParams disk;
};

/// Result counters.
struct MaintenanceResult {
  double seconds = 0.0;
  uint64_t dirty_evictions = 0;
  uint64_t pool_misses = 0;
  uint64_t pages_written = 0;
};

/// Incremental insert-maintenance simulation: buffer pool, disk, and RNG
/// live across ApplyInserts calls. Not thread-safe — the serving engine
/// serializes maintenance under its writer epoch.
class InsertionSimulator {
 public:
  /// `options.num_inserts` is ignored here; callers drive the count through
  /// ApplyInserts.
  InsertionSimulator(std::vector<MaintainedObject> objects,
                     const MaintenanceOptions& options);

  /// Applies `count` single-row inserts, each dirtying one heap page and
  /// one index leaf page per maintained object.
  void ApplyInserts(uint64_t count);

  /// Mirrors every dirtied PageKey into `pool` (nullptr to detach) without
  /// touching the simulator's own pool, disk, or RNG — the isolated-cost
  /// contract (SimulateInsertions == interleaved ApplyInserts + Flush,
  /// ratio exactly 1.000) is preserved bit-for-bit. The serving engine uses
  /// this so writer epochs invalidate/dirty the shared page pool the
  /// concurrent scans read through.
  void SetMirrorPool(SharedBufferPool* pool) { mirror_ = pool; }

  /// Writes back every dirty page still resident (end-of-experiment cost).
  void Flush();

  /// Counters accumulated so far (monotone; call after Flush for the full
  /// Figure 14 cost).
  MaintenanceResult Totals() const;

  uint64_t inserts_applied() const { return inserts_applied_; }

 private:
  std::vector<MaintainedObject> objects_;
  DiskModel disk_;
  BufferPool pool_;
  Rng rng_;
  SharedBufferPool* mirror_ = nullptr;
  uint64_t inserts_applied_ = 0;
};

/// Simulates `options.num_inserts` single-row inserts maintained across
/// `objects` in one shot (Figure 14). Equivalent to InsertionSimulator +
/// ApplyInserts(num_inserts) + Flush.
MaintenanceResult SimulateInsertions(const std::vector<MaintainedObject>& objects,
                                     const MaintenanceOptions& options);

}  // namespace coradd
