// Maintenance-cost simulation (A-3, Figure 14): inserting tuples into a
// database with additional materialized objects dirties more distinct
// pages; once the working set overflows the buffer pool, each insert
// triggers dirty-page evictions and random writes, so maintenance cost
// grows super-linearly with the total size of materialized objects.
#pragma once

#include <cstdint>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_model.h"

namespace coradd {

/// A maintained object, abstracted to what the simulation needs: its page
/// count (insert position is random within it, because MV clustered keys
/// are unrelated to arrival order) plus its secondary-structure pages.
struct MaintainedObject {
  uint64_t heap_pages = 0;
  uint64_t index_pages = 0;
  /// True for the base table: inserts append (sequential tail page) rather
  /// than landing at a random clustered position.
  bool append_only = false;
};

/// Parameters of the insert experiment.
struct MaintenanceOptions {
  uint64_t num_inserts = 500000;   ///< The paper inserts 500k tuples.
  uint64_t buffer_pool_pages = 0;  ///< Required: the 4 GB-RAM equivalent.
  uint64_t seed = 11;
  DiskParams disk;
};

/// Result counters.
struct MaintenanceResult {
  double seconds = 0.0;
  uint64_t dirty_evictions = 0;
  uint64_t pool_misses = 0;
  uint64_t pages_written = 0;
};

/// Simulates `num_inserts` single-row inserts maintained across `objects`.
MaintenanceResult SimulateInsertions(const std::vector<MaintainedObject>& objects,
                                     const MaintenanceOptions& options);

}  // namespace coradd
