// Query executor over materialized objects. It enumerates the physically
// available plans (full scan, clustered-prefix scan, one per CM, one per
// secondary B+Tree), asks the provided cost model — the "optimizer" — to
// pick one, then actually performs the chosen access pattern page by page
// against the DiskModel and computes the aggregate. The simulated elapsed
// time is the experiment's "real runtime"; the aggregate doubles as a
// cross-design correctness check (every design must return identical
// answers for the same query).
#pragma once

#include <memory>

#include "cost/cost_model.h"
#include "exec/materialize.h"
#include "storage/disk_model.h"

namespace coradd {

/// Outcome of running one query against one object.
struct QueryRunResult {
  double seconds = 0.0;
  uint64_t pages_read = 0;
  uint64_t seeks = 0;
  uint64_t fragments = 0;
  AccessPath path = AccessPath::kFullScan;
  /// Combined value of all aggregates (identical across designs).
  double aggregate = 0.0;
  uint64_t rows_output = 0;
};

/// Executes queries with plan selection delegated to a cost model.
class QueryExecutor {
 public:
  /// `planner` plays the optimizer: designs produced by the oblivious
  /// designer are also *executed* with oblivious plan choices, mirroring
  /// the commercial system's behaviour in §7.
  QueryExecutor(const StatsRegistry* registry, const CostModel* planner);

  /// Runs `q` cold (the paper discards caches between queries) against
  /// `obj`, charging I/O to `disk`.
  QueryRunResult Run(const Query& q, const MaterializedObject& obj,
                     DiskModel* disk) const;

  /// Runs `q` through the object's CM number `cm_index` regardless of what
  /// the planner would pick — the §7/Fig 10 methodology, where query
  /// rewriting forces the secondary plan onto the DBMS.
  QueryRunResult RunWithCm(const Query& q, const MaterializedObject& obj,
                           size_t cm_index, DiskModel* disk) const;

 private:
  struct RowPredicate;  // resolved predicate accessor

  QueryRunResult RunFullScan(const Query& q, const MaterializedObject& obj,
                             DiskModel* disk) const;
  QueryRunResult RunClustered(const Query& q, const MaterializedObject& obj,
                              DiskModel* disk) const;
  QueryRunResult RunCm(const Query& q, const MaterializedObject& obj,
                       const CorrelationMap& cm, DiskModel* disk) const;
  QueryRunResult RunBTree(const Query& q, const MaterializedObject& obj,
                          size_t btree_idx, DiskModel* disk) const;

  /// Filters rows of [range] and accumulates the aggregate.
  void AggregateRows(const Query& q, const MaterializedObject& obj,
                     RowRange range, QueryRunResult* out) const;

  const StatsRegistry* registry_;
  const CostModel* planner_;
};

}  // namespace coradd
