// Query executor over materialized objects. It enumerates the physically
// available plans (full scan, clustered-prefix scan, one per CM, one per
// secondary B+Tree), asks the provided cost model — the "optimizer" — to
// pick one, then actually performs the chosen access pattern page by page
// against the DiskModel and computes the aggregate. The simulated elapsed
// time is the experiment's "real runtime"; the aggregate doubles as a
// cross-design correctness check (every design must return identical
// answers for the same query).
//
// Execution is batched and parallel: scans resolve their columns once, read
// ColumnBatches (contiguous column vectors, zero-copy for stored columns),
// filter them with short-circuiting selection vectors, and partition large
// row ranges across a ThreadPool with per-partition partial aggregates
// merged in fixed partition order — so every thread count and every batch
// size produces bit-identical results (see docs/EXECUTION.md).
#pragma once

#include <memory>

#include "common/thread_pool.h"
#include "cost/cost_model.h"
#include "exec/materialize.h"
#include "storage/disk_model.h"

namespace coradd {

/// Outcome of running one query against one object.
struct QueryRunResult {
  double seconds = 0.0;
  uint64_t pages_read = 0;
  uint64_t seeks = 0;
  uint64_t fragments = 0;
  AccessPath path = AccessPath::kFullScan;
  /// Combined value of all aggregates (identical across designs).
  double aggregate = 0.0;
  uint64_t rows_output = 0;
};

/// Batched-execution knobs. The defaults are what the benches run.
struct ExecOptions {
  /// Rows per ColumnBatch handed to the filter/aggregate kernels. Any value
  /// yields bit-identical results (per-aggregate accumulators run in row
  /// order across batch boundaries).
  size_t batch_rows = 4096;
  /// Fixed partition width for parallel scans: a row range is cut into
  /// ceil(size / partition_rows) partitions regardless of thread count, and
  /// partials merge in partition order — the determinism contract. Changing
  /// this value regroups floating-point sums (still within 1e-9 relative).
  size_t partition_rows = 16384;
  /// Pool for scan partitions; nullptr = ThreadPool::Shared().
  ThreadPool* pool = nullptr;
};

/// Executes queries with plan selection delegated to a cost model.
class QueryExecutor {
 public:
  /// `planner` plays the optimizer: designs produced by the oblivious
  /// designer are also *executed* with oblivious plan choices, mirroring
  /// the commercial system's behaviour in §7.
  QueryExecutor(const StatsRegistry* registry, const CostModel* planner,
                ExecOptions options = {});

  const ExecOptions& options() const { return options_; }

  /// Columns + predicates + aggregates resolved against one object (opaque;
  /// defined in executor.cc where the batch kernels live).
  struct Resolved;

  /// Runs `q` cold (the paper discards caches between queries) against
  /// `obj`, charging I/O to `disk`.
  QueryRunResult Run(const Query& q, const MaterializedObject& obj,
                     DiskModel* disk) const;

  /// Runs `q` through the object's CM number `cm_index` regardless of what
  /// the planner would pick — the §7/Fig 10 methodology, where query
  /// rewriting forces the secondary plan onto the DBMS.
  QueryRunResult RunWithCm(const Query& q, const MaterializedObject& obj,
                           size_t cm_index, DiskModel* disk) const;

 private:
  QueryRunResult RunFullScan(const Query& q, const MaterializedObject& obj,
                             DiskModel* disk) const;
  QueryRunResult RunClustered(const Query& q, const MaterializedObject& obj,
                              DiskModel* disk) const;
  QueryRunResult RunCm(const Query& q, const MaterializedObject& obj,
                       const CorrelationMap& cm, DiskModel* disk) const;
  QueryRunResult RunBTree(const Query& q, const MaterializedObject& obj,
                          size_t btree_idx, DiskModel* disk) const;

  /// Filters rows of [range] in fixed partitions (parallel when large) and
  /// accumulates the aggregate deterministically.
  void AggregateRows(const Resolved& rq, const MaterializedObject& obj,
                     RowRange range, QueryRunResult* out) const;

  /// Same over an explicit row-id list (secondary B+Tree fetches).
  void AggregateRids(const Resolved& rq, const MaterializedObject& obj,
                     const std::vector<RowId>& rids,
                     QueryRunResult* out) const;

  const StatsRegistry* registry_;
  const CostModel* planner_;
  ExecOptions options_;
};

}  // namespace coradd
