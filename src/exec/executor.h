// Query executor over materialized objects. It enumerates the physically
// available plans (full scan, clustered-prefix scan, one per CM, one per
// secondary B+Tree), asks the provided cost model — the "optimizer" — to
// pick one, then actually performs the chosen access pattern page by page
// against the DiskModel and computes the aggregate. The simulated elapsed
// time is the experiment's "real runtime"; the aggregate doubles as a
// cross-design correctness check (every design must return identical
// answers for the same query).
//
// Execution is batched and parallel: scans resolve their columns once, read
// ColumnBatches (contiguous column vectors, zero-copy for stored columns),
// filter them with short-circuiting selection vectors, and partition large
// row ranges across a ThreadPool with per-partition partial aggregates
// merged in fixed partition order — so every thread count and every batch
// size produces bit-identical results (see docs/EXECUTION.md).
//
// Plan selection and plan execution are exposed separately (SelectPlan /
// RunPlan) so the serving layer can group admitted queries whose plans scan
// the same row ranges of the same object into one cooperative shared-scan
// pass (see docs/SERVING.md); Run() composes the two.
#pragma once

#include <memory>

#include "common/thread_pool.h"
#include "cost/cost_model.h"
#include "exec/materialize.h"
#include "exec/scan_kernels.h"
#include "storage/buffer_pool.h"
#include "storage/disk_model.h"
#include "storage/layout.h"

namespace coradd {

/// Outcome of running one query against one object.
struct QueryRunResult {
  double seconds = 0.0;
  uint64_t pages_read = 0;
  uint64_t seeks = 0;
  uint64_t fragments = 0;
  AccessPath path = AccessPath::kFullScan;
  /// Combined value of all aggregates (identical across designs).
  double aggregate = 0.0;
  uint64_t rows_output = 0;
  /// Pages served from the shared buffer pool (pooled mode only; 0 cold).
  uint64_t pool_hits = 0;
};

/// Batched-execution knobs. The defaults are what the benches run.
struct ExecOptions {
  /// Rows per ColumnBatch handed to the filter/aggregate kernels. Any value
  /// yields bit-identical results (per-aggregate accumulators run in row
  /// order across batch boundaries).
  size_t batch_rows = 4096;
  /// Fixed partition width for parallel scans: a row range is cut into
  /// ceil(size / partition_rows) partitions regardless of thread count, and
  /// partials merge in partition order — the determinism contract. Changing
  /// this value regroups floating-point sums (still within 1e-9 relative).
  size_t partition_rows = 16384;
  /// Pool for scan partitions; nullptr = ThreadPool::Shared().
  ThreadPool* pool = nullptr;
  /// Optional shared page pool. When set, RunPlan bills page touches
  /// through it — resident pages cost nothing, each maximal run of missing
  /// pages costs one seek + sequential read on the query's DiskModel, and
  /// dirty write-backs are charged to the pool's own attached disk. The
  /// object must carry a nonzero `pool_object_id`. Default off: billing is
  /// the cold per-query model, bit-identical to every existing golden.
  SharedBufferPool* page_pool = nullptr;
};

/// A selected access plan, fully resolved to physical work: the row ranges
/// to aggregate (in execution order — the determinism surface) and the
/// coalesced page runs to charge against the DiskModel. Two queries whose
/// plans agree on (object, ranges) aggregate over identical batches, which
/// is exactly the condition the serving layer's shared-scan grouping keys
/// on.
struct ScanPlan {
  enum class Kind { kFullScan, kClustered, kCm, kBTree };
  Kind kind = Kind::kFullScan;
  AccessPath path = AccessPath::kFullScan;
  /// CM or secondary-B+Tree ordinal within the object (kCm / kBTree only).
  size_t structure = 0;
  /// Row ranges aggregated, in order. Empty ranges are never stored.
  std::vector<RowRange> ranges;
  /// Coalesced heap page runs charged to the disk, in order.
  std::vector<PageRun> io_runs;
  /// B+Tree descent seeks charged per run (clustered/CM paths).
  uint32_t seeks_per_run = 0;
  /// kBTree only: sorted row ids to fetch plus the index descent charge.
  std::vector<RowId> rids;
  uint64_t index_leaf_pages = 0;
  uint32_t index_height = 0;
  /// kBTree only: first leaf page of the touched span, so pooled accounting
  /// touches concrete index pages (keyed under kIndexPageObjectFlag).
  uint64_t index_leaf_first = 0;
  /// Range-based plans aggregate `ranges` and are shareable; kBTree plans
  /// gather an explicit rid list and always execute solo.
  bool range_based() const { return kind != Kind::kBTree; }
};

/// Executes queries with plan selection delegated to a cost model.
class QueryExecutor {
 public:
  /// `planner` plays the optimizer: designs produced by the oblivious
  /// designer are also *executed* with oblivious plan choices, mirroring
  /// the commercial system's behaviour in §7.
  QueryExecutor(const StatsRegistry* registry, const CostModel* planner,
                ExecOptions options = {});

  const ExecOptions& options() const { return options_; }

  /// Attaches (or detaches, nullptr) the shared page pool after
  /// construction — the serving engine sizes its pool from the materialized
  /// working set, which only exists once the engine body runs. Not
  /// thread-safe against concurrent Run/RunPlan.
  void SetPagePool(SharedBufferPool* pool) { options_.page_pool = pool; }

  /// Runs `q` cold (the paper discards caches between queries) against
  /// `obj`, charging I/O to `disk`. Equivalent to SelectPlan + RunPlan.
  QueryRunResult Run(const Query& q, const MaterializedObject& obj,
                     DiskModel* disk) const;

  /// Runs `q` through the object's CM number `cm_index` regardless of what
  /// the planner would pick — the §7/Fig 10 methodology, where query
  /// rewriting forces the secondary plan onto the DBMS.
  QueryRunResult RunWithCm(const Query& q, const MaterializedObject& obj,
                           size_t cm_index, DiskModel* disk) const;

  /// Picks the cheapest physically available plan for `q` on `obj` under
  /// `params` and resolves it to ranges + page runs. Deterministic: depends
  /// only on (q, obj, params).
  ScanPlan SelectPlan(const Query& q, const MaterializedObject& obj,
                      const DiskParams& params) const;

  /// Executes a previously selected plan: charges its I/O to `disk` and
  /// aggregates its ranges (or rid list) in order. Run(q, obj, disk) ==
  /// RunPlan(q, obj, SelectPlan(q, obj, disk->params()), disk) bit-for-bit.
  QueryRunResult RunPlan(const Query& q, const MaterializedObject& obj,
                         const ScanPlan& plan, DiskModel* disk) const;

  /// Charges only the plan's I/O (index descents, seeks, page runs) to
  /// `disk`, accumulating pages_read/seeks/fragments into `out`. The
  /// shared-scan pass uses this to bill each group member its solo I/O cost
  /// while the data itself is read once.
  static void ChargePlanIo(const ScanPlan& plan, const MaterializedObject& obj,
                           DiskModel* disk, QueryRunResult* out);

  /// Pooled variant: touches every plan page (heap runs; index leaves for
  /// kBTree) through `pool`, charging only the missing pages to `disk` —
  /// one seek + sequential read per maximal missed run, hits free. A fully
  /// warm plan therefore costs zero simulated seconds. Descent seeks are
  /// folded into the per-run seek (a warm cache also keeps internal nodes
  /// resident). Requires obj.pool_object_id != 0.
  static void ChargePlanIoPooled(const ScanPlan& plan,
                                 const MaterializedObject& obj,
                                 SharedBufferPool* pool, DiskModel* disk,
                                 QueryRunResult* out);

 private:
  void BuildClusteredPlan(const Query& q, const MaterializedObject& obj,
                          const DiskParams& params, ScanPlan* plan) const;
  void BuildCmPlan(const Query& q, const MaterializedObject& obj,
                   const CorrelationMap& cm, const DiskParams& params,
                   ScanPlan* plan) const;
  void BuildBTreePlan(const Query& q, const MaterializedObject& obj,
                      size_t btree_idx, const DiskParams& params,
                      ScanPlan* plan) const;

  /// Filters rows of [range] in fixed partitions (parallel when large) and
  /// accumulates the aggregate deterministically.
  void AggregateRows(const exec::ResolvedQuery& rq,
                     const MaterializedObject& obj, RowRange range,
                     QueryRunResult* out) const;

  /// Same over an explicit row-id list (secondary B+Tree fetches).
  void AggregateRids(const exec::ResolvedQuery& rq,
                     const MaterializedObject& obj,
                     const std::vector<RowId>& rids,
                     QueryRunResult* out) const;

  const StatsRegistry* registry_;
  const CostModel* planner_;
  ExecOptions options_;
};

}  // namespace coradd
