#include "exec/scan_kernels.h"

#include <algorithm>

#include "obs/trace.h"

namespace coradd::exec {

size_t InternColumn(const MaterializedObject& obj, const std::string& name,
                    std::vector<ResolvedColumn>* cols) {
  const ResolvedColumn rc = ResolveColumn(obj, name);
  for (size_t i = 0; i < cols->size(); ++i) {
    if ((*cols)[i].ucol == rc.ucol) return i;
  }
  cols->push_back(rc);
  return cols->size() - 1;
}

ResolvedQuery ResolveQuery(const Query& q, const MaterializedObject& obj) {
  ResolvedQuery rq;
  for (const auto& p : q.predicates) {
    rq.preds.push_back(&p);
    rq.pred_col.push_back(InternColumn(obj, p.column, &rq.cols));
  }
  for (const auto& a : q.aggregates) {
    ResolvedQuery::Agg agg;
    agg.col_a = static_cast<int>(InternColumn(obj, a.col_a, &rq.cols));
    if (!a.col_b.empty()) {
      agg.col_b = static_cast<int>(InternColumn(obj, a.col_b, &rq.cols));
    }
    rq.aggs.push_back(agg);
  }
  rq.all_stored = true;
  for (const ResolvedColumn& c : rq.cols) {
    if (c.table_col < 0) {
      rq.all_stored = false;
      rq.stored_cols.clear();
      break;
    }
    rq.stored_cols.push_back(c.table_col);
  }
  return rq;
}

size_t FilterFirst(const int64_t* col, size_t n, const Predicate& p,
                   uint32_t* sel) {
  size_t k = 0;
  switch (p.type) {
    case PredicateType::kEquality: {
      const int64_t v = p.value;
      for (size_t i = 0; i < n; ++i) {
        if (col[i] == v) sel[k++] = static_cast<uint32_t>(i);
      }
      break;
    }
    case PredicateType::kRange: {
      const int64_t lo = p.lo, hi = p.hi;
      for (size_t i = 0; i < n; ++i) {
        if (col[i] >= lo && col[i] <= hi) sel[k++] = static_cast<uint32_t>(i);
      }
      break;
    }
    case PredicateType::kIn: {
      const auto& vals = p.in_values;  // sorted
      for (size_t i = 0; i < n; ++i) {
        if (std::binary_search(vals.begin(), vals.end(), col[i])) {
          sel[k++] = static_cast<uint32_t>(i);
        }
      }
      break;
    }
  }
  return k;
}

size_t FilterNext(const int64_t* col, const Predicate& p, uint32_t* sel,
                  size_t k) {
  size_t out = 0;
  switch (p.type) {
    case PredicateType::kEquality: {
      const int64_t v = p.value;
      for (size_t j = 0; j < k; ++j) {
        if (col[sel[j]] == v) sel[out++] = sel[j];
      }
      break;
    }
    case PredicateType::kRange: {
      const int64_t lo = p.lo, hi = p.hi;
      for (size_t j = 0; j < k; ++j) {
        const int64_t v = col[sel[j]];
        if (v >= lo && v <= hi) sel[out++] = sel[j];
      }
      break;
    }
    case PredicateType::kIn: {
      const auto& vals = p.in_values;
      for (size_t j = 0; j < k; ++j) {
        if (std::binary_search(vals.begin(), vals.end(), col[sel[j]])) {
          sel[out++] = sel[j];
        }
      }
      break;
    }
  }
  return out;
}

size_t FilterBatch(const ResolvedQuery& rq, const ColumnBatch& batch,
                   size_t n, uint32_t* sel) {
  if (rq.preds.empty()) return n;
  size_t k = FilterFirst(batch.cols[rq.pred_col[0]], n, *rq.preds[0], sel);
  for (size_t j = 1; j < rq.preds.size() && k > 0; ++j) {
    k = FilterNext(batch.cols[rq.pred_col[j]], *rq.preds[j], sel, k);
  }
  return k;
}

void AccumulateBatch(const ColumnBatch& batch, const ResolvedQuery& rq,
                     const uint32_t* sel, size_t k, bool all_rows,
                     PartialAgg* pa) {
  pa->rows += k;
  for (size_t j = 0; j < rq.aggs.size(); ++j) {
    const int64_t* a = batch.cols[static_cast<size_t>(rq.aggs[j].col_a)];
    double s = pa->acc[j];
    if (rq.aggs[j].col_b >= 0) {
      const int64_t* b = batch.cols[static_cast<size_t>(rq.aggs[j].col_b)];
      if (all_rows) {
        for (size_t i = 0; i < k; ++i) {
          s += static_cast<double>(a[i]) * static_cast<double>(b[i]);
        }
      } else {
        for (size_t i = 0; i < k; ++i) {
          s += static_cast<double>(a[sel[i]]) * static_cast<double>(b[sel[i]]);
        }
      }
    } else {
      if (all_rows) {
        for (size_t i = 0; i < k; ++i) s += static_cast<double>(a[i]);
      } else {
        for (size_t i = 0; i < k; ++i) s += static_cast<double>(a[sel[i]]);
      }
    }
    pa->acc[j] = s;
  }
}

void AggregateRangePartition(const ResolvedQuery& rq,
                             const MaterializedObject& obj, RowRange part,
                             size_t batch_rows, PartialAgg* pa) {
  TRACE_SPAN("exec.partition",
             {{"rows", static_cast<int64_t>(part.Size())}});
  pa->acc.assign(rq.aggs.size(), 0.0);
  BatchScratch scratch;
  std::vector<uint32_t> sel(
      std::min<uint64_t>(batch_rows, part.Size()));
  ColumnBatch batch;
  for (uint64_t b = part.begin; b < part.end; b += batch_rows) {
    const RowId begin = static_cast<RowId>(b);
    const RowId end =
        static_cast<RowId>(std::min<uint64_t>(part.end, b + batch_rows));
    if (rq.all_stored) {
      obj.table->ScanBatch(RowRange{begin, end}, rq.stored_cols, &batch);
    } else {
      ScanBatch(obj, RowRange{begin, end}, rq.cols, &scratch, &batch);
    }
    const size_t n = end - begin;
    const bool all_rows = rq.preds.empty();
    const size_t k = FilterBatch(rq, batch, n, sel.data());
    if (k == 0) continue;
    AccumulateBatch(batch, rq, sel.data(), k, all_rows, pa);
  }
}

void AggregateRidPartition(const ResolvedQuery& rq,
                           const MaterializedObject& obj, const RowId* rids,
                           size_t count, size_t batch_rows, PartialAgg* pa) {
  TRACE_SPAN("exec.partition", {{"rows", static_cast<int64_t>(count)}});
  pa->acc.assign(rq.aggs.size(), 0.0);
  BatchScratch scratch;
  std::vector<uint32_t> sel(std::min(batch_rows, count));
  ColumnBatch batch;
  for (size_t b = 0; b < count; b += batch_rows) {
    const size_t n = std::min(batch_rows, count - b);
    GatherBatch(obj, rids + b, n, rq.cols, &scratch, &batch);
    const bool all_rows = rq.preds.empty();
    const size_t k = FilterBatch(rq, batch, n, sel.data());
    if (k == 0) continue;
    AccumulateBatch(batch, rq, sel.data(), k, all_rows, pa);
  }
}

}  // namespace coradd::exec
