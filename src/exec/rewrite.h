// CM-based query rewriting (A-1.3): the deployment mechanism the paper used
// against an unmodified commercial DBMS. Given a query with a predicate on
// a CM's key attribute, look up the co-occurring clustered values and add a
// `clustered_attr IN {...}` (or range) predicate, steering the engine's
// ordinary clustered-index machinery to the correlated regions:
//
//   WHERE commitdate = 19950101
//     ->  WHERE commitdate = 19950101
//         AND orderdate IN {19941229, 19941230, 19941231}
//
// The rewrite is semantically transparent: the added predicate is implied
// by the CM construction (it covers every co-occurring clustered value), so
// the rewritten query returns exactly the original rows.
#pragma once

#include <string>

#include "exec/materialize.h"
#include "workload/query.h"

namespace coradd {

/// Result of a rewrite attempt.
struct RewriteResult {
  /// Whether any CM applied (otherwise `query` is the input, unchanged).
  bool rewritten = false;
  /// The (possibly) rewritten query.
  Query query;
  /// Number of predicates added (one per applied CM).
  int added_predicates = 0;
  /// Total clustered values enumerated across added IN-lists.
  size_t enumerated_values = 0;
};

/// Rewrites `q` using the correlation maps of `obj`: for each CM whose key
/// columns are predicated in `q` and whose leading clustered attribute is
/// not already predicated, adds an IN predicate on that attribute listing
/// the CM's co-occurring (bucket-expanded) values. CMs whose expansion
/// would exceed `max_in_values` are skipped (the paper keeps IN-lists
/// short; a huge list means the correlation is not useful).
RewriteResult RewriteWithCms(const Query& q, const MaterializedObject& obj,
                             size_t max_in_values = 4096);

}  // namespace coradd
