#include "exec/materialize.h"

#include <algorithm>

#include "common/string_util.h"

namespace coradd {

namespace {
/// Name of the hidden provenance column (declared width 0: it models row
/// identity, not stored payload, so it must not affect size accounting).
constexpr const char* kProvenanceColumn = "__fact_row";
}  // namespace

ResolvedColumn ResolveColumn(const MaterializedObject& obj,
                             const std::string& name) {
  ResolvedColumn c;
  c.table_col = obj.table->table().schema().ColumnIndex(name);
  c.ucol = obj.universe->ColumnIndex(name);
  CORADD_CHECK(c.ucol >= 0);
  return c;
}

void ScanBatch(const MaterializedObject& obj, RowRange range,
               const std::vector<ResolvedColumn>& cols, BatchScratch* scratch,
               ColumnBatch* out) {
  out->begin = range.begin;
  out->num_rows = static_cast<uint32_t>(range.Size());
  out->cols.resize(cols.size());
  for (size_t c = 0; c < cols.size(); ++c) {
    if (cols[c].table_col >= 0) {
      out->cols[c] = obj.table->ColumnSlice(cols[c].table_col, range.begin);
      continue;
    }
    int64_t* buf = scratch->Buffer(c, range.Size());
    for (RowId r = range.begin; r < range.end; ++r) {
      buf[r - range.begin] = obj.universe->Value(obj.fact_row_of[r],
                                                 cols[c].ucol);
    }
    out->cols[c] = buf;
  }
}

void GatherBatch(const MaterializedObject& obj, const RowId* rids, size_t n,
                 const std::vector<ResolvedColumn>& cols,
                 BatchScratch* scratch, ColumnBatch* out) {
  out->begin = 0;
  out->num_rows = static_cast<uint32_t>(n);
  out->cols.resize(cols.size());
  for (size_t c = 0; c < cols.size(); ++c) {
    int64_t* buf = scratch->Buffer(c, n);
    if (cols[c].table_col >= 0) {
      const int64_t* src = obj.table->ColumnSlice(cols[c].table_col, 0);
      for (size_t i = 0; i < n; ++i) buf[i] = src[rids[i]];
    } else {
      for (size_t i = 0; i < n; ++i) {
        buf[i] = obj.universe->Value(obj.fact_row_of[rids[i]], cols[c].ucol);
      }
    }
    out->cols[c] = buf;
  }
}

Materializer::Materializer(const Universe* universe, DiskParams disk)
    : universe_(universe), disk_(disk) {
  CORADD_CHECK(universe != nullptr);
}

std::unique_ptr<MaterializedObject> Materializer::Materialize(
    const MvSpec& spec, const std::vector<CmSpec>& cm_specs,
    const std::vector<std::string>& btree_columns) const {
  auto obj = std::make_unique<MaterializedObject>();
  obj->spec = spec;
  obj->universe = universe_;

  // Project the stored columns plus the hidden provenance column.
  std::vector<int> ucols;
  for (const auto& name : spec.columns) {
    const int idx = universe_->ColumnIndex(name);
    CORADD_CHECK(idx >= 0);
    ucols.push_back(idx);
  }
  std::unique_ptr<Table> projected =
      universe_->MaterializeProjection(ucols, spec.name);
  {
    ColumnDef prov;
    prov.name = kProvenanceColumn;
    prov.type = ValueType::kInt;
    prov.byte_size = 0;
    Schema with_prov = projected->schema();
    with_prov.AddColumn(prov);
    auto table2 = std::make_unique<Table>(with_prov, spec.name);
    table2->Reserve(projected->NumRows());
    std::vector<int64_t> row(with_prov.NumColumns());
    for (RowId r = 0; r < projected->NumRows(); ++r) {
      for (size_t c = 0; c + 1 < with_prov.NumColumns(); ++c) {
        row[c] = projected->Value(r, c);
      }
      row.back() = static_cast<int64_t>(r);
      table2->AppendRow(row);
    }
    projected = std::move(table2);
  }

  // Clustered key columns (indices inside the projected table).
  std::vector<int> key_cols;
  for (const auto& key : spec.clustered_key) {
    const int idx = projected->schema().ColumnIndex(key);
    CORADD_CHECK(idx >= 0);
    key_cols.push_back(idx);
  }

  obj->table = std::make_unique<ClusteredTable>(std::move(projected), key_cols,
                                                disk_.page_size_bytes);

  // Provenance after the sort.
  const Table& t = obj->table->table();
  const int prov_col = t.schema().ColumnIndex(kProvenanceColumn);
  CORADD_CHECK(prov_col >= 0);
  obj->fact_row_of.resize(t.NumRows());
  for (RowId r = 0; r < t.NumRows(); ++r) {
    obj->fact_row_of[r] =
        static_cast<RowId>(t.Value(r, static_cast<size_t>(prov_col)));
  }

  // Budget charge.
  if (spec.is_base) {
    obj->size_bytes = 0;
  } else if (spec.is_fact_recluster) {
    uint32_t pk_bytes = 0;
    for (const auto& pk : universe_->fact_info().primary_key) {
      const int idx = universe_->fact_table().schema().ColumnIndex(pk);
      CORADD_CHECK(idx >= 0);
      pk_bytes += universe_->fact_table()
                      .schema()
                      .Column(static_cast<size_t>(idx))
                      .byte_size;
    }
    const BTreeShape pk_shape = ComputeBTreeShape(
        t.NumRows(), pk_bytes + 8, pk_bytes, disk_.page_size_bytes);
    obj->size_bytes = pk_shape.TotalPages() * disk_.page_size_bytes;
  } else {
    obj->size_bytes = obj->table->SizeBytes();
  }

  // Correlation maps.
  for (const auto& cm_spec : cm_specs) {
    std::vector<const std::vector<int64_t>*> key_value_ptrs;
    std::vector<std::vector<int64_t>> owned;  // universe-derived columns
    std::vector<uint32_t> key_bytes;
    owned.reserve(cm_spec.key_columns.size());
    for (const auto& key : cm_spec.key_columns) {
      const int tcol = t.schema().ColumnIndex(key);
      const int ucol = universe_->ColumnIndex(key);
      CORADD_CHECK(ucol >= 0);
      key_bytes.push_back(
          universe_->Column(static_cast<size_t>(ucol)).byte_size);
      if (tcol >= 0) {
        key_value_ptrs.push_back(&t.ColumnData(static_cast<size_t>(tcol)));
      } else {
        std::vector<int64_t> derived(t.NumRows());
        for (RowId r = 0; r < t.NumRows(); ++r) {
          derived[r] = universe_->Value(obj->fact_row_of[r], ucol);
        }
        owned.push_back(std::move(derived));
        key_value_ptrs.push_back(&owned.back());
      }
    }
    auto cm = std::make_unique<CorrelationMap>(cm_spec.key_columns,
                                               key_value_ptrs, key_bytes,
                                               *obj->table, cm_spec.bucketing);
    obj->cm_bytes += cm->SizeBytes();
    obj->cms.push_back(std::move(cm));
    obj->cm_specs.push_back(cm_spec);
  }

  // Dense secondary B+Trees (must be stored columns).
  for (const auto& col : btree_columns) {
    const int tcol = t.schema().ColumnIndex(col);
    CORADD_CHECK(tcol >= 0);
    auto idx = std::make_unique<SecondaryBTreeIndex>(obj->table.get(), tcol);
    obj->btree_bytes += idx->SizeBytes();
    obj->btrees.push_back(std::move(idx));
    obj->btree_columns.push_back(col);
  }
  return obj;
}

}  // namespace coradd
