#include "exec/executor.h"

#include <algorithm>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace coradd {

/// One query resolved against one object: the unique columns each batch must
/// expose, plus predicates and aggregates rewritten as indexes into that
/// column list. Built once per executed plan — the batched kernels below
/// never touch a column name again.
struct QueryExecutor::Resolved {
  std::vector<ResolvedColumn> cols;
  /// When every column is stored in the object (the common MV case),
  /// the table-column indexes, and range scans go straight through
  /// ClusteredTable::ScanBatch with no provenance machinery.
  std::vector<int> stored_cols;
  bool all_stored = false;
  std::vector<const Predicate*> preds;
  std::vector<size_t> pred_col;  ///< preds[j] reads cols[pred_col[j]].
  struct Agg {
    int col_a = -1;
    int col_b = -1;  ///< -1 => SUM(col_a); else SUM(col_a * col_b).
  };
  std::vector<Agg> aggs;
};

namespace {

size_t InternColumn(const MaterializedObject& obj, const std::string& name,
                    std::vector<ResolvedColumn>* cols) {
  const ResolvedColumn rc = ResolveColumn(obj, name);
  for (size_t i = 0; i < cols->size(); ++i) {
    if ((*cols)[i].ucol == rc.ucol) return i;
  }
  cols->push_back(rc);
  return cols->size() - 1;
}

QueryExecutor::Resolved ResolveQuery(const Query& q,
                                     const MaterializedObject& obj) {
  QueryExecutor::Resolved rq;
  for (const auto& p : q.predicates) {
    rq.preds.push_back(&p);
    rq.pred_col.push_back(InternColumn(obj, p.column, &rq.cols));
  }
  for (const auto& a : q.aggregates) {
    QueryExecutor::Resolved::Agg agg;
    agg.col_a = static_cast<int>(InternColumn(obj, a.col_a, &rq.cols));
    if (!a.col_b.empty()) {
      agg.col_b = static_cast<int>(InternColumn(obj, a.col_b, &rq.cols));
    }
    rq.aggs.push_back(agg);
  }
  rq.all_stored = true;
  for (const ResolvedColumn& c : rq.cols) {
    if (c.table_col < 0) {
      rq.all_stored = false;
      rq.stored_cols.clear();
      break;
    }
    rq.stored_cols.push_back(c.table_col);
  }
  return rq;
}

/// Fills `sel` with the batch-local indexes of rows matching `p`; the
/// predicate type is dispatched once per batch, not once per row.
size_t FilterFirst(const int64_t* col, size_t n, const Predicate& p,
                   uint32_t* sel) {
  size_t k = 0;
  switch (p.type) {
    case PredicateType::kEquality: {
      const int64_t v = p.value;
      for (size_t i = 0; i < n; ++i) {
        if (col[i] == v) sel[k++] = static_cast<uint32_t>(i);
      }
      break;
    }
    case PredicateType::kRange: {
      const int64_t lo = p.lo, hi = p.hi;
      for (size_t i = 0; i < n; ++i) {
        if (col[i] >= lo && col[i] <= hi) sel[k++] = static_cast<uint32_t>(i);
      }
      break;
    }
    case PredicateType::kIn: {
      const auto& vals = p.in_values;  // sorted
      for (size_t i = 0; i < n; ++i) {
        if (std::binary_search(vals.begin(), vals.end(), col[i])) {
          sel[k++] = static_cast<uint32_t>(i);
        }
      }
      break;
    }
  }
  return k;
}

/// Compacts `sel` in place to the survivors of `p` — the short circuit:
/// each further predicate only touches rows still selected.
size_t FilterNext(const int64_t* col, const Predicate& p, uint32_t* sel,
                  size_t k) {
  size_t out = 0;
  switch (p.type) {
    case PredicateType::kEquality: {
      const int64_t v = p.value;
      for (size_t j = 0; j < k; ++j) {
        if (col[sel[j]] == v) sel[out++] = sel[j];
      }
      break;
    }
    case PredicateType::kRange: {
      const int64_t lo = p.lo, hi = p.hi;
      for (size_t j = 0; j < k; ++j) {
        const int64_t v = col[sel[j]];
        if (v >= lo && v <= hi) sel[out++] = sel[j];
      }
      break;
    }
    case PredicateType::kIn: {
      const auto& vals = p.in_values;
      for (size_t j = 0; j < k; ++j) {
        if (std::binary_search(vals.begin(), vals.end(), col[sel[j]])) {
          sel[out++] = sel[j];
        }
      }
      break;
    }
  }
  return out;
}

/// Per-partition partial result: one running sum per aggregate, accumulated
/// in row order across batch boundaries (so batch size never regroups the
/// floating-point additions), combined left-to-right at merge time.
struct PartialAgg {
  std::vector<double> acc;
  uint64_t rows = 0;
};

void AccumulateBatch(const ColumnBatch& batch,
                     const QueryExecutor::Resolved& rq, const uint32_t* sel,
                     size_t k, bool all_rows, PartialAgg* pa) {
  pa->rows += k;
  for (size_t j = 0; j < rq.aggs.size(); ++j) {
    const int64_t* a = batch.cols[static_cast<size_t>(rq.aggs[j].col_a)];
    double s = pa->acc[j];
    if (rq.aggs[j].col_b >= 0) {
      const int64_t* b = batch.cols[static_cast<size_t>(rq.aggs[j].col_b)];
      if (all_rows) {
        for (size_t i = 0; i < k; ++i) {
          s += static_cast<double>(a[i]) * static_cast<double>(b[i]);
        }
      } else {
        for (size_t i = 0; i < k; ++i) {
          s += static_cast<double>(a[sel[i]]) * static_cast<double>(b[sel[i]]);
        }
      }
    } else {
      if (all_rows) {
        for (size_t i = 0; i < k; ++i) s += static_cast<double>(a[i]);
      } else {
        for (size_t i = 0; i < k; ++i) s += static_cast<double>(a[sel[i]]);
      }
    }
    pa->acc[j] = s;
  }
}

/// Scans one contiguous partition in batches of `batch_rows`.
void AggregateRangePartition(const QueryExecutor::Resolved& rq,
                             const MaterializedObject& obj, RowRange part,
                             size_t batch_rows, PartialAgg* pa) {
  TRACE_SPAN("exec.partition",
             {{"rows", static_cast<int64_t>(part.Size())}});
  pa->acc.assign(rq.aggs.size(), 0.0);
  BatchScratch scratch;
  std::vector<uint32_t> sel(
      std::min<uint64_t>(batch_rows, part.Size()));
  ColumnBatch batch;
  for (uint64_t b = part.begin; b < part.end; b += batch_rows) {
    const RowId begin = static_cast<RowId>(b);
    const RowId end =
        static_cast<RowId>(std::min<uint64_t>(part.end, b + batch_rows));
    if (rq.all_stored) {
      obj.table->ScanBatch(RowRange{begin, end}, rq.stored_cols, &batch);
    } else {
      ScanBatch(obj, RowRange{begin, end}, rq.cols, &scratch, &batch);
    }
    const size_t n = end - begin;
    size_t k = n;
    const bool all_rows = rq.preds.empty();
    if (!all_rows) {
      k = FilterFirst(batch.cols[rq.pred_col[0]], n, *rq.preds[0],
                      sel.data());
      for (size_t j = 1; j < rq.preds.size() && k > 0; ++j) {
        k = FilterNext(batch.cols[rq.pred_col[j]], *rq.preds[j], sel.data(),
                       k);
      }
    }
    if (k == 0) continue;
    AccumulateBatch(batch, rq, sel.data(), k, all_rows, pa);
  }
}

/// Same over a slice of an explicit row-id list.
void AggregateRidPartition(const QueryExecutor::Resolved& rq,
                           const MaterializedObject& obj, const RowId* rids,
                           size_t count, size_t batch_rows, PartialAgg* pa) {
  TRACE_SPAN("exec.partition", {{"rows", static_cast<int64_t>(count)}});
  pa->acc.assign(rq.aggs.size(), 0.0);
  BatchScratch scratch;
  std::vector<uint32_t> sel(std::min(batch_rows, count));
  ColumnBatch batch;
  for (size_t b = 0; b < count; b += batch_rows) {
    const size_t n = std::min(batch_rows, count - b);
    GatherBatch(obj, rids + b, n, rq.cols, &scratch, &batch);
    size_t k = n;
    const bool all_rows = rq.preds.empty();
    if (!all_rows) {
      k = FilterFirst(batch.cols[rq.pred_col[0]], n, *rq.preds[0],
                      sel.data());
      for (size_t j = 1; j < rq.preds.size() && k > 0; ++j) {
        k = FilterNext(batch.cols[rq.pred_col[j]], *rq.preds[j], sel.data(),
                       k);
      }
    }
    if (k == 0) continue;
    AccumulateBatch(batch, rq, sel.data(), k, all_rows, pa);
  }
}

/// Runs `run_part(p)` for every partition, across `pool` when it pays, and
/// merges partials into `out` in partition order — identical scheduling-
/// independent result at any thread count.
void MergePartitions(size_t num_parts, ThreadPool* pool,
                     const std::function<void(size_t)>& run_part,
                     std::vector<PartialAgg>* partials, QueryRunResult* out) {
  static obs::Counter& partitions =
      *obs::MetricsRegistry::Global().GetCounter("exec.partitions");
  partitions.Add(num_parts);
  if (num_parts > 1 && pool->num_threads() > 1) {
    pool->ParallelFor(num_parts, run_part);
  } else {
    for (size_t p = 0; p < num_parts; ++p) run_part(p);
  }
  for (const PartialAgg& pa : *partials) {
    out->rows_output += pa.rows;
    for (double s : pa.acc) out->aggregate += s;
  }
}

}  // namespace

QueryExecutor::QueryExecutor(const StatsRegistry* registry,
                             const CostModel* planner, ExecOptions options)
    : registry_(registry), planner_(planner), options_(options) {
  CORADD_CHECK(registry != nullptr);
  CORADD_CHECK(planner != nullptr);
  CORADD_CHECK(options_.batch_rows > 0);
  CORADD_CHECK(options_.partition_rows > 0);
}

void QueryExecutor::AggregateRows(const Resolved& rq,
                                  const MaterializedObject& obj,
                                  RowRange range, QueryRunResult* out) const {
  if (range.Empty()) return;
  const uint64_t pr = options_.partition_rows;
  const size_t num_parts =
      static_cast<size_t>((range.Size() + pr - 1) / pr);
  std::vector<PartialAgg> partials(num_parts);
  ThreadPool* pool = options_.pool != nullptr ? options_.pool
                                              : &ThreadPool::Shared();
  MergePartitions(
      num_parts, pool,
      [&](size_t p) {
        const uint64_t begin = range.begin + p * pr;
        const uint64_t end = std::min<uint64_t>(range.end, begin + pr);
        AggregateRangePartition(rq, obj,
                                RowRange{static_cast<RowId>(begin),
                                         static_cast<RowId>(end)},
                                options_.batch_rows, &partials[p]);
      },
      &partials, out);
}

void QueryExecutor::AggregateRids(const Resolved& rq,
                                  const MaterializedObject& obj,
                                  const std::vector<RowId>& rids,
                                  QueryRunResult* out) const {
  if (rids.empty()) return;
  const size_t pr = options_.partition_rows;
  const size_t num_parts = (rids.size() + pr - 1) / pr;
  std::vector<PartialAgg> partials(num_parts);
  ThreadPool* pool = options_.pool != nullptr ? options_.pool
                                              : &ThreadPool::Shared();
  MergePartitions(
      num_parts, pool,
      [&](size_t p) {
        const size_t begin = p * pr;
        const size_t count = std::min(pr, rids.size() - begin);
        AggregateRidPartition(rq, obj, rids.data() + begin, count,
                              options_.batch_rows, &partials[p]);
      },
      &partials, out);
}

QueryRunResult QueryExecutor::RunFullScan(const Query& q,
                                          const MaterializedObject& obj,
                                          DiskModel* disk) const {
  QueryRunResult out;
  out.path = AccessPath::kFullScan;
  const uint64_t pages = obj.table->NumPages();
  disk->Seek();
  disk->SequentialRead(pages);
  out.seeks = 1;
  out.pages_read = pages;
  out.fragments = 1;
  const Resolved rq = ResolveQuery(q, obj);
  AggregateRows(rq, obj,
                RowRange{0, static_cast<RowId>(obj.table->NumRows())}, &out);
  return out;
}

QueryRunResult QueryExecutor::RunClustered(const Query& q,
                                           const MaterializedObject& obj,
                                           DiskModel* disk) const {
  QueryRunResult out;
  out.path = AccessPath::kClusteredScan;
  const auto& key_names = obj.spec.clustered_key;

  // Expand predicate prefixes along the clustered key.
  std::vector<std::vector<int64_t>> prefixes = {{}};
  const Predicate* range_pred = nullptr;
  constexpr size_t kMaxPrefixes = 4096;
  for (const auto& key : key_names) {
    const Predicate* pred = nullptr;
    for (const auto& p : q.predicates) {
      if (p.column == key) {
        pred = &p;
        break;
      }
    }
    if (pred == nullptr) break;
    if (pred->type == PredicateType::kEquality) {
      for (auto& pre : prefixes) pre.push_back(pred->value);
    } else if (pred->type == PredicateType::kIn) {
      if (prefixes.size() * pred->in_values.size() > kMaxPrefixes) break;
      std::vector<std::vector<int64_t>> next;
      next.reserve(prefixes.size() * pred->in_values.size());
      for (const auto& pre : prefixes) {
        for (int64_t v : pred->in_values) {
          auto ext = pre;
          ext.push_back(v);
          next.push_back(std::move(ext));
        }
      }
      prefixes = std::move(next);
    } else {
      range_pred = pred;
      break;
    }
  }

  // Resolve row ranges.
  std::vector<RowRange> ranges;
  for (const auto& pre : prefixes) {
    RowRange r;
    if (range_pred != nullptr) {
      r = obj.table->PrefixThenRange(pre, range_pred->lo, range_pred->hi);
    } else if (!pre.empty()) {
      r = obj.table->EqualRange(pre);
    } else {
      r = RowRange{0, static_cast<RowId>(obj.table->NumRows())};
    }
    if (!r.Empty()) ranges.push_back(r);
  }

  // Pages touched, coalesced into fragments.
  std::vector<uint64_t> pages;
  for (const auto& r : ranges) {
    const uint64_t first = obj.table->PageOfRow(r.begin);
    const uint64_t last = obj.table->PageOfRow(r.end - 1);
    for (uint64_t p = first; p <= last; ++p) pages.push_back(p);
  }
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  const auto runs = CoalescePages(pages, disk->params().prefetch_pages);

  const uint32_t height = obj.table->BTreeHeight();
  for (const auto& run : runs) {
    for (uint32_t h = 0; h < height; ++h) disk->Seek();
    disk->SequentialRead(run.NumPages());
    out.pages_read += run.NumPages();
    out.seeks += height;
  }
  out.fragments = runs.size();
  const Resolved rq = ResolveQuery(q, obj);
  for (const auto& r : ranges) AggregateRows(rq, obj, r, &out);
  return out;
}

QueryRunResult QueryExecutor::RunCm(const Query& q,
                                    const MaterializedObject& obj,
                                    const CorrelationMap& cm,
                                    DiskModel* disk) const {
  QueryRunResult out;
  out.path = AccessPath::kSecondary;

  // Bucket matchers per CM key column from the query's predicates.
  std::vector<std::function<bool(int64_t, int64_t)>> matchers;
  for (const auto& key : cm.key_columns()) {
    const Predicate* pred = nullptr;
    for (const auto& p : q.predicates) {
      if (p.column == key) {
        pred = &p;
        break;
      }
    }
    if (pred == nullptr) {
      matchers.push_back([](int64_t, int64_t) { return true; });
    } else if (pred->type == PredicateType::kEquality) {
      const int64_t v = pred->value;
      matchers.push_back([v](int64_t lo, int64_t hi) { return v >= lo && v <= hi; });
    } else if (pred->type == PredicateType::kRange) {
      const int64_t plo = pred->lo, phi = pred->hi;
      matchers.push_back(
          [plo, phi](int64_t lo, int64_t hi) { return plo <= hi && lo <= phi; });
    } else {
      const std::vector<int64_t>& vals = pred->in_values;  // sorted
      matchers.push_back([&vals](int64_t lo, int64_t hi) {
        auto it = std::lower_bound(vals.begin(), vals.end(), lo);
        return it != vals.end() && *it <= hi;
      });
    }
  }

  // The CM itself is memory-resident (1 MB class, A-1); lookup is free I/O.
  const std::vector<uint32_t> buckets = cm.LookupBuckets(matchers);
  const uint64_t num_pages = obj.table->NumPages();
  std::vector<uint64_t> pages;
  for (uint32_t b : buckets) {
    const PageRun run = cm.BucketPages(b, num_pages);
    for (uint64_t p = run.first_page; p <= run.last_page; ++p) {
      pages.push_back(p);
    }
  }
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  const auto runs = CoalescePages(pages, disk->params().prefetch_pages);

  const uint32_t height = obj.table->BTreeHeight();
  const uint64_t rpp = obj.table->layout().RowsPerPage();
  const Resolved rq = ResolveQuery(q, obj);
  for (const auto& run : runs) {
    for (uint32_t h = 0; h < height; ++h) disk->Seek();
    disk->SequentialRead(run.NumPages());
    out.pages_read += run.NumPages();
    out.seeks += height;
    const RowId row_begin = static_cast<RowId>(run.first_page * rpp);
    const RowId row_end = static_cast<RowId>(std::min<uint64_t>(
        (run.last_page + 1) * rpp, obj.table->NumRows()));
    AggregateRows(rq, obj, RowRange{row_begin, row_end}, &out);
  }
  out.fragments = runs.size();
  return out;
}

QueryRunResult QueryExecutor::RunBTree(const Query& q,
                                       const MaterializedObject& obj,
                                       size_t btree_idx,
                                       DiskModel* disk) const {
  QueryRunResult out;
  out.path = AccessPath::kSecondary;
  const SecondaryBTreeIndex& index = *obj.btrees[btree_idx];
  const std::string& col = obj.btree_columns[btree_idx];

  const Predicate* pred = nullptr;
  for (const auto& p : q.predicates) {
    if (p.column == col) {
      pred = &p;
      break;
    }
  }
  CORADD_CHECK(pred != nullptr);

  std::vector<RowId> rids;
  switch (pred->type) {
    case PredicateType::kEquality:
      rids = index.LookupEqual(pred->value);
      break;
    case PredicateType::kRange:
      rids = index.LookupRange(pred->lo, pred->hi);
      break;
    case PredicateType::kIn:
      rids = index.LookupIn(pred->in_values);
      break;
  }
  std::sort(rids.begin(), rids.end());

  // Index I/O: descend once, then scan the touched fraction of the leaves.
  const uint64_t leaf_pages = std::max<uint64_t>(
      1, index.shape().leaf_pages * rids.size() /
             std::max<size_t>(1, obj.table->NumRows()));
  for (uint32_t h = 0; h < index.Height(); ++h) disk->Seek();
  disk->SequentialRead(leaf_pages);
  out.seeks += index.Height();
  out.pages_read += leaf_pages;

  // Heap I/O: sorted-RID sweep (A-2.1), coalesced page runs.
  std::vector<uint64_t> pages;
  pages.reserve(rids.size());
  for (RowId r : rids) pages.push_back(obj.table->PageOfRow(r));
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  const auto runs = CoalescePages(pages, disk->params().prefetch_pages);
  for (const auto& run : runs) {
    disk->Seek();
    disk->SequentialRead(run.NumPages());
    out.pages_read += run.NumPages();
    ++out.seeks;
  }
  out.fragments = runs.size();

  // Evaluate remaining predicates on exactly the fetched rows.
  const Resolved rq = ResolveQuery(q, obj);
  AggregateRids(rq, obj, rids, &out);
  return out;
}

QueryRunResult QueryExecutor::RunWithCm(const Query& q,
                                        const MaterializedObject& obj,
                                        size_t cm_index,
                                        DiskModel* disk) const {
  CORADD_CHECK(disk != nullptr);
  CORADD_CHECK(cm_index < obj.cms.size());
  const double t0 = disk->elapsed_seconds();
  const uint64_t p0 = disk->pages_read();
  const uint64_t s0 = disk->seeks();
  QueryRunResult out = RunCm(q, obj, *obj.cms[cm_index], disk);
  out.seconds = disk->elapsed_seconds() - t0;
  out.pages_read = disk->pages_read() - p0;
  out.seeks = disk->seeks() - s0;
  return out;
}

QueryRunResult QueryExecutor::Run(const Query& q,
                                  const MaterializedObject& obj,
                                  DiskModel* disk) const {
  CORADD_CHECK(disk != nullptr);
  CORADD_CHECK(MvCanServe(q, obj.spec));
  TRACE_SPAN_NAMED(run_span, "exec.query");
  static obs::Counter& queries_run =
      *obs::MetricsRegistry::Global().GetCounter("exec.queries_run");
  queries_run.Add(1);

  // --- Plan selection among physically available structures.
  enum class Plan { kFull, kClustered, kCm, kBTree };
  Plan plan = Plan::kFull;
  size_t structure = 0;
  double best = MvFullScanSeconds(obj.spec, *registry_->ForFact(obj.spec.fact_table),
                                  disk->params()) +
                disk->params().seek_seconds;

  const ClusteredPrefixPlan prefix = AnalyzeClusteredPrefix(
      q, obj.spec.clustered_key, *registry_->ForFact(obj.spec.fact_table));
  if (prefix.usable()) {
    // Price the clustered path with the planner (both models share it).
    const CostBreakdown c = planner_->Cost(q, obj.spec);
    if (c.feasible() && c.path == AccessPath::kClusteredScan &&
        c.seconds < best) {
      plan = Plan::kClustered;
      best = c.seconds;
    } else if (prefix.usable()) {
      // Even if the planner's overall pick was different, consider the
      // clustered path at its standalone estimate.
      const double sel_pages =
          std::max(prefix.selectivity *
                       static_cast<double>(obj.table->NumPages()),
                   prefix.num_ranges);
      const double est =
          sel_pages * disk->params().PageReadSeconds() +
          prefix.num_ranges * obj.table->BTreeHeight() *
              disk->params().seek_seconds;
      if (est < best) {
        plan = Plan::kClustered;
        best = est;
      }
    }
  }

  // Secondary plans must beat the sequential alternatives by a clear margin
  // — the textbook optimizer bias toward scans, which also absorbs the
  // estimation noise of sample-based fragment prediction.
  constexpr double kSecondaryMargin = 1.25;
  const auto pred_cols = q.PredicateColumns();
  for (size_t i = 0; i < obj.cms.size(); ++i) {
    // A CM helps only if at least one of its key columns is predicated.
    bool useful = false;
    for (const auto& k : obj.cms[i]->key_columns()) {
      if (std::find(pred_cols.begin(), pred_cols.end(), k) !=
          pred_cols.end()) {
        useful = true;
        break;
      }
    }
    if (!useful) continue;
    const CostBreakdown c =
        planner_->SecondaryCost(q, obj.spec, obj.cms[i]->key_columns());
    if (c.feasible() && c.seconds * kSecondaryMargin < best) {
      plan = Plan::kCm;
      structure = i;
      best = c.seconds;
    }
  }
  for (size_t i = 0; i < obj.btrees.size(); ++i) {
    if (std::find(pred_cols.begin(), pred_cols.end(), obj.btree_columns[i]) ==
        pred_cols.end()) {
      continue;
    }
    const CostBreakdown c =
        planner_->SecondaryCost(q, obj.spec, {obj.btree_columns[i]});
    if (c.feasible() && c.seconds * kSecondaryMargin < best) {
      plan = Plan::kBTree;
      structure = i;
      best = c.seconds;
    }
  }

  // --- Execute.
  QueryRunResult out;
  const double t0 = disk->elapsed_seconds();
  const uint64_t p0 = disk->pages_read();
  const uint64_t s0 = disk->seeks();
  switch (plan) {
    case Plan::kFull:
      out = RunFullScan(q, obj, disk);
      break;
    case Plan::kClustered:
      out = RunClustered(q, obj, disk);
      break;
    case Plan::kCm:
      out = RunCm(q, obj, *obj.cms[structure], disk);
      break;
    case Plan::kBTree:
      out = RunBTree(q, obj, structure, disk);
      break;
  }
  out.seconds = disk->elapsed_seconds() - t0;
  out.pages_read = disk->pages_read() - p0;
  out.seeks = disk->seeks() - s0;
  run_span.Arg("plan", static_cast<int64_t>(plan));
  run_span.Arg("pages_read", static_cast<int64_t>(out.pages_read));
  return out;
}

}  // namespace coradd
