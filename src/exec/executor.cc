#include "exec/executor.h"

#include <algorithm>

#include "common/string_util.h"

namespace coradd {

namespace {

/// Resolved accessor for one predicate or aggregate column: the stored
/// table column if the object carries it, else a provenance lookup.
struct ColumnAccessor {
  int table_col = -1;
  int ucol = -1;

  int64_t Get(const MaterializedObject& obj, RowId row) const {
    return obj.ValueOf(row, table_col, ucol);
  }
};

ColumnAccessor Resolve(const MaterializedObject& obj,
                       const std::string& column) {
  ColumnAccessor a;
  a.table_col = obj.table->table().schema().ColumnIndex(column);
  a.ucol = obj.universe->ColumnIndex(column);
  CORADD_CHECK(a.ucol >= 0);
  return a;
}

}  // namespace

QueryExecutor::QueryExecutor(const StatsRegistry* registry,
                             const CostModel* planner)
    : registry_(registry), planner_(planner) {
  CORADD_CHECK(registry != nullptr);
  CORADD_CHECK(planner != nullptr);
}

void QueryExecutor::AggregateRows(const Query& q,
                                  const MaterializedObject& obj,
                                  RowRange range, QueryRunResult* out) const {
  std::vector<std::pair<const Predicate*, ColumnAccessor>> preds;
  preds.reserve(q.predicates.size());
  for (const auto& p : q.predicates) {
    preds.emplace_back(&p, Resolve(obj, p.column));
  }
  std::vector<std::pair<ColumnAccessor, ColumnAccessor>> aggs;
  for (const auto& a : q.aggregates) {
    ColumnAccessor cb;  // invalid => SUM(col_a)
    if (!a.col_b.empty()) cb = Resolve(obj, a.col_b);
    aggs.emplace_back(Resolve(obj, a.col_a), cb);
  }

  for (RowId r = range.begin; r < range.end; ++r) {
    bool ok = true;
    for (const auto& [p, acc] : preds) {
      if (!p->Matches(acc.Get(obj, r))) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    ++out->rows_output;
    for (const auto& [ca, cb] : aggs) {
      const double va = static_cast<double>(ca.Get(obj, r));
      out->aggregate +=
          cb.ucol >= 0 ? va * static_cast<double>(cb.Get(obj, r)) : va;
    }
  }
}

QueryRunResult QueryExecutor::RunFullScan(const Query& q,
                                          const MaterializedObject& obj,
                                          DiskModel* disk) const {
  QueryRunResult out;
  out.path = AccessPath::kFullScan;
  const uint64_t pages = obj.table->NumPages();
  disk->Seek();
  disk->SequentialRead(pages);
  out.seeks = 1;
  out.pages_read = pages;
  out.fragments = 1;
  AggregateRows(q, obj, RowRange{0, static_cast<RowId>(obj.table->NumRows())},
                &out);
  return out;
}

QueryRunResult QueryExecutor::RunClustered(const Query& q,
                                           const MaterializedObject& obj,
                                           DiskModel* disk) const {
  QueryRunResult out;
  out.path = AccessPath::kClusteredScan;
  const auto& key_names = obj.spec.clustered_key;

  // Expand predicate prefixes along the clustered key.
  std::vector<std::vector<int64_t>> prefixes = {{}};
  const Predicate* range_pred = nullptr;
  constexpr size_t kMaxPrefixes = 4096;
  for (const auto& key : key_names) {
    const Predicate* pred = nullptr;
    for (const auto& p : q.predicates) {
      if (p.column == key) {
        pred = &p;
        break;
      }
    }
    if (pred == nullptr) break;
    if (pred->type == PredicateType::kEquality) {
      for (auto& pre : prefixes) pre.push_back(pred->value);
    } else if (pred->type == PredicateType::kIn) {
      if (prefixes.size() * pred->in_values.size() > kMaxPrefixes) break;
      std::vector<std::vector<int64_t>> next;
      next.reserve(prefixes.size() * pred->in_values.size());
      for (const auto& pre : prefixes) {
        for (int64_t v : pred->in_values) {
          auto ext = pre;
          ext.push_back(v);
          next.push_back(std::move(ext));
        }
      }
      prefixes = std::move(next);
    } else {
      range_pred = pred;
      break;
    }
  }

  // Resolve row ranges.
  std::vector<RowRange> ranges;
  for (const auto& pre : prefixes) {
    RowRange r;
    if (range_pred != nullptr) {
      r = obj.table->PrefixThenRange(pre, range_pred->lo, range_pred->hi);
    } else if (!pre.empty()) {
      r = obj.table->EqualRange(pre);
    } else {
      r = RowRange{0, static_cast<RowId>(obj.table->NumRows())};
    }
    if (!r.Empty()) ranges.push_back(r);
  }

  // Pages touched, coalesced into fragments.
  std::vector<uint64_t> pages;
  for (const auto& r : ranges) {
    const uint64_t first = obj.table->PageOfRow(r.begin);
    const uint64_t last = obj.table->PageOfRow(r.end - 1);
    for (uint64_t p = first; p <= last; ++p) pages.push_back(p);
  }
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  const auto runs = CoalescePages(pages, disk->params().prefetch_pages);

  const uint32_t height = obj.table->BTreeHeight();
  for (const auto& run : runs) {
    for (uint32_t h = 0; h < height; ++h) disk->Seek();
    disk->SequentialRead(run.NumPages());
    out.pages_read += run.NumPages();
    out.seeks += height;
  }
  out.fragments = runs.size();
  for (const auto& r : ranges) AggregateRows(q, obj, r, &out);
  return out;
}

QueryRunResult QueryExecutor::RunCm(const Query& q,
                                    const MaterializedObject& obj,
                                    const CorrelationMap& cm,
                                    DiskModel* disk) const {
  QueryRunResult out;
  out.path = AccessPath::kSecondary;

  // Bucket matchers per CM key column from the query's predicates.
  std::vector<std::function<bool(int64_t, int64_t)>> matchers;
  for (const auto& key : cm.key_columns()) {
    const Predicate* pred = nullptr;
    for (const auto& p : q.predicates) {
      if (p.column == key) {
        pred = &p;
        break;
      }
    }
    if (pred == nullptr) {
      matchers.push_back([](int64_t, int64_t) { return true; });
    } else if (pred->type == PredicateType::kEquality) {
      const int64_t v = pred->value;
      matchers.push_back([v](int64_t lo, int64_t hi) { return v >= lo && v <= hi; });
    } else if (pred->type == PredicateType::kRange) {
      const int64_t plo = pred->lo, phi = pred->hi;
      matchers.push_back(
          [plo, phi](int64_t lo, int64_t hi) { return plo <= hi && lo <= phi; });
    } else {
      const std::vector<int64_t>& vals = pred->in_values;  // sorted
      matchers.push_back([&vals](int64_t lo, int64_t hi) {
        auto it = std::lower_bound(vals.begin(), vals.end(), lo);
        return it != vals.end() && *it <= hi;
      });
    }
  }

  // The CM itself is memory-resident (1 MB class, A-1); lookup is free I/O.
  const std::vector<uint32_t> buckets = cm.LookupBuckets(matchers);
  const uint64_t num_pages = obj.table->NumPages();
  std::vector<uint64_t> pages;
  for (uint32_t b : buckets) {
    const PageRun run = cm.BucketPages(b, num_pages);
    for (uint64_t p = run.first_page; p <= run.last_page; ++p) {
      pages.push_back(p);
    }
  }
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  const auto runs = CoalescePages(pages, disk->params().prefetch_pages);

  const uint32_t height = obj.table->BTreeHeight();
  const uint64_t rpp = obj.table->layout().RowsPerPage();
  for (const auto& run : runs) {
    for (uint32_t h = 0; h < height; ++h) disk->Seek();
    disk->SequentialRead(run.NumPages());
    out.pages_read += run.NumPages();
    out.seeks += height;
    const RowId row_begin = static_cast<RowId>(run.first_page * rpp);
    const RowId row_end = static_cast<RowId>(std::min<uint64_t>(
        (run.last_page + 1) * rpp, obj.table->NumRows()));
    AggregateRows(q, obj, RowRange{row_begin, row_end}, &out);
  }
  out.fragments = runs.size();
  return out;
}

QueryRunResult QueryExecutor::RunBTree(const Query& q,
                                       const MaterializedObject& obj,
                                       size_t btree_idx,
                                       DiskModel* disk) const {
  QueryRunResult out;
  out.path = AccessPath::kSecondary;
  const SecondaryBTreeIndex& index = *obj.btrees[btree_idx];
  const std::string& col = obj.btree_columns[btree_idx];

  const Predicate* pred = nullptr;
  for (const auto& p : q.predicates) {
    if (p.column == col) {
      pred = &p;
      break;
    }
  }
  CORADD_CHECK(pred != nullptr);

  std::vector<RowId> rids;
  switch (pred->type) {
    case PredicateType::kEquality:
      rids = index.LookupEqual(pred->value);
      break;
    case PredicateType::kRange:
      rids = index.LookupRange(pred->lo, pred->hi);
      break;
    case PredicateType::kIn:
      rids = index.LookupIn(pred->in_values);
      break;
  }
  std::sort(rids.begin(), rids.end());

  // Index I/O: descend once, then scan the touched fraction of the leaves.
  const uint64_t leaf_pages = std::max<uint64_t>(
      1, index.shape().leaf_pages * rids.size() /
             std::max<size_t>(1, obj.table->NumRows()));
  for (uint32_t h = 0; h < index.Height(); ++h) disk->Seek();
  disk->SequentialRead(leaf_pages);
  out.seeks += index.Height();
  out.pages_read += leaf_pages;

  // Heap I/O: sorted-RID sweep (A-2.1), coalesced page runs.
  std::vector<uint64_t> pages;
  pages.reserve(rids.size());
  for (RowId r : rids) pages.push_back(obj.table->PageOfRow(r));
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  const auto runs = CoalescePages(pages, disk->params().prefetch_pages);
  const uint32_t height = obj.table->BTreeHeight();
  for (const auto& run : runs) {
    disk->Seek();
    disk->SequentialRead(run.NumPages());
    out.pages_read += run.NumPages();
    ++out.seeks;
    (void)height;
  }
  out.fragments = runs.size();

  // Evaluate remaining predicates on exactly the fetched rows.
  std::vector<std::pair<const Predicate*, ColumnAccessor>> preds;
  for (const auto& p : q.predicates) {
    preds.emplace_back(&p, Resolve(obj, p.column));
  }
  std::vector<std::pair<ColumnAccessor, ColumnAccessor>> aggs;
  for (const auto& a : q.aggregates) {
    ColumnAccessor cb;
    if (!a.col_b.empty()) cb = Resolve(obj, a.col_b);
    aggs.emplace_back(Resolve(obj, a.col_a), cb);
  }
  for (RowId r : rids) {
    bool ok = true;
    for (const auto& [p, acc] : preds) {
      if (!p->Matches(acc.Get(obj, r))) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    ++out.rows_output;
    for (const auto& [ca, cb] : aggs) {
      const double va = static_cast<double>(ca.Get(obj, r));
      out.aggregate +=
          cb.ucol >= 0 ? va * static_cast<double>(cb.Get(obj, r)) : va;
    }
  }
  return out;
}

QueryRunResult QueryExecutor::RunWithCm(const Query& q,
                                        const MaterializedObject& obj,
                                        size_t cm_index,
                                        DiskModel* disk) const {
  CORADD_CHECK(disk != nullptr);
  CORADD_CHECK(cm_index < obj.cms.size());
  const double t0 = disk->elapsed_seconds();
  const uint64_t p0 = disk->pages_read();
  const uint64_t s0 = disk->seeks();
  QueryRunResult out = RunCm(q, obj, *obj.cms[cm_index], disk);
  out.seconds = disk->elapsed_seconds() - t0;
  out.pages_read = disk->pages_read() - p0;
  out.seeks = disk->seeks() - s0;
  return out;
}

QueryRunResult QueryExecutor::Run(const Query& q,
                                  const MaterializedObject& obj,
                                  DiskModel* disk) const {
  CORADD_CHECK(disk != nullptr);
  CORADD_CHECK(MvCanServe(q, obj.spec));

  // --- Plan selection among physically available structures.
  enum class Plan { kFull, kClustered, kCm, kBTree };
  Plan plan = Plan::kFull;
  size_t structure = 0;
  double best = MvFullScanSeconds(obj.spec, *registry_->ForFact(obj.spec.fact_table),
                                  disk->params()) +
                disk->params().seek_seconds;

  const ClusteredPrefixPlan prefix = AnalyzeClusteredPrefix(
      q, obj.spec.clustered_key, *registry_->ForFact(obj.spec.fact_table));
  if (prefix.usable()) {
    // Price the clustered path with the planner (both models share it).
    const CostBreakdown c = planner_->Cost(q, obj.spec);
    if (c.feasible() && c.path == AccessPath::kClusteredScan &&
        c.seconds < best) {
      plan = Plan::kClustered;
      best = c.seconds;
    } else if (prefix.usable()) {
      // Even if the planner's overall pick was different, consider the
      // clustered path at its standalone estimate.
      const double sel_pages =
          std::max(prefix.selectivity *
                       static_cast<double>(obj.table->NumPages()),
                   prefix.num_ranges);
      const double est =
          sel_pages * disk->params().PageReadSeconds() +
          prefix.num_ranges * obj.table->BTreeHeight() *
              disk->params().seek_seconds;
      if (est < best) {
        plan = Plan::kClustered;
        best = est;
      }
    }
  }

  // Secondary plans must beat the sequential alternatives by a clear margin
  // — the textbook optimizer bias toward scans, which also absorbs the
  // estimation noise of sample-based fragment prediction.
  constexpr double kSecondaryMargin = 1.25;
  const auto pred_cols = q.PredicateColumns();
  for (size_t i = 0; i < obj.cms.size(); ++i) {
    // A CM helps only if at least one of its key columns is predicated.
    bool useful = false;
    for (const auto& k : obj.cms[i]->key_columns()) {
      if (std::find(pred_cols.begin(), pred_cols.end(), k) !=
          pred_cols.end()) {
        useful = true;
        break;
      }
    }
    if (!useful) continue;
    const CostBreakdown c =
        planner_->SecondaryCost(q, obj.spec, obj.cms[i]->key_columns());
    if (c.feasible() && c.seconds * kSecondaryMargin < best) {
      plan = Plan::kCm;
      structure = i;
      best = c.seconds;
    }
  }
  for (size_t i = 0; i < obj.btrees.size(); ++i) {
    if (std::find(pred_cols.begin(), pred_cols.end(), obj.btree_columns[i]) ==
        pred_cols.end()) {
      continue;
    }
    const CostBreakdown c =
        planner_->SecondaryCost(q, obj.spec, {obj.btree_columns[i]});
    if (c.feasible() && c.seconds * kSecondaryMargin < best) {
      plan = Plan::kBTree;
      structure = i;
      best = c.seconds;
    }
  }

  // --- Execute.
  QueryRunResult out;
  const double t0 = disk->elapsed_seconds();
  const uint64_t p0 = disk->pages_read();
  const uint64_t s0 = disk->seeks();
  switch (plan) {
    case Plan::kFull:
      out = RunFullScan(q, obj, disk);
      break;
    case Plan::kClustered:
      out = RunClustered(q, obj, disk);
      break;
    case Plan::kCm:
      out = RunCm(q, obj, *obj.cms[structure], disk);
      break;
    case Plan::kBTree:
      out = RunBTree(q, obj, structure, disk);
      break;
  }
  out.seconds = disk->elapsed_seconds() - t0;
  out.pages_read = disk->pages_read() - p0;
  out.seeks = disk->seeks() - s0;
  return out;
}

}  // namespace coradd
