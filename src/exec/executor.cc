#include "exec/executor.h"

#include <algorithm>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace coradd {

using exec::PartialAgg;
using exec::ResolvedQuery;

namespace {

/// Runs `run_part(p)` for every partition, across `pool` when it pays, and
/// merges partials into `out` in partition order — identical scheduling-
/// independent result at any thread count.
void MergePartitions(size_t num_parts, ThreadPool* pool,
                     const std::function<void(size_t)>& run_part,
                     std::vector<PartialAgg>* partials, QueryRunResult* out) {
  static obs::Counter& partitions =
      *obs::MetricsRegistry::Global().GetCounter("exec.partitions");
  partitions.Add(num_parts);
  if (num_parts > 1 && pool->num_threads() > 1) {
    pool->ParallelFor(num_parts, run_part);
  } else {
    for (size_t p = 0; p < num_parts; ++p) run_part(p);
  }
  for (const PartialAgg& pa : *partials) {
    out->rows_output += pa.rows;
    for (double s : pa.acc) out->aggregate += s;
  }
}

}  // namespace

QueryExecutor::QueryExecutor(const StatsRegistry* registry,
                             const CostModel* planner, ExecOptions options)
    : registry_(registry), planner_(planner), options_(options) {
  CORADD_CHECK(registry != nullptr);
  CORADD_CHECK(planner != nullptr);
  CORADD_CHECK(options_.batch_rows > 0);
  CORADD_CHECK(options_.partition_rows > 0);
}

void QueryExecutor::AggregateRows(const ResolvedQuery& rq,
                                  const MaterializedObject& obj,
                                  RowRange range, QueryRunResult* out) const {
  if (range.Empty()) return;
  const uint64_t pr = options_.partition_rows;
  const size_t num_parts =
      static_cast<size_t>((range.Size() + pr - 1) / pr);
  std::vector<PartialAgg> partials(num_parts);
  ThreadPool* pool = options_.pool != nullptr ? options_.pool
                                              : &ThreadPool::Shared();
  MergePartitions(
      num_parts, pool,
      [&](size_t p) {
        const uint64_t begin = range.begin + p * pr;
        const uint64_t end = std::min<uint64_t>(range.end, begin + pr);
        exec::AggregateRangePartition(rq, obj,
                                      RowRange{static_cast<RowId>(begin),
                                               static_cast<RowId>(end)},
                                      options_.batch_rows, &partials[p]);
      },
      &partials, out);
}

void QueryExecutor::AggregateRids(const ResolvedQuery& rq,
                                  const MaterializedObject& obj,
                                  const std::vector<RowId>& rids,
                                  QueryRunResult* out) const {
  if (rids.empty()) return;
  const size_t pr = options_.partition_rows;
  const size_t num_parts = (rids.size() + pr - 1) / pr;
  std::vector<PartialAgg> partials(num_parts);
  ThreadPool* pool = options_.pool != nullptr ? options_.pool
                                              : &ThreadPool::Shared();
  MergePartitions(
      num_parts, pool,
      [&](size_t p) {
        const size_t begin = p * pr;
        const size_t count = std::min(pr, rids.size() - begin);
        exec::AggregateRidPartition(rq, obj, rids.data() + begin, count,
                                    options_.batch_rows, &partials[p]);
      },
      &partials, out);
}

void QueryExecutor::BuildClusteredPlan(const Query& q,
                                       const MaterializedObject& obj,
                                       const DiskParams& params,
                                       ScanPlan* plan) const {
  plan->kind = ScanPlan::Kind::kClustered;
  plan->path = AccessPath::kClusteredScan;
  const auto& key_names = obj.spec.clustered_key;

  // Expand predicate prefixes along the clustered key.
  std::vector<std::vector<int64_t>> prefixes = {{}};
  const Predicate* range_pred = nullptr;
  constexpr size_t kMaxPrefixes = 4096;
  for (const auto& key : key_names) {
    const Predicate* pred = nullptr;
    for (const auto& p : q.predicates) {
      if (p.column == key) {
        pred = &p;
        break;
      }
    }
    if (pred == nullptr) break;
    if (pred->type == PredicateType::kEquality) {
      for (auto& pre : prefixes) pre.push_back(pred->value);
    } else if (pred->type == PredicateType::kIn) {
      if (prefixes.size() * pred->in_values.size() > kMaxPrefixes) break;
      std::vector<std::vector<int64_t>> next;
      next.reserve(prefixes.size() * pred->in_values.size());
      for (const auto& pre : prefixes) {
        for (int64_t v : pred->in_values) {
          auto ext = pre;
          ext.push_back(v);
          next.push_back(std::move(ext));
        }
      }
      prefixes = std::move(next);
    } else {
      range_pred = pred;
      break;
    }
  }

  // Resolve row ranges.
  for (const auto& pre : prefixes) {
    RowRange r;
    if (range_pred != nullptr) {
      r = obj.table->PrefixThenRange(pre, range_pred->lo, range_pred->hi);
    } else if (!pre.empty()) {
      r = obj.table->EqualRange(pre);
    } else {
      r = RowRange{0, static_cast<RowId>(obj.table->NumRows())};
    }
    if (!r.Empty()) plan->ranges.push_back(r);
  }

  // Pages touched, coalesced into fragments.
  std::vector<uint64_t> pages;
  for (const auto& r : plan->ranges) {
    const PageRun run = obj.table->PagesOfRange(r);
    for (uint64_t p = run.first_page; p <= run.last_page; ++p) {
      pages.push_back(p);
    }
  }
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  plan->io_runs = CoalescePages(pages, params.prefetch_pages);
  plan->seeks_per_run = obj.table->BTreeHeight();
}

void QueryExecutor::BuildCmPlan(const Query& q, const MaterializedObject& obj,
                                const CorrelationMap& cm,
                                const DiskParams& params,
                                ScanPlan* plan) const {
  plan->kind = ScanPlan::Kind::kCm;
  plan->path = AccessPath::kSecondary;

  // Bucket matchers per CM key column from the query's predicates.
  std::vector<std::function<bool(int64_t, int64_t)>> matchers;
  for (const auto& key : cm.key_columns()) {
    const Predicate* pred = nullptr;
    for (const auto& p : q.predicates) {
      if (p.column == key) {
        pred = &p;
        break;
      }
    }
    if (pred == nullptr) {
      matchers.push_back([](int64_t, int64_t) { return true; });
    } else if (pred->type == PredicateType::kEquality) {
      const int64_t v = pred->value;
      matchers.push_back(
          [v](int64_t lo, int64_t hi) { return v >= lo && v <= hi; });
    } else if (pred->type == PredicateType::kRange) {
      const int64_t plo = pred->lo, phi = pred->hi;
      matchers.push_back(
          [plo, phi](int64_t lo, int64_t hi) { return plo <= hi && lo <= phi; });
    } else {
      const std::vector<int64_t>& vals = pred->in_values;  // sorted
      matchers.push_back([&vals](int64_t lo, int64_t hi) {
        auto it = std::lower_bound(vals.begin(), vals.end(), lo);
        return it != vals.end() && *it <= hi;
      });
    }
  }

  // The CM itself is memory-resident (1 MB class, A-1); lookup is free I/O.
  const std::vector<uint32_t> buckets = cm.LookupBuckets(matchers);
  const uint64_t num_pages = obj.table->NumPages();
  std::vector<uint64_t> pages;
  for (uint32_t b : buckets) {
    const PageRun run = cm.BucketPages(b, num_pages);
    for (uint64_t p = run.first_page; p <= run.last_page; ++p) {
      pages.push_back(p);
    }
  }
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  plan->io_runs = CoalescePages(pages, params.prefetch_pages);
  plan->seeks_per_run = obj.table->BTreeHeight();

  // One aggregation range per coalesced run, in run order.
  const uint64_t rpp = obj.table->layout().RowsPerPage();
  for (const auto& run : plan->io_runs) {
    const RowId row_begin = static_cast<RowId>(run.first_page * rpp);
    const RowId row_end = static_cast<RowId>(std::min<uint64_t>(
        (run.last_page + 1) * rpp, obj.table->NumRows()));
    plan->ranges.push_back(RowRange{row_begin, row_end});
  }
}

void QueryExecutor::BuildBTreePlan(const Query& q,
                                   const MaterializedObject& obj,
                                   size_t btree_idx, const DiskParams& params,
                                   ScanPlan* plan) const {
  plan->kind = ScanPlan::Kind::kBTree;
  plan->path = AccessPath::kSecondary;
  plan->structure = btree_idx;
  const SecondaryBTreeIndex& index = *obj.btrees[btree_idx];
  const std::string& col = obj.btree_columns[btree_idx];

  const Predicate* pred = nullptr;
  for (const auto& p : q.predicates) {
    if (p.column == col) {
      pred = &p;
      break;
    }
  }
  CORADD_CHECK(pred != nullptr);

  switch (pred->type) {
    case PredicateType::kEquality:
      plan->rids = index.LookupEqual(pred->value);
      break;
    case PredicateType::kRange:
      plan->rids = index.LookupRange(pred->lo, pred->hi);
      break;
    case PredicateType::kIn:
      plan->rids = index.LookupIn(pred->in_values);
      break;
  }
  std::sort(plan->rids.begin(), plan->rids.end());

  // Index I/O: descend once, then scan the touched fraction of the leaves.
  plan->index_leaf_pages = std::max<uint64_t>(
      1, index.shape().leaf_pages * plan->rids.size() /
             std::max<size_t>(1, obj.table->NumRows()));
  plan->index_height = index.Height();
  int64_t first_key = 0;
  switch (pred->type) {
    case PredicateType::kEquality:
      first_key = pred->value;
      break;
    case PredicateType::kRange:
      first_key = pred->lo;
      break;
    case PredicateType::kIn:
      first_key = pred->in_values.empty() ? 0 : pred->in_values.front();
      break;
  }
  plan->index_leaf_first = index.LeafPageOfKey(first_key);

  // Heap I/O: sorted-RID sweep (A-2.1), coalesced page runs.
  std::vector<uint64_t> pages;
  pages.reserve(plan->rids.size());
  for (RowId r : plan->rids) pages.push_back(obj.table->PageOfRow(r));
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  plan->io_runs = CoalescePages(pages, params.prefetch_pages);
}

ScanPlan QueryExecutor::SelectPlan(const Query& q,
                                   const MaterializedObject& obj,
                                   const DiskParams& params) const {
  // --- Plan selection among physically available structures.
  ScanPlan::Kind kind = ScanPlan::Kind::kFullScan;
  size_t structure = 0;
  double best =
      MvFullScanSeconds(obj.spec, *registry_->ForFact(obj.spec.fact_table),
                        params) +
      params.seek_seconds;

  const ClusteredPrefixPlan prefix = AnalyzeClusteredPrefix(
      q, obj.spec.clustered_key, *registry_->ForFact(obj.spec.fact_table));
  if (prefix.usable()) {
    // Price the clustered path with the planner (both models share it).
    const CostBreakdown c = planner_->Cost(q, obj.spec);
    if (c.feasible() && c.path == AccessPath::kClusteredScan &&
        c.seconds < best) {
      kind = ScanPlan::Kind::kClustered;
      best = c.seconds;
    } else if (prefix.usable()) {
      // Even if the planner's overall pick was different, consider the
      // clustered path at its standalone estimate.
      const double sel_pages =
          std::max(prefix.selectivity *
                       static_cast<double>(obj.table->NumPages()),
                   prefix.num_ranges);
      const double est =
          sel_pages * params.PageReadSeconds() +
          prefix.num_ranges * obj.table->BTreeHeight() * params.seek_seconds;
      if (est < best) {
        kind = ScanPlan::Kind::kClustered;
        best = est;
      }
    }
  }

  // Secondary plans must beat the sequential alternatives by a clear margin
  // — the textbook optimizer bias toward scans, which also absorbs the
  // estimation noise of sample-based fragment prediction.
  constexpr double kSecondaryMargin = 1.25;
  const auto pred_cols = q.PredicateColumns();
  for (size_t i = 0; i < obj.cms.size(); ++i) {
    // A CM helps only if at least one of its key columns is predicated.
    bool useful = false;
    for (const auto& k : obj.cms[i]->key_columns()) {
      if (std::find(pred_cols.begin(), pred_cols.end(), k) !=
          pred_cols.end()) {
        useful = true;
        break;
      }
    }
    if (!useful) continue;
    const CostBreakdown c =
        planner_->SecondaryCost(q, obj.spec, obj.cms[i]->key_columns());
    if (c.feasible() && c.seconds * kSecondaryMargin < best) {
      kind = ScanPlan::Kind::kCm;
      structure = i;
      best = c.seconds;
    }
  }
  for (size_t i = 0; i < obj.btrees.size(); ++i) {
    if (std::find(pred_cols.begin(), pred_cols.end(), obj.btree_columns[i]) ==
        pred_cols.end()) {
      continue;
    }
    const CostBreakdown c =
        planner_->SecondaryCost(q, obj.spec, {obj.btree_columns[i]});
    if (c.feasible() && c.seconds * kSecondaryMargin < best) {
      kind = ScanPlan::Kind::kBTree;
      structure = i;
      best = c.seconds;
    }
  }

  // --- Resolve the winner to physical work.
  ScanPlan plan;
  switch (kind) {
    case ScanPlan::Kind::kFullScan: {
      plan.kind = ScanPlan::Kind::kFullScan;
      plan.path = AccessPath::kFullScan;
      plan.seeks_per_run = 1;
      const uint64_t pages = obj.table->NumPages();
      if (pages > 0) plan.io_runs.push_back(PageRun{0, pages - 1});
      plan.ranges.push_back(
          RowRange{0, static_cast<RowId>(obj.table->NumRows())});
      break;
    }
    case ScanPlan::Kind::kClustered:
      BuildClusteredPlan(q, obj, params, &plan);
      break;
    case ScanPlan::Kind::kCm:
      plan.structure = structure;
      BuildCmPlan(q, obj, *obj.cms[structure], params, &plan);
      break;
    case ScanPlan::Kind::kBTree:
      BuildBTreePlan(q, obj, structure, params, &plan);
      break;
  }
  return plan;
}

void QueryExecutor::ChargePlanIo(const ScanPlan& plan,
                                 const MaterializedObject& obj,
                                 DiskModel* disk, QueryRunResult* out) {
  switch (plan.kind) {
    case ScanPlan::Kind::kFullScan: {
      const uint64_t pages = obj.table->NumPages();
      disk->Seek();
      disk->SequentialRead(pages);
      out->seeks += 1;
      out->pages_read += pages;
      out->fragments = 1;
      break;
    }
    case ScanPlan::Kind::kClustered:
    case ScanPlan::Kind::kCm: {
      for (const auto& run : plan.io_runs) {
        for (uint32_t h = 0; h < plan.seeks_per_run; ++h) disk->Seek();
        disk->SequentialRead(run.NumPages());
        out->pages_read += run.NumPages();
        out->seeks += plan.seeks_per_run;
      }
      out->fragments = plan.io_runs.size();
      break;
    }
    case ScanPlan::Kind::kBTree: {
      for (uint32_t h = 0; h < plan.index_height; ++h) disk->Seek();
      disk->SequentialRead(plan.index_leaf_pages);
      out->seeks += plan.index_height;
      out->pages_read += plan.index_leaf_pages;
      for (const auto& run : plan.io_runs) {
        disk->Seek();
        disk->SequentialRead(run.NumPages());
        out->pages_read += run.NumPages();
        ++out->seeks;
      }
      out->fragments = plan.io_runs.size();
      break;
    }
  }
}

namespace {

/// Touches pages [first, last] of pool object `object_id` for reading;
/// every maximal run of non-resident pages costs one seek + sequential
/// read on `disk` and counts as one fragment.
void TouchRunPooled(SharedBufferPool* pool, uint32_t object_id, uint64_t first,
                    uint64_t last, DiskModel* disk, QueryRunResult* out) {
  uint64_t miss_run = 0;
  const auto charge = [&] {
    disk->Seek();
    disk->SequentialRead(miss_run);
    out->pages_read += miss_run;
    ++out->seeks;
    ++out->fragments;
    miss_run = 0;
  };
  for (uint64_t p = first; p <= last; ++p) {
    if (pool->Read(PageKey{object_id, p})) {
      ++out->pool_hits;
      if (miss_run > 0) charge();
    } else {
      ++miss_run;
    }
  }
  if (miss_run > 0) charge();
}

}  // namespace

void QueryExecutor::ChargePlanIoPooled(const ScanPlan& plan,
                                       const MaterializedObject& obj,
                                       SharedBufferPool* pool, DiskModel* disk,
                                       QueryRunResult* out) {
  const uint32_t id = obj.pool_object_id;
  CORADD_CHECK(id != 0);
  switch (plan.kind) {
    case ScanPlan::Kind::kFullScan: {
      const uint64_t pages = obj.table->NumPages();
      if (pages > 0) TouchRunPooled(pool, id, 0, pages - 1, disk, out);
      break;
    }
    case ScanPlan::Kind::kClustered:
    case ScanPlan::Kind::kCm: {
      for (const auto& run : plan.io_runs) {
        TouchRunPooled(pool, id, run.first_page, run.last_page, disk, out);
      }
      break;
    }
    case ScanPlan::Kind::kBTree: {
      if (plan.index_leaf_pages > 0) {
        TouchRunPooled(pool, id | kIndexPageObjectFlag, plan.index_leaf_first,
                       plan.index_leaf_first + plan.index_leaf_pages - 1, disk,
                       out);
      }
      for (const auto& run : plan.io_runs) {
        TouchRunPooled(pool, id, run.first_page, run.last_page, disk, out);
      }
      break;
    }
  }
}

QueryRunResult QueryExecutor::RunPlan(const Query& q,
                                      const MaterializedObject& obj,
                                      const ScanPlan& plan,
                                      DiskModel* disk) const {
  CORADD_CHECK(disk != nullptr);
  QueryRunResult out;
  out.path = plan.path;
  const double t0 = disk->elapsed_seconds();
  const uint64_t p0 = disk->pages_read();
  const uint64_t s0 = disk->seeks();
  if (options_.page_pool != nullptr) {
    ChargePlanIoPooled(plan, obj, options_.page_pool, disk, &out);
  } else {
    ChargePlanIo(plan, obj, disk, &out);
  }
  const ResolvedQuery rq = exec::ResolveQuery(q, obj);
  if (plan.range_based()) {
    for (const auto& r : plan.ranges) AggregateRows(rq, obj, r, &out);
  } else {
    AggregateRids(rq, obj, plan.rids, &out);
  }
  out.seconds = disk->elapsed_seconds() - t0;
  out.pages_read = disk->pages_read() - p0;
  out.seeks = disk->seeks() - s0;
  return out;
}

QueryRunResult QueryExecutor::RunWithCm(const Query& q,
                                        const MaterializedObject& obj,
                                        size_t cm_index,
                                        DiskModel* disk) const {
  CORADD_CHECK(disk != nullptr);
  CORADD_CHECK(cm_index < obj.cms.size());
  ScanPlan plan;
  plan.structure = cm_index;
  BuildCmPlan(q, obj, *obj.cms[cm_index], disk->params(), &plan);
  return RunPlan(q, obj, plan, disk);
}

QueryRunResult QueryExecutor::Run(const Query& q,
                                  const MaterializedObject& obj,
                                  DiskModel* disk) const {
  CORADD_CHECK(disk != nullptr);
  CORADD_CHECK(MvCanServe(q, obj.spec));
  TRACE_SPAN_NAMED(run_span, "exec.query");
  static obs::Counter& queries_run =
      *obs::MetricsRegistry::Global().GetCounter("exec.queries_run");
  queries_run.Add(1);

  const ScanPlan plan = SelectPlan(q, obj, disk->params());
  QueryRunResult out = RunPlan(q, obj, plan, disk);
  run_span.Arg("plan", static_cast<int64_t>(plan.kind));
  run_span.Arg("pages_read", static_cast<int64_t>(out.pages_read));
  return out;
}

}  // namespace coradd
