// Turns MvSpecs into physical objects: a sorted heap file + clustered
// B+Tree, optional correlation maps, optional dense secondary B+Trees, and
// the row-provenance mapping back to the fact table (so predicates on
// attributes the object does not store — dimension attributes of a
// re-clustered fact table — can still be evaluated through cached
// dimension lookups, matching the paper's disk-bound fact-access model).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cm/cm_designer.h"
#include "cost/mv_spec.h"
#include "storage/clustered_table.h"
#include "storage/secondary_index.h"

namespace coradd {

/// A physically materialized design object.
struct MaterializedObject {
  MvSpec spec;
  const Universe* universe = nullptr;
  std::unique_ptr<ClusteredTable> table;
  /// table row -> fact row (provenance through the sort).
  std::vector<RowId> fact_row_of;
  /// Correlation maps (CORADD designs).
  std::vector<std::unique_ptr<CorrelationMap>> cms;
  /// The CmSpec each CM was built from (parallel to `cms`).
  std::vector<CmSpec> cm_specs;
  /// Dense secondary B+Trees (commercial-style designs), with the universe
  /// column name each covers.
  std::vector<std::unique_ptr<SecondaryBTreeIndex>> btrees;
  std::vector<std::string> btree_columns;

  /// Budget charge (heap + clustered internals; PK index for re-clusterings;
  /// 0 for base designs), mirroring EstimateMvSizeBytes but measured.
  uint64_t size_bytes = 0;
  /// Actual bytes of all CMs (the paper's separately-budgeted 1MB/CM pool).
  uint64_t cm_bytes = 0;
  /// Actual bytes of dense secondary B+Trees.
  uint64_t btree_bytes = 0;

  /// Identity of this object in a shared buffer pool (PageKey.object_id);
  /// 0 = unassigned (pooled execution aborts). The serving engine assigns
  /// slot + 1, matching the maintenance simulator's 1-based object ids so
  /// writer-epoch dirty pages collide with scan touches of the same object.
  uint32_t pool_object_id = 0;

  /// Value of universe column `ucol` for table row `row` (stored column if
  /// present, otherwise via provenance + dimension lookup).
  int64_t ValueOf(RowId row, int table_col, int ucol) const {
    if (table_col >= 0) {
      return table->table().Value(row, static_cast<size_t>(table_col));
    }
    return universe->Value(fact_row_of[row], ucol);
  }
};

/// A universe column resolved against one object: the stored table column
/// when the object carries it, else the provenance path (ucol only).
struct ResolvedColumn {
  int table_col = -1;
  int ucol = -1;
};

/// Resolves universe column `name` against `obj`. Aborts if the universe
/// does not know the column.
ResolvedColumn ResolveColumn(const MaterializedObject& obj,
                             const std::string& name);

/// Fills `out` with rows [range) of `cols`: stored columns come zero-copy
/// from the clustered heap, provenance-only columns are gathered through
/// fact_row_of into `scratch`. Thread-safe for concurrent callers with
/// distinct scratches.
void ScanBatch(const MaterializedObject& obj, RowRange range,
               const std::vector<ResolvedColumn>& cols, BatchScratch* scratch,
               ColumnBatch* out);

/// Same for an arbitrary row-id list (secondary-index fetches): every
/// column is gathered into `scratch` since rows are non-contiguous.
void GatherBatch(const MaterializedObject& obj, const RowId* rids, size_t n,
                 const std::vector<ResolvedColumn>& cols,
                 BatchScratch* scratch, ColumnBatch* out);

/// Builds MaterializedObjects for one universe.
class Materializer {
 public:
  Materializer(const Universe* universe, DiskParams disk);

  /// Materializes `spec`, building the given CMs and secondary B+Trees.
  /// B+Tree columns must be stored in the object; CM key columns may be any
  /// universe column (built through provenance).
  std::unique_ptr<MaterializedObject> Materialize(
      const MvSpec& spec, const std::vector<CmSpec>& cm_specs = {},
      const std::vector<std::string>& btree_columns = {}) const;

 private:
  const Universe* universe_;
  DiskParams disk_;
};

}  // namespace coradd
