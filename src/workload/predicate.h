// Predicate representation. CORADD's candidate generation orders clustered
// key attributes by predicate type — equality, then range, then IN (§4.2:
// "an equality identifies one range of tuples while an IN clause may point
// to many non-contiguous ranges") — so the type is first-class here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/stats_collector.h"

namespace coradd {

/// Kind of a conjunct; ordering matters for clustered-index design (§4.2).
enum class PredicateType { kEquality = 0, kRange = 1, kIn = 2 };

/// One conjunct over a universe column.
struct Predicate {
  std::string column;
  PredicateType type = PredicateType::kEquality;
  int64_t value = 0;                ///< kEquality.
  int64_t lo = 0, hi = 0;           ///< kRange, inclusive bounds.
  std::vector<int64_t> in_values;   ///< kIn.

  static Predicate Eq(std::string column, int64_t v);
  static Predicate Range(std::string column, int64_t lo, int64_t hi);
  static Predicate In(std::string column, std::vector<int64_t> values);

  /// True iff a stored value satisfies this conjunct.
  bool Matches(int64_t v) const;

  std::string ToString() const;
};

/// Estimated fraction of rows satisfying `pred`, from the column histogram.
double EstimateSelectivity(const Predicate& pred, const UniverseStats& stats);

/// Exact fraction of universe rows satisfying `pred` (full scan; tests).
double ExactSelectivity(const Predicate& pred, const Universe& universe);

}  // namespace coradd
