#include "workload/query.h"

#include <algorithm>

#include "common/string_util.h"

namespace coradd {

namespace {
void PushUnique(std::vector<std::string>* out, const std::string& s) {
  if (std::find(out->begin(), out->end(), s) == out->end()) out->push_back(s);
}
}  // namespace

std::vector<std::string> Query::PredicateColumns() const {
  std::vector<std::string> out;
  for (const auto& p : predicates) PushUnique(&out, p.column);
  return out;
}

std::vector<std::string> Query::TargetColumns() const {
  std::vector<std::string> preds = PredicateColumns();
  std::vector<std::string> out;
  auto add = [&](const std::string& c) {
    if (std::find(preds.begin(), preds.end(), c) == preds.end()) {
      PushUnique(&out, c);
    }
  };
  for (const auto& g : group_by) add(g);
  for (const auto& a : aggregates) {
    add(a.col_a);
    if (!a.col_b.empty()) add(a.col_b);
  }
  return out;
}

std::vector<std::string> Query::AllColumns() const {
  std::vector<std::string> out = PredicateColumns();
  for (const auto& t : TargetColumns()) PushUnique(&out, t);
  return out;
}

std::string Query::ToString() const {
  std::vector<std::string> preds;
  for (const auto& p : predicates) preds.push_back(p.ToString());
  std::vector<std::string> aggs;
  for (const auto& a : aggregates) {
    aggs.push_back(a.col_b.empty()
                       ? StrFormat("SUM(%s)", a.col_a.c_str())
                       : StrFormat("SUM(%s*%s)", a.col_a.c_str(),
                                   a.col_b.c_str()));
  }
  std::string s = StrFormat("%s: SELECT %s FROM %s", id.c_str(),
                            Join(aggs, ", ").c_str(), fact_table.c_str());
  if (!predicates.empty()) s += " WHERE " + Join(preds, " AND ");
  if (!group_by.empty()) s += " GROUP BY " + Join(group_by, ", ");
  return s;
}

std::vector<const Query*> Workload::QueriesForFact(
    const std::string& fact) const {
  std::vector<const Query*> out;
  for (const auto& q : queries) {
    if (q.fact_table == fact) out.push_back(&q);
  }
  return out;
}

std::vector<std::string> Workload::FactTables() const {
  std::vector<std::string> out;
  for (const auto& q : queries) {
    if (std::find(out.begin(), out.end(), q.fact_table) == out.end()) {
      out.push_back(q.fact_table);
    }
  }
  return out;
}

}  // namespace coradd
