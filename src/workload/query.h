// Workload queries: conjunctive star-join aggregates, the query class both
// SSB and APB-1 consist of (SELECT agg(...) FROM fact ⋈ dims WHERE
// conjuncts GROUP BY attrs).
#pragma once

#include <string>
#include <vector>

#include "workload/predicate.h"

namespace coradd {

/// The aggregate computed by a query. Our executor computes
/// SUM(col_a * col_b) (or SUM(col_a) when col_b is empty) over matching
/// rows; grouping is tracked for attribute coverage (the MV must contain the
/// GROUP BY columns) but adds no I/O in the disk-bound model.
struct Aggregate {
  std::string col_a;
  std::string col_b;  ///< Empty for plain SUM(col_a).
};

/// One workload query.
struct Query {
  std::string id;          ///< E.g. "Q1.1".
  std::string fact_table;  ///< Universe this query runs against.
  std::vector<Predicate> predicates;
  std::vector<std::string> group_by;
  std::vector<Aggregate> aggregates;
  /// Relative frequency in the workload (§5.3: cost is multiplied by the
  /// frequency when the workload is compressed).
  double frequency = 1.0;

  /// All universe columns the query references: predicate columns first
  /// (deduplicated, in predicate order), then group-by, then aggregate
  /// inputs. An MV can serve this query iff it contains all of them.
  std::vector<std::string> AllColumns() const;

  /// Columns appearing in predicates (deduplicated, in order).
  std::vector<std::string> PredicateColumns() const;

  /// Target attributes: SELECT list / GROUP BY inputs (§4.1.3), i.e.
  /// AllColumns() minus predicate-only columns.
  std::vector<std::string> TargetColumns() const;

  std::string ToString() const;
};

/// A named list of queries.
struct Workload {
  std::string name;
  std::vector<Query> queries;

  /// Queries touching the given fact table, in workload order.
  std::vector<const Query*> QueriesForFact(const std::string& fact) const;

  /// Distinct fact tables referenced, in first-appearance order.
  std::vector<std::string> FactTables() const;
};

}  // namespace coradd
