#include "workload/predicate.h"

#include <algorithm>

#include "common/string_util.h"

namespace coradd {

Predicate Predicate::Eq(std::string column, int64_t v) {
  Predicate p;
  p.column = std::move(column);
  p.type = PredicateType::kEquality;
  p.value = v;
  return p;
}

Predicate Predicate::Range(std::string column, int64_t lo, int64_t hi) {
  Predicate p;
  p.column = std::move(column);
  p.type = PredicateType::kRange;
  p.lo = lo;
  p.hi = hi;
  return p;
}

Predicate Predicate::In(std::string column, std::vector<int64_t> values) {
  Predicate p;
  p.column = std::move(column);
  p.type = PredicateType::kIn;
  p.in_values = std::move(values);
  std::sort(p.in_values.begin(), p.in_values.end());
  p.in_values.erase(std::unique(p.in_values.begin(), p.in_values.end()),
                    p.in_values.end());
  return p;
}

bool Predicate::Matches(int64_t v) const {
  switch (type) {
    case PredicateType::kEquality:
      return v == value;
    case PredicateType::kRange:
      return v >= lo && v <= hi;
    case PredicateType::kIn:
      return std::binary_search(in_values.begin(), in_values.end(), v);
  }
  return false;
}

std::string Predicate::ToString() const {
  switch (type) {
    case PredicateType::kEquality:
      return StrFormat("%s = %lld", column.c_str(),
                       static_cast<long long>(value));
    case PredicateType::kRange:
      return StrFormat("%lld <= %s <= %lld", static_cast<long long>(lo),
                       column.c_str(), static_cast<long long>(hi));
    case PredicateType::kIn: {
      std::vector<std::string> vals;
      for (int64_t v : in_values) vals.push_back(std::to_string(v));
      return StrFormat("%s IN {%s}", column.c_str(), Join(vals, ",").c_str());
    }
  }
  return "?";
}

double EstimateSelectivity(const Predicate& pred, const UniverseStats& stats) {
  const int ucol = stats.universe().ColumnIndex(pred.column);
  CORADD_CHECK(ucol >= 0);
  const Histogram& h = stats.ColumnHistogram(ucol);
  switch (pred.type) {
    case PredicateType::kEquality:
      return h.SelectivityEqual(pred.value);
    case PredicateType::kRange:
      return h.SelectivityRange(pred.lo, pred.hi);
    case PredicateType::kIn:
      return h.SelectivityIn(pred.in_values);
  }
  return 1.0;
}

double ExactSelectivity(const Predicate& pred, const Universe& universe) {
  const int ucol = universe.ColumnIndex(pred.column);
  CORADD_CHECK(ucol >= 0);
  uint64_t matches = 0;
  const size_t n = universe.NumRows();
  for (RowId r = 0; r < n; ++r) {
    if (pred.Matches(universe.Value(r, ucol))) ++matches;
  }
  return n == 0 ? 0.0 : static_cast<double>(matches) / static_cast<double>(n);
}

}  // namespace coradd
