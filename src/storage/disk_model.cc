#include "storage/disk_model.h"

#include "common/string_util.h"

namespace coradd {

std::string DiskModel::ToString() const {
  return StrFormat(
      "DiskModel{seeks=%llu, pages_read=%llu, pages_written=%llu, elapsed=%s}",
      static_cast<unsigned long long>(seeks_),
      static_cast<unsigned long long>(pages_read_),
      static_cast<unsigned long long>(pages_written_),
      HumanSeconds(elapsed_).c_str());
}

}  // namespace coradd
