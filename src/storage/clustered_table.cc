#include "storage/clustered_table.h"

#include "common/string_util.h"

namespace coradd {

ClusteredTable::ClusteredTable(std::unique_ptr<Table> table,
                               std::vector<int> key_cols,
                               uint32_t page_size_bytes)
    : table_(std::move(table)), key_cols_(std::move(key_cols)) {
  CORADD_CHECK(table_ != nullptr);
  for (int c : key_cols_) {
    CORADD_CHECK(c >= 0 &&
                 static_cast<size_t>(c) < table_->schema().NumColumns());
  }
  if (!key_cols_.empty()) table_->SortByColumns(key_cols_);

  layout_.num_rows = table_->NumRows();
  layout_.row_width_bytes = table_->schema().RowWidthBytes();
  layout_.page_size_bytes = page_size_bytes;

  uint32_t key_bytes = 0;
  for (int c : key_cols_) {
    key_bytes += table_->schema().Column(static_cast<size_t>(c)).byte_size;
  }
  if (key_bytes == 0) key_bytes = 4;
  // The clustered B+Tree is sparse: one separator entry per heap page.
  btree_ = ComputeBTreeShape(layout_.NumPages(), key_bytes + 8, key_bytes,
                             page_size_bytes);
  // Count the heap itself as the leaf level: height includes leaf pages plus
  // the sparse index levels above them.
  btree_.leaf_pages = 0;  // heap pages are charged via layout_.
}

void ClusteredTable::ScanBatch(RowRange range,
                               const std::vector<int>& table_cols,
                               ColumnBatch* out) const {
  CORADD_CHECK(range.end <= table_->NumRows());
  out->begin = range.begin;
  out->num_rows = static_cast<uint32_t>(range.Size());
  out->cols.resize(table_cols.size());
  for (size_t i = 0; i < table_cols.size(); ++i) {
    out->cols[i] = ColumnSlice(table_cols[i], range.begin);
  }
}

int ClusteredTable::CompareKeyPrefix(RowId r,
                                     const std::vector<int64_t>& vals) const {
  for (size_t i = 0; i < vals.size(); ++i) {
    const int64_t v =
        table_->Value(r, static_cast<size_t>(key_cols_[i]));
    if (v < vals[i]) return -1;
    if (v > vals[i]) return 1;
  }
  return 0;
}

RowId ClusteredTable::LowerBound(const std::vector<int64_t>& vals) const {
  RowId lo = 0;
  RowId hi = static_cast<RowId>(table_->NumRows());
  while (lo < hi) {
    const RowId mid = lo + (hi - lo) / 2;
    if (CompareKeyPrefix(mid, vals) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

RowId ClusteredTable::UpperBound(const std::vector<int64_t>& vals) const {
  RowId lo = 0;
  RowId hi = static_cast<RowId>(table_->NumRows());
  while (lo < hi) {
    const RowId mid = lo + (hi - lo) / 2;
    if (CompareKeyPrefix(mid, vals) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

RowRange ClusteredTable::EqualRange(const std::vector<int64_t>& prefix) const {
  CORADD_CHECK(prefix.size() <= key_cols_.size());
  return RowRange{LowerBound(prefix), UpperBound(prefix)};
}

RowRange ClusteredTable::PrefixThenRange(const std::vector<int64_t>& prefix,
                                         int64_t lo, int64_t hi) const {
  CORADD_CHECK(prefix.size() < key_cols_.size());
  std::vector<int64_t> lo_key = prefix;
  lo_key.push_back(lo);
  std::vector<int64_t> hi_key = prefix;
  hi_key.push_back(hi);
  return RowRange{LowerBound(lo_key), UpperBound(hi_key)};
}

std::string ClusteredTable::ToString() const {
  std::vector<std::string> keys;
  for (int c : key_cols_) {
    keys.push_back(table_->schema().Column(static_cast<size_t>(c)).name);
  }
  return StrFormat("ClusteredTable{%s, rows=%zu, pages=%llu, key=(%s), %s}",
                   table_->name().c_str(), table_->NumRows(),
                   static_cast<unsigned long long>(layout_.NumPages()),
                   Join(keys, ",").c_str(),
                   HumanBytes(SizeBytes()).c_str());
}

}  // namespace coradd
