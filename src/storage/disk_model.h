// Disk cost simulator.
//
// The paper's experimental quantity is disk-bound query time on a 10k RPM
// SATA disk (§7, A-2.2: "we assume that every operation is disk-bound").
// DiskModel prices page-level access patterns with the same two primitives
// the paper's cost model uses: random seeks (5.5 ms, Table 5's typical
// value) and sequential page reads (derived from a sequential bandwidth).
// The executor *performs* the access pattern (which pages, in which order)
// and DiskModel converts it into simulated elapsed time and I/O counters.
#pragma once

#include <cstdint>
#include <string>

namespace coradd {

/// Physical parameters of the simulated disk and page layout.
struct DiskParams {
  uint32_t page_size_bytes = 8192;
  /// Random seek + rotational delay, per Table 5 of the paper.
  double seek_seconds = 0.0055;
  /// Sequential transfer rate; ~80 MB/s is typical for a 2010 10k SATA disk.
  double sequential_mbps = 80.0;
  /// Read-ahead window: page runs separated by a gap of at most this many
  /// pages are treated as one fragment ("several sequential pages together",
  /// A-2.2). Also used by fragment coalescing.
  uint32_t prefetch_pages = 4;

  /// Seconds to sequentially transfer one page.
  double PageReadSeconds() const {
    return static_cast<double>(page_size_bytes) / (sequential_mbps * 1e6);
  }
};

/// Accumulates simulated I/O. One DiskModel instance is threaded through an
/// executor run; counters allow asserting on access patterns in tests.
class DiskModel {
 public:
  explicit DiskModel(DiskParams params = DiskParams()) : params_(params) {}

  const DiskParams& params() const { return params_; }

  /// One random seek (head movement + rotational delay).
  void Seek() {
    ++seeks_;
    elapsed_ += params_.seek_seconds;
  }

  /// `n` pages transferred sequentially (no seek).
  void SequentialRead(uint64_t n) {
    pages_read_ += n;
    elapsed_ += static_cast<double>(n) * params_.PageReadSeconds();
  }

  /// One page written (seek + transfer); models dirty-page eviction.
  void WritePage() {
    ++pages_written_;
    ++seeks_;
    elapsed_ += params_.seek_seconds + params_.PageReadSeconds();
  }

  /// Sequential write of `n` pages (bulk load).
  void SequentialWrite(uint64_t n) {
    pages_written_ += n;
    elapsed_ += static_cast<double>(n) * params_.PageReadSeconds();
  }

  void Reset() {
    seeks_ = 0;
    pages_read_ = 0;
    pages_written_ = 0;
    elapsed_ = 0.0;
  }

  uint64_t seeks() const { return seeks_; }
  uint64_t pages_read() const { return pages_read_; }
  uint64_t pages_written() const { return pages_written_; }
  double elapsed_seconds() const { return elapsed_; }

  std::string ToString() const;

 private:
  DiskParams params_;
  uint64_t seeks_ = 0;
  uint64_t pages_read_ = 0;
  uint64_t pages_written_ = 0;
  double elapsed_ = 0.0;
};

}  // namespace coradd
