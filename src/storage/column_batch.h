// The unit of batched execution: a window of rows exposed as per-column
// contiguous value pointers. Columns the underlying table stores are served
// zero-copy (Table is column-major already); columns reachable only through
// row provenance are gathered into caller-owned scratch buffers by the exec
// layer. The executor's filter/aggregate kernels run over these flat arrays
// instead of per-row, per-predicate name lookups.
#pragma once

#include <cstdint>
#include <vector>

namespace coradd {

struct RowRange;

/// One batch of rows, column-major. cols[c][i] is the value of requested
/// column c for the i-th row of the batch. Pointers stay valid until the
/// next ScanBatch/GatherBatch call that reuses the same scratch, or until
/// the owning table is destroyed, whichever is first.
struct ColumnBatch {
  uint32_t begin = 0;  ///< First row id covered (batch-local index 0).
  uint32_t num_rows = 0;
  std::vector<const int64_t*> cols;

  size_t NumRows() const { return num_rows; }
};

/// Reusable per-worker gather buffers for columns that are not stored in the
/// scanned table (provenance lookups) or for non-contiguous row lists.
struct BatchScratch {
  std::vector<std::vector<int64_t>> gathered;

  /// Ensures `n` buffers of capacity `rows` each and returns buffer `i`.
  int64_t* Buffer(size_t i, size_t rows) {
    if (gathered.size() <= i) gathered.resize(i + 1);
    if (gathered[i].size() < rows) gathered[i].resize(rows);
    return gathered[i].data();
  }
};

}  // namespace coradd
