// Page-layout arithmetic shared by heap files, B+Trees, and size estimation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace coradd {

/// Row-to-page mapping of a heap file with fixed-width rows.
struct HeapLayout {
  uint64_t num_rows = 0;
  uint32_t row_width_bytes = 0;
  uint32_t page_size_bytes = 8192;

  uint64_t RowsPerPage() const {
    const uint64_t rpp = page_size_bytes / (row_width_bytes == 0 ? 1 : row_width_bytes);
    return rpp == 0 ? 1 : rpp;
  }
  uint64_t NumPages() const {
    const uint64_t rpp = RowsPerPage();
    return (num_rows + rpp - 1) / rpp;
  }
  uint64_t PageOfRow(uint64_t row) const { return row / RowsPerPage(); }
  uint64_t SizeBytes() const { return NumPages() * page_size_bytes; }
};

/// Shape (page counts, height) of a B+Tree with `num_entries` fixed-width
/// entries, computed bottom-up with a conventional fill factor.
struct BTreeShape {
  uint64_t leaf_pages = 0;
  uint64_t internal_pages = 0;
  uint32_t height = 1;  ///< Levels from root to leaf inclusive.

  uint64_t TotalPages() const { return leaf_pages + internal_pages; }
};

/// Computes the shape of a B+Tree holding `num_entries` entries of
/// `entry_bytes` each, with internal separators of `key_bytes + 8` (child
/// pointer) and 67% fill.
inline BTreeShape ComputeBTreeShape(uint64_t num_entries, uint32_t entry_bytes,
                                    uint32_t key_bytes,
                                    uint32_t page_size_bytes = 8192) {
  CORADD_CHECK(entry_bytes > 0);
  constexpr double kFill = 0.67;
  BTreeShape shape;
  const double leaf_cap =
      kFill * static_cast<double>(page_size_bytes) / entry_bytes;
  const uint64_t leaf_per_page = leaf_cap < 1.0 ? 1 : static_cast<uint64_t>(leaf_cap);
  shape.leaf_pages = num_entries == 0 ? 1 : (num_entries + leaf_per_page - 1) / leaf_per_page;

  const double int_cap = kFill * static_cast<double>(page_size_bytes) /
                         static_cast<double>(key_bytes + 8);
  const uint64_t fanout = int_cap < 2.0 ? 2 : static_cast<uint64_t>(int_cap);

  uint64_t level_pages = shape.leaf_pages;
  shape.height = 1;
  while (level_pages > 1) {
    level_pages = (level_pages + fanout - 1) / fanout;
    shape.internal_pages += level_pages;
    ++shape.height;
  }
  return shape;
}

/// A maximal run of nearby pages accessed together during a sorted index
/// scan; the unit of the paper's `fragments` statistic.
struct PageRun {
  uint64_t first_page;
  uint64_t last_page;  ///< Inclusive.
  uint64_t NumPages() const { return last_page - first_page + 1; }
};

/// Coalesces a sorted list of page numbers into runs, merging runs whose gap
/// is at most `gap_tolerance` pages (the read-ahead window; A-2.2 treats
/// "tuples placed at nearby positions" as one fragment).
std::vector<PageRun> CoalescePages(const std::vector<uint64_t>& sorted_pages,
                                   uint64_t gap_tolerance);

}  // namespace coradd
