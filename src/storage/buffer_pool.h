// LRU buffer pool simulator.
//
// Used by the maintenance experiment (A-3): inserting into a database with
// more materialized objects dirties more distinct pages, overflowing the
// pool and forcing evictions, each of which is a random page write. The
// pool charges misses (seek + read) and dirty evictions (write) to the
// attached DiskModel.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/status.h"
#include "storage/disk_model.h"

namespace coradd {

/// Identifies a page globally: (object id, page number within the object).
struct PageKey {
  uint32_t object_id;
  uint64_t page_no;

  bool operator==(const PageKey& o) const {
    return object_id == o.object_id && page_no == o.page_no;
  }
};

struct PageKeyHash {
  size_t operator()(const PageKey& k) const {
    return static_cast<size_t>(k.page_no * 1000003ULL + k.object_id);
  }
};

/// Fixed-capacity LRU pool of simulated pages with dirty tracking.
class BufferPool {
 public:
  /// `capacity_pages` must be > 0. `disk` must outlive the pool.
  BufferPool(uint64_t capacity_pages, DiskModel* disk);

  /// Touches a page for reading. Charges a random page read on a miss.
  /// Returns true on a hit.
  bool Read(PageKey key);

  /// Touches a page for writing (marks dirty). Charges a read on a miss
  /// (read-modify-write); the write itself is deferred to eviction/flush.
  /// Returns true on a hit.
  bool Write(PageKey key);

  /// Writes back all dirty pages (sequential-ish checkpoint: charged as
  /// random writes, matching the evict path's pessimism).
  void FlushAll();

  /// Drops every page without writing (the paper discards caches between
  /// queries; reads after this are cold).
  void DropAll() {
    lru_.clear();
    map_.clear();
  }

  uint64_t capacity_pages() const { return capacity_; }
  uint64_t resident_pages() const { return map_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t dirty_evictions() const { return dirty_evictions_; }

 private:
  struct Frame {
    PageKey key;
    bool dirty;
  };

  /// Moves the frame to MRU position; returns true if present.
  bool Touch(PageKey key, bool dirty);
  void InsertFrame(PageKey key, bool dirty);
  void EvictIfFull();

  uint64_t capacity_;
  DiskModel* disk_;
  std::list<Frame> lru_;  ///< Front = most recently used.
  std::unordered_map<PageKey, std::list<Frame>::iterator, PageKeyHash> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t dirty_evictions_ = 0;
};

}  // namespace coradd
