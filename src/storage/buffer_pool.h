// Buffer pools for the simulated storage layer.
//
// Two pools live here:
//
//  * BufferPool — the original serial LRU simulator. It remains the
//    maintenance experiment's pool (A-3: inserting into a database with more
//    materialized objects dirties more distinct pages, overflowing the pool
//    and forcing random-write evictions) and doubles as the *reference
//    model* the property tests replay SharedBufferPool against.
//
//  * SharedBufferPool — the concurrent, sharded pool the serving engine
//    owns (docs/SERVING.md): N lock-striped shards keyed by PageKey,
//    pin/unpin reference counts, a scan-resistant two-segment eviction
//    policy (new pages enter a probation FIFO sized to ~1/4 of the shard;
//    only a re-reference promotes to the protected LRU segment, so one
//    giant single-touch scan churns the probation window instead of
//    flushing the hot set), and dirty write-back on evict/flush charged to
//    an attached DiskModel. Misses are NOT charged here — the caller bills
//    its own DiskModel for the read (exec::ChargePlanIoPooled), which keeps
//    per-query simulated seconds per-query even though the page state is
//    shared. An exact-LRU policy is available so a single-shard pool can be
//    replayed bit-for-bit against the serial reference model.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/disk_model.h"

namespace coradd {

namespace obs {
class Counter;
class Gauge;
}  // namespace obs

/// Identifies a page globally: (object id, page number within the object).
struct PageKey {
  uint32_t object_id;
  uint64_t page_no;

  bool operator==(const PageKey& o) const {
    return object_id == o.object_id && page_no == o.page_no;
  }
};

/// Object-id bit marking secondary-structure (index) pages of an object, so
/// heap and index pages of the same object occupy disjoint key ranges. The
/// maintenance simulator and the pooled executor share this convention.
inline constexpr uint32_t kIndexPageObjectFlag = 0x80000000u;

struct PageKeyHash {
  size_t operator()(const PageKey& k) const {
    // SplitMix64 finalizer over the combined key. The previous
    // `page_no * 1000003 + object_id` was fine for one unordered_map but
    // clusters badly under shard striping (consecutive pages of one object
    // land `1000003 mod num_shards` apart, and small object ids barely
    // perturb the low bits); a full-avalanche mix spreads both fields into
    // every output bit.
    uint64_t x =
        k.page_no ^ (static_cast<uint64_t>(k.object_id) * 0x9E3779B97F4A7C15ULL);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

/// Fixed-capacity serial LRU pool of simulated pages with dirty tracking.
class BufferPool {
 public:
  /// `capacity_pages` must be > 0. `disk` must outlive the pool.
  BufferPool(uint64_t capacity_pages, DiskModel* disk);

  /// Touches a page for reading. Charges a random page read on a miss.
  /// Returns true on a hit.
  bool Read(PageKey key);

  /// Touches a page for writing (marks dirty). Charges a read on a miss
  /// (read-modify-write); the write itself is deferred to eviction/flush.
  /// Returns true on a hit.
  bool Write(PageKey key);

  /// Writes back all dirty pages (sequential-ish checkpoint: charged as
  /// random writes, matching the evict path's pessimism).
  void FlushAll();

  /// Drops every page without writing (the paper discards caches between
  /// queries; reads after this are cold). Dirty state goes with the frames,
  /// so a FlushAll after a drop writes nothing and reuse starts clean; the
  /// cumulative hit/miss/eviction counters stay monotone.
  void DropAll() {
    lru_.clear();
    map_.clear();
  }

  uint64_t capacity_pages() const { return capacity_; }
  uint64_t resident_pages() const { return map_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t dirty_evictions() const { return dirty_evictions_; }

 private:
  struct Frame {
    PageKey key;
    bool dirty;
  };

  /// Moves the frame to MRU position; returns true if present.
  bool Touch(PageKey key, bool dirty);
  void InsertFrame(PageKey key, bool dirty);
  void EvictIfFull();

  uint64_t capacity_;
  DiskModel* disk_;
  std::list<Frame> lru_;  ///< Front = most recently used.
  std::unordered_map<PageKey, std::list<Frame>::iterator, PageKeyHash> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t dirty_evictions_ = 0;
};

/// Eviction policy of a SharedBufferPool.
enum class EvictionPolicy {
  /// Exact LRU — bit-identical touch/evict sequence to the serial
  /// BufferPool when run with one shard (the property-test reference mode).
  kLru,
  /// Scan-resistant two-segment policy (2Q-style probation, the default):
  /// new pages enter a probation FIFO (~1/4 of the shard); a hit while in
  /// probation promotes to the protected LRU segment. While probation is at
  /// its target size, evictions come from the probation tail, so a giant
  /// one-touch scan recycles its own pages and cannot flush the hot set.
  kTwoQ,
};

/// Construction knobs for SharedBufferPool.
struct BufferPoolOptions {
  /// Total pool capacity in pages, split across shards. Must be > 0.
  uint64_t capacity_pages = 0;
  /// Lock-striped shards; 0 = auto (min(8, capacity_pages) — a fixed,
  /// hardware-independent choice so sizing never perturbs determinism).
  size_t num_shards = 0;
  EvictionPolicy policy = EvictionPolicy::kTwoQ;
  /// Prefix for the per-shard obs counters
  /// (`bufferpool.<name>.s<i>.{hits,misses,evictions}`). Metrics are
  /// process-wide and never deleted, so same-named pools share counters.
  std::string name = "shared";
};

/// Counter snapshot of a SharedBufferPool (aggregate or one shard). All
/// counts are monotone except resident/resident_dirty/pinned.
struct BufferPoolStats {
  uint64_t touches = 0;  ///< Read + Write + Pin calls (hits + misses).
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// Dirty pages written back (evictions + FlushAll), each charged exactly
  /// once to the attached write-back disk.
  uint64_t dirty_writebacks = 0;
  uint64_t resident = 0;
  uint64_t resident_dirty = 0;
  uint64_t pinned = 0;         ///< Pages with pin count > 0 right now.
  uint64_t pin_high_water = 0; ///< Max concurrently pinned pages (pool-wide).

  double hit_rate() const {
    return touches > 0 ? static_cast<double>(hits) / static_cast<double>(touches)
                       : 0.0;
  }
};

/// Concurrent, sharded buffer pool. Thread-safe: every operation takes only
/// its shard's mutex (plus a dedicated disk mutex on dirty write-back), so
/// touches to different shards never contend. Deterministic in
/// single-threaded use: the hit/miss/evict sequence depends only on the
/// touch sequence and options.
class SharedBufferPool {
 public:
  /// `writeback_disk` (optional) is charged one WritePage per dirty
  /// write-back, under an internal mutex; it must outlive the pool.
  explicit SharedBufferPool(const BufferPoolOptions& options,
                            DiskModel* writeback_disk = nullptr);

  SharedBufferPool(const SharedBufferPool&) = delete;
  SharedBufferPool& operator=(const SharedBufferPool&) = delete;

  /// Touches a page for reading. Returns true on a hit; on a miss the page
  /// becomes resident (possibly evicting) and the CALLER charges its own
  /// DiskModel for the read.
  bool Read(PageKey key);

  /// Touches a page for writing: marks it dirty; the write itself is
  /// deferred to eviction or FlushAll. Returns true on a hit.
  bool Write(PageKey key);

  /// Read + pin in one atomic touch: the page is resident on return and
  /// cannot be evicted until a matching Unpin. Pins nest (a reference
  /// count). Returns true on a hit.
  bool Pin(PageKey key);

  /// Releases one pin. The page must be resident with pin count > 0 —
  /// unpinning a non-pinned page is a caller bug (aborts), which is what
  /// keeps pin counts from ever going negative.
  void Unpin(PageKey key);

  /// Writes back every dirty resident page (charged to the write-back
  /// disk); pages stay resident and clean.
  void FlushAll();

  /// Drops every page without writing and resets dirty/pin accounting, so
  /// reuse after a drop starts clean (a FlushAll right after writes
  /// nothing, pinned_pages() == 0). Monotone counters are kept. The caller
  /// must guarantee no concurrent users hold pins across the drop.
  void DropAll();

  /// Aggregate counters across all shards (each shard locked briefly).
  BufferPoolStats stats() const;
  /// Counters of shard `s` only (pin_high_water is pool-wide).
  BufferPoolStats shard_stats(size_t s) const;

  size_t num_shards() const { return shards_.size(); }
  uint64_t capacity_pages() const { return capacity_; }
  uint64_t resident_pages() const;
  uint64_t pinned_pages() const {
    return static_cast<uint64_t>(pinned_.load(std::memory_order_relaxed));
  }

  /// Shard a key routes to — exposed so tests can check striping balance.
  size_t ShardOf(PageKey key) const {
    return PageKeyHash()(key) % shards_.size();
  }

 private:
  struct Frame {
    PageKey key;
    uint32_t pins = 0;
    bool dirty = false;
    bool probation = false;  ///< Which segment the frame lives in (kTwoQ).
  };
  using FrameList = std::list<Frame>;

  struct Shard {
    mutable std::mutex mu;
    /// Protected segment, front = MRU. Under kLru this is the only list.
    FrameList main;
    /// Probation FIFO, front = newest (kTwoQ only).
    FrameList probation;
    std::unordered_map<PageKey, FrameList::iterator, PageKeyHash> map;
    uint64_t capacity = 0;
    uint64_t probation_target = 0;
    BufferPoolStats counters;  ///< resident/pinned maintained inline.
    obs::Counter* obs_hits = nullptr;
    obs::Counter* obs_misses = nullptr;
    obs::Counter* obs_evictions = nullptr;
  };

  bool Touch(PageKey key, bool dirty, bool pin);
  /// Evicts until shard residency <= capacity or only pinned pages remain
  /// (the pool then runs transiently over capacity). Called under shard.mu.
  void EvictIfNeeded(Shard* shard);
  /// Removes `it` from its segment; charges a write-back if dirty. Called
  /// under shard.mu.
  void EvictFrame(Shard* shard, FrameList::iterator it);
  /// Last unpinned frame of `list` (reverse scan), or end().
  static FrameList::iterator FindVictim(FrameList* list);
  void ChargeWriteback(Shard* shard);
  void NotePin(Shard* shard);
  void NoteUnpin(Shard* shard);

  uint64_t capacity_;
  EvictionPolicy policy_;
  DiskModel* writeback_disk_;
  std::mutex disk_mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int64_t> pinned_{0};
  std::atomic<int64_t> pin_hwm_{0};
  // Process-wide aggregate obs counters (shared by every pool) plus the
  // per-pool pinned gauge; per-shard counters live on the Shard.
  obs::Counter* obs_touches_ = nullptr;
  obs::Counter* obs_hits_ = nullptr;
  obs::Counter* obs_misses_ = nullptr;
  obs::Counter* obs_evictions_ = nullptr;
  obs::Counter* obs_dirty_writebacks_ = nullptr;
  obs::Gauge* obs_pinned_ = nullptr;
};

}  // namespace coradd
