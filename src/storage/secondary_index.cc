#include "storage/secondary_index.h"

#include <algorithm>
#include <numeric>

#include "common/string_util.h"

namespace coradd {

SecondaryBTreeIndex::SecondaryBTreeIndex(const ClusteredTable* base, int col)
    : base_(base), col_(col) {
  CORADD_CHECK(base != nullptr);
  const Table& t = base->table();
  CORADD_CHECK(col >= 0 && static_cast<size_t>(col) < t.schema().NumColumns());

  const auto& data = t.ColumnData(static_cast<size_t>(col));
  const size_t n = data.size();

  // Sort RIDs by (value, rid) to build grouped postings.
  std::vector<RowId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](RowId a, RowId b) {
    if (data[a] != data[b]) return data[a] < data[b];
    return a < b;
  });

  rids_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const RowId r = order[i];
    if (i == 0 || data[r] != data[order[i - 1]]) {
      keys_.push_back(data[r]);
      offsets_.push_back(static_cast<uint32_t>(rids_.size()));
    }
    rids_.push_back(r);
  }
  offsets_.push_back(static_cast<uint32_t>(rids_.size()));

  const uint32_t key_bytes =
      t.schema().Column(static_cast<size_t>(col)).byte_size;
  // Dense: one (key, RID) entry per tuple.
  shape_ = ComputeBTreeShape(n, key_bytes + 8, key_bytes,
                             base->layout().page_size_bytes);
}

size_t SecondaryBTreeIndex::KeyLowerBound(int64_t v) const {
  return static_cast<size_t>(
      std::lower_bound(keys_.begin(), keys_.end(), v) - keys_.begin());
}

void SecondaryBTreeIndex::AppendPostings(size_t k,
                                         std::vector<RowId>* out) const {
  out->insert(out->end(), rids_.begin() + offsets_[k],
              rids_.begin() + offsets_[k + 1]);
}

std::vector<RowId> SecondaryBTreeIndex::LookupEqual(int64_t v) const {
  std::vector<RowId> out;
  const size_t k = KeyLowerBound(v);
  if (k < keys_.size() && keys_[k] == v) AppendPostings(k, &out);
  return out;
}

std::vector<RowId> SecondaryBTreeIndex::LookupRange(int64_t lo,
                                                    int64_t hi) const {
  std::vector<RowId> out;
  for (size_t k = KeyLowerBound(lo); k < keys_.size() && keys_[k] <= hi; ++k) {
    AppendPostings(k, &out);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<RowId> SecondaryBTreeIndex::LookupIn(
    const std::vector<int64_t>& values) const {
  std::vector<RowId> out;
  for (int64_t v : values) {
    const size_t k = KeyLowerBound(v);
    if (k < keys_.size() && keys_[k] == v) AppendPostings(k, &out);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

uint64_t SecondaryBTreeIndex::LeafPageOfKey(int64_t v) const {
  if (rids_.empty() || shape_.leaf_pages == 0) return 0;
  const size_t k = KeyLowerBound(v);
  const uint64_t entry = k < keys_.size() ? offsets_[k] : rids_.size();
  const uint64_t page = entry * shape_.leaf_pages / rids_.size();
  return std::min<uint64_t>(page, shape_.leaf_pages - 1);
}

std::string SecondaryBTreeIndex::ToString() const {
  return StrFormat(
      "SecondaryBTree{col=%s, entries=%zu, distinct=%zu, %s, height=%u}",
      base_->table().schema().Column(static_cast<size_t>(col_)).name.c_str(),
      rids_.size(), keys_.size(), HumanBytes(SizeBytes()).c_str(),
      shape_.height);
}

}  // namespace coradd
