// Dense secondary B+Tree index over one column of a ClusteredTable.
//
// This is the conventional structure CMs are compared against in A-1: one
// (key, RID) entry per tuple. Lookups return RIDs in key order; the executor
// then sorts RIDs and coalesces page runs, exactly the "sorted index scan"
// access pattern of A-2.1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/clustered_table.h"

namespace coradd {

/// Dense B+Tree secondary index on a single column.
class SecondaryBTreeIndex {
 public:
  /// Builds the index over column `col` of `base` (index into the base
  /// table's schema). `base` must outlive this index.
  SecondaryBTreeIndex(const ClusteredTable* base, int col);

  int column() const { return col_; }
  const BTreeShape& shape() const { return shape_; }
  uint64_t SizeBytes() const {
    return shape_.TotalPages() * base_->layout().page_size_bytes;
  }
  uint32_t Height() const { return shape_.height; }
  size_t NumDistinctKeys() const { return keys_.size(); }

  /// RIDs of rows with value == v (ascending RID order). Empty if none.
  std::vector<RowId> LookupEqual(int64_t v) const;

  /// RIDs of rows with lo <= value <= hi.
  std::vector<RowId> LookupRange(int64_t lo, int64_t hi) const;

  /// RIDs of rows whose value is any element of `values`.
  std::vector<RowId> LookupIn(const std::vector<int64_t>& values) const;

  /// Leaf page (0-based, < shape().leaf_pages) holding the first entry with
  /// key >= v; the last leaf if every key is smaller. Entries are spread
  /// uniformly across leaves, matching the shape arithmetic the planner
  /// charges with — this anchors pooled accounting of index-leaf touches.
  uint64_t LeafPageOfKey(int64_t v) const;

  std::string ToString() const;

 private:
  /// Index of first key >= v in keys_.
  size_t KeyLowerBound(int64_t v) const;

  /// Appends the RIDs of keys_[k] to out.
  void AppendPostings(size_t k, std::vector<RowId>* out) const;

  const ClusteredTable* base_;
  int col_;
  BTreeShape shape_;
  std::vector<int64_t> keys_;      ///< Sorted distinct keys.
  std::vector<uint32_t> offsets_;  ///< offsets_[k]..offsets_[k+1] into rids_.
  std::vector<RowId> rids_;        ///< Grouped by key, RID-ascending.
};

}  // namespace coradd
