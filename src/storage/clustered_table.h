// A physically materialized relation: a heap file sorted by a clustered key
// with a (simulated) clustered B+Tree on top. This is what an MV, a
// re-clustered fact table, or a base table becomes once materialized.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/table.h"
#include "storage/column_batch.h"
#include "storage/layout.h"

namespace coradd {

/// Half-open range of row ids [begin, end).
struct RowRange {
  RowId begin = 0;
  RowId end = 0;
  bool Empty() const { return begin >= end; }
  uint64_t Size() const { return end - begin; }
};

/// A heap file clustered on `key_cols` (lexicographic order) plus the shape
/// of its clustered B+Tree. Provides binary-search access for key-prefix
/// equality and range predicates — the clustered access paths of §A-2.
class ClusteredTable {
 public:
  /// Takes ownership of `table`, sorts it by `key_cols` (indices into the
  /// table's schema), and computes layout/B+Tree shapes.
  ClusteredTable(std::unique_ptr<Table> table, std::vector<int> key_cols,
                 uint32_t page_size_bytes = 8192);

  const Table& table() const { return *table_; }
  const std::vector<int>& key_cols() const { return key_cols_; }
  const HeapLayout& layout() const { return layout_; }
  const BTreeShape& clustered_btree() const { return btree_; }

  size_t NumRows() const { return table_->NumRows(); }
  uint64_t NumPages() const { return layout_.NumPages(); }
  uint64_t PageOfRow(RowId r) const { return layout_.PageOfRow(r); }

  /// Heap pages (inclusive run) backing a non-empty row range — the one
  /// place planner I/O charging and pooled page accounting both derive
  /// page numbers from, so they can never disagree.
  PageRun PagesOfRange(RowRange range) const {
    CORADD_CHECK(!range.Empty());
    return PageRun{PageOfRow(range.begin), PageOfRow(range.end - 1)};
  }

  /// Heap + clustered-index size in bytes (what the space budget charges).
  uint64_t SizeBytes() const {
    return layout_.SizeBytes() + btree_.internal_pages * layout_.page_size_bytes;
  }

  /// Height of the clustered B+Tree (root to leaf).
  uint32_t BTreeHeight() const { return btree_.height; }

  /// Contiguous values of stored column `table_col` starting at row
  /// `begin` — the one place the heap's zero-copy pointer arithmetic
  /// lives. Every batch producer (ScanBatch here, the provenance-aware
  /// one in exec/materialize) slices through this.
  const int64_t* ColumnSlice(int table_col, RowId begin) const {
    return table_->ColumnData(static_cast<size_t>(table_col)).data() + begin;
  }

  /// Columnar batch accessor: exposes rows [range) of the stored columns
  /// `table_cols` as contiguous per-column pointers, zero-copy (the heap is
  /// column-major in memory). The executor's batched scan path reads these
  /// instead of calling Value() per row per predicate.
  void ScanBatch(RowRange range, const std::vector<int>& table_cols,
                 ColumnBatch* out) const;

  /// Rows whose first `prefix.size()` key columns equal `prefix`.
  RowRange EqualRange(const std::vector<int64_t>& prefix) const;

  /// Rows where the first `prefix.size()` key columns equal `prefix` and the
  /// next key column lies in [lo, hi] (inclusive).
  RowRange PrefixThenRange(const std::vector<int64_t>& prefix, int64_t lo,
                           int64_t hi) const;

  std::string ToString() const;

 private:
  /// Lexicographic compare of row `r`'s key prefix against `vals`, returning
  /// <0, 0, >0. Only the first vals.size() key columns are compared.
  int CompareKeyPrefix(RowId r, const std::vector<int64_t>& vals) const;

  /// First row whose key prefix is >= vals (as if vals were extended with
  /// -inf), and first row > vals (extended with +inf).
  RowId LowerBound(const std::vector<int64_t>& vals) const;
  RowId UpperBound(const std::vector<int64_t>& vals) const;

  std::unique_ptr<Table> table_;
  std::vector<int> key_cols_;
  HeapLayout layout_;
  BTreeShape btree_;
};

}  // namespace coradd
