#include "storage/buffer_pool.h"

#include <algorithm>

#include "obs/metrics.h"

namespace coradd {

// ---------------------------------------------------------------------------
// BufferPool (serial LRU reference model / maintenance pool)
// ---------------------------------------------------------------------------

BufferPool::BufferPool(uint64_t capacity_pages, DiskModel* disk)
    : capacity_(capacity_pages), disk_(disk) {
  CORADD_CHECK(capacity_pages > 0);
  CORADD_CHECK(disk != nullptr);
}

bool BufferPool::Touch(PageKey key, bool dirty) {
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  it->second->dirty = it->second->dirty || dirty;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

void BufferPool::EvictIfFull() {
  while (map_.size() >= capacity_) {
    Frame victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim.key);
    if (victim.dirty) {
      ++dirty_evictions_;
      disk_->WritePage();
    }
  }
}

void BufferPool::InsertFrame(PageKey key, bool dirty) {
  EvictIfFull();
  lru_.push_front(Frame{key, dirty});
  map_[key] = lru_.begin();
}

bool BufferPool::Read(PageKey key) {
  if (Touch(key, /*dirty=*/false)) {
    ++hits_;
    return true;
  }
  ++misses_;
  disk_->Seek();
  disk_->SequentialRead(1);
  InsertFrame(key, /*dirty=*/false);
  return false;
}

bool BufferPool::Write(PageKey key) {
  if (Touch(key, /*dirty=*/true)) {
    ++hits_;
    return true;
  }
  ++misses_;
  disk_->Seek();
  disk_->SequentialRead(1);
  InsertFrame(key, /*dirty=*/true);
  return false;
}

void BufferPool::FlushAll() {
  for (auto& frame : lru_) {
    if (frame.dirty) {
      frame.dirty = false;
      disk_->WritePage();
    }
  }
}

// ---------------------------------------------------------------------------
// SharedBufferPool
// ---------------------------------------------------------------------------

SharedBufferPool::SharedBufferPool(const BufferPoolOptions& options,
                                   DiskModel* writeback_disk)
    : capacity_(options.capacity_pages),
      policy_(options.policy),
      writeback_disk_(writeback_disk) {
  CORADD_CHECK(capacity_ > 0);
  size_t n = options.num_shards != 0
                 ? options.num_shards
                 : static_cast<size_t>(std::min<uint64_t>(8, capacity_));
  // Every shard needs at least one page of capacity.
  n = static_cast<size_t>(std::min<uint64_t>(n, capacity_));

  auto& reg = obs::MetricsRegistry::Global();
  obs_touches_ = reg.GetCounter("bufferpool.touches");
  obs_hits_ = reg.GetCounter("bufferpool.hits");
  obs_misses_ = reg.GetCounter("bufferpool.misses");
  obs_evictions_ = reg.GetCounter("bufferpool.evictions");
  obs_dirty_writebacks_ = reg.GetCounter("bufferpool.dirty_writebacks");
  obs_pinned_ = reg.GetGauge("bufferpool." + options.name + ".pinned");

  const uint64_t base = capacity_ / n;
  const uint64_t rem = capacity_ % n;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = base + (i < rem ? 1 : 0);
    shard->probation_target = std::max<uint64_t>(1, shard->capacity / 4);
    const std::string prefix =
        "bufferpool." + options.name + ".s" + std::to_string(i) + ".";
    shard->obs_hits = reg.GetCounter(prefix + "hits");
    shard->obs_misses = reg.GetCounter(prefix + "misses");
    shard->obs_evictions = reg.GetCounter(prefix + "evictions");
    shards_.push_back(std::move(shard));
  }
}

bool SharedBufferPool::Read(PageKey key) {
  return Touch(key, /*dirty=*/false, /*pin=*/false);
}

bool SharedBufferPool::Write(PageKey key) {
  return Touch(key, /*dirty=*/true, /*pin=*/false);
}

bool SharedBufferPool::Pin(PageKey key) {
  return Touch(key, /*dirty=*/false, /*pin=*/true);
}

bool SharedBufferPool::Touch(PageKey key, bool dirty, bool pin) {
  Shard& shard = *shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.counters.touches;
  obs_touches_->Add();

  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    FrameList::iterator f = it->second;
    if (dirty && !f->dirty) {
      f->dirty = true;
      ++shard.counters.resident_dirty;
    }
    if (pin && f->pins++ == 0) NotePin(&shard);
    if (policy_ == EvictionPolicy::kTwoQ && f->probation) {
      // Second touch: promote out of probation into the protected segment.
      f->probation = false;
      shard.main.splice(shard.main.begin(), shard.probation, f);
    } else {
      shard.main.splice(shard.main.begin(), shard.main, f);
    }
    ++shard.counters.hits;
    shard.obs_hits->Add();
    obs_hits_->Add();
    return true;
  }

  ++shard.counters.misses;
  shard.obs_misses->Add();
  obs_misses_->Add();
  const bool probation = policy_ == EvictionPolicy::kTwoQ;
  FrameList& target = probation ? shard.probation : shard.main;
  target.push_front(Frame{key, pin ? 1u : 0u, dirty, probation});
  shard.map[key] = target.begin();
  ++shard.counters.resident;
  if (dirty) ++shard.counters.resident_dirty;
  if (pin) NotePin(&shard);
  EvictIfNeeded(&shard);
  return false;
}

void SharedBufferPool::Unpin(PageKey key) {
  Shard& shard = *shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  CORADD_CHECK(it != shard.map.end());
  CORADD_CHECK(it->second->pins > 0);
  if (--it->second->pins == 0) {
    NoteUnpin(&shard);
    // Pins can force the shard transiently over capacity; drain as soon as
    // the last pin that caused it goes away.
    EvictIfNeeded(&shard);
  }
}

SharedBufferPool::FrameList::iterator SharedBufferPool::FindVictim(
    FrameList* list) {
  for (auto it = list->rbegin(); it != list->rend(); ++it) {
    if (it->pins == 0) return std::prev(it.base());
  }
  return list->end();
}

void SharedBufferPool::EvictIfNeeded(Shard* shard) {
  while (shard->counters.resident > shard->capacity) {
    FrameList* first;
    FrameList* second = nullptr;
    if (policy_ == EvictionPolicy::kTwoQ) {
      // Probation at (or above) target: a scan recycles its own window.
      // Below target: let the protected segment give a page back.
      if (shard->probation.size() >= shard->probation_target ||
          shard->main.empty()) {
        first = &shard->probation;
        second = &shard->main;
      } else {
        first = &shard->main;
        second = &shard->probation;
      }
    } else {
      first = &shard->main;
    }
    FrameList::iterator victim = FindVictim(first);
    FrameList* vlist = first;
    if (victim == first->end() && second != nullptr) {
      victim = FindVictim(second);
      vlist = second;
    }
    // Every frame pinned: run transiently over capacity rather than evict
    // a page a caller still holds.
    if (victim == vlist->end()) break;
    EvictFrame(shard, victim);
  }
}

void SharedBufferPool::EvictFrame(Shard* shard, FrameList::iterator it) {
  const bool dirty = it->dirty;
  FrameList& list = it->probation ? shard->probation : shard->main;
  shard->map.erase(it->key);
  list.erase(it);
  --shard->counters.resident;
  ++shard->counters.evictions;
  shard->obs_evictions->Add();
  obs_evictions_->Add();
  if (dirty) {
    --shard->counters.resident_dirty;
    ++shard->counters.dirty_writebacks;
    obs_dirty_writebacks_->Add();
    ChargeWriteback(shard);
  }
}

void SharedBufferPool::ChargeWriteback(Shard* /*shard*/) {
  if (writeback_disk_ == nullptr) return;
  std::lock_guard<std::mutex> lock(disk_mu_);
  writeback_disk_->WritePage();
}

void SharedBufferPool::NotePin(Shard* shard) {
  ++shard->counters.pinned;
  const int64_t now = pinned_.fetch_add(1, std::memory_order_relaxed) + 1;
  int64_t cur = pin_hwm_.load(std::memory_order_relaxed);
  while (now > cur && !pin_hwm_.compare_exchange_weak(
                          cur, now, std::memory_order_relaxed)) {
  }
  obs_pinned_->Add(1);
}

void SharedBufferPool::NoteUnpin(Shard* shard) {
  --shard->counters.pinned;
  pinned_.fetch_sub(1, std::memory_order_relaxed);
  obs_pinned_->Add(-1);
}

void SharedBufferPool::FlushAll() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (FrameList* list : {&shard->main, &shard->probation}) {
      for (Frame& frame : *list) {
        if (!frame.dirty) continue;
        frame.dirty = false;
        --shard->counters.resident_dirty;
        ++shard->counters.dirty_writebacks;
        obs_dirty_writebacks_->Add();
        ChargeWriteback(shard.get());
      }
    }
  }
}

void SharedBufferPool::DropAll() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->main.clear();
    shard->probation.clear();
    shard->map.clear();
    shard->counters.resident = 0;
    shard->counters.resident_dirty = 0;
    if (shard->counters.pinned > 0) {
      pinned_.fetch_sub(static_cast<int64_t>(shard->counters.pinned),
                        std::memory_order_relaxed);
      obs_pinned_->Add(-static_cast<int64_t>(shard->counters.pinned));
      shard->counters.pinned = 0;
    }
  }
}

BufferPoolStats SharedBufferPool::stats() const {
  BufferPoolStats total;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const BufferPoolStats s = shard_stats(i);
    total.touches += s.touches;
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.dirty_writebacks += s.dirty_writebacks;
    total.resident += s.resident;
    total.resident_dirty += s.resident_dirty;
    total.pinned += s.pinned;
  }
  total.pin_high_water =
      static_cast<uint64_t>(pin_hwm_.load(std::memory_order_relaxed));
  return total;
}

BufferPoolStats SharedBufferPool::shard_stats(size_t s) const {
  CORADD_CHECK(s < shards_.size());
  const Shard& shard = *shards_[s];
  std::lock_guard<std::mutex> lock(shard.mu);
  BufferPoolStats out = shard.counters;
  out.pin_high_water =
      static_cast<uint64_t>(pin_hwm_.load(std::memory_order_relaxed));
  return out;
}

uint64_t SharedBufferPool::resident_pages() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->counters.resident;
  }
  return total;
}

}  // namespace coradd
