#include "storage/buffer_pool.h"

namespace coradd {

BufferPool::BufferPool(uint64_t capacity_pages, DiskModel* disk)
    : capacity_(capacity_pages), disk_(disk) {
  CORADD_CHECK(capacity_pages > 0);
  CORADD_CHECK(disk != nullptr);
}

bool BufferPool::Touch(PageKey key, bool dirty) {
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  it->second->dirty = it->second->dirty || dirty;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

void BufferPool::EvictIfFull() {
  while (map_.size() >= capacity_) {
    Frame victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim.key);
    if (victim.dirty) {
      ++dirty_evictions_;
      disk_->WritePage();
    }
  }
}

void BufferPool::InsertFrame(PageKey key, bool dirty) {
  EvictIfFull();
  lru_.push_front(Frame{key, dirty});
  map_[key] = lru_.begin();
}

bool BufferPool::Read(PageKey key) {
  if (Touch(key, /*dirty=*/false)) {
    ++hits_;
    return true;
  }
  ++misses_;
  disk_->Seek();
  disk_->SequentialRead(1);
  InsertFrame(key, /*dirty=*/false);
  return false;
}

bool BufferPool::Write(PageKey key) {
  if (Touch(key, /*dirty=*/true)) {
    ++hits_;
    return true;
  }
  ++misses_;
  disk_->Seek();
  disk_->SequentialRead(1);
  InsertFrame(key, /*dirty=*/true);
  return false;
}

void BufferPool::FlushAll() {
  for (auto& frame : lru_) {
    if (frame.dirty) {
      frame.dirty = false;
      disk_->WritePage();
    }
  }
}

}  // namespace coradd
