#include "storage/layout.h"

namespace coradd {

std::vector<PageRun> CoalescePages(const std::vector<uint64_t>& sorted_pages,
                                   uint64_t gap_tolerance) {
  std::vector<PageRun> runs;
  for (uint64_t p : sorted_pages) {
    if (!runs.empty() && p <= runs.back().last_page) continue;  // duplicate
    if (!runs.empty() && p - runs.back().last_page <= gap_tolerance + 1) {
      runs.back().last_page = p;
    } else {
      runs.push_back(PageRun{p, p});
    }
  }
  return runs;
}

}  // namespace coradd
