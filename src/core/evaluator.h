// Runs a DatabaseDesign against a workload on the storage simulator: each
// query executes cold (caches discarded, as in §7) on the object the design
// routes it to, with plan selection by the supplied cost model. Produces
// both "real" (simulated-I/O) and "expected" (model) runtimes — the paired
// curves of Figures 9 and 11 — plus per-query aggregates that must agree
// across designs (a built-in correctness check).
#pragma once

#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/context.h"
#include "core/design.h"
#include "exec/executor.h"

namespace coradd {

/// One query's outcome.
struct QueryRunRecord {
  std::string query_id;
  std::string object_name;
  double real_seconds = 0.0;
  double expected_seconds = 0.0;
  double aggregate = 0.0;
  uint64_t rows_output = 0;
  uint64_t fragments = 0;
  AccessPath path = AccessPath::kFullScan;
};

/// Whole-workload outcome.
struct WorkloadRunResult {
  double total_seconds = 0.0;     ///< Frequency-weighted real runtime.
  double expected_seconds = 0.0;  ///< Frequency-weighted model estimate.
  std::vector<QueryRunRecord> per_query;
};

/// Materializes design objects (with caching across budgets — identical
/// objects recur as the budget grid sweeps) and executes workloads.
class DesignEvaluator {
 public:
  explicit DesignEvaluator(const DesignContext* context,
                           size_t cache_capacity = 24);

  /// Runs every workload query on its routed object. `planner` doubles as
  /// run-time optimizer and "expected" estimator (pass the designer's own
  /// model to reproduce the paired model/real curves).
  WorkloadRunResult Run(const DatabaseDesign& design, const Workload& workload,
                        const CostModel& planner);

  uint64_t cache_hits() const { return cache_hits_; }

 private:
  const MaterializedObject* GetOrMaterialize(const DesignedObject& obj);

  const DesignContext* context_;
  size_t cache_capacity_;
  std::unordered_map<std::string, std::unique_ptr<MaterializedObject>> cache_;
  std::list<std::string> cache_order_;
  uint64_t cache_hits_ = 0;
};

}  // namespace coradd
