// Runs a DatabaseDesign against a workload on the storage simulator: each
// query executes cold (caches discarded, as in §7) on the object the design
// routes it to, with plan selection by the supplied cost model. Produces
// both "real" (simulated-I/O) and "expected" (model) runtimes — the paired
// curves of Figures 9 and 11 — plus per-query aggregates that must agree
// across designs (a built-in correctness check).
//
// Evaluation is parallel end-to-end: RunMany() takes a whole sweep of
// (design, workload, planner) jobs — the per-budget/per-designer loops of
// the figure benches — materializes the distinct objects concurrently, then
// fans every (job, query) pair out over the shared ThreadPool. Each task
// keeps its own DiskModel, so simulated seconds and page counts are exactly
// the serial numbers, and reductions run in fixed (job, query) order.
#pragma once

#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/context.h"
#include "core/design.h"
#include "exec/executor.h"

namespace coradd {

/// One query's outcome.
struct QueryRunRecord {
  std::string query_id;
  std::string object_name;
  double real_seconds = 0.0;
  double expected_seconds = 0.0;
  double aggregate = 0.0;
  uint64_t rows_output = 0;
  uint64_t fragments = 0;
  AccessPath path = AccessPath::kFullScan;
};

/// Whole-workload outcome.
struct WorkloadRunResult {
  double total_seconds = 0.0;     ///< Frequency-weighted real runtime.
  double expected_seconds = 0.0;  ///< Frequency-weighted model estimate.
  std::vector<QueryRunRecord> per_query;
};

/// One independent evaluation: a design, the workload to run on it, and the
/// model acting as run-time optimizer / "expected" estimator. All three must
/// outlive the RunMany() call.
struct EvalJob {
  const DatabaseDesign* design = nullptr;
  const Workload* workload = nullptr;
  const CostModel* planner = nullptr;
};

/// Materializes design objects (with caching across budgets — identical
/// objects recur as the budget grid sweeps) and executes workloads.
class DesignEvaluator {
 public:
  explicit DesignEvaluator(const DesignContext* context,
                           size_t cache_capacity = 24,
                           ExecOptions exec_options = {});

  /// Runs every workload query on its routed object. `planner` doubles as
  /// run-time optimizer and "expected" estimator (pass the designer's own
  /// model to reproduce the paired model/real curves).
  WorkloadRunResult Run(const DatabaseDesign& design, const Workload& workload,
                        const CostModel& planner);

  /// Evaluates every job, fanning all (job, query) pairs across the pool.
  /// Results are identical to calling Run() per job in order (same objects,
  /// same DiskModel accounting, same reduction order) at any thread count.
  /// Jobs are processed in chunks whose distinct materialized objects fit
  /// cache_capacity, so a wide sweep never pins more objects than the
  /// serial path would cache (a single job may still exceed it).
  std::vector<WorkloadRunResult> RunMany(const std::vector<EvalJob>& jobs);

  uint64_t cache_hits() const { return cache_hits_; }

 private:
  /// RunMany for one chunk: pins every distinct object of `jobs` for the
  /// duration of the call.
  std::vector<WorkloadRunResult> RunChunk(const std::vector<EvalJob>& jobs);
  const DesignContext* context_;
  size_t cache_capacity_;
  ExecOptions exec_options_;
  std::unordered_map<std::string, std::shared_ptr<MaterializedObject>> cache_;
  std::list<std::string> cache_order_;
  uint64_t cache_hits_ = 0;
};

}  // namespace coradd
