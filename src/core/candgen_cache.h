// Cross-designer candidate-generation cache (the AutoAdmin candidate-reuse
// insight applied at designer granularity): the CandidateSet produced by
// MvCandidateGenerator is a pure function of (workload, statistics epoch,
// cost-model identity, generator options), so CORADD, Naive and Commercial
// designers — and every budget point of a DesignMany sweep or a bench grid —
// share one generation pass per distinct key instead of regenerating.
//
// Concurrency: the first caller of a key generates while later callers of
// the same key block on a shared future (designers design budget cells
// concurrently since PR 4); generation runs outside the cache lock. Cached
// sets are immutable and shared by pointer.
#pragma once

#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "mv/candidate_generator.h"

namespace coradd {

/// Cache key for one generation pass: every input the generated candidates
/// depend on. `model_id` is CostModel::CacheId() (or a designer-specific
/// tag for model-independent generation); `stats_epoch` invalidates across
/// DesignContext::MineDependencies calls, which change the statistics the
/// generator reads.
std::string CandidateGenKey(const Workload& workload,
                            const std::string& model_id,
                            const std::string& options_signature,
                            uint64_t stats_epoch);

/// Keyed store of generated candidate pools.
class CandidateGenCache {
 public:
  CandidateGenCache() = default;
  CandidateGenCache(const CandidateGenCache&) = delete;
  CandidateGenCache& operator=(const CandidateGenCache&) = delete;

  /// Returns the cached set for `key`, generating it with `generate` on the
  /// first call. Concurrent callers of the same key wait for the single
  /// generation. `generate` must be a pure function of the key's inputs.
  std::shared_ptr<const CandidateSet> GetOrGenerate(
      const std::string& key,
      const std::function<CandidateSet()>& generate);

  /// Hit/miss counters and accumulated generation wall time.
  CandGenStats stats() const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string,
                     std::shared_future<std::shared_ptr<const CandidateSet>>>
      entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  double generation_seconds_ = 0.0;
};

}  // namespace coradd
