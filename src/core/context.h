// Shared design context: universes and statistics for every fact table a
// workload touches, built once (the paper's one-time startup scan, A-2.2)
// and shared by designers, evaluators, and benches.
#pragma once

#include <memory>
#include <vector>

#include "catalog/universe.h"
#include "cost/cost_model.h"
#include "workload/query.h"

namespace coradd {

/// Owns per-fact universes and statistics; exposes a StatsRegistry.
class DesignContext {
 public:
  /// Builds universes + stats for every fact table `workload` references.
  DesignContext(const Catalog* catalog, const Workload& workload,
                StatsOptions stats_options = {});

  const Catalog& catalog() const { return *catalog_; }
  const StatsRegistry& registry() const { return registry_; }
  const StatsOptions& stats_options() const { return stats_options_; }

  const Universe* UniverseForFact(const std::string& fact) const;
  const UniverseStats* StatsForFact(const std::string& fact) const {
    return registry_.ForFact(fact);
  }

 private:
  const Catalog* catalog_;
  StatsOptions stats_options_;
  std::vector<std::unique_ptr<Universe>> universes_;
  std::vector<std::unique_ptr<UniverseStats>> stats_;
  StatsRegistry registry_;
};

}  // namespace coradd
