// Shared design context: universes and statistics for every fact table a
// workload touches, built once (the paper's one-time startup scan, A-2.2)
// and shared by designers, evaluators, and benches. The context is also the
// hook for the dependency-discovery subsystem: MineDependencies() runs the
// lattice miner over a fact's rows and installs the discovered FDs/AFDs as
// the correlation source every designer reading this context consumes.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "catalog/universe.h"
#include "core/candgen_cache.h"
#include "cost/cost_model.h"
#include "discovery/fd_miner.h"
#include "workload/query.h"

namespace coradd {

/// How MineDependencies() feeds discovered knowledge into the designers.
struct DependencyMiningConfig {
  DependencyMinerOptions miner;
  /// Mine every universe row instead of the synopsis sample. Exact but
  /// costs a full scan per candidate-lattice level.
  bool full_scan = false;
  /// After sample mining, re-check every sample-exact FD against the full
  /// universe rows (one scan per FD) and demote the ones that are only
  /// approximate on the full data. Ignored when full_scan is set (verdicts
  /// are already exact).
  bool verify_exact_fds = true;
  /// Strength policy installed on the correlation catalogs: cross-check
  /// mined knowledge against the synopsis estimates (kMinedFirst) or rely
  /// on mined knowledge alone (kMinedOnly).
  CorrelationSource source = CorrelationSource::kMinedFirst;
};

/// Owns per-fact universes and statistics; exposes a StatsRegistry.
class DesignContext {
 public:
  /// Builds universes + stats for every fact table `workload` references.
  DesignContext(const Catalog* catalog, const Workload& workload,
                StatsOptions stats_options = {});

  const Catalog& catalog() const { return *catalog_; }
  const StatsRegistry& registry() const { return registry_; }
  const StatsOptions& stats_options() const { return stats_options_; }

  const Universe* UniverseForFact(const std::string& fact) const;
  const UniverseStats* StatsForFact(const std::string& fact) const {
    return registry_.ForFact(fact);
  }

  /// Runs the dependency miner over `fact`'s universe (synopsis sample by
  /// default) and installs the result as the strength source of the fact's
  /// correlation catalog. Returns the stored report (owned by the context).
  ///
  /// Call before constructing the designers/cost models that should consume
  /// the mined knowledge: models memoize estimates, so one built earlier
  /// would mix pre-mining cached values with post-mining fresh ones.
  const DiscoveredDependencies* MineDependencies(
      const std::string& fact, const DependencyMiningConfig& config = {});

  /// MineDependencies() for every fact universe of this context.
  void MineAllDependencies(const DependencyMiningConfig& config = {});

  /// The mined report for `fact`, or nullptr if never mined.
  const DiscoveredDependencies* DependenciesForFact(
      const std::string& fact) const;

  /// Shared candidate-generation cache: CORADD, Naive and Commercial
  /// designers (and DesignMany sweeps) reuse one generation pass per
  /// (workload, cost-model id, options, stats epoch) key. Internally
  /// synchronized, hence usable from const designers.
  CandidateGenCache& candgen_cache() const { return candgen_cache_; }

  /// Monotone statistics epoch, bumped by MineDependencies: cached
  /// candidate sets generated under older statistics are keyed out rather
  /// than invalidated in place.
  uint64_t stats_epoch() const {
    return stats_epoch_.load(std::memory_order_relaxed);
  }

 private:
  const Catalog* catalog_;
  StatsOptions stats_options_;
  std::vector<std::unique_ptr<Universe>> universes_;
  std::vector<std::unique_ptr<UniverseStats>> stats_;
  /// mined_[i] belongs to universes_[i]; nullptr until mined.
  std::vector<std::unique_ptr<DiscoveredDependencies>> mined_;
  StatsRegistry registry_;
  mutable CandidateGenCache candgen_cache_;
  std::atomic<uint64_t> stats_epoch_{0};
};

}  // namespace coradd
