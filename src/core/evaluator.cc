#include "core/evaluator.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace coradd {

namespace {

std::string ObjectSignature(const DesignedObject& obj) {
  std::string s = obj.spec.fact_table + "|" + Join(obj.spec.columns, ",") +
                  "|" + Join(obj.spec.clustered_key, ",") + "|";
  s += obj.spec.is_base ? "B" : (obj.spec.is_fact_recluster ? "R" : "M");
  for (const auto& cm : obj.cms) {
    s += "|cm:" + Join(cm.key_columns, ",") +
         StrFormat("/w%lld/p%u",
                   static_cast<long long>(cm.bucketing.key_bucket_width),
                   cm.bucketing.clustered_bucket_pages);
  }
  for (const auto& b : obj.btree_columns) s += "|bt:" + b;
  return s;
}

}  // namespace

DesignEvaluator::DesignEvaluator(const DesignContext* context,
                                 size_t cache_capacity,
                                 ExecOptions exec_options)
    : context_(context),
      cache_capacity_(cache_capacity),
      exec_options_(exec_options) {
  CORADD_CHECK(context != nullptr);
}

WorkloadRunResult DesignEvaluator::Run(const DatabaseDesign& design,
                                       const Workload& workload,
                                       const CostModel& planner) {
  std::vector<WorkloadRunResult> out =
      RunMany({EvalJob{&design, &workload, &planner}});
  return std::move(out[0]);
}

std::vector<WorkloadRunResult> DesignEvaluator::RunMany(
    const std::vector<EvalJob>& jobs) {
  TRACE_SPAN("core.eval_many", {{"jobs", static_cast<int64_t>(jobs.size())}});
  static obs::Counter& jobs_run =
      *obs::MetricsRegistry::Global().GetCounter("core.eval_jobs");
  jobs_run.Add(jobs.size());
  // Chunk the sweep so at most ~cache_capacity_ distinct objects are
  // pinned at once — the memory bound the serial per-job path had.
  // Signatures are built once per (job, routed object), not per query.
  std::vector<std::vector<std::string>> job_sigs(jobs.size());
  for (size_t j = 0; j < jobs.size(); ++j) {
    CORADD_CHECK(jobs[j].design != nullptr && jobs[j].workload != nullptr);
    const DatabaseDesign& design = *jobs[j].design;
    std::vector<char> routed(design.objects.size(), 0);
    for (size_t qi = 0; qi < jobs[j].workload->queries.size(); ++qi) {
      const int oi = design.object_for_query[qi];
      CORADD_CHECK(oi >= 0 &&
                   static_cast<size_t>(oi) < design.objects.size());
      routed[static_cast<size_t>(oi)] = 1;
    }
    for (size_t oi = 0; oi < design.objects.size(); ++oi) {
      if (routed[oi]) {
        job_sigs[j].push_back(ObjectSignature(design.objects[oi]));
      }
    }
  }

  std::vector<WorkloadRunResult> out;
  out.reserve(jobs.size());
  const size_t cap = std::max<size_t>(cache_capacity_, 1);
  std::unordered_set<std::string> chunk_sigs;
  std::vector<EvalJob> chunk;
  const auto flush = [&] {
    if (chunk.empty()) return;
    for (auto& r : RunChunk(chunk)) out.push_back(std::move(r));
    chunk.clear();
    chunk_sigs.clear();
  };
  for (size_t j = 0; j < jobs.size(); ++j) {
    size_t added = 0;
    for (const auto& s : job_sigs[j]) {
      if (!chunk_sigs.count(s)) ++added;
    }
    if (!chunk.empty() && chunk_sigs.size() + added > cap) flush();
    chunk.push_back(jobs[j]);
    for (auto& s : job_sigs[j]) chunk_sigs.insert(std::move(s));
  }
  flush();
  return out;
}

std::vector<WorkloadRunResult> DesignEvaluator::RunChunk(
    const std::vector<EvalJob>& jobs) {
  // --- Resolve the object each (job, query) pair routes to. Distinct
  // objects (by structural signature) get one slot, in deterministic
  // first-appearance order; the slot's shared_ptr pins the object for the
  // whole run, so cache eviction can never pull it out from under a task.
  struct Slot {
    const DesignedObject* dobj = nullptr;
    std::string sig;
    std::shared_ptr<MaterializedObject> mat;
  };
  std::vector<Slot> slots;
  std::unordered_map<std::string, size_t> slot_of_sig;
  std::vector<std::vector<size_t>> slot_of(jobs.size());

  for (size_t j = 0; j < jobs.size(); ++j) {
    const EvalJob& job = jobs[j];
    CORADD_CHECK(job.design != nullptr && job.workload != nullptr &&
                 job.planner != nullptr);
    const size_t nq = job.workload->queries.size();
    // One signature per routed object of this job, built on first use.
    std::vector<std::string> sig_of_obj(job.design->objects.size());
    slot_of[j].resize(nq);
    for (size_t qi = 0; qi < nq; ++qi) {
      const int oi = job.design->object_for_query[qi];
      CORADD_CHECK(oi >= 0 &&
                   static_cast<size_t>(oi) < job.design->objects.size());
      const DesignedObject& dobj =
          job.design->objects[static_cast<size_t>(oi)];
      std::string& sig = sig_of_obj[static_cast<size_t>(oi)];
      if (sig.empty()) sig = ObjectSignature(dobj);
      auto [it, inserted] = slot_of_sig.emplace(sig, slots.size());
      if (inserted) {
        Slot s;
        s.dobj = &dobj;
        s.sig = sig;
        auto cit = cache_.find(sig);
        if (cit != cache_.end()) {
          s.mat = cit->second;
          ++cache_hits_;
        }
        slots.push_back(std::move(s));
      } else {
        // Would have been a cache hit in the serial per-query order too.
        ++cache_hits_;
      }
      slot_of[j][qi] = it->second;
    }
  }

  ThreadPool* pool = exec_options_.pool != nullptr ? exec_options_.pool
                                                   : &ThreadPool::Shared();

  // --- Materialize missing objects, concurrently (each is deterministic
  // and touches only shared read-only state: universe + stats).
  std::vector<size_t> missing;
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].mat == nullptr) missing.push_back(i);
  }
  const auto materialize = [&](size_t mi) {
    TRACE_SPAN("core.materialize");
    Slot& s = slots[missing[mi]];
    const Universe* universe =
        context_->UniverseForFact(s.dobj->spec.fact_table);
    CORADD_CHECK(universe != nullptr);
    Materializer materializer(universe, context_->stats_options().disk);
    s.mat = materializer.Materialize(s.dobj->spec, s.dobj->cms,
                                     s.dobj->btree_columns);
  };
  static obs::Counter& materializations =
      *obs::MetricsRegistry::Global().GetCounter("core.materializations");
  static obs::Counter& eval_cache_hits =
      *obs::MetricsRegistry::Global().GetCounter("core.eval_cache_hits");
  materializations.Add(missing.size());
  eval_cache_hits.Add(slots.size() - missing.size());
  if (missing.size() > 1 && pool->num_threads() > 1) {
    pool->ParallelFor(missing.size(), materialize);
  } else {
    for (size_t mi = 0; mi < missing.size(); ++mi) materialize(mi);
  }
  for (size_t i : missing) {
    while (cache_.size() >= cache_capacity_) {
      cache_.erase(cache_order_.front());
      cache_order_.pop_front();
    }
    cache_[slots[i].sig] = slots[i].mat;
    cache_order_.push_back(slots[i].sig);
  }

  // --- Execute every (job, query) pair across the pool. Per-task DiskModel
  // keeps I/O accounting identical to the serial loop (cold per query, §7);
  // records land in preassigned slots, so scheduling never reorders them.
  struct TaskRef {
    uint32_t job = 0;
    uint32_t qi = 0;
  };
  std::vector<TaskRef> tasks;
  std::vector<WorkloadRunResult> out(jobs.size());
  for (size_t j = 0; j < jobs.size(); ++j) {
    out[j].per_query.resize(jobs[j].workload->queries.size());
    for (size_t qi = 0; qi < jobs[j].workload->queries.size(); ++qi) {
      tasks.push_back(TaskRef{static_cast<uint32_t>(j),
                              static_cast<uint32_t>(qi)});
    }
  }
  const auto run_task = [&](size_t t) {
    const EvalJob& job = jobs[tasks[t].job];
    const size_t qi = tasks[t].qi;
    const Query& q = job.workload->queries[qi];
    const DesignedObject& dobj =
        job.design
            ->objects[static_cast<size_t>(job.design->object_for_query[qi])];
    const MaterializedObject* mat =
        slots[slot_of[tasks[t].job][qi]].mat.get();

    QueryExecutor executor(&context_->registry(), job.planner, exec_options_);
    DiskModel disk(context_->stats_options().disk);  // cold per query (§7)
    const QueryRunResult run = executor.Run(q, *mat, &disk);

    QueryRunRecord& rec = out[tasks[t].job].per_query[qi];
    rec.query_id = q.id;
    rec.object_name = dobj.spec.name;
    rec.real_seconds = run.seconds;
    rec.expected_seconds = job.planner->Seconds(q, dobj.spec);
    rec.aggregate = run.aggregate;
    rec.rows_output = run.rows_output;
    rec.fragments = run.fragments;
    rec.path = run.path;
  };
  if (tasks.size() > 1 && pool->num_threads() > 1) {
    pool->ParallelFor(tasks.size(), run_task);
  } else {
    for (size_t t = 0; t < tasks.size(); ++t) run_task(t);
  }

  // --- Reduce in fixed (job, query) order.
  for (size_t j = 0; j < jobs.size(); ++j) {
    for (size_t qi = 0; qi < out[j].per_query.size(); ++qi) {
      const QueryRunRecord& rec = out[j].per_query[qi];
      const double freq = jobs[j].workload->queries[qi].frequency;
      out[j].total_seconds += rec.real_seconds * freq;
      out[j].expected_seconds += rec.expected_seconds * freq;
    }
  }
  return out;
}

}  // namespace coradd
