#include "core/evaluator.h"

#include <algorithm>

#include "common/string_util.h"

namespace coradd {

namespace {

std::string ObjectSignature(const DesignedObject& obj) {
  std::string s = obj.spec.fact_table + "|" + Join(obj.spec.columns, ",") +
                  "|" + Join(obj.spec.clustered_key, ",") + "|";
  s += obj.spec.is_base ? "B" : (obj.spec.is_fact_recluster ? "R" : "M");
  for (const auto& cm : obj.cms) {
    s += "|cm:" + Join(cm.key_columns, ",") +
         StrFormat("/w%lld/p%u",
                   static_cast<long long>(cm.bucketing.key_bucket_width),
                   cm.bucketing.clustered_bucket_pages);
  }
  for (const auto& b : obj.btree_columns) s += "|bt:" + b;
  return s;
}

}  // namespace

DesignEvaluator::DesignEvaluator(const DesignContext* context,
                                 size_t cache_capacity)
    : context_(context), cache_capacity_(cache_capacity) {
  CORADD_CHECK(context != nullptr);
}

const MaterializedObject* DesignEvaluator::GetOrMaterialize(
    const DesignedObject& obj) {
  const std::string sig = ObjectSignature(obj);
  auto it = cache_.find(sig);
  if (it != cache_.end()) {
    ++cache_hits_;
    return it->second.get();
  }
  while (cache_.size() >= cache_capacity_) {
    cache_.erase(cache_order_.front());
    cache_order_.pop_front();
  }
  const Universe* universe = context_->UniverseForFact(obj.spec.fact_table);
  CORADD_CHECK(universe != nullptr);
  Materializer materializer(universe, context_->stats_options().disk);
  auto mat =
      materializer.Materialize(obj.spec, obj.cms, obj.btree_columns);
  const MaterializedObject* raw = mat.get();
  cache_[sig] = std::move(mat);
  cache_order_.push_back(sig);
  return raw;
}

WorkloadRunResult DesignEvaluator::Run(const DatabaseDesign& design,
                                       const Workload& workload,
                                       const CostModel& planner) {
  WorkloadRunResult out;
  QueryExecutor executor(&context_->registry(), &planner);
  for (size_t qi = 0; qi < workload.queries.size(); ++qi) {
    const Query& q = workload.queries[qi];
    const int oi = design.object_for_query[qi];
    CORADD_CHECK(oi >= 0 &&
                 static_cast<size_t>(oi) < design.objects.size());
    const DesignedObject& dobj = design.objects[static_cast<size_t>(oi)];
    const MaterializedObject* mat = GetOrMaterialize(dobj);

    DiskModel disk(context_->stats_options().disk);  // cold per query (§7)
    const QueryRunResult run = executor.Run(q, *mat, &disk);

    QueryRunRecord rec;
    rec.query_id = q.id;
    rec.object_name = dobj.spec.name;
    rec.real_seconds = run.seconds;
    rec.expected_seconds = planner.Seconds(q, dobj.spec);
    rec.aggregate = run.aggregate;
    rec.rows_output = run.rows_output;
    rec.fragments = run.fragments;
    rec.path = run.path;
    out.total_seconds += run.seconds * q.frequency;
    out.expected_seconds += rec.expected_seconds * q.frequency;
    out.per_query.push_back(std::move(rec));
  }
  return out;
}

}  // namespace coradd
