// DDL export: renders a DatabaseDesign as the SQL-ish script a DBA would
// hand to the target DBMS — CREATE MATERIALIZED VIEW with column lists and
// clustered-index clauses, CLUSTER statements for fact re-clusterings (plus
// the compensating PK secondary index, §4.3), and CREATE CORRELATION MAP
// pseudo-DDL for the CMs (or comments describing the rewrite predicates to
// install where CMs are emulated, A-1.3).
#pragma once

#include <string>

#include "core/design.h"
#include "workload/query.h"

namespace coradd {

/// Options for DDL rendering.
struct DdlOptions {
  /// Dialect header comment; purely cosmetic.
  std::string dialect = "generic";
  /// Emit the per-query routing plan as trailing comments.
  bool include_routing = true;
};

/// Renders the design as an executable-looking DDL script.
std::string ExportDdl(const DatabaseDesign& design, const Workload& workload,
                      DdlOptions options = {});

}  // namespace coradd
