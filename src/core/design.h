// A complete database design: the chosen physical objects, their secondary
// structures, the per-query routing, and the designer's own cost estimate.
#pragma once

#include <string>
#include <vector>

#include "cm/cm_designer.h"
#include "cost/mv_spec.h"

namespace coradd {

/// One designed object with its secondary structures.
struct DesignedObject {
  MvSpec spec;
  std::vector<CmSpec> cms;                 ///< CORADD-style secondary access.
  std::vector<std::string> btree_columns;  ///< Commercial-style dense indexes.
};

/// Output of any designer.
struct DatabaseDesign {
  std::string designer;
  uint64_t budget_bytes = 0;
  std::vector<DesignedObject> objects;
  /// Index into `objects` per workload query (routing by expected runtime).
  std::vector<int> object_for_query;
  /// Designer's own estimate of the weighted workload runtime.
  double expected_seconds = 0.0;
  /// Budget charge of the chosen objects (excl. the CM set-aside pool).
  uint64_t object_bytes = 0;
  /// Designer wall-clock time.
  double design_seconds = 0.0;

  std::string ToString() const;
};

}  // namespace coradd
