#include "core/candgen_cache.h"

#include <chrono>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace coradd {

namespace {
double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AppendPredicate(std::string* s, const Predicate& p) {
  *s += p.column;
  switch (p.type) {
    case PredicateType::kEquality:
      *s += StrFormat("=%lld", static_cast<long long>(p.value));
      break;
    case PredicateType::kRange:
      *s += StrFormat("@[%lld,%lld]", static_cast<long long>(p.lo),
                      static_cast<long long>(p.hi));
      break;
    case PredicateType::kIn:
      *s += "#(";
      for (int64_t v : p.in_values) {
        *s += StrFormat("%lld,", static_cast<long long>(v));
      }
      *s += ')';
      break;
  }
  *s += ';';
}
}  // namespace

std::string CandidateGenKey(const Workload& workload,
                            const std::string& model_id,
                            const std::string& options_signature,
                            uint64_t stats_epoch) {
  std::string s = model_id + "|" + options_signature + "|" +
                  StrFormat("e%llu", static_cast<unsigned long long>(
                                         stats_epoch)) +
                  "|" + workload.name + "|";
  for (const auto& q : workload.queries) {
    s += q.id + "," + q.fact_table + StrFormat(",f=%.17g:", q.frequency);
    for (const auto& p : q.predicates) AppendPredicate(&s, p);
    s += "gb:";
    for (const auto& g : q.group_by) {
      s += g;
      s += ',';
    }
    s += "ag:";
    for (const auto& a : q.aggregates) {
      s += a.col_a + "*" + a.col_b + ",";
    }
    s += '|';
  }
  return s;
}

std::shared_ptr<const CandidateSet> CandidateGenCache::GetOrGenerate(
    const std::string& key,
    const std::function<CandidateSet()>& generate) {
  TRACE_SPAN("candgen.cache_lookup");
  static obs::Counter& reg_hits =
      *obs::MetricsRegistry::Global().GetCounter("candgen.cache_hits");
  static obs::Counter& reg_misses =
      *obs::MetricsRegistry::Global().GetCounter("candgen.cache_misses");
  std::promise<std::shared_ptr<const CandidateSet>> promise;
  std::shared_future<std::shared_ptr<const CandidateSet>> future;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      future = it->second;
    } else {
      ++misses_;
      owner = true;
      future = promise.get_future().share();
      entries_.emplace(key, future);
    }
  }
  if (owner) {
    reg_misses.Add(1);
  } else {
    reg_hits.Add(1);
  }
  if (owner) {
    // Generate outside the lock: other keys stay available, and same-key
    // callers block on the shared future. A waiter that is itself a pool
    // worker is safe — the generator's nested ParallelFor has its calling
    // thread participate, so the pool cannot starve.
    const double t0 = Now();
    std::shared_ptr<const CandidateSet> set;
    try {
      set = std::make_shared<const CandidateSet>(generate());
    } catch (...) {
      // Drop the entry so a transient failure (e.g. bad_alloc) is not a
      // permanently poisoned key; current waiters see the exception,
      // future callers regenerate.
      {
        std::lock_guard<std::mutex> lock(mu_);
        entries_.erase(key);
      }
      promise.set_exception(std::current_exception());
      return future.get();
    }
    const double wall = Now() - t0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      generation_seconds_ += wall;
    }
    promise.set_value(std::move(set));
  }
  return future.get();
}

CandGenStats CandidateGenCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CandGenStats out;
  out.cache_hits = hits_;
  out.cache_misses = misses_;
  out.wall_seconds = generation_seconds_;
  return out;
}

size_t CandidateGenCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace coradd
