#include "core/ddl_export.h"

#include "common/string_util.h"

namespace coradd {

std::string ExportDdl(const DatabaseDesign& design, const Workload& workload,
                      DdlOptions options) {
  std::string out;
  out += StrFormat("-- CORADD design (%s dialect)\n", options.dialect.c_str());
  out += StrFormat("-- budget: %s, charged: %s, expected workload: %.3f s\n\n",
                   HumanBytes(design.budget_bytes).c_str(),
                   HumanBytes(design.object_bytes).c_str(),
                   design.expected_seconds);

  for (const auto& obj : design.objects) {
    const MvSpec& spec = obj.spec;
    if (spec.is_base) {
      out += StrFormat("-- %s: base table kept clustered on its primary key"
                       " (%s)\n\n",
                       spec.fact_table.c_str(),
                       Join(spec.clustered_key, ", ").c_str());
    } else if (spec.is_fact_recluster) {
      out += StrFormat("CLUSTER TABLE %s BY (%s);\n", spec.fact_table.c_str(),
                       Join(spec.clustered_key, ", ").c_str());
      out += StrFormat(
          "CREATE INDEX %s_pk_idx ON %s  -- compensating PK index (Sec 4.3)\n"
          "  (primary key columns);\n",
          spec.fact_table.c_str(), spec.fact_table.c_str());
    } else {
      out += StrFormat("CREATE MATERIALIZED VIEW %s AS\n  SELECT %s\n"
                       "  FROM %s JOIN <dimensions>\n",
                       spec.name.c_str(), Join(spec.columns, ", ").c_str(),
                       spec.fact_table.c_str());
      out += StrFormat("  CLUSTER BY (%s);\n",
                       Join(spec.clustered_key, ", ").c_str());
    }
    for (const auto& cm : obj.cms) {
      out += StrFormat(
          "CREATE CORRELATION MAP ON %s (%s)\n"
          "  -- key bucket width %lld, %u pages/bucket, ~%s"
          " (emulate via A-1.3 query rewriting if unsupported)\n",
          (spec.is_fact_recluster ? spec.fact_table : spec.name).c_str(),
          Join(cm.key_columns, ", ").c_str(),
          static_cast<long long>(cm.bucketing.key_bucket_width),
          cm.bucketing.clustered_bucket_pages,
          HumanBytes(cm.est_size_bytes).c_str());
    }
    for (const auto& col : obj.btree_columns) {
      out += StrFormat("CREATE INDEX ON %s (%s);\n",
                       (spec.is_fact_recluster ? spec.fact_table : spec.name)
                           .c_str(),
                       col.c_str());
    }
    out += "\n";
  }

  if (options.include_routing) {
    out += "-- query routing (expected best object per query):\n";
    for (size_t q = 0; q < workload.queries.size(); ++q) {
      const int oi = design.object_for_query[q];
      out += StrFormat("--   %-8s -> %s\n", workload.queries[q].id.c_str(),
                       oi >= 0 ? design.objects[static_cast<size_t>(oi)]
                                     .spec.name.c_str()
                               : "(none)");
    }
  }
  return out;
}

}  // namespace coradd
