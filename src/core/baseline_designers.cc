#include "core/baseline_designers.h"

#include <algorithm>
#include <chrono>

#include "cm/cm_designer.h"
#include "ilp/branch_and_bound.h"
#include "ilp/domination.h"
#include "ilp/problem_builder.h"
#include "mv/fk_clustering.h"
#include "mv/index_merging.h"

namespace coradd {

namespace {
double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Routing + packaging shared by the baselines.
DatabaseDesign PackageDesign(const char* name, const Workload& workload,
                             const BuiltProblem& built,
                             const SelectionResult& result,
                             uint64_t budget_bytes) {
  DatabaseDesign design;
  design.designer = name;
  design.budget_bytes = budget_bytes;
  design.expected_seconds = result.expected_cost;
  design.object_bytes = result.used_bytes;
  std::vector<int> object_index(built.specs.size(), -1);
  for (int m : result.chosen) {
    DesignedObject obj;
    obj.spec = built.specs[static_cast<size_t>(m)];
    object_index[static_cast<size_t>(m)] =
        static_cast<int>(design.objects.size());
    design.objects.push_back(std::move(obj));
  }
  design.object_for_query.resize(workload.queries.size(), -1);
  for (size_t q = 0; q < result.best_for_query.size(); ++q) {
    const int m = result.best_for_query[q];
    if (m >= 0) {
      design.object_for_query[q] = object_index[static_cast<size_t>(m)];
    }
  }
  return design;
}

}  // namespace

NaiveDesigner::NaiveDesigner(const DesignContext* context,
                             CorrelationCostModelOptions model_options)
    : context_(context) {
  CORADD_CHECK(context != nullptr);
  model_ = std::make_unique<CorrelationCostModel>(&context_->registry(),
                                                  model_options);
  IndexMergingOptions merge_options;
  merge_options.t = 1;  // dedicated designs only
  dedicated_ = std::make_unique<ClusteredIndexDesigner>(
      &context_->registry(), model_.get(), merge_options);
}

CandGenStats NaiveDesigner::candgen_stats() const {
  CandGenStats out;
  out.trials_priced = dedicated_->trials_priced();
  out.trials_pruned = dedicated_->trials_pruned();
  return out;
}

DatabaseDesign NaiveDesigner::Design(const Workload& workload,
                                     uint64_t budget_bytes) const {
  const double t0 = Now();
  // Fact re-clusterings + one dedicated key per query. The enumerated specs
  // depend only on the statistics (dedicated keys come from predicate types
  // and selectivities, not the cost model), so the set is cached under a
  // designer tag and shared across budgets and repeat calls.
  const std::shared_ptr<const CandidateSet> cached =
      context_->candgen_cache().GetOrGenerate(
          CandidateGenKey(workload, "naive-dedicated-t1", "",
                          context_->stats_epoch()),
          [&] {
            CandidateSet set;
            for (const auto& fact : workload.FactTables()) {
              const UniverseStats* stats = context_->StatsForFact(fact);
              const FactTableInfo* info =
                  context_->catalog().GetFactInfo(fact);
              CORADD_CHECK(stats != nullptr && info != nullptr);
              for (auto& spec : FkReclusterCandidates(*info, *stats,
                                                      workload)) {
                set.mvs.push_back(std::move(spec));
              }
              for (size_t qi = 0; qi < workload.queries.size(); ++qi) {
                if (workload.queries[qi].fact_table != fact) continue;
                for (auto& spec : dedicated_->DesignGroup(
                         workload, QueryGroup{static_cast<int>(qi)}, fact)) {
                  set.mvs.push_back(std::move(spec));
                }
              }
            }
            return set;
          });
  std::vector<MvSpec> candidates;
  candidates.reserve(cached->mvs.size());
  for (const auto& spec : cached->mvs) {
    candidates.push_back(spec);
    if (!candidates.back().is_fact_recluster) {
      candidates.back().name = "naive_" + candidates.back().name;
    }
  }

  BuiltProblem built =
      BuildSelectionProblem(workload, std::move(candidates), *model_,
                            context_->registry(), budget_bytes);
  // "Picks as many candidates as possible": greedy by benefit density.
  const SelectionResult result = SolveSelectionGreedyDensity(built.problem);
  DatabaseDesign design =
      PackageDesign("Naive", workload, built, result, budget_bytes);

  // Dedicated MVs answer their query through the clustered index, but fact
  // re-clusterings still need CMs to reach dimension predicates.
  CmDesigner cm_designer(&context_->registry(), model_.get());
  for (size_t o = 0; o < design.objects.size(); ++o) {
    if (!design.objects[o].spec.is_fact_recluster) continue;
    std::vector<const Query*> served;
    for (size_t q = 0; q < design.object_for_query.size(); ++q) {
      if (design.object_for_query[q] == static_cast<int>(o)) {
        served.push_back(&workload.queries[q]);
      }
    }
    design.objects[o].cms = cm_designer.Design(design.objects[o].spec, served);
  }
  design.design_seconds = Now() - t0;
  return design;
}

CommercialDesigner::CommercialDesigner(const DesignContext* context,
                                       GreedyMkOptions greedy_options)
    : context_(context), greedy_options_(greedy_options) {
  CORADD_CHECK(context != nullptr);
  model_ = std::make_unique<ObliviousCostModel>(&context_->registry());
  CandidateGeneratorOptions options;
  generator_ = std::make_unique<MvCandidateGenerator>(
      &context_->catalog(), &context_->registry(), model_.get(), options);
}

CandGenStats CommercialDesigner::candgen_stats() const {
  return generator_->stats();
}

DatabaseDesign CommercialDesigner::Design(const Workload& workload,
                                          uint64_t budget_bytes) const {
  const double t0 = Now();
  const std::shared_ptr<const CandidateSet> candidates =
      context_->candgen_cache().GetOrGenerate(
          CandidateGenKey(workload, model_->CacheId(),
                          CandidateGeneratorOptionsSignature(
                              generator_->options()),
                          context_->stats_epoch()),
          [&] { return generator_->Generate(workload); });
  BuiltProblem built =
      BuildSelectionProblem(workload, std::vector<MvSpec>(candidates->mvs),
                            *model_, context_->registry(), budget_bytes);
  {
    const std::vector<bool> dominated = DominatedMask(built.problem);
    std::vector<int> old_index;
    SelectionProblem compact =
        CompactProblem(built.problem, dominated, &old_index);
    std::vector<MvSpec> kept;
    for (int oi : old_index) {
      kept.push_back(std::move(built.specs[static_cast<size_t>(oi)]));
    }
    built.problem = std::move(compact);
    built.specs = std::move(kept);
  }

  const SelectionResult result =
      SolveSelectionGreedyMk(built.problem, greedy_options_);
  DatabaseDesign design =
      PackageDesign("Commercial", workload, built, result, budget_bytes);

  // Dense B+Tree secondary indexes on predicated stored columns of each
  // object, added while they fit the leftover budget.
  uint64_t used = design.object_bytes;
  for (size_t o = 0; o < design.objects.size(); ++o) {
    DesignedObject& obj = design.objects[o];
    const UniverseStats* stats = context_->StatsForFact(obj.spec.fact_table);
    for (size_t q = 0; q < design.object_for_query.size(); ++q) {
      if (design.object_for_query[q] != static_cast<int>(o)) continue;
      for (const auto& col : workload.queries[q].PredicateColumns()) {
        // Only stored columns can carry a dense index.
        bool stored = std::find(obj.spec.columns.begin(),
                                obj.spec.columns.end(),
                                col) != obj.spec.columns.end();
        if (!stored) continue;
        if (!obj.spec.clustered_key.empty() &&
            obj.spec.clustered_key[0] == col) {
          continue;  // leading clustered attribute needs no secondary index
        }
        if (std::find(obj.btree_columns.begin(), obj.btree_columns.end(),
                      col) != obj.btree_columns.end()) {
          continue;
        }
        const int ucol = stats->universe().ColumnIndex(col);
        const uint32_t key_bytes =
            stats->universe().Column(static_cast<size_t>(ucol)).byte_size;
        const BTreeShape shape =
            ComputeBTreeShape(stats->num_rows(), key_bytes + 8, key_bytes,
                              stats->options().disk.page_size_bytes);
        const uint64_t bytes =
            shape.TotalPages() * stats->options().disk.page_size_bytes;
        if (used + bytes > budget_bytes) continue;
        used += bytes;
        obj.btree_columns.push_back(col);
      }
    }
  }
  design.object_bytes = used;
  design.design_seconds = Now() - t0;
  return design;
}

}  // namespace coradd
