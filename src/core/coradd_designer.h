// The CORADD designer (Fig 1): correlation statistics -> MV candidate
// generation (query grouping + clustered-index merging + FK clustering) ->
// ILP selection with dominated-candidate pruning -> ILP feedback ->
// CM design on the chosen objects.
#pragma once

#include <memory>

#include "cm/cm_designer.h"
#include "core/context.h"
#include "core/design.h"
#include "cost/correlation_cost_model.h"
#include "feedback/ilp_feedback.h"
#include "ilp/domination.h"
#include "mv/candidate_generator.h"

namespace coradd {

/// End-to-end CORADD options.
struct CoraddOptions {
  CandidateGeneratorOptions candidates;
  FeedbackOptions feedback;
  BranchAndBoundOptions solver;
  CmDesignerOptions cm;
  CorrelationCostModelOptions cost_model;
  bool use_feedback = true;
  bool prune_dominated = true;
};

/// Designer statistics for the §7.2-style runtime breakdown.
struct CoraddRunInfo {
  size_t candidates_enumerated = 0;
  size_t candidates_after_domination = 0;
  size_t feedback_candidates_added = 0;
  int feedback_iterations = 0;
  double candgen_seconds = 0.0;
  double solve_seconds = 0.0;
};

/// The CORADD automatic database designer.
class CoraddDesigner {
 public:
  CoraddDesigner(const DesignContext* context, CoraddOptions options = {});

  /// Produces the design for `workload` within `budget_bytes`.
  DatabaseDesign Design(const Workload& workload, uint64_t budget_bytes);

  /// Run statistics of the last Design() call.
  const CoraddRunInfo& last_run() const { return last_run_; }
  const CorrelationCostModel& model() const { return *model_; }

 private:
  const DesignContext* context_;
  CoraddOptions options_;
  std::unique_ptr<CorrelationCostModel> model_;
  std::unique_ptr<MvCandidateGenerator> generator_;
  std::unique_ptr<CmDesigner> cm_designer_;
  CoraddRunInfo last_run_;
};

}  // namespace coradd
