// The CORADD designer (Fig 1): correlation statistics -> MV candidate
// generation (query grouping + clustered-index merging + FK clustering) ->
// ILP selection with dominated-candidate pruning -> ILP feedback ->
// CM design on the chosen objects.
//
// Design() is const and thread-safe: the cost model's memo caches are
// internally synchronized and everything else is read-only, so bench
// sweeps may design at several budgets concurrently. DesignMany() runs a
// warm-started sequential chain over a budget grid instead: candidates are
// generated, priced, and domination-pruned once, and every budget point
// warm-starts its solves from the previous point's solution.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "cm/cm_designer.h"
#include "core/context.h"
#include "core/design.h"
#include "cost/correlation_cost_model.h"
#include "feedback/ilp_feedback.h"
#include "ilp/domination.h"
#include "mv/candidate_generator.h"
#include "solver/warm_start.h"

namespace coradd {

/// End-to-end CORADD options.
struct CoraddOptions {
  CandidateGeneratorOptions candidates;
  FeedbackOptions feedback;
  SolverOptions solver;
  CmDesignerOptions cm;
  CorrelationCostModelOptions cost_model;
  bool use_feedback = true;
  bool prune_dominated = true;
};

/// Designer statistics for the §7.2-style runtime breakdown.
struct CoraddRunInfo {
  size_t candidates_enumerated = 0;
  size_t candidates_after_domination = 0;
  size_t feedback_candidates_added = 0;
  int feedback_iterations = 0;
  double candgen_seconds = 0.0;  ///< §4 enumeration (grouping, merging)
  double pricing_seconds = 0.0;  ///< cost-table build + domination pruning
  double solve_seconds = 0.0;
  SolverStats solver_stats;  ///< Accumulated over every solve of the call.
};

/// The CORADD automatic database designer.
class CoraddDesigner {
 public:
  CoraddDesigner(const DesignContext* context, CoraddOptions options = {});

  /// Produces the design for `workload` within `budget_bytes`. Thread-safe;
  /// concurrent calls share only the memoized cost model.
  DatabaseDesign Design(const Workload& workload, uint64_t budget_bytes) const;

  /// As above, with explicit outputs: `info` (optional) receives the run
  /// statistics without going through last_run(); `warm` (optional) seeds
  /// the solves from the session's recorded solution and records this
  /// design's solution back into it.
  DatabaseDesign Design(const Workload& workload, uint64_t budget_bytes,
                        CoraddRunInfo* info, WarmStartSession* warm) const;

  /// Warm-started sweep over a budget grid (ascending or any order):
  /// candidate generation, pricing, and domination pruning are shared
  /// across all points, and each point's solves are warm-started from the
  /// previous point. Produces the same designs as per-budget Design()
  /// calls whenever the solves prove optimality. `infos`, if non-null, is
  /// filled with one entry per budget.
  std::vector<DatabaseDesign> DesignMany(
      const Workload& workload, const std::vector<uint64_t>& budgets,
      std::vector<CoraddRunInfo>* infos = nullptr) const;

  /// Run statistics of the most recently *finished* Design() call (under
  /// concurrent designing: whichever call finished last). Returns a copy
  /// taken under the same lock the writers hold, so it is safe to call
  /// while other threads design.
  CoraddRunInfo last_run() const {
    std::lock_guard<std::mutex> lock(last_run_mu_);
    return last_run_;
  }
  const CorrelationCostModel& model() const { return *model_; }

  /// Generation-work counters of this designer's generator (trials priced
  /// and pruned across initial generation and feedback re-entries).
  CandGenStats candgen_stats() const { return generator_->stats(); }

 private:
  /// §4 + §5.3: generate, price, and (optionally) domination-prune.
  BuiltProblem BuildPrunedProblem(const Workload& workload,
                                  uint64_t budget_bytes,
                                  CoraddRunInfo* info) const;

  /// §5 + §6 + A-1: solve (with feedback), design CMs, package.
  DatabaseDesign SolveAndPackage(const Workload& workload,
                                 BuiltProblem built, uint64_t budget_bytes,
                                 CoraddRunInfo* info, WarmStartSession* warm,
                                 GroupDesignMemo* memo) const;

  const DesignContext* context_;
  CoraddOptions options_;
  std::unique_ptr<CorrelationCostModel> model_;
  std::unique_ptr<MvCandidateGenerator> generator_;
  std::unique_ptr<CmDesigner> cm_designer_;
  mutable std::mutex last_run_mu_;
  mutable CoraddRunInfo last_run_;
};

}  // namespace coradd
