#include "core/coradd_designer.h"

#include <chrono>

#include "common/string_util.h"

namespace coradd {

namespace {
double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

std::string DatabaseDesign::ToString() const {
  return StrFormat("%s{objects=%zu, %s of %s, expected=%.2fs}",
                   designer.c_str(), objects.size(),
                   HumanBytes(object_bytes).c_str(),
                   HumanBytes(budget_bytes).c_str(), expected_seconds);
}

CoraddDesigner::CoraddDesigner(const DesignContext* context,
                               CoraddOptions options)
    : context_(context), options_(options) {
  CORADD_CHECK(context != nullptr);
  model_ = std::make_unique<CorrelationCostModel>(&context_->registry(),
                                                  options_.cost_model);
  generator_ = std::make_unique<MvCandidateGenerator>(
      &context_->catalog(), &context_->registry(), model_.get(),
      options_.candidates);
  cm_designer_ = std::make_unique<CmDesigner>(&context_->registry(),
                                              model_.get(), options_.cm);
}

BuiltProblem CoraddDesigner::BuildPrunedProblem(const Workload& workload,
                                                uint64_t budget_bytes,
                                                CoraddRunInfo* info) const {
  // --- §4: candidate generation, shared across designers and sweeps
  // through the context's CandidateGenCache (one pass per distinct key;
  // repeat Design() calls and budget grids hit).
  const double t0 = Now();
  const std::shared_ptr<const CandidateSet> candidates =
      context_->candgen_cache().GetOrGenerate(
          CandidateGenKey(workload, model_->CacheId(),
                          CandidateGeneratorOptionsSignature(
                              generator_->options()),
                          context_->stats_epoch()),
          [&] { return generator_->Generate(workload); });
  info->candidates_enumerated = candidates->mvs.size();
  info->candgen_seconds += Now() - t0;

  // --- §5: build + prune.
  const double t1 = Now();
  BuiltProblem built =
      BuildSelectionProblem(workload, std::vector<MvSpec>(candidates->mvs),
                            *model_, context_->registry(), budget_bytes);
  if (options_.prune_dominated) PruneDominated(&built);
  info->candidates_after_domination = built.specs.size();
  info->pricing_seconds += Now() - t1;
  return built;
}

DatabaseDesign CoraddDesigner::SolveAndPackage(const Workload& workload,
                                               BuiltProblem built,
                                               uint64_t budget_bytes,
                                               CoraddRunInfo* info,
                                               WarmStartSession* warm,
                                               GroupDesignMemo* memo) const {
  const double t_solve = Now();
  std::vector<int> warm_chosen;
  if (warm != nullptr) warm_chosen = warm->WarmChosen(built);

  SelectionResult result;
  BuiltProblem final_problem;
  if (options_.use_feedback) {
    // --- §6: ILP feedback.
    FeedbackOutcome fb = RunIlpFeedback(
        workload, *generator_, *model_, context_->registry(),
        std::move(built), budget_bytes, options_.feedback, options_.solver,
        warm_chosen.empty() ? nullptr : &warm_chosen, memo);
    result = std::move(fb.result);
    final_problem = std::move(fb.problem);
    info->feedback_candidates_added = fb.candidates_added;
    info->feedback_iterations = fb.iterations;
    info->solver_stats.Accumulate(fb.solver_stats);
  } else {
    const SolverEngine engine(options_.solver);
    result = engine.Solve(built.problem, &info->solver_stats,
                          warm_chosen.empty() ? nullptr : &warm_chosen);
    final_problem = std::move(built);
  }
  if (warm != nullptr) warm->Record(final_problem, result);
  info->solve_seconds += Now() - t_solve;

  // --- A-1: CMs on the chosen objects.
  DatabaseDesign design;
  design.designer = "CORADD";
  design.budget_bytes = budget_bytes;
  design.expected_seconds = result.expected_cost;
  design.object_bytes = result.used_bytes;
  std::vector<int> object_index(final_problem.specs.size(), -1);
  for (int m : result.chosen) {
    const MvSpec& spec = final_problem.specs[static_cast<size_t>(m)];
    // Queries routed to this object.
    std::vector<const Query*> served;
    for (size_t q = 0; q < result.best_for_query.size(); ++q) {
      if (result.best_for_query[q] == m) {
        served.push_back(&workload.queries[q]);
      }
    }
    DesignedObject obj;
    obj.spec = spec;
    obj.cms = cm_designer_->Design(spec, served);
    object_index[static_cast<size_t>(m)] =
        static_cast<int>(design.objects.size());
    design.objects.push_back(std::move(obj));
  }
  design.object_for_query.resize(workload.queries.size(), -1);
  for (size_t q = 0; q < result.best_for_query.size(); ++q) {
    const int m = result.best_for_query[q];
    if (m >= 0) {
      design.object_for_query[q] = object_index[static_cast<size_t>(m)];
    }
  }
  return design;
}

DatabaseDesign CoraddDesigner::Design(const Workload& workload,
                                      uint64_t budget_bytes) const {
  return Design(workload, budget_bytes, nullptr, nullptr);
}

DatabaseDesign CoraddDesigner::Design(const Workload& workload,
                                      uint64_t budget_bytes,
                                      CoraddRunInfo* info,
                                      WarmStartSession* warm) const {
  CoraddRunInfo run;
  const double t_start = Now();
  BuiltProblem built = BuildPrunedProblem(workload, budget_bytes, &run);
  GroupDesignMemo memo;  // shared across this call's feedback iterations
  DatabaseDesign design = SolveAndPackage(workload, std::move(built),
                                          budget_bytes, &run, warm, &memo);
  design.design_seconds = Now() - t_start;
  if (info != nullptr) *info = run;
  {
    std::lock_guard<std::mutex> lock(last_run_mu_);
    last_run_ = std::move(run);
  }
  return design;
}

std::vector<DatabaseDesign> CoraddDesigner::DesignMany(
    const Workload& workload, const std::vector<uint64_t>& budgets,
    std::vector<CoraddRunInfo>* infos) const {
  std::vector<DatabaseDesign> out;
  if (infos != nullptr) infos->clear();
  if (budgets.empty()) return out;

  // Candidates, prices, and the domination mask do not depend on the
  // budget, so the whole grid shares one pruned problem.
  CoraddRunInfo base_info;
  const double t_shared = Now();
  const BuiltProblem base =
      BuildPrunedProblem(workload, budgets.front(), &base_info);
  const double shared_seconds = Now() - t_shared;

  WarmStartSession warm;
  GroupDesignMemo memo;  // group designs recur budget to budget
  for (uint64_t budget : budgets) {
    CoraddRunInfo run = base_info;  // carries the shared candgen/pricing time
    const double t_budget = Now();
    BuiltProblem per_budget = base;  // feedback grows a private copy
    per_budget.problem.budget_bytes = budget;
    DatabaseDesign design = SolveAndPackage(workload, std::move(per_budget),
                                            budget, &run, &warm, &memo);
    // Attribute the shared candgen/pricing evenly across the grid.
    design.design_seconds = (Now() - t_budget) +
                            shared_seconds / static_cast<double>(budgets.size());
    out.push_back(std::move(design));
    if (infos != nullptr) infos->push_back(run);
    {
      std::lock_guard<std::mutex> lock(last_run_mu_);
      last_run_ = std::move(run);
    }
  }
  return out;
}

}  // namespace coradd
