#include "core/coradd_designer.h"

#include <chrono>

#include "common/string_util.h"

namespace coradd {

namespace {
double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

std::string DatabaseDesign::ToString() const {
  return StrFormat("%s{objects=%zu, %s of %s, expected=%.2fs}",
                   designer.c_str(), objects.size(),
                   HumanBytes(object_bytes).c_str(),
                   HumanBytes(budget_bytes).c_str(), expected_seconds);
}

CoraddDesigner::CoraddDesigner(const DesignContext* context,
                               CoraddOptions options)
    : context_(context), options_(options) {
  CORADD_CHECK(context != nullptr);
  model_ = std::make_unique<CorrelationCostModel>(&context_->registry(),
                                                  options_.cost_model);
  generator_ = std::make_unique<MvCandidateGenerator>(
      &context_->catalog(), &context_->registry(), model_.get(),
      options_.candidates);
  cm_designer_ = std::make_unique<CmDesigner>(&context_->registry(),
                                              model_.get(), options_.cm);
}

DatabaseDesign CoraddDesigner::Design(const Workload& workload,
                                      uint64_t budget_bytes) {
  last_run_ = CoraddRunInfo{};
  const double t_start = Now();

  // --- §4: candidate generation.
  CandidateSet candidates = generator_->Generate(workload);
  last_run_.candidates_enumerated = candidates.mvs.size();
  last_run_.candgen_seconds = Now() - t_start;

  // --- §5: build + prune + solve.
  const double t_solve = Now();
  BuiltProblem built =
      BuildSelectionProblem(workload, std::move(candidates.mvs), *model_,
                            context_->registry(), budget_bytes);
  if (options_.prune_dominated) {
    const std::vector<bool> dominated = DominatedMask(built.problem);
    std::vector<int> old_index;
    SelectionProblem compact =
        CompactProblem(built.problem, dominated, &old_index);
    std::vector<MvSpec> kept;
    kept.reserve(old_index.size());
    for (int oi : old_index) {
      kept.push_back(std::move(built.specs[static_cast<size_t>(oi)]));
    }
    built.problem = std::move(compact);
    built.specs = std::move(kept);
  }
  last_run_.candidates_after_domination = built.specs.size();

  SelectionResult result;
  BuiltProblem final_problem;
  if (options_.use_feedback) {
    // --- §6: ILP feedback.
    FeedbackOutcome fb = RunIlpFeedback(
        workload, *generator_, *model_, context_->registry(),
        std::move(built), budget_bytes, options_.feedback, options_.solver);
    result = std::move(fb.result);
    final_problem = std::move(fb.problem);
    last_run_.feedback_candidates_added = fb.candidates_added;
    last_run_.feedback_iterations = fb.iterations;
  } else {
    result = SolveSelectionExact(built.problem, options_.solver);
    final_problem = std::move(built);
  }
  last_run_.solve_seconds = Now() - t_solve;

  // --- A-1: CMs on the chosen objects.
  DatabaseDesign design;
  design.designer = "CORADD";
  design.budget_bytes = budget_bytes;
  design.expected_seconds = result.expected_cost;
  design.object_bytes = result.used_bytes;
  std::vector<int> object_index(final_problem.specs.size(), -1);
  for (int m : result.chosen) {
    const MvSpec& spec = final_problem.specs[static_cast<size_t>(m)];
    // Queries routed to this object.
    std::vector<const Query*> served;
    for (size_t q = 0; q < result.best_for_query.size(); ++q) {
      if (result.best_for_query[q] == m) {
        served.push_back(&workload.queries[q]);
      }
    }
    DesignedObject obj;
    obj.spec = spec;
    obj.cms = cm_designer_->Design(spec, served);
    object_index[static_cast<size_t>(m)] =
        static_cast<int>(design.objects.size());
    design.objects.push_back(std::move(obj));
  }
  design.object_for_query.resize(workload.queries.size(), -1);
  for (size_t q = 0; q < result.best_for_query.size(); ++q) {
    const int m = result.best_for_query[q];
    if (m >= 0) {
      design.object_for_query[q] = object_index[static_cast<size_t>(m)];
    }
  }
  design.design_seconds = Now() - t_start;
  return design;
}

}  // namespace coradd
