#include "core/context.h"

namespace coradd {

DesignContext::DesignContext(const Catalog* catalog, const Workload& workload,
                             StatsOptions stats_options)
    : catalog_(catalog), stats_options_(stats_options) {
  CORADD_CHECK(catalog != nullptr);
  for (const auto& fact : workload.FactTables()) {
    const FactTableInfo* info = catalog_->GetFactInfo(fact);
    CORADD_CHECK(info != nullptr);
    auto universe = std::make_unique<Universe>(*catalog_, *info);
    auto stats = std::make_unique<UniverseStats>(universe.get(), stats_options_);
    registry_.Register(stats.get());
    universes_.push_back(std::move(universe));
    stats_.push_back(std::move(stats));
  }
}

const Universe* DesignContext::UniverseForFact(const std::string& fact) const {
  for (const auto& u : universes_) {
    if (u->fact_name() == fact) return u.get();
  }
  return nullptr;
}

}  // namespace coradd
