#include "core/context.h"

namespace coradd {

DesignContext::DesignContext(const Catalog* catalog, const Workload& workload,
                             StatsOptions stats_options)
    : catalog_(catalog), stats_options_(stats_options) {
  CORADD_CHECK(catalog != nullptr);
  for (const auto& fact : workload.FactTables()) {
    const FactTableInfo* info = catalog_->GetFactInfo(fact);
    CORADD_CHECK(info != nullptr);
    auto universe = std::make_unique<Universe>(*catalog_, *info);
    auto stats = std::make_unique<UniverseStats>(universe.get(), stats_options_);
    registry_.Register(stats.get());
    universes_.push_back(std::move(universe));
    stats_.push_back(std::move(stats));
    mined_.push_back(nullptr);
  }
}

const DiscoveredDependencies* DesignContext::MineDependencies(
    const std::string& fact, const DependencyMiningConfig& config) {
  for (size_t i = 0; i < universes_.size(); ++i) {
    if (universes_[i]->fact_name() != fact) continue;
    const MinerInput input =
        config.full_scan
            ? MinerInput::FromUniverse(*universes_[i])
            : MinerInput::FromSynopsis(*universes_[i], stats_[i]->synopsis());
    DependencyMiner miner(config.miner);
    mined_[i] = std::make_unique<DiscoveredDependencies>(miner.Mine(input));
    if (!config.full_scan && config.verify_exact_fds) {
      // Gather only the columns the exact FDs touch — not a full universe
      // copy.
      const std::vector<int> cols = DependencyMiner::ColumnsToVerify(*mined_[i]);
      if (!cols.empty()) {
        const MinerInput full =
            MinerInput::FromUniverseColumns(*universes_[i], cols);
        miner.VerifyExactFds(full, mined_[i].get());
      }
    }
    stats_[i]->InstallMinedDependencies(mined_[i].get(), config.source);
    // Mined knowledge changes the statistics every generator reads; move
    // candidate-generation cache keys onto a fresh epoch.
    stats_epoch_.fetch_add(1, std::memory_order_relaxed);
    return mined_[i].get();
  }
  return nullptr;
}

void DesignContext::MineAllDependencies(const DependencyMiningConfig& config) {
  for (const auto& u : universes_) MineDependencies(u->fact_name(), config);
}

const DiscoveredDependencies* DesignContext::DependenciesForFact(
    const std::string& fact) const {
  for (size_t i = 0; i < universes_.size(); ++i) {
    if (universes_[i]->fact_name() == fact) return mined_[i].get();
  }
  return nullptr;
}

const Universe* DesignContext::UniverseForFact(const std::string& fact) const {
  for (const auto& u : universes_) {
    if (u->fact_name() == fact) return u.get();
  }
  return nullptr;
}

}  // namespace coradd
