// Baseline designers the paper compares against.
//
// NaiveDesigner (§7.2, Experiment 2): correlation-aware cost model but no
// query grouping or index merging — only fact re-clusterings and dedicated
// per-query MVs, packed greedily ("picks as many candidates as possible").
//
// CommercialDesigner: proxy for the commercial product — the same
// state-of-the-art machinery ([1,5]: MV candidates per query group, dense
// B+Tree secondary indexes, Greedy(m,k) selection) driven by the
// correlation-OBLIVIOUS cost model of Fig 10. The substitution rationale is
// documented in DESIGN.md §2.
#pragma once

#include <memory>

#include "core/context.h"
#include "core/design.h"
#include "cost/oblivious_cost_model.h"
#include "ilp/greedy_mk.h"
#include "mv/candidate_generator.h"

namespace coradd {

/// §7.2's Naive baseline. Design() is const and thread-safe (the memoized
/// cost model is internally synchronized), so bench sweeps can design every
/// budget cell concurrently. Candidate enumeration (fact re-clusterings +
/// dedicated per-query keys) is model-independent, so it routes through the
/// context's CandidateGenCache under a designer tag — concurrent budget
/// cells and repeat calls share one enumeration pass.
class NaiveDesigner {
 public:
  explicit NaiveDesigner(const DesignContext* context,
                         CorrelationCostModelOptions model_options = {});

  DatabaseDesign Design(const Workload& workload, uint64_t budget_bytes) const;

  const CorrelationCostModel& model() const { return *model_; }

  /// Trial-pricing counters of the dedicated-key designer.
  CandGenStats candgen_stats() const;

 private:
  const DesignContext* context_;
  std::unique_ptr<CorrelationCostModel> model_;
  std::unique_ptr<ClusteredIndexDesigner> dedicated_;
};

/// Correlation-oblivious commercial-designer proxy. Design() is const and
/// thread-safe, like NaiveDesigner's; generation goes through the context's
/// CandidateGenCache keyed by the oblivious model's CacheId().
class CommercialDesigner {
 public:
  explicit CommercialDesigner(const DesignContext* context,
                              GreedyMkOptions greedy_options = {});

  DatabaseDesign Design(const Workload& workload, uint64_t budget_bytes) const;

  const ObliviousCostModel& model() const { return *model_; }

  /// Trial-pricing counters of the underlying generator.
  CandGenStats candgen_stats() const;

 private:
  const DesignContext* context_;
  GreedyMkOptions greedy_options_;
  std::unique_ptr<ObliviousCostModel> model_;
  std::unique_ptr<MvCandidateGenerator> generator_;
};

}  // namespace coradd
