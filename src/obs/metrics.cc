#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>

namespace coradd {
namespace obs {

namespace {

/// Bucket index = bit width of the value (0 -> bucket 0).
size_t BucketOf(uint64_t v) { return static_cast<size_t>(std::bit_width(v)); }

/// Inclusive upper bound of bucket b.
uint64_t BucketUpper(size_t b) {
  if (b == 0) return 0;
  if (b >= 64) return UINT64_MAX;
  return (uint64_t{1} << b) - 1;
}

std::string HumanCount(uint64_t v) {
  char buf[32];
  if (v >= 10000000) {
    std::snprintf(buf, sizeof(buf), "%llu.%lluM",
                  static_cast<unsigned long long>(v / 1000000),
                  static_cast<unsigned long long>(v % 1000000 / 100000));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
  }
  return buf;
}

}  // namespace

void Histogram::Observe(uint64_t v) {
  buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Min() const {
  const uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

double Histogram::Mean() const {
  const uint64_t n = Count();
  return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
}

uint64_t Histogram::Quantile(double q) const {
  const uint64_t n = Count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n - 1));
  uint64_t seen = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen > rank) return BucketUpper(b);
  }
  return Max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

void* MetricsRegistry::FindOrCreate(const std::string& name,
                                    MetricSnapshot::Kind kind) {
  // The metric pointer is resolved before releasing mu_: emplace_back can
  // reallocate entries_, so an Entry* held across the unlock would dangle
  // under concurrent first-use registration (two pool workers creating
  // different metrics at once). The metric objects themselves are
  // heap-owned and never move.
  auto metric_of = [](Entry& e) -> void* {
    switch (e.kind) {
      case MetricSnapshot::Kind::kCounter:
        return e.counter.get();
      case MetricSnapshot::Kind::kGauge:
        return e.gauge.get();
      case MetricSnapshot::Kind::kHistogram:
        return e.histogram.get();
    }
    return nullptr;
  };
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, e] : entries_) {
    if (n == name) {
      if (e.kind != kind) {
        // A name identifies one metric of one kind; every caller
        // dereferences the result, so fail loudly at the naming bug
        // instead of handing back a null or corrupt reinterpretation.
        std::fprintf(stderr,
                     "MetricsRegistry: metric '%s' requested as kind %d but "
                     "already registered as kind %d\n",
                     name.c_str(), static_cast<int>(kind),
                     static_cast<int>(e.kind));
        std::abort();
      }
      return metric_of(e);
    }
  }
  Entry e;
  e.kind = kind;
  switch (kind) {
    case MetricSnapshot::Kind::kCounter:
      e.counter = std::make_unique<Counter>();
      break;
    case MetricSnapshot::Kind::kGauge:
      e.gauge = std::make_unique<Gauge>();
      break;
    case MetricSnapshot::Kind::kHistogram:
      e.histogram = std::make_unique<Histogram>();
      break;
  }
  entries_.emplace_back(name, std::move(e));
  return metric_of(entries_.back().second);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  return static_cast<Counter*>(
      FindOrCreate(name, MetricSnapshot::Kind::kCounter));
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  return static_cast<Gauge*>(FindOrCreate(name, MetricSnapshot::Kind::kGauge));
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return static_cast<Histogram*>(
      FindOrCreate(name, MetricSnapshot::Kind::kHistogram));
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::vector<MetricSnapshot> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(entries_.size());
    for (const auto& [name, e] : entries_) {
      MetricSnapshot s;
      s.name = name;
      s.kind = e.kind;
      switch (e.kind) {
        case MetricSnapshot::Kind::kCounter:
          s.value = e.counter->Value();
          break;
        case MetricSnapshot::Kind::kGauge:
          s.gauge_value = e.gauge->Value();
          s.gauge_max = e.gauge->Max();
          break;
        case MetricSnapshot::Kind::kHistogram:
          s.count = e.histogram->Count();
          s.sum = e.histogram->Sum();
          s.mean = e.histogram->Mean();
          s.min = e.histogram->Min();
          s.max = e.histogram->Max();
          s.p50 = e.histogram->Quantile(0.50);
          s.p99 = e.histogram->Quantile(0.99);
          break;
      }
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::string MetricsRegistry::Dump() const {
  const std::vector<MetricSnapshot> snaps = Snapshot();
  size_t width = 24;
  for (const auto& s : snaps) width = std::max(width, s.name.size() + 2);
  std::string out = "=== metrics ===\n";
  char buf[192];
  for (const auto& s : snaps) {
    switch (s.kind) {
      case MetricSnapshot::Kind::kCounter:
        std::snprintf(buf, sizeof(buf), "%-*s counter    %s\n",
                      static_cast<int>(width), s.name.c_str(),
                      HumanCount(s.value).c_str());
        break;
      case MetricSnapshot::Kind::kGauge:
        std::snprintf(buf, sizeof(buf), "%-*s gauge      %lld (max %lld)\n",
                      static_cast<int>(width), s.name.c_str(),
                      static_cast<long long>(s.gauge_value),
                      static_cast<long long>(s.gauge_max));
        break;
      case MetricSnapshot::Kind::kHistogram:
        std::snprintf(buf, sizeof(buf),
                      "%-*s histogram  n=%s sum=%s mean=%.1f "
                      "p50<=%s p99<=%s max=%s\n",
                      static_cast<int>(width), s.name.c_str(),
                      HumanCount(s.count).c_str(), HumanCount(s.sum).c_str(),
                      s.mean, HumanCount(s.p50).c_str(),
                      HumanCount(s.p99).c_str(), HumanCount(s.max).c_str());
        break;
    }
    out += buf;
  }
  return out;
}

void MetricsRegistry::ResetAllForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : entries_) {
    switch (e.kind) {
      case MetricSnapshot::Kind::kCounter:
        e.counter->Reset();
        break;
      case MetricSnapshot::Kind::kGauge:
        e.gauge->Reset();
        break;
      case MetricSnapshot::Kind::kHistogram:
        e.histogram->Reset();
        break;
    }
  }
}

std::string DumpMetrics() { return MetricsRegistry::Global().Dump(); }

}  // namespace obs
}  // namespace coradd
