// Low-overhead span tracer: RAII TRACE_SPAN macros record complete-event
// ("X") begin/duration pairs into per-thread lock-free ring buffers, flushed
// on demand to Chrome trace-event JSON (loadable in chrome://tracing and
// Perfetto). Every layer of the pipeline is instrumented — discovery
// lattice levels, candidate generation and trial pricing, solver waves,
// feedback iterations, executor partitions, evaluator jobs, thread-pool
// tasks — so one trace file shows where a design run's time goes across
// all threads.
//
// Cost contract: when tracing is disabled (the default) a span is one
// relaxed atomic load and a branch — well under the 25 ns/span budget
// bench_micro's obs_span_disabled case enforces in the smoke suite. When
// enabled, recording is wait-free: each thread owns a private ring buffer
// (drop-oldest on overflow, dropped events counted) and registration is
// the only mutex-touching operation, once per thread.
//
// Determinism contract: spans observe, never steer. Enabling tracing must
// not change any computed result (tests/obs_test.cc proves bit-identity of
// a full design+evaluate pipeline with tracing on vs off).
//
// Enabling:
//   - CORADD_TRACE=<path>   traces the whole process, written at exit.
//   - benchkit --trace=<path> traces a bench's reporting pass (pass 0).
//   - obs::Tracer::Global().Start() / StopAndWrite(path) programmatically.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace coradd {
namespace obs {

/// One key/value span annotation; keys must be string literals (the
/// recorder stores the pointer, never a copy).
struct SpanArg {
  const char* key;
  int64_t value;
};

/// One complete span, fixed-size so ring slots never allocate. `name` must
/// be a string literal; the Chrome "cat" field is derived at flush time
/// from the name's dotted prefix ("solver.wave" -> cat "solver").
struct TraceEvent {
  static constexpr uint32_t kMaxArgs = 4;
  const char* name = nullptr;
  uint64_t ts_ns = 0;   ///< begin, relative to the tracer epoch
  uint64_t dur_ns = 0;
  uint32_t num_args = 0;
  const char* arg_keys[kMaxArgs] = {};
  int64_t arg_vals[kMaxArgs] = {};
};

namespace trace_internal {
/// The global enabled flag, read directly by TRACE_SPAN's fast path.
extern std::atomic<bool> g_enabled;
}  // namespace trace_internal

/// True when span recording is on. One relaxed load — the disabled span
/// fast path in its entirety.
inline bool TraceEnabled() {
  return trace_internal::g_enabled.load(std::memory_order_relaxed);
}

/// Process-wide trace recorder. Owns every thread's ring buffer (buffers
/// outlive their threads so late flushes read completed work).
class Tracer {
 public:
  /// Events kept per thread; older events are overwritten (drop-oldest).
  static constexpr size_t kThreadBufferCapacity = 8192;

  /// The singleton. Never destroyed (avoids shutdown-order races with
  /// worker threads); reads CORADD_TRACE on first use and, when set,
  /// starts tracing and registers an at-exit flush to that path.
  static Tracer& Global();

  /// Enables span recording. Previously recorded events are kept; call
  /// Clear() first for a fresh capture.
  void Start();

  /// Disables span recording. In-flight spans on other threads may still
  /// land; quiesce worker pools before flushing for an exact cut.
  void Stop();

  /// Drops all recorded events and resets the drop counters.
  void Clear();

  /// Stop() + WriteChromeTrace(path) + Clear(), the bench `--trace` flow.
  bool StopAndWrite(const std::string& path);

  /// Serializes every recorded event as a Chrome trace-event JSON document
  /// ({"traceEvents":[...]} with "X" spans and "M" thread-name metadata;
  /// ts/dur in microseconds, locale-independent formatting). Safe against
  /// threads still recording: slots are seqlock-versioned, so an event
  /// being concurrently overwritten is discarded, never read torn.
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() to `path`. Returns false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

  /// Events currently held across all thread buffers.
  uint64_t recorded_events() const;
  /// Events overwritten by drop-oldest overflow since the last Clear().
  uint64_t dropped_events() const;

  /// Records one finished span into the calling thread's ring buffer.
  /// Wait-free after the thread's first call (which registers the buffer).
  void Record(const TraceEvent& event);

  /// Nanoseconds since the tracer epoch (steady clock).
  static uint64_t NowNs();

  /// Labels the calling thread in flushed traces ("M" thread_name
  /// metadata). The thread pool names its workers; main is "main".
  static void SetCurrentThreadName(const std::string& name);

  /// One thread's ring buffer; defined in trace.cc (the thread_local cache
  /// there needs to name the type, hence the public forward declaration).
  struct ThreadBuffer;

 private:
  Tracer();
  struct Impl;
  Impl* impl_;  ///< leaked with the singleton
};

/// RAII span: stamps the begin time at construction, records the complete
/// event at destruction. Construct via the TRACE_SPAN macros.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name,
                     std::initializer_list<SpanArg> args = {}) {
    if (!TraceEnabled()) return;
    active_ = true;
    event_.name = name;
    for (const SpanArg& a : args) {
      if (event_.num_args >= TraceEvent::kMaxArgs) break;
      event_.arg_keys[event_.num_args] = a.key;
      event_.arg_vals[event_.num_args] = a.value;
      ++event_.num_args;
    }
    event_.ts_ns = Tracer::NowNs();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches an annotation whose value is only known mid-span (e.g. nodes
  /// expanded by a solver wave). No-op when tracing was off at entry.
  void Arg(const char* key, int64_t value) {
    if (!active_ || event_.num_args >= TraceEvent::kMaxArgs) return;
    event_.arg_keys[event_.num_args] = key;
    event_.arg_vals[event_.num_args] = value;
    ++event_.num_args;
  }

  ~TraceSpan() {
    if (!active_) return;
    event_.dur_ns = Tracer::NowNs() - event_.ts_ns;
    Tracer::Global().Record(event_);
  }

 private:
  TraceEvent event_;
  bool active_ = false;
};

/// Scoped trace capture for binaries (examples, tools): when `path` is
/// non-empty, starts tracing on construction and writes the file on
/// destruction. See FromArgs() for the shared --trace=<path> handling.
class TraceSession {
 public:
  explicit TraceSession(std::string path);
  TraceSession(TraceSession&& other) noexcept;
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;
  TraceSession& operator=(TraceSession&&) = delete;
  ~TraceSession();

  bool active() const { return !path_.empty(); }

  /// Parses --trace=<path> from argv; inactive session when absent.
  static TraceSession FromArgs(int argc, char** argv);

 private:
  std::string path_;
};

}  // namespace obs
}  // namespace coradd

#define CORADD_OBS_CONCAT2(a, b) a##b
#define CORADD_OBS_CONCAT(a, b) CORADD_OBS_CONCAT2(a, b)

/// Traces the enclosing scope as one span:
///   TRACE_SPAN("solver.wave");
///   TRACE_SPAN("solver.wave", {{"nodes", n}, {"width", w}});
#define TRACE_SPAN(...)                                      \
  ::coradd::obs::TraceSpan CORADD_OBS_CONCAT(coradd_span_at_, \
                                             __LINE__)(__VA_ARGS__)

/// As TRACE_SPAN, but binds the span to `var` so the body can attach
/// late-bound annotations via var.Arg(key, value).
#define TRACE_SPAN_NAMED(var, ...) ::coradd::obs::TraceSpan var(__VA_ARGS__)
