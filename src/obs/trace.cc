#include "obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

namespace coradd {
namespace obs {

namespace trace_internal {
std::atomic<bool> g_enabled{false};
}  // namespace trace_internal

namespace {

/// Epoch every timestamp is relative to, latched at first use so ts values
/// stay small (microsecond columns readable in Perfetto).
std::chrono::steady_clock::time_point Epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

/// Appends `ns` as a microsecond decimal ("123.456") without touching the
/// locale (std::printf's %f decimal point is locale-dependent).
void AppendMicros(std::string* out, uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  *out += buf;
}

/// Minimal JSON string escaping; span names are our own literals but the
/// writer stays RFC 8259-correct regardless.
void AppendQuoted(std::string* out, const char* s) {
  out->push_back('"');
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

/// One thread's ring. `head` counts every push ever made; the newest
/// min(head, capacity) slots are live, anything older was dropped-oldest.
///
/// Slots are seqlock-protected so a flusher on another thread (the
/// CORADD_TRACE atexit hook, a --trace write while caller-owned pools are
/// still running) never reads a torn event: every field is an atomic, and
/// `seq` brackets each write with the slot's push number — odd while the
/// owning thread is storing, 2*push+2 once complete. A reader that doesn't
/// see the exact even value it expects discards the slot, which is just
/// drop-oldest semantics surfacing at flush time.
struct Tracer::ThreadBuffer {
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint64_t> dur_ns{0};
    std::atomic<uint32_t> num_args{0};
    std::atomic<const char*> arg_keys[TraceEvent::kMaxArgs] = {};
    std::atomic<int64_t> arg_vals[TraceEvent::kMaxArgs] = {};
  };

  explicit ThreadBuffer(uint32_t tid_in) : tid(tid_in) {}
  const uint32_t tid;
  std::string name;  ///< set before the thread records (SetCurrentThreadName)
  std::atomic<uint64_t> head{0};
  Slot events[Tracer::kThreadBufferCapacity];
};

namespace {

/// Seqlock read of the slot holding push number `push`. Returns false (and
/// leaves *out unspecified) when the slot was overwritten or mid-write.
bool ReadSlot(const Tracer::ThreadBuffer::Slot& s, uint64_t push,
              TraceEvent* out) {
  const uint64_t want = 2 * push + 2;
  if (s.seq.load(std::memory_order_acquire) != want) return false;
  out->name = s.name.load(std::memory_order_relaxed);
  out->ts_ns = s.ts_ns.load(std::memory_order_relaxed);
  out->dur_ns = s.dur_ns.load(std::memory_order_relaxed);
  out->num_args = std::min(s.num_args.load(std::memory_order_relaxed),
                           TraceEvent::kMaxArgs);
  for (uint32_t a = 0; a < out->num_args; ++a) {
    out->arg_keys[a] = s.arg_keys[a].load(std::memory_order_relaxed);
    out->arg_vals[a] = s.arg_vals[a].load(std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  return s.seq.load(std::memory_order_relaxed) == want;
}

}  // namespace

struct Tracer::Impl {
  std::mutex registry_mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::string env_path;  ///< CORADD_TRACE target, empty when unset

  ThreadBuffer* RegisterCurrentThread() {
    std::lock_guard<std::mutex> lock(registry_mu);
    auto buffer =
        std::make_unique<ThreadBuffer>(static_cast<uint32_t>(buffers.size()));
    buffers.push_back(std::move(buffer));
    return buffers.back().get();
  }
};

namespace {
/// The calling thread's buffer, registered on first use and cached —
/// Record() after that is an index + store, no locks.
thread_local Tracer::ThreadBuffer* t_buffer = nullptr;
}  // namespace

Tracer::Tracer() : impl_(new Impl) {
  Epoch();
  if (const char* env = std::getenv("CORADD_TRACE")) {
    if (env[0] != '\0') {
      impl_->env_path = env;
      Start();
      std::atexit([] {
        Tracer& t = Tracer::Global();
        t.Stop();
        t.WriteChromeTrace(t.impl_->env_path);
      });
    }
  }
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // leaked: outlives worker threads
  return *tracer;
}

namespace {
/// Constructs the singleton before main(): TRACE_SPAN's fast path only
/// reads g_enabled and never touches Global(), so without this a process
/// that sets CORADD_TRACE but never names a pool worker or opens a
/// TraceSession would silently trace nothing (and early main-thread spans
/// would be lost even when it does).
const bool g_tracer_bootstrap = (Tracer::Global(), true);
}  // namespace

void Tracer::Start() {
  trace_internal::g_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::Stop() {
  trace_internal::g_enabled.store(false, std::memory_order_relaxed);
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(impl_->registry_mu);
  for (auto& b : impl_->buffers) b->head.store(0, std::memory_order_relaxed);
}

bool Tracer::StopAndWrite(const std::string& path) {
  Stop();
  const bool ok = WriteChromeTrace(path);
  Clear();
  return ok;
}

uint64_t Tracer::NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Epoch())
          .count());
}

void Tracer::SetCurrentThreadName(const std::string& name) {
  Tracer& t = Global();
  if (t_buffer == nullptr) t_buffer = t.impl_->RegisterCurrentThread();
  std::lock_guard<std::mutex> lock(t.impl_->registry_mu);
  t_buffer->name = name;
}

void Tracer::Record(const TraceEvent& event) {
  if (t_buffer == nullptr) t_buffer = impl_->RegisterCurrentThread();
  ThreadBuffer& b = *t_buffer;
  // Single-writer ring: only the owning thread pushes. The seqlock write
  // protocol (odd seq -> fields -> even seq) keeps concurrent flushers
  // well-defined: they validate seq around their reads and discard any
  // slot this store sequence is racing with.
  const uint64_t h = b.head.load(std::memory_order_relaxed);
  ThreadBuffer::Slot& s = b.events[h % kThreadBufferCapacity];
  s.seq.store(2 * h + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s.name.store(event.name, std::memory_order_relaxed);
  s.ts_ns.store(event.ts_ns, std::memory_order_relaxed);
  s.dur_ns.store(event.dur_ns, std::memory_order_relaxed);
  s.num_args.store(event.num_args, std::memory_order_relaxed);
  for (uint32_t a = 0; a < event.num_args; ++a) {
    s.arg_keys[a].store(event.arg_keys[a], std::memory_order_relaxed);
    s.arg_vals[a].store(event.arg_vals[a], std::memory_order_relaxed);
  }
  s.seq.store(2 * h + 2, std::memory_order_release);
  b.head.store(h + 1, std::memory_order_release);
}

uint64_t Tracer::recorded_events() const {
  std::lock_guard<std::mutex> lock(impl_->registry_mu);
  uint64_t total = 0;
  for (const auto& b : impl_->buffers) {
    total += std::min<uint64_t>(b->head.load(std::memory_order_acquire),
                                kThreadBufferCapacity);
  }
  return total;
}

uint64_t Tracer::dropped_events() const {
  std::lock_guard<std::mutex> lock(impl_->registry_mu);
  uint64_t dropped = 0;
  for (const auto& b : impl_->buffers) {
    const uint64_t h = b->head.load(std::memory_order_acquire);
    if (h > kThreadBufferCapacity) dropped += h - kThreadBufferCapacity;
  }
  return dropped;
}

std::string Tracer::ToChromeTraceJson() const {
  std::lock_guard<std::mutex> lock(impl_->registry_mu);
  const long long pid = static_cast<long long>(::getpid());
  char buf[160];
  std::string out = "{\"traceEvents\":[\n";
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,"
                "\"pid\":%lld,\"tid\":0,\"args\":{\"name\":\"coradd\"}}",
                pid);
  out += buf;
  for (const auto& b : impl_->buffers) {
    if (b->name.empty()) continue;
    std::snprintf(buf, sizeof(buf),
                  ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,"
                  "\"pid\":%lld,\"tid\":%u,\"args\":{\"name\":",
                  pid, b->tid);
    out += buf;
    AppendQuoted(&out, b->name.c_str());
    out += "}}";
  }
  for (const auto& b : impl_->buffers) {
    const uint64_t head = b->head.load(std::memory_order_acquire);
    const uint64_t kept = std::min<uint64_t>(head, kThreadBufferCapacity);
    for (uint64_t j = head - kept; j < head; ++j) {
      TraceEvent e;
      // Seqlock-validated copy: a slot the owning thread is concurrently
      // overwriting fails validation and is skipped (it was about to be
      // dropped-oldest anyway).
      if (!ReadSlot(b->events[j % kThreadBufferCapacity], j, &e)) continue;
      if (e.name == nullptr) continue;
      out += ",\n{\"name\":";
      AppendQuoted(&out, e.name);
      // Category = the dotted subsystem prefix of the span name.
      const char* dot = e.name;
      while (*dot != '\0' && *dot != '.') ++dot;
      out += ",\"cat\":\"";
      out.append(e.name, static_cast<size_t>(dot - e.name));
      out += "\",\"ph\":\"X\",\"ts\":";
      AppendMicros(&out, e.ts_ns);
      out += ",\"dur\":";
      AppendMicros(&out, e.dur_ns);
      std::snprintf(buf, sizeof(buf), ",\"pid\":%lld,\"tid\":%u", pid,
                    b->tid);
      out += buf;
      if (e.num_args > 0) {
        out += ",\"args\":{";
        for (uint32_t a = 0; a < e.num_args; ++a) {
          if (a > 0) out += ",";
          AppendQuoted(&out, e.arg_keys[a]);
          std::snprintf(buf, sizeof(buf), ":%lld",
                        static_cast<long long>(e.arg_vals[a]));
          out += buf;
        }
        out += "}";
      }
      out += "}";
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  const std::string json = ToChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  if (!ok && written != json.size()) std::fclose(f);
  return ok;
}

TraceSession::TraceSession(std::string path) : path_(std::move(path)) {
  if (path_.empty()) return;
  Tracer::SetCurrentThreadName("main");
  Tracer::Global().Clear();
  Tracer::Global().Start();
}

TraceSession::TraceSession(TraceSession&& other) noexcept
    : path_(std::move(other.path_)) {
  other.path_.clear();
}

TraceSession::~TraceSession() {
  if (path_.empty()) return;
  Tracer::Global().StopAndWrite(path_);
  std::fprintf(stderr, "trace written to %s\n", path_.c_str());
}

TraceSession TraceSession::FromArgs(int argc, char** argv) {
  const std::string prefix = "--trace=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.compare(0, prefix.size(), prefix) == 0) {
      return TraceSession(arg.substr(prefix.size()));
    }
  }
  return TraceSession(std::string());
}

}  // namespace obs
}  // namespace coradd
