// Process-wide metrics registry: named counters, gauges, and histograms
// shared by every subsystem. This is the home the scattered stats atomics
// migrated to — SolverStats / CandGenStats remain as per-call views, but
// the process totals (solver nodes, candgen trials, thread-pool worker
// utilization, executor partitions, ...) all live here, dumpable as one
// table (DumpMetrics) and exported into schema-v2 BENCH_*.json as the
// "obs_metrics" section.
//
// Concurrency: every mutation is one relaxed atomic RMW; the registry
// mutex guards only name -> metric creation. Call sites cache the returned
// pointer (metrics are never deleted), so the hot path never takes a lock
// or hashes a string:
//
//   static obs::Counter& nodes =
//       *obs::MetricsRegistry::Global().GetCounter("solver.nodes_expanded");
//   nodes.Add(wave_nodes);
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace coradd {
namespace obs {

/// Monotonically increasing counter.
class alignas(64) Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-value gauge that also tracks its high-water mark (the queue-depth
/// use case: Set() on every sample, Max() answers "how deep did it get").
class alignas(64) Gauge {
 public:
  void Set(int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    UpdateMax(v);
  }
  void Add(int64_t delta) {
    UpdateMax(value_.fetch_add(delta, std::memory_order_relaxed) + delta);
  }
  /// Raises the high-water mark without touching the current value.
  void UpdateMax(int64_t v) {
    int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  int64_t Max() const { return max_.load(std::memory_order_relaxed); }
  void Reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// Power-of-two-bucket histogram over non-negative integer observations
/// (typically nanoseconds or counts): bucket b holds values with bit width
/// b, so quantiles are exact to within 2x. Observe() is two relaxed RMWs.
class alignas(64) Histogram {
 public:
  static constexpr size_t kNumBuckets = 64;

  void Observe(uint64_t v);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t Min() const;
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const;
  /// Upper bound of the bucket containing quantile `q` in [0, 1].
  uint64_t Quantile(double q) const;
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// Point-in-time copy of one metric, for dumping/export.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  // Counter: value. Gauge: value + max. Histogram: count/sum/mean/min/max
  // and the p50/p99 bucket bounds.
  uint64_t value = 0;
  int64_t gauge_value = 0;
  int64_t gauge_max = 0;
  uint64_t count = 0;
  uint64_t sum = 0;
  double mean = 0.0;
  uint64_t min = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p99 = 0;
};

/// Name-keyed metric store. Get*() creates on first use and always returns
/// the same object for a name; returned pointers stay valid for the
/// process lifetime. Requesting an existing name as a different kind is a
/// naming bug and aborts with a diagnostic (every call site dereferences
/// the result unconditionally).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// All metrics, sorted by name.
  std::vector<MetricSnapshot> Snapshot() const;

  /// Human-readable table of every registered metric (the bench --metrics
  /// flag and DumpMetrics() free function).
  std::string Dump() const;

  /// Zeroes every metric's value, keeping registrations (and therefore
  /// every cached pointer) intact. Test isolation only.
  void ResetAllForTest();

 private:
  struct Entry {
    MetricSnapshot::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, Entry>> entries_;  ///< insertion order

  /// Returns the metric object (Counter*/Gauge*/Histogram* per `kind`),
  /// resolved while holding mu_ — entries_ may reallocate under concurrent
  /// creation, so Entry pointers must never escape the lock. Aborts on a
  /// name/kind collision.
  void* FindOrCreate(const std::string& name, MetricSnapshot::Kind kind);
};

/// MetricsRegistry::Global().Dump() — the one-call process-health table.
std::string DumpMetrics();

}  // namespace obs
}  // namespace coradd
