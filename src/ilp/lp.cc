#include "ilp/lp.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace coradd {

namespace {

constexpr double kEps = 1e-9;

/// Standard-form tableau simplex on  min c x, Ax = b, x >= 0  given a
/// starting basis of artificial/slack columns.
class Tableau {
 public:
  Tableau(int m, int n) : m_(m), n_(n), a_(m, std::vector<double>(n + 1, 0.0)),
                          cost_(n + 1, 0.0), basis_(m, -1) {}

  std::vector<std::vector<double>> a_row_storage_;

  double& At(int r, int c) { return a_[static_cast<size_t>(r)][static_cast<size_t>(c)]; }
  double At(int r, int c) const { return a_[static_cast<size_t>(r)][static_cast<size_t>(c)]; }
  double& Rhs(int r) { return a_[static_cast<size_t>(r)][static_cast<size_t>(n_)]; }
  double Rhs(int r) const { return a_[static_cast<size_t>(r)][static_cast<size_t>(n_)]; }
  double& Cost(int c) { return cost_[static_cast<size_t>(c)]; }
  double& CostRhs() { return cost_[static_cast<size_t>(n_)]; }
  int& Basis(int r) { return basis_[static_cast<size_t>(r)]; }

  void Pivot(int row, int col) {
    const double pivot = At(row, col);
    auto& prow = a_[static_cast<size_t>(row)];
    for (double& v : prow) v /= pivot;
    for (int r = 0; r < m_; ++r) {
      if (r == row) continue;
      const double f = At(r, col);
      if (std::fabs(f) < kEps) continue;
      auto& arow = a_[static_cast<size_t>(r)];
      for (int c = 0; c <= n_; ++c) arow[static_cast<size_t>(c)] -= f * prow[static_cast<size_t>(c)];
    }
    const double f = cost_[static_cast<size_t>(col)];
    if (std::fabs(f) > kEps) {
      for (int c = 0; c <= n_; ++c) {
        cost_[static_cast<size_t>(c)] -= f * prow[static_cast<size_t>(c)];
      }
    }
    Basis(row) = col;
  }

  /// Runs simplex iterations; returns status.
  LpStatus Iterate(int max_iterations, int* used_iterations) {
    int stall = 0;
    for (int it = 0; it < max_iterations; ++it) {
      // Entering column: most negative reduced cost (Dantzig), Bland after
      // a long stall to break degeneracy cycles.
      int col = -1;
      if (stall < 2000) {
        double best = -kEps;
        for (int c = 0; c < n_; ++c) {
          if (cost_[static_cast<size_t>(c)] < best) {
            best = cost_[static_cast<size_t>(c)];
            col = c;
          }
        }
      } else {
        for (int c = 0; c < n_; ++c) {
          if (cost_[static_cast<size_t>(c)] < -kEps) {
            col = c;
            break;
          }
        }
      }
      if (col < 0) {
        *used_iterations = it;
        return LpStatus::kOptimal;
      }
      // Leaving row: min ratio test (Bland tie-break on basis index).
      int row = -1;
      double best_ratio = 0.0;
      for (int r = 0; r < m_; ++r) {
        const double a = At(r, col);
        if (a > kEps) {
          const double ratio = Rhs(r) / a;
          if (row < 0 || ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps && Basis(r) < Basis(row))) {
            best_ratio = ratio;
            row = r;
          }
        }
      }
      if (row < 0) {
        *used_iterations = it;
        return LpStatus::kUnbounded;
      }
      stall = best_ratio < kEps ? stall + 1 : 0;
      Pivot(row, col);
    }
    *used_iterations = max_iterations;
    return LpStatus::kIterationLimit;
  }

  int m_, n_;
  std::vector<std::vector<double>> a_;
  std::vector<double> cost_;
  std::vector<int> basis_;
};

}  // namespace

LpSolution SolveLp(const LinearProgram& lp, int max_iterations) {
  LpSolution out;
  const int n0 = lp.num_vars;
  CORADD_CHECK(static_cast<int>(lp.objective.size()) == n0);

  // Fold finite upper bounds in as extra rows.
  std::vector<std::vector<double>> rows = lp.rows;
  std::vector<double> rhs = lp.rhs;
  if (!lp.upper_bounds.empty()) {
    for (int j = 0; j < n0; ++j) {
      const double ub = lp.upper_bounds[static_cast<size_t>(j)];
      if (std::isfinite(ub)) {
        std::vector<double> row(static_cast<size_t>(n0), 0.0);
        row[static_cast<size_t>(j)] = 1.0;
        rows.push_back(std::move(row));
        rhs.push_back(ub);
      }
    }
  }
  const int m = static_cast<int>(rows.size());

  // Standard form: add one slack per row. Negative rhs rows are negated
  // (turning <= into >=, handled by phase-1 artificials).
  // Columns: [x (n0)] [slack (m)] [artificial (<= m)].
  std::vector<int> needs_artificial(static_cast<size_t>(m), 0);
  int num_art = 0;
  for (int r = 0; r < m; ++r) {
    if (rhs[static_cast<size_t>(r)] < 0) {
      for (auto& v : rows[static_cast<size_t>(r)]) v = -v;
      rhs[static_cast<size_t>(r)] = -rhs[static_cast<size_t>(r)];
      needs_artificial[static_cast<size_t>(r)] = 1;  // slack becomes -1
      ++num_art;
    }
  }
  const int n = n0 + m + num_art;
  Tableau t(m, n);
  int art_col = n0 + m;
  for (int r = 0; r < m; ++r) {
    for (int c = 0; c < n0; ++c) t.At(r, c) = rows[static_cast<size_t>(r)][static_cast<size_t>(c)];
    t.Rhs(r) = rhs[static_cast<size_t>(r)];
    const double slack_sign = needs_artificial[static_cast<size_t>(r)] ? -1.0 : 1.0;
    t.At(r, n0 + r) = slack_sign;
    if (needs_artificial[static_cast<size_t>(r)]) {
      t.At(r, art_col) = 1.0;
      t.Basis(r) = art_col;
      ++art_col;
    } else {
      t.Basis(r) = n0 + r;
    }
  }

  int iters1 = 0;
  if (num_art > 0) {
    // Phase 1: minimize sum of artificials.
    for (int c = n0 + m; c < n; ++c) t.Cost(c) = 1.0;
    // Price out the basic artificials.
    for (int r = 0; r < m; ++r) {
      if (t.Basis(r) >= n0 + m) {
        for (int c = 0; c <= n; ++c) t.cost_[static_cast<size_t>(c)] -= t.a_[static_cast<size_t>(r)][static_cast<size_t>(c)];
      }
    }
    const LpStatus st = t.Iterate(max_iterations, &iters1);
    if (st != LpStatus::kOptimal || -t.CostRhs() > 1e-6) {
      out.status = st == LpStatus::kOptimal ? LpStatus::kInfeasible : st;
      out.iterations = iters1;
      return out;
    }
    // Drive any artificial still in the basis out (degenerate rows).
    for (int r = 0; r < m; ++r) {
      if (t.Basis(r) >= n0 + m) {
        int col = -1;
        for (int c = 0; c < n0 + m; ++c) {
          if (std::fabs(t.At(r, c)) > kEps) {
            col = c;
            break;
          }
        }
        if (col >= 0) t.Pivot(r, col);
      }
    }
  }

  // Phase 2: real objective. Zero the cost row, set c, price out basis.
  std::fill(t.cost_.begin(), t.cost_.end(), 0.0);
  for (int c = 0; c < n0; ++c) t.Cost(c) = lp.objective[static_cast<size_t>(c)];
  // Forbid artificials from re-entering.
  for (int c = n0 + m; c < n; ++c) t.Cost(c) = 1e30;
  for (int r = 0; r < m; ++r) {
    const int b = t.Basis(r);
    const double cb = t.cost_[static_cast<size_t>(b)];
    if (std::fabs(cb) > kEps) {
      for (int c = 0; c <= n; ++c) {
        t.cost_[static_cast<size_t>(c)] -= cb * t.a_[static_cast<size_t>(r)][static_cast<size_t>(c)];
      }
    }
  }
  int iters2 = 0;
  const LpStatus st = t.Iterate(max_iterations - iters1, &iters2);
  out.status = st;
  out.iterations = iters1 + iters2;
  if (st != LpStatus::kOptimal) return out;

  out.x.assign(static_cast<size_t>(n0), 0.0);
  for (int r = 0; r < m; ++r) {
    if (t.Basis(r) < n0) {
      out.x[static_cast<size_t>(t.Basis(r))] = t.Rhs(r);
    }
  }
  out.objective = 0.0;
  for (int c = 0; c < n0; ++c) {
    out.objective += lp.objective[static_cast<size_t>(c)] * out.x[static_cast<size_t>(c)];
  }
  return out;
}

}  // namespace coradd
