// The candidate-selection problem the ILP of §5.1 encodes: choose a subset
// of candidates within a space budget — at most one fact-table
// re-clustering per fact (condition 4), base designs always present — to
// minimize the frequency-weighted sum over queries of each query's best
// chosen runtime.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace coradd {

/// A selection instance. Candidate indices align across all members.
struct SelectionProblem {
  /// Space charge per candidate (bytes).
  std::vector<uint64_t> sizes;
  /// costs[q][m] = expected seconds of query q on candidate m
  /// (kInfeasibleCost where m cannot serve q).
  std::vector<std::vector<double>> costs;
  /// Per-query frequency weights (§5.3); empty = all 1.0.
  std::vector<double> query_weights;
  /// Space budget in bytes (condition 3).
  uint64_t budget_bytes = 0;
  /// At most one candidate of each group may be chosen (condition 4).
  std::vector<std::vector<int>> sos1_groups;
  /// Candidates that are always part of the design (base tables; size 0).
  std::vector<int> forced;

  size_t NumQueries() const { return costs.size(); }
  size_t NumCandidates() const { return sizes.size(); }
  double Weight(size_t q) const {
    return query_weights.empty() ? 1.0 : query_weights[q];
  }
};

/// A selection outcome.
struct SelectionResult {
  std::vector<int> chosen;             ///< Includes forced candidates.
  std::vector<int> best_for_query;     ///< Candidate index per query (-1 none).
  double expected_cost = 0.0;          ///< Weighted total seconds.
  uint64_t used_bytes = 0;
  uint64_t nodes_explored = 0;         ///< Search statistics.
  bool proved_optimal = false;

  std::string ToString() const;
};

/// Total weighted cost of a chosen set; fills best_for_query if non-null.
/// Queries no chosen candidate can serve contribute kInfeasibleCost.
double EvaluateSelection(const SelectionProblem& problem,
                         const std::vector<int>& chosen,
                         std::vector<int>* best_for_query = nullptr);

/// True iff `chosen` satisfies budget and SOS1 constraints.
bool SelectionFeasible(const SelectionProblem& problem,
                       const std::vector<int>& chosen);

}  // namespace coradd
