// Dominated-candidate pruning (§5.3, Table 4): candidate m2 is dominated by
// m1 when m1 is no larger, at least as fast on every query m2 can serve,
// and choosing m1 can never conflict where m2 would not (SOS1 groups).
// Dominated candidates can be removed without affecting the optimum, which
// shrinks the ILP dramatically (1,600 -> 160 candidates on SSB in §5.3).
#pragma once

#include <vector>

#include "ilp/selection.h"

namespace coradd {

/// Returns a mask: mask[m] is true iff candidate m is dominated.
/// Forced candidates are never marked dominated.
std::vector<bool> DominatedMask(const SelectionProblem& problem);

/// Removes the masked candidates. `old_index` (if non-null) receives, for
/// each surviving candidate, its index in the original problem.
SelectionProblem CompactProblem(const SelectionProblem& problem,
                                const std::vector<bool>& dominated,
                                std::vector<int>* old_index = nullptr);

}  // namespace coradd
