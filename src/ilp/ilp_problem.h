// Builder for the paper's exact ILP formulation (§5.1, Table 3):
//
//   min  Σ_q [ t_{q,p_{q,1}} + Σ_{r=2..R_q} x_{q,p_{q,r}} (t_{q,p_{q,r}} -
//                                                         t_{q,p_{q,r-1}}) ]
//   s.t. (1) y_m ∈ {0,1}
//        (2) 1 - Σ_{k<r} y_{p_{q,k}} <= x_{q,p_{q,r}} <= 1
//        (3) Σ_m s_m y_m <= S
//        (4) Σ_{m∈R_f} y_m <= 1        (one clustered index per fact table)
//
// Only candidates feasible for a query enter its p_{q,r} ordering, which is
// what keeps the formulation compact (§5.3's 2,080 variables / 2,240
// constraints scale). BuildPaperIlp produces the LP relaxation for our
// simplex solver; exact solutions come from branch_and_bound.h, which
// solves the equivalent selection problem without any variable relaxation
// (the paper's advantage over [16], §5.4).
#pragma once

#include "ilp/lp.h"
#include "ilp/selection.h"

namespace coradd {

/// The generated formulation plus bookkeeping.
struct PaperIlpFormulation {
  LinearProgram lp;
  /// Σ_q w_q t_{q,p_{q,1}} — the constant part of the objective.
  double objective_constant = 0.0;
  int num_y = 0;
  int num_x = 0;
  int num_constraints = 0;
  /// orderings[q] = candidate indices feasible for q, fastest first.
  std::vector<std::vector<int>> orderings;

  int NumVariables() const { return num_y + num_x; }
};

/// Builds the LP relaxation of the paper ILP from a selection problem.
PaperIlpFormulation BuildPaperIlp(const SelectionProblem& problem);

/// Solves the relaxation; returns objective including the constant.
/// (A lower bound on the integer optimum; on these instances the
/// relaxation is usually integral.)
LpSolution SolvePaperLpRelaxation(const PaperIlpFormulation& form,
                                  int max_iterations = 200000);

}  // namespace coradd
