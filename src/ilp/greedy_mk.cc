#include "ilp/greedy_mk.h"

#include <algorithm>
#include <functional>

#include "common/status.h"

namespace coradd {

namespace {

/// Extends `base` with every subset of `pool` of size <= m (DFS), calling
/// `visit` on each feasible extension.
void EnumerateSeeds(const SelectionProblem& p, std::vector<int>* current,
                    const std::vector<int>& pool, size_t next, int remaining,
                    const std::function<void(const std::vector<int>&)>& visit) {
  visit(*current);
  if (remaining == 0) return;
  for (size_t i = next; i < pool.size(); ++i) {
    current->push_back(pool[i]);
    if (SelectionFeasible(p, *current)) {
      EnumerateSeeds(p, current, pool, i + 1, remaining - 1, visit);
    }
    current->pop_back();
  }
}

}  // namespace

SelectionResult SolveSelectionGreedyMk(const SelectionProblem& problem,
                                       GreedyMkOptions options) {
  std::vector<int> pool;
  for (size_t m = 0; m < problem.NumCandidates(); ++m) {
    if (std::find(problem.forced.begin(), problem.forced.end(),
                  static_cast<int>(m)) != problem.forced.end()) {
      continue;
    }
    pool.push_back(static_cast<int>(m));
  }

  // --- Exhaustive phase: best feasible seed of size <= m.
  std::vector<int> best_seed(problem.forced.begin(), problem.forced.end());
  double best_cost = EvaluateSelection(problem, best_seed);
  {
    std::vector<int> current(problem.forced.begin(), problem.forced.end());
    EnumerateSeeds(problem, &current, pool, 0, options.m,
                   [&](const std::vector<int>& chosen) {
                     const double c = EvaluateSelection(problem, chosen);
                     if (c < best_cost - 1e-12) {
                       best_cost = c;
                       best_seed = chosen;
                     }
                   });
  }

  // --- Greedy phase: add the candidate with the largest total-runtime
  // reduction until nothing improves, the budget binds, or k is reached.
  std::vector<int> chosen = best_seed;
  int added = static_cast<int>(chosen.size() - problem.forced.size());
  while (added < options.k) {
    int best_m = -1;
    double best_gain = 1e-12;
    for (int m : pool) {
      if (std::find(chosen.begin(), chosen.end(), m) != chosen.end()) continue;
      chosen.push_back(m);
      if (SelectionFeasible(problem, chosen)) {
        const double c = EvaluateSelection(problem, chosen);
        const double gain = best_cost - c;
        if (gain > best_gain) {
          best_gain = gain;
          best_m = m;
        }
      }
      chosen.pop_back();
    }
    if (best_m < 0) break;
    chosen.push_back(best_m);
    best_cost -= best_gain;
    ++added;
  }

  SelectionResult out;
  out.chosen = std::move(chosen);
  std::sort(out.chosen.begin(), out.chosen.end());
  out.expected_cost =
      EvaluateSelection(problem, out.chosen, &out.best_for_query);
  out.used_bytes = 0;
  for (int m : out.chosen) out.used_bytes += problem.sizes[static_cast<size_t>(m)];
  out.proved_optimal = false;
  return out;
}

}  // namespace coradd
