#include "ilp/domination.h"

#include <algorithm>

#include "common/status.h"
#include "cost/cost_model.h"

namespace coradd {

std::vector<bool> DominatedMask(const SelectionProblem& problem) {
  const size_t n = problem.NumCandidates();
  const size_t nq = problem.NumQueries();
  std::vector<bool> dominated(n, false);

  std::vector<int> group_of(n, -1);
  for (size_t g = 0; g < problem.sos1_groups.size(); ++g) {
    for (int m : problem.sos1_groups[g]) {
      group_of[static_cast<size_t>(m)] = static_cast<int>(g);
    }
  }
  std::vector<bool> forced(n, false);
  for (int f : problem.forced) forced[static_cast<size_t>(f)] = true;

  for (size_t m2 = 0; m2 < n; ++m2) {
    if (forced[m2]) continue;
    for (size_t m1 = 0; m1 < n && !dominated[m2]; ++m1) {
      if (m1 == m2 || dominated[m1]) continue;
      if (problem.sizes[m1] > problem.sizes[m2]) continue;
      // SOS1 safety: m1 must not introduce a conflict m2 would not have.
      if (group_of[m1] >= 0 && group_of[m1] != group_of[m2]) continue;

      bool dominates = true;
      bool strictly = problem.sizes[m1] < problem.sizes[m2];
      for (size_t q = 0; q < nq && dominates; ++q) {
        const double c2 = problem.costs[q][m2];
        if (c2 == kInfeasibleCost) continue;
        const double c1 = problem.costs[q][m1];
        if (c1 > c2) dominates = false;
        if (c1 < c2) strictly = true;
      }
      // Equal twins: keep the lower index deterministically.
      if (dominates && (strictly || m1 < m2)) dominated[m2] = true;
    }
  }
  return dominated;
}

SelectionProblem CompactProblem(const SelectionProblem& problem,
                                const std::vector<bool>& dominated,
                                std::vector<int>* old_index) {
  const size_t n = problem.NumCandidates();
  CORADD_CHECK(dominated.size() == n);
  std::vector<int> new_index(n, -1);
  SelectionProblem out;
  out.budget_bytes = problem.budget_bytes;
  out.query_weights = problem.query_weights;
  if (old_index != nullptr) old_index->clear();
  for (size_t m = 0; m < n; ++m) {
    if (dominated[m]) continue;
    new_index[m] = static_cast<int>(out.sizes.size());
    out.sizes.push_back(problem.sizes[m]);
    if (old_index != nullptr) old_index->push_back(static_cast<int>(m));
  }
  out.costs.resize(problem.NumQueries());
  for (size_t q = 0; q < problem.NumQueries(); ++q) {
    auto& row = out.costs[q];
    row.reserve(out.sizes.size());
    for (size_t m = 0; m < n; ++m) {
      if (!dominated[m]) row.push_back(problem.costs[q][m]);
    }
  }
  for (const auto& group : problem.sos1_groups) {
    std::vector<int> g2;
    for (int m : group) {
      if (new_index[static_cast<size_t>(m)] >= 0) {
        g2.push_back(new_index[static_cast<size_t>(m)]);
      }
    }
    if (g2.size() > 1) out.sos1_groups.push_back(std::move(g2));
  }
  for (int f : problem.forced) {
    CORADD_CHECK(new_index[static_cast<size_t>(f)] >= 0);
    out.forced.push_back(new_index[static_cast<size_t>(f)]);
  }
  return out;
}

}  // namespace coradd
