// Greedy(m,k) (Chaudhuri & Narasayya [5], used by Microsoft SQL Server and
// compared against the ILP in §5.2 / Figure 5): pick the best seed subset
// of up to m candidates by exhaustive search, then grow it greedily by
// best absolute benefit until the space budget (or k objects) is reached.
#pragma once

#include "ilp/selection.h"

namespace coradd {

/// Parameters of Greedy(m,k). The paper uses m = 2 ("m = 3 took too long").
struct GreedyMkOptions {
  int m = 2;
  int k = 1 << 30;  ///< Effectively unbounded: budget is the binding limit.
};

/// Runs Greedy(m,k) on the selection problem. Forced candidates are always
/// included (and do not count toward m or k).
SelectionResult SolveSelectionGreedyMk(const SelectionProblem& problem,
                                       GreedyMkOptions options = {});

}  // namespace coradd
