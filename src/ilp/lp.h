// Dense two-phase primal simplex LP solver, built from scratch (the paper
// uses a commercial LP solver; DESIGN.md §2 documents the substitution).
//
// Solves   min c^T x   s.t.   A x <= b,   0 <= x <= ub.
// Upper bounds are handled by adding explicit rows (instances here are
// small); degeneracy is handled with Bland's rule after a stall.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace coradd {

/// LP in inequality form.
struct LinearProgram {
  int num_vars = 0;
  std::vector<double> objective;           ///< c, size num_vars.
  std::vector<std::vector<double>> rows;   ///< A, each row size num_vars.
  std::vector<double> rhs;                 ///< b, size rows.size().
  std::vector<double> upper_bounds;        ///< Optional; empty = +inf.

  void AddRow(std::vector<double> row, double b) {
    rows.push_back(std::move(row));
    rhs.push_back(b);
  }
};

/// Outcome of a solve.
enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

/// Solution of an LP.
struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;
  int iterations = 0;
};

/// Solves the LP with a dense two-phase tableau simplex.
LpSolution SolveLp(const LinearProgram& lp, int max_iterations = 200000);

}  // namespace coradd
