// Builds a SelectionProblem (sizes, cost table, SOS1 groups, forced bases)
// from MvSpec candidates, a workload, and a cost model — the step between
// candidate generation (§4) and solving (§5).
#pragma once

#include <vector>

#include "cost/cost_model.h"
#include "ilp/selection.h"

namespace coradd {

/// A selection problem plus the specs its candidate indices refer to.
struct BuiltProblem {
  SelectionProblem problem;
  std::vector<MvSpec> specs;  ///< Aligned with problem candidate indices.
};

/// Computes sizes and t_{q,m} for every candidate. Base designs are forced
/// (size 0); non-base fact re-clusterings of each fact table form an SOS1
/// group (ILP condition 4). The base design is kept alongside a chosen
/// re-clustering because every re-clustering is at least as fast as the
/// base on every query (both share the full-scan fallback and no workload
/// query predicates the PK), so "<= 1 re-clustering" plus a forced base is
/// equivalent to "exactly one clustering per fact".
BuiltProblem BuildSelectionProblem(const Workload& workload,
                                   std::vector<MvSpec> candidates,
                                   const CostModel& model,
                                   const StatsRegistry& registry,
                                   uint64_t budget_bytes);

/// Incremental re-pricing: appends `fresh` candidates to an already-built
/// problem, pricing only the new (query, candidate) pairs — existing sizes
/// and cost columns are untouched, and existing candidate indices stay
/// stable (which lets a previous solution warm-start the grown problem
/// directly). SOS1 recluster groups are rebuilt over the full candidate
/// set. The result is identical to BuildSelectionProblem over the
/// concatenated spec list. Returns the number of candidates appended.
size_t AppendSelectionCandidates(BuiltProblem* built,
                                 std::vector<MvSpec> fresh,
                                 const Workload& workload,
                                 const CostModel& model,
                                 const StatsRegistry& registry);

/// §5.3 domination pruning in place: compacts the problem and keeps the
/// spec list aligned with the surviving candidate indices. Shared by the
/// designer and the figure benches.
void PruneDominated(BuiltProblem* built);

}  // namespace coradd
