// Builds a SelectionProblem (sizes, cost table, SOS1 groups, forced bases)
// from MvSpec candidates, a workload, and a cost model — the step between
// candidate generation (§4) and solving (§5).
#pragma once

#include <vector>

#include "cost/cost_model.h"
#include "ilp/selection.h"

namespace coradd {

/// A selection problem plus the specs its candidate indices refer to.
struct BuiltProblem {
  SelectionProblem problem;
  std::vector<MvSpec> specs;  ///< Aligned with problem candidate indices.
};

/// Computes sizes and t_{q,m} for every candidate. Base designs are forced
/// (size 0); non-base fact re-clusterings of each fact table form an SOS1
/// group (ILP condition 4). The base design is kept alongside a chosen
/// re-clustering because every re-clustering is at least as fast as the
/// base on every query (both share the full-scan fallback and no workload
/// query predicates the PK), so "<= 1 re-clustering" plus a forced base is
/// equivalent to "exactly one clustering per fact".
BuiltProblem BuildSelectionProblem(const Workload& workload,
                                   std::vector<MvSpec> candidates,
                                   const CostModel& model,
                                   const StatsRegistry& registry,
                                   uint64_t budget_bytes);

}  // namespace coradd
