#include "ilp/problem_builder.h"

#include <map>

#include "common/status.h"
#include "ilp/domination.h"

namespace coradd {

BuiltProblem BuildSelectionProblem(const Workload& workload,
                                   std::vector<MvSpec> candidates,
                                   const CostModel& model,
                                   const StatsRegistry& registry,
                                   uint64_t budget_bytes) {
  BuiltProblem out;
  SelectionProblem& p = out.problem;
  p.budget_bytes = budget_bytes;
  p.costs.resize(workload.queries.size());
  p.query_weights.reserve(workload.queries.size());
  for (const Query& q : workload.queries) {
    p.query_weights.push_back(q.frequency);
  }
  AppendSelectionCandidates(&out, std::move(candidates), workload, model,
                            registry);
  return out;
}

size_t AppendSelectionCandidates(BuiltProblem* built,
                                 std::vector<MvSpec> fresh,
                                 const Workload& workload,
                                 const CostModel& model,
                                 const StatsRegistry& registry) {
  CORADD_CHECK(built != nullptr);
  SelectionProblem& p = built->problem;
  const size_t old_n = built->specs.size();
  built->specs.reserve(old_n + fresh.size());
  for (auto& spec : fresh) built->specs.push_back(std::move(spec));
  const size_t nm = built->specs.size();

  // Size and force only the appended candidates; prior columns are final.
  p.sizes.resize(nm);
  for (size_t m = old_n; m < nm; ++m) {
    const MvSpec& spec = built->specs[m];
    const UniverseStats* stats = registry.ForFact(spec.fact_table);
    CORADD_CHECK(stats != nullptr);
    p.sizes[m] = EstimateMvSizeBytes(spec, *stats, stats->options().disk);
    if (spec.is_base) p.forced.push_back(static_cast<int>(m));
  }

  // SOS1 groups span old and new candidates, so rebuild them over the full
  // set (cheap: one pass over the specs).
  std::map<std::string, std::vector<int>> recluster_groups;
  for (size_t m = 0; m < nm; ++m) {
    const MvSpec& spec = built->specs[m];
    if (!spec.is_base && spec.is_fact_recluster) {
      recluster_groups[spec.fact_table].push_back(static_cast<int>(m));
    }
  }
  p.sos1_groups.clear();
  for (auto& [fact, group] : recluster_groups) {
    if (group.size() > 1) p.sos1_groups.push_back(std::move(group));
  }

  // Price only the new (query, candidate) pairs.
  CORADD_CHECK(p.costs.size() == workload.queries.size());
  for (size_t q = 0; q < workload.queries.size(); ++q) {
    auto& row = p.costs[q];
    row.resize(nm);
    for (size_t m = old_n; m < nm; ++m) {
      row[m] = model.Seconds(workload.queries[q], built->specs[m]);
    }
  }
  return nm - old_n;
}

void PruneDominated(BuiltProblem* built) {
  CORADD_CHECK(built != nullptr);
  const std::vector<bool> dominated = DominatedMask(built->problem);
  std::vector<int> old_index;
  SelectionProblem compact =
      CompactProblem(built->problem, dominated, &old_index);
  std::vector<MvSpec> kept;
  kept.reserve(old_index.size());
  for (int oi : old_index) {
    kept.push_back(std::move(built->specs[static_cast<size_t>(oi)]));
  }
  built->problem = std::move(compact);
  built->specs = std::move(kept);
}

}  // namespace coradd
