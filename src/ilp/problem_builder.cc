#include "ilp/problem_builder.h"

#include <map>

#include "common/status.h"

namespace coradd {

BuiltProblem BuildSelectionProblem(const Workload& workload,
                                   std::vector<MvSpec> candidates,
                                   const CostModel& model,
                                   const StatsRegistry& registry,
                                   uint64_t budget_bytes) {
  BuiltProblem out;
  out.specs = std::move(candidates);
  SelectionProblem& p = out.problem;
  p.budget_bytes = budget_bytes;

  const size_t nm = out.specs.size();
  p.sizes.resize(nm);
  std::map<std::string, std::vector<int>> recluster_groups;
  for (size_t m = 0; m < nm; ++m) {
    const MvSpec& spec = out.specs[m];
    const UniverseStats* stats = registry.ForFact(spec.fact_table);
    CORADD_CHECK(stats != nullptr);
    p.sizes[m] = EstimateMvSizeBytes(spec, *stats, stats->options().disk);
    if (spec.is_base) {
      p.forced.push_back(static_cast<int>(m));
    } else if (spec.is_fact_recluster) {
      recluster_groups[spec.fact_table].push_back(static_cast<int>(m));
    }
  }
  for (auto& [fact, group] : recluster_groups) {
    if (group.size() > 1) p.sos1_groups.push_back(std::move(group));
  }

  p.costs.resize(workload.queries.size());
  p.query_weights.reserve(workload.queries.size());
  for (size_t q = 0; q < workload.queries.size(); ++q) {
    p.query_weights.push_back(workload.queries[q].frequency);
    auto& row = p.costs[q];
    row.resize(nm);
    for (size_t m = 0; m < nm; ++m) {
      row[m] = model.Seconds(workload.queries[q], out.specs[m]);
    }
  }
  return out;
}

}  // namespace coradd
