#include "ilp/selection.h"

#include <algorithm>

#include "common/status.h"
#include "common/string_util.h"
#include "cost/cost_model.h"

namespace coradd {

std::string SelectionResult::ToString() const {
  return StrFormat(
      "Selection{chosen=%zu, cost=%.3fs, used=%s, nodes=%llu, optimal=%s}",
      chosen.size(), expected_cost, HumanBytes(used_bytes).c_str(),
      static_cast<unsigned long long>(nodes_explored),
      proved_optimal ? "yes" : "no");
}

double EvaluateSelection(const SelectionProblem& problem,
                         const std::vector<int>& chosen,
                         std::vector<int>* best_for_query) {
  const size_t nq = problem.NumQueries();
  if (best_for_query != nullptr) best_for_query->assign(nq, -1);
  double total = 0.0;
  for (size_t q = 0; q < nq; ++q) {
    double best = kInfeasibleCost;
    int best_m = -1;
    for (int m : chosen) {
      const double c = problem.costs[q][static_cast<size_t>(m)];
      if (c < best) {
        best = c;
        best_m = m;
      }
    }
    if (best_for_query != nullptr) (*best_for_query)[q] = best_m;
    total += best * problem.Weight(q);
  }
  return total;
}

bool SelectionFeasible(const SelectionProblem& problem,
                       const std::vector<int>& chosen) {
  uint64_t used = 0;
  for (int m : chosen) used += problem.sizes[static_cast<size_t>(m)];
  if (used > problem.budget_bytes) return false;
  for (const auto& group : problem.sos1_groups) {
    int count = 0;
    for (int m : group) {
      if (std::find(chosen.begin(), chosen.end(), m) != chosen.end()) ++count;
    }
    if (count > 1) return false;
  }
  // All forced candidates must be present.
  for (int f : problem.forced) {
    if (std::find(chosen.begin(), chosen.end(), f) == chosen.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace coradd
