// Exact solver for the §5.1 selection ILP via best-bound depth-first branch
// and bound. Two complementary admissible bounds are combined (min):
//  (a) submodular knapsack — the benefit a *set* of extra candidates adds
//      never exceeds the sum of their individual marginal benefits, relaxed
//      as a fractional knapsack over the remaining budget;
//  (b) per-query potential — no selection can push any query below the best
//      remaining candidate's cost, so Σ_q w_q (cur_q - best_q) caps the gain
//      regardless of budget (tight where (a) overcounts overlapping
//      candidates).
// Unlike [16]'s relaxation-and-rounding, the solution is proven optimal
// (the paper's key claim for its ILP formulation, §5.4).
//
// NOTE: this is the *reference* serial engine. Production callers (the
// CORADD designer, ILP feedback, the figure benches) use the parallel
// warm-started engine in solver/solver.h; this implementation stays as the
// independent cross-check the solver test suite and bench_fig6 compare
// against, and as the backend of SolveSelectionGreedyDensity.
#pragma once

#include "ilp/selection.h"

namespace coradd {

/// Search limits; generous defaults are far above what the paper-scale
/// instances need (§5.3 solves in under a second).
struct BranchAndBoundOptions {
  uint64_t max_nodes = 4000000;
  double time_limit_seconds = 120.0;
};

/// Density-greedy heuristic (benefit per byte, SOS1-aware). Used as the
/// initial incumbent; also exported for comparison experiments.
SelectionResult SolveSelectionGreedyDensity(const SelectionProblem& problem);

/// Exact branch & bound. `proved_optimal` is false only if a limit was hit,
/// in which case the incumbent (at least as good as density-greedy) is
/// returned.
SelectionResult SolveSelectionExact(const SelectionProblem& problem,
                                    BranchAndBoundOptions options = {});

}  // namespace coradd
