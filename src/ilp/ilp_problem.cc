#include "ilp/ilp_problem.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"
#include "cost/cost_model.h"

namespace coradd {

PaperIlpFormulation BuildPaperIlp(const SelectionProblem& problem) {
  PaperIlpFormulation form;
  const size_t nq = problem.NumQueries();
  const size_t nm = problem.NumCandidates();
  form.num_y = static_cast<int>(nm);

  // p_{q,r}: feasible candidates for each query, fastest first
  // (deterministic tie-break on index).
  form.orderings.resize(nq);
  for (size_t q = 0; q < nq; ++q) {
    auto& ord = form.orderings[q];
    for (size_t m = 0; m < nm; ++m) {
      if (problem.costs[q][m] != kInfeasibleCost) {
        ord.push_back(static_cast<int>(m));
      }
    }
    std::sort(ord.begin(), ord.end(), [&](int a, int b) {
      const double ca = problem.costs[q][static_cast<size_t>(a)];
      const double cb = problem.costs[q][static_cast<size_t>(b)];
      if (ca != cb) return ca < cb;
      return a < b;
    });
    CORADD_CHECK(!ord.empty());  // base design must serve every query
  }

  // Variable layout: y_0..y_{nm-1}, then x variables per (q, r>=2).
  std::vector<std::vector<int>> x_index(nq);
  int next_var = static_cast<int>(nm);
  for (size_t q = 0; q < nq; ++q) {
    x_index[q].assign(form.orderings[q].size(), -1);
    for (size_t r = 1; r < form.orderings[q].size(); ++r) {
      x_index[q][r] = next_var++;
      ++form.num_x;
    }
  }

  LinearProgram& lp = form.lp;
  lp.num_vars = next_var;
  lp.objective.assign(static_cast<size_t>(next_var), 0.0);
  lp.upper_bounds.assign(static_cast<size_t>(next_var),
                         std::numeric_limits<double>::infinity());
  // Only y needs explicit <= 1 (x's positive objective keeps it at its
  // lower bound, which never exceeds 1).
  for (size_t m = 0; m < nm; ++m) lp.upper_bounds[m] = 1.0;

  form.objective_constant = 0.0;
  for (size_t q = 0; q < nq; ++q) {
    const auto& ord = form.orderings[q];
    const double w = problem.Weight(q);
    form.objective_constant +=
        w * problem.costs[q][static_cast<size_t>(ord[0])];
    for (size_t r = 1; r < ord.size(); ++r) {
      const double delta = problem.costs[q][static_cast<size_t>(ord[r])] -
                           problem.costs[q][static_cast<size_t>(ord[r - 1])];
      lp.objective[static_cast<size_t>(x_index[q][r])] = w * delta;
    }
  }

  // Condition (2): x_{q,r} + Σ_{k<r} y_{p_k} >= 1, encoded as <= of the
  // negation. Rows are built sparsely then densified.
  for (size_t q = 0; q < nq; ++q) {
    const auto& ord = form.orderings[q];
    for (size_t r = 1; r < ord.size(); ++r) {
      std::vector<double> row(static_cast<size_t>(next_var), 0.0);
      row[static_cast<size_t>(x_index[q][r])] = -1.0;
      for (size_t k = 0; k < r; ++k) {
        row[static_cast<size_t>(ord[k])] = -1.0;
      }
      lp.AddRow(std::move(row), -1.0);
    }
  }
  // Condition (3): space budget.
  {
    std::vector<double> row(static_cast<size_t>(next_var), 0.0);
    for (size_t m = 0; m < nm; ++m) {
      row[m] = static_cast<double>(problem.sizes[m]);
    }
    lp.AddRow(std::move(row), static_cast<double>(problem.budget_bytes));
  }
  // Condition (4): at most one clustered index per fact table.
  for (const auto& group : problem.sos1_groups) {
    std::vector<double> row(static_cast<size_t>(next_var), 0.0);
    for (int m : group) row[static_cast<size_t>(m)] = 1.0;
    lp.AddRow(std::move(row), 1.0);
  }
  // Forced candidates: y_f >= 1.
  for (int f : problem.forced) {
    std::vector<double> row(static_cast<size_t>(next_var), 0.0);
    row[static_cast<size_t>(f)] = -1.0;
    lp.AddRow(std::move(row), -1.0);
  }
  form.num_constraints = static_cast<int>(lp.rows.size());
  return form;
}

LpSolution SolvePaperLpRelaxation(const PaperIlpFormulation& form,
                                  int max_iterations) {
  LpSolution sol = SolveLp(form.lp, max_iterations);
  if (sol.status == LpStatus::kOptimal) {
    sol.objective += form.objective_constant;
  }
  return sol;
}

}  // namespace coradd
