#include "ilp/branch_and_bound.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/status.h"
#include "cost/cost_model.h"

namespace coradd {

namespace {

/// Shared search state for the DFS.
class Search {
 public:
  Search(const SelectionProblem& p, const BranchAndBoundOptions& opt)
      : p_(p), opt_(opt), start_(std::chrono::steady_clock::now()) {
    nq_ = p.NumQueries();
    group_of_.assign(p.NumCandidates(), -1);
    for (size_t g = 0; g < p.sos1_groups.size(); ++g) {
      for (int m : p.sos1_groups[g]) {
        group_of_[static_cast<size_t>(m)] = static_cast<int>(g);
      }
    }
    group_used_.assign(p.sos1_groups.size(), 0);

    // Start from the forced candidates.
    cur_.assign(nq_, kInfeasibleCost);
    used_ = 0;
    for (int f : p.forced) {
      chosen_.push_back(f);
      used_ += p.sizes[static_cast<size_t>(f)];
      const int g = group_of_[static_cast<size_t>(f)];
      if (g >= 0) group_used_[static_cast<size_t>(g)] = 1;
      for (size_t q = 0; q < nq_; ++q) {
        cur_[q] = std::min(cur_[q], p.costs[q][static_cast<size_t>(f)]);
      }
    }
    for (size_t q = 0; q < nq_; ++q) {
      // Every query must be answerable by the always-present base design.
      CORADD_CHECK(cur_[q] != kInfeasibleCost);
    }
    cur_total_ = 0.0;
    for (size_t q = 0; q < nq_; ++q) cur_total_ += cur_[q] * p.Weight(q);
  }

  SelectionResult Run() {
    // Candidate pool: everything not forced that fits the budget at all.
    std::vector<int> pool;
    for (size_t m = 0; m < p_.NumCandidates(); ++m) {
      if (std::find(p_.forced.begin(), p_.forced.end(), static_cast<int>(m)) !=
          p_.forced.end()) {
        continue;
      }
      if (used_ + p_.sizes[m] <= p_.budget_bytes) {
        pool.push_back(static_cast<int>(m));
      }
    }

    // Incumbent: density greedy.
    incumbent_cost_ = cur_total_;
    incumbent_ = chosen_;
    GreedyIncumbent(pool);

    Dfs(pool);

    SelectionResult out;
    out.chosen = incumbent_;
    std::sort(out.chosen.begin(), out.chosen.end());
    out.expected_cost = EvaluateSelection(p_, out.chosen, &out.best_for_query);
    out.used_bytes = 0;
    for (int m : out.chosen) out.used_bytes += p_.sizes[static_cast<size_t>(m)];
    out.nodes_explored = nodes_;
    out.proved_optimal = !limit_hit_;
    return out;
  }

 private:
  bool TimedOut() {
    if (limit_hit_) return true;
    if (nodes_ > opt_.max_nodes) {
      limit_hit_ = true;
      return true;
    }
    if ((nodes_ & 1023) == 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start_)
              .count();
      if (elapsed > opt_.time_limit_seconds) limit_hit_ = true;
    }
    return limit_hit_;
  }

  /// Weighted marginal benefit of m against the current choice.
  double Delta(int m) const {
    double d = 0.0;
    const auto mm = static_cast<size_t>(m);
    for (size_t q = 0; q < nq_; ++q) {
      const double c = p_.costs[q][mm];
      if (c < cur_[q]) d += (cur_[q] - c) * p_.Weight(q);
    }
    return d;
  }

  /// Applies candidate m; returns an undo log of (query, old_cost).
  std::vector<std::pair<size_t, double>> Apply(int m) {
    std::vector<std::pair<size_t, double>> undo;
    const auto mm = static_cast<size_t>(m);
    for (size_t q = 0; q < nq_; ++q) {
      const double c = p_.costs[q][mm];
      if (c < cur_[q]) {
        undo.emplace_back(q, cur_[q]);
        cur_total_ -= (cur_[q] - c) * p_.Weight(q);
        cur_[q] = c;
      }
    }
    used_ += p_.sizes[mm];
    chosen_.push_back(m);
    const int g = group_of_[mm];
    if (g >= 0) group_used_[static_cast<size_t>(g)] += 1;
    return undo;
  }

  void Undo(int m, const std::vector<std::pair<size_t, double>>& undo) {
    const auto mm = static_cast<size_t>(m);
    for (const auto& [q, old] : undo) {
      cur_total_ += (old - cur_[q]) * p_.Weight(q);
      cur_[q] = old;
    }
    used_ -= p_.sizes[mm];
    CORADD_CHECK(!chosen_.empty() && chosen_.back() == m);
    chosen_.pop_back();
    const int g = group_of_[mm];
    if (g >= 0) group_used_[static_cast<size_t>(g)] -= 1;
  }

  bool Admissible(int m) const {
    const auto mm = static_cast<size_t>(m);
    if (used_ + p_.sizes[mm] > p_.budget_bytes) return false;
    const int g = group_of_[mm];
    return g < 0 || group_used_[static_cast<size_t>(g)] == 0;
  }

  void GreedyIncumbent(const std::vector<int>& pool) {
    // Repeatedly add the admissible candidate with the best benefit/byte.
    while (true) {
      int best = -1;
      double best_density = 0.0;
      for (int m : pool) {
        if (!Admissible(m)) continue;
        const double d = Delta(m);
        if (d <= 0.0) continue;
        const double density =
            d / static_cast<double>(
                    std::max<uint64_t>(1, p_.sizes[static_cast<size_t>(m)]));
        if (density > best_density) {
          best_density = density;
          best = m;
        }
      }
      if (best < 0) break;
      Apply(best);
    }
    if (cur_total_ < incumbent_cost_ - 1e-12) {
      incumbent_cost_ = cur_total_;
      incumbent_ = chosen_;
    }
    // Recompute state from forced only (simplest correct rollback).
    chosen_.assign(p_.forced.begin(), p_.forced.end());
    used_ = 0;
    std::fill(group_used_.begin(), group_used_.end(), 0);
    cur_.assign(nq_, kInfeasibleCost);
    for (int f : p_.forced) {
      used_ += p_.sizes[static_cast<size_t>(f)];
      const int g = group_of_[static_cast<size_t>(f)];
      if (g >= 0) group_used_[static_cast<size_t>(g)] = 1;
      for (size_t q = 0; q < nq_; ++q) {
        cur_[q] = std::min(cur_[q], p_.costs[q][static_cast<size_t>(f)]);
      }
    }
    cur_total_ = 0.0;
    for (size_t q = 0; q < nq_; ++q) cur_total_ += cur_[q] * p_.Weight(q);
  }

  /// Upper bound on the benefit still obtainable from `pool` with the
  /// remaining budget: the minimum of two admissible bounds —
  ///  (a) a fractional knapsack over per-candidate marginal benefits
  ///      (valid by submodularity; tight when candidates do not overlap),
  ///  (b) the per-query potential Σ_q w_q (cur_q - best remaining cost_q)
  ///      (budget-oblivious; tight when many near-duplicate candidates
  ///      serve the same queries and (a) overcounts).
  double BenefitBound(const std::vector<int>& pool,
                      std::vector<std::pair<double, int>>* scratch) const {
    scratch->clear();
    const uint64_t remaining = p_.budget_bytes - used_;
    std::vector<double> best_possible = cur_;
    for (int m : pool) {
      if (!Admissible(m)) continue;
      const auto mm = static_cast<size_t>(m);
      double d = 0.0;
      for (size_t q = 0; q < nq_; ++q) {
        const double c = p_.costs[q][mm];
        if (c < cur_[q]) d += (cur_[q] - c) * p_.Weight(q);
        if (c < best_possible[q]) best_possible[q] = c;
      }
      if (d <= 0.0) continue;
      const double density =
          d / static_cast<double>(
                  std::max<uint64_t>(1, p_.sizes[mm]));
      scratch->emplace_back(density, m);
    }
    std::sort(scratch->begin(), scratch->end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    double knapsack = 0.0;
    uint64_t space = remaining;
    for (const auto& [density, m] : *scratch) {
      const uint64_t s =
          std::max<uint64_t>(1, p_.sizes[static_cast<size_t>(m)]);
      if (s <= space) {
        knapsack += Delta(m);
        space -= s;
      } else {
        knapsack += density * static_cast<double>(space);
        break;
      }
    }
    double potential = 0.0;
    for (size_t q = 0; q < nq_; ++q) {
      potential += (cur_[q] - best_possible[q]) * p_.Weight(q);
    }
    return std::min(knapsack, potential);
  }

  void Dfs(const std::vector<int>& pool) {
    ++nodes_;
    if (TimedOut()) return;

    // Refresh the pool: drop candidates that are inadmissible or useless
    // (marginal benefit is monotonically non-increasing down the tree, so
    // a zero-benefit candidate stays useless in the whole subtree).
    std::vector<int> live;
    live.reserve(pool.size());
    int branch = -1;
    double branch_delta = -1.0;
    for (int m : pool) {
      if (!Admissible(m)) continue;
      const double d = Delta(m);
      if (d <= 1e-12) continue;
      live.push_back(m);
      // Branch on the largest absolute benefit: decisions about big movers
      // first tightens the bound fastest.
      if (d > branch_delta) {
        branch_delta = d;
        branch = m;
      }
    }
    if (live.empty() || branch < 0) {
      if (cur_total_ < incumbent_cost_ - 1e-12) {
        incumbent_cost_ = cur_total_;
        incumbent_ = chosen_;
      }
      return;
    }

    // If every live candidate fits simultaneously and no two share an SOS1
    // group, taking all of them is optimal for this subtree: adding an
    // object never increases any query's best runtime, so exclusion can
    // only matter under budget or group conflicts.
    {
      uint64_t live_bytes = 0;
      bool group_conflict = false;
      int seen_groups = 0;
      std::vector<int> groups_touched;
      for (int m : live) {
        live_bytes += p_.sizes[static_cast<size_t>(m)];
        const int g = group_of_[static_cast<size_t>(m)];
        if (g >= 0) {
          for (int other : groups_touched) {
            if (other == g) {
              group_conflict = true;
              break;
            }
          }
          groups_touched.push_back(g);
          ++seen_groups;
        }
      }
      if (!group_conflict && used_ + live_bytes <= p_.budget_bytes) {
        std::vector<std::vector<std::pair<size_t, double>>> undos;
        undos.reserve(live.size());
        for (int m : live) undos.push_back(Apply(m));
        if (cur_total_ < incumbent_cost_ - 1e-12) {
          incumbent_cost_ = cur_total_;
          incumbent_ = chosen_;
        }
        for (size_t i = live.size(); i-- > 0;) Undo(live[i], undos[i]);
        return;
      }
    }

    std::vector<std::pair<double, int>> scratch;
    const double bound = cur_total_ - BenefitBound(live, &scratch);
    if (bound >= incumbent_cost_ - 1e-9) return;

    // A leaf in spirit: even taking everything we cannot beat incumbent —
    // otherwise record the current node as a feasible solution.
    if (cur_total_ < incumbent_cost_ - 1e-12) {
      incumbent_cost_ = cur_total_;
      incumbent_ = chosen_;
    }

    std::vector<int> rest;
    rest.reserve(live.size() - 1);
    for (int m : live) {
      if (m != branch) rest.push_back(m);
    }

    // Include branch first (greedy-like descent finds good incumbents fast).
    {
      const auto undo = Apply(branch);
      Dfs(rest);
      Undo(branch, undo);
    }
    // Exclude branch.
    Dfs(rest);
  }

  const SelectionProblem& p_;
  const BranchAndBoundOptions& opt_;
  std::chrono::steady_clock::time_point start_;
  size_t nq_ = 0;

  std::vector<int> group_of_;
  std::vector<int> group_used_;
  std::vector<double> cur_;
  double cur_total_ = 0.0;
  uint64_t used_ = 0;
  std::vector<int> chosen_;

  std::vector<int> incumbent_;
  double incumbent_cost_ = 0.0;
  uint64_t nodes_ = 0;
  bool limit_hit_ = false;
};

}  // namespace

SelectionResult SolveSelectionGreedyDensity(const SelectionProblem& problem) {
  // Run the greedy phase of the search only.
  BranchAndBoundOptions opt;
  opt.max_nodes = 0;  // DFS exits immediately after the incumbent.
  Search search(problem, opt);
  SelectionResult out = search.Run();
  out.proved_optimal = false;
  return out;
}

SelectionResult SolveSelectionExact(const SelectionProblem& problem,
                                    BranchAndBoundOptions options) {
  Search search(problem, options);
  return search.Run();
}

}  // namespace coradd
