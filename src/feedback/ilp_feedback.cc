#include "feedback/ilp_feedback.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "cost/mv_spec.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace coradd {

std::vector<MvSpec> GroupDesignMemo::DesignForGroup(
    const MvCandidateGenerator& generator, const Workload& workload,
    const QueryGroup& group, const std::string& fact_table, int t_override) {
  std::string key = fact_table + "|" + StrFormat("%d", t_override) + "|";
  for (int qi : group) key += StrFormat("%d,", qi);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
  }
  std::vector<MvSpec> designs =
      generator.DesignForGroup(workload, group, fact_table, t_override);
  std::lock_guard<std::mutex> lock(mu_);
  return memo_.emplace(std::move(key), std::move(designs)).first->second;
}

FeedbackOutcome RunIlpFeedback(const Workload& workload,
                               const MvCandidateGenerator& generator,
                               const CostModel& model,
                               const StatsRegistry& registry,
                               BuiltProblem initial, uint64_t budget_bytes,
                               FeedbackOptions options,
                               SolverOptions solve_options,
                               const std::vector<int>* warm_chosen,
                               GroupDesignMemo* memo) {
  FeedbackOutcome out;
  out.problem = std::move(initial);

  TRACE_SPAN_NAMED(
      fb_span, "feedback.run",
      {{"candidates", static_cast<int64_t>(out.problem.specs.size())}});
  static obs::Counter& iterations =
      *obs::MetricsRegistry::Global().GetCounter("feedback.iterations");
  static obs::Counter& candidates_added =
      *obs::MetricsRegistry::Global().GetCounter("feedback.candidates_added");

  std::set<std::string> known;
  for (const auto& spec : out.problem.specs) {
    known.insert(MvSpecSignature(spec));
  }

  const SolverEngine engine(solve_options);
  out.result = engine.Solve(out.problem.problem, &out.solver_stats,
                            warm_chosen);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    TRACE_SPAN("feedback.iteration", {{"iter", iter}});
    iterations.Add(1);
    std::vector<MvSpec> fresh;
    auto consider = [&](std::vector<MvSpec> specs) {
      for (auto& s : specs) {
        if (fresh.size() >= options.max_new_per_iteration) return;
        if (known.insert(MvSpecSignature(s)).second) {
          fresh.push_back(std::move(s));
        }
      }
    };
    auto full = [&] { return fresh.size() >= options.max_new_per_iteration; };
    auto design_for_group = [&](const QueryGroup& group,
                                const std::string& fact, int t) {
      return memo != nullptr
                 ? memo->DesignForGroup(generator, workload, group, fact, t)
                 : generator.DesignForGroup(workload, group, fact, t);
    };

    const uint64_t leftover =
        budget_bytes > out.result.used_bytes
            ? budget_bytes - out.result.used_bytes
            : 0;

    for (int m : out.result.chosen) {
      if (full()) break;  // further designs would be discarded anyway
      const MvSpec& spec = out.problem.specs[static_cast<size_t>(m)];
      if (spec.is_fact_recluster) continue;  // groups apply to MVs only
      const UniverseStats* stats = registry.ForFact(spec.fact_table);
      const uint64_t current =
          EstimateMvSizeBytes(spec, *stats, stats->options().disk);

      // --- Source 1a: expand the query group with every absent query whose
      // addition keeps the design under budget (§6.1's first heuristic).
      for (size_t qi = 0; qi < workload.queries.size() && !full(); ++qi) {
        const Query& q = workload.queries[qi];
        if (q.fact_table != spec.fact_table) continue;
        if (std::find(spec.query_group.begin(), spec.query_group.end(),
                      static_cast<int>(qi)) != spec.query_group.end()) {
          continue;
        }
        // Cheap lower bound before running the clustered-index designer:
        // every design for the expanded group stores the column union, so
        // its heap alone costs at least this much (EstimateMvSizeBytes is
        // heap + index internals). If even that cannot fit, skip the
        // (expensive) design call — no result would survive the filter.
        MvSpec probe;
        probe.fact_table = spec.fact_table;
        probe.columns = spec.columns;
        for (const auto& c : q.AllColumns()) {
          if (std::find(probe.columns.begin(), probe.columns.end(), c) ==
              probe.columns.end()) {
            probe.columns.push_back(c);
          }
        }
        const uint64_t floor_bytes =
            MvHeapPages(probe, *stats, stats->options().disk) *
            stats->options().disk.page_size_bytes;
        if (floor_bytes > current + leftover) continue;

        QueryGroup expanded = spec.query_group;
        expanded.push_back(static_cast<int>(qi));
        std::sort(expanded.begin(), expanded.end());
        auto designs = design_for_group(expanded, spec.fact_table, 0);
        // Keep expansions that respect the remaining budget.
        std::vector<MvSpec> fitting;
        for (auto& d : designs) {
          const uint64_t size =
              EstimateMvSizeBytes(d, *stats, stats->options().disk);
          if (size <= current + leftover) fitting.push_back(std::move(d));
        }
        consider(std::move(fitting));
      }

      // --- Source 1b: shrink the group to the queries this MV actually
      // serves in the current solution.
      QueryGroup served;
      for (size_t q = 0; q < out.result.best_for_query.size(); ++q) {
        if (out.result.best_for_query[q] == m) {
          served.push_back(static_cast<int>(q));
        }
      }
      if (!served.empty() && served.size() < spec.query_group.size() &&
          !full()) {
        consider(design_for_group(served, spec.fact_table, 0));
      }

      // --- Source 2: recluster with a larger t.
      if (!full()) {
        consider(design_for_group(spec.query_group, spec.fact_table,
                                  options.recluster_t));
      }
    }

    out.iterations = iter + 1;
    if (fresh.empty()) break;
    candidates_added.Add(fresh.size());
    out.candidates_added += fresh.size();
    out.pairs_priced += fresh.size() * workload.queries.size();

    // Append-only growth: the standing candidates keep their indices and
    // priced columns, so the previous chosen set warm-starts the re-solve.
    AppendSelectionCandidates(&out.problem, std::move(fresh), workload,
                              model, registry);
    SelectionResult next = engine.Solve(out.problem.problem,
                                        &out.solver_stats,
                                        &out.result.chosen);
    const bool improved = next.expected_cost < out.result.expected_cost - 1e-9;
    out.result = std::move(next);
    if (!improved) break;
  }
  fb_span.Arg("iterations", out.iterations);
  fb_span.Arg("added", static_cast<int64_t>(out.candidates_added));
  return out;
}

}  // namespace coradd
