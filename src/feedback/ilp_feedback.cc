#include "feedback/ilp_feedback.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"

namespace coradd {

namespace {

/// Structural signature for deduplicating candidates across iterations.
std::string Signature(const MvSpec& spec) {
  std::string s = spec.fact_table + "|";
  for (int qi : spec.query_group) s += StrFormat("%d,", qi);
  s += "|";
  s += Join(spec.clustered_key, ",");
  s += "|";
  std::vector<std::string> cols = spec.columns;
  std::sort(cols.begin(), cols.end());
  s += Join(cols, ",");
  return s;
}

}  // namespace

FeedbackOutcome RunIlpFeedback(const Workload& workload,
                               const MvCandidateGenerator& generator,
                               const CostModel& model,
                               const StatsRegistry& registry,
                               BuiltProblem initial, uint64_t budget_bytes,
                               FeedbackOptions options,
                               BranchAndBoundOptions solve_options) {
  FeedbackOutcome out;
  out.problem = std::move(initial);

  std::set<std::string> known;
  for (const auto& spec : out.problem.specs) known.insert(Signature(spec));

  out.result = SolveSelectionExact(out.problem.problem, solve_options);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    std::vector<MvSpec> fresh;
    auto consider = [&](std::vector<MvSpec> specs) {
      for (auto& s : specs) {
        if (fresh.size() >= options.max_new_per_iteration) return;
        if (known.insert(Signature(s)).second) fresh.push_back(std::move(s));
      }
    };

    const uint64_t leftover =
        budget_bytes > out.result.used_bytes
            ? budget_bytes - out.result.used_bytes
            : 0;

    for (int m : out.result.chosen) {
      const MvSpec& spec = out.problem.specs[static_cast<size_t>(m)];
      if (spec.is_fact_recluster) continue;  // groups apply to MVs only
      const UniverseStats* stats = registry.ForFact(spec.fact_table);

      // --- Source 1a: expand the query group with every absent query whose
      // addition keeps the design under budget (§6.1's first heuristic).
      for (size_t qi = 0; qi < workload.queries.size(); ++qi) {
        const Query& q = workload.queries[qi];
        if (q.fact_table != spec.fact_table) continue;
        if (std::find(spec.query_group.begin(), spec.query_group.end(),
                      static_cast<int>(qi)) != spec.query_group.end()) {
          continue;
        }
        QueryGroup expanded = spec.query_group;
        expanded.push_back(static_cast<int>(qi));
        std::sort(expanded.begin(), expanded.end());
        auto designs =
            generator.DesignForGroup(workload, expanded, spec.fact_table);
        // Keep expansions that respect the remaining budget.
        std::vector<MvSpec> fitting;
        for (auto& d : designs) {
          const uint64_t size =
              EstimateMvSizeBytes(d, *stats, stats->options().disk);
          const uint64_t current =
              EstimateMvSizeBytes(spec, *stats, stats->options().disk);
          if (size <= current + leftover) fitting.push_back(std::move(d));
        }
        consider(std::move(fitting));
      }

      // --- Source 1b: shrink the group to the queries this MV actually
      // serves in the current solution.
      QueryGroup served;
      for (size_t q = 0; q < out.result.best_for_query.size(); ++q) {
        if (out.result.best_for_query[q] == m) {
          served.push_back(static_cast<int>(q));
        }
      }
      if (!served.empty() && served.size() < spec.query_group.size()) {
        consider(generator.DesignForGroup(workload, served, spec.fact_table));
      }

      // --- Source 2: recluster with a larger t.
      consider(generator.DesignForGroup(workload, spec.query_group,
                                        spec.fact_table,
                                        options.recluster_t));
    }

    out.iterations = iter + 1;
    if (fresh.empty()) break;
    out.candidates_added += fresh.size();

    std::vector<MvSpec> all = out.problem.specs;
    for (auto& f : fresh) all.push_back(std::move(f));
    out.problem = BuildSelectionProblem(workload, std::move(all), model,
                                        registry, budget_bytes);
    SelectionResult next = SolveSelectionExact(out.problem.problem, solve_options);
    const bool improved = next.expected_cost < out.result.expected_cost - 1e-9;
    out.result = std::move(next);
    if (!improved) break;
  }
  return out;
}

}  // namespace coradd
