// ILP Feedback (§6): a column-generation-inspired loop that grows the
// candidate pool from the previous ILP solution instead of enumerating the
// exponential design space up front. Two feedback sources:
//   1. expand/shrink the query groups of selected MVs (add a query whose
//      columns fit the leftover budget; drop queries the solution serves
//      elsewhere), and
//   2. recluster selected MVs with a larger t, asking the clustered-index
//      designer for more clusterings of groups known to be useful.
// Iterates until no new candidates appear or the iteration cap is hit.
#pragma once

#include "ilp/branch_and_bound.h"
#include "ilp/problem_builder.h"
#include "mv/candidate_generator.h"

namespace coradd {

/// Feedback loop knobs.
struct FeedbackOptions {
  int max_iterations = 2;          ///< SSB converged in 2 iterations (§6.2).
  int recluster_t = 6;             ///< Raised t for source-2 feedback.
  size_t max_new_per_iteration = 500;
};

/// Outcome of the loop.
struct FeedbackOutcome {
  SelectionResult result;          ///< Best solution found.
  BuiltProblem problem;            ///< Final (grown) problem.
  int iterations = 0;
  size_t candidates_added = 0;
};

/// Runs the feedback loop starting from `initial` (already solved or not).
FeedbackOutcome RunIlpFeedback(const Workload& workload,
                               const MvCandidateGenerator& generator,
                               const CostModel& model,
                               const StatsRegistry& registry,
                               BuiltProblem initial, uint64_t budget_bytes,
                               FeedbackOptions options = {},
                               BranchAndBoundOptions solve_options = {});

}  // namespace coradd
