// ILP Feedback (§6): a column-generation-inspired loop that grows the
// candidate pool from the previous ILP solution instead of enumerating the
// exponential design space up front. Two feedback sources:
//   1. expand/shrink the query groups of selected MVs (add a query whose
//      columns fit the leftover budget; drop queries the solution serves
//      elsewhere), and
//   2. recluster selected MVs with a larger t, asking the clustered-index
//      designer for more clusterings of groups known to be useful.
// Iterates until no new candidates appear or the iteration cap is hit.
//
// Since the solver-engine PR the loop is incremental end to end: each
// iteration *appends* the fresh candidates to the standing problem
// (pricing only the new (query, candidate) pairs — candidate indices stay
// stable) and warm-starts the next solve from the previous iteration's
// chosen set, which prunes the nearly identical search almost immediately.
#pragma once

#include <map>
#include <mutex>
#include <string>

#include "ilp/problem_builder.h"
#include "mv/candidate_generator.h"
#include "solver/solver.h"

namespace coradd {

/// Memoizes MvCandidateGenerator::DesignForGroup results across the
/// feedback runs of one warm-started budget sweep. Consecutive budget
/// points select overlapping objects, so their feedback loops ask for
/// largely the same group designs; the clustered-index design behind each
/// call is expensive and deterministic, so caching it is free speedup.
/// Valid for a single (workload, generator) pair. Thread-safe.
class GroupDesignMemo {
 public:
  std::vector<MvSpec> DesignForGroup(const MvCandidateGenerator& generator,
                                     const Workload& workload,
                                     const QueryGroup& group,
                                     const std::string& fact_table,
                                     int t_override = 0);

 private:
  std::mutex mu_;
  std::map<std::string, std::vector<MvSpec>> memo_;
};

/// Feedback loop knobs.
struct FeedbackOptions {
  int max_iterations = 2;          ///< SSB converged in 2 iterations (§6.2).
  int recluster_t = 6;             ///< Raised t for source-2 feedback.
  size_t max_new_per_iteration = 500;
};

/// Outcome of the loop.
struct FeedbackOutcome {
  SelectionResult result;          ///< Best solution found.
  BuiltProblem problem;            ///< Final (grown) problem.
  int iterations = 0;
  size_t candidates_added = 0;
  /// (query, candidate) pairs priced across the loop — with incremental
  /// re-pricing this counts fresh candidates only, never the standing pool.
  size_t pairs_priced = 0;
  SolverStats solver_stats;        ///< Accumulated over every solve.
};

/// Runs the feedback loop starting from `initial` (already solved or not).
/// `warm_chosen` (optional) seeds the first solve — typically the previous
/// budget point of a grid sweep. `memo` (optional) caches group designs
/// across the feedback runs of a sweep.
FeedbackOutcome RunIlpFeedback(const Workload& workload,
                               const MvCandidateGenerator& generator,
                               const CostModel& model,
                               const StatsRegistry& registry,
                               BuiltProblem initial, uint64_t budget_bytes,
                               FeedbackOptions options = {},
                               SolverOptions solve_options = {},
                               const std::vector<int>* warm_chosen = nullptr,
                               GroupDesignMemo* memo = nullptr);

}  // namespace coradd
