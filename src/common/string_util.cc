#include "common/string_util.h"

#include <cstdio>

namespace coradd {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  return StrFormat(u == 0 ? "%.0f %s" : "%.2f %s", v, units[u]);
}

std::string HumanSeconds(double seconds) {
  if (seconds < 1e-3) return StrFormat("%.1f us", seconds * 1e6);
  if (seconds < 1.0) return StrFormat("%.1f ms", seconds * 1e3);
  if (seconds < 120.0) return StrFormat("%.2f s", seconds);
  return StrFormat("%.1f min", seconds / 60.0);
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

}  // namespace coradd
