// Hashing helpers shared across modules (distinct counting, sampling,
// composite-key fingerprints).
#pragma once

#include <cstdint>
#include <string_view>

namespace coradd {

/// 64-bit finalizer from MurmurHash3. Good avalanche behaviour; used to hash
/// integer values for Gibbons' distinct sampling level assignment.
inline uint64_t HashU64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Combines two hashes (boost::hash_combine recipe, 64-bit variant).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (HashU64(value) + 0x9e3779b97f4a7c15ULL + (seed << 12) +
                 (seed >> 4));
}

/// FNV-1a over a byte string; used for hashing string values.
inline uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace coradd
