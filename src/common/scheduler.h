// Work-stealing task scheduler for ThreadPool::ParallelFor: per-participant
// Chase–Lev deques (LIFO local push/pop, FIFO steal) driving a
// range-splitting loop in the style of parlaylib's lazy binary splitting.
//
// Each participant starts on one contiguous range of the iteration space.
// Before running the next iteration it checks — one relaxed load — whether
// the loop is under-saturated (fewer participants working than the loop
// could use); only then does it split the *unstarted upper half* of its
// range into its deque as a stealable subtask and continue on the lower
// half. Uniform loads therefore pay near-zero scheduling overhead (the
// saturation check fails, no atomics beyond one load per iteration), while
// skewed loads rebalance at iteration granularity: the split-before-run
// rule lets idle workers recursively decompose a fat range in microseconds
// instead of waiting for chunk boundaries.
//
// Worker lifecycle: pool workers participate via ordinary pool tasks and
// *return to the pool queue* when a loop has nothing claimable (so they can
// serve other loops); a later split re-summons one via Submit. The calling
// thread instead steals-then-parks: it hunts for claimable work and, when
// the loop's remainder is entirely in-flight on other threads, blocks on a
// condition variable until a split publishes new work or the loop
// finishes — replacing the 1 ms-nap busy-help spin of the fixed-chunk path.
//
// Determinism contract (same as ThreadPool::ParallelFor has always had):
// fn(i) runs exactly once per index — initial ranges partition [0, n),
// splits refine the partition, and deque pop/steal transfer exclusive
// ownership via CAS — with writes confined to per-index state and callers
// merging by index. Which thread runs which index is scheduling-dependent;
// nothing about it can leak into results, so any thread count yields
// bit-identical output.
//
// Observability: split / steal / local-pop counts are kept per worker slot
// (mirrored to obs::MetricsRegistry as thread_pool.<name>.w<i>.* for named
// pools), aggregated pool-locally via Scheduler::stats(), and totalled
// process-wide under scheduler.* — all outside the determinism surface.
// Steal hunts show up as "thread_pool.steal" spans in traces.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace coradd {

class ThreadPool;

namespace obs {
class Counter;
}  // namespace obs

namespace sched {

/// Half-open iteration range [lo, hi). Bounds are 32-bit so a Range packs
/// into one 64-bit word: Chase–Lev buffer slots stay single lock-free
/// atomics, which keeps concurrent steal/overwrite tear-free (and TSan
/// clean). ThreadPool routes loops with n > UINT32_MAX — which nothing in
/// the pipeline comes near — to the fixed-chunk path instead.
struct Range {
  uint32_t lo = 0;
  uint32_t hi = 0;
  uint32_t size() const { return hi - lo; }
};

/// Chase–Lev work-stealing deque over Ranges, fixed capacity. The owner
/// pushes/pops at the bottom (LIFO); thieves take from the top (FIFO), so
/// steals grab the oldest — largest — range. Capacity never binds in
/// practice: an owner's deque holds geometrically shrinking ranges, at most
/// ~log2(n) entries; on the impossible full case Push returns false and the
/// caller simply skips the split.
///
/// Synchronization follows Chase & Lev (SPAA'05) / Lê et al. (PPoPP'13)
/// with the standalone fences strengthened into seq_cst accesses on top_ /
/// bottom_: deque operations run once per *range*, not per iteration, so
/// the extra fence cost is noise, and TSan — which does not model
/// atomic_thread_fence — sees a provably clean history.
class ChaseLevDeque {
 public:
  static constexpr uint64_t kCapacity = 64;  // power of two, > log2(2^32)

  /// Owner only. False when full (caller skips the split).
  bool Push(Range r);

  /// Owner only. False when empty or a thief won the last element.
  bool PopBottom(Range* out);

  enum class StealResult {
    kStolen,  ///< *out holds the range
    kEmpty,   ///< nothing to take
    kLost     ///< lost a race with the owner or another thief; retry-worthy
  };
  /// Any thread.
  StealResult Steal(Range* out);

  /// Owner's cheap emptiness probe (used by the split heuristic).
  bool Empty() const;

 private:
  static uint64_t Pack(Range r) {
    return (static_cast<uint64_t>(r.hi) << 32) | r.lo;
  }
  static Range Unpack(uint64_t v) {
    return Range{static_cast<uint32_t>(v & 0xffffffffu),
                 static_cast<uint32_t>(v >> 32)};
  }

  std::atomic<uint64_t> top_{0};
  std::atomic<uint64_t> bottom_{0};
  std::atomic<uint64_t> buffer_[kCapacity] = {};
};

/// Pool-local scheduler activity, readable at any time (relaxed counters).
struct SchedulerStats {
  uint64_t steals = 0;      ///< ranges taken from another participant's deque
  uint64_t splits = 0;      ///< ranges halved into a stealable subtask
  uint64_t local_pops = 0;  ///< ranges popped back from the own deque
  uint64_t parks = 0;       ///< times a caller blocked waiting for work/finish
  uint64_t resummons = 0;   ///< helper tasks re-submitted after a split
};

/// The per-ThreadPool work-stealing engine. Owned by ThreadPool; callers go
/// through ThreadPool::ParallelFor, which routes here by default.
class Scheduler {
 public:
  /// `pool` provides Submit() for helper tasks; `pool_name` (may be empty)
  /// scopes the per-worker registry counters exactly like the pool's own.
  Scheduler(ThreadPool* pool, size_t num_workers, const std::string& pool_name);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Runs fn(i) for every i in [0, n), work-stealing across the pool, and
  /// blocks until all iterations completed. The caller participates.
  /// Requires n <= UINT32_MAX (enforced by ThreadPool's routing).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Binds the calling thread as pool worker `worker_index` so nested
  /// ParallelFors reuse its reserved deque slot. Called once per worker
  /// from ThreadPool::WorkerLoop.
  void BindWorkerThread(size_t worker_index);

  SchedulerStats stats() const;

 private:
  struct LoopState;

  /// One slot's counters, cache-line-isolated, optionally mirrored into the
  /// global metrics registry (named pools, worker slots only).
  struct alignas(64) SlotCounters {
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> splits{0};
    std::atomic<uint64_t> local_pops{0};
    obs::Counter* registry_steals = nullptr;
    obs::Counter* registry_splits = nullptr;
    obs::Counter* registry_local_pops = nullptr;
  };

  /// Deque slot of the current thread for this scheduler: its reserved
  /// worker slot, a claimed extra slot for external callers, or kNoSlot
  /// (participate without a deque: claim and run, never split).
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);
  size_t AcquireSlot(LoopState& s) const;
  void ReleaseSlot(LoopState& s, size_t slot) const;

  /// Work-claiming protocol, in preference order.
  bool TryPopLocal(LoopState& s, size_t slot, Range* out);
  static bool TryClaimInitial(LoopState& s, Range* out);
  bool TrySteal(LoopState& s, size_t slot, Range* out);
  /// Hunts for claimable work once local sources are dry. Returns true with
  /// *out set on success; false when the loop finished (callers) or the
  /// hunt came up dry (helpers, which then return to the pool queue).
  bool HuntForWork(LoopState& s, size_t slot, bool is_caller, Range* out);

  /// Runs one range, lazily splitting its unstarted upper half whenever the
  /// loop is under-saturated and the slot's deque is empty.
  void RunRange(const std::shared_ptr<LoopState>& s, size_t slot, Range r);
  /// Claim-and-run loop of one participant; returns when the loop finished
  /// (callers) or nothing is claimable (helpers).
  void Participate(const std::shared_ptr<LoopState>& s, size_t slot,
                   bool is_caller);
  /// Helper-task body: participate, then hand the outstanding count back.
  void RunHelper(const std::shared_ptr<LoopState>& s);
  /// Post-split publication: bump the work version, wake parked callers,
  /// and re-summon a helper if some drained back to the pool.
  void PublishWork(const std::shared_ptr<LoopState>& s);
  static void FinishIterations(LoopState& s, size_t count);
  void SubmitHelper(const std::shared_ptr<LoopState>& s);

  SlotCounters& counters(size_t slot) {
    // Extra and no-deque slots account to the shared caller bucket (the
    // last SlotCounters entry); workers get their own.
    return *slots_[slot < num_workers_ ? slot : num_workers_];
  }

  ThreadPool* pool_;
  const size_t num_workers_;
  const size_t num_slots_;  ///< workers + extra caller slots
  std::vector<std::unique_ptr<SlotCounters>> slots_;  ///< workers + 1 shared
  std::atomic<uint64_t> parks_{0};
  std::atomic<uint64_t> resummons_{0};
};

}  // namespace sched
}  // namespace coradd
