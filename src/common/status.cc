#include "common/status.h"

namespace coradd {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {
void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "CORADD_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}
}  // namespace internal

}  // namespace coradd
