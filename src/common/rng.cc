#include "common/rng.h"

#include <cmath>

namespace coradd {

uint64_t Rng::Zipf(uint64_t n, double s) {
  if (n <= 1) return 0;
  // Inverse-CDF sampling over the continuous approximation of the Zipf
  // distribution: P(X <= x) ~ H(x)/H(n) with H(x) the generalized harmonic
  // number, itself approximated by the integral of t^-s.
  const double u = UniformDouble();
  if (s == 1.0) {
    const double hn = std::log(static_cast<double>(n) + 1.0);
    return static_cast<uint64_t>(std::exp(u * hn)) - 1;
  }
  const double one_minus_s = 1.0 - s;
  const double hn =
      (std::pow(static_cast<double>(n) + 1.0, one_minus_s) - 1.0) / one_minus_s;
  const double x = std::pow(u * hn * one_minus_s + 1.0, 1.0 / one_minus_s) - 1.0;
  uint64_t r = static_cast<uint64_t>(x);
  if (r >= n) r = n - 1;
  return r;
}

}  // namespace coradd
