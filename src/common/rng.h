// Deterministic pseudo-random number generation for all stochastic parts of
// CORADD (data generation, sampling, k-means++ seeding). Every experiment in
// the repository is reproducible bit-for-bit given the same seeds.
#pragma once

#include <cstdint>

namespace coradd {

/// xoshiro256** generator (Blackman & Vigna). Fast, high quality, and fully
/// deterministic across platforms, unlike std::mt19937 usage with
/// distribution objects whose outputs are implementation-defined.
class Rng {
 public:
  /// Seeds the four lanes from a single 64-bit seed via SplitMix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t Uniform(uint64_t bound) {
    // Lemire's nearly-divisionless method would be faster; modulo bias is
    // negligible for our bounds (<< 2^32) and determinism is what matters.
    return Next() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Approximately Gaussian(0,1) via sum of uniforms (Irwin-Hall, n=12).
  /// Adequate for generating mildly noisy synthetic measures.
  double Gaussian() {
    double s = 0.0;
    for (int i = 0; i < 12; ++i) s += UniformDouble();
    return s - 6.0;
  }

  /// Zipf-like skewed integer in [0, n): rank r chosen with weight 1/(r+1)^s.
  /// Uses inverse-CDF over a harmonic approximation; deterministic.
  uint64_t Zipf(uint64_t n, double s);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace coradd
