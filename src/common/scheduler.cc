#include "common/scheduler.h"

#include <algorithm>
#include <thread>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace coradd {
namespace sched {

namespace {

// Reserved deque slots for threads that are not workers of this pool (the
// external caller of a top-level ParallelFor, plus the rare legacy-path
// thread that drains a helper task via RunOneQueuedTask). When all are
// claimed, surplus externals participate in no-deque mode.
constexpr size_t kExtraSlots = 4;

// Dry sweeps (each a full scan of initial ranges + every deque, separated
// by a yield) a helper performs before returning to the pool queue. Small
// on purpose: a later split re-summons a helper, so lingering here only
// withholds the worker from other loops.
constexpr int kHelperDrySweeps = 4;

// Process-wide totals across every pool's scheduler, exported through
// --metrics / the obs_metrics BENCH JSON section. Outside the determinism
// surface like all registry metrics.
obs::Counter& GlobalSteals() {
  static obs::Counter& c =
      *obs::MetricsRegistry::Global().GetCounter("scheduler.steals");
  return c;
}
obs::Counter& GlobalSplits() {
  static obs::Counter& c =
      *obs::MetricsRegistry::Global().GetCounter("scheduler.splits");
  return c;
}
obs::Counter& GlobalLocalPops() {
  static obs::Counter& c =
      *obs::MetricsRegistry::Global().GetCounter("scheduler.local_pops");
  return c;
}
obs::Counter& GlobalParks() {
  static obs::Counter& c =
      *obs::MetricsRegistry::Global().GetCounter("scheduler.parks");
  return c;
}
obs::Counter& GlobalResummons() {
  static obs::Counter& c =
      *obs::MetricsRegistry::Global().GetCounter("scheduler.helper_resummons");
  return c;
}

// Which scheduler (if any) the current thread is a worker of, and its
// reserved slot there. A thread is a worker of at most one pool.
thread_local const Scheduler* tls_scheduler = nullptr;
thread_local size_t tls_worker_slot = 0;

}  // namespace

// ---------------------------------------------------------------------------
// ChaseLevDeque
// ---------------------------------------------------------------------------

bool ChaseLevDeque::Push(Range r) {
  const uint64_t b = bottom_.load(std::memory_order_seq_cst);
  const uint64_t t = top_.load(std::memory_order_seq_cst);
  if (b - t >= kCapacity) return false;
  buffer_[b % kCapacity].store(Pack(r), std::memory_order_relaxed);
  bottom_.store(b + 1, std::memory_order_seq_cst);
  return true;
}

bool ChaseLevDeque::PopBottom(Range* out) {
  uint64_t b = bottom_.load(std::memory_order_seq_cst);
  uint64_t t = top_.load(std::memory_order_seq_cst);
  if (b == t) return false;  // empty; only the owner advances bottom
  b -= 1;
  bottom_.store(b, std::memory_order_seq_cst);
  t = top_.load(std::memory_order_seq_cst);
  if (t > b) {  // a thief emptied the deque while we reserved
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return false;
  }
  const uint64_t v = buffer_[b % kCapacity].load(std::memory_order_relaxed);
  if (t == b) {
    // Last element: race the thieves for it via the top CAS.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
      bottom_.store(b + 1, std::memory_order_seq_cst);
      return false;
    }
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }
  *out = Unpack(v);
  return true;
}

ChaseLevDeque::StealResult ChaseLevDeque::Steal(Range* out) {
  uint64_t t = top_.load(std::memory_order_seq_cst);
  const uint64_t b = bottom_.load(std::memory_order_seq_cst);
  if (t >= b) return StealResult::kEmpty;
  // The slot read may be stale if the owner wrapped the buffer past t, but
  // a successful CAS on top_ proves it was not: an overwrite of slot
  // t % kCapacity requires top_ to have advanced beyond t first (the
  // owner's capacity check), which would fail the CAS. The slot itself is
  // an atomic word, so a discarded racy read is untorn and race-free.
  const uint64_t v = buffer_[t % kCapacity].load(std::memory_order_relaxed);
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_seq_cst)) {
    return StealResult::kLost;
  }
  *out = Unpack(v);
  return StealResult::kStolen;
}

bool ChaseLevDeque::Empty() const {
  return bottom_.load(std::memory_order_seq_cst) <=
         top_.load(std::memory_order_seq_cst);
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

/// Shared state of one ParallelFor invocation. Lives on a shared_ptr so a
/// helper task popped after the loop completed only touches the (finished)
/// flags and returns without dereferencing `fn`.
struct Scheduler::LoopState {
  size_t n = 0;
  const std::function<void(size_t)>* fn = nullptr;

  // The initial partition of [0, n): `initial_parts` near-equal contiguous
  // ranges, claimed in order through `initial_claim`.
  size_t initial_parts = 0;
  std::atomic<size_t> initial_claim{0};

  // Saturation: `active` counts participants currently executing a range;
  // `capacity` is how many the loop could use (helpers + the caller). A
  // runner splits only while active < capacity — i.e. an expected
  // participant is idle, hunting, or parked.
  std::atomic<int> active{0};
  int capacity = 0;

  int max_helpers = 0;
  std::atomic<int> helpers_outstanding{0};

  std::atomic<size_t> done{0};
  std::atomic<bool> finished{false};

  // Caller park protocol: a split bumps work_version and, when parked > 0,
  // notifies under park_mu. The waiter re-checks the version inside the
  // predicate, so a publication between its last dry sweep and the wait
  // can never be missed.
  std::atomic<uint64_t> work_version{0};
  std::atomic<int> parked{0};
  std::mutex park_mu;
  std::condition_variable park_cv;

  std::unique_ptr<ChaseLevDeque[]> deques;  ///< one per slot
  std::atomic<bool> extra_slot_used[kExtraSlots] = {};

  Range InitialRange(size_t idx) const {
    return Range{static_cast<uint32_t>(idx * n / initial_parts),
                 static_cast<uint32_t>((idx + 1) * n / initial_parts)};
  }
};

Scheduler::Scheduler(ThreadPool* pool, size_t num_workers,
                     const std::string& pool_name)
    : pool_(pool),
      num_workers_(num_workers),
      num_slots_(num_workers + kExtraSlots) {
  slots_.reserve(num_workers_ + 1);
  for (size_t i = 0; i <= num_workers_; ++i) {
    auto sc = std::make_unique<SlotCounters>();
    if (!pool_name.empty() && i < num_workers_) {
      auto& registry = obs::MetricsRegistry::Global();
      const std::string prefix =
          StrFormat("thread_pool.%s.w%zu.", pool_name.c_str(), i);
      sc->registry_steals = registry.GetCounter(prefix + "steals");
      sc->registry_splits = registry.GetCounter(prefix + "splits");
      sc->registry_local_pops = registry.GetCounter(prefix + "local_pops");
    }
    slots_.push_back(std::move(sc));
  }
}

Scheduler::~Scheduler() = default;

void Scheduler::BindWorkerThread(size_t worker_index) {
  tls_scheduler = this;
  tls_worker_slot = worker_index;
}

size_t Scheduler::AcquireSlot(LoopState& s) const {
  if (tls_scheduler == this) return tls_worker_slot;
  for (size_t i = 0; i < kExtraSlots; ++i) {
    if (!s.extra_slot_used[i].exchange(true, std::memory_order_acq_rel)) {
      return num_workers_ + i;
    }
  }
  return kNoSlot;
}

void Scheduler::ReleaseSlot(LoopState& s, size_t slot) const {
  if (slot != kNoSlot && slot >= num_workers_) {
    // An owner leaves only with an empty deque (it drains its own before
    // hunting), so the slot's deque is safely reusable.
    s.extra_slot_used[slot - num_workers_].store(false,
                                                 std::memory_order_release);
  }
}

bool Scheduler::TryPopLocal(LoopState& s, size_t slot, Range* out) {
  if (slot == kNoSlot) return false;
  if (!s.deques[slot].PopBottom(out)) return false;
  counters(slot).local_pops.fetch_add(1, std::memory_order_relaxed);
  SlotCounters& sc = counters(slot);
  if (sc.registry_local_pops != nullptr) sc.registry_local_pops->Add(1);
  GlobalLocalPops().Add(1);
  return true;
}

bool Scheduler::TryClaimInitial(LoopState& s, Range* out) {
  size_t idx = s.initial_claim.load(std::memory_order_relaxed);
  while (idx < s.initial_parts) {
    if (s.initial_claim.compare_exchange_weak(idx, idx + 1,
                                              std::memory_order_relaxed)) {
      *out = s.InitialRange(idx);
      return true;
    }
  }
  return false;
}

bool Scheduler::TrySteal(LoopState& s, size_t slot, Range* out) {
  // One sweep over every other slot's deque, restarted while any steal
  // merely lost a race (contention means work exists).
  for (;;) {
    bool lost = false;
    for (size_t i = 0; i < num_slots_; ++i) {
      if (i == slot) continue;
      switch (s.deques[i].Steal(out)) {
        case ChaseLevDeque::StealResult::kStolen: {
          SlotCounters& sc = counters(slot);
          sc.steals.fetch_add(1, std::memory_order_relaxed);
          if (sc.registry_steals != nullptr) sc.registry_steals->Add(1);
          GlobalSteals().Add(1);
          return true;
        }
        case ChaseLevDeque::StealResult::kLost:
          lost = true;
          break;
        case ChaseLevDeque::StealResult::kEmpty:
          break;
      }
    }
    if (!lost) return false;
  }
}

bool Scheduler::HuntForWork(LoopState& s, size_t slot, bool is_caller,
                            Range* out) {
  TRACE_SPAN("thread_pool.steal");
  int dry_sweeps = 0;
  uint64_t version = s.work_version.load(std::memory_order_seq_cst);
  while (!s.finished.load(std::memory_order_acquire)) {
    if (TryClaimInitial(s, out) || TrySteal(s, slot, out)) return true;
    const uint64_t now = s.work_version.load(std::memory_order_seq_cst);
    if (now != version) {
      version = now;
      dry_sweeps = 0;
      continue;
    }
    if (++dry_sweeps < kHelperDrySweeps) {
      std::this_thread::yield();
      continue;
    }
    if (!is_caller) return false;  // back to the pool queue; splits re-summon
    // Caller steal-then-park: the loop's remainder is entirely in-flight on
    // other threads. Block until a split publishes new work or the last
    // iteration completes. parked is bumped under park_mu and the predicate
    // re-reads work_version, so a concurrent publication cannot be missed.
    std::unique_lock<std::mutex> lock(s.park_mu);
    s.parked.fetch_add(1, std::memory_order_seq_cst);
    parks_.fetch_add(1, std::memory_order_relaxed);
    GlobalParks().Add(1);
    s.park_cv.wait(lock, [&] {
      return s.finished.load(std::memory_order_acquire) ||
             s.work_version.load(std::memory_order_seq_cst) != version;
    });
    s.parked.fetch_sub(1, std::memory_order_relaxed);
    version = s.work_version.load(std::memory_order_seq_cst);
    dry_sweeps = 0;
  }
  return false;
}

void Scheduler::FinishIterations(LoopState& s, size_t count) {
  if (count == 0) return;
  if (s.done.fetch_add(count, std::memory_order_acq_rel) + count == s.n) {
    s.finished.store(true, std::memory_order_release);
    // The empty critical section orders the store against a caller that is
    // between its predicate check and the wait sleep.
    { std::lock_guard<std::mutex> lock(s.park_mu); }
    s.park_cv.notify_all();
  }
}

void Scheduler::PublishWork(const std::shared_ptr<LoopState>& s) {
  s->work_version.fetch_add(1, std::memory_order_seq_cst);
  if (s->parked.load(std::memory_order_seq_cst) > 0) {
    { std::lock_guard<std::mutex> lock(s->park_mu); }
    s->park_cv.notify_all();
  }
  // If helpers drained back to the pool while work remained in-flight,
  // re-summon one for the range we just exposed.
  int outstanding = s->helpers_outstanding.load(std::memory_order_relaxed);
  while (outstanding < s->max_helpers) {
    if (s->helpers_outstanding.compare_exchange_weak(
            outstanding, outstanding + 1, std::memory_order_relaxed)) {
      resummons_.fetch_add(1, std::memory_order_relaxed);
      GlobalResummons().Add(1);
      SubmitHelper(s);
      break;
    }
  }
}

void Scheduler::RunRange(const std::shared_ptr<LoopState>& sp, size_t slot,
                         Range r) {
  LoopState& s = *sp;
  ChaseLevDeque* dq = slot == kNoSlot ? nullptr : &s.deques[slot];
  const std::function<void(size_t)>& fn = *s.fn;
  s.active.fetch_add(1, std::memory_order_relaxed);
  uint32_t cur = r.lo;
  uint32_t hi = r.hi;
  size_t completed = 0;
  while (cur < hi) {
    // Lazy binary split, checked *before* the next iteration runs: while
    // the loop is under-saturated and nothing of ours is already stealable,
    // expose the unstarted upper half. An idle thief can then recursively
    // halve it within microseconds — rebalancing never waits on a running
    // iteration to finish.
    if (hi - cur >= 2 && dq != nullptr &&
        s.active.load(std::memory_order_relaxed) < s.capacity &&
        dq->Empty()) {
      const uint32_t mid = cur + (hi - cur) / 2;
      if (dq->Push(Range{mid, hi})) {
        hi = mid;
        SlotCounters& sc = counters(slot);
        sc.splits.fetch_add(1, std::memory_order_relaxed);
        if (sc.registry_splits != nullptr) sc.registry_splits->Add(1);
        GlobalSplits().Add(1);
        PublishWork(sp);
      }
    }
    fn(cur);
    ++cur;
    ++completed;
  }
  s.active.fetch_sub(1, std::memory_order_relaxed);
  FinishIterations(s, completed);
}

void Scheduler::Participate(const std::shared_ptr<LoopState>& sp, size_t slot,
                            bool is_caller) {
  LoopState& s = *sp;
  for (;;) {
    Range r;
    if (TryPopLocal(s, slot, &r) || TryClaimInitial(s, &r)) {
      RunRange(sp, slot, r);
      continue;
    }
    if (s.finished.load(std::memory_order_acquire)) return;
    if (!HuntForWork(s, slot, is_caller, &r)) return;
    RunRange(sp, slot, r);
  }
}

void Scheduler::RunHelper(const std::shared_ptr<LoopState>& s) {
  if (!s->finished.load(std::memory_order_acquire)) {
    const size_t slot = AcquireSlot(*s);
    Participate(s, slot, /*is_caller=*/false);
    ReleaseSlot(*s, slot);
  }
  s->helpers_outstanding.fetch_sub(1, std::memory_order_release);
}

void Scheduler::SubmitHelper(const std::shared_ptr<LoopState>& s) {
  pool_->Submit([this, s] { RunHelper(s); });
}

void Scheduler::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {  // no scheduling to do; skip the machinery
    fn(0);
    return;
  }
  auto sp = std::make_shared<LoopState>();
  LoopState& s = *sp;
  s.n = n;
  s.fn = &fn;
  s.initial_parts = std::min(n, num_workers_ + 1);
  s.max_helpers = static_cast<int>(std::min(num_workers_, n - 1));
  s.capacity = s.max_helpers + 1;
  s.helpers_outstanding.store(s.max_helpers, std::memory_order_relaxed);
  s.deques = std::make_unique<ChaseLevDeque[]>(num_slots_);
  for (int i = 0; i < s.max_helpers; ++i) SubmitHelper(sp);
  const size_t slot = AcquireSlot(s);
  Participate(sp, slot, /*is_caller=*/true);
  ReleaseSlot(s, slot);
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats out;
  for (const auto& sc : slots_) {
    out.steals += sc->steals.load(std::memory_order_relaxed);
    out.splits += sc->splits.load(std::memory_order_relaxed);
    out.local_pops += sc->local_pops.load(std::memory_order_relaxed);
  }
  out.parks = parks_.load(std::memory_order_relaxed);
  out.resummons = resummons_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace sched
}  // namespace coradd
