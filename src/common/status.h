// Lightweight Status / Result types used across CORADD, in the spirit of
// arrow::Status / absl::Status. We avoid exceptions on hot paths; fatal
// programming errors use CORADD_CHECK which aborts with a message.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace coradd {

/// Error categories used by coradd::Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kInternal,
  kNotImplemented,
  kResourceExhausted,
};

/// Returns a short human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on success (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error container, analogous to arrow::Result<T>.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}            // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}    // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Aborts otherwise.
  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

 private:
  void CheckOk() const {
    if (!status_.ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line);
}  // namespace internal

}  // namespace coradd

/// Aborts with a diagnostic when `expr` is false. Used for invariant checks
/// that indicate programming errors (never for data-dependent conditions).
#define CORADD_CHECK(expr)                                        \
  do {                                                            \
    if (!(expr)) {                                                \
      ::coradd::internal::CheckFailed(#expr, __FILE__, __LINE__); \
    }                                                             \
  } while (0)

#define CORADD_RETURN_NOT_OK(expr)          \
  do {                                      \
    ::coradd::Status _st = (expr);          \
    if (!_st.ok()) return _st;              \
  } while (0)
