// A small fixed-size worker pool shared by every parallel subsystem: the
// dependency miner partitions its candidate lattice across it, the query
// executor partitions large scans, and the design evaluator fans whole
// (design, query) evaluations out over it.
//
// ParallelFor is nest-safe: the calling thread claims chunks itself and,
// once its own iterations are exhausted, keeps draining the pool's task
// queue until the loop completes. A worker that starts a nested ParallelFor
// therefore still makes progress even when every other worker is blocked in
// one — the deadlock that sinks naive fixed-size pools under nesting.
//
// Determinism contract: ParallelFor(n, fn) runs fn(i) exactly once per index
// with writes confined to per-index state; callers merge results in index
// order. Nothing about chunk scheduling leaks into results, so any pool size
// (including the shared pool) yields bit-identical output.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace coradd {

/// Fixed set of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = one per hardware thread, minimum 1).
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains outstanding tasks, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues one task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void WaitIdle();

  /// Runs fn(i) for every i in [0, n), spread across the pool, and blocks
  /// until all iterations complete. The caller participates (so a 1-thread
  /// pool — or a call from inside another ParallelFor — still progresses)
  /// and helps drain unrelated queued tasks while waiting. Writers must
  /// target disjoint state per index.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Picks a chunk size that gives each worker several chunks to steal.
  static size_t ChunkSize(size_t n, size_t num_threads);

  /// The process-wide pool, created on first use. Sized from the
  /// CORADD_THREADS environment variable when set to a positive integer,
  /// else one worker per hardware thread. Mining, execution, and evaluation
  /// all share it instead of churning their own pools.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  /// Pops and runs one queued task; returns false (after waiting at most
  /// ~1 ms) when the queue was empty.
  bool RunOneQueuedTask();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable queue_cv_;  ///< Signals workers: task or stop.
  std::condition_variable idle_cv_;   ///< Signals waiters: queue drained.
  size_t in_flight_ = 0;              ///< Tasks popped but not yet finished.
  bool stop_ = false;
};

}  // namespace coradd
