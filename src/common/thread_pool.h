// A small fixed-size worker pool shared by every parallel subsystem: the
// dependency miner partitions its candidate lattice across it, the query
// executor partitions large scans, and the design evaluator fans whole
// (design, query) evaluations out over it.
//
// ParallelFor routes through the work-stealing scheduler (common/scheduler.h)
// by default: each participant starts on one contiguous range and lazily
// splits the unstarted half into a Chase–Lev deque only while idle workers
// exist, so uniform loads pay near-zero scheduling overhead and skewed
// loads rebalance at iteration granularity instead of chunk granularity.
// The pre-scheduler fixed-chunk path (static ~4×threads chunks claimed off
// an atomic cursor) is kept behind ParallelForStrategy::kFixedChunk — and
// CORADD_SCHED=fixed for whole-pipeline A/B — as the comparison baseline.
//
// ParallelFor is nest-safe under both strategies: the calling thread
// participates in its own loop, and while blocked on stragglers it steals
// the loop's stealable subtasks and then parks on a condition variable
// (work-stealing path) or keeps draining the pool's task queue (fixed-chunk
// path). A worker that starts a nested ParallelFor therefore still makes
// progress even when every other worker is blocked in one — the deadlock
// that sinks naive fixed-size pools under nesting.
//
// Determinism contract: ParallelFor(n, fn) runs fn(i) exactly once per index
// with writes confined to per-index state; callers merge results in index
// order. Nothing about chunk or range scheduling leaks into results, so any
// pool size and either strategy yields bit-identical output.
//
// Observability: a pool constructed with a name (the shared pool is
// "shared") registers per-worker tasks-executed / busy-ns counters, the
// scheduler's per-worker steal / split / local-pop counters, and a
// queue-depth high-water gauge in obs::MetricsRegistry. Worker task
// execution shows up as "thread_pool.task" spans and steal hunts as
// "thread_pool.steal" spans in traces.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/scheduler.h"

namespace coradd {

namespace obs {
class Counter;
class Gauge;
}  // namespace obs

/// Which engine a ParallelFor call runs on.
enum class ParallelForStrategy {
  kDefault,       ///< the pool default (CORADD_SCHED env, else work-stealing)
  kWorkStealing,  ///< lazy-binary-splitting work stealing (common/scheduler.h)
  kFixedChunk,    ///< legacy static ~4×threads chunks off an atomic cursor
};

/// Per-call ParallelFor knobs (the ExecOptions-style A/B surface).
struct ParallelForOptions {
  ParallelForStrategy strategy = ParallelForStrategy::kDefault;
};

/// Fixed set of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = one per hardware thread, minimum 1).
  /// A non-empty `name` registers this pool's utilization metrics
  /// (`thread_pool.<name>.*`) in the global metrics registry; anonymous
  /// pools (tests pinning thread counts) keep local counters only.
  explicit ThreadPool(size_t num_threads = 0, std::string name = "");

  /// Drains outstanding tasks, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues one task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void WaitIdle();

  /// Runs fn(i) for every i in [0, n), spread across the pool, and blocks
  /// until all iterations complete. The caller participates (so a 1-thread
  /// pool — or a call from inside another ParallelFor — still progresses).
  /// Writers must target disjoint state per index.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// As above with an explicit strategy override (benchmark A/B surface).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   const ParallelForOptions& options);

  /// The process default strategy: CORADD_SCHED=fixed selects the legacy
  /// fixed-chunk path, anything else (including unset) work stealing.
  static ParallelForStrategy DefaultStrategy();

  /// Picks a chunk size that gives each worker several chunks to steal
  /// (fixed-chunk strategy only).
  static size_t ChunkSize(size_t n, size_t num_threads);

  /// Pool-local work-stealing activity (steals/splits/local pops/parks/
  /// re-summons), outside the determinism surface.
  sched::SchedulerStats scheduler_stats() const {
    return scheduler_->stats();
  }

  /// The process-wide pool, created on first use. Sized from the
  /// CORADD_THREADS environment variable when set to a positive integer,
  /// else one worker per hardware thread. Mining, execution, and evaluation
  /// all share it instead of churning their own pools.
  static ThreadPool& Shared();

  /// Per-worker utilization, readable at any time (relaxed counters).
  struct WorkerStats {
    uint64_t tasks_executed = 0;
    uint64_t busy_ns = 0;
  };
  std::vector<WorkerStats> worker_stats() const;
  /// Deepest the task queue has been since construction.
  size_t queue_depth_high_water() const {
    return queue_hwm_.load(std::memory_order_relaxed);
  }
  /// Tasks executed by non-worker threads draining the queue while they
  /// wait inside ParallelFor (the nest-safety path).
  uint64_t caller_tasks_executed() const {
    return caller_tasks_.load(std::memory_order_relaxed);
  }

  /// Threads a ParallelFor can recruit: every worker plus the calling
  /// thread, which always participates in its own loop.
  size_t participant_capacity() const { return workers_.size() + 1; }
  /// Threads currently executing pool work (worker tasks, caller drains,
  /// and inline ParallelFor participation). An approximate saturation
  /// signal for admission control — a thread inside a nested ParallelFor
  /// counts once per nesting level — not the scheduler's per-loop
  /// participant count, which stays internal to common/scheduler.cc.
  size_t active_participants() const {
    return active_participants_.load(std::memory_order_relaxed);
  }

 private:
  /// One worker's counters, cache-line-isolated so neighbors don't false-
  /// share, optionally mirrored into the global metrics registry.
  struct alignas(64) WorkerSlot {
    std::atomic<uint64_t> tasks{0};
    std::atomic<uint64_t> busy_ns{0};
    obs::Counter* registry_tasks = nullptr;    ///< named pools only
    obs::Counter* registry_busy_ns = nullptr;  ///< named pools only
  };

  void WorkerLoop(size_t worker_index);

  /// Legacy fixed-chunk ParallelFor (kept as the A/B baseline): static
  /// ~4×threads chunks claimed off an atomic cursor, caller busy-helping
  /// the queue while it waits.
  void ParallelForFixedChunk(size_t n, const std::function<void(size_t)>& fn);

  /// Pops and runs one queued task; returns false (after waiting at most
  /// ~1 ms) when the queue was empty. Fixed-chunk wait path only.
  bool RunOneQueuedTask();

  /// Times and runs `task`, crediting `slot` (null for caller threads).
  void RunTimed(const std::function<void()>& task, WorkerSlot* slot);

  std::string name_;
  std::unique_ptr<sched::Scheduler> scheduler_;  ///< created before workers_
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerSlot>> worker_slots_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable queue_cv_;  ///< Signals workers: task or stop.
  std::condition_variable idle_cv_;   ///< Signals waiters: queue drained.
  size_t in_flight_ = 0;              ///< Tasks popped but not yet finished.
  bool stop_ = false;
  std::atomic<size_t> queue_hwm_{0};
  std::atomic<uint64_t> caller_tasks_{0};
  std::atomic<size_t> active_participants_{0};
  obs::Gauge* registry_queue_depth_ = nullptr;  ///< named pools only
};

}  // namespace coradd
