// Small string formatting helpers used by examples, benches and ToString()
// implementations across the library.
#pragma once

#include <cstdarg>
#include <string>
#include <vector>

namespace coradd {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Renders a byte count as a human-readable string ("1.5 GB", "640 KB").
std::string HumanBytes(uint64_t bytes);

/// Renders seconds as "123.4 ms" / "1.23 s" / "2.1 min".
std::string HumanSeconds(double seconds);

/// Splits on a single character, keeping empty tokens.
std::vector<std::string> Split(const std::string& s, char sep);

}  // namespace coradd
