#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>

namespace coradd {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  WaitIdle();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

bool ThreadPool::RunOneQueuedTask() {
  std::function<void()> task;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.empty()) {
      // Nothing to steal right now; nap until a task arrives or our loop's
      // last straggler finishes (the finisher notifies queue_cv_).
      queue_cv_.wait_for(lock, std::chrono::milliseconds(1));
      return false;
    }
    task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
  }
  task();
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
  }
  return true;
}

size_t ThreadPool::ChunkSize(size_t n, size_t num_threads) {
  // ~4 chunks per worker balances load without flooding the queue.
  const size_t chunks = std::max<size_t>(1, num_threads * 4);
  return std::max<size_t>(1, (n + chunks - 1) / chunks);
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t chunk = ChunkSize(n, num_threads());

  // Claim/progress state outlives this frame via shared_ptr: a helper task
  // that is popped after the loop completed only touches the (exhausted)
  // cursor and returns without dereferencing `fn`.
  struct ForState {
    std::atomic<size_t> cursor{0};
    std::atomic<size_t> done{0};
  };
  auto state = std::make_shared<ForState>();
  const std::function<void(size_t)>* fn_ptr = &fn;

  auto drain = [this, state, chunk, n, fn_ptr] {
    for (;;) {
      const size_t begin = state->cursor.fetch_add(chunk);
      if (begin >= n) return;
      const size_t end = std::min(n, begin + chunk);
      for (size_t i = begin; i < end; ++i) (*fn_ptr)(i);
      if (state->done.fetch_add(end - begin) + (end - begin) == n) {
        // Last chunk: wake any caller napping in RunOneQueuedTask.
        queue_cv_.notify_all();
      }
    }
  };

  const size_t num_helpers = std::min(num_threads(), (n + chunk - 1) / chunk);
  for (size_t t = 0; t < num_helpers; ++t) Submit(drain);

  // The caller claims chunks itself, then keeps the pool moving (other
  // loops' helper tasks included) until every one of its iterations is done.
  drain();
  while (state->done.load() < n) RunOneQueuedTask();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("CORADD_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<size_t>(v);
    }
    return static_cast<size_t>(0);  // one per hardware thread
  }());
  return pool;
}

}  // namespace coradd
