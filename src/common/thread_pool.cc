#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace coradd {

ThreadPool::ThreadPool(size_t num_threads, std::string name)
    : name_(std::move(name)) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  worker_slots_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    auto slot = std::make_unique<WorkerSlot>();
    if (!name_.empty()) {
      auto& registry = obs::MetricsRegistry::Global();
      const std::string prefix =
          StrFormat("thread_pool.%s.w%zu.", name_.c_str(), i);
      slot->registry_tasks = registry.GetCounter(prefix + "tasks");
      slot->registry_busy_ns = registry.GetCounter(prefix + "busy_ns");
    }
    worker_slots_.push_back(std::move(slot));
  }
  if (!name_.empty()) {
    registry_queue_depth_ = obs::MetricsRegistry::Global().GetGauge(
        StrFormat("thread_pool.%s.queue_depth", name_.c_str()));
  }
  scheduler_ = std::make_unique<sched::Scheduler>(this, num_threads, name_);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  WaitIdle();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    const size_t depth = queue_.size();
    // Published under mu_ so concurrent Submits can't lose a higher
    // high-water value or publish depths out of order (Submit is the only
    // writer of queue_hwm_, so a load+store suffices while serialized).
    if (depth > queue_hwm_.load(std::memory_order_relaxed)) {
      queue_hwm_.store(depth, std::memory_order_relaxed);
    }
    if (registry_queue_depth_ != nullptr) {
      registry_queue_depth_->Set(static_cast<int64_t>(depth));
    }
  }
  queue_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::RunTimed(const std::function<void()>& task,
                          WorkerSlot* slot) {
  active_participants_.fetch_add(1, std::memory_order_relaxed);
  // Busy-ns accounting costs two clock reads per task; tasks here are
  // chunky ParallelFor drains, so that is noise. Only worker tasks are
  // credited — caller threads draining the queue count tasks only.
  if (slot == nullptr) {
    TRACE_SPAN("thread_pool.task");
    task();
    caller_tasks_.fetch_add(1, std::memory_order_relaxed);
    active_participants_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  TRACE_SPAN("thread_pool.task");
  const auto t0 = std::chrono::steady_clock::now();
  task();
  const uint64_t ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  slot->tasks.fetch_add(1, std::memory_order_relaxed);
  slot->busy_ns.fetch_add(ns, std::memory_order_relaxed);
  if (slot->registry_tasks != nullptr) {
    slot->registry_tasks->Add(1);
    slot->registry_busy_ns->Add(ns);
  }
  active_participants_.fetch_sub(1, std::memory_order_relaxed);
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  if (!name_.empty()) {
    obs::Tracer::SetCurrentThreadName(
        StrFormat("%s-worker-%zu", name_.c_str(), worker_index));
  }
  scheduler_->BindWorkerThread(worker_index);
  WorkerSlot* slot = worker_slots_[worker_index].get();
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    RunTimed(task, slot);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

bool ThreadPool::RunOneQueuedTask() {
  std::function<void()> task;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.empty()) {
      // Nothing to steal right now; nap until a task arrives or our loop's
      // last straggler finishes (the finisher notifies queue_cv_).
      queue_cv_.wait_for(lock, std::chrono::milliseconds(1));
      return false;
    }
    task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
  }
  RunTimed(task, nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
  }
  return true;
}

size_t ThreadPool::ChunkSize(size_t n, size_t num_threads) {
  // ~4 chunks per worker balances load without flooding the queue.
  const size_t chunks = std::max<size_t>(1, num_threads * 4);
  return std::max<size_t>(1, (n + chunks - 1) / chunks);
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelFor(n, fn, ParallelForOptions{});
}

ParallelForStrategy ThreadPool::DefaultStrategy() {
  static const ParallelForStrategy strategy = [] {
    if (const char* env = std::getenv("CORADD_SCHED")) {
      if (std::string(env) == "fixed") return ParallelForStrategy::kFixedChunk;
    }
    return ParallelForStrategy::kWorkStealing;
  }();
  return strategy;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                             const ParallelForOptions& options) {
  if (n == 0) return;
  TRACE_SPAN("thread_pool.parallel_for",
             {{"n", static_cast<int64_t>(n)}});
  ParallelForStrategy strategy = options.strategy;
  if (strategy == ParallelForStrategy::kDefault) strategy = DefaultStrategy();
  // The scheduler packs ranges into 32-bit bounds; loops beyond 4G
  // iterations (nothing in the pipeline comes near) take the legacy path.
  if (strategy == ParallelForStrategy::kFixedChunk ||
      n > static_cast<size_t>(UINT32_MAX)) {
    ParallelForFixedChunk(n, fn);
    return;
  }
  active_participants_.fetch_add(1, std::memory_order_relaxed);
  scheduler_->ParallelFor(n, fn);
  active_participants_.fetch_sub(1, std::memory_order_relaxed);
}

void ThreadPool::ParallelForFixedChunk(size_t n,
                                       const std::function<void(size_t)>& fn) {
  const size_t chunk = ChunkSize(n, num_threads());

  // Claim/progress state outlives this frame via shared_ptr: a helper task
  // that is popped after the loop completed only touches the (exhausted)
  // cursor and returns without dereferencing `fn`.
  struct ForState {
    std::atomic<size_t> cursor{0};
    std::atomic<size_t> done{0};
  };
  auto state = std::make_shared<ForState>();
  const std::function<void(size_t)>* fn_ptr = &fn;

  auto drain = [this, state, chunk, n, fn_ptr] {
    for (;;) {
      const size_t begin = state->cursor.fetch_add(chunk);
      if (begin >= n) return;
      const size_t end = std::min(n, begin + chunk);
      for (size_t i = begin; i < end; ++i) (*fn_ptr)(i);
      if (state->done.fetch_add(end - begin) + (end - begin) == n) {
        // Last chunk: wake any caller napping in RunOneQueuedTask.
        queue_cv_.notify_all();
      }
    }
  };

  const size_t num_helpers = std::min(num_threads(), (n + chunk - 1) / chunk);
  for (size_t t = 0; t < num_helpers; ++t) Submit(drain);

  // The caller claims chunks itself, then keeps the pool moving (other
  // loops' helper tasks included) until every one of its iterations is done.
  active_participants_.fetch_add(1, std::memory_order_relaxed);
  drain();
  active_participants_.fetch_sub(1, std::memory_order_relaxed);
  while (state->done.load() < n) RunOneQueuedTask();
}

std::vector<ThreadPool::WorkerStats> ThreadPool::worker_stats() const {
  std::vector<WorkerStats> out;
  out.reserve(worker_slots_.size());
  for (const auto& slot : worker_slots_) {
    out.push_back(
        WorkerStats{slot->tasks.load(std::memory_order_relaxed),
                    slot->busy_ns.load(std::memory_order_relaxed)});
  }
  return out;
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(
      [] {
        if (const char* env = std::getenv("CORADD_THREADS")) {
          const long v = std::strtol(env, nullptr, 10);
          if (v > 0) return static_cast<size_t>(v);
        }
        return static_cast<size_t>(0);  // one per hardware thread
      }(),
      "shared");
  return pool;
}

}  // namespace coradd
