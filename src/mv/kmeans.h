// Lloyd's k-means with k-means++ seeding (§4.1.2; [12], [2]), over dense
// double vectors with Euclidean distance. Deterministic given the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace coradd {

/// Result of one k-means run.
struct KMeansResult {
  /// cluster_of[i] = cluster index of point i, in [0, k).
  std::vector<int> cluster_of;
  /// Final within-cluster sum of squared distances.
  double inertia = 0.0;
  int iterations = 0;
};

/// Runs Lloyd's algorithm with k-means++ initialization.
/// `points` must be non-empty and rectangular; k in [1, points.size()].
KMeansResult KMeans(const std::vector<std::vector<double>>& points, int k,
                    Rng* rng, int max_iterations = 100);

/// Squared Euclidean distance (exposed for tests).
double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b);

}  // namespace coradd
