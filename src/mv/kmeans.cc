#include "mv/kmeans.h"

#include <algorithm>
#include <limits>

#include "common/status.h"

namespace coradd {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

KMeansResult KMeans(const std::vector<std::vector<double>>& points, int k,
                    Rng* rng, int max_iterations) {
  CORADD_CHECK(!points.empty());
  CORADD_CHECK(k >= 1 && static_cast<size_t>(k) <= points.size());
  CORADD_CHECK(rng != nullptr);
  const size_t n = points.size();
  const size_t dim = points[0].size();

  // --- k-means++ seeding: first center uniform, then proportional to the
  // squared distance to the nearest chosen center.
  std::vector<std::vector<double>> centers;
  centers.reserve(static_cast<size_t>(k));
  centers.push_back(points[rng->Uniform(n)]);
  std::vector<double> d2(n);
  while (centers.size() < static_cast<size_t>(k)) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      for (const auto& c : centers) best = std::min(best, SquaredDistance(points[i], c));
      d2[i] = best;
      total += best;
    }
    size_t chosen = 0;
    if (total <= 0.0) {
      chosen = rng->Uniform(n);  // all points coincide with centers
    } else {
      double target = rng->UniformDouble() * total;
      for (size_t i = 0; i < n; ++i) {
        target -= d2[i];
        if (target <= 0.0) {
          chosen = i;
          break;
        }
      }
    }
    centers.push_back(points[chosen]);
  }

  // --- Lloyd iterations.
  KMeansResult result;
  result.cluster_of.assign(n, 0);
  for (int iter = 0; iter < max_iterations; ++iter) {
    bool moved = false;
    // Assign.
    for (size_t i = 0; i < n; ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (int c = 0; c < k; ++c) {
        const double d = SquaredDistance(points[i], centers[static_cast<size_t>(c)]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (best != result.cluster_of[i]) {
        result.cluster_of[i] = best;
        moved = true;
      }
    }
    result.iterations = iter + 1;
    // Update.
    std::vector<std::vector<double>> sums(
        static_cast<size_t>(k), std::vector<double>(dim, 0.0));
    std::vector<int> counts(static_cast<size_t>(k), 0);
    for (size_t i = 0; i < n; ++i) {
      const auto c = static_cast<size_t>(result.cluster_of[i]);
      ++counts[c];
      for (size_t d = 0; d < dim; ++d) sums[c][d] += points[i][d];
    }
    for (int c = 0; c < k; ++c) {
      const auto uc = static_cast<size_t>(c);
      if (counts[uc] == 0) continue;  // empty cluster keeps its center
      for (size_t d = 0; d < dim; ++d) {
        centers[uc][d] = sums[uc][d] / counts[uc];
      }
    }
    if (!moved && iter > 0) break;
  }

  result.inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    result.inertia += SquaredDistance(
        points[i], centers[static_cast<size_t>(result.cluster_of[i])]);
  }
  return result;
}

}  // namespace coradd
