#include "mv/selectivity_vector.h"

#include <algorithm>

namespace coradd {

SelectivityVectorBuilder::SelectivityVectorBuilder(const UniverseStats* stats)
    : stats_(stats) {
  CORADD_CHECK(stats != nullptr);
}

size_t SelectivityVectorBuilder::Dimension() const {
  return stats_->universe().NumColumns();
}

std::vector<double> SelectivityVectorBuilder::Raw(const Query& q) const {
  std::vector<double> v(Dimension(), 1.0);
  for (const auto& p : q.predicates) {
    const int ucol = stats_->universe().ColumnIndex(p.column);
    CORADD_CHECK(ucol >= 0);
    const double sel = EstimateSelectivity(p, *stats_);
    v[static_cast<size_t>(ucol)] =
        std::min(v[static_cast<size_t>(ucol)], std::max(sel, 1e-9));
  }
  return v;
}

std::vector<double> SelectivityVectorBuilder::Propagated(const Query& q,
                                                         int max_steps) const {
  std::vector<double> v = Raw(q);
  const size_t dim = v.size();
  const CorrelationCatalog& corr = stats_->correlations();
  if (max_steps <= 0) max_steps = static_cast<int>(dim);

  // Predicated columns drive composite propagation (§4.1.1's last remark).
  std::vector<int> pred_cols;
  for (const auto& name : q.PredicateColumns()) {
    pred_cols.push_back(stats_->universe().ColumnIndex(name));
  }

  for (int step = 0; step < max_steps; ++step) {
    bool changed = false;
    std::vector<double> next = v;
    for (size_t i = 0; i < dim; ++i) {
      double best = v[i];
      // Single-attribute determinants: every column j with selectivity < 1.
      for (size_t j = 0; j < dim; ++j) {
        if (i == j || v[j] >= 1.0) continue;
        const double s =
            corr.Strength(static_cast<int>(i), static_cast<int>(j));
        if (s <= 0.0) continue;
        best = std::min(best, v[j] / s);
      }
      // Composite determinants from pairs of predicated attributes.
      for (size_t a = 0; a < pred_cols.size(); ++a) {
        for (size_t b = a + 1; b < pred_cols.size(); ++b) {
          const int ca = pred_cols[a];
          const int cb = pred_cols[b];
          if (static_cast<int>(i) == ca || static_cast<int>(i) == cb) continue;
          const double sel_pair = v[static_cast<size_t>(ca)] *
                                  v[static_cast<size_t>(cb)];
          if (sel_pair >= 1.0) continue;
          const double s = corr.Strength(std::vector<int>{static_cast<int>(i)},
                                         std::vector<int>{ca, cb});
          if (s <= 0.0) continue;
          best = std::min(best, sel_pair / s);
        }
      }
      if (best < v[i] - 1e-15) {
        next[i] = best;
        changed = true;
      }
    }
    v = std::move(next);
    if (!changed) break;
  }
  return v;
}

std::vector<double> ExtendWithTargets(const std::vector<double>& selectivity,
                                      const Query& q,
                                      const UniverseStats& stats,
                                      double alpha) {
  const Universe& u = stats.universe();
  std::vector<double> out = selectivity;
  out.resize(selectivity.size() + u.NumColumns(), 0.0);
  for (const auto& name : q.AllColumns()) {
    const int ucol = u.ColumnIndex(name);
    CORADD_CHECK(ucol >= 0);
    out[selectivity.size() + static_cast<size_t>(ucol)] =
        static_cast<double>(u.Column(static_cast<size_t>(ucol)).byte_size) *
        alpha;
  }
  return out;
}

}  // namespace coradd
