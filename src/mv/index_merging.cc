#include "mv/index_merging.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace coradd {

namespace {

int PredicateTypeRank(PredicateType t) {
  switch (t) {
    case PredicateType::kEquality:
      return 0;
    case PredicateType::kRange:
      return 1;
    case PredicateType::kIn:
      return 2;
  }
  return 3;
}

/// Union of all columns used by the group's queries, first-appearance order.
std::vector<std::string> GroupColumns(const Workload& workload,
                                      const QueryGroup& group) {
  std::vector<std::string> cols;
  for (int qi : group) {
    for (const auto& c :
         workload.queries[static_cast<size_t>(qi)].AllColumns()) {
      if (std::find(cols.begin(), cols.end(), c) == cols.end()) {
        cols.push_back(c);
      }
    }
  }
  return cols;
}

}  // namespace

ClusteredIndexDesigner::ClusteredIndexDesigner(const StatsRegistry* registry,
                                               const CostModel* model,
                                               IndexMergingOptions options)
    : registry_(registry), model_(model), options_(options) {
  CORADD_CHECK(registry != nullptr);
  CORADD_CHECK(model != nullptr);
}

std::vector<std::string> ClusteredIndexDesigner::DedicatedKey(
    const Query& q, const UniverseStats& stats) const {
  struct Entry {
    std::string column;
    int type_rank;
    double selectivity;
  };
  std::vector<Entry> entries;
  for (const auto& p : q.predicates) {
    bool seen = false;
    for (const auto& e : entries) {
      if (e.column == p.column) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    entries.push_back(
        {p.column, PredicateTypeRank(p.type), EstimateSelectivity(p, stats)});
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.type_rank != b.type_rank) {
                       return a.type_rank < b.type_rank;
                     }
                     return a.selectivity < b.selectivity;
                   });
  std::vector<std::string> key;
  key.reserve(entries.size());
  for (const auto& e : entries) key.push_back(e.column);
  return key;
}

std::vector<std::vector<std::string>> ClusteredIndexDesigner::Interleavings(
    const std::vector<std::string>& a,
    const std::vector<std::string>& b) const {
  // Remove from b attributes already present in a (keep a's positions).
  std::vector<std::string> b2;
  for (const auto& x : b) {
    if (std::find(a.begin(), a.end(), x) == a.end()) b2.push_back(x);
  }
  if (b2.empty()) return {a};
  if (a.empty()) return {b2};

  if (options_.concatenation_only) {
    std::vector<std::string> ab = a;
    ab.insert(ab.end(), b2.begin(), b2.end());
    std::vector<std::string> ba = b2;
    ba.insert(ba.end(), a.begin(), a.end());
    return {std::move(ab), std::move(ba)};
  }

  // Order-preserving interleavings of a and b2, enumerated recursively and
  // capped. The raw enumeration cap is 4x the returned cap so the final
  // stride-sample still spans qualitatively different merge shapes.
  const size_t raw_cap = options_.max_interleavings * 4;
  std::vector<std::vector<std::string>> all;
  std::vector<std::string> current;
  current.reserve(a.size() + b2.size());
  // Explicit stack DFS: state = (next index into a, next index into b2).
  struct Frame {
    size_t i, j;
    int branch;  // 0: about to try a, 1: about to try b, 2: done
  };
  std::vector<Frame> stack;
  stack.push_back({0, 0, 0});
  while (!stack.empty() && all.size() < raw_cap) {
    Frame& f = stack.back();
    if (f.i == a.size() && f.j == b2.size()) {
      all.push_back(current);
      stack.pop_back();
      if (!current.empty()) current.pop_back();
      continue;
    }
    if (f.branch == 0) {
      f.branch = 1;
      if (f.i < a.size()) {
        current.push_back(a[f.i]);
        stack.push_back({f.i + 1, f.j, 0});
        continue;
      }
    }
    if (f.branch == 1) {
      f.branch = 2;
      if (f.j < b2.size()) {
        current.push_back(b2[f.j]);
        stack.push_back({f.i, f.j + 1, 0});
        continue;
      }
    }
    stack.pop_back();
    if (!current.empty()) current.pop_back();
  }

  std::vector<std::vector<std::string>> out;
  if (all.size() <= options_.max_interleavings) {
    out = std::move(all);
  } else {
    const size_t stride = all.size() / options_.max_interleavings + 1;
    for (size_t i = 0; i < all.size(); i += stride) {
      out.push_back(std::move(all[i]));
    }
  }
  return out;
}

std::vector<std::string> ClusteredIndexDesigner::ApplyAttributeDrop(
    const std::vector<std::string>& key, const MvSpec& proto,
    const UniverseStats& stats) const {
  const DiskParams& disk = stats.options().disk;
  const double pages = static_cast<double>(MvHeapPages(proto, stats, disk));
  std::vector<std::string> out;
  std::vector<int> prefix_cols;
  for (const auto& attr : key) {
    if (out.size() >= options_.max_key_attrs) break;
    out.push_back(attr);
    prefix_cols.push_back(stats.universe().ColumnIndex(attr));
    // Once the prefix distinguishes more values than there are pages, every
    // deeper attribute is sub-page noise (§4.2's drop rule).
    if (stats.CompositeDistinct(prefix_cols) >= pages) break;
  }
  return out;
}

double ClusteredIndexDesigner::GroupCost(const Workload& workload,
                                         const QueryGroup& group,
                                         const MvSpec& spec) const {
  double total = 0.0;
  for (int qi : group) {
    const Query& q = workload.queries[static_cast<size_t>(qi)];
    const double c = model_->Seconds(q, spec);
    total += c * q.frequency;
  }
  return total;
}

double ClusteredIndexDesigner::GroupCostLowerBound(const Workload& workload,
                                                   const QueryGroup& group,
                                                   const MvSpec& spec) const {
  double total = 0.0;
  for (int qi : group) {
    const Query& q = workload.queries[static_cast<size_t>(qi)];
    total += model_->CostLowerBound(q, spec) * q.frequency;
  }
  return total;
}

std::map<double, std::vector<std::string>> ClusteredIndexDesigner::ScoreTrials(
    const Workload& workload, const QueryGroup& group, const MvSpec& proto,
    const std::vector<std::vector<std::string>>& trials, size_t keep) const {
  std::map<double, std::vector<std::string>> scored;
  if (trials.empty()) return scored;
  TRACE_SPAN("candgen.price_trials",
             {{"trials", static_cast<int64_t>(trials.size())}});
  ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : ThreadPool::Shared();
  const size_t block = std::max<size_t>(size_t{1}, options_.pricing_block);
  std::vector<double> cost(trials.size(), 0.0);
  std::vector<char> pruned(trials.size(), 0);
  uint64_t n_priced = 0;
  uint64_t n_pruned = 0;

  for (size_t begin = 0; begin < trials.size(); begin += block) {
    const size_t end = std::min(trials.size(), begin + block);

    // Pruning threshold: the keep-th smallest distinct priced cost so far.
    // A trial whose lower bound exceeds it strictly cannot enter the kept
    // top-`keep` (costs only shrink the threshold as more trials merge),
    // so skipping it cannot change the produced candidates. The threshold
    // refreshes at block boundaries only — between-block state is merged in
    // enumeration order — so the pruned set is deterministic at any thread
    // count.
    double threshold = kInfeasibleCost;
    bool have_threshold = false;
    if (options_.prune_trials && scored.size() >= keep && keep > 0) {
      auto it = scored.begin();
      std::advance(it, static_cast<long>(keep) - 1);
      threshold = it->first;
      have_threshold = true;
    }
    if (have_threshold) {
      for (size_t i = begin; i < end; ++i) {
        MvSpec trial = proto;
        trial.clustered_key = trials[i];
        if (GroupCostLowerBound(workload, group, trial) > threshold) {
          pruned[i] = 1;
        }
      }
    }

    // Price the surviving block concurrently; each task writes only its own
    // slot, and GroupCost is a pure function of (trial, model state) whose
    // memo layer is insertion-order independent.
    pool.ParallelFor(end - begin, [&](size_t k) {
      const size_t i = begin + k;
      if (pruned[i]) return;
      MvSpec trial = proto;
      trial.clustered_key = trials[i];
      cost[i] = GroupCost(workload, group, trial);
    });

    // Merge in enumeration order: equal-cost ties keep the first-enumerated
    // key, exactly as the legacy serial loop did.
    for (size_t i = begin; i < end; ++i) {
      if (pruned[i]) {
        ++n_pruned;
        continue;
      }
      ++n_priced;
      scored.emplace(cost[i], trials[i]);
    }
  }
  trials_priced_.fetch_add(n_priced, std::memory_order_relaxed);
  trials_pruned_.fetch_add(n_pruned, std::memory_order_relaxed);
  static obs::Counter& reg_priced =
      *obs::MetricsRegistry::Global().GetCounter("candgen.trials_priced");
  static obs::Counter& reg_pruned =
      *obs::MetricsRegistry::Global().GetCounter("candgen.trials_pruned");
  reg_priced.Add(n_priced);
  reg_pruned.Add(n_pruned);
  return scored;
}

std::vector<MvSpec> ClusteredIndexDesigner::DesignGroup(
    const Workload& workload, const QueryGroup& group,
    const std::string& fact_table, int t_override) const {
  CORADD_CHECK(!group.empty());
  TRACE_SPAN("candgen.group_design",
             {{"queries", static_cast<int64_t>(group.size())}});
  const int t = t_override > 0 ? t_override : options_.t;
  const size_t keep = static_cast<size_t>(std::max(1, t));
  const UniverseStats* stats = registry_->ForFact(fact_table);
  CORADD_CHECK(stats != nullptr);

  MvSpec proto;
  proto.fact_table = fact_table;
  proto.columns = GroupColumns(workload, group);
  proto.query_group = group;

  // Candidate clusterings, iteratively merged one dedicated key at a time.
  std::vector<std::vector<std::string>> candidates;
  candidates.push_back(ApplyAttributeDrop(
      DedicatedKey(workload.queries[static_cast<size_t>(group[0])], *stats),
      proto, *stats));

  for (size_t gi = 1; gi < group.size(); ++gi) {
    const std::vector<std::string> dedicated = DedicatedKey(
        workload.queries[static_cast<size_t>(group[gi])], *stats);
    // Enumerate this merge level's trials in a fixed order, then price.
    // Interleavings whose attribute-drop truncation collapses onto an
    // already-enumerated key are dominated (identical clustering, identical
    // cost) and are dropped before pricing.
    std::vector<std::vector<std::string>> trials;
    std::set<std::vector<std::string>> seen;
    uint64_t dominated = 0;
    for (const auto& base : candidates) {
      for (auto& merged : Interleavings(base, dedicated)) {
        std::vector<std::string> key =
            ApplyAttributeDrop(merged, proto, *stats);
        if (seen.insert(key).second) {
          trials.push_back(std::move(key));
        } else {
          ++dominated;
        }
      }
    }
    trials_pruned_.fetch_add(dominated, std::memory_order_relaxed);
    const std::map<double, std::vector<std::string>> scored =
        ScoreTrials(workload, group, proto, trials, keep);
    candidates.clear();
    for (const auto& [cost, key] : scored) {
      candidates.push_back(key);
      if (candidates.size() >= keep) break;
    }
    CORADD_CHECK(!candidates.empty());
  }

  // Rank final candidates and emit up to t specs (all survivors of the last
  // merge were fully priced, so this re-ranking is pure memo hits).
  std::map<double, std::vector<std::string>> final_scored;
  for (const auto& key : candidates) {
    MvSpec trial = proto;
    trial.clustered_key = key;
    final_scored.emplace(GroupCost(workload, group, trial), key);
  }
  std::vector<MvSpec> out;
  int rank = 0;
  for (const auto& [cost, key] : final_scored) {
    if (rank >= t) break;
    MvSpec spec = proto;
    spec.clustered_key = key;
    std::string gid;
    for (int qi : group) gid += StrFormat("%d_", qi);
    spec.name = StrFormat("mv_%s_g%sc%d", fact_table.c_str(), gid.c_str(), rank);
    out.push_back(std::move(spec));
    ++rank;
  }
  return out;
}

}  // namespace coradd
