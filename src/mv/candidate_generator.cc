#include "mv/candidate_generator.h"

#include "mv/fk_clustering.h"

namespace coradd {

MvCandidateGenerator::MvCandidateGenerator(const Catalog* catalog,
                                           const StatsRegistry* registry,
                                           const CostModel* model,
                                           CandidateGeneratorOptions options)
    : catalog_(catalog),
      registry_(registry),
      model_(model),
      options_(std::move(options)) {
  CORADD_CHECK(catalog != nullptr);
  CORADD_CHECK(registry != nullptr);
  CORADD_CHECK(model != nullptr);
  index_designer_ = std::make_unique<ClusteredIndexDesigner>(
      registry_, model_, options_.merging);
}

std::vector<MvSpec> MvCandidateGenerator::DesignForGroup(
    const Workload& workload, const QueryGroup& group,
    const std::string& fact_table, int t_override) const {
  return index_designer_->DesignGroup(workload, group, fact_table,
                                      t_override);
}

CandidateSet MvCandidateGenerator::Generate(const Workload& workload) const {
  CandidateSet out;
  for (const auto& fact : workload.FactTables()) {
    const UniverseStats* stats = registry_->ForFact(fact);
    CORADD_CHECK(stats != nullptr);
    const FactTableInfo* info = catalog_->GetFactInfo(fact);
    CORADD_CHECK(info != nullptr);

    // Queries on this fact table.
    std::vector<int> fact_queries;
    for (size_t qi = 0; qi < workload.queries.size(); ++qi) {
      if (workload.queries[qi].fact_table == fact) {
        fact_queries.push_back(static_cast<int>(qi));
      }
    }
    if (fact_queries.empty()) continue;

    // §4.1: candidate query groups.
    QueryGrouper grouper(stats, options_.grouping);
    std::vector<QueryGroup> groups = grouper.Groups(workload, fact_queries);

    // §4.2: t clusterings per group.
    for (const auto& group : groups) {
      for (auto& spec :
           index_designer_->DesignGroup(workload, group, fact)) {
        out.mvs.push_back(std::move(spec));
      }
    }
    out.groups.insert(out.groups.end(), groups.begin(), groups.end());

    // §4.3: fact-table re-clustering candidates (and the base design).
    for (auto& spec : FkReclusterCandidates(*info, *stats, workload)) {
      out.mvs.push_back(std::move(spec));
    }
  }
  return out;
}

}  // namespace coradd
