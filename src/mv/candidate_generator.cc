#include "mv/candidate_generator.h"

#include "common/string_util.h"
#include "mv/fk_clustering.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace coradd {

std::string CandidateGeneratorOptionsSignature(
    const CandidateGeneratorOptions& options) {
  std::string s = "g:";
  for (double a : options.grouping.alphas) s += StrFormat("%.17g,", a);
  s += StrFormat("seed=%llu,restarts=%d|m:t=%d,attrs=%zu,inter=%zu,cat=%d,"
                 "prune=%d,block=%zu",
                 static_cast<unsigned long long>(options.grouping.seed),
                 options.grouping.restarts, options.merging.t,
                 options.merging.max_key_attrs,
                 options.merging.max_interleavings,
                 options.merging.concatenation_only ? 1 : 0,
                 options.merging.prune_trials ? 1 : 0,
                 options.merging.pricing_block);
  return s;
}

void CandGenStats::Accumulate(const CandGenStats& other) {
  trials_priced += other.trials_priced;
  trials_pruned += other.trials_pruned;
  groups_designed += other.groups_designed;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  wall_seconds += other.wall_seconds;
}

std::string CandGenStats::ToString() const {
  return StrFormat(
      "CandGenStats{priced=%llu, pruned=%llu, groups=%llu, hits=%llu, "
      "misses=%llu, wall=%.3fs}",
      static_cast<unsigned long long>(trials_priced),
      static_cast<unsigned long long>(trials_pruned),
      static_cast<unsigned long long>(groups_designed),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses), wall_seconds);
}

MvCandidateGenerator::MvCandidateGenerator(const Catalog* catalog,
                                           const StatsRegistry* registry,
                                           const CostModel* model,
                                           CandidateGeneratorOptions options)
    : catalog_(catalog),
      registry_(registry),
      model_(model),
      options_(std::move(options)) {
  CORADD_CHECK(catalog != nullptr);
  CORADD_CHECK(registry != nullptr);
  CORADD_CHECK(model != nullptr);
  if (options_.merging.pool == nullptr) options_.merging.pool = options_.pool;
  index_designer_ = std::make_unique<ClusteredIndexDesigner>(
      registry_, model_, options_.merging);
}

CandGenStats MvCandidateGenerator::stats() const {
  CandGenStats out;
  out.trials_priced = index_designer_->trials_priced();
  out.trials_pruned = index_designer_->trials_pruned();
  out.groups_designed = groups_designed_.load(std::memory_order_relaxed);
  return out;
}

std::vector<MvSpec> MvCandidateGenerator::DesignForGroup(
    const Workload& workload, const QueryGroup& group,
    const std::string& fact_table, int t_override) const {
  groups_designed_.fetch_add(1, std::memory_order_relaxed);
  return index_designer_->DesignGroup(workload, group, fact_table,
                                      t_override);
}

CandidateSet MvCandidateGenerator::Generate(const Workload& workload) const {
  CandidateSet out;
  TRACE_SPAN_NAMED(
      gen_span, "candgen.generate",
      {{"queries", static_cast<int64_t>(workload.queries.size())}});
  static obs::Counter& groups_total = *obs::MetricsRegistry::Global()
                                           .GetCounter(
                                               "candgen.groups_designed");
  ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : ThreadPool::Shared();
  for (const auto& fact : workload.FactTables()) {
    const UniverseStats* stats = registry_->ForFact(fact);
    CORADD_CHECK(stats != nullptr);
    const FactTableInfo* info = catalog_->GetFactInfo(fact);
    CORADD_CHECK(info != nullptr);

    // Queries on this fact table.
    std::vector<int> fact_queries;
    for (size_t qi = 0; qi < workload.queries.size(); ++qi) {
      if (workload.queries[qi].fact_table == fact) {
        fact_queries.push_back(static_cast<int>(qi));
      }
    }
    if (fact_queries.empty()) continue;

    // §4.1: candidate query groups.
    QueryGrouper grouper(stats, options_.grouping);
    std::vector<QueryGroup> groups = grouper.Groups(workload, fact_queries);

    // §4.2: t clusterings per group. Groups are independent, so their
    // designs fan out across the pool; per-group results land in their own
    // slot and merge back in group order — bit-identical to the serial
    // loop at any thread count.
    std::vector<std::vector<MvSpec>> per_group(groups.size());
    pool.ParallelFor(groups.size(), [&](size_t g) {
      per_group[g] =
          index_designer_->DesignGroup(workload, groups[g], fact);
    });
    groups_designed_.fetch_add(groups.size(), std::memory_order_relaxed);
    groups_total.Add(groups.size());
    for (auto& specs : per_group) {
      for (auto& spec : specs) out.mvs.push_back(std::move(spec));
    }
    out.groups.insert(out.groups.end(), groups.begin(), groups.end());

    // §4.3: fact-table re-clustering candidates (and the base design).
    for (auto& spec : FkReclusterCandidates(*info, *stats, workload)) {
      out.mvs.push_back(std::move(spec));
    }
  }
  gen_span.Arg("mvs", static_cast<int64_t>(out.mvs.size()));
  return out;
}

}  // namespace coradd
