// Selectivity vectors and Selectivity Propagation (§4.1.1, Tables 1-2).
//
// A query's selectivity vector holds, per universe attribute, the fraction
// of rows its predicate on that attribute selects (1.0 when unpredicated).
// Plain vectors miss correlations — a predicate yearmonth=199401 implies
// year=1994 — so propagation repeatedly applies
//     selectivity(Ci) = min_j ( selectivity(Cj) / strength(Ci -> Cj) )
// until fixpoint. Composite determinants (e.g. (year, weeknum) in Q1.3) are
// handled by propagating from pairs of predicated attributes. Termination
// in at most |A| steps is guaranteed because strengths are <= 1 and update
// paths cannot cycle (A-4).
#pragma once

#include <vector>

#include "workload/query.h"

namespace coradd {

/// Builds (propagated) selectivity vectors for queries of one universe.
class SelectivityVectorBuilder {
 public:
  explicit SelectivityVectorBuilder(const UniverseStats* stats);

  /// Raw vector: predicate selectivities only (Table 1).
  std::vector<double> Raw(const Query& q) const;

  /// Propagated vector (Table 2). `max_steps` guards the |A|-step bound.
  std::vector<double> Propagated(const Query& q, int max_steps = 0) const;

  /// Number of vector elements (= universe columns).
  size_t Dimension() const;

 private:
  const UniverseStats* stats_;
};

/// Extends a selectivity vector with the §4.1.3 target-attribute elements:
/// for every universe column, bytesize(attr) * alpha when the query uses the
/// attribute, else 0. Returns a vector of dimension 2 * |A|.
std::vector<double> ExtendWithTargets(const std::vector<double>& selectivity,
                                      const Query& q,
                                      const UniverseStats& stats,
                                      double alpha);

}  // namespace coradd
