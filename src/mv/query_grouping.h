// Query grouping (§4.1): extended selectivity vectors are clustered with
// k-means for every k in 1..|Q| and several target-attribute weights alpha
// in [0, 0.5]; the union of all groupings (deduplicated) becomes the set of
// candidate query groups. Grouping need not be perfect — ILP feedback later
// expands/shrinks groups adaptively (§4.1.2's closing remark).
#pragma once

#include <set>
#include <vector>

#include "mv/selectivity_vector.h"
#include "workload/query.h"

namespace coradd {

/// A query group: sorted workload indices of its member queries.
using QueryGroup = std::vector<int>;

/// Knobs for grouping.
struct QueryGroupingOptions {
  /// Target-attribute weights; the paper sweeps 0..0.5 (§4.1.3).
  std::vector<double> alphas = {0.0, 0.1, 0.25, 0.5};
  uint64_t seed = 99;
  /// k-means++ restarts per (k, alpha); best inertia wins.
  int restarts = 2;
};

/// Produces candidate query groups for one fact table.
class QueryGrouper {
 public:
  QueryGrouper(const UniverseStats* stats, QueryGroupingOptions options = {});

  /// `fact_query_indices` are indices into `workload.queries` of the queries
  /// on this grouper's fact table. Returns deduplicated groups from every
  /// (k, alpha) run, always including every singleton group and the
  /// all-queries group.
  std::vector<QueryGroup> Groups(
      const Workload& workload,
      const std::vector<int>& fact_query_indices) const;

 private:
  const UniverseStats* stats_;
  QueryGroupingOptions options_;
};

}  // namespace coradd
