// Clustered-index design for query groups (§4.2, Figs 3-4).
//
// A dedicated MV (single query) gets its predicated attributes as the
// clustered key, ordered by predicate type (equality, range, IN) and then
// ascending selectivity. Multi-query groups are split into dedicated keys
// which are merged pairwise, exploring *order-preserving interleavings*
// (concatenation is the degenerate interleaving; the paper found
// concatenation-only merging up to 90% slower). After each merge the
// designer keeps the t clusterings with the best expected group runtime
// under the provided cost model, and drops trailing attributes once the
// leading attributes' distinct count exceeds one value per heap page.
#pragma once

#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "mv/query_grouping.h"

namespace coradd {

/// Knobs for the clustered-index designer.
struct IndexMergingOptions {
  /// Clusterings retained per MV (§4.2's t). ILP feedback raises this.
  int t = 2;
  /// Attribute-drop cap: "this limits the number of attributes in the
  /// clustered index to 7 or 8".
  size_t max_key_attrs = 7;
  /// Cap on interleavings enumerated per pairwise merge (the full count is
  /// binomial; beyond the cap a deterministic subsample is used).
  size_t max_interleavings = 256;
  /// When true, merge by concatenation only — the [6]-style baseline used
  /// by the ablation bench for the "up to 90% slower" claim.
  bool concatenation_only = false;
};

/// Designs clustered indexes for MV candidates.
class ClusteredIndexDesigner {
 public:
  ClusteredIndexDesigner(const StatsRegistry* registry, const CostModel* model,
                         IndexMergingOptions options = {});

  const IndexMergingOptions& options() const { return options_; }

  /// Dedicated clustered key for one query (§4.2's optimal single-query
  /// design).
  std::vector<std::string> DedicatedKey(const Query& q,
                                        const UniverseStats& stats) const;

  /// Enumerates order-preserving interleavings of `a` and `b` (duplicates
  /// in `b` removed), capped at `max_interleavings`. Exposed for tests.
  std::vector<std::vector<std::string>> Interleavings(
      const std::vector<std::string>& a,
      const std::vector<std::string>& b) const;

  /// Produces up to `t` MV candidates (same columns & group, different
  /// clustered keys) for the group. `t_override` > 0 replaces options().t —
  /// the hook ILP feedback uses to recluster with larger t.
  std::vector<MvSpec> DesignGroup(const Workload& workload,
                                  const QueryGroup& group,
                                  const std::string& fact_table,
                                  int t_override = 0) const;

 private:
  /// Truncates `key` per the attribute-drop rule for the MV's page count.
  std::vector<std::string> ApplyAttributeDrop(
      const std::vector<std::string>& key, const MvSpec& proto,
      const UniverseStats& stats) const;

  /// Sum of model costs of the group's queries against `spec`.
  double GroupCost(const Workload& workload, const QueryGroup& group,
                   const MvSpec& spec) const;

  const StatsRegistry* registry_;
  const CostModel* model_;
  IndexMergingOptions options_;
};

}  // namespace coradd
