// Clustered-index design for query groups (§4.2, Figs 3-4).
//
// A dedicated MV (single query) gets its predicated attributes as the
// clustered key, ordered by predicate type (equality, range, IN) and then
// ascending selectivity. Multi-query groups are split into dedicated keys
// which are merged pairwise, exploring *order-preserving interleavings*
// (concatenation is the degenerate interleaving; the paper found
// concatenation-only merging up to 90% slower). After each merge the
// designer keeps the t clusterings with the best expected group runtime
// under the provided cost model, and drops trailing attributes once the
// leading attributes' distinct count exceeds one value per heap page.
//
// Trial pricing is the designer's hot loop, so it runs in deterministic
// parallel blocks: trials are enumerated in a fixed order, each block is
// priced concurrently on the thread pool, results merge back in enumeration
// order, and between blocks a sound lower bound (CostModel::CostLowerBound)
// prunes trials that provably cannot enter the kept top-t. The produced
// candidates are bit-identical at any thread count and with pruning on or
// off (tests/property_test.cc + tests/candgen_test.cc lock this down).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "cost/cost_model.h"
#include "mv/query_grouping.h"

namespace coradd {

/// Knobs for the clustered-index designer.
struct IndexMergingOptions {
  /// Clusterings retained per MV (§4.2's t). ILP feedback raises this.
  int t = 2;
  /// Attribute-drop cap: "this limits the number of attributes in the
  /// clustered index to 7 or 8".
  size_t max_key_attrs = 7;
  /// Cap on interleavings enumerated per pairwise merge (the full count is
  /// binomial; beyond the cap a deterministic subsample is used).
  size_t max_interleavings = 256;
  /// When true, merge by concatenation only — the [6]-style baseline used
  /// by the ablation bench for the "up to 90% slower" claim.
  bool concatenation_only = false;
  /// Skip pricing trial keys whose cost lower bound already exceeds the
  /// worst kept top-t cost. Sound (never changes the produced candidates);
  /// off only for the pruning-safety property tests.
  bool prune_trials = true;
  /// Trials priced per parallel block; the pruning threshold refreshes at
  /// block boundaries only, keeping the pruned set deterministic.
  size_t pricing_block = 32;
  /// Pool trial pricing fans out on; nullptr = ThreadPool::Shared().
  ThreadPool* pool = nullptr;
};

/// Designs clustered indexes for MV candidates.
class ClusteredIndexDesigner {
 public:
  ClusteredIndexDesigner(const StatsRegistry* registry, const CostModel* model,
                         IndexMergingOptions options = {});

  const IndexMergingOptions& options() const { return options_; }

  /// Dedicated clustered key for one query (§4.2's optimal single-query
  /// design).
  std::vector<std::string> DedicatedKey(const Query& q,
                                        const UniverseStats& stats) const;

  /// Enumerates order-preserving interleavings of `a` and `b` (duplicates
  /// in `b` removed), capped at `max_interleavings`. Exposed for tests.
  std::vector<std::vector<std::string>> Interleavings(
      const std::vector<std::string>& a,
      const std::vector<std::string>& b) const;

  /// Produces up to `t` MV candidates (same columns & group, different
  /// clustered keys) for the group. `t_override` > 0 replaces options().t —
  /// the hook ILP feedback uses to recluster with larger t.
  std::vector<MvSpec> DesignGroup(const Workload& workload,
                                  const QueryGroup& group,
                                  const std::string& fact_table,
                                  int t_override = 0) const;

  /// Trial clusterings fully priced / dropped before pricing (dominated
  /// interleavings whose truncation duplicates an enumerated key, plus
  /// bound prunes) since construction (monotone; deterministic for a fixed
  /// input sequence).
  uint64_t trials_priced() const {
    return trials_priced_.load(std::memory_order_relaxed);
  }
  uint64_t trials_pruned() const {
    return trials_pruned_.load(std::memory_order_relaxed);
  }

 private:
  /// Truncates `key` per the attribute-drop rule for the MV's page count.
  std::vector<std::string> ApplyAttributeDrop(
      const std::vector<std::string>& key, const MvSpec& proto,
      const UniverseStats& stats) const;

  /// Sum of model costs of the group's queries against `spec`.
  double GroupCost(const Workload& workload, const QueryGroup& group,
                   const MvSpec& spec) const;

  /// Sum of model cost lower bounds — never exceeds GroupCost.
  double GroupCostLowerBound(const Workload& workload, const QueryGroup& group,
                             const MvSpec& spec) const;

  /// Prices `trials` (block-parallel, bound-pruned) and returns the scored
  /// map (cost -> key, first-enumerated wins cost ties). `keep` is the
  /// top-t size the caller will retain — the pruning threshold.
  std::map<double, std::vector<std::string>> ScoreTrials(
      const Workload& workload, const QueryGroup& group, const MvSpec& proto,
      const std::vector<std::vector<std::string>>& trials, size_t keep) const;

  const StatsRegistry* registry_;
  const CostModel* model_;
  IndexMergingOptions options_;
  mutable std::atomic<uint64_t> trials_priced_{0};
  mutable std::atomic<uint64_t> trials_pruned_{0};
};

}  // namespace coradd
