#include "mv/query_grouping.h"

#include <algorithm>

#include "mv/kmeans.h"

namespace coradd {

QueryGrouper::QueryGrouper(const UniverseStats* stats,
                           QueryGroupingOptions options)
    : stats_(stats), options_(std::move(options)) {
  CORADD_CHECK(stats != nullptr);
}

std::vector<QueryGroup> QueryGrouper::Groups(
    const Workload& workload,
    const std::vector<int>& fact_query_indices) const {
  std::set<QueryGroup> unique;
  const size_t n = fact_query_indices.size();
  if (n == 0) return {};

  // Propagated vectors are computed once; extension varies with alpha.
  SelectivityVectorBuilder builder(stats_);
  std::vector<std::vector<double>> propagated;
  propagated.reserve(n);
  for (int qi : fact_query_indices) {
    propagated.push_back(
        builder.Propagated(workload.queries[static_cast<size_t>(qi)]));
  }

  // Singletons and the all-queries group are always candidates (dedicated
  // MVs and the maximal shared MV).
  for (int qi : fact_query_indices) unique.insert(QueryGroup{qi});
  {
    QueryGroup all(fact_query_indices.begin(), fact_query_indices.end());
    std::sort(all.begin(), all.end());
    unique.insert(std::move(all));
  }

  Rng rng(options_.seed);
  for (double alpha : options_.alphas) {
    std::vector<std::vector<double>> points;
    points.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      points.push_back(ExtendWithTargets(
          propagated[i],
          workload.queries[static_cast<size_t>(fact_query_indices[i])],
          *stats_, alpha));
    }
    for (int k = 1; k <= static_cast<int>(n); ++k) {
      KMeansResult best;
      best.inertia = -1.0;
      for (int r = 0; r < std::max(1, options_.restarts); ++r) {
        KMeansResult res = KMeans(points, k, &rng);
        if (best.inertia < 0.0 || res.inertia < best.inertia) {
          best = std::move(res);
        }
      }
      std::vector<QueryGroup> groups(static_cast<size_t>(k));
      for (size_t i = 0; i < n; ++i) {
        groups[static_cast<size_t>(best.cluster_of[i])].push_back(
            fact_query_indices[i]);
      }
      for (auto& g : groups) {
        if (g.empty()) continue;
        std::sort(g.begin(), g.end());
        unique.insert(std::move(g));
      }
    }
  }
  return std::vector<QueryGroup>(unique.begin(), unique.end());
}

}  // namespace coradd
