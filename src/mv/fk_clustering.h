// Foreign-key clustering candidates for fact tables (§4.3). Clustering a
// fact table by PK rarely helps OLAP queries; re-clustering on a foreign
// key (or a predicated fact attribute) lets dimension predicates reach the
// fact heap through correlations, at the price of a dense PK secondary
// index (charged as the candidate's size). At most one re-clustering per
// fact table may be materialized (ILP condition 4).
#pragma once

#include <vector>

#include "catalog/catalog.h"
#include "cost/cost_model.h"
#include "workload/query.h"

namespace coradd {

/// Generates re-clustering candidates for one fact table:
///  * the base design (clustered on PK, size 0, always feasible),
///  * one candidate per foreign-key column,
///  * one per fact-table column predicated anywhere in the workload,
///  * (fk, predicated-fact-column) pairs.
/// The returned specs have is_fact_recluster = true (is_base for the first)
/// and query_group = all workload queries on the fact.
std::vector<MvSpec> FkReclusterCandidates(const FactTableInfo& fact_info,
                                          const UniverseStats& stats,
                                          const Workload& workload);

}  // namespace coradd
