#include "mv/fk_clustering.h"

#include <algorithm>

#include "common/string_util.h"

namespace coradd {

std::vector<MvSpec> FkReclusterCandidates(const FactTableInfo& fact_info,
                                          const UniverseStats& stats,
                                          const Workload& workload) {
  const Universe& u = stats.universe();
  const Schema& fact_schema = u.fact_table().schema();

  // Fact columns + the group of all queries on this fact.
  std::vector<std::string> fact_columns;
  for (size_t c = 0; c < fact_schema.NumColumns(); ++c) {
    fact_columns.push_back(fact_schema.Column(c).name);
  }
  std::vector<int> all_queries;
  for (size_t qi = 0; qi < workload.queries.size(); ++qi) {
    if (workload.queries[qi].fact_table == fact_info.name) {
      all_queries.push_back(static_cast<int>(qi));
    }
  }

  auto make = [&](std::vector<std::string> key, const char* tag,
                  bool is_base) {
    MvSpec spec;
    spec.name = StrFormat("recluster_%s_%s", fact_info.name.c_str(), tag);
    spec.fact_table = fact_info.name;
    spec.columns = fact_columns;
    spec.clustered_key = std::move(key);
    spec.query_group = all_queries;
    spec.is_fact_recluster = true;
    spec.is_base = is_base;
    return spec;
  };

  std::vector<MvSpec> out;
  out.push_back(make(fact_info.primary_key, "base_pk", /*is_base=*/true));

  // Predicated fact-table columns across the workload.
  std::vector<std::string> pred_fact_cols;
  for (int qi : all_queries) {
    for (const auto& col :
         workload.queries[static_cast<size_t>(qi)].PredicateColumns()) {
      if (fact_schema.HasColumn(col) &&
          std::find(pred_fact_cols.begin(), pred_fact_cols.end(), col) ==
              pred_fact_cols.end()) {
        pred_fact_cols.push_back(col);
      }
    }
  }

  std::vector<std::string> fk_cols;
  for (const auto& fk : fact_info.foreign_keys) fk_cols.push_back(fk.fact_column);

  int tag = 0;
  for (const auto& fk : fk_cols) {
    out.push_back(make({fk}, StrFormat("fk%d", tag++).c_str(), false));
  }
  for (const auto& col : pred_fact_cols) {
    if (std::find(fk_cols.begin(), fk_cols.end(), col) != fk_cols.end()) {
      continue;  // already emitted as an FK candidate
    }
    out.push_back(make({col}, StrFormat("p%d", tag++).c_str(), false));
  }
  for (const auto& fk : fk_cols) {
    for (const auto& col : pred_fact_cols) {
      if (col == fk) continue;
      out.push_back(
          make({fk, col}, StrFormat("fkp%d", tag++).c_str(), false));
    }
  }
  return out;
}

}  // namespace coradd
