// The MV Candidate Generator (§4, Fig 1): query grouping -> clustered index
// design -> fact-table re-clustering candidates, producing the MvSpec pool
// the ILP selects from.
#pragma once

#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "mv/index_merging.h"
#include "mv/query_grouping.h"

namespace coradd {

/// Knobs for candidate generation.
struct CandidateGeneratorOptions {
  QueryGroupingOptions grouping;
  IndexMergingOptions merging;
};

/// The generated candidate pool.
struct CandidateSet {
  std::vector<MvSpec> mvs;
  /// The deduplicated query groups candidates were generated from (per fact
  /// table, flattened) — reused by ILP feedback.
  std::vector<QueryGroup> groups;
};

/// Produces the initial candidate pool for a workload.
class MvCandidateGenerator {
 public:
  MvCandidateGenerator(const Catalog* catalog, const StatsRegistry* registry,
                       const CostModel* model,
                       CandidateGeneratorOptions options = {});

  /// Full §4 pipeline over every fact table the workload touches.
  CandidateSet Generate(const Workload& workload) const;

  /// Designs candidates for one explicit group (used by ILP feedback to
  /// expand/shrink groups and recluster with a larger t).
  std::vector<MvSpec> DesignForGroup(const Workload& workload,
                                     const QueryGroup& group,
                                     const std::string& fact_table,
                                     int t_override = 0) const;

  const CandidateGeneratorOptions& options() const { return options_; }

 private:
  const Catalog* catalog_;
  const StatsRegistry* registry_;
  const CostModel* model_;
  CandidateGeneratorOptions options_;
  std::unique_ptr<ClusteredIndexDesigner> index_designer_;
};

}  // namespace coradd
