// The MV Candidate Generator (§4, Fig 1): query grouping -> clustered index
// design -> fact-table re-clustering candidates, producing the MvSpec pool
// the ILP selects from.
//
// Group design is embarrassingly parallel: every query group's clustered
// indexes are designed independently on the thread pool and merged back in
// group order, so the generated CandidateSet is bit-identical at any thread
// count (the PR 3/PR 4 determinism contract; tests/candgen_test.cc).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/thread_pool.h"
#include "mv/index_merging.h"
#include "mv/query_grouping.h"

namespace coradd {

/// Knobs for candidate generation.
struct CandidateGeneratorOptions {
  QueryGroupingOptions grouping;
  IndexMergingOptions merging;
  /// Pool group design fans out on; nullptr = ThreadPool::Shared(). Also
  /// seeds merging.pool when that is unset.
  ThreadPool* pool = nullptr;
};

/// Signature of every option that affects the generated candidates (pools
/// excluded — they must not). Keys the cross-designer CandidateGenCache.
std::string CandidateGeneratorOptionsSignature(
    const CandidateGeneratorOptions& options);

/// The generated candidate pool.
struct CandidateSet {
  std::vector<MvSpec> mvs;
  /// The deduplicated query groups candidates were generated from (per fact
  /// table, flattened) — reused by ILP feedback.
  std::vector<QueryGroup> groups;
};

/// Counters describing candidate-generation work, accumulated across
/// generation passes and cache lookups (bench `candgen` JSON segment).
struct CandGenStats {
  uint64_t trials_priced = 0;    ///< trial clusterings fully priced
  uint64_t trials_pruned = 0;    ///< trials skipped by the pruning bound
  uint64_t groups_designed = 0;  ///< DesignGroup invocations
  uint64_t cache_hits = 0;       ///< CandidateGenCache hits
  uint64_t cache_misses = 0;     ///< CandidateGenCache misses (generations)
  double wall_seconds = 0.0;     ///< wall time spent generating

  void Accumulate(const CandGenStats& other);
  std::string ToString() const;
};

/// Produces the initial candidate pool for a workload.
class MvCandidateGenerator {
 public:
  MvCandidateGenerator(const Catalog* catalog, const StatsRegistry* registry,
                       const CostModel* model,
                       CandidateGeneratorOptions options = {});

  /// Full §4 pipeline over every fact table the workload touches.
  CandidateSet Generate(const Workload& workload) const;

  /// Designs candidates for one explicit group (used by ILP feedback to
  /// expand/shrink groups and recluster with a larger t).
  std::vector<MvSpec> DesignForGroup(const Workload& workload,
                                     const QueryGroup& group,
                                     const std::string& fact_table,
                                     int t_override = 0) const;

  const CandidateGeneratorOptions& options() const { return options_; }

  /// Generation-work counters since construction (trials priced/pruned and
  /// groups designed; cache fields and wall time are owned by the
  /// CandidateGenCache and stay zero here).
  CandGenStats stats() const;

 private:
  const Catalog* catalog_;
  const StatsRegistry* registry_;
  const CostModel* model_;
  CandidateGeneratorOptions options_;
  std::unique_ptr<ClusteredIndexDesigner> index_designer_;
  mutable std::atomic<uint64_t> groups_designed_{0};
};

}  // namespace coradd
