#include "cost/oblivious_cost_model.h"

#include <algorithm>

namespace coradd {

ObliviousCostModel::ObliviousCostModel(const StatsRegistry* registry)
    : registry_(registry) {
  CORADD_CHECK(registry != nullptr);
}

CostBreakdown ObliviousCostModel::Cost(const Query& q,
                                       const MvSpec& spec) const {
  const UniverseStats* stats = registry_->ForFact(spec.fact_table);
  if (stats == nullptr || !MvCanServe(q, spec)) return CostBreakdown{};
  const DiskParams& disk = stats->options().disk;
  const double pages = static_cast<double>(MvHeapPages(spec, *stats, disk));
  const double height = MvBTreeHeight(spec, *stats, disk);

  // Full scan.
  CostBreakdown best;
  best.path = AccessPath::kFullScan;
  best.selectivity = 1.0;
  best.fragments = 1.0;
  best.read_seconds = MvFullScanSeconds(spec, *stats, disk);
  best.seek_seconds = disk.seek_seconds;
  best.seconds = best.read_seconds + best.seek_seconds;

  // Clustered prefix scan: the contiguity math here involves no
  // correlations, so the oblivious model shares it.
  const ClusteredPrefixPlan plan =
      AnalyzeClusteredPrefix(q, spec.clustered_key, *stats);
  if (plan.usable()) {
    CostBreakdown c;
    c.path = AccessPath::kClusteredScan;
    c.selectivity = plan.selectivity;
    const double pages_read =
        std::min(pages, std::max(plan.selectivity * pages, plan.num_ranges));
    c.fragments = std::min(plan.num_ranges, pages_read);
    c.read_seconds = pages_read * disk.PageReadSeconds();
    c.seek_seconds = disk.seek_seconds * c.fragments * height;
    c.seconds = c.read_seconds + c.seek_seconds;
    if (c.seconds < best.seconds) best = c;
  }

  // Secondary plan over all predicates: selectivity-proportional read with
  // matching tuples assumed co-located (one fragment per predicate range).
  // This is precisely the clustering-independent estimate of Fig 10.
  if (!q.predicates.empty() && !spec.clustered_key.empty()) {
    const CostBreakdown s = SecondaryCost(q, spec, q.PredicateColumns());
    if (s.feasible() && s.seconds < best.seconds) best = s;
  }
  return best;
}

CostBreakdown ObliviousCostModel::SecondaryCost(
    const Query& q, const MvSpec& spec,
    const std::vector<std::string>& secondary_cols) const {
  CostBreakdown s;
  const UniverseStats* stats = registry_->ForFact(spec.fact_table);
  if (stats == nullptr || secondary_cols.empty() ||
      spec.clustered_key.empty()) {
    return s;
  }
  const DiskParams& disk = stats->options().disk;
  const double pages = static_cast<double>(MvHeapPages(spec, *stats, disk));
  const double height = MvBTreeHeight(spec, *stats, disk);

  double sel = 1.0;
  double ranges = 0.0;
  for (const auto& p : q.predicates) {
    if (std::find(secondary_cols.begin(), secondary_cols.end(), p.column) ==
        secondary_cols.end()) {
      continue;
    }
    sel *= EstimateSelectivity(p, *stats);
    ranges += p.type == PredicateType::kIn
                  ? static_cast<double>(p.in_values.size())
                  : 1.0;
  }
  if (ranges == 0.0) return s;
  s.path = AccessPath::kSecondary;
  s.secondary_columns = secondary_cols;
  s.selectivity = sel;
  const double pages_read = std::min(pages, std::max(sel * pages, 1.0));
  s.fragments = std::min(ranges, pages_read);
  s.read_seconds = pages_read * disk.PageReadSeconds();
  s.seek_seconds = disk.seek_seconds * s.fragments * height;
  s.seconds = s.read_seconds + s.seek_seconds;
  return s;
}

}  // namespace coradd
