#include "cost/column_order_cache.h"

#include <algorithm>
#include <numeric>

#include "common/status.h"

namespace coradd {

ColumnOrderCache::ColumnOrderCache(const Synopsis* synopsis)
    : synopsis_(synopsis) {
  CORADD_CHECK(synopsis != nullptr);
  columns_.resize(synopsis_->num_columns());
}

const ColumnOrder& ColumnOrderCache::ForColumn(int ucol) const {
  const size_t slot = static_cast<size_t>(ucol);
  CORADD_CHECK(slot < columns_.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (columns_[slot] != nullptr) return *columns_[slot];
  }

  // Build outside the lock: the order is a pure function of the synopsis,
  // so a concurrent duplicate build produces an identical object and the
  // loser is simply dropped.
  const std::vector<int64_t>& values = synopsis_->Values(ucol);
  const size_t n = values.size();
  auto order = std::make_shared<ColumnOrder>();
  order->sorted_rows.resize(n);
  std::iota(order->sorted_rows.begin(), order->sorted_rows.end(), 0u);
  std::sort(order->sorted_rows.begin(), order->sorted_rows.end(),
            [&](uint32_t a, uint32_t b) {
              if (values[a] != values[b]) return values[a] < values[b];
              return a < b;
            });
  order->dense_rank.resize(n);
  order->run_begin.clear();
  for (size_t pos = 0; pos < n; ++pos) {
    const uint32_t row = order->sorted_rows[pos];
    if (pos == 0 || values[row] != values[order->sorted_rows[pos - 1]]) {
      order->run_begin.push_back(static_cast<uint32_t>(pos));
    }
    order->dense_rank[row] =
        static_cast<uint32_t>(order->run_begin.size() - 1);
  }
  order->run_begin.push_back(static_cast<uint32_t>(n));

  std::lock_guard<std::mutex> lock(mu_);
  if (columns_[slot] == nullptr) columns_[slot] = std::move(order);
  return *columns_[slot];
}

std::vector<uint32_t> ColumnOrderCache::ComposeRanks(
    const std::vector<int>& ucols) const {
  const size_t n = num_rows();
  std::vector<uint32_t> rank(n);
  if (ucols.empty()) {
    // No key columns: the legacy comparator degenerates to row order.
    std::iota(rank.begin(), rank.end(), 0u);
    return rank;
  }

  // LSD radix composition. Seed with the last column's cached permutation
  // (a stable sort of the identity by that column), then stably re-sort by
  // each earlier column via one counting-sort pass over its dense ranks.
  // The result orders rows by (ucols..., row index) — exactly the legacy
  // comparison sort, since dense ranks are order-isomorphic to values and
  // every pass is stable.
  std::vector<uint32_t> order = ForColumn(ucols.back()).sorted_rows;
  std::vector<uint32_t> next(n);
  std::vector<uint32_t> offset;
  for (size_t c = ucols.size() - 1; c-- > 0;) {
    const ColumnOrder& col = ForColumn(ucols[c]);
    // Bucket offsets are the cached equal-run boundaries.
    offset.assign(col.run_begin.begin(), col.run_begin.end() - 1);
    for (uint32_t row : order) next[offset[col.dense_rank[row]]++] = row;
    order.swap(next);
  }
  for (size_t pos = 0; pos < n; ++pos) {
    rank[order[pos]] = static_cast<uint32_t>(pos);
  }
  return rank;
}

}  // namespace coradd
