// Precomputed per-column sort orders of a table synopsis.
//
// The correlation cost model ranks every synopsis row by a trial MV's
// clustered key to estimate how matched rows scatter across the heap.
// Candidate generation prices thousands of trial keys per workload, and
// sorting the full synopsis afresh for each one (an O(n log n) comparison
// sort with a k-column comparator) dominated generation time. This cache
// applies the CORDS discipline — compute per-column structure once, compose
// cheaply per trial: each column's order is sorted a single time, and a
// trial key's lexicographic order is then produced by LSD radix composition
// (one stable counting-sort pass per key column over the cached dense
// ranks), which is O(k * n) with no comparisons.
//
// Determinism contract: ComposeRanks(cols) returns bit-identical output to
// a std::sort of row indices by (value(cols[0]), ..., value(cols[k-1]),
// row index) — the exact comparator the cost model used before this cache
// existed; tests/candgen_test.cc locks the equivalence down on randomized
// synopses. Lazily built column orders are pure functions of the synopsis,
// so concurrent construction is race-free and order-independent.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "stats/synopsis.h"

namespace coradd {

/// Sort structure of one synopsis column.
struct ColumnOrder {
  /// Synopsis rows sorted by (column value, row index).
  std::vector<uint32_t> sorted_rows;
  /// dense_rank[row] = index of the row's value among the column's sorted
  /// distinct values (0-based).
  std::vector<uint32_t> dense_rank;
  /// Equal-run boundaries in `sorted_rows`: run_begin[d] is the offset where
  /// the d-th distinct value's run starts; run_begin.back() == n. The run
  /// lengths double as the counting-sort bucket sizes during composition.
  std::vector<uint32_t> run_begin;

  size_t num_distinct() const {
    return run_begin.empty() ? 0 : run_begin.size() - 1;
  }
};

/// Lazily-built per-column orders over one synopsis, composable into
/// multi-column clustered-key rank orders. Thread-safe.
class ColumnOrderCache {
 public:
  explicit ColumnOrderCache(const Synopsis* synopsis);

  size_t num_rows() const { return synopsis_->sample_rows(); }

  /// The order of universe column `ucol`, built on first use.
  const ColumnOrder& ForColumn(int ucol) const;

  /// rank_of_row for the lexicographic order by (ucols..., row index):
  /// rank_of_row[i] = position of synopsis row i under the trial key.
  /// Bit-identical to the legacy fresh-sort ranks.
  std::vector<uint32_t> ComposeRanks(const std::vector<int>& ucols) const;

 private:
  const Synopsis* synopsis_;
  /// Guards lazy slot creation only; built ColumnOrders are immutable.
  mutable std::mutex mu_;
  mutable std::vector<std::shared_ptr<const ColumnOrder>> columns_;
};

}  // namespace coradd
