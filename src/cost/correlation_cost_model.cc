#include "cost/correlation_cost_model.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/string_util.h"
#include "stats/ae_estimator.h"

namespace coradd {

CorrelationCostModel::CorrelationCostModel(const StatsRegistry* registry,
                                           CorrelationCostModelOptions options)
    : registry_(registry), options_(options) {
  CORADD_CHECK(registry != nullptr);
}

std::string CorrelationCostModel::CacheId() const {
  return StrFormat("correlation-aware(b=%u,s=%zu)", options_.bucket_pages,
                   options_.max_subset_size);
}

namespace {
/// Structural identity of a spec for memoization (name excluded; column
/// *set* determines row width, key *order* determines clustering).
std::string SpecSignature(const MvSpec& spec) {
  std::vector<std::string> cols = spec.columns;
  std::sort(cols.begin(), cols.end());
  std::string s = spec.fact_table;
  s += spec.is_base ? "|B|" : (spec.is_fact_recluster ? "|R|" : "|M|");
  for (const auto& c : cols) {
    s += c;
    s += ',';
  }
  s += '|';
  for (const auto& k : spec.clustered_key) {
    s += k;
    s += ',';
  }
  return s;
}

/// Sorts bucket observations ascending. Values live in [0, num_buckets);
/// when the bucket range is comparable to the observation count a counting
/// sort beats the comparison sort — the output is identical either way, so
/// the branch cannot affect estimates.
void SortBucketObs(std::vector<int64_t>* obs, double num_buckets) {
  const double dense_limit =
      4.0 * static_cast<double>(obs->size()) + 1024.0;
  if (num_buckets <= dense_limit) {
    std::vector<uint32_t> counts(static_cast<size_t>(num_buckets) + 1, 0);
    for (int64_t v : *obs) ++counts[static_cast<size_t>(v)];
    size_t out = 0;
    for (size_t b = 0; b < counts.size(); ++b) {
      for (uint32_t k = 0; k < counts[b]; ++k) {
        (*obs)[out++] = static_cast<int64_t>(b);
      }
    }
  } else {
    std::sort(obs->begin(), obs->end());
  }
}
}  // namespace

const std::vector<uint32_t>& CorrelationCostModel::MatchedRows(
    const UniverseStats& stats, const Query& q,
    const std::vector<std::string>& cols) const {
  std::string key = stats.universe().fact_name() + "|" + q.id + "|";
  for (const auto& c : cols) key += c + ",";
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = matched_cache_.find(key);
    if (it != matched_cache_.end()) return it->second;
  }

  const Synopsis& syn = stats.synopsis();
  std::vector<const Predicate*> preds;
  std::vector<int> ucols;
  for (const auto& p : q.predicates) {
    if (std::find(cols.begin(), cols.end(), p.column) == cols.end()) continue;
    preds.push_back(&p);
    ucols.push_back(stats.universe().ColumnIndex(p.column));
  }

  std::vector<uint32_t> matched;
  const size_t n = syn.sample_rows();
  for (size_t i = 0; i < n; ++i) {
    bool ok = true;
    for (size_t j = 0; j < preds.size(); ++j) {
      if (!preds[j]->Matches(syn.Values(ucols[j])[i])) {
        ok = false;
        break;
      }
    }
    if (ok) matched.push_back(static_cast<uint32_t>(i));
  }
  std::lock_guard<std::mutex> lock(mu_);
  return matched_cache_.try_emplace(std::move(key), std::move(matched))
      .first->second;
}

const ColumnOrderCache& CorrelationCostModel::OrderCache(
    const UniverseStats& stats) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = order_caches_.find(&stats);
  if (it == order_caches_.end()) {
    it = order_caches_
             .try_emplace(&stats,
                          std::make_unique<ColumnOrderCache>(&stats.synopsis()))
             .first;
  }
  return *it->second;
}

const CorrelationCostModel::RankCacheEntry& CorrelationCostModel::Ranks(
    const UniverseStats& stats, const MvSpec& spec) const {
  std::string key = stats.universe().fact_name() + "|";
  for (const auto& c : spec.clustered_key) key += c + ",";
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = rank_cache_.find(key);
    if (it != rank_cache_.end()) return it->second;
  }

  std::vector<int> key_cols;
  key_cols.reserve(spec.clustered_key.size());
  for (const auto& c : spec.clustered_key) {
    key_cols.push_back(stats.universe().ColumnIndex(c));
  }

  RankCacheEntry entry;
  entry.rank_of_row = OrderCache(stats).ComposeRanks(key_cols);
  std::lock_guard<std::mutex> lock(mu_);
  return rank_cache_.try_emplace(std::move(key), std::move(entry))
      .first->second;
}

CostBreakdown CorrelationCostModel::FullScanPath(
    const Query& q, const MvSpec& spec, const UniverseStats& stats) const {
  (void)q;
  const DiskParams& disk = stats.options().disk;
  CostBreakdown out;
  out.path = AccessPath::kFullScan;
  out.selectivity = 1.0;
  out.fragments = 1.0;
  out.read_seconds = MvFullScanSeconds(spec, stats, disk);
  out.seek_seconds = disk.seek_seconds;
  out.seconds = out.read_seconds + out.seek_seconds;
  return out;
}

CostBreakdown CorrelationCostModel::ClusteredPath(
    const Query& q, const MvSpec& spec, const UniverseStats& stats) const {
  CostBreakdown out;
  const ClusteredPrefixPlan plan =
      AnalyzeClusteredPrefix(q, spec.clustered_key, stats);
  if (!plan.usable()) return out;  // infeasible

  const DiskParams& disk = stats.options().disk;
  const double pages = static_cast<double>(MvHeapPages(spec, stats, disk));
  const double height = MvBTreeHeight(spec, stats, disk);
  const double pages_read =
      std::min(pages, std::max(plan.selectivity * pages, plan.num_ranges));

  out.path = AccessPath::kClusteredScan;
  out.selectivity = plan.selectivity;
  out.fragments = std::min(plan.num_ranges, pages_read);
  out.read_seconds = pages_read * disk.PageReadSeconds();
  out.seek_seconds = disk.seek_seconds * out.fragments * height;
  out.seconds = out.read_seconds + out.seek_seconds;
  return out;
}

CostBreakdown CorrelationCostModel::SecondaryPathCost(
    const Query& q, const MvSpec& spec,
    const std::vector<std::string>& secondary_cols) const {
  std::string memo_key = "S|" + q.id + "|" + SpecSignature(spec) + "|";
  for (const auto& c : secondary_cols) {
    memo_key += c;
    memo_key += ',';
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto it = result_cache_.find(memo_key); it != result_cache_.end()) {
      return it->second;
    }
  }
  const UniverseStats* stats = registry_->ForFact(spec.fact_table);
  CORADD_CHECK(stats != nullptr);
  const DiskParams& disk = stats->options().disk;
  CostBreakdown out;
  if (spec.clustered_key.empty() || secondary_cols.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    result_cache_.try_emplace(std::move(memo_key), out);
    return out;
  }

  const double pages = static_cast<double>(MvHeapPages(spec, *stats, disk));
  const double height = MvBTreeHeight(spec, *stats, disk);
  const double num_buckets =
      std::max(1.0, pages / static_cast<double>(options_.bucket_pages));

  // Selectivity of the predicates the CM/index covers.
  double sel_cols = 1.0;
  for (const auto& p : q.predicates) {
    if (std::find(secondary_cols.begin(), secondary_cols.end(), p.column) !=
        secondary_cols.end()) {
      sel_cols *= EstimateSelectivity(p, *stats);
    }
  }
  const double matched_full =
      std::max(1.0, sel_cols * static_cast<double>(stats->num_rows()));

  const auto& matched = MatchedRows(*stats, q, secondary_cols);
  const Synopsis& syn = stats->synopsis();
  const size_t n = syn.sample_rows();

  double est_buckets;
  double occupancy;  // Fraction of the touched band that is actually read.
  if (matched.empty() || n == 0) {
    // No sampled row matched: fall back to the uncorrelated assumption —
    // each matching tuple lands in its own bucket until buckets saturate.
    est_buckets = std::min(num_buckets, matched_full);
    occupancy = est_buckets / num_buckets;
  } else {
    const auto& ranks = Ranks(*stats, spec).rank_of_row;
    std::vector<int64_t> bucket_obs;
    bucket_obs.reserve(matched.size());
    const double scale = num_buckets / static_cast<double>(n);
    for (uint32_t i : matched) {
      bucket_obs.push_back(
          static_cast<int64_t>(static_cast<double>(ranks[i]) * scale));
    }
    SortBucketObs(&bucket_obs, num_buckets);

    // Two estimators for the number of distinct buckets the full matched
    // population touches, good in complementary regimes:
    //  * AE over the sampled bucket frequencies (A-2.2's estimator) —
    //    accurate when the sample covers the touched region densely;
    //  * a span-occupancy model — the sampled ranks bound the touched band
    //    [min,max]; throwing matched_full rows uniformly into its `span`
    //    buckets touches span*(1-e^-lambda) of them. Accurate when the
    //    sample is sparse (highly selective predicates).
    // Both under-estimate outside their regime, so take the max.
    if (matched.size() < 4) {
      // Too few sampled matches to read anything from their positions (a
      // lucky pair of nearby rows would fake a strong correlation): assume
      // uncorrelated scatter.
      est_buckets = std::min(num_buckets, matched_full);
      occupancy = est_buckets / num_buckets;
    } else {
      const auto profile = SampleFrequencyProfile::FromSortedValues(
          bucket_obs, static_cast<uint64_t>(matched_full));
      const double d_ae = EstimateDistinctAe(profile);
      const double span = static_cast<double>(bucket_obs.back()) -
                          static_cast<double>(bucket_obs.front()) + 1.0;
      const double lambda = matched_full / span;
      const double d_span = span * (1.0 - std::exp(-lambda));
      est_buckets = std::min(num_buckets, std::max(d_ae, d_span));
      occupancy = std::min(1.0, est_buckets / span);
    }
  }

  // Touched buckets coalesce into fragments where they are contiguous: at
  // occupancy ~1 the band is one sequential sweep; at low occupancy every
  // bucket is its own fragment.
  const double fragments =
      std::max(1.0, est_buckets * (1.0 - occupancy) + 1.0);
  const double pages_read = std::min(
      pages, est_buckets * static_cast<double>(options_.bucket_pages));

  out.path = AccessPath::kSecondary;
  out.secondary_columns = secondary_cols;
  out.selectivity = pages_read / std::max(1.0, pages);
  out.fragments = fragments;
  out.read_seconds = pages_read * disk.PageReadSeconds();
  out.seek_seconds = disk.seek_seconds * fragments * height;
  out.seconds = out.read_seconds + out.seek_seconds;
  std::lock_guard<std::mutex> lock(mu_);
  return result_cache_.try_emplace(std::move(memo_key), std::move(out))
      .first->second;
}

std::vector<std::vector<std::string>> CorrelationCostModel::SecondarySubsets(
    const Query& q) const {
  // Singletons, pairs (bounded), and the full set — the exact family both
  // Cost() and CostLowerBound() walk, factored out so they cannot drift.
  const auto pred_cols = q.PredicateColumns();
  std::vector<std::vector<std::string>> subsets;
  for (const auto& c : pred_cols) subsets.push_back({c});
  if (options_.max_subset_size >= 2 && pred_cols.size() <= 5) {
    for (size_t i = 0; i < pred_cols.size(); ++i) {
      for (size_t j = i + 1; j < pred_cols.size(); ++j) {
        subsets.push_back({pred_cols[i], pred_cols[j]});
      }
    }
  }
  if (pred_cols.size() > 2) subsets.push_back(pred_cols);
  return subsets;
}

CostBreakdown CorrelationCostModel::Cost(const Query& q,
                                         const MvSpec& spec) const {
  const UniverseStats* stats = registry_->ForFact(spec.fact_table);
  if (stats == nullptr || !MvCanServe(q, spec)) return CostBreakdown{};

  const std::string memo_key = "C|" + q.id + "|" + SpecSignature(spec);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto it = result_cache_.find(memo_key); it != result_cache_.end()) {
      return it->second;
    }
  }

  CostBreakdown best = FullScanPath(q, spec, *stats);

  const CostBreakdown clustered = ClusteredPath(q, spec, *stats);
  if (clustered.feasible() && clustered.seconds < best.seconds) {
    best = clustered;
  }

  for (const auto& sub : SecondarySubsets(q)) {
    const CostBreakdown sec = SecondaryPathCost(q, spec, sub);
    if (sec.feasible() && sec.seconds < best.seconds) best = sec;
  }
  std::lock_guard<std::mutex> lock(mu_);
  return result_cache_.try_emplace(memo_key, std::move(best)).first->second;
}

double CorrelationCostModel::CostLowerBound(const Query& q,
                                            const MvSpec& spec) const {
  const UniverseStats* stats = registry_->ForFact(spec.fact_table);
  if (stats == nullptr || !MvCanServe(q, spec)) return kInfeasibleCost;

  // Exact cheap paths: full scan always, clustered prefix when usable.
  double lb = FullScanPath(q, spec, *stats).seconds;
  const CostBreakdown clustered = ClusteredPath(q, spec, *stats);
  if (clustered.feasible()) lb = std::min(lb, clustered.seconds);

  // Floor under every secondary path the model can produce, per subset it
  // would actually price. The floor is AE-free and key-independent, built
  // from the cached matched-row sets: when a subset matches < 4 sampled
  // rows, SecondaryPathCost uses the uncorrelated-scatter formula whose
  // bucket count we reproduce exactly; otherwise the AE/span estimate can
  // legitimately collapse to one bucket (a perfectly correlated clustering
  // really is that cheap), so only the >=1-bucket, >=1-seek-chain floor is
  // sound. Fragments >= 1 in every branch.
  if (!spec.clustered_key.empty() && !q.predicates.empty()) {
    const DiskParams& disk = stats->options().disk;
    const double pages = static_cast<double>(MvHeapPages(spec, *stats, disk));
    const double height = MvBTreeHeight(spec, *stats, disk);
    const double num_buckets =
        std::max(1.0, pages / static_cast<double>(options_.bucket_pages));
    const size_t n = stats->synopsis().sample_rows();
    for (const auto& sub : SecondarySubsets(q)) {
      double floor_buckets = 1.0;
      if (n > 0 && MatchedRows(*stats, q, sub).size() < 4) {
        double sel_cols = 1.0;
        for (const auto& p : q.predicates) {
          if (std::find(sub.begin(), sub.end(), p.column) != sub.end()) {
            sel_cols *= EstimateSelectivity(p, *stats);
          }
        }
        const double matched_full = std::max(
            1.0, sel_cols * static_cast<double>(stats->num_rows()));
        floor_buckets = std::min(num_buckets, matched_full);
      }
      const double floor_pages = std::min(
          pages, floor_buckets * static_cast<double>(options_.bucket_pages));
      lb = std::min(lb, floor_pages * disk.PageReadSeconds() +
                            disk.seek_seconds * height);
    }
  }
  return lb;
}

}  // namespace coradd
