#include "cost/correlation_cost_model.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/string_util.h"
#include "stats/ae_estimator.h"

namespace coradd {

CorrelationCostModel::CorrelationCostModel(const StatsRegistry* registry,
                                           CorrelationCostModelOptions options)
    : registry_(registry), options_(options) {
  CORADD_CHECK(registry != nullptr);
}

namespace {
/// Structural identity of a spec for memoization (name excluded; column
/// *set* determines row width, key *order* determines clustering).
std::string SpecSignature(const MvSpec& spec) {
  std::vector<std::string> cols = spec.columns;
  std::sort(cols.begin(), cols.end());
  std::string s = spec.fact_table;
  s += spec.is_base ? "|B|" : (spec.is_fact_recluster ? "|R|" : "|M|");
  for (const auto& c : cols) {
    s += c;
    s += ',';
  }
  s += '|';
  for (const auto& k : spec.clustered_key) {
    s += k;
    s += ',';
  }
  return s;
}
}  // namespace

const std::vector<uint32_t>& CorrelationCostModel::MatchedRows(
    const UniverseStats& stats, const Query& q,
    const std::vector<std::string>& cols) const {
  std::string key = stats.universe().fact_name() + "|" + q.id + "|";
  for (const auto& c : cols) key += c + ",";
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = matched_cache_.find(key);
  if (it != matched_cache_.end()) return it->second;

  const Synopsis& syn = stats.synopsis();
  std::vector<const Predicate*> preds;
  std::vector<int> ucols;
  for (const auto& p : q.predicates) {
    if (std::find(cols.begin(), cols.end(), p.column) == cols.end()) continue;
    preds.push_back(&p);
    ucols.push_back(stats.universe().ColumnIndex(p.column));
  }

  std::vector<uint32_t> matched;
  const size_t n = syn.sample_rows();
  for (size_t i = 0; i < n; ++i) {
    bool ok = true;
    for (size_t j = 0; j < preds.size(); ++j) {
      if (!preds[j]->Matches(syn.Values(ucols[j])[i])) {
        ok = false;
        break;
      }
    }
    if (ok) matched.push_back(static_cast<uint32_t>(i));
  }
  return matched_cache_.emplace(std::move(key), std::move(matched))
      .first->second;
}

const CorrelationCostModel::RankCacheEntry& CorrelationCostModel::Ranks(
    const UniverseStats& stats, const MvSpec& spec) const {
  std::string key = stats.universe().fact_name() + "|";
  for (const auto& c : spec.clustered_key) key += c + ",";
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = rank_cache_.find(key);
  if (it != rank_cache_.end()) return it->second;

  const Synopsis& syn = stats.synopsis();
  const size_t n = syn.sample_rows();
  std::vector<int> key_cols;
  for (const auto& c : spec.clustered_key) {
    key_cols.push_back(stats.universe().ColumnIndex(c));
  }

  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    for (int c : key_cols) {
      const int64_t va = syn.Values(c)[a];
      const int64_t vb = syn.Values(c)[b];
      if (va != vb) return va < vb;
    }
    return a < b;
  });

  RankCacheEntry entry;
  entry.rank_of_row.resize(n);
  for (size_t pos = 0; pos < n; ++pos) {
    entry.rank_of_row[order[pos]] = static_cast<uint32_t>(pos);
  }
  return rank_cache_.emplace(std::move(key), std::move(entry)).first->second;
}

CostBreakdown CorrelationCostModel::FullScanPath(
    const Query& q, const MvSpec& spec, const UniverseStats& stats) const {
  (void)q;
  const DiskParams& disk = stats.options().disk;
  CostBreakdown out;
  out.path = AccessPath::kFullScan;
  out.selectivity = 1.0;
  out.fragments = 1.0;
  out.read_seconds = MvFullScanSeconds(spec, stats, disk);
  out.seek_seconds = disk.seek_seconds;
  out.seconds = out.read_seconds + out.seek_seconds;
  return out;
}

CostBreakdown CorrelationCostModel::ClusteredPath(
    const Query& q, const MvSpec& spec, const UniverseStats& stats) const {
  CostBreakdown out;
  const ClusteredPrefixPlan plan =
      AnalyzeClusteredPrefix(q, spec.clustered_key, stats);
  if (!plan.usable()) return out;  // infeasible

  const DiskParams& disk = stats.options().disk;
  const double pages = static_cast<double>(MvHeapPages(spec, stats, disk));
  const double height = MvBTreeHeight(spec, stats, disk);
  const double pages_read =
      std::min(pages, std::max(plan.selectivity * pages, plan.num_ranges));

  out.path = AccessPath::kClusteredScan;
  out.selectivity = plan.selectivity;
  out.fragments = std::min(plan.num_ranges, pages_read);
  out.read_seconds = pages_read * disk.PageReadSeconds();
  out.seek_seconds = disk.seek_seconds * out.fragments * height;
  out.seconds = out.read_seconds + out.seek_seconds;
  return out;
}

CostBreakdown CorrelationCostModel::SecondaryPathCost(
    const Query& q, const MvSpec& spec,
    const std::vector<std::string>& secondary_cols) const {
  std::string memo_key = "S|" + q.id + "|" + SpecSignature(spec) + "|";
  for (const auto& c : secondary_cols) {
    memo_key += c;
    memo_key += ',';
  }
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (auto it = result_cache_.find(memo_key); it != result_cache_.end()) {
    return it->second;
  }
  const UniverseStats* stats = registry_->ForFact(spec.fact_table);
  CORADD_CHECK(stats != nullptr);
  const DiskParams& disk = stats->options().disk;
  CostBreakdown out;
  if (spec.clustered_key.empty() || secondary_cols.empty()) {
    result_cache_[memo_key] = out;
    return out;
  }

  const double pages = static_cast<double>(MvHeapPages(spec, *stats, disk));
  const double height = MvBTreeHeight(spec, *stats, disk);
  const double num_buckets =
      std::max(1.0, pages / static_cast<double>(options_.bucket_pages));

  // Selectivity of the predicates the CM/index covers.
  double sel_cols = 1.0;
  for (const auto& p : q.predicates) {
    if (std::find(secondary_cols.begin(), secondary_cols.end(), p.column) !=
        secondary_cols.end()) {
      sel_cols *= EstimateSelectivity(p, *stats);
    }
  }
  const double matched_full =
      std::max(1.0, sel_cols * static_cast<double>(stats->num_rows()));

  const auto& matched = MatchedRows(*stats, q, secondary_cols);
  const Synopsis& syn = stats->synopsis();
  const size_t n = syn.sample_rows();

  double est_buckets;
  double occupancy;  // Fraction of the touched band that is actually read.
  if (matched.empty() || n == 0) {
    // No sampled row matched: fall back to the uncorrelated assumption —
    // each matching tuple lands in its own bucket until buckets saturate.
    est_buckets = std::min(num_buckets, matched_full);
    occupancy = est_buckets / num_buckets;
  } else {
    const auto& ranks = Ranks(*stats, spec).rank_of_row;
    std::vector<int64_t> bucket_obs;
    bucket_obs.reserve(matched.size());
    const double scale = num_buckets / static_cast<double>(n);
    for (uint32_t i : matched) {
      bucket_obs.push_back(
          static_cast<int64_t>(static_cast<double>(ranks[i]) * scale));
    }
    std::sort(bucket_obs.begin(), bucket_obs.end());

    // Two estimators for the number of distinct buckets the full matched
    // population touches, good in complementary regimes:
    //  * AE over the sampled bucket frequencies (A-2.2's estimator) —
    //    accurate when the sample covers the touched region densely;
    //  * a span-occupancy model — the sampled ranks bound the touched band
    //    [min,max]; throwing matched_full rows uniformly into its `span`
    //    buckets touches span*(1-e^-lambda) of them. Accurate when the
    //    sample is sparse (highly selective predicates).
    // Both under-estimate outside their regime, so take the max.
    if (matched.size() < 4) {
      // Too few sampled matches to read anything from their positions (a
      // lucky pair of nearby rows would fake a strong correlation): assume
      // uncorrelated scatter.
      est_buckets = std::min(num_buckets, matched_full);
      occupancy = est_buckets / num_buckets;
    } else {
      const auto profile = SampleFrequencyProfile::FromSortedValues(
          bucket_obs, static_cast<uint64_t>(matched_full));
      const double d_ae = EstimateDistinctAe(profile);
      const double span = static_cast<double>(bucket_obs.back()) -
                          static_cast<double>(bucket_obs.front()) + 1.0;
      const double lambda = matched_full / span;
      const double d_span = span * (1.0 - std::exp(-lambda));
      est_buckets = std::min(num_buckets, std::max(d_ae, d_span));
      occupancy = std::min(1.0, est_buckets / span);
    }
  }

  // Touched buckets coalesce into fragments where they are contiguous: at
  // occupancy ~1 the band is one sequential sweep; at low occupancy every
  // bucket is its own fragment.
  const double fragments =
      std::max(1.0, est_buckets * (1.0 - occupancy) + 1.0);
  const double pages_read = std::min(
      pages, est_buckets * static_cast<double>(options_.bucket_pages));

  out.path = AccessPath::kSecondary;
  out.secondary_columns = secondary_cols;
  out.selectivity = pages_read / std::max(1.0, pages);
  out.fragments = fragments;
  out.read_seconds = pages_read * disk.PageReadSeconds();
  out.seek_seconds = disk.seek_seconds * fragments * height;
  out.seconds = out.read_seconds + out.seek_seconds;
  result_cache_[memo_key] = out;
  return out;
}

CostBreakdown CorrelationCostModel::Cost(const Query& q,
                                         const MvSpec& spec) const {
  const UniverseStats* stats = registry_->ForFact(spec.fact_table);
  if (stats == nullptr || !MvCanServe(q, spec)) return CostBreakdown{};

  const std::string memo_key = "C|" + q.id + "|" + SpecSignature(spec);
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (auto it = result_cache_.find(memo_key); it != result_cache_.end()) {
    return it->second;
  }

  CostBreakdown best = FullScanPath(q, spec, *stats);

  const CostBreakdown clustered = ClusteredPath(q, spec, *stats);
  if (clustered.feasible() && clustered.seconds < best.seconds) {
    best = clustered;
  }

  // Secondary paths: singletons, pairs (bounded), and the full set.
  const auto pred_cols = q.PredicateColumns();
  std::vector<std::vector<std::string>> subsets;
  for (const auto& c : pred_cols) subsets.push_back({c});
  if (options_.max_subset_size >= 2 && pred_cols.size() <= 5) {
    for (size_t i = 0; i < pred_cols.size(); ++i) {
      for (size_t j = i + 1; j < pred_cols.size(); ++j) {
        subsets.push_back({pred_cols[i], pred_cols[j]});
      }
    }
  }
  if (pred_cols.size() > 2) subsets.push_back(pred_cols);

  for (const auto& sub : subsets) {
    const CostBreakdown sec = SecondaryPathCost(q, spec, sub);
    if (sec.feasible() && sec.seconds < best.seconds) best = sec;
  }
  result_cache_[memo_key] = best;
  return best;
}

}  // namespace coradd
