// Correlation-oblivious cost model: a faithful proxy for the commercial
// designer's model exposed by Figure 10, which "predicts the same query
// cost for all clustered index settings, ignoring the effect of
// correlations". Secondary-index plans are priced from predicate
// selectivities alone under an optimistic co-location assumption, so the
// prediction is flat across clusterings and under-estimates uncorrelated
// designs by the paper's observed 6-25x.
#pragma once

#include "cost/access_path.h"
#include "cost/cost_model.h"

namespace coradd {

/// Cost model that ignores attribute correlations.
class ObliviousCostModel : public CostModel {
 public:
  explicit ObliviousCostModel(const StatsRegistry* registry);

  CostBreakdown Cost(const Query& q, const MvSpec& spec) const override;
  CostBreakdown SecondaryCost(
      const Query& q, const MvSpec& spec,
      const std::vector<std::string>& secondary_cols) const override;
  std::string name() const override { return "correlation-oblivious"; }

 private:
  const StatsRegistry* registry_;
};

}  // namespace coradd
