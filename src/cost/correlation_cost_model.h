// The paper's correlation-aware cost model (A-2.2):
//
//     cost      = cost_read + cost_seek
//     cost_read = fullscancost * selectivity
//     cost_seek = seek_cost * fragments * btree_height
//
// For secondary (CM-assisted) access, `fragments` and the accessed fraction
// are driven by how many distinct clustered-key regions co-occur with the
// predicated values: strongly correlated clusterings co-occur with few,
// contiguous regions (cheap); uncorrelated ones scatter across the heap
// (close to a full scan). Co-occurrence is estimated by running AE over the
// table synopsis for the hypothetical design, exactly as A-2.2 prescribes
// ("we run the Adaptive Estimator (AE) over random samples on the fly to
// estimate fragments and selectivity for a given MV design and query").
//
// Hot-path layout (docs/CANDGEN.md): candidate generation prices thousands
// of trial clustered keys, so (1) per-column synopsis orders are precomputed
// once in a ColumnOrderCache and every trial key's ranks are composed by
// stable counting-sort passes instead of a fresh comparison sort; (2) every
// estimate is memoized by structural signature, so alpha sweeps, ablations
// and feedback re-entries that revisit a (query, spec) pair never re-price;
// (3) estimates compute outside the cache lock — concurrent misses duplicate
// a pure computation and the first insert wins, keeping results independent
// of thread count and arrival order.
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "cost/access_path.h"
#include "cost/column_order_cache.h"
#include "cost/cost_model.h"

namespace coradd {

/// Tuning knobs for the correlation-aware model.
struct CorrelationCostModelOptions {
  /// Pages per clustered "bucket": granularity at which co-occurring
  /// clustered regions are counted (A-1.1 uses ~20 pages per bucket ID for
  /// clustered-column bucketing; we default a bit finer).
  uint32_t bucket_pages = 8;
  /// Secondary paths are evaluated for predicate-column subsets up to this
  /// size plus the full predicate set (the CM Designer explores "every
  /// combination"; pairs + singletons + the full set cover the useful ones).
  size_t max_subset_size = 2;
};

/// Correlation-aware cost model over one or more universes.
class CorrelationCostModel : public CostModel {
 public:
  CorrelationCostModel(const StatsRegistry* registry,
                       CorrelationCostModelOptions options = {});

  CostBreakdown Cost(const Query& q, const MvSpec& spec) const override;
  std::string name() const override { return "correlation-aware"; }
  std::string CacheId() const override;

  /// Secondary-path estimate via a CM/index on exactly `secondary_cols`
  /// (exposed for the CM Designer, which sweeps attribute combinations).
  CostBreakdown SecondaryPathCost(const Query& q, const MvSpec& spec,
                                  const std::vector<std::string>& secondary_cols) const;

  CostBreakdown SecondaryCost(
      const Query& q, const MvSpec& spec,
      const std::vector<std::string>& secondary_cols) const override {
    return SecondaryPathCost(q, spec, secondary_cols);
  }

  /// Cheap, AE-free lower bound on Cost(q, spec).seconds: the minimum of
  /// the exact full-scan and clustered-prefix path costs and a floor under
  /// every possible secondary path (>= 1 bucket read + 1 seek chain).
  /// Candidate generation prunes trial clusterings against it;
  /// property_test locks down CostLowerBound <= Cost on random specs.
  double CostLowerBound(const Query& q, const MvSpec& spec) const override;

 private:
  struct RankCacheEntry {
    /// rank_of_row[i] = position of synopsis row i in clustered-key order.
    std::vector<uint32_t> rank_of_row;
  };

  /// Synopsis rows satisfying the predicates of `q` restricted to `cols`.
  const std::vector<uint32_t>& MatchedRows(
      const UniverseStats& stats, const Query& q,
      const std::vector<std::string>& cols) const;

  /// Clustered-key rank of every synopsis row for `spec`'s key, composed
  /// from the per-column order cache.
  const RankCacheEntry& Ranks(const UniverseStats& stats,
                              const MvSpec& spec) const;

  /// The (lazily created) per-column order cache of `stats`' synopsis.
  const ColumnOrderCache& OrderCache(const UniverseStats& stats) const;

  /// The secondary-path column subsets Cost() prices for `q`.
  std::vector<std::vector<std::string>> SecondarySubsets(const Query& q) const;

  CostBreakdown FullScanPath(const Query& q, const MvSpec& spec,
                             const UniverseStats& stats) const;
  CostBreakdown ClusteredPath(const Query& q, const MvSpec& spec,
                              const UniverseStats& stats) const;

  const StatsRegistry* registry_;
  CorrelationCostModelOptions options_;

  /// One lock guards lookup/insert on all four caches below; estimates are
  /// computed OUTSIDE it (they are pure functions of immutable statistics),
  /// so parallel candidate generation and evaluation price concurrently.
  /// Map nodes are stable, entries are never erased, and racing computers
  /// of the same key produce identical values (first insert wins) — results
  /// are bit-identical at any thread count.
  mutable std::mutex mu_;
  mutable std::map<const UniverseStats*, std::unique_ptr<ColumnOrderCache>>
      order_caches_;
  mutable std::map<std::string, std::vector<uint32_t>> matched_cache_;
  mutable std::map<std::string, RankCacheEntry> rank_cache_;
  /// Full-result memo keyed on (query id, structural spec signature[, cols]).
  /// Designers re-evaluate the same (query, design) pair constantly — across
  /// feedback iterations, budget sweeps and plan selection — so this cache
  /// is the difference between seconds and minutes of designer runtime.
  mutable std::map<std::string, CostBreakdown> result_cache_;
};

}  // namespace coradd
