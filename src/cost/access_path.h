// Shared clustered-prefix analysis: how far a query's predicates can drive
// a lexicographic clustered key, how selective the resulting scan is, and
// into how many disjoint key ranges it splits (§4.2's equality / range / IN
// ordering rationale).
#pragma once

#include <string>
#include <vector>

#include "cost/cost_model.h"

namespace coradd {

/// Result of walking a clustered key against a query's predicates.
struct ClusteredPrefixPlan {
  /// Fraction of rows inside the scanned key ranges.
  double selectivity = 1.0;
  /// Number of disjoint contiguous ranges (IN predicates multiply this).
  double num_ranges = 1.0;
  /// How many leading key columns carry predicates.
  int consumed_key_columns = 0;
  /// Columns of the consumed predicates.
  std::vector<std::string> consumed_columns;

  bool usable() const { return consumed_key_columns > 0; }
};

/// Walks `clustered_key` in order, consuming predicates of `q`:
/// equality and IN predicates extend the prefix (IN multiplies the range
/// count by its value count); a range predicate is consumed and stops the
/// walk; a key column without a predicate stops the walk.
ClusteredPrefixPlan AnalyzeClusteredPrefix(
    const Query& q, const std::vector<std::string>& clustered_key,
    const UniverseStats& stats);

}  // namespace coradd
