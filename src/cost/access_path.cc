#include "cost/access_path.h"

#include <algorithm>

namespace coradd {

bool MvCanServe(const Query& q, const MvSpec& spec) {
  if (q.fact_table != spec.fact_table) return false;
  if (spec.is_fact_recluster) return true;
  for (const auto& col : q.AllColumns()) {
    if (std::find(spec.columns.begin(), spec.columns.end(), col) ==
        spec.columns.end()) {
      return false;
    }
  }
  return true;
}

ClusteredPrefixPlan AnalyzeClusteredPrefix(
    const Query& q, const std::vector<std::string>& clustered_key,
    const UniverseStats& stats) {
  ClusteredPrefixPlan plan;
  for (const auto& key_col : clustered_key) {
    const Predicate* pred = nullptr;
    for (const auto& p : q.predicates) {
      if (p.column == key_col) {
        pred = &p;
        break;
      }
    }
    if (pred == nullptr) break;

    const double sel = EstimateSelectivity(*pred, stats);
    plan.selectivity *= sel;
    plan.consumed_key_columns++;
    plan.consumed_columns.push_back(key_col);
    if (pred->type == PredicateType::kIn) {
      plan.num_ranges *= static_cast<double>(pred->in_values.size());
    } else if (pred->type == PredicateType::kRange) {
      // A range keeps contiguity on this column but nothing deeper in the
      // key can refine the scan; stop.
      break;
    }
  }
  return plan;
}

}  // namespace coradd
