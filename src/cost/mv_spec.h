// Hypothetical design objects evaluated by the cost models and selected by
// the ILP: materialized views (pre-joined projections with a clustered
// index) and fact-table re-clusterings (§4.3). These are *specifications*;
// exec/ materializes them into real ClusteredTables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/stats_collector.h"
#include "storage/disk_model.h"

namespace coradd {

/// Specification of one candidate database object.
struct MvSpec {
  std::string name;
  std::string fact_table;
  /// Universe columns stored in the MV. For a fact re-clustering this is
  /// implicitly "all fact-table columns" and the vector lists the fact's own
  /// columns (dimension attributes reach it via in-memory dim lookups).
  std::vector<std::string> columns;
  /// Clustered key: ordered subset of `columns`.
  std::vector<std::string> clustered_key;
  /// Indices into the workload of the query group this MV was built for.
  std::vector<int> query_group;
  /// True for §4.3 fact-table re-clustering candidates: the object replaces
  /// the base table's clustering, and its space charge is the PK secondary
  /// index needed to keep PK lookups fast.
  bool is_fact_recluster = false;
  /// True for the always-present base design (fact table clustered on its
  /// PK). Costs like a fact re-clustering; charges no space.
  bool is_base = false;

  std::string ToString() const;
};

/// Structural signature of a spec: fact table, query group, clustered key,
/// and (sorted) stored columns. Two specs with equal signatures price
/// identically under every cost model, so the signature keys candidate
/// deduplication (ILP feedback) and solver warm-start mapping across
/// problems whose candidate indices differ.
std::string MvSpecSignature(const MvSpec& spec);

/// Declared row width of the MV in bytes.
uint32_t MvRowWidthBytes(const MvSpec& spec, const UniverseStats& stats);

/// Heap pages the MV occupies.
uint64_t MvHeapPages(const MvSpec& spec, const UniverseStats& stats,
                     const DiskParams& disk);

/// Space-budget charge of the object in bytes: heap + clustered-index
/// internals for an MV; dense PK secondary B+Tree for a fact re-clustering
/// (§4.3: "CORADD accounts for the size of the secondary index as the space
/// consumption of the re-clustered design").
uint64_t EstimateMvSizeBytes(const MvSpec& spec, const UniverseStats& stats,
                             const DiskParams& disk);

/// Seconds to sequentially scan the whole object (Table 5's fullscancost),
/// derived from page counts and the disk's sequential rate.
double MvFullScanSeconds(const MvSpec& spec, const UniverseStats& stats,
                         const DiskParams& disk);

/// Height of the clustered B+Tree of the object.
uint32_t MvBTreeHeight(const MvSpec& spec, const UniverseStats& stats,
                       const DiskParams& disk);

}  // namespace coradd
