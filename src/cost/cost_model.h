// Cost-model interface. Two implementations:
//  * CorrelationCostModel — the paper's model (A-2.2):
//        cost = fullscancost * selectivity + seek_cost * fragments * height
//    with `fragments` estimated from correlations via AE over the synopsis;
//  * ObliviousCostModel — a commercial-style model that prices secondary
//    index plans identically for every clustering (Fig 10's flat line).
#pragma once

#include <limits>
#include <string>
#include <unordered_map>

#include "cost/mv_spec.h"
#include "workload/query.h"

namespace coradd {

/// Cost models return +infinity for (query, MV) pairs the MV cannot serve.
inline constexpr double kInfeasibleCost =
    std::numeric_limits<double>::infinity();

/// Per-universe statistics lookup by fact-table name.
class StatsRegistry {
 public:
  void Register(const UniverseStats* stats) {
    by_fact_[stats->universe().fact_name()] = stats;
  }
  const UniverseStats* ForFact(const std::string& fact) const {
    auto it = by_fact_.find(fact);
    return it == by_fact_.end() ? nullptr : it->second;
  }

 private:
  std::unordered_map<std::string, const UniverseStats*> by_fact_;
};

/// Which physical plan a cost estimate assumed.
enum class AccessPath { kFullScan, kClusteredScan, kSecondary };

/// Itemized cost estimate for one (query, MV) pair.
struct CostBreakdown {
  double seconds = kInfeasibleCost;
  double read_seconds = 0.0;
  double seek_seconds = 0.0;
  double fragments = 0.0;
  double selectivity = 1.0;  ///< Fraction of the object read.
  AccessPath path = AccessPath::kFullScan;
  /// For kSecondary: the predicate columns the chosen CM/index covers.
  std::vector<std::string> secondary_columns;

  bool feasible() const { return seconds != kInfeasibleCost; }
};

/// Estimates query runtimes against hypothetical design objects.
class CostModel {
 public:
  virtual ~CostModel() = default;

  /// Full breakdown; seconds == kInfeasibleCost if `spec` cannot serve `q`.
  virtual CostBreakdown Cost(const Query& q, const MvSpec& spec) const = 0;

  /// Convenience: just the seconds.
  double Seconds(const Query& q, const MvSpec& spec) const {
    return Cost(q, spec).seconds;
  }

  /// Estimate for a secondary-index plan that uses exactly
  /// `secondary_cols` of the query's predicates. Used by the executor to
  /// choose among the physically available structures (CMs / B+Trees).
  virtual CostBreakdown SecondaryCost(
      const Query& q, const MvSpec& spec,
      const std::vector<std::string>& secondary_cols) const = 0;

  /// A cheap lower bound on Cost(q, spec).seconds, used by candidate
  /// generation to skip pricing trial clusterings that provably cannot beat
  /// the best already seen. Must never exceed the true model cost; the
  /// conservative default (no pruning power) is always sound.
  virtual double CostLowerBound(const Query& q, const MvSpec& spec) const {
    (void)q;
    (void)spec;
    return 0.0;
  }

  virtual std::string name() const = 0;

  /// Identity of this model for cross-designer caches: models with equal
  /// CacheId() produce bit-identical candidate sets for the same workload
  /// and statistics. Includes tuning options when they affect pricing.
  virtual std::string CacheId() const { return name(); }
};

/// True iff `spec` contains every column `q` references (fact re-clusterings
/// serve all queries of their fact table via cached dimension lookups).
bool MvCanServe(const Query& q, const MvSpec& spec);

}  // namespace coradd
