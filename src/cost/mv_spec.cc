#include "cost/mv_spec.h"

#include <algorithm>

#include "common/string_util.h"
#include "storage/layout.h"

namespace coradd {

std::string MvSpecSignature(const MvSpec& spec) {
  std::string s = spec.fact_table + "|";
  for (int qi : spec.query_group) s += StrFormat("%d,", qi);
  s += "|";
  s += Join(spec.clustered_key, ",");
  s += "|";
  std::vector<std::string> cols = spec.columns;
  std::sort(cols.begin(), cols.end());
  s += Join(cols, ",");
  return s;
}

std::string MvSpec::ToString() const {
  return StrFormat("%s{%s: cols=%zu, key=(%s)%s}", name.c_str(),
                   fact_table.c_str(), columns.size(),
                   Join(clustered_key, ",").c_str(),
                   is_fact_recluster ? ", recluster" : "");
}

uint32_t MvRowWidthBytes(const MvSpec& spec, const UniverseStats& stats) {
  const Universe& u = stats.universe();
  uint32_t w = 0;
  if (spec.is_fact_recluster) {
    // A re-clustered fact table stores exactly the fact table's columns.
    return u.fact_table().schema().RowWidthBytes();
  }
  for (const auto& c : spec.columns) {
    const int idx = u.ColumnIndex(c);
    CORADD_CHECK(idx >= 0);
    w += u.Column(static_cast<size_t>(idx)).byte_size;
  }
  return w == 0 ? 1 : w;
}

uint64_t MvHeapPages(const MvSpec& spec, const UniverseStats& stats,
                     const DiskParams& disk) {
  HeapLayout layout;
  layout.num_rows = stats.num_rows();
  layout.row_width_bytes = MvRowWidthBytes(spec, stats);
  layout.page_size_bytes = disk.page_size_bytes;
  return layout.NumPages();
}

namespace {

uint32_t ClusteredKeyBytes(const MvSpec& spec, const UniverseStats& stats) {
  const Universe& u = stats.universe();
  uint32_t w = 0;
  for (const auto& c : spec.clustered_key) {
    const int idx = u.ColumnIndex(c);
    CORADD_CHECK(idx >= 0);
    w += u.Column(static_cast<size_t>(idx)).byte_size;
  }
  return w == 0 ? 4 : w;
}

}  // namespace

uint64_t EstimateMvSizeBytes(const MvSpec& spec, const UniverseStats& stats,
                             const DiskParams& disk) {
  if (spec.is_base) return 0;  // The base table exists in every design.
  if (spec.is_fact_recluster) {
    // Charge the dense secondary PK index required after re-clustering.
    const Universe& u = stats.universe();
    uint32_t pk_bytes = 0;
    for (const auto& pk : u.fact_info().primary_key) {
      const int idx = u.fact_table().schema().ColumnIndex(pk);
      CORADD_CHECK(idx >= 0);
      pk_bytes += u.fact_table().schema().Column(static_cast<size_t>(idx)).byte_size;
    }
    const BTreeShape pk_index = ComputeBTreeShape(
        stats.num_rows(), pk_bytes + 8, pk_bytes, disk.page_size_bytes);
    return pk_index.TotalPages() * disk.page_size_bytes;
  }
  const uint64_t heap_pages = MvHeapPages(spec, stats, disk);
  const uint32_t key_bytes = ClusteredKeyBytes(spec, stats);
  const BTreeShape shape = ComputeBTreeShape(heap_pages, key_bytes + 8,
                                             key_bytes, disk.page_size_bytes);
  return (heap_pages + shape.internal_pages) * disk.page_size_bytes;
}

double MvFullScanSeconds(const MvSpec& spec, const UniverseStats& stats,
                         const DiskParams& disk) {
  const uint64_t pages = spec.is_fact_recluster
                             ? MvHeapPages(spec, stats, disk)
                             : MvHeapPages(spec, stats, disk);
  return static_cast<double>(pages) * disk.PageReadSeconds();
}

uint32_t MvBTreeHeight(const MvSpec& spec, const UniverseStats& stats,
                       const DiskParams& disk) {
  const uint64_t heap_pages = MvHeapPages(spec, stats, disk);
  const uint32_t key_bytes = ClusteredKeyBytes(spec, stats);
  const BTreeShape shape = ComputeBTreeShape(heap_pages, key_bytes + 8,
                                             key_bytes, disk.page_size_bytes);
  return shape.height;
}

}  // namespace coradd
