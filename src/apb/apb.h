// APB-1-like OLAP benchmark (OLAP Council, Release II 1998), rebuilt as a
// synthetic star schema with the same structural properties the paper's
// evaluation relies on (§7.1, Experiment 1):
//   * a product dimension with a 6-level hierarchy (code -> class -> group
//     -> family -> line -> division), so every level functionally determines
//     its ancestors — exactly the correlations CORADD exploits;
//   * a customer dimension with a store -> retailer hierarchy;
//   * 10 channels; a monthly time dimension with quarter/halfyear/year;
//   * TWO fact tables (actuals and budget); queries that touch both are
//     modelled as independent queries per fact table, as the paper does;
//   * 31 template queries with a frequency distribution.
// The official APB-1 generator is proprietary-ish and Windows-era; this
// substitution is documented in DESIGN.md §2.
#pragma once

#include <memory>

#include "catalog/catalog.h"
#include "workload/query.h"

namespace coradd {
namespace apb {

/// Generation knobs. `scale` = fraction of the paper's 45M-tuple actuals
/// table (2% density, 10 channels); 0.01 -> 450k rows.
struct ApbOptions {
  double scale = 0.005;
  uint64_t seed = 13;
  uint64_t num_products = 3000;
  uint64_t num_stores = 900;
  uint64_t num_channels = 10;

  uint64_t ActualsRows() const {
    const double r = 45.0e6 * scale;
    return static_cast<uint64_t>(r < 10000 ? 10000 : r);
  }
  uint64_t BudgetRows() const { return ActualsRows() / 6; }
};

/// Number of months in the time dimension (two years, 1995-1996).
inline constexpr int kNumMonths = 24;
inline constexpr int kFirstYear = 1995;

/// Product hierarchy widths derived from num_products (see apb.cc).
struct ProductHierarchy {
  uint64_t codes, classes, groups, families, lines, divisions;
  static ProductHierarchy For(uint64_t num_products);
};

/// Builds the APB catalog: time, product, customer, channel dimensions and
/// the actuals + budget fact tables, with star metadata registered.
std::unique_ptr<Catalog> MakeCatalog(const ApbOptions& options);

/// The 31 template queries (24 on actuals, 7 on budget) with frequencies.
Workload MakeWorkload(const ApbOptions& options);

}  // namespace apb
}  // namespace coradd
