// The 31 APB-1-like template queries. APB-1's logical operations aggregate
// sales/budget measures at varying product/customer/time granularities with
// channel restrictions; the mix below spans every hierarchy level, includes
// both fact tables (queries touching actuals-vs-budget are pre-split into
// independent per-fact queries, as §7.1 does), and carries the benchmark's
// frequency-weighted distribution via Query::frequency.
#include "apb/apb.h"

#include "common/string_util.h"

namespace coradd {
namespace apb {

namespace {

Query ActualsQuery(int num, std::vector<Predicate> preds,
                   std::vector<std::string> group_by,
                   std::vector<Aggregate> aggs, double freq = 1.0) {
  Query q;
  q.id = StrFormat("A%02d", num);
  q.fact_table = "actuals";
  q.predicates = std::move(preds);
  q.group_by = std::move(group_by);
  q.aggregates = std::move(aggs);
  q.frequency = freq;
  return q;
}

Query BudgetQuery(int num, std::vector<Predicate> preds,
                  std::vector<std::string> group_by,
                  std::vector<Aggregate> aggs, double freq = 1.0) {
  Query q;
  q.id = StrFormat("B%02d", num);
  q.fact_table = "budget";
  q.predicates = std::move(preds);
  q.group_by = std::move(group_by);
  q.aggregates = std::move(aggs);
  q.frequency = freq;
  return q;
}

}  // namespace

Workload MakeWorkload(const ApbOptions& options) {
  const ProductHierarchy h = ProductHierarchy::For(options.num_products);
  Workload w;
  w.name = "apb31";
  auto add = [&w](Query q) { w.queries.push_back(std::move(q)); };

  const Aggregate kSales{"a_dollarsales", ""};
  const Aggregate kUnits{"a_unitssold", ""};
  const Aggregate kCost{"a_cost", ""};
  const Aggregate kBudget{"b_budgetdollars", ""};
  const Aggregate kBudgetUnits{"b_budgetunits", ""};

  // ---- Channel x time rollups at each product level (APB "multi-dim
  // aggregate" operations). Channel scans are frequent in APB's mix.
  add(ActualsQuery(1, {Predicate::Eq("ch_key", 2), Predicate::Eq("t_year", 1995)},
                   {"pr_division"}, {kSales}, 2.0));
  add(ActualsQuery(2, {Predicate::Eq("ch_key", 5), Predicate::Eq("t_quarterkey", 3)},
                   {"pr_line"}, {kSales, kUnits}));
  add(ActualsQuery(3, {Predicate::Eq("ch_key", 0), Predicate::Eq("t_monthkey", 199506)},
                   {"pr_family"}, {kSales}));
  add(ActualsQuery(4, {Predicate::In("ch_key", {1, 3, 7}), Predicate::Eq("t_year", 1996)},
                   {"pr_group"}, {kUnits}, 1.5));
  add(ActualsQuery(5, {Predicate::Eq("ch_key", 4),
                       Predicate::Range("t_monthkey", 199601, 199606)},
                   {"pr_class"}, {kSales, kCost}));

  // ---- Product-level drill-downs with time restrictions.
  add(ActualsQuery(6, {Predicate::Eq("pr_division", 1), Predicate::Eq("t_year", 1995)},
                   {"t_quarterkey"}, {kSales}, 2.0));
  add(ActualsQuery(7, {Predicate::Eq("pr_line", static_cast<int64_t>(h.lines / 2))},
                   {"t_monthkey"}, {kSales}));
  add(ActualsQuery(8, {Predicate::Eq("pr_family", static_cast<int64_t>(h.families / 3)),
                       Predicate::Eq("t_halfyear", 1)},
                   {"t_monthkey", "ch_key"}, {kUnits}));
  add(ActualsQuery(9, {Predicate::Eq("pr_group", static_cast<int64_t>(h.groups / 2)),
                       Predicate::Eq("t_year", 1996)},
                   {"t_quarter"}, {kSales}));
  add(ActualsQuery(10, {Predicate::Eq("pr_class", static_cast<int64_t>(h.classes / 4)),
                        Predicate::Eq("t_quarterkey", 6)},
                   {"t_monthkey"}, {kSales, kUnits}));
  add(ActualsQuery(11, {Predicate::Range("pr_code", 100, 160),
                        Predicate::Eq("t_year", 1995)},
                   {"t_monthkey"}, {kSales}));

  // ---- Customer rollups (retailer -> store) with product/channel cuts.
  add(ActualsQuery(12, {Predicate::Eq("cu_retailer", 7), Predicate::Eq("t_year", 1995)},
                   {"cu_store", "t_quarter"}, {kSales}, 1.5));
  add(ActualsQuery(13, {Predicate::Eq("cu_retailer", 23),
                        Predicate::Eq("pr_division", 0)},
                   {"t_monthkey"}, {kSales}));
  add(ActualsQuery(14, {Predicate::Eq("cu_store", 123),
                        Predicate::Range("t_monthkey", 199501, 199512)},
                   {"pr_line"}, {kUnits}));
  add(ActualsQuery(15, {Predicate::In("cu_retailer", {2, 4, 8}),
                        Predicate::Eq("ch_key", 6)},
                   {"t_quarterkey", "pr_division"}, {kSales}));

  // ---- Mixed slices (channel + product + time), the APB "report" shapes.
  add(ActualsQuery(16, {Predicate::Eq("ch_key", 3),
                        Predicate::Eq("pr_division", 2),
                        Predicate::Eq("t_year", 1996)},
                   {"pr_line", "t_quarter"}, {kSales}, 2.0));
  add(ActualsQuery(17, {Predicate::Eq("ch_key", 8),
                        Predicate::Eq("pr_line", static_cast<int64_t>(h.lines - 1)),
                        Predicate::Eq("t_quarterkey", 2)},
                   {"pr_family"}, {kSales, kCost}));
  add(ActualsQuery(18, {Predicate::In("ch_key", {0, 9}),
                        Predicate::Eq("pr_family", 5),
                        Predicate::Range("t_monthkey", 199604, 199609)},
                   {"pr_group", "t_monthkey"}, {kUnits}));
  add(ActualsQuery(19, {Predicate::Eq("ch_group", 1),
                        Predicate::Eq("pr_group", static_cast<int64_t>(h.groups / 3))},
                   {"t_year"}, {kSales}));
  add(ActualsQuery(20, {Predicate::Eq("ch_key", 7),
                        Predicate::Eq("cu_retailer", 40),
                        Predicate::Eq("t_year", 1995)},
                   {"pr_division", "t_quarter"}, {kSales}));

  // ---- Top-level scans with coarse cuts (year-long channel reports).
  add(ActualsQuery(21, {Predicate::Eq("t_year", 1995)},
                   {"pr_division", "t_quarter"}, {kSales}, 1.5));
  add(ActualsQuery(22, {Predicate::Eq("t_quarterkey", 8)},
                   {"ch_key", "pr_division"}, {kSales, kUnits}));
  add(ActualsQuery(23, {Predicate::Eq("t_monthkey", 199612)},
                   {"ch_key", "pr_line"}, {kSales}));
  add(ActualsQuery(24, {Predicate::Range("pr_division", 0, 1),
                        Predicate::Eq("t_halfyear", 2)},
                   {"pr_line", "t_monthkey"}, {kCost}));

  // ---- Budget-side queries (including the budget halves of the
  // actual-vs-budget comparisons, split per fact table).
  add(BudgetQuery(25, {Predicate::Eq("t_year", 1995)},
                  {"pr_division", "t_quarter"}, {kBudget}, 1.5));
  add(BudgetQuery(26, {Predicate::Eq("pr_division", 1),
                       Predicate::Eq("t_year", 1995)},
                  {"t_quarterkey"}, {kBudget}));
  add(BudgetQuery(27, {Predicate::Eq("pr_line", static_cast<int64_t>(h.lines / 2))},
                  {"t_monthkey"}, {kBudget, kBudgetUnits}));
  add(BudgetQuery(28, {Predicate::Eq("cu_retailer", 7),
                       Predicate::Eq("t_year", 1995)},
                  {"cu_store", "t_quarter"}, {kBudget}));
  add(BudgetQuery(29, {Predicate::Eq("pr_family", static_cast<int64_t>(h.families / 3)),
                       Predicate::Eq("t_halfyear", 1)},
                  {"t_monthkey"}, {kBudgetUnits}));
  add(BudgetQuery(30, {Predicate::Eq("pr_group", static_cast<int64_t>(h.groups / 2)),
                       Predicate::Eq("t_year", 1996)},
                  {"t_quarter"}, {kBudget}));
  add(BudgetQuery(31, {Predicate::Eq("t_monthkey", 199512)},
                  {"pr_division"}, {kBudget, kBudgetUnits}));

  return w;
}

}  // namespace apb
}  // namespace coradd
