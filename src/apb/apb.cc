#include "apb/apb.h"

#include <algorithm>

#include "common/rng.h"
#include "common/string_util.h"

namespace coradd {
namespace apb {

namespace {

ColumnDef IntCol(std::string name, uint32_t bytes = 4) {
  ColumnDef c;
  c.name = std::move(name);
  c.type = ValueType::kInt;
  c.byte_size = bytes;
  return c;
}

}  // namespace

ProductHierarchy ProductHierarchy::For(uint64_t num_products) {
  ProductHierarchy h;
  h.codes = std::max<uint64_t>(num_products, 60);
  h.classes = std::max<uint64_t>(h.codes / 3, 20);
  h.groups = std::max<uint64_t>(h.classes / 4, 12);
  h.families = std::max<uint64_t>(h.groups / 5, 8);
  h.lines = std::max<uint64_t>(h.families / 4, 4);
  h.divisions = std::max<uint64_t>(h.lines / 3, 2);
  return h;
}

std::unique_ptr<Catalog> MakeCatalog(const ApbOptions& options) {
  auto catalog = std::make_unique<Catalog>();
  Rng rng(options.seed);
  const ProductHierarchy h = ProductHierarchy::For(options.num_products);

  // ---- time dimension: 24 months over 1995-1996 ----
  {
    Schema s;
    s.AddColumn(IntCol("t_monthkey"));   // yyyymm
    s.AddColumn(IntCol("t_month"));      // 1..12
    s.AddColumn(IntCol("t_quarter"));    // 1..4 within year
    s.AddColumn(IntCol("t_quarterkey")); // absolute 1..8
    s.AddColumn(IntCol("t_halfyear"));   // 1..2 within year
    s.AddColumn(IntCol("t_year"));
    auto t = std::make_unique<Table>(std::move(s), "time");
    for (int i = 0; i < kNumMonths; ++i) {
      const int year = kFirstYear + i / 12;
      const int month = i % 12 + 1;
      t->AppendRow({static_cast<int64_t>(year) * 100 + month, month,
                    (month - 1) / 3 + 1, i / 3 + 1, (month - 1) / 6 + 1,
                    year});
    }
    catalog->AddTable(std::move(t));
  }

  // ---- product dimension: 6-level hierarchy ----
  // code c determines class = c * classes / codes, and so on upward; each
  // level functionally determines all its ancestors (strength 1 upward).
  {
    Schema s;
    s.AddColumn(IntCol("pr_code"));
    s.AddColumn(IntCol("pr_class"));
    s.AddColumn(IntCol("pr_group"));
    s.AddColumn(IntCol("pr_family"));
    s.AddColumn(IntCol("pr_line"));
    s.AddColumn(IntCol("pr_division"));
    auto t = std::make_unique<Table>(std::move(s), "product");
    t->Reserve(h.codes);
    for (uint64_t c = 0; c < h.codes; ++c) {
      const int64_t cls = static_cast<int64_t>(c * h.classes / h.codes);
      const int64_t grp = cls * static_cast<int64_t>(h.groups) /
                          static_cast<int64_t>(h.classes);
      const int64_t fam = grp * static_cast<int64_t>(h.families) /
                          static_cast<int64_t>(h.groups);
      const int64_t lin = fam * static_cast<int64_t>(h.lines) /
                          static_cast<int64_t>(h.families);
      const int64_t div = lin * static_cast<int64_t>(h.divisions) /
                          static_cast<int64_t>(h.lines);
      t->AppendRow({static_cast<int64_t>(c), cls, grp, fam, lin, div});
    }
    catalog->AddTable(std::move(t));
  }

  // ---- customer dimension: store -> retailer ----
  {
    Schema s;
    s.AddColumn(IntCol("cu_store"));
    s.AddColumn(IntCol("cu_retailer"));
    auto t = std::make_unique<Table>(std::move(s), "customer");
    t->Reserve(options.num_stores);
    for (uint64_t st = 0; st < options.num_stores; ++st) {
      t->AppendRow({static_cast<int64_t>(st), static_cast<int64_t>(st / 10)});
    }
    catalog->AddTable(std::move(t));
  }

  // ---- channel dimension ----
  {
    Schema s;
    s.AddColumn(IntCol("ch_key"));
    s.AddColumn(IntCol("ch_group"));  // 10 channels in ~3 groups.
    auto t = std::make_unique<Table>(std::move(s), "channel");
    for (uint64_t c = 0; c < options.num_channels; ++c) {
      t->AppendRow({static_cast<int64_t>(c), static_cast<int64_t>(c / 4)});
    }
    catalog->AddTable(std::move(t));
  }

  // ---- actuals fact ----
  {
    Schema s;
    s.AddColumn(IntCol("a_product"));
    s.AddColumn(IntCol("a_store"));
    s.AddColumn(IntCol("a_channel"));
    s.AddColumn(IntCol("a_month"));
    s.AddColumn(IntCol("a_unitssold"));
    s.AddColumn(IntCol("a_dollarsales"));
    s.AddColumn(IntCol("a_cost"));
    auto t = std::make_unique<Table>(std::move(s), "actuals");
    const uint64_t n = options.ActualsRows();
    t->Reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      // Product popularity is skewed (a few products sell everywhere);
      // stores/channels/months are uniform, as in APB's dense cube slices.
      const int64_t prod = static_cast<int64_t>(rng.Zipf(h.codes, 0.6));
      const int64_t month_idx = static_cast<int64_t>(rng.Uniform(kNumMonths));
      const int64_t monthkey =
          (kFirstYear + month_idx / 12) * 100 + month_idx % 12 + 1;
      const int64_t units = 1 + static_cast<int64_t>(rng.Uniform(100));
      const int64_t price = 5 + prod % 95;
      t->AppendRow({prod,
                    static_cast<int64_t>(rng.Uniform(options.num_stores)),
                    static_cast<int64_t>(rng.Uniform(options.num_channels)),
                    monthkey, units, units * price,
                    units * price * 7 / 10});
    }
    catalog->AddTable(std::move(t));
  }

  // ---- budget fact (channel-independent, coarser) ----
  {
    Schema s;
    s.AddColumn(IntCol("b_product"));
    s.AddColumn(IntCol("b_store"));
    s.AddColumn(IntCol("b_month"));
    s.AddColumn(IntCol("b_budgetunits"));
    s.AddColumn(IntCol("b_budgetdollars"));
    auto t = std::make_unique<Table>(std::move(s), "budget");
    const uint64_t n = options.BudgetRows();
    t->Reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      const int64_t prod = static_cast<int64_t>(rng.Zipf(h.codes, 0.6));
      const int64_t month_idx = static_cast<int64_t>(rng.Uniform(kNumMonths));
      const int64_t monthkey =
          (kFirstYear + month_idx / 12) * 100 + month_idx % 12 + 1;
      const int64_t units = 1 + static_cast<int64_t>(rng.Uniform(120));
      t->AppendRow({prod,
                    static_cast<int64_t>(rng.Uniform(options.num_stores)),
                    monthkey, units, units * (5 + prod % 95)});
    }
    catalog->AddTable(std::move(t));
  }

  {
    FactTableInfo fact;
    fact.name = "actuals";
    fact.primary_key = {"a_product", "a_store", "a_channel", "a_month"};
    fact.foreign_keys = {
        {"a_product", "product", "pr_code"},
        {"a_store", "customer", "cu_store"},
        {"a_channel", "channel", "ch_key"},
        {"a_month", "time", "t_monthkey"},
    };
    catalog->RegisterFactTable(std::move(fact));
  }
  {
    FactTableInfo fact;
    fact.name = "budget";
    fact.primary_key = {"b_product", "b_store", "b_month"};
    fact.foreign_keys = {
        {"b_product", "product", "pr_code"},
        {"b_store", "customer", "cu_store"},
        {"b_month", "time", "t_monthkey"},
    };
    catalog->RegisterFactTable(std::move(fact));
  }
  return catalog;
}

}  // namespace apb
}  // namespace coradd
