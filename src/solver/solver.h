// The parallel warm-started branch-and-bound engine for the §5.1 selection
// ILP — the successor of the serial search in ilp/branch_and_bound.cc
// (which remains as the reference implementation for cross-checking).
//
// The engine expands the search tree in deterministic *waves*: each wave
// takes a fixed-size batch of frontier subtrees, runs a bounded depth-first
// search on each across ThreadPool::Shared() (or any caller pool), and
// merges incumbents and suspended frontiers in task order. Because the
// wave structure is a pure function of the problem — never of thread count
// or timing — the selected design is bit-identical at any thread count,
// the same contract the batched executor established in PR 3.
//
// Warm starts: a caller-supplied incumbent hint (the previous budget point
// of a grid sweep, or the previous ILP-feedback iteration) is repaired
// deterministically and seeds the incumbent, which makes near-identical
// consecutive solves prune almost immediately. See solver/warm_start.h for
// the cross-problem mapping and docs/SOLVER.md for the full contract.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ilp/selection.h"

namespace coradd {

class ThreadPool;

/// Engine knobs. The defaults suit post-domination CORADD instances; the
/// wave shape (tasks_per_wave, nodes_per_task) trades incumbent freshness
/// for parallel width but never affects the chosen design.
struct SolverOptions {
  uint64_t max_nodes = 4000000;     ///< deterministic cap, wave granularity
  double time_limit_seconds = 120.0;  ///< safety valve; see docs/SOLVER.md
  /// Relative optimality gap: subtrees that cannot improve the incumbent
  /// by more than this fraction of its cost are pruned (plus a 1e-9
  /// absolute floor, the legacy engine's tolerance). CORADD plateaus hold
  /// thousands of designs within microseconds of simulated runtime of each
  /// other; proving the last 1e-6 is pure cost. CPLEX defaults to 1e-4.
  double relative_gap = 1e-6;
  size_t tasks_per_wave = 24;       ///< frontier subtrees per wave
  uint64_t nodes_per_task = 0;      ///< node budget per task; 0 = auto
  ThreadPool* pool = nullptr;       ///< nullptr = ThreadPool::Shared()
  bool parallel = true;             ///< false: run waves inline, no pool
};

/// Search statistics of one solve, accumulable across a feedback loop or a
/// budget sweep. Surfaced through bench --json.
struct SolverStats {
  uint64_t nodes_expanded = 0;
  uint64_t bound_prunes = 0;
  uint64_t leaf_shortcuts = 0;      ///< subtrees closed by the all-fit rule
  uint64_t incumbent_updates = 0;
  uint64_t waves = 0;
  uint64_t tasks = 0;
  uint64_t solves = 0;              ///< solves accumulated into this record
  uint64_t warm_solves = 0;         ///< solves that received a warm hint
  uint64_t warm_wins = 0;           ///< warm incumbent beat density greedy
  bool proved_optimal = true;       ///< AND over accumulated solves
  double wall_seconds = 0.0;

  void Accumulate(const SolverStats& other);
  std::string ToString() const;
};

/// Stateless parallel branch-and-bound engine. Solve() is const and
/// thread-safe; concurrent solves share nothing but the thread pool.
class SolverEngine {
 public:
  explicit SolverEngine(SolverOptions options = {});

  /// Solves `problem` exactly. `warm_chosen` (optional) is a list of
  /// candidate indices from a previous solution of a structurally similar
  /// problem; infeasible or unknown entries are skipped deterministically.
  /// The result's `proved_optimal` is false only when the node or time
  /// limit was hit, in which case the best incumbent is returned.
  SelectionResult Solve(const SelectionProblem& problem,
                        SolverStats* stats = nullptr,
                        const std::vector<int>* warm_chosen = nullptr) const;

  const SolverOptions& options() const { return options_; }

 private:
  SolverOptions options_;
};

}  // namespace coradd
