#include "solver/solver.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "solver/subproblem.h"

namespace coradd {

using solver_internal::CompiledProblem;
using solver_internal::CompiledSolution;
using solver_internal::NodeRef;
using solver_internal::TaskResult;

namespace {

/// Auto node budget per task: keep a wave's work roughly constant across
/// problem sizes so the time limit retains wave-boundary granularity.
/// Purely a function of the pool size — never of thread count.
uint64_t AutoNodesPerTask(size_t pool_size) {
  const uint64_t budget = (1ull << 21) / std::max<size_t>(64, pool_size);
  return std::clamp<uint64_t>(budget, 128, 8192);
}

}  // namespace

void SolverStats::Accumulate(const SolverStats& other) {
  nodes_expanded += other.nodes_expanded;
  bound_prunes += other.bound_prunes;
  leaf_shortcuts += other.leaf_shortcuts;
  incumbent_updates += other.incumbent_updates;
  waves += other.waves;
  tasks += other.tasks;
  solves += other.solves;
  warm_solves += other.warm_solves;
  warm_wins += other.warm_wins;
  proved_optimal = proved_optimal && other.proved_optimal;
  wall_seconds += other.wall_seconds;
}

std::string SolverStats::ToString() const {
  return StrFormat(
      "SolverStats{solves=%llu, nodes=%llu, prunes=%llu, shortcuts=%llu, "
      "waves=%llu, tasks=%llu, warm=%llu/%llu, optimal=%s, wall=%.3fs}",
      static_cast<unsigned long long>(solves),
      static_cast<unsigned long long>(nodes_expanded),
      static_cast<unsigned long long>(bound_prunes),
      static_cast<unsigned long long>(leaf_shortcuts),
      static_cast<unsigned long long>(waves),
      static_cast<unsigned long long>(tasks),
      static_cast<unsigned long long>(warm_wins),
      static_cast<unsigned long long>(warm_solves),
      proved_optimal ? "yes" : "no", wall_seconds);
}

SolverEngine::SolverEngine(SolverOptions options) : options_(options) {}

SelectionResult SolverEngine::Solve(const SelectionProblem& problem,
                                    SolverStats* stats,
                                    const std::vector<int>* warm_chosen) const {
  const auto t_start = std::chrono::steady_clock::now();
  SolverStats local;
  local.solves = 1;

  TRACE_SPAN_NAMED(
      solve_span, "solver.solve",
      {{"candidates", static_cast<int64_t>(problem.NumCandidates())}});
  const CompiledProblem cp = solver_internal::CompileProblem(problem);
  const uint64_t nodes_per_task = options_.nodes_per_task > 0
                                      ? options_.nodes_per_task
                                      : AutoNodesPerTask(cp.pool.size());
  const size_t tasks_per_wave = std::max<size_t>(1, options_.tasks_per_wave);

  // --- Incumbent seeding: density greedy, optionally challenged by the
  // caller's warm-start hint (mapped to pool positions, repaired).
  CompiledSolution best = solver_internal::GreedyIncumbent(cp);
  if (warm_chosen != nullptr && !warm_chosen->empty()) {
    std::vector<int32_t> positions;
    for (int id : *warm_chosen) {
      if (id < 0 || static_cast<size_t>(id) >= cp.pos_of_candidate.size()) {
        continue;
      }
      const int pos = cp.pos_of_candidate[static_cast<size_t>(id)];
      if (pos >= 0) positions.push_back(pos);
    }
    const CompiledSolution warm = solver_internal::ApplyWarmHint(cp, positions);
    if (warm.valid) {
      local.warm_solves = 1;
      if (warm.cost < best.cost) {
        best = warm;
        local.warm_wins = 1;
      }
    }
  }

  // --- Deterministic wave search. `open` is a stack (back = next in DFS
  // order); each wave consumes up to tasks_per_wave subtrees from the top.
  std::vector<NodeRef> open;
  open.push_back(NodeRef{});
  bool limit_hit = false;
  ThreadPool* pool = options_.pool != nullptr ? options_.pool
                     : options_.parallel      ? &ThreadPool::Shared()
                                              : nullptr;
  std::vector<NodeRef> wave;
  std::vector<TaskResult> results;
  while (!open.empty()) {
    if (local.nodes_expanded >= options_.max_nodes) {
      limit_hit = true;
      break;
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t_start)
            .count();
    if (elapsed > options_.time_limit_seconds) {
      limit_hit = true;
      break;
    }

    const size_t width = std::min(tasks_per_wave, open.size());
    wave.clear();
    for (size_t t = 0; t < width; ++t) {
      wave.push_back(std::move(open.back()));  // task 0 = deepest subtree
      open.pop_back();
    }
    results.assign(width, TaskResult{});
    const double wave_incumbent = best.cost;
    // Last-wave clamp: shrink per-task budgets so a capped solve lands on
    // max_nodes instead of overshooting by a whole wave. Deterministic —
    // a pure function of the (deterministic) node counter.
    const uint64_t remaining = options_.max_nodes - local.nodes_expanded;
    const uint64_t task_budget = std::min<uint64_t>(
        nodes_per_task,
        std::max<uint64_t>(1, (remaining + width - 1) / width));
    auto run_task = [&](size_t t) {
      results[t] = solver_internal::RunSearchTask(
          cp, std::move(wave[t]), wave_incumbent, task_budget,
          options_.relative_gap);
    };
    {
      TRACE_SPAN("solver.wave",
                 {{"wave", static_cast<int64_t>(local.waves)},
                  {"tasks", static_cast<int64_t>(width)},
                  {"open", static_cast<int64_t>(open.size())}});
      if (pool != nullptr && width > 1) {
        pool->ParallelFor(width, run_task);
      } else {
        for (size_t t = 0; t < width; ++t) run_task(t);
      }
    }

    // Ordered merge: task order — never completion order — decides ties.
    for (size_t t = 0; t < width; ++t) {
      TaskResult& r = results[t];
      local.nodes_expanded += r.nodes;
      local.bound_prunes += r.bound_prunes;
      local.leaf_shortcuts += r.leaf_shortcuts;
      local.incumbent_updates += r.incumbent_updates;
      if (r.best.valid && r.best.cost < best.cost) best = std::move(r.best);
    }
    // Preserve depth-first order: task 0 held the deepest subtree, so its
    // suspension must end up back on top of the stack.
    for (size_t t = width; t-- > 0;) {
      for (auto& node : results[t].suspended) {
        open.push_back(std::move(node));
      }
    }
    local.waves += 1;
    local.tasks += width;
  }

  // --- Result assembly in problem coordinates.
  SelectionResult out;
  out.chosen.assign(problem.forced.begin(), problem.forced.end());
  for (int32_t pos : best.includes) {
    out.chosen.push_back(cp.pool[static_cast<size_t>(pos)]);
  }
  std::sort(out.chosen.begin(), out.chosen.end());
  out.expected_cost = EvaluateSelection(problem, out.chosen,
                                        &out.best_for_query);
  out.used_bytes = 0;
  for (int m : out.chosen) {
    out.used_bytes += problem.sizes[static_cast<size_t>(m)];
  }
  out.nodes_explored = local.nodes_expanded;
  out.proved_optimal = !limit_hit;

  local.proved_optimal = !limit_hit;
  local.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  solve_span.Arg("nodes", static_cast<int64_t>(local.nodes_expanded));
  solve_span.Arg("waves", static_cast<int64_t>(local.waves));

  // Process totals live in the registry; `local` stays the per-solve view
  // (SolverStats consumers see unchanged per-call values). Pointers are
  // cached — the post-solve mirror is a handful of relaxed adds.
  {
    auto& reg = obs::MetricsRegistry::Global();
    static obs::Counter& solves = *reg.GetCounter("solver.solves");
    static obs::Counter& nodes = *reg.GetCounter("solver.nodes_expanded");
    static obs::Counter& prunes = *reg.GetCounter("solver.bound_prunes");
    static obs::Counter& shortcuts = *reg.GetCounter("solver.leaf_shortcuts");
    static obs::Counter& incumbents =
        *reg.GetCounter("solver.incumbent_updates");
    static obs::Counter& waves_total = *reg.GetCounter("solver.waves");
    static obs::Counter& tasks_total = *reg.GetCounter("solver.tasks");
    static obs::Counter& warm_solves = *reg.GetCounter("solver.warm_solves");
    static obs::Counter& warm_wins = *reg.GetCounter("solver.warm_wins");
    static obs::Histogram& solve_us =
        *reg.GetHistogram("solver.solve_micros");
    solves.Add(local.solves);
    nodes.Add(local.nodes_expanded);
    prunes.Add(local.bound_prunes);
    shortcuts.Add(local.leaf_shortcuts);
    incumbents.Add(local.incumbent_updates);
    waves_total.Add(local.waves);
    tasks_total.Add(local.tasks);
    warm_solves.Add(local.warm_solves);
    warm_wins.Add(local.warm_wins);
    solve_us.Observe(static_cast<uint64_t>(local.wall_seconds * 1e6));
  }

  if (stats != nullptr) stats->Accumulate(local);
  return out;
}

}  // namespace coradd
