#include "solver/warm_start.h"

#include <algorithm>

#include "cost/mv_spec.h"

namespace coradd {

std::vector<int> WarmStartSession::WarmChosen(const BuiltProblem& built) const {
  std::vector<std::string> signatures;
  {
    std::lock_guard<std::mutex> lock(mu_);
    signatures = signatures_;
  }
  std::vector<int> out;
  if (signatures.empty()) return out;
  for (size_t m = 0; m < built.specs.size(); ++m) {
    if (built.specs[m].is_base) continue;
    if (std::binary_search(signatures.begin(), signatures.end(),
                           MvSpecSignature(built.specs[m]))) {
      out.push_back(static_cast<int>(m));
    }
  }
  return out;
}

void WarmStartSession::Record(const BuiltProblem& built,
                              const SelectionResult& result) {
  std::vector<std::string> signatures;
  signatures.reserve(result.chosen.size());
  for (int m : result.chosen) {
    const MvSpec& spec = built.specs[static_cast<size_t>(m)];
    if (spec.is_base) continue;
    signatures.push_back(MvSpecSignature(spec));
  }
  std::sort(signatures.begin(), signatures.end());
  std::lock_guard<std::mutex> lock(mu_);
  signatures_ = std::move(signatures);
}

bool WarmStartSession::has_solution() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !signatures_.empty();
}

}  // namespace coradd
