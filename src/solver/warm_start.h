// Warm-start bridge between consecutive solves of structurally similar
// selection problems: a budget-grid sweep rebuilds (or re-prices) the
// problem at every budget point, so candidate *indices* shift — but the
// chosen objects barely do. The session remembers the previous solution as
// MvSpec signatures and maps it into the next problem's index space, where
// the engine repairs it into a feasible incumbent.
//
// Thread safety: a session may be shared across threads (it locks), but
// warm-started solving is inherently a sequential chain — concurrent
// sweeps should use one session per chain to keep results reproducible.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "ilp/problem_builder.h"

namespace coradd {

/// Carries the previous solution of a solve chain across problems.
class WarmStartSession {
 public:
  /// Candidate indices of `built` whose specs match the recorded solution
  /// (ascending; forced candidates excluded). Empty when nothing recorded
  /// or nothing maps.
  std::vector<int> WarmChosen(const BuiltProblem& built) const;

  /// Records `result` (its non-forced chosen specs) as the warm hint for
  /// the next solve.
  void Record(const BuiltProblem& built, const SelectionResult& result);

  bool has_solution() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::string> signatures_;  ///< sorted spec signatures
};

}  // namespace coradd
