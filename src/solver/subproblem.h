// Internal machinery of the parallel branch-and-bound engine: the compiled
// (read-only) form of a SelectionProblem shared by every search task, node
// descriptors, and the bounded depth-first task search.
//
// A node is described *extensionally* as the include/exclude decisions on
// its path from the root; tasks rebuild the node state from the compiled
// root on expansion. That makes suspension trivial (a task that exhausts
// its node budget just returns its remaining stack) and keeps every
// floating-point operation a pure function of (root arrays, decision list)
// — the foundation of the engine's determinism contract (docs/SOLVER.md).
#pragma once

#include <cstdint>
#include <vector>

#include "ilp/selection.h"

namespace coradd {
namespace solver_internal {

/// Read-only root compilation of a SelectionProblem. Candidate costs are
/// transposed to pool-major, frequency-weighted rows so the per-node
/// marginal-benefit scan is one contiguous pass per candidate (the original
/// costs[q][m] layout strides by the full candidate count per access).
struct CompiledProblem {
  const SelectionProblem* problem = nullptr;
  size_t nq = 0;

  /// Pool of undecided candidates in static order: root benefit density
  /// descending, candidate id ascending on ties. Forced candidates, those
  /// that cannot fit the budget, and those with no root benefit (marginal
  /// benefit is non-increasing down the tree, so they stay useless) are
  /// excluded up front.
  std::vector<int> pool;                 ///< pool position -> candidate id
  std::vector<uint64_t> pool_sizes;      ///< bytes, aligned with pool
  std::vector<int> pool_group;           ///< SOS1 group id or -1
  std::vector<int> pos_of_candidate;     ///< candidate id -> pool pos or -1
  size_t num_groups = 0;

  /// Weighted cost table: wcost[pos * nq + q] = w_q * costs[q][pool[pos]]
  /// (infeasible pairs stay +infinity).
  std::vector<double> wcost;

  /// Root state: forced candidates applied.
  std::vector<double> root_wcur;         ///< per-query weighted best cost
  double root_total = 0.0;
  uint64_t root_used = 0;
  uint64_t budget = 0;
};

CompiledProblem CompileProblem(const SelectionProblem& problem);

/// A search node: the include/exclude path from the root, in apply order.
/// Entries are pool positions.
struct NodeRef {
  std::vector<int32_t> includes;
  std::vector<int32_t> excludes;
};

/// A feasible solution in compiled coordinates.
struct CompiledSolution {
  double cost = 0.0;                     ///< weighted total (internal space)
  std::vector<int32_t> includes;         ///< pool positions
  bool valid = false;
};

/// Density-greedy incumbent from the root (benefit per byte, SOS1-aware).
CompiledSolution GreedyIncumbent(const CompiledProblem& cp);

/// Evaluates a caller-supplied warm-start hint: applies the listed pool
/// positions in pool order, skipping any that would break the budget or an
/// SOS1 group (deterministic repair). Returns an invalid solution when
/// nothing usable was supplied.
CompiledSolution ApplyWarmHint(const CompiledProblem& cp,
                               const std::vector<int32_t>& positions);

/// Outcome of one bounded task search.
struct TaskResult {
  CompiledSolution best;                 ///< best solution found by the task
  std::vector<NodeRef> suspended;        ///< unexpanded stack, bottom first
  uint64_t nodes = 0;
  uint64_t bound_prunes = 0;
  uint64_t leaf_shortcuts = 0;
  uint64_t incumbent_updates = 0;
};

/// Expands at most `node_budget` nodes of the subtree under `start` in
/// depth-first order, pruning against min(`incumbent_cost`, best found so
/// far) minus the optimality-gap slack max(1e-9, relative_gap * that).
/// Deterministic: depends only on the arguments, never on timing or
/// thread placement.
TaskResult RunSearchTask(const CompiledProblem& cp, NodeRef start,
                         double incumbent_cost, uint64_t node_budget,
                         double relative_gap);

}  // namespace solver_internal
}  // namespace coradd
