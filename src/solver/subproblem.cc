#include "solver/subproblem.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/status.h"
#include "cost/cost_model.h"

namespace coradd {
namespace solver_internal {

namespace {

constexpr double kDeltaEps = 1e-12;  ///< below this a candidate is useless
/// Subtrees that cannot beat the incumbent by more than this are pruned —
/// the same tolerance the legacy serial engine uses. CORADD's plateaus are
/// full of solutions within ~1e-10 of each other (candidates that fit the
/// budget without changing any query's winner); exact pruning would walk
/// them all.
constexpr double kPruneSlack = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();

/// w_q * cost, keeping infeasible pairs at +infinity even for weight 0.
inline double Weighted(double cost, double weight) {
  return cost == kInfeasibleCost ? kInf : cost * weight;
}

/// Fractional-knapsack ordering entry for the bound computation.
struct DensityEntry {
  double density;
  double delta;
  int32_t pos;
};

/// Reusable per-task buffers; sized once, no per-node allocation.
struct Scratch {
  std::vector<double> wcur;              ///< per-query weighted current cost
  std::vector<double> wbest;             ///< per-query best over live pool
  std::vector<uint32_t> decided_epoch;   ///< per pool position
  std::vector<uint8_t> group_used;       ///< per SOS1 group
  std::vector<uint32_t> group_live;      ///< live members per SOS1 group
  std::vector<int32_t> live;             ///< live pool positions
  std::vector<double> live_delta;        ///< aligned with live
  std::vector<DensityEntry> density;     ///< knapsack ordering
  uint32_t epoch = 0;

  explicit Scratch(const CompiledProblem& cp)
      : wcur(cp.nq),
        wbest(cp.nq),
        decided_epoch(cp.pool.size(), 0),
        group_used(cp.num_groups, 0),
        group_live(cp.num_groups, 0) {}
};

/// Marginal weighted benefit of pool position `pos` against `wcur`.
inline double DeltaOf(const CompiledProblem& cp, const double* wcur,
                      int32_t pos) {
  const double* row = cp.wcost.data() + static_cast<size_t>(pos) * cp.nq;
  double d = 0.0;
  for (size_t q = 0; q < cp.nq; ++q) {
    if (row[q] < wcur[q]) d += wcur[q] - row[q];
  }
  return d;
}

/// Applies pool position `pos` to (wcur, total, used).
inline void ApplyTo(const CompiledProblem& cp, int32_t pos,
                    std::vector<double>* wcur, double* total,
                    uint64_t* used) {
  const double* row = cp.wcost.data() + static_cast<size_t>(pos) * cp.nq;
  for (size_t q = 0; q < cp.nq; ++q) {
    if (row[q] < (*wcur)[q]) {
      *total -= (*wcur)[q] - row[q];
      (*wcur)[q] = row[q];
    }
  }
  *used += cp.pool_sizes[static_cast<size_t>(pos)];
}

}  // namespace

CompiledProblem CompileProblem(const SelectionProblem& p) {
  CompiledProblem cp;
  cp.problem = &p;
  cp.nq = p.NumQueries();
  cp.budget = p.budget_bytes;
  cp.num_groups = p.sos1_groups.size();

  std::vector<int> group_of(p.NumCandidates(), -1);
  for (size_t g = 0; g < p.sos1_groups.size(); ++g) {
    for (int m : p.sos1_groups[g]) {
      group_of[static_cast<size_t>(m)] = static_cast<int>(g);
    }
  }
  std::vector<bool> forced(p.NumCandidates(), false);
  // A forced candidate claims its SOS1 group: siblings are inadmissible
  // everywhere, so they never enter the pool (mirrors the legacy engine's
  // root group_used_ seeding).
  std::vector<bool> group_claimed(p.sos1_groups.size(), false);
  for (int f : p.forced) {
    forced[static_cast<size_t>(f)] = true;
    const int g = group_of[static_cast<size_t>(f)];
    if (g >= 0) group_claimed[static_cast<size_t>(g)] = true;
  }

  // Root state: forced candidates applied.
  cp.root_wcur.assign(cp.nq, kInf);
  cp.root_used = 0;
  std::vector<double> cur(cp.nq, kInfeasibleCost);
  for (int f : p.forced) {
    cp.root_used += p.sizes[static_cast<size_t>(f)];
    for (size_t q = 0; q < cp.nq; ++q) {
      cur[q] = std::min(cur[q], p.costs[q][static_cast<size_t>(f)]);
    }
  }
  cp.root_total = 0.0;
  for (size_t q = 0; q < cp.nq; ++q) {
    // Every query must be answerable by the always-present base design.
    CORADD_CHECK(cur[q] != kInfeasibleCost);
    cp.root_wcur[q] = Weighted(cur[q], p.Weight(q));
    cp.root_total += cp.root_wcur[q];
  }

  // Candidate pool: everything non-forced that fits and helps at the root.
  struct PoolEntry {
    double density;
    int id;
  };
  std::vector<PoolEntry> entries;
  for (size_t m = 0; m < p.NumCandidates(); ++m) {
    if (forced[m]) continue;
    if (group_of[m] >= 0 && group_claimed[static_cast<size_t>(group_of[m])]) {
      continue;
    }
    if (cp.root_used + p.sizes[m] > cp.budget) continue;
    double d = 0.0;
    for (size_t q = 0; q < cp.nq; ++q) {
      const double wc = Weighted(p.costs[q][m], p.Weight(q));
      if (wc < cp.root_wcur[q]) d += cp.root_wcur[q] - wc;
    }
    if (d <= kDeltaEps) continue;  // benefit never grows down the tree
    entries.push_back(
        {d / static_cast<double>(std::max<uint64_t>(1, p.sizes[m])),
         static_cast<int>(m)});
  }
  std::sort(entries.begin(), entries.end(),
            [](const PoolEntry& a, const PoolEntry& b) {
              if (a.density != b.density) return a.density > b.density;
              return a.id < b.id;
            });

  cp.pool.reserve(entries.size());
  cp.pool_sizes.reserve(entries.size());
  cp.pool_group.reserve(entries.size());
  cp.pos_of_candidate.assign(p.NumCandidates(), -1);
  cp.wcost.resize(entries.size() * cp.nq);
  for (size_t pos = 0; pos < entries.size(); ++pos) {
    const int id = entries[pos].id;
    cp.pos_of_candidate[static_cast<size_t>(id)] = static_cast<int>(pos);
    cp.pool.push_back(id);
    cp.pool_sizes.push_back(p.sizes[static_cast<size_t>(id)]);
    cp.pool_group.push_back(group_of[static_cast<size_t>(id)]);
    double* row = cp.wcost.data() + pos * cp.nq;
    for (size_t q = 0; q < cp.nq; ++q) {
      row[q] = Weighted(p.costs[q][static_cast<size_t>(id)], p.Weight(q));
    }
  }
  return cp;
}

CompiledSolution GreedyIncumbent(const CompiledProblem& cp) {
  CompiledSolution out;
  out.valid = true;
  out.cost = cp.root_total;
  std::vector<double> wcur = cp.root_wcur;
  uint64_t used = cp.root_used;
  std::vector<uint8_t> taken(cp.pool.size(), 0);
  std::vector<uint8_t> group_used(cp.num_groups, 0);
  for (;;) {
    int32_t best = -1;
    double best_density = 0.0;
    for (size_t pos = 0; pos < cp.pool.size(); ++pos) {
      if (taken[pos]) continue;
      if (used + cp.pool_sizes[pos] > cp.budget) continue;
      const int g = cp.pool_group[pos];
      if (g >= 0 && group_used[static_cast<size_t>(g)]) continue;
      const double d = DeltaOf(cp, wcur.data(), static_cast<int32_t>(pos));
      if (d <= kDeltaEps) continue;
      const double density =
          d / static_cast<double>(std::max<uint64_t>(1, cp.pool_sizes[pos]));
      if (density > best_density) {  // strict: earliest max in static order
        best_density = density;
        best = static_cast<int32_t>(pos);
      }
    }
    if (best < 0) break;
    taken[static_cast<size_t>(best)] = 1;
    const int g = cp.pool_group[static_cast<size_t>(best)];
    if (g >= 0) group_used[static_cast<size_t>(g)] = 1;
    ApplyTo(cp, best, &wcur, &out.cost, &used);
    out.includes.push_back(best);
  }
  return out;
}

CompiledSolution ApplyWarmHint(const CompiledProblem& cp,
                               const std::vector<int32_t>& positions) {
  CompiledSolution out;
  if (positions.empty()) return out;
  std::vector<int32_t> sorted = positions;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  out.valid = true;
  out.cost = cp.root_total;
  std::vector<double> wcur = cp.root_wcur;
  uint64_t used = cp.root_used;
  std::vector<uint8_t> group_used(cp.num_groups, 0);
  for (int32_t pos : sorted) {
    if (pos < 0 || static_cast<size_t>(pos) >= cp.pool.size()) continue;
    if (used + cp.pool_sizes[static_cast<size_t>(pos)] > cp.budget) continue;
    const int g = cp.pool_group[static_cast<size_t>(pos)];
    if (g >= 0 && group_used[static_cast<size_t>(g)]) continue;
    if (g >= 0) group_used[static_cast<size_t>(g)] = 1;
    ApplyTo(cp, pos, &wcur, &out.cost, &used);
    out.includes.push_back(pos);
  }
  return out;
}

TaskResult RunSearchTask(const CompiledProblem& cp, NodeRef start,
                         double incumbent_cost, uint64_t node_budget,
                         double relative_gap) {
  TaskResult out;
  out.best.cost = kInf;
  Scratch s(cp);

  std::vector<NodeRef> stack;
  stack.push_back(std::move(start));

  while (!stack.empty() && out.nodes < node_budget) {
    NodeRef node = std::move(stack.back());
    stack.pop_back();
    ++out.nodes;

    // --- Rebuild the node state from the root.
    ++s.epoch;
    std::copy(cp.root_wcur.begin(), cp.root_wcur.end(), s.wcur.begin());
    std::fill(s.group_used.begin(), s.group_used.end(), 0);
    double total = cp.root_total;
    uint64_t used = cp.root_used;
    for (int32_t pos : node.includes) {
      ApplyTo(cp, pos, &s.wcur, &total, &used);
      s.decided_epoch[static_cast<size_t>(pos)] = s.epoch;
      const int g = cp.pool_group[static_cast<size_t>(pos)];
      if (g >= 0) s.group_used[static_cast<size_t>(g)] = 1;
    }
    for (int32_t pos : node.excludes) {
      s.decided_epoch[static_cast<size_t>(pos)] = s.epoch;
    }

    const double prune_ref = std::min(incumbent_cost, out.best.cost);

    // --- Live scan: admissible candidates with positive marginal benefit.
    // Tracks the branching choice (largest benefit, earliest in static order
    // on ties), the per-query best achievable cost, and SOS1 conflicts.
    std::copy(s.wcur.begin(), s.wcur.end(), s.wbest.begin());
    std::fill(s.group_live.begin(), s.group_live.end(), 0);
    s.live.clear();
    s.live_delta.clear();
    int32_t branch = -1;
    double branch_delta = -1.0;
    uint64_t live_bytes = 0;
    bool group_conflict = false;
    for (size_t pos = 0; pos < cp.pool.size(); ++pos) {
      if (s.decided_epoch[pos] == s.epoch) continue;
      if (used + cp.pool_sizes[pos] > cp.budget) continue;
      const int g = cp.pool_group[pos];
      if (g >= 0 && s.group_used[static_cast<size_t>(g)]) continue;
      const double d = DeltaOf(cp, s.wcur.data(), static_cast<int32_t>(pos));
      if (d <= kDeltaEps) continue;
      const double* row = cp.wcost.data() + pos * cp.nq;
      for (size_t q = 0; q < cp.nq; ++q) {
        if (row[q] < s.wbest[q]) s.wbest[q] = row[q];
      }
      s.live.push_back(static_cast<int32_t>(pos));
      s.live_delta.push_back(d);
      live_bytes += cp.pool_sizes[pos];
      if (g >= 0 && ++s.group_live[static_cast<size_t>(g)] >= 2) {
        group_conflict = true;
      }
      if (d > branch_delta) {
        branch_delta = d;
        branch = static_cast<int32_t>(pos);
      }
    }

    // Resolve SOS1 groups first: while any group has two or more live
    // members, branch on that group's best member. Once every group is
    // down to at most one live candidate, the subtree is conflict-free and
    // the all-fit rule below can close it in one step — which is what
    // collapses the near-exhaustive budget plateaus (everything fits; the
    // only real decision is which re-clustering of each fact to keep).
    if (group_conflict) {
      double best_group_delta = -1.0;
      for (size_t i = 0; i < s.live.size(); ++i) {
        const int g = cp.pool_group[static_cast<size_t>(s.live[i])];
        if (g < 0 || s.group_live[static_cast<size_t>(g)] < 2) continue;
        if (s.live_delta[i] > best_group_delta) {
          best_group_delta = s.live_delta[i];
          branch = s.live[i];
        }
      }
    }

    // The node itself is a feasible solution.
    if (total < out.best.cost) {
      out.best.cost = total;
      out.best.includes = node.includes;
      out.best.valid = true;
      ++out.incumbent_updates;
    }
    if (s.live.empty()) continue;  // leaf

    // Benefit still obtainable in this subtree, two admissible views:
    // per-query potential (cannot go below the best remaining candidate)
    // and — when not all live candidates fit together — a fractional
    // knapsack over marginal benefits (valid by submodularity).
    const double bar_ref = std::min(prune_ref, out.best.cost);
    const double prune_bar =
        bar_ref - std::max(kPruneSlack, relative_gap * bar_ref);
    double potential = 0.0;
    for (size_t q = 0; q < cp.nq; ++q) potential += s.wcur[q] - s.wbest[q];

    // If every live candidate fits and no two share an SOS1 group, taking
    // all of them is optimal for the subtree: the resulting per-query cost
    // is exactly wbest, so the subtree closes in O(nq).
    if (!group_conflict && used + live_bytes <= cp.budget) {
      const double t_all = total - potential;
      if (t_all < out.best.cost) {
        out.best.cost = t_all;
        out.best.includes = node.includes;
        out.best.includes.insert(out.best.includes.end(), s.live.begin(),
                                 s.live.end());
        out.best.valid = true;
        ++out.incumbent_updates;
      }
      ++out.leaf_shortcuts;
      continue;
    }

    // The combined bound is min(knapsack, potential), so if the potential
    // alone already prunes, skip the knapsack's sort entirely.
    if (total - potential >= prune_bar) {
      ++out.bound_prunes;
      continue;
    }

    s.density.clear();
    for (size_t i = 0; i < s.live.size(); ++i) {
      const size_t pos = static_cast<size_t>(s.live[i]);
      s.density.push_back(
          {s.live_delta[i] /
               static_cast<double>(std::max<uint64_t>(1, cp.pool_sizes[pos])),
           s.live_delta[i], s.live[i]});
    }
    std::sort(s.density.begin(), s.density.end(),
              [](const DensityEntry& a, const DensityEntry& b) {
                if (a.density != b.density) return a.density > b.density;
                return a.pos < b.pos;
              });
    double knapsack = 0.0;
    uint64_t space = cp.budget - used;
    for (const auto& e : s.density) {
      const uint64_t sz =
          std::max<uint64_t>(1, cp.pool_sizes[static_cast<size_t>(e.pos)]);
      if (sz <= space) {
        knapsack += e.delta;
        space -= sz;
      } else {
        knapsack += e.density * static_cast<double>(space);
        break;
      }
    }
    const double gain = std::min(knapsack, potential);
    if (total - gain >= prune_bar) {
      ++out.bound_prunes;
      continue;
    }

    // Branch on `branch`: explore the include child first (greedy-like
    // descent finds strong incumbents fast), so push the exclude child
    // below it on the stack.
    NodeRef exclude_child;
    exclude_child.includes = node.includes;
    exclude_child.excludes = std::move(node.excludes);
    exclude_child.excludes.push_back(branch);
    NodeRef include_child;
    include_child.includes = std::move(node.includes);
    include_child.includes.push_back(branch);
    include_child.excludes = exclude_child.excludes;
    include_child.excludes.pop_back();  // same path, without `branch`
    stack.push_back(std::move(exclude_child));
    stack.push_back(std::move(include_child));
  }

  out.suspended = std::move(stack);
  return out;
}

}  // namespace solver_internal
}  // namespace coradd
