// Equi-width histogram over int64-coded column values, used to estimate
// predicate selectivities (§4.1.1: "The vectors are constructed from
// histograms we build by scanning the database").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace coradd {

/// Equi-width histogram with exact min/max/distinct tracked at build time.
class Histogram {
 public:
  Histogram() = default;

  /// Builds from raw values with at most `max_buckets` buckets. If the value
  /// domain is narrow (<= max_buckets distinct points of the range), buckets
  /// are single values and all estimates are exact.
  static Histogram Build(const std::vector<int64_t>& values,
                         size_t max_buckets = 256);

  uint64_t num_rows() const { return num_rows_; }
  int64_t min_value() const { return min_; }
  int64_t max_value() const { return max_; }
  uint64_t distinct_estimate() const { return distinct_; }
  size_t num_buckets() const { return counts_.size(); }

  /// Fraction of rows with value == v.
  double SelectivityEqual(int64_t v) const;

  /// Fraction of rows with lo <= value <= hi (inclusive).
  double SelectivityRange(int64_t lo, int64_t hi) const;

  /// Fraction of rows with value in `values`.
  double SelectivityIn(const std::vector<int64_t>& values) const;

  std::string ToString() const;

 private:
  size_t BucketOf(int64_t v) const;
  /// Fraction of bucket `b` that overlaps [lo, hi].
  double BucketOverlap(size_t b, int64_t lo, int64_t hi) const;

  uint64_t num_rows_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  int64_t width_ = 1;         ///< Bucket width in domain units.
  uint64_t distinct_ = 0;     ///< Exact distinct count from the build scan.
  std::vector<uint64_t> counts_;
  std::vector<uint64_t> bucket_distinct_;  ///< Distinct values per bucket.
};

}  // namespace coradd
