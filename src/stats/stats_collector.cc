#include "stats/stats_collector.h"

namespace coradd {

UniverseStats::UniverseStats(const Universe* universe,
                             const StatsOptions& options)
    : universe_(universe), options_(options) {
  CORADD_CHECK(universe != nullptr);

  // One scan per column builds all histograms (statistic #1 and the basis of
  // predicate selectivities, statistic #3).
  const size_t ncols = universe_->NumColumns();
  histograms_.resize(ncols);
  std::vector<int64_t> column;
  column.reserve(universe_->NumRows());
  for (size_t c = 0; c < ncols; ++c) {
    column.clear();
    for (RowId r = 0; r < universe_->NumRows(); ++r) {
      column.push_back(universe_->Value(r, static_cast<int>(c)));
    }
    histograms_[c] = Histogram::Build(column, options_.histogram_buckets);
  }

  synopsis_ = Synopsis::Build(*universe_, options_.sample_rows, options_.seed);
  correlations_ = std::make_unique<CorrelationCatalog>(
      universe_, &synopsis_, options_.exact_distinct);
}

void UniverseStats::InstallMinedDependencies(
    const DiscoveredDependencies* mined, CorrelationSource source) {
  if (mined == nullptr) {
    correlations_->SetMinedDependencies(nullptr, {},
                                        CorrelationSource::kSynopsis);
    return;
  }
  std::vector<int> mined_col_of_ucol(universe_->NumColumns(), -1);
  for (size_t c = 0; c < universe_->NumColumns(); ++c) {
    mined_col_of_ucol[c] = mined->ColumnIndex(universe_->Column(c).name);
  }
  correlations_->SetMinedDependencies(mined, std::move(mined_col_of_ucol),
                                      source);
}

}  // namespace coradd
