#include "stats/histogram.h"

#include <algorithm>
#include <unordered_set>

#include "common/status.h"
#include "common/string_util.h"

namespace coradd {

Histogram Histogram::Build(const std::vector<int64_t>& values,
                           size_t max_buckets) {
  Histogram h;
  h.num_rows_ = values.size();
  if (values.empty()) {
    h.counts_.assign(1, 0);
    h.bucket_distinct_.assign(1, 0);
    return h;
  }
  const auto [mn, mx] = std::minmax_element(values.begin(), values.end());
  h.min_ = *mn;
  h.max_ = *mx;

  const uint64_t domain = static_cast<uint64_t>(h.max_ - h.min_) + 1;
  const uint64_t nb = std::min<uint64_t>(domain, max_buckets);
  h.width_ = static_cast<int64_t>((domain + nb - 1) / nb);
  if (h.width_ < 1) h.width_ = 1;
  const size_t buckets = static_cast<size_t>((domain + h.width_ - 1) / h.width_);
  h.counts_.assign(buckets, 0);

  std::vector<std::unordered_set<int64_t>> per_bucket(buckets);
  for (int64_t v : values) {
    const size_t b = h.BucketOf(v);
    ++h.counts_[b];
    per_bucket[b].insert(v);
  }
  h.bucket_distinct_.resize(buckets);
  for (size_t b = 0; b < buckets; ++b) {
    h.bucket_distinct_[b] = per_bucket[b].size();
    h.distinct_ += per_bucket[b].size();
  }
  return h;
}

size_t Histogram::BucketOf(int64_t v) const {
  CORADD_CHECK(v >= min_ && v <= max_);
  return static_cast<size_t>((v - min_) / width_);
}

double Histogram::SelectivityEqual(int64_t v) const {
  if (num_rows_ == 0 || v < min_ || v > max_) return 0.0;
  const size_t b = BucketOf(v);
  if (counts_[b] == 0 || bucket_distinct_[b] == 0) return 0.0;
  // Uniform-within-bucket assumption over the bucket's distinct values.
  return static_cast<double>(counts_[b]) /
         static_cast<double>(bucket_distinct_[b]) /
         static_cast<double>(num_rows_);
}

double Histogram::BucketOverlap(size_t b, int64_t lo, int64_t hi) const {
  const int64_t b_lo = min_ + static_cast<int64_t>(b) * width_;
  const int64_t b_hi = std::min(b_lo + width_ - 1, max_);
  const int64_t o_lo = std::max(b_lo, lo);
  const int64_t o_hi = std::min(b_hi, hi);
  if (o_lo > o_hi) return 0.0;
  return static_cast<double>(o_hi - o_lo + 1) /
         static_cast<double>(b_hi - b_lo + 1);
}

double Histogram::SelectivityRange(int64_t lo, int64_t hi) const {
  if (num_rows_ == 0 || hi < min_ || lo > max_ || lo > hi) return 0.0;
  lo = std::max(lo, min_);
  hi = std::min(hi, max_);
  double rows = 0.0;
  for (size_t b = BucketOf(lo); b <= BucketOf(hi); ++b) {
    rows += static_cast<double>(counts_[b]) * BucketOverlap(b, lo, hi);
  }
  return rows / static_cast<double>(num_rows_);
}

double Histogram::SelectivityIn(const std::vector<int64_t>& values) const {
  double s = 0.0;
  for (int64_t v : values) s += SelectivityEqual(v);
  return std::min(s, 1.0);
}

std::string Histogram::ToString() const {
  return StrFormat(
      "Histogram{rows=%llu, min=%lld, max=%lld, buckets=%zu, distinct=%llu}",
      static_cast<unsigned long long>(num_rows_), static_cast<long long>(min_),
      static_cast<long long>(max_), counts_.size(),
      static_cast<unsigned long long>(distinct_));
}

}  // namespace coradd
