// Gibbons' Distinct Sampling (VLDB 2001), used by CORADD (§4.1.1) to
// estimate the number of distinct values of an attribute with one streaming
// pass and bounded memory. The sketch keeps the set of values whose hash
// falls in a geometrically shrinking region; halving the region ("raising
// the level") whenever the set overflows. The distinct-count estimate is
// |set| * 2^level, and the retained values are a uniform sample of the
// distinct domain (which also supports incremental maintenance under
// inserts, per A-2.2's closing remark).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace coradd {

/// Streaming distinct-value sketch with bounded memory.
class DistinctSampler {
 public:
  /// `capacity` bounds the retained distinct values (>= 16 recommended).
  explicit DistinctSampler(size_t capacity = 1024, uint64_t seed = 0);

  /// Observes one value (any 64-bit encoding; hashed internally).
  void Add(int64_t value);

  /// Observes a whole column.
  void AddAll(const std::vector<int64_t>& values);

  /// Estimated number of distinct values seen.
  double EstimateDistinct() const;

  /// Current sampling level (region = 2^-level of hash space).
  int level() const { return level_; }
  size_t sample_size() const { return sample_.size(); }

  /// The retained distinct values (a uniform sample of the distinct domain).
  std::vector<int64_t> SampleValues() const;

 private:
  /// True iff the hash of v falls inside the current sampling region.
  bool InRegion(uint64_t h) const { return (h >> (64 - level_)) == 0 || level_ == 0; }

  void RaiseLevel();

  size_t capacity_;
  uint64_t seed_;
  int level_ = 0;
  /// Values currently retained, with their hashes for re-filtering.
  std::unordered_set<int64_t> sample_;
};

}  // namespace coradd
