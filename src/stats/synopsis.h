// Table synopsis: a uniform random sample of universe rows kept in memory
// (A-2.2 statistic #4, "table synopses consisting of random samples").
// The cost model runs AE over the synopsis on the fly to estimate
// `fragments` and distinct counts for hypothetical MV designs.
#pragma once

#include <cstdint>
#include <vector>

#include "catalog/universe.h"
#include "common/rng.h"

namespace coradd {

/// Uniform sample (without replacement) of the rows of a Universe.
class Synopsis {
 public:
  Synopsis() = default;

  /// Draws `sample_rows` rows (or all rows if fewer) from `universe`.
  static Synopsis Build(const Universe& universe, size_t sample_rows,
                        uint64_t seed);

  uint64_t total_rows() const { return total_rows_; }
  size_t sample_rows() const { return values_.empty() ? 0 : values_[0].size(); }
  size_t num_columns() const { return values_.size(); }

  /// Sampled values of universe column `ucol`.
  const std::vector<int64_t>& Values(int ucol) const {
    return values_[static_cast<size_t>(ucol)];
  }

  /// Composite hash per sampled row over the given universe columns.
  std::vector<uint64_t> CompositeHashes(const std::vector<int>& ucols) const;

 private:
  uint64_t total_rows_ = 0;
  /// values_[ucol][i] = value of sampled row i.
  std::vector<std::vector<int64_t>> values_;
};

}  // namespace coradd
