// Distinct-value estimation from a uniform row sample, after Charikar,
// Chaudhuri, Motwani & Narasayya, "Towards estimation error guarantees for
// distinct values" (PODS 2000). CORADD uses AE for composite attributes
// (§4.1.1) and to estimate `fragments`/`selectivity` for hypothetical MV
// designs from table synopses (A-2.2).
//
// We provide the paper's GEE (Guaranteed-Error Estimator) and the Adaptive
// Estimator (AE). AE models "rare" values (sample frequency 1 or 2) as
// Poisson arrivals with a common rate lambda: with E[f1] = D_rare * l*e^-l
// and E[f2] = D_rare * l^2/2 * e^-l, we get l = 2*f2/f1 and
// D_rare = f1 * e^l / l. Frequent values are assumed fully observed.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace coradd {

/// Frequency-of-frequencies summary of a sample: fof[j] = number of distinct
/// values appearing exactly j times in the sample.
struct SampleFrequencyProfile {
  uint64_t sample_rows = 0;      ///< n
  uint64_t total_rows = 0;       ///< N
  uint64_t distinct_in_sample = 0;  ///< d
  uint64_t f1 = 0;               ///< singletons
  uint64_t f2 = 0;               ///< doubletons

  /// Builds the profile from raw sampled values (already-drawn sample).
  static SampleFrequencyProfile FromValues(const std::vector<int64_t>& sample,
                                           uint64_t total_rows);

  /// Builds from precomputed hashes (for composite attributes).
  static SampleFrequencyProfile FromHashes(const std::vector<uint64_t>& sample,
                                           uint64_t total_rows);

  /// Builds from an already-sorted sample with a single linear scan (no
  /// hashing/allocation; the cost model's hot path).
  static SampleFrequencyProfile FromSortedValues(
      const std::vector<int64_t>& sorted_sample, uint64_t total_rows);
};

/// GEE: sqrt(N/n) * f1 + (d - f1). Guaranteed ratio error O(sqrt(N/n)).
double EstimateDistinctGee(const SampleFrequencyProfile& p);

/// Adaptive Estimator; falls back to GEE when the Poisson fit is undefined
/// (f1 == 0 or f2 == 0). Result is clamped to [d, N].
double EstimateDistinctAe(const SampleFrequencyProfile& p);

}  // namespace coradd
