#include "stats/distinct_sampler.h"

#include "common/hash.h"
#include "common/status.h"

namespace coradd {

DistinctSampler::DistinctSampler(size_t capacity, uint64_t seed)
    : capacity_(capacity < 16 ? 16 : capacity), seed_(seed) {}

void DistinctSampler::Add(int64_t value) {
  const uint64_t h = HashU64(static_cast<uint64_t>(value) ^ seed_);
  if (!InRegion(h)) return;
  sample_.insert(value);
  while (sample_.size() > capacity_) RaiseLevel();
}

void DistinctSampler::AddAll(const std::vector<int64_t>& values) {
  for (int64_t v : values) Add(v);
}

void DistinctSampler::RaiseLevel() {
  ++level_;
  CORADD_CHECK(level_ < 64);
  for (auto it = sample_.begin(); it != sample_.end();) {
    const uint64_t h = HashU64(static_cast<uint64_t>(*it) ^ seed_);
    if ((h >> (64 - level_)) != 0) {
      it = sample_.erase(it);
    } else {
      ++it;
    }
  }
}

double DistinctSampler::EstimateDistinct() const {
  return static_cast<double>(sample_.size()) *
         static_cast<double>(uint64_t{1} << level_);
}

std::vector<int64_t> DistinctSampler::SampleValues() const {
  return std::vector<int64_t>(sample_.begin(), sample_.end());
}

}  // namespace coradd
