#include "stats/correlation.h"

#include <algorithm>

#include "common/status.h"

namespace coradd {

CorrelationCatalog::CorrelationCatalog(const Universe* universe,
                                       const Synopsis* synopsis, bool exact)
    : universe_(universe), synopsis_(synopsis), exact_(exact) {
  CORADD_CHECK(universe_ != nullptr);
  CORADD_CHECK(synopsis_ != nullptr);
}

double CorrelationCatalog::Distinct(const std::vector<int>& ucols) const {
  CORADD_CHECK(!ucols.empty());
  std::vector<int> key = ucols;
  std::sort(key.begin(), key.end());
  key.erase(std::unique(key.begin(), key.end()), key.end());

  auto it = distinct_cache_.find(key);
  if (it != distinct_cache_.end()) return it->second;

  double est;
  if (exact_) {
    est = static_cast<double>(universe_->DistinctCountComposite(key));
  } else {
    const auto hashes = synopsis_->CompositeHashes(key);
    const auto profile =
        SampleFrequencyProfile::FromHashes(hashes, synopsis_->total_rows());
    est = EstimateDistinctAe(profile);
  }
  if (est < 1.0) est = 1.0;
  distinct_cache_[key] = est;
  return est;
}

std::vector<int> CorrelationCatalog::NormalizedUnion(
    const std::vector<int>& a, const std::vector<int>& b) const {
  std::vector<int> u = a;
  u.insert(u.end(), b.begin(), b.end());
  std::sort(u.begin(), u.end());
  u.erase(std::unique(u.begin(), u.end()), u.end());
  return u;
}

double CorrelationCatalog::Strength(const std::vector<int>& from,
                                    const std::vector<int>& to) const {
  const double d_from = Distinct(from);
  const double d_joint = Distinct(NormalizedUnion(from, to));
  // Exact counts satisfy d_from <= d_joint; estimates may not, so clamp.
  return std::min(1.0, d_from / d_joint);
}

}  // namespace coradd
