#include "stats/correlation.h"

#include <algorithm>

#include "common/status.h"

namespace coradd {

CorrelationCatalog::CorrelationCatalog(const Universe* universe,
                                       const Synopsis* synopsis, bool exact)
    : universe_(universe), synopsis_(synopsis), exact_(exact) {
  CORADD_CHECK(universe_ != nullptr);
  CORADD_CHECK(synopsis_ != nullptr);
}

double CorrelationCatalog::Distinct(const std::vector<int>& ucols) const {
  CORADD_CHECK(!ucols.empty());
  std::vector<int> key = ucols;
  std::sort(key.begin(), key.end());
  key.erase(std::unique(key.begin(), key.end()), key.end());

  std::lock_guard<std::mutex> lock(mu_);
  auto it = distinct_cache_.find(key);
  if (it != distinct_cache_.end()) return it->second;

  double est;
  if (exact_) {
    est = static_cast<double>(universe_->DistinctCountComposite(key));
  } else {
    const auto hashes = synopsis_->CompositeHashes(key);
    const auto profile =
        SampleFrequencyProfile::FromHashes(hashes, synopsis_->total_rows());
    est = EstimateDistinctAe(profile);
  }
  if (est < 1.0) est = 1.0;
  distinct_cache_[key] = est;
  return est;
}

std::vector<int> CorrelationCatalog::NormalizedUnion(
    const std::vector<int>& a, const std::vector<int>& b) const {
  std::vector<int> u = a;
  u.insert(u.end(), b.begin(), b.end());
  std::sort(u.begin(), u.end());
  u.erase(std::unique(u.begin(), u.end()), u.end());
  return u;
}

void CorrelationCatalog::SetMinedDependencies(
    const DiscoveredDependencies* mined, std::vector<int> mined_col_of_ucol,
    CorrelationSource source) {
  CORADD_CHECK(mined == nullptr ||
               mined_col_of_ucol.size() == universe_->NumColumns());
  mined_ = mined;
  mined_col_of_ucol_ = std::move(mined_col_of_ucol);
  source_ = mined == nullptr ? CorrelationSource::kSynopsis : source;
}

double CorrelationCatalog::MinedStrength(const std::vector<int>& from,
                                         const std::vector<int>& to) const {
  if (mined_ == nullptr) return -1.0;
  std::vector<int> mfrom, mto;
  mfrom.reserve(from.size());
  mto.reserve(to.size());
  for (int u : from) {
    const int mc = mined_col_of_ucol_[static_cast<size_t>(u)];
    if (mc < 0) return -1.0;
    mfrom.push_back(mc);
  }
  for (int u : to) {
    const int mc = mined_col_of_ucol_[static_cast<size_t>(u)];
    if (mc < 0) return -1.0;
    mto.push_back(mc);
  }
  return mined_->StrengthFor(mfrom, mto);
}

double CorrelationCatalog::Strength(const std::vector<int>& from,
                                    const std::vector<int>& to) const {
  if (mined_ != nullptr && source_ != CorrelationSource::kSynopsis) {
    const double s = MinedStrength(from, to);
    if (s >= 0.0) return s;
    if (source_ == CorrelationSource::kMinedOnly) return 0.0;
  }
  const double d_from = Distinct(from);
  const double d_joint = Distinct(NormalizedUnion(from, to));
  // Exact counts satisfy d_from <= d_joint; estimates may not, so clamp.
  return std::min(1.0, d_from / d_joint);
}

}  // namespace coradd
