#include "stats/ae_estimator.h"

#include <algorithm>
#include <cmath>

namespace coradd {

namespace {

template <typename T>
SampleFrequencyProfile ProfileFrom(const std::vector<T>& sample,
                                   uint64_t total_rows) {
  SampleFrequencyProfile p;
  p.sample_rows = sample.size();
  p.total_rows = total_rows;
  std::unordered_map<T, uint32_t> counts;
  counts.reserve(sample.size() * 2);
  for (const T& v : sample) ++counts[v];
  p.distinct_in_sample = counts.size();
  for (const auto& [v, c] : counts) {
    if (c == 1) ++p.f1;
    if (c == 2) ++p.f2;
  }
  return p;
}

}  // namespace

SampleFrequencyProfile SampleFrequencyProfile::FromValues(
    const std::vector<int64_t>& sample, uint64_t total_rows) {
  return ProfileFrom(sample, total_rows);
}

SampleFrequencyProfile SampleFrequencyProfile::FromHashes(
    const std::vector<uint64_t>& sample, uint64_t total_rows) {
  return ProfileFrom(sample, total_rows);
}

SampleFrequencyProfile SampleFrequencyProfile::FromSortedValues(
    const std::vector<int64_t>& sorted_sample, uint64_t total_rows) {
  SampleFrequencyProfile p;
  p.sample_rows = sorted_sample.size();
  p.total_rows = total_rows;
  size_t i = 0;
  while (i < sorted_sample.size()) {
    size_t j = i + 1;
    while (j < sorted_sample.size() && sorted_sample[j] == sorted_sample[i]) {
      ++j;
    }
    ++p.distinct_in_sample;
    if (j - i == 1) ++p.f1;
    if (j - i == 2) ++p.f2;
    i = j;
  }
  return p;
}

double EstimateDistinctGee(const SampleFrequencyProfile& p) {
  if (p.sample_rows == 0) return 0.0;
  if (p.sample_rows >= p.total_rows) {
    return static_cast<double>(p.distinct_in_sample);
  }
  const double scale = std::sqrt(static_cast<double>(p.total_rows) /
                                 static_cast<double>(p.sample_rows));
  const double est = scale * static_cast<double>(p.f1) +
                     static_cast<double>(p.distinct_in_sample - p.f1);
  return std::clamp(est, static_cast<double>(p.distinct_in_sample),
                    static_cast<double>(p.total_rows));
}

double EstimateDistinctAe(const SampleFrequencyProfile& p) {
  if (p.sample_rows == 0) return 0.0;
  if (p.sample_rows >= p.total_rows) {
    return static_cast<double>(p.distinct_in_sample);
  }
  if (p.f1 == 0 || p.f2 == 0) return EstimateDistinctGee(p);

  // Poisson fit over rare values (see header). lambda = 2 f2 / f1 is the
  // method-of-moments solution of the ratio E[f2]/E[f1] = lambda/2.
  const double f1 = static_cast<double>(p.f1);
  const double f2 = static_cast<double>(p.f2);
  const double lambda = 2.0 * f2 / f1;
  const double d_rare_est = f1 * std::exp(lambda) / lambda;
  // Distinct values that showed up 3+ times are treated as fully observed.
  const double d_freq =
      static_cast<double>(p.distinct_in_sample) - f1 - f2;
  const double est = d_freq + std::max(d_rare_est, f1 + f2);
  return std::clamp(est, static_cast<double>(p.distinct_in_sample),
                    static_cast<double>(p.total_rows));
}

}  // namespace coradd
