// Correlation-strength measurement (§4.1.1). CORADD adopts the CORDS
// measure: for attribute sets C1, C2,
//     strength(C1 -> C2) = |C1| / |C1 C2|
// where |C1| is the number of distinct values of C1 and |C1 C2| the number
// of distinct joint values. A value near 1 means C1 (soft-)functionally
// determines C2. Distinct counts are estimated with AE over the synopsis
// (or computed exactly when the catalog is built in exact mode for tests).
//
// A DiscoveredDependencies report from the mining subsystem can be installed
// as an alternative strength source: mined exact FDs answer 1.0, mined AFDs
// and pairwise distinct ratios answer from the mined lattice, and sets the
// lattice never visited either fall back to AE (kMinedFirst) or report no
// correlation (kMinedOnly).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/universe.h"
#include "discovery/dependencies.h"
#include "stats/ae_estimator.h"
#include "stats/synopsis.h"

namespace coradd {

/// Where Strength() answers come from once mined dependencies are installed.
enum class CorrelationSource {
  kSynopsis,    ///< AE over the synopsis only (the seeded default).
  kMinedFirst,  ///< Mined evidence when available; AE fallback (cross-check).
  kMinedOnly,   ///< Mined evidence only; unknown sets report strength 0.
};

/// Caches distinct-count estimates and correlation strengths for attribute
/// sets of one universe.
class CorrelationCatalog {
 public:
  /// `universe` and `synopsis` must outlive the catalog. If `exact` is true,
  /// distinct counts are computed by full scans (tests / tiny data).
  CorrelationCatalog(const Universe* universe, const Synopsis* synopsis,
                     bool exact = false);

  /// Installs `mined` (which must outlive the catalog) as the strength
  /// source. `mined_col_of_ucol[ucol]` maps universe columns onto the mined
  /// report's column indexes (-1 where the report lacks the column).
  void SetMinedDependencies(const DiscoveredDependencies* mined,
                            std::vector<int> mined_col_of_ucol,
                            CorrelationSource source);

  const DiscoveredDependencies* mined() const { return mined_; }
  CorrelationSource source() const { return source_; }

  /// Mined strength of from -> to, or negative when no report is installed,
  /// the mined lattice has no evidence, or a column does not map. Never
  /// falls back to the synopsis — use Strength() for the policy-driven view.
  double MinedStrength(const std::vector<int>& from,
                       const std::vector<int>& to) const;

  /// Estimated number of distinct joint values of `ucols` in the full data.
  double Distinct(const std::vector<int>& ucols) const;

  /// strength(from -> to) in (0, 1]: |from| / |from ∪ to|.
  double Strength(const std::vector<int>& from,
                  const std::vector<int>& to) const;

  /// Convenience single-attribute strength.
  double Strength(int from, int to) const {
    return Strength(std::vector<int>{from}, std::vector<int>{to});
  }

  bool exact() const { return exact_; }

 private:
  std::vector<int> NormalizedUnion(const std::vector<int>& a,
                                   const std::vector<int>& b) const;

  const Universe* universe_;
  const Synopsis* synopsis_;
  bool exact_;
  const DiscoveredDependencies* mined_ = nullptr;
  std::vector<int> mined_col_of_ucol_;
  CorrelationSource source_ = CorrelationSource::kSynopsis;
  /// Guards distinct_cache_: the parallel evaluator calls Strength() from
  /// many execution threads against one shared catalog.
  mutable std::mutex mu_;
  mutable std::map<std::vector<int>, double> distinct_cache_;
};

}  // namespace coradd
