#include "stats/synopsis.h"

#include <algorithm>

#include <unordered_set>

#include "common/hash.h"

namespace coradd {

Synopsis Synopsis::Build(const Universe& universe, size_t sample_rows,
                         uint64_t seed) {
  Synopsis s;
  s.total_rows_ = universe.NumRows();
  const size_t n = std::min<size_t>(sample_rows, universe.NumRows());

  // Floyd's algorithm for a uniform sample without replacement.
  Rng rng(seed);
  std::vector<RowId> chosen;
  chosen.reserve(n);
  {
    std::unordered_set<uint64_t> in_sample;
    const uint64_t total = universe.NumRows();
    for (uint64_t j = total - n; j < total; ++j) {
      const uint64_t t = rng.Uniform(j + 1);
      if (in_sample.insert(t).second) {
        chosen.push_back(static_cast<RowId>(t));
      } else {
        in_sample.insert(j);
        chosen.push_back(static_cast<RowId>(j));
      }
    }
  }
  std::sort(chosen.begin(), chosen.end());

  s.values_.resize(universe.NumColumns());
  for (size_t c = 0; c < universe.NumColumns(); ++c) {
    auto& col = s.values_[c];
    col.reserve(n);
    for (RowId r : chosen) col.push_back(universe.Value(r, static_cast<int>(c)));
  }
  return s;
}

std::vector<uint64_t> Synopsis::CompositeHashes(
    const std::vector<int>& ucols) const {
  const size_t n = sample_rows();
  std::vector<uint64_t> hashes(n, 0x9d0f00d5ULL);
  for (int c : ucols) {
    const auto& col = values_[static_cast<size_t>(c)];
    for (size_t i = 0; i < n; ++i) {
      hashes[i] = HashCombine(hashes[i], static_cast<uint64_t>(col[i]));
    }
  }
  return hashes;
}

}  // namespace coradd
