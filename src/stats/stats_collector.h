// One-stop statistics container per universe (fact table ⋈ dimensions),
// gathered with a single scan at startup exactly as listed in A-2.2:
//   1. cardinality of each attribute,
//   2. functional-dependency strengths (via CorrelationCatalog, lazily),
//   3. selectivities of workload predicates (via per-column histograms),
//   4. table synopses of random samples (for AE on hypothetical designs).
#pragma once

#include <memory>
#include <vector>

#include "catalog/universe.h"
#include "stats/correlation.h"
#include "stats/histogram.h"
#include "stats/synopsis.h"
#include "storage/disk_model.h"

namespace coradd {

/// Knobs for statistics collection.
struct StatsOptions {
  size_t sample_rows = 8192;
  size_t histogram_buckets = 256;
  uint64_t seed = 42;
  /// Compute distinct counts exactly (full scans) instead of via AE. Slower;
  /// intended for tests and small data.
  bool exact_distinct = false;
  DiskParams disk;
};

/// Statistics for one universe. Owns histograms, the synopsis, and the
/// correlation catalog; holds a non-owning pointer to the universe.
class UniverseStats {
 public:
  UniverseStats(const Universe* universe, const StatsOptions& options);

  const Universe& universe() const { return *universe_; }
  const StatsOptions& options() const { return options_; }
  uint64_t num_rows() const { return universe_->NumRows(); }

  const Histogram& ColumnHistogram(int ucol) const {
    return histograms_[static_cast<size_t>(ucol)];
  }
  const Synopsis& synopsis() const { return synopsis_; }
  const CorrelationCatalog& correlations() const { return *correlations_; }

  /// Installs a mined dependency report (which must outlive the stats) as
  /// the correlation catalog's strength source, mapping its columns onto
  /// universe columns by name. Pass nullptr to revert to the synopsis.
  void InstallMinedDependencies(const DiscoveredDependencies* mined,
                                CorrelationSource source);

  /// The installed mined report, or nullptr.
  const DiscoveredDependencies* mined() const {
    return correlations_->mined();
  }

  /// Estimated distinct count of one column (from its histogram's exact
  /// build-time count — per-column cardinality is statistic #1).
  double ColumnDistinct(int ucol) const {
    return static_cast<double>(
        histograms_[static_cast<size_t>(ucol)].distinct_estimate());
  }

  /// Estimated distinct count of a composite (AE over synopsis, or exact).
  double CompositeDistinct(const std::vector<int>& ucols) const {
    return correlations_->Distinct(ucols);
  }

 private:
  const Universe* universe_;
  StatsOptions options_;
  std::vector<Histogram> histograms_;
  Synopsis synopsis_;
  std::unique_ptr<CorrelationCatalog> correlations_;
};

}  // namespace coradd
