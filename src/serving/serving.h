// Long-running concurrent query-serving engine over an installed design
// (ROADMAP item 1, docs/SERVING.md). Client sessions Submit() workload
// queries concurrently; a single dispatcher thread drains the admission
// queue in epochs, groups admitted queries whose selected plans scan the
// same row ranges of the same materialized object into one cooperative
// shared-scan pass (serving/shared_scan.h), runs singletons solo over the
// normal QueryExecutor plan path, and interleaves MV-maintenance insert
// batches (exec/maintenance.h) as exclusive writer epochs between read
// epochs. Within a group, tickets for the SAME workload query collapse to
// one unit of work (lookalike dedup): the first occurrence is executed and
// every duplicate receives the bit-identical result — on skewed
// ("lookalike-heavy") streams this, plus the shared gather of provenance
// columns, is where the batching throughput win comes from.
//
// Admission protocol: Submit blocks while admission_capacity tickets are
// queued (backpressure), then enqueues a ticket and returns a future.
// SubmitBatch admits a whole stream slice atomically, so the dispatcher
// sees it as one unit — with a fixed admission order this makes epoch
// composition (and therefore the shared/solo counters) reproducible.
// Results are delivered exactly once through the ticket's promise.
//
// Determinism contract: per-query aggregates and row counts are
// bit-identical to solo QueryExecutor runs at ANY thread count and under
// any epoch slicing, because the shared pass replicates the solo
// decomposition exactly; simulated per-query seconds are charged to a cold
// per-query DiskModel exactly as the evaluator does (§7). The
// `deterministic` option additionally executes epoch units sequentially in
// formation order so traces and counters are reproducible too.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/context.h"
#include "core/design.h"
#include "exec/executor.h"
#include "exec/maintenance.h"

namespace coradd::serving {

/// Engine knobs.
struct ServingOptions {
  /// Tickets the admission queue holds before Submit blocks (backpressure).
  size_t admission_capacity = 256;
  /// Max query tickets drained into one read epoch; 0 = auto (4x the pool's
  /// participant capacity — enough to form groups without starving tail
  /// latency).
  size_t max_epoch_tickets = 0;
  /// Group same-scan queries into cooperative passes; false = every ticket
  /// executes solo (the A/B surface bench_serving measures).
  bool shared_scan = true;
  /// Execute epoch units sequentially in formation order (reproducible
  /// counters/traces; results are bit-identical either way).
  bool deterministic = false;
  /// Shared buffer pool capacity in pages; 0 = pooled serving off (cold
  /// per-query billing, bit-identical to PR 9 behaviour). When on, the
  /// engine owns a SharedBufferPool: reads bill only pool misses, shared
  /// passes touch each page once per group, and maintenance writer epochs
  /// mirror their dirtied pages into it. Aggregates/row counts are
  /// unaffected either way — pooling changes costs, never results.
  uint64_t pool_pages = 0;
  /// Alternative sizing when pool_pages == 0: capacity as a fraction of the
  /// workload's working set (distinct plan pages, WorkingSetPages()).
  /// 0 = off.
  double pool_fraction = 0.0;
  /// Shards of the engine's pool; 0 = auto (see BufferPoolOptions).
  size_t pool_shards = 0;
  ExecOptions exec;
};

/// One served query's outcome, delivered through the Submit future.
struct TicketResult {
  std::string query_id;
  double aggregate = 0.0;
  uint64_t rows_output = 0;
  /// Simulated cold-cache runtime (identical to a solo run).
  double simulated_seconds = 0.0;
  uint64_t pages_read = 0;
  AccessPath path = AccessPath::kFullScan;
  /// True when served by a shared-scan group of >= 2 members.
  bool shared = false;
  /// Pages served from the engine's shared pool (0 when pooling is off).
  uint64_t pool_hits = 0;
  uint64_t epoch = 0;
  /// Wall-clock submit -> completion (queueing + execution).
  double latency_seconds = 0.0;
};

/// Engine counter snapshot (monotone; readable at any time).
struct ServingStats {
  uint64_t admitted = 0;
  uint64_t completed = 0;
  uint64_t shared_executed = 0;  ///< tickets served via a shared pass
  uint64_t solo_executed = 0;    ///< tickets served solo
  uint64_t groups = 0;           ///< shared passes run (>= 2 members each)
  /// Tickets answered from a group-mate's identical computation: a group
  /// member whose query index duplicates an earlier member's is not
  /// re-executed — it receives the representative's (bit-identical) result.
  uint64_t lookalike_hits = 0;
  uint64_t epochs = 0;           ///< read epochs drained
  uint64_t maintenance_batches = 0;
  uint64_t maintenance_inserts = 0;
  size_t queue_depth_high_water = 0;
  /// Shared-pool counters (all zero when pooling is off).
  BufferPoolStats pool;
};

/// Concurrent query-serving engine over one installed design.
class ServingEngine {
 public:
  /// Materializes every object the design routes workload queries to (one
  /// slot per structurally distinct object, like the evaluator). All
  /// pointer arguments must outlive the engine.
  ServingEngine(const DesignContext* context, const DatabaseDesign* design,
                const Workload* workload, const CostModel* planner,
                ServingOptions options = {});
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Spawns the dispatcher. Idempotent.
  void Start();
  /// Drains every admitted ticket, then joins the dispatcher. Idempotent.
  void Stop();

  /// Admits workload query `query_index`; blocks while the queue is full.
  std::future<TicketResult> Submit(size_t query_index);

  /// Admits a slice of queries atomically (one lock hold), so the
  /// dispatcher can never split it across epochs it formed before the call.
  /// Blocks until the queue has room for the whole batch.
  std::vector<std::future<TicketResult>> SubmitBatch(
      const std::vector<size_t>& query_indices);

  /// Installs the maintenance simulation the engine interleaves with reads.
  /// `options.num_inserts` is ignored; SubmitMaintenance drives the count.
  void ConfigureMaintenance(std::vector<MaintainedObject> objects,
                            const MaintenanceOptions& options);

  /// Admits an insert batch. It executes as an exclusive writer epoch:
  /// every read admitted before it completes first, reads admitted after it
  /// wait. The future resolves to the cumulative maintenance totals after
  /// the batch.
  std::future<MaintenanceResult> SubmitMaintenance(uint64_t inserts);

  /// Admits a final flush (write back resident dirty pages) and returns the
  /// cumulative totals — the Figure 14 end-of-experiment cost.
  MaintenanceResult FinishMaintenance();

  ServingStats stats() const;

  /// Reference solo execution of workload query `query_index` on its routed
  /// object with this engine's ExecOptions, a cold DiskModel, and NO pool —
  /// what the bit-identity tests compare served results against. Never
  /// touches (or warms) the engine's shared pool.
  QueryRunResult RunSolo(size_t query_index) const;

  /// Distinct (object, page) pairs the workload's selected plans touch —
  /// the working set pooled sizing is quoted against (pool_fraction, the
  /// bench's hit-rate-vs-pool-size sweep).
  uint64_t WorkingSetPages() const;

  /// The engine's shared page pool; nullptr when pooling is off.
  SharedBufferPool* page_pool() { return page_pool_.get(); }
  const SharedBufferPool* page_pool() const { return page_pool_.get(); }
  /// Disk the pool charges dirty write-backs to (pooling must be on).
  const DiskModel& pool_disk() const {
    CORADD_CHECK(pool_disk_ != nullptr);
    return *pool_disk_;
  }

  const MaterializedObject& ObjectForQuery(size_t query_index) const;
  const ServingOptions& options() const { return options_; }

  /// MaintainedObject list derived from this engine's materialized slots:
  /// heap pages from the clustered table, index pages from the secondary
  /// structures, append-only for the base design (arrival-order heap).
  std::vector<MaintainedObject> DerivedMaintainedObjects() const;

 private:
  struct Ticket {
    enum class Kind { kQuery, kMaintenance, kMaintenanceFlush };
    Kind kind = Kind::kQuery;
    size_t query_index = 0;
    uint64_t inserts = 0;
    std::chrono::steady_clock::time_point submit_time;
    std::promise<TicketResult> promise;
    std::promise<MaintenanceResult> maint_promise;
  };

  void DispatcherLoop();
  /// Runs one read epoch: plan, group, execute, deliver.
  void ExecuteEpoch(std::vector<std::unique_ptr<Ticket>> tickets);
  /// Runs one writer epoch (exclusive): applies or flushes an insert batch.
  void ExecuteMaintenance(Ticket* ticket);
  size_t EpochCap() const;

  const DesignContext* context_;
  const DatabaseDesign* design_;
  const Workload* workload_;
  const CostModel* planner_;
  ServingOptions options_;
  QueryExecutor executor_;
  DiskParams disk_params_;
  ThreadPool* pool_;

  /// Distinct materialized objects, and the slot each workload query routes
  /// to. Read-only after construction.
  std::vector<std::shared_ptr<MaterializedObject>> slots_;
  std::vector<size_t> slot_of_query_;

  /// Shared page pool + the disk its dirty write-backs are charged to
  /// (pool_pages/pool_fraction > 0 only). Created in the constructor body
  /// after the slots exist (sizing needs the materialized working set),
  /// then attached to executor_ via SetPagePool.
  std::unique_ptr<DiskModel> pool_disk_;
  std::unique_ptr<SharedBufferPool> page_pool_;

  std::mutex mu_;
  std::condition_variable cv_work_;   ///< dispatcher: queue non-empty / stop
  std::condition_variable cv_space_;  ///< submitters: queue has room
  std::deque<std::unique_ptr<Ticket>> queue_;
  bool stop_ = false;
  bool running_ = false;
  std::thread dispatcher_;

  /// Maintenance state, touched only by the dispatcher thread after
  /// ConfigureMaintenance (which requires a quiesced engine).
  std::unique_ptr<InsertionSimulator> maintenance_;

  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> shared_executed_{0};
  std::atomic<uint64_t> solo_executed_{0};
  std::atomic<uint64_t> groups_{0};
  std::atomic<uint64_t> lookalike_hits_{0};
  std::atomic<uint64_t> epochs_{0};
  std::atomic<uint64_t> maintenance_batches_{0};
  std::atomic<uint64_t> maintenance_inserts_{0};
  std::atomic<size_t> queue_hwm_{0};
};

}  // namespace coradd::serving
