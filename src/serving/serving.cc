#include "serving/serving.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/string_util.h"
#include "exec/materialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serving/shared_scan.h"

namespace coradd::serving {

namespace {

/// Structural object identity, mirroring the evaluator's signature so two
/// queries routed to structurally identical objects share one slot.
std::string ObjectSignature(const DesignedObject& obj) {
  std::string s = obj.spec.fact_table + "|" + Join(obj.spec.columns, ",") +
                  "|" + Join(obj.spec.clustered_key, ",") + "|";
  s += obj.spec.is_base ? "B" : (obj.spec.is_fact_recluster ? "R" : "M");
  for (const auto& cm : obj.cms) {
    s += "|cm:" + Join(cm.key_columns, ",") +
         StrFormat("/w%lld/p%u",
                   static_cast<long long>(cm.bucketing.key_bucket_width),
                   cm.bucketing.clustered_bucket_pages);
  }
  for (const auto& b : obj.btree_columns) s += "|bt:" + b;
  return s;
}

/// Scan-sharing key: queries whose plans aggregate identical row ranges of
/// the same slot read identical batches, so their shared-pass results are
/// bit-identical to solo runs (the grouping precondition).
std::string GroupKey(size_t slot, const ScanPlan& plan) {
  std::string key;
  key.reserve(16 + plan.ranges.size() * 16);
  key.append(reinterpret_cast<const char*>(&slot), sizeof(slot));
  for (const RowRange& r : plan.ranges) {
    key.append(reinterpret_cast<const char*>(&r.begin), sizeof(r.begin));
    key.append(reinterpret_cast<const char*>(&r.end), sizeof(r.end));
  }
  return key;
}

struct ServingMetrics {
  obs::Counter* admitted;
  obs::Counter* completed;
  obs::Counter* shared;
  obs::Counter* solo;
  obs::Counter* groups;
  obs::Counter* lookalike_hits;
  obs::Counter* epochs;
  obs::Counter* maintenance_batches;
  obs::Counter* maintenance_inserts;
  obs::Gauge* queue_depth;
  obs::Histogram* latency_micros;

  static ServingMetrics& Get() {
    static ServingMetrics m = [] {
      auto& r = obs::MetricsRegistry::Global();
      ServingMetrics out;
      out.admitted = r.GetCounter("serving.admitted");
      out.completed = r.GetCounter("serving.completed");
      out.shared = r.GetCounter("serving.shared");
      out.solo = r.GetCounter("serving.solo");
      out.groups = r.GetCounter("serving.groups");
      out.lookalike_hits = r.GetCounter("serving.lookalike_hits");
      out.epochs = r.GetCounter("serving.epochs");
      out.maintenance_batches = r.GetCounter("serving.maintenance_batches");
      out.maintenance_inserts = r.GetCounter("serving.maintenance_inserts");
      out.queue_depth = r.GetGauge("serving.queue_depth");
      out.latency_micros = r.GetHistogram("serving.latency_micros");
      return out;
    }();
    return m;
  }
};

}  // namespace

ServingEngine::ServingEngine(const DesignContext* context,
                             const DatabaseDesign* design,
                             const Workload* workload,
                             const CostModel* planner, ServingOptions options)
    : context_(context),
      design_(design),
      workload_(workload),
      planner_(planner),
      options_(options),
      executor_(&context->registry(), planner, options.exec),
      disk_params_(context->stats_options().disk),
      pool_(options.exec.pool != nullptr ? options.exec.pool
                                         : &ThreadPool::Shared()) {
  CORADD_CHECK(design_ != nullptr && workload_ != nullptr);
  TRACE_SPAN("serving.materialize_design");

  // One slot per structurally distinct routed object, in first-appearance
  // order (deterministic), materialized concurrently.
  const size_t nq = workload_->queries.size();
  CORADD_CHECK(design_->object_for_query.size() >= nq);
  std::unordered_map<std::string, size_t> slot_of_sig;
  std::vector<const DesignedObject*> slot_dobj;
  slot_of_query_.resize(nq);
  for (size_t qi = 0; qi < nq; ++qi) {
    const int oi = design_->object_for_query[qi];
    CORADD_CHECK(oi >= 0 &&
                 static_cast<size_t>(oi) < design_->objects.size());
    const DesignedObject& dobj =
        design_->objects[static_cast<size_t>(oi)];
    const std::string sig = ObjectSignature(dobj);
    auto [it, inserted] = slot_of_sig.emplace(sig, slot_dobj.size());
    if (inserted) slot_dobj.push_back(&dobj);
    slot_of_query_[qi] = it->second;
  }
  slots_.resize(slot_dobj.size());
  const auto materialize = [&](size_t i) {
    const DesignedObject& dobj = *slot_dobj[i];
    const Universe* universe = context_->UniverseForFact(dobj.spec.fact_table);
    CORADD_CHECK(universe != nullptr);
    Materializer materializer(universe, context_->stats_options().disk);
    slots_[i] = materializer.Materialize(dobj.spec, dobj.cms,
                                         dobj.btree_columns);
  };
  if (slots_.size() > 1 && pool_->num_threads() > 1) {
    pool_->ParallelFor(slots_.size(), materialize);
  } else {
    for (size_t i = 0; i < slots_.size(); ++i) materialize(i);
  }

  // Pool identities: slot + 1, matching the maintenance simulator's 1-based
  // object ids, so writer-epoch dirty pages land on exactly the PageKeys
  // the scans read through.
  for (size_t i = 0; i < slots_.size(); ++i) {
    slots_[i]->pool_object_id = static_cast<uint32_t>(i) + 1;
  }

  uint64_t pool_pages = options_.pool_pages;
  if (pool_pages == 0 && options_.pool_fraction > 0.0) {
    pool_pages = std::max<uint64_t>(
        1, static_cast<uint64_t>(options_.pool_fraction *
                                 static_cast<double>(WorkingSetPages())));
  }
  if (pool_pages > 0) {
    pool_disk_ = std::make_unique<DiskModel>(disk_params_);
    BufferPoolOptions bp;
    bp.capacity_pages = pool_pages;
    bp.num_shards = options_.pool_shards;
    bp.name = "serving";
    page_pool_ = std::make_unique<SharedBufferPool>(bp, pool_disk_.get());
    executor_.SetPagePool(page_pool_.get());
    // Shared passes receive options_.exec directly — keep it in sync.
    options_.exec.page_pool = page_pool_.get();
  }
}

ServingEngine::~ServingEngine() { Stop(); }

void ServingEngine::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

void ServingEngine::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_work_.notify_all();
  cv_space_.notify_all();
  dispatcher_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

size_t ServingEngine::EpochCap() const {
  if (options_.max_epoch_tickets > 0) return options_.max_epoch_tickets;
  return 4 * pool_->participant_capacity();
}

std::future<TicketResult> ServingEngine::Submit(size_t query_index) {
  std::vector<std::future<TicketResult>> futures =
      SubmitBatch({query_index});
  return std::move(futures[0]);
}

std::vector<std::future<TicketResult>> ServingEngine::SubmitBatch(
    const std::vector<size_t>& query_indices) {
  CORADD_CHECK(query_indices.size() <= options_.admission_capacity);
  std::vector<std::future<TicketResult>> futures;
  futures.reserve(query_indices.size());
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_space_.wait(lock, [&] {
      return stop_ ||
             queue_.size() + query_indices.size() <=
                 options_.admission_capacity;
    });
    CORADD_CHECK(!stop_);  // submitting past Stop() is a caller bug
    for (size_t qi : query_indices) {
      CORADD_CHECK(qi < workload_->queries.size());
      auto t = std::make_unique<Ticket>();
      t->kind = Ticket::Kind::kQuery;
      t->query_index = qi;
      t->submit_time = std::chrono::steady_clock::now();
      futures.push_back(t->promise.get_future());
      queue_.push_back(std::move(t));
    }
    const size_t depth = queue_.size();
    if (depth > queue_hwm_.load(std::memory_order_relaxed)) {
      queue_hwm_.store(depth, std::memory_order_relaxed);
    }
    ServingMetrics::Get().queue_depth->Set(static_cast<int64_t>(depth));
  }
  admitted_.fetch_add(query_indices.size(), std::memory_order_relaxed);
  ServingMetrics::Get().admitted->Add(query_indices.size());
  cv_work_.notify_one();
  return futures;
}

void ServingEngine::ConfigureMaintenance(
    std::vector<MaintainedObject> objects,
    const MaintenanceOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  maintenance_ =
      std::make_unique<InsertionSimulator>(std::move(objects), options);
  // Writer epochs dirty the shared pool's pages too (mirror writes never
  // touch the simulator's own pool/disk/RNG, so the isolated-cost ratio
  // stays exactly 1.000).
  if (page_pool_ != nullptr) maintenance_->SetMirrorPool(page_pool_.get());
}

std::future<MaintenanceResult> ServingEngine::SubmitMaintenance(
    uint64_t inserts) {
  std::future<MaintenanceResult> future;
  {
    std::unique_lock<std::mutex> lock(mu_);
    CORADD_CHECK(maintenance_ != nullptr);
    cv_space_.wait(lock, [&] {
      return stop_ || queue_.size() < options_.admission_capacity;
    });
    CORADD_CHECK(!stop_);
    auto t = std::make_unique<Ticket>();
    t->kind = Ticket::Kind::kMaintenance;
    t->inserts = inserts;
    t->submit_time = std::chrono::steady_clock::now();
    future = t->maint_promise.get_future();
    queue_.push_back(std::move(t));
  }
  cv_work_.notify_one();
  return future;
}

MaintenanceResult ServingEngine::FinishMaintenance() {
  std::future<MaintenanceResult> future;
  {
    std::unique_lock<std::mutex> lock(mu_);
    CORADD_CHECK(maintenance_ != nullptr);
    cv_space_.wait(lock, [&] {
      return stop_ || queue_.size() < options_.admission_capacity;
    });
    CORADD_CHECK(!stop_);
    auto t = std::make_unique<Ticket>();
    t->kind = Ticket::Kind::kMaintenanceFlush;
    t->submit_time = std::chrono::steady_clock::now();
    future = t->maint_promise.get_future();
    queue_.push_back(std::move(t));
  }
  cv_work_.notify_one();
  return future.get();
}

void ServingEngine::DispatcherLoop() {
  obs::Tracer::SetCurrentThreadName("serving-dispatcher");
  for (;;) {
    std::vector<std::unique_ptr<Ticket>> batch;
    std::unique_ptr<Ticket> writer;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ && drained
      // Drain query tickets up to the epoch cap, stopping at a maintenance
      // ticket — the readers/writer epoch boundary. A writer at the front
      // runs alone (exclusive epoch).
      const size_t cap = EpochCap();
      while (!queue_.empty()) {
        if (queue_.front()->kind != Ticket::Kind::kQuery) {
          if (batch.empty()) {
            writer = std::move(queue_.front());
            queue_.pop_front();
          }
          break;
        }
        if (cap > 0 && batch.size() >= cap) break;
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      ServingMetrics::Get().queue_depth->Set(
          static_cast<int64_t>(queue_.size()));
    }
    cv_space_.notify_all();
    if (writer != nullptr) {
      ExecuteMaintenance(writer.get());
    } else if (!batch.empty()) {
      ExecuteEpoch(std::move(batch));
    }
  }
}

void ServingEngine::ExecuteEpoch(std::vector<std::unique_ptr<Ticket>> tickets) {
  TRACE_SPAN("serving.epoch",
             {{"tickets", static_cast<int64_t>(tickets.size())}});
  const uint64_t epoch =
      epochs_.fetch_add(1, std::memory_order_relaxed) + 1;
  ServingMetrics::Get().epochs->Add(1);

  // --- Plan every ticket (deterministic; depends only on query + object).
  const size_t n = tickets.size();
  std::vector<ScanPlan> plans(n);
  for (size_t i = 0; i < n; ++i) {
    const Query& q = workload_->queries[tickets[i]->query_index];
    const MaterializedObject& obj =
        *slots_[slot_of_query_[tickets[i]->query_index]];
    plans[i] = executor_.SelectPlan(q, obj, disk_params_);
  }

  // --- Group by (slot, ranges) in admission order. Non-range plans and
  // batching-off mode stay solo.
  struct Unit {
    size_t slot = 0;
    std::vector<size_t> members;  ///< ticket indexes, admission order
  };
  std::vector<Unit> units;
  std::unordered_map<std::string, size_t> unit_of_key;
  for (size_t i = 0; i < n; ++i) {
    const size_t slot = slot_of_query_[tickets[i]->query_index];
    if (options_.shared_scan && plans[i].range_based()) {
      const std::string key = GroupKey(slot, plans[i]);
      auto [it, inserted] = unit_of_key.emplace(key, units.size());
      if (inserted) units.push_back(Unit{slot, {}});
      units[it->second].members.push_back(i);
    } else {
      units.push_back(Unit{slot, {i}});
    }
  }
  uint64_t num_groups = 0;
  for (const Unit& u : units) {
    if (u.members.size() >= 2) ++num_groups;
  }
  groups_.fetch_add(num_groups, std::memory_order_relaxed);
  ServingMetrics::Get().groups->Add(num_groups);

  // --- Execute units (concurrently unless deterministic mode) and deliver
  // each ticket's result exactly once through its promise.
  const auto deliver = [&](Ticket* t, const QueryRunResult& r, bool shared) {
    TicketResult out;
    out.query_id = workload_->queries[t->query_index].id;
    out.aggregate = r.aggregate;
    out.rows_output = r.rows_output;
    out.simulated_seconds = r.seconds;
    out.pages_read = r.pages_read;
    out.path = r.path;
    out.shared = shared;
    out.pool_hits = r.pool_hits;
    out.epoch = epoch;
    out.latency_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t->submit_time)
            .count();
    ServingMetrics::Get().latency_micros->Observe(
        static_cast<uint64_t>(out.latency_seconds * 1e6));
    t->promise.set_value(std::move(out));
    completed_.fetch_add(1, std::memory_order_relaxed);
    ServingMetrics::Get().completed->Add(1);
  };
  const auto run_unit = [&](size_t u) {
    const Unit& unit = units[u];
    const MaterializedObject& obj = *slots_[unit.slot];
    if (unit.members.size() == 1) {
      const size_t i = unit.members[0];
      Ticket* t = tickets[i].get();
      const Query& q = workload_->queries[t->query_index];
      DiskModel disk(disk_params_);  // cold per query (§7)
      const QueryRunResult r = executor_.RunPlan(q, obj, plans[i], &disk);
      solo_executed_.fetch_add(1, std::memory_order_relaxed);
      ServingMetrics::Get().solo->Add(1);
      deliver(t, r, false);
      return;
    }
    // Lookalike dedup: members with the same query index are the same
    // computation — execute the first occurrence (admission order) and fan
    // its bit-identical result out to the duplicates.
    std::vector<size_t> reps;  ///< ticket index of each distinct query
    std::vector<size_t> rep_of(unit.members.size());
    std::unordered_map<size_t, size_t> rep_of_query;
    for (size_t m = 0; m < unit.members.size(); ++m) {
      const size_t i = unit.members[m];
      auto [it, inserted] =
          rep_of_query.emplace(tickets[i]->query_index, reps.size());
      if (inserted) reps.push_back(i);
      rep_of[m] = it->second;
    }
    std::vector<SharedMember> members(reps.size());
    for (size_t m = 0; m < reps.size(); ++m) {
      members[m].query = &workload_->queries[tickets[reps[m]]->query_index];
      members[m].plan = &plans[reps[m]];
    }
    RunSharedScan(obj, disk_params_, options_.exec, &members);
    const uint64_t hits = unit.members.size() - reps.size();
    if (hits > 0) {
      lookalike_hits_.fetch_add(hits, std::memory_order_relaxed);
      ServingMetrics::Get().lookalike_hits->Add(hits);
    }
    shared_executed_.fetch_add(unit.members.size(),
                               std::memory_order_relaxed);
    ServingMetrics::Get().shared->Add(unit.members.size());
    for (size_t m = 0; m < unit.members.size(); ++m) {
      deliver(tickets[unit.members[m]].get(), members[rep_of[m]].result,
              true);
    }
  };
  if (!options_.deterministic && units.size() > 1 &&
      pool_->num_threads() > 1) {
    pool_->ParallelFor(units.size(), run_unit);
  } else {
    for (size_t u = 0; u < units.size(); ++u) run_unit(u);
  }
}

void ServingEngine::ExecuteMaintenance(Ticket* ticket) {
  TRACE_SPAN("serving.maintenance",
             {{"inserts", static_cast<int64_t>(ticket->inserts)}});
  InsertionSimulator* sim = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sim = maintenance_.get();
  }
  CORADD_CHECK(sim != nullptr);
  if (ticket->kind == Ticket::Kind::kMaintenance) {
    sim->ApplyInserts(ticket->inserts);
    maintenance_batches_.fetch_add(1, std::memory_order_relaxed);
    maintenance_inserts_.fetch_add(ticket->inserts,
                                   std::memory_order_relaxed);
    ServingMetrics::Get().maintenance_batches->Add(1);
    ServingMetrics::Get().maintenance_inserts->Add(ticket->inserts);
  } else {
    sim->Flush();
  }
  ticket->maint_promise.set_value(sim->Totals());
}

ServingStats ServingEngine::stats() const {
  ServingStats out;
  out.admitted = admitted_.load(std::memory_order_relaxed);
  out.completed = completed_.load(std::memory_order_relaxed);
  out.shared_executed = shared_executed_.load(std::memory_order_relaxed);
  out.solo_executed = solo_executed_.load(std::memory_order_relaxed);
  out.groups = groups_.load(std::memory_order_relaxed);
  out.lookalike_hits = lookalike_hits_.load(std::memory_order_relaxed);
  out.epochs = epochs_.load(std::memory_order_relaxed);
  out.maintenance_batches =
      maintenance_batches_.load(std::memory_order_relaxed);
  out.maintenance_inserts =
      maintenance_inserts_.load(std::memory_order_relaxed);
  out.queue_depth_high_water = queue_hwm_.load(std::memory_order_relaxed);
  if (page_pool_ != nullptr) out.pool = page_pool_->stats();
  return out;
}

QueryRunResult ServingEngine::RunSolo(size_t query_index) const {
  CORADD_CHECK(query_index < workload_->queries.size());
  const Query& q = workload_->queries[query_index];
  const MaterializedObject& obj = *slots_[slot_of_query_[query_index]];
  // Reference runs must stay cold AND side-effect-free: a pooled run here
  // would both bill differently and warm the engine's pool.
  ExecOptions cold = options_.exec;
  cold.page_pool = nullptr;
  const QueryExecutor cold_executor(&context_->registry(), planner_, cold);
  DiskModel disk(disk_params_);
  return cold_executor.Run(q, obj, &disk);
}

uint64_t ServingEngine::WorkingSetPages() const {
  std::unordered_set<PageKey, PageKeyHash> pages;
  for (size_t qi = 0; qi < workload_->queries.size(); ++qi) {
    const size_t slot = slot_of_query_[qi];
    const MaterializedObject& obj = *slots_[slot];
    const uint32_t id = static_cast<uint32_t>(slot) + 1;
    const ScanPlan plan =
        executor_.SelectPlan(workload_->queries[qi], obj, disk_params_);
    for (const PageRun& run : plan.io_runs) {
      for (uint64_t p = run.first_page; p <= run.last_page; ++p) {
        pages.insert(PageKey{id, p});
      }
    }
    if (plan.kind == ScanPlan::Kind::kBTree && plan.index_leaf_pages > 0) {
      for (uint64_t j = 0; j < plan.index_leaf_pages; ++j) {
        pages.insert(
            PageKey{id | kIndexPageObjectFlag, plan.index_leaf_first + j});
      }
    }
  }
  return pages.size();
}

const MaterializedObject& ServingEngine::ObjectForQuery(
    size_t query_index) const {
  CORADD_CHECK(query_index < workload_->queries.size());
  return *slots_[slot_of_query_[query_index]];
}

std::vector<MaintainedObject> ServingEngine::DerivedMaintainedObjects()
    const {
  std::vector<MaintainedObject> out;
  out.reserve(slots_.size());
  for (const auto& slot : slots_) {
    MaintainedObject mo;
    mo.heap_pages = slot->table->NumPages();
    const uint32_t page_size = slot->table->layout().page_size_bytes;
    const uint64_t secondary_bytes = slot->btree_bytes + slot->cm_bytes;
    mo.index_pages = (secondary_bytes + page_size - 1) / page_size;
    mo.append_only = slot->spec.is_base;
    out.push_back(mo);
  }
  return out;
}

}  // namespace coradd::serving
