#include "serving/client_driver.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>

#include "common/rng.h"
#include "common/status.h"

namespace coradd::serving {

namespace {

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(q * (sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

ServingRunStats RunClients(ServingEngine* engine,
                           const std::vector<std::vector<size_t>>& streams,
                           const ClientRunOptions& options) {
  CORADD_CHECK(engine != nullptr);
  ServingRunStats stats;
  std::mutex collect_mu;

  const auto client = [&](const std::vector<size_t>& stream) {
    std::vector<TicketResult> results;
    results.reserve(stream.size());
    if (options.mode == ArrivalMode::kClosedLoop) {
      for (size_t qi : stream) {
        results.push_back(engine->Submit(qi).get());
      }
    } else {
      std::vector<std::future<TicketResult>> futures;
      futures.reserve(stream.size());
      const auto t0 = std::chrono::steady_clock::now();
      const auto gap = std::chrono::duration<double>(options.think_seconds);
      for (size_t i = 0; i < stream.size(); ++i) {
        if (options.think_seconds > 0.0) {
          std::this_thread::sleep_until(
              t0 + std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(gap * i));
        }
        futures.push_back(engine->Submit(stream[i]));
      }
      for (auto& f : futures) results.push_back(f.get());
    }
    std::lock_guard<std::mutex> lock(collect_mu);
    for (const TicketResult& r : results) {
      stats.latencies.push_back(r.latency_seconds);
      if (r.shared) {
        ++stats.shared;
      } else {
        ++stats.solo;
      }
    }
  };

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(streams.size());
  for (const auto& stream : streams) {
    threads.emplace_back(client, std::cref(stream));
  }
  for (auto& t : threads) t.join();
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  stats.completed = stats.latencies.size();
  if (stats.wall_seconds > 0.0) {
    stats.qps = static_cast<double>(stats.completed) / stats.wall_seconds;
  }
  std::vector<double> sorted = stats.latencies;
  std::sort(sorted.begin(), sorted.end());
  stats.p50_latency_seconds = Percentile(sorted, 0.50);
  stats.p95_latency_seconds = Percentile(sorted, 0.95);
  stats.p99_latency_seconds = Percentile(sorted, 0.99);
  return stats;
}

std::vector<size_t> MakeLookalikeStream(size_t num_queries, size_t length,
                                        uint64_t seed, double zipf_s) {
  CORADD_CHECK(num_queries > 0);
  Rng rng(seed);
  std::vector<size_t> stream;
  stream.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    stream.push_back(static_cast<size_t>(rng.Zipf(num_queries, zipf_s)));
  }
  return stream;
}

}  // namespace coradd::serving
