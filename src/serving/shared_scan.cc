#include "serving/shared_scan.h"

#include <algorithm>

#include "common/status.h"
#include "obs/trace.h"

namespace coradd::serving {

using exec::PartialAgg;
using exec::ResolvedQuery;

void RunSharedScan(const MaterializedObject& obj,
                   const DiskParams& disk_params, const ExecOptions& options,
                   std::vector<SharedMember>* members) {
  CORADD_CHECK(members != nullptr && !members->empty());
  const size_t num_members = members->size();
  const ScanPlan& plan0 = *(*members)[0].plan;
  CORADD_CHECK(plan0.range_based());
  TRACE_SPAN("serving.shared_scan",
             {{"members", static_cast<int64_t>(num_members)}});

  // --- Union column list: every member resolves against the object as the
  // solo executor would, then its column indexes are remapped into the
  // union so one ColumnBatch feeds every member's kernels. Same stored
  // values either way, so remapping never perturbs results.
  std::vector<ResolvedColumn> ucols;
  const auto intern = [&ucols](const ResolvedColumn& rc) -> size_t {
    for (size_t i = 0; i < ucols.size(); ++i) {
      if (ucols[i].ucol == rc.ucol) return i;
    }
    ucols.push_back(rc);
    return ucols.size() - 1;
  };
  std::vector<ResolvedQuery> mrq(num_members);
  for (size_t m = 0; m < num_members; ++m) {
    // The engine groups by serialized ranges, so members always agree; this
    // guards the API against a mis-grouped caller.
    CORADD_CHECK((*members)[m].plan->range_based() &&
                 (*members)[m].plan->ranges.size() == plan0.ranges.size());
    ResolvedQuery rq = exec::ResolveQuery(*(*members)[m].query, obj);
    std::vector<size_t> remap(rq.cols.size());
    for (size_t i = 0; i < rq.cols.size(); ++i) remap[i] = intern(rq.cols[i]);
    for (size_t j = 0; j < rq.pred_col.size(); ++j) {
      rq.pred_col[j] = remap[rq.pred_col[j]];
    }
    for (auto& agg : rq.aggs) {
      agg.col_a = static_cast<int>(remap[static_cast<size_t>(agg.col_a)]);
      if (agg.col_b >= 0) {
        agg.col_b = static_cast<int>(remap[static_cast<size_t>(agg.col_b)]);
      }
    }
    mrq[m] = std::move(rq);
  }
  bool all_stored = true;
  std::vector<int> stored_cols;
  for (const ResolvedColumn& c : ucols) {
    if (c.table_col < 0) {
      all_stored = false;
      stored_cols.clear();
      break;
    }
    stored_cols.push_back(c.table_col);
  }

  // --- Decompose exactly as the solo executor does: per range, fixed
  // partitions of partition_rows; tasks ordered range-major.
  const uint64_t pr = options.partition_rows;
  std::vector<RowRange> tasks;
  for (const RowRange& r : plan0.ranges) {
    if (r.Empty()) continue;
    const size_t num_parts = static_cast<size_t>((r.Size() + pr - 1) / pr);
    for (size_t p = 0; p < num_parts; ++p) {
      const uint64_t begin = r.begin + p * pr;
      const uint64_t end = std::min<uint64_t>(r.end, begin + pr);
      tasks.push_back(
          RowRange{static_cast<RowId>(begin), static_cast<RowId>(end)});
    }
  }

  // partials[m * num_tasks + t]: member m's partial for task t. Tasks write
  // disjoint slots; the merge walks them in (member, task) order.
  const size_t num_tasks = tasks.size();
  std::vector<PartialAgg> partials(num_members * num_tasks);

  const auto run_task = [&](size_t t) {
    TRACE_SPAN("serving.shared_partition",
               {{"rows", static_cast<int64_t>(tasks[t].Size())}});
    const RowRange part = tasks[t];
    for (size_t m = 0; m < num_members; ++m) {
      partials[m * num_tasks + t].acc.assign(mrq[m].aggs.size(), 0.0);
    }
    BatchScratch scratch;
    std::vector<uint32_t> sel(
        std::min<uint64_t>(options.batch_rows, part.Size()));
    ColumnBatch batch;
    for (uint64_t b = part.begin; b < part.end; b += options.batch_rows) {
      const RowId begin = static_cast<RowId>(b);
      const RowId end = static_cast<RowId>(
          std::min<uint64_t>(part.end, b + options.batch_rows));
      // The shared read: one ScanBatch (and one provenance gather for
      // unstored columns) feeds every member.
      if (all_stored) {
        obj.table->ScanBatch(RowRange{begin, end}, stored_cols, &batch);
      } else {
        ScanBatch(obj, RowRange{begin, end}, ucols, &scratch, &batch);
      }
      const size_t n = end - begin;
      for (size_t m = 0; m < num_members; ++m) {
        const ResolvedQuery& rq = mrq[m];
        const bool all_rows = rq.preds.empty();
        const size_t k = exec::FilterBatch(rq, batch, n, sel.data());
        if (k == 0) continue;
        exec::AccumulateBatch(batch, rq, sel.data(), k, all_rows,
                              &partials[m * num_tasks + t]);
      }
    }
  };
  ThreadPool* pool =
      options.pool != nullptr ? options.pool : &ThreadPool::Shared();
  if (num_tasks > 1 && pool->num_threads() > 1) {
    pool->ParallelFor(num_tasks, run_task);
  } else {
    for (size_t t = 0; t < num_tasks; ++t) run_task(t);
  }

  // --- I/O billing.
  // Pooled: the pass touches each page of the (shared) ranges ONCE through
  // the pool — billed to one DiskModel via plan0 (identical ranges mean
  // identical heap pages) — and every member reports that group cost, which
  // is what makes batching's I/O win visible in simulated seconds.
  // Cold (default): each member charges its own plan to its own cold
  // DiskModel, solo billing bit-for-bit.
  QueryRunResult pooled_io;
  if (options.page_pool != nullptr) {
    DiskModel disk(disk_params);
    QueryExecutor::ChargePlanIoPooled(plan0, obj, options.page_pool, &disk,
                                      &pooled_io);
    pooled_io.seconds = disk.elapsed_seconds();
  }

  // --- Per member: I/O cost + merge partials in task order (solo merge
  // order).
  for (size_t m = 0; m < num_members; ++m) {
    SharedMember& sm = (*members)[m];
    QueryRunResult out;
    out.path = sm.plan->path;
    if (options.page_pool != nullptr) {
      out.seconds = pooled_io.seconds;
      out.pages_read = pooled_io.pages_read;
      out.seeks = pooled_io.seeks;
      out.fragments = pooled_io.fragments;
      out.pool_hits = pooled_io.pool_hits;
    } else {
      DiskModel disk(disk_params);
      QueryExecutor::ChargePlanIo(*sm.plan, obj, &disk, &out);
      out.seconds = disk.elapsed_seconds();
      out.pages_read = disk.pages_read();
      out.seeks = disk.seeks();
    }
    for (size_t t = 0; t < num_tasks; ++t) {
      const PartialAgg& pa = partials[m * num_tasks + t];
      out.rows_output += pa.rows;
      for (double s : pa.acc) out.aggregate += s;
    }
    sm.result = out;
  }
}

}  // namespace coradd::serving
