// Client-session driver for the serving engine: spawns one thread per
// client stream, each submitting its queries to a started ServingEngine
// and collecting per-query latencies. Closed-loop clients wait for each
// result before submitting the next query; open-loop clients submit on a
// fixed-interval schedule regardless of completions (latency then includes
// queueing delay when the engine can't keep up).
#pragma once

#include <cstdint>
#include <vector>

#include "serving/serving.h"

namespace coradd::serving {

enum class ArrivalMode {
  kClosedLoop,  ///< next submit waits for the previous result
  kOpenLoop,    ///< submits paced by `think_seconds`, completions ignored
};

/// Knobs for RunClients.
struct ClientRunOptions {
  ArrivalMode mode = ArrivalMode::kClosedLoop;
  /// Open-loop inter-arrival gap per client, in seconds. Ignored in
  /// closed-loop mode.
  double think_seconds = 0.0;
};

/// Aggregate outcome of one multi-client run.
struct ServingRunStats {
  double wall_seconds = 0.0;
  uint64_t completed = 0;
  double qps = 0.0;  ///< completed / wall_seconds
  double p50_latency_seconds = 0.0;
  double p95_latency_seconds = 0.0;
  double p99_latency_seconds = 0.0;
  /// Every per-query latency, in completion-collection order.
  std::vector<double> latencies;
  uint64_t shared = 0;  ///< results served via a shared pass
  uint64_t solo = 0;
};

/// Runs one thread per stream against a STARTED engine; stream[i] is the
/// sequence of workload query indexes client i submits. Returns once every
/// submitted query has completed.
ServingRunStats RunClients(ServingEngine* engine,
                           const std::vector<std::vector<size_t>>& streams,
                           const ClientRunOptions& options = {});

/// Deterministic "lookalike-heavy" query stream: `length` workload query
/// indexes drawn Zipf(s)-skewed over [0, num_queries) so a few hot queries
/// dominate — the regime where shared-scan batching groups aggressively.
std::vector<size_t> MakeLookalikeStream(size_t num_queries, size_t length,
                                        uint64_t seed, double zipf_s = 1.2);

}  // namespace coradd::serving
