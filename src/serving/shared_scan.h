// Cooperative shared-scan pass: several admitted queries whose selected
// plans aggregate the SAME row ranges of the SAME materialized object are
// executed in one pass that reads every ColumnBatch once (with the union of
// the members' columns) and evaluates each member's predicate chain and
// accumulators against it.
//
// Determinism contract: the pass replicates the solo executor's exact
// decomposition — per-range partitions of `partition_rows` starting at
// range.begin, batches of `batch_rows` from partition begin, per-member
// per-partition partial accumulators merged range-major/partition-minor,
// accumulator elements left-to-right — so every member's aggregate and row
// count are bit-identical to a solo QueryExecutor::RunPlan with the same
// ExecOptions, at any thread count (EXPECT_EQ on doubles holds). Each
// member's I/O is still charged solo-style to its own cold DiskModel, so
// simulated seconds match solo runs too; the wall-clock win comes from
// reading and gathering each batch once instead of once per member.
#pragma once

#include <vector>

#include "exec/executor.h"

namespace coradd::serving {

/// One query participating in a shared pass. All members of a pass must
/// have plans with identical `ranges` (the grouping key); `result` is
/// written by RunSharedScan.
struct SharedMember {
  const Query* query = nullptr;
  const ScanPlan* plan = nullptr;
  QueryRunResult result;
};

/// Executes one cooperative pass over `obj` for every member, using
/// `options` for batch/partition decomposition and the pool. `disk_params`
/// seeds each member's cold per-query DiskModel (§7 methodology). Requires
/// members->size() >= 1 and all plans range-based with identical ranges.
void RunSharedScan(const MaterializedObject& obj, const DiskParams& disk_params,
                   const ExecOptions& options,
                   std::vector<SharedMember>* members);

}  // namespace coradd::serving
