#include "benchkit/bench_json.h"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <thread>

#include "benchkit/flags.h"
#include "benchkit/json_util.h"
#include "common/string_util.h"
#include "obs/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#endif

namespace coradd {
namespace benchkit {

EnvInfo CaptureEnv() {
  EnvInfo env;
#if defined(__VERSION__)
#if defined(__clang__)
  env.compiler = std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  env.compiler = std::string("gcc ") + __VERSION__;
#else
  env.compiler = __VERSION__;
#endif
#else
  env.compiler = "unknown";
#endif
#if defined(__unix__) || defined(__APPLE__)
  struct utsname u;
  if (uname(&u) == 0) {
    env.os = std::string(u.sysname) + " " + u.release + " " + u.machine;
  }
#endif
  if (env.os.empty()) env.os = "unknown";
  env.hardware_threads = std::thread::hardware_concurrency();
  const char* threads = std::getenv("CORADD_THREADS");
  env.coradd_threads = threads != nullptr ? threads : "";
  env.timestamp_unix = static_cast<long long>(std::time(nullptr));
  return env;
}

BenchJson::BenchJson(std::string name, int argc, char** argv)
    : name_(std::move(name)), enabled_(FlagBool(argc, argv, "json")) {}

BenchJson::BenchJson(std::string name, bool enabled)
    : name_(std::move(name)), enabled_(enabled) {}

void BenchJson::Config(const std::string& key, const std::string& value) {
  config_.emplace_back(key, JsonQuote(value));
}

void BenchJson::Config(const std::string& key, double value) {
  config_.emplace_back(key, JsonNum(value, 6));
}

void BenchJson::Row(
    std::vector<std::pair<std::string, std::string>> fields) {
  rows_.push_back(std::move(fields));
}

void BenchJson::MetricSamples(const std::string& name, const std::string& unit,
                              std::vector<double> samples,
                              std::vector<double> warmup_samples) {
  for (Metric& m : metrics_) {
    if (m.name == name) {
      m.unit = unit;
      m.samples = std::move(samples);
      m.warmup_samples = std::move(warmup_samples);
      return;
    }
  }
  metrics_.push_back(
      Metric{name, unit, std::move(samples), std::move(warmup_samples)});
}

void BenchJson::SetRepetitions(int repetitions, int warmup) {
  repetitions_ = repetitions;
  warmup_ = warmup;
}

std::string BenchJson::Quote(const std::string& s) { return JsonQuote(s); }

std::string BenchJson::Num(double v) { return JsonNum(v, 9); }

namespace {

void WriteSampleArray(std::FILE* f, const char* key,
                      const std::vector<double>& samples) {
  std::fprintf(f, "\"%s\": [", key);
  for (size_t i = 0; i < samples.size(); ++i) {
    std::fprintf(f, "%s%s", i == 0 ? "" : ", ", JsonNum(samples[i], 9).c_str());
  }
  std::fprintf(f, "]");
}

}  // namespace

void BenchJson::Write(double total_wall_seconds) const {
  if (!enabled_) return;
  const std::string path = "BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }

  // v1-comparable headline: the mean measured wall time when repetitions
  // were recorded, the raw invocation wall otherwise.
  double wall_seconds = total_wall_seconds;
  for (const Metric& m : metrics_) {
    if (m.name == "wall_seconds" && !m.samples.empty()) {
      wall_seconds = Summarize(m.samples).mean;
      break;
    }
  }

  std::fprintf(f, "{\n  \"schema_version\": 2,\n  \"bench\": %s,\n",
               JsonQuote(name_).c_str());
  std::fprintf(f, "  \"wall_seconds\": %s,\n",
               JsonNum(wall_seconds, 9).c_str());
  std::fprintf(f, "  \"total_wall_seconds\": %s,\n",
               JsonNum(total_wall_seconds, 9).c_str());

  const EnvInfo env = CaptureEnv();
  std::fprintf(f, "  \"env\": {\"compiler\": %s, \"os\": %s, ",
               JsonQuote(env.compiler).c_str(), JsonQuote(env.os).c_str());
  std::fprintf(f, "\"hardware_threads\": %u, \"coradd_threads\": %s, ",
               env.hardware_threads, JsonQuote(env.coradd_threads).c_str());
  std::fprintf(f, "\"timestamp_unix\": %lld, ", env.timestamp_unix);
  std::fprintf(f, "\"repetitions\": %d, \"warmup\": %d},\n", repetitions_,
               warmup_);

  std::fprintf(f, "  \"config\": {");
  for (size_t i = 0; i < config_.size(); ++i) {
    std::fprintf(f, "%s%s: %s", i == 0 ? "" : ", ",
                 JsonQuote(config_[i].first).c_str(),
                 config_[i].second.c_str());
  }
  std::fprintf(f, "},\n");

  std::fprintf(f, "  \"metrics\": [\n");
  for (size_t i = 0; i < metrics_.size(); ++i) {
    const Metric& m = metrics_[i];
    const SampleStats s = Summarize(m.samples);
    std::fprintf(f, "    {\"name\": %s, \"unit\": %s,\n     ",
                 JsonQuote(m.name).c_str(), JsonQuote(m.unit).c_str());
    WriteSampleArray(f, "samples", m.samples);
    std::fprintf(f, ",\n     ");
    WriteSampleArray(f, "warmup_samples", m.warmup_samples);
    std::fprintf(f, ",\n");
    std::fprintf(
        f,
        "     \"mean\": %s, \"median\": %s, \"stddev\": %s, \"mad\": %s,\n",
        JsonNum(s.mean, 9).c_str(), JsonNum(s.median, 9).c_str(),
        JsonNum(s.stddev, 9).c_str(), JsonNum(s.mad, 9).c_str());
    std::fprintf(
        f,
        "     \"ci95_lo\": %s, \"ci95_hi\": %s, \"min\": %s, \"max\": %s, "
        "\"outliers\": %zu}%s\n",
        JsonNum(s.ci95_lo(), 9).c_str(), JsonNum(s.ci95_hi(), 9).c_str(),
        JsonNum(s.min, 9).c_str(), JsonNum(s.max, 9).c_str(), s.outliers,
        i + 1 == metrics_.size() ? "" : ",");
  }
  // Process-wide observability counters, as of this write. Named
  // "obs_metrics" because "metrics" above is the per-repetition sample
  // section. Values include thread-pool worker attribution, so this section
  // is *not* part of the deterministic surface the CI determinism job
  // diffs (that job extracts "config"/"rows" only).
  std::fprintf(f, "  ],\n  \"obs_metrics\": [\n");
  const std::vector<obs::MetricSnapshot> snaps =
      obs::MetricsRegistry::Global().Snapshot();
  for (size_t i = 0; i < snaps.size(); ++i) {
    const obs::MetricSnapshot& s = snaps[i];
    std::fprintf(f, "    {\"name\": %s, ", JsonQuote(s.name).c_str());
    switch (s.kind) {
      case obs::MetricSnapshot::Kind::kCounter:
        std::fprintf(f, "\"kind\": \"counter\", \"value\": %llu",
                     static_cast<unsigned long long>(s.value));
        break;
      case obs::MetricSnapshot::Kind::kGauge:
        std::fprintf(f, "\"kind\": \"gauge\", \"value\": %lld, \"max\": %lld",
                     static_cast<long long>(s.gauge_value),
                     static_cast<long long>(s.gauge_max));
        break;
      case obs::MetricSnapshot::Kind::kHistogram:
        std::fprintf(
            f,
            "\"kind\": \"histogram\", \"count\": %llu, \"sum\": %llu, "
            "\"mean\": %s, \"min\": %llu, \"max\": %llu, "
            "\"p50\": %llu, \"p99\": %llu",
            static_cast<unsigned long long>(s.count),
            static_cast<unsigned long long>(s.sum),
            JsonNum(s.mean, 6).c_str(),
            static_cast<unsigned long long>(s.min),
            static_cast<unsigned long long>(s.max),
            static_cast<unsigned long long>(s.p50),
            static_cast<unsigned long long>(s.p99));
        break;
    }
    std::fprintf(f, "}%s\n", i + 1 == snaps.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n  \"rows\": [\n");
  for (size_t r = 0; r < rows_.size(); ++r) {
    std::fprintf(f, "    {");
    for (size_t i = 0; i < rows_[r].size(); ++i) {
      std::fprintf(f, "%s%s: %s", i == 0 ? "" : ", ",
                   JsonQuote(rows_[r][i].first).c_str(),
                   rows_[r][i].second.c_str());
    }
    std::fprintf(f, "}%s\n", r + 1 == rows_.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu rows, %zu metrics)\n", path.c_str(),
              rows_.size(), metrics_.size());
}

}  // namespace benchkit
}  // namespace coradd
