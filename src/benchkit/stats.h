// Statistics kernel for the benchmark harness: descriptive summaries
// (mean / median / stddev / 95% confidence interval), MAD-based robust
// outlier detection, and a Welch two-sample significance test. Everything
// here is deterministic pure arithmetic so benches and unit tests share
// one implementation (tests/benchkit_test.cc pins the numerics against
// hand-computed fixtures).
#pragma once

#include <cstddef>
#include <vector>

namespace coradd {
namespace benchkit {

/// Descriptive summary of one metric's repetition samples.
struct SampleStats {
  size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< Sample stddev (n-1 denominator); 0 when n < 2.
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double mad = 0.0;  ///< Raw median absolute deviation (unscaled).
  /// Half-width of the 95% confidence interval on the mean
  /// (t_{0.975,n-1} * stddev / sqrt(n)); 0 when n < 2.
  double ci95_half = 0.0;
  size_t outliers = 0;  ///< Count of samples flagged by MadOutlierMask.

  double ci95_lo() const { return mean - ci95_half; }
  double ci95_hi() const { return mean + ci95_half; }
  /// Relative standard deviation (coefficient of variation); 0 for mean 0.
  double rsd() const { return mean != 0.0 ? stddev / mean : 0.0; }
};

/// Two-sided 97.5th-percentile Student t critical value (the multiplier
/// for a 95% CI) for `df` degrees of freedom. Exact table values for
/// integer df <= 30, interpolated in 1/df above that, 1.96 asymptotically.
double StudentT975(double df);

/// Sample median (average of the two middle order statistics for even n).
double Median(std::vector<double> samples);

/// Per-sample outlier flags via the modified z-score: a sample is an
/// outlier when |x - median| / (1.4826 * MAD) > threshold. When MAD is 0
/// (over half the samples identical) the scale falls back to
/// 1.2533 * mean-absolute-deviation, so a planted spike in otherwise
/// constant samples is still flagged. All-equal samples have no outliers.
std::vector<bool> MadOutlierMask(const std::vector<double>& samples,
                                 double threshold = 3.5);

/// Full descriptive summary (including the outlier count) of `samples`.
SampleStats Summarize(const std::vector<double>& samples);

/// Welch's unequal-variance two-sample t-test.
struct WelchResult {
  double t = 0.0;   ///< Welch t statistic (0 when either sample is empty).
  double df = 0.0;  ///< Welch–Satterthwaite degrees of freedom.
  /// True when |t| exceeds the two-sided 5%-level critical value. Two
  /// zero-variance samples are significant iff their means differ.
  bool significant = false;
};
WelchResult WelchTTest(const std::vector<double>& a,
                       const std::vector<double>& b);

}  // namespace benchkit
}  // namespace coradd
