// BENCH_<name>.json writer — schema v2. Compared to the single-shot v1
// emitted by earlier revisions (bench / wall_seconds / config / rows), v2
// adds per-repetition samples with summary statistics for every metric,
// environment metadata, and locale/escaping-safe emission:
//
//   {
//     "schema_version": 2,
//     "bench": "<name>",
//     "wall_seconds": <mean measured wall, v1-comparable>,
//     "total_wall_seconds": <whole invocation including warmup+reporting>,
//     "env": {"compiler": ..., "os": ..., "hardware_threads": ...,
//             "coradd_threads": ..., "timestamp_unix": ...,
//             "repetitions": ..., "warmup": ...},
//     "config": {"scale": 0.005, ...},
//     "metrics": [{"name": "wall_seconds", "unit": "s",
//                  "samples": [...], "warmup_samples": [...],
//                  "mean": ..., "median": ..., "stddev": ..., "mad": ...,
//                  "ci95_lo": ..., "ci95_hi": ..., "min": ..., "max": ...,
//                  "outliers": 0}, ...],
//     "obs_metrics": [{"name": "solver.nodes_expanded",
//                      "kind": "counter", "value": ...}, ...],
//     "rows": [{...}, ...]
//   }
//
// `config` and `rows` keep their v1 shapes so existing consumers (the CI
// determinism jq extraction, trajectory scripts) read v2 files unchanged.
// bench_compare consumes the `metrics` arrays.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "benchkit/stats.h"

namespace coradd {
namespace benchkit {

/// Host/build metadata recorded in every v2 document.
struct EnvInfo {
  std::string compiler;        ///< e.g. "gcc 12.2.0" (from __VERSION__).
  std::string os;              ///< uname sysname+release, or "unknown".
  unsigned hardware_threads = 0;
  std::string coradd_threads;  ///< $CORADD_THREADS, empty when unset.
  long long timestamp_unix = 0;
};
EnvInfo CaptureEnv();

/// Machine-readable bench output: when the bench was invoked with --json,
/// Write() emits BENCH_<name>.json — the repo's perf-trajectory record
/// (CI uploads these as artifacts and bench_compare gates on them).
class BenchJson {
 public:
  /// Enabled iff `--json` is among the args.
  BenchJson(std::string name, int argc, char** argv);
  BenchJson(std::string name, bool enabled);

  bool enabled() const { return enabled_; }
  const std::string& name() const { return name_; }

  void Config(const std::string& key, const std::string& value);
  void Config(const std::string& key, double value);

  /// One result record of (key, already-JSON-encoded value) pairs.
  void Row(std::vector<std::pair<std::string, std::string>> fields);

  /// Records one metric's full repetition samples (summary statistics are
  /// computed at Write() time). Re-adding a name replaces the samples.
  void MetricSamples(const std::string& name, const std::string& unit,
                     std::vector<double> samples,
                     std::vector<double> warmup_samples = {});

  /// Repetition counts recorded under "env" (set by the harness).
  void SetRepetitions(int repetitions, int warmup);

  /// Escaped JSON string token / locale-safe JSON number token, for
  /// callers assembling Row() fields.
  static std::string Quote(const std::string& s);
  static std::string Num(double v);

  /// Writes BENCH_<name>.json to the working directory (no-op without
  /// --json). `total_wall_seconds` is the whole invocation's wall clock;
  /// the v1-comparable top-level "wall_seconds" is the mean of the
  /// "wall_seconds" metric when one was recorded, else this value.
  void Write(double total_wall_seconds) const;

 private:
  struct Metric {
    std::string name;
    std::string unit;
    std::vector<double> samples;
    std::vector<double> warmup_samples;
  };

  std::string name_;
  bool enabled_;
  int repetitions_ = 1;
  int warmup_ = 0;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<Metric> metrics_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

}  // namespace benchkit
}  // namespace coradd
