#include "benchkit/json_util.h"

#include <cmath>
#include <cstdio>

namespace coradd {
namespace benchkit {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonQuote(const std::string& s) {
  return "\"" + JsonEscape(s) + "\"";
}

std::string JsonNum(double v, int significant_digits) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", significant_digits, v);
  // snprintf honors the process locale; a ',' decimal separator would make
  // the emitted document unparseable, so normalize it back to '.'.
  std::string out(buf);
  for (char& c : out) {
    if (c == ',') c = '.';
  }
  return out;
}

std::string JsonNum(double v) { return JsonNum(v, 17); }

}  // namespace benchkit
}  // namespace coradd
