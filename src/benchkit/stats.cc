#include "benchkit/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace coradd {
namespace benchkit {
namespace {

// Two-sided 97.5% Student t quantiles for df = 1..30.
constexpr double kT975[30] = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};

// Consistency constants: sigma ~= 1.4826 * MAD for normal data, and
// sigma ~= 1.2533 * mean-absolute-deviation (the MAD==0 fallback).
constexpr double kMadToSigma = 1.4826;
constexpr double kMeanAdToSigma = 1.2533;

double Mean(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return v.empty() ? 0.0 : s / static_cast<double>(v.size());
}

double SampleVariance(const std::vector<double>& v, double mean) {
  if (v.size() < 2) return 0.0;
  double s = 0.0;
  for (double x : v) s += (x - mean) * (x - mean);
  return s / static_cast<double>(v.size() - 1);
}

}  // namespace

double StudentT975(double df) {
  if (df <= 1.0) return kT975[0];
  if (df <= 30.0) {
    // Linear interpolation between the bracketing integer entries (exact
    // at integers, which is what fixed-n CI fixtures exercise).
    const int lo = static_cast<int>(df);
    const double frac = df - lo;
    const double a = kT975[lo - 1];
    const double b = kT975[std::min(lo, 29)];
    return a + frac * (b - a);
  }
  // Above the table, interpolate in 1/df toward the normal quantile: this
  // reproduces the classic 40 / 60 / 120 / inf rows to ~1e-3.
  const double t30 = kT975[29];
  const double tinf = 1.960;
  return tinf + (t30 - tinf) * (30.0 / df);
}

double Median(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  return n % 2 == 1 ? samples[n / 2]
                    : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

std::vector<bool> MadOutlierMask(const std::vector<double>& samples,
                                 double threshold) {
  std::vector<bool> mask(samples.size(), false);
  if (samples.size() < 3) return mask;
  const double med = Median(samples);
  std::vector<double> dev;
  dev.reserve(samples.size());
  for (double x : samples) dev.push_back(std::abs(x - med));
  const double mad = Median(dev);
  double sigma = kMadToSigma * mad;
  if (sigma == 0.0) {
    sigma = kMeanAdToSigma * Mean(dev);
  }
  if (sigma == 0.0) return mask;  // all samples identical
  for (size_t i = 0; i < samples.size(); ++i) {
    mask[i] = dev[i] / sigma > threshold;
  }
  return mask;
}

SampleStats Summarize(const std::vector<double>& samples) {
  SampleStats s;
  s.n = samples.size();
  if (samples.empty()) return s;
  s.mean = Mean(samples);
  s.min = *std::min_element(samples.begin(), samples.end());
  s.max = *std::max_element(samples.begin(), samples.end());
  s.median = Median(samples);
  std::vector<double> dev;
  dev.reserve(samples.size());
  for (double x : samples) dev.push_back(std::abs(x - s.median));
  s.mad = Median(dev);
  if (samples.size() >= 2) {
    s.stddev = std::sqrt(SampleVariance(samples, s.mean));
    s.ci95_half = StudentT975(static_cast<double>(samples.size() - 1)) *
                  s.stddev / std::sqrt(static_cast<double>(samples.size()));
  }
  const std::vector<bool> mask = MadOutlierMask(samples);
  for (bool b : mask) s.outliers += b ? 1 : 0;
  return s;
}

WelchResult WelchTTest(const std::vector<double>& a,
                       const std::vector<double>& b) {
  WelchResult r;
  if (a.empty() || b.empty()) return r;
  const double ma = Mean(a);
  const double mb = Mean(b);
  const double va = SampleVariance(a, ma) / static_cast<double>(a.size());
  const double vb = SampleVariance(b, mb) / static_cast<double>(b.size());
  const double se2 = va + vb;
  if (se2 == 0.0) {
    // Zero variance on both sides: any mean difference is exact.
    r.t = ma == mb ? 0.0 : std::numeric_limits<double>::infinity();
    r.df = static_cast<double>(a.size() + b.size() - 2);
    r.significant = ma != mb;
    return r;
  }
  r.t = (ma - mb) / std::sqrt(se2);
  // Welch–Satterthwaite; each variance term needs n >= 2 to contribute a
  // denominator, so single-sample sides degrade to the other side's df.
  double denom = 0.0;
  if (a.size() >= 2) denom += va * va / static_cast<double>(a.size() - 1);
  if (b.size() >= 2) denom += vb * vb / static_cast<double>(b.size() - 1);
  r.df = denom > 0.0 ? se2 * se2 / denom : 1.0;
  r.significant = std::abs(r.t) > StudentT975(r.df);
  return r;
}

}  // namespace benchkit
}  // namespace coradd
