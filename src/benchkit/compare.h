// Statistical comparison of BENCH_*.json documents: the library behind
// the bench_compare CLI and its golden tests. Two runs of the same bench
// are compared metric-by-metric with Welch's t-test on the per-repetition
// samples; each metric — and the report as a whole — gets one of four
// verdicts with distinct exit codes so CI can gate on regressions:
//
//   NO-CHANGE    exit 0   not significant, or effect below --min-effect
//   IMPROVEMENT  exit 10  significantly faster by at least min_effect
//   TOO-NOISY    exit 11  effect above min_effect but not significant —
//                         the samples cannot support a call either way
//   REGRESSION   exit 12  significantly slower by at least min_effect
//   (errors: exit 1)
//
// All compared metrics are wall-clock style (lower is better). v1 files
// (no "metrics" array) degrade to a single-sample threshold comparison.
#pragma once

#include <string>
#include <vector>

#include "benchkit/stats.h"
#include "common/status.h"

namespace coradd {
namespace benchkit {

/// Severity-ordered: the overall verdict is the max over metric verdicts.
enum class Verdict {
  kNoChange = 0,
  kImprovement = 1,
  kTooNoisy = 2,
  kRegression = 3,
};

const char* VerdictName(Verdict v);  ///< "NO-CHANGE", "REGRESSION", ...
int VerdictExitCode(Verdict v);      ///< 0 / 10 / 11 / 12 per the table.

struct CompareOptions {
  /// Minimum relative mean delta (cur vs base) that counts as a change.
  /// Significant shifts smaller than this stay NO-CHANGE; CI gates use a
  /// larger value to absorb cross-machine wall-clock differences.
  double min_effect = 0.05;
  /// Metrics whose means are both below this are NO-CHANGE regardless
  /// (sub-noise-floor timings carry no signal).
  double noise_floor_seconds = 1e-4;
  /// Fallback threshold when either side has < 2 samples (v1 files):
  /// no significance test is possible, so only deltas beyond this call a
  /// regression / improvement.
  double singleton_threshold = 0.30;
  /// Metric names to compare; empty means just "wall_seconds", the single
  /// entry "all" compares every metric present in both documents.
  std::vector<std::string> metrics = {};
};

/// One bench document reduced to its comparable samples.
struct BenchDoc {
  std::string bench;
  int schema_version = 1;
  std::vector<std::pair<std::string, std::vector<double>>> metrics;

  const std::vector<double>* Samples(const std::string& name) const;
};

struct MetricVerdict {
  std::string bench;
  std::string metric;
  SampleStats base;
  SampleStats cur;
  double effect = 0.0;  ///< (cur.mean - base.mean) / base.mean.
  WelchResult welch;
  Verdict verdict = Verdict::kNoChange;
  std::string note;  ///< e.g. "single-shot baseline", "below noise floor".
};

struct CompareReport {
  Verdict overall = Verdict::kNoChange;
  std::vector<MetricVerdict> metrics;
  /// Bench names present on only one side (reported, never a failure).
  std::vector<std::string> only_in_baseline;
  std::vector<std::string> only_in_run;
};

/// Parses one BENCH_*.json (schema v1 or v2) into its samples.
Result<BenchDoc> LoadBenchDoc(const std::string& path);

/// Verdict for one metric pair (exposed for unit tests).
MetricVerdict CompareMetric(const std::string& bench,
                            const std::string& metric,
                            const std::vector<double>& base_samples,
                            const std::vector<double>& cur_samples,
                            const CompareOptions& options);

/// Compares two parsed documents metric-by-metric.
CompareReport CompareDocs(const BenchDoc& base, const BenchDoc& cur,
                          const CompareOptions& options);

/// Convenience: load + compare two files.
Result<CompareReport> CompareFiles(const std::string& baseline_path,
                                   const std::string& run_path,
                                   const CompareOptions& options);

/// Compares every BENCH_*.json in `run_dir` against the file of the same
/// name in `baseline_dir` (sorted order; one aggregated report).
Result<CompareReport> CompareDirs(const std::string& baseline_dir,
                                  const std::string& run_dir,
                                  const CompareOptions& options);

/// Human-readable multi-line report (one line per metric + a summary
/// line; golden tests pin key phrases of this output).
std::string RenderReport(const CompareReport& report);

}  // namespace benchkit
}  // namespace coradd
