#include "benchkit/json_parser.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/string_util.h"

namespace coradd {
namespace benchkit {

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double d) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray(JsonArray items) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::MakeObject(JsonMembers members) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.members_ = std::move(members);
  return v;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::NumberOr(const std::string& key, double def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsNumber() : def;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : def;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWs();
    JsonValue v;
    Status s = ParseValue(&v, 0);
    if (!s.ok()) return s;
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Fail(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at byte %zu: %s", pos_, what.c_str()));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        Status st = ParseString(&s);
        if (!st.ok()) return st;
        *out = JsonValue::MakeString(std::move(s));
        return Status::OK();
      }
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          *out = JsonValue::MakeBool(true);
          return Status::OK();
        }
        return Fail("invalid literal");
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          *out = JsonValue::MakeBool(false);
          return Status::OK();
        }
        return Fail("invalid literal");
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          *out = JsonValue();
          return Status::OK();
        }
        return Fail("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    JsonMembers members;
    SkipWs();
    if (Consume('}')) {
      *out = JsonValue::MakeObject(std::move(members));
      return Status::OK();
    }
    while (true) {
      SkipWs();
      std::string key;
      Status st = ParseString(&key);
      if (!st.ok()) return st;
      SkipWs();
      if (!Consume(':')) return Fail("expected ':' in object");
      SkipWs();
      JsonValue v;
      st = ParseValue(&v, depth + 1);
      if (!st.ok()) return st;
      members.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Fail("expected ',' or '}' in object");
    }
    *out = JsonValue::MakeObject(std::move(members));
    return Status::OK();
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    JsonArray items;
    SkipWs();
    if (Consume(']')) {
      *out = JsonValue::MakeArray(std::move(items));
      return Status::OK();
    }
    while (true) {
      SkipWs();
      JsonValue v;
      Status st = ParseValue(&v, depth + 1);
      if (!st.ok()) return st;
      items.push_back(std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Fail("expected ',' or ']' in array");
    }
    *out = JsonValue::MakeArray(std::move(items));
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    std::string s;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        *out = std::move(s);
        return Status::OK();
      }
      if (c != '\\') {
        s += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          s += '"';
          break;
        case '\\':
          s += '\\';
          break;
        case '/':
          s += '/';
          break;
        case 'b':
          s += '\b';
          break;
        case 'f':
          s += '\f';
          break;
        case 'n':
          s += '\n';
          break;
        case 'r':
          s += '\r';
          break;
        case 't':
          s += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our writer; a lone surrogate encodes as-is).
          if (code < 0x80) {
            s += static_cast<char>(code);
          } else if (code < 0x800) {
            s += static_cast<char>(0xC0 | (code >> 6));
            s += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            s += static_cast<char>(0xE0 | (code >> 12));
            s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Fail("invalid escape");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    const std::string tok = text_.substr(start, pos_ - start);
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size() || errno == ERANGE) {
      pos_ = start;
      return Fail("invalid number '" + tok + "'");
    }
    *out = JsonValue::MakeNumber(v);
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

Result<JsonValue> ParseJsonFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  std::string text;
  char buf[65536];
  size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  Result<JsonValue> parsed = ParseJson(text);
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " + parsed.status().message());
  }
  return parsed;
}

}  // namespace benchkit
}  // namespace coradd
