#include "benchkit/compare.h"

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "benchkit/json_parser.h"
#include "common/string_util.h"

namespace coradd {
namespace benchkit {

const char* VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kNoChange:
      return "NO-CHANGE";
    case Verdict::kImprovement:
      return "IMPROVEMENT";
    case Verdict::kTooNoisy:
      return "TOO-NOISY";
    case Verdict::kRegression:
      return "REGRESSION";
  }
  return "UNKNOWN";
}

int VerdictExitCode(Verdict v) {
  switch (v) {
    case Verdict::kNoChange:
      return 0;
    case Verdict::kImprovement:
      return 10;
    case Verdict::kTooNoisy:
      return 11;
    case Verdict::kRegression:
      return 12;
  }
  return 1;
}

const std::vector<double>* BenchDoc::Samples(const std::string& name) const {
  for (const auto& [metric, samples] : metrics) {
    if (metric == name) return &samples;
  }
  return nullptr;
}

Result<BenchDoc> LoadBenchDoc(const std::string& path) {
  Result<JsonValue> parsed = ParseJsonFile(path);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = *parsed;
  if (!root.is_object()) {
    return Status::InvalidArgument(path + ": top-level value is not an object");
  }
  BenchDoc doc;
  doc.bench = root.StringOr("bench", path);
  doc.schema_version =
      static_cast<int>(root.NumberOr("schema_version", 1.0));
  const JsonValue* metrics = root.Find("metrics");
  if (metrics != nullptr && metrics->is_array()) {
    for (const JsonValue& m : metrics->AsArray()) {
      if (!m.is_object()) continue;
      const std::string name = m.StringOr("name", "");
      const JsonValue* samples = m.Find("samples");
      if (name.empty() || samples == nullptr || !samples->is_array()) continue;
      std::vector<double> values;
      for (const JsonValue& s : samples->AsArray()) {
        if (s.is_number()) values.push_back(s.AsNumber());
      }
      doc.metrics.emplace_back(name, std::move(values));
    }
  }
  // v1 fallback (and a guard for empty v2 metric arrays): the single-shot
  // wall time becomes a one-sample "wall_seconds" metric.
  if (doc.Samples("wall_seconds") == nullptr) {
    const JsonValue* wall = root.Find("wall_seconds");
    if (wall != nullptr && wall->is_number()) {
      doc.metrics.emplace_back("wall_seconds",
                               std::vector<double>{wall->AsNumber()});
    }
  }
  if (doc.metrics.empty()) {
    return Status::InvalidArgument(path + ": no comparable metrics");
  }
  return doc;
}

MetricVerdict CompareMetric(const std::string& bench,
                            const std::string& metric,
                            const std::vector<double>& base_samples,
                            const std::vector<double>& cur_samples,
                            const CompareOptions& options) {
  MetricVerdict mv;
  mv.bench = bench;
  mv.metric = metric;
  mv.base = Summarize(base_samples);
  mv.cur = Summarize(cur_samples);
  if (mv.base.mean != 0.0) {
    mv.effect = (mv.cur.mean - mv.base.mean) / mv.base.mean;
  }

  if (mv.base.mean < options.noise_floor_seconds &&
      mv.cur.mean < options.noise_floor_seconds) {
    mv.verdict = Verdict::kNoChange;
    mv.note = "below noise floor";
    return mv;
  }
  if (mv.base.n < 2 || mv.cur.n < 2) {
    // No repetitions on one side: only a threshold call is possible.
    mv.note = "single-shot, threshold only";
    if (mv.effect >= options.singleton_threshold) {
      mv.verdict = Verdict::kRegression;
    } else if (mv.effect <= -options.singleton_threshold) {
      mv.verdict = Verdict::kImprovement;
    } else {
      mv.verdict = Verdict::kNoChange;
    }
    return mv;
  }
  mv.welch = WelchTTest(cur_samples, base_samples);
  if (mv.welch.significant && mv.effect >= options.min_effect) {
    mv.verdict = Verdict::kRegression;
  } else if (mv.welch.significant && mv.effect <= -options.min_effect) {
    mv.verdict = Verdict::kImprovement;
  } else if (!mv.welch.significant &&
             std::abs(mv.effect) >= options.min_effect) {
    mv.verdict = Verdict::kTooNoisy;
    mv.note = "effect above threshold but not significant";
  } else {
    mv.verdict = Verdict::kNoChange;
  }
  return mv;
}

namespace {

std::vector<std::string> MetricsToCompare(const BenchDoc& base,
                                          const BenchDoc& cur,
                                          const CompareOptions& options) {
  std::vector<std::string> wanted = options.metrics;
  if (wanted.empty()) wanted = {"wall_seconds"};
  if (wanted.size() == 1 && wanted[0] == "all") {
    wanted.clear();
    for (const auto& [name, samples] : cur.metrics) wanted.push_back(name);
  }
  std::vector<std::string> out;
  for (const std::string& name : wanted) {
    if (base.Samples(name) != nullptr && cur.Samples(name) != nullptr) {
      out.push_back(name);
    }
  }
  return out;
}

void Accumulate(CompareReport* report, MetricVerdict mv) {
  report->overall = std::max(report->overall, mv.verdict);
  report->metrics.push_back(std::move(mv));
}

}  // namespace

CompareReport CompareDocs(const BenchDoc& base, const BenchDoc& cur,
                          const CompareOptions& options) {
  CompareReport report;
  for (const std::string& name : MetricsToCompare(base, cur, options)) {
    Accumulate(&report, CompareMetric(cur.bench, name, *base.Samples(name),
                                      *cur.Samples(name), options));
  }
  return report;
}

Result<CompareReport> CompareFiles(const std::string& baseline_path,
                                   const std::string& run_path,
                                   const CompareOptions& options) {
  Result<BenchDoc> base = LoadBenchDoc(baseline_path);
  if (!base.ok()) return base.status();
  Result<BenchDoc> cur = LoadBenchDoc(run_path);
  if (!cur.ok()) return cur.status();
  return CompareDocs(*base, *cur, options);
}

Result<CompareReport> CompareDirs(const std::string& baseline_dir,
                                  const std::string& run_dir,
                                  const CompareOptions& options) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(run_dir, ec)) {
    return Status::NotFound("run dir not found: " + run_dir);
  }
  if (!fs::is_directory(baseline_dir, ec)) {
    return Status::NotFound("baseline dir not found: " + baseline_dir);
  }
  auto list = [](const std::string& dir) {
    std::vector<std::string> names;
    for (const auto& entry : fs::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      if (entry.is_regular_file() && name.rfind("BENCH_", 0) == 0 &&
          name.size() > 5 && name.substr(name.size() - 5) == ".json") {
        names.push_back(name);
      }
    }
    std::sort(names.begin(), names.end());
    return names;
  };
  const std::vector<std::string> run_files = list(run_dir);
  const std::vector<std::string> base_files = list(baseline_dir);

  CompareReport report;
  for (const std::string& name : base_files) {
    if (std::find(run_files.begin(), run_files.end(), name) ==
        run_files.end()) {
      report.only_in_baseline.push_back(name);
    }
  }
  for (const std::string& name : run_files) {
    if (std::find(base_files.begin(), base_files.end(), name) ==
        base_files.end()) {
      report.only_in_run.push_back(name);
      continue;
    }
    Result<CompareReport> one =
        CompareFiles(baseline_dir + "/" + name, run_dir + "/" + name, options);
    if (!one.ok()) return one.status();
    for (MetricVerdict& mv : one.value().metrics) {
      Accumulate(&report, std::move(mv));
    }
  }
  return report;
}

std::string RenderReport(const CompareReport& report) {
  std::string out;
  size_t counts[4] = {0, 0, 0, 0};
  for (const MetricVerdict& mv : report.metrics) {
    counts[static_cast<int>(mv.verdict)]++;
    out += StrFormat("%-12s %s/%s: %s", VerdictName(mv.verdict),
                     mv.bench.c_str(), mv.metric.c_str(),
                     StrFormat("base %.4gs ±%.2g (n=%zu) -> cur %.4gs ±%.2g "
                               "(n=%zu)  %+.1f%%",
                               mv.base.mean, mv.base.ci95_half, mv.base.n,
                               mv.cur.mean, mv.cur.ci95_half, mv.cur.n,
                               100.0 * mv.effect)
                         .c_str());
    if (mv.welch.df > 0.0) {
      out += StrFormat("  t=%.2f df=%.1f", mv.welch.t, mv.welch.df);
    }
    if (!mv.note.empty()) out += "  [" + mv.note + "]";
    out += "\n";
  }
  for (const std::string& name : report.only_in_run) {
    out += "NEW          " + name + ": no committed baseline\n";
  }
  for (const std::string& name : report.only_in_baseline) {
    out += "MISSING      " + name + ": baseline present but not in this run\n";
  }
  out += StrFormat(
      "verdict: %s (%zu metric%s compared: %zu regression, %zu too-noisy, "
      "%zu improvement, %zu no-change)\n",
      VerdictName(report.overall), report.metrics.size(),
      report.metrics.size() == 1 ? "" : "s", counts[3], counts[2], counts[1],
      counts[0]);
  return out;
}

}  // namespace benchkit
}  // namespace coradd
