// Minimal recursive-descent JSON reader for BENCH_*.json documents (used
// by bench_compare and its tests). Supports the full JSON value grammar;
// numbers are held as double, objects preserve insertion order. This is a
// reader for our own well-formed multi-KB files, not a general-purpose
// hardened parser (depth is bounded, errors carry byte offsets).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace coradd {
namespace benchkit {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonMembers = std::vector<std::pair<std::string, JsonValue>>;

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double v);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray(JsonArray items);
  static JsonValue MakeObject(JsonMembers members);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const JsonArray& AsArray() const { return array_; }
  const JsonMembers& AsObject() const { return members_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  /// Member as number with a default when absent / wrong type.
  double NumberOr(const std::string& key, double def) const;
  /// Member as string with a default when absent / wrong type.
  std::string StringOr(const std::string& key, const std::string& def) const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  JsonArray array_;
  JsonMembers members_;
};

/// Parses `text` as one JSON document (trailing whitespace allowed).
Result<JsonValue> ParseJson(const std::string& text);

/// Reads and parses a JSON file.
Result<JsonValue> ParseJsonFile(const std::string& path);

}  // namespace benchkit
}  // namespace coradd
