// JSON emission helpers shared by the bench JSON writer and bench_compare:
// string escaping per RFC 8259 and numeric formatting locked to the C
// locale (a '.' decimal point regardless of the process locale), so
// BENCH_*.json parses everywhere.
#pragma once

#include <string>

namespace coradd {
namespace benchkit {

/// Escapes `s` for embedding in a JSON string literal (quotes, backslash,
/// control characters; non-ASCII bytes pass through untouched).
std::string JsonEscape(const std::string& s);

/// `JsonEscape` wrapped in double quotes — a complete JSON string token.
std::string JsonQuote(const std::string& s);

/// Formats `v` as a JSON number using up to 17 significant digits
/// (round-trip exact for doubles). The decimal separator is forced to '.'
/// even under a locale that prints ','; non-finite values — which JSON
/// cannot represent — become null.
std::string JsonNum(double v);

/// Like JsonNum but with printf precision `%.<digits>g` (for compact
/// config values where round-trip exactness is not needed).
std::string JsonNum(double v, int significant_digits);

}  // namespace benchkit
}  // namespace coradd
