// Minimal --key=value flag access shared by every bench binary and the
// benchkit harness (moved here from bench/bench_util.h so the harness can
// parse its own flags without depending on the bench fixtures).
#pragma once

#include <cstdlib>
#include <cstring>
#include <string>

namespace coradd {
namespace benchkit {

/// Value of `--key=<v>`, or `default_value` when absent.
inline std::string FlagValue(int argc, char** argv, const std::string& key,
                             const std::string& default_value) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return default_value;
}

inline double FlagDouble(int argc, char** argv, const std::string& key,
                         double default_value) {
  const std::string v = FlagValue(argc, argv, key, "");
  return v.empty() ? default_value : std::atof(v.c_str());
}

inline int FlagInt(int argc, char** argv, const std::string& key,
                   int default_value) {
  const std::string v = FlagValue(argc, argv, key, "");
  return v.empty() ? default_value : std::atoi(v.c_str());
}

/// True when `--key` or `--key=<truthy>` was passed.
inline bool FlagBool(int argc, char** argv, const std::string& key) {
  const std::string bare = "--" + key;
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i]) return true;
  }
  const std::string v = FlagValue(argc, argv, key, "");
  return !(v.empty() || v == "0" || v == "false");
}

}  // namespace benchkit
}  // namespace coradd
