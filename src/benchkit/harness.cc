#include "benchkit/harness.h"

#include <cstdio>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace coradd {
namespace benchkit {

Harness::Harness(std::string name, int argc, char** argv)
    : name_(std::move(name)),
      repetitions_(FlagInt(argc, argv, "reps", 3)),
      warmup_(FlagInt(argc, argv, "warmup", 1)),
      fast_(FlagBool(argc, argv, "fast")),
      quiet_(FlagBool(argc, argv, "quiet")),
      trace_path_(FlagValue(argc, argv, "trace", "")),
      metrics_(FlagBool(argc, argv, "metrics")),
      json_(name_, argc, argv) {
  if (repetitions_ < 1) repetitions_ = 1;
  if (warmup_ < 0) warmup_ = 0;
  json_.SetRepetitions(repetitions_, warmup_);
  json_.Config("fast", fast_ ? "true" : "false");
}

void Harness::Sample(const std::string& name, double value) {
  if (!in_measured_pass_) return;
  for (auto& [metric, samples] : metric_samples_) {
    if (metric == name) {
      samples.push_back(value);
      return;
    }
  }
  metric_samples_.emplace_back(name, std::vector<double>{value});
}

void Harness::PrintSummary() const {
  if (quiet_) return;
  const SampleStats s = Summarize(wall_samples_);
  if (s.n < 2) {
    std::printf("\n[%s] wall %.3fs (1 repetition; pass --reps=N for CIs)\n",
                name_.c_str(), s.mean);
    return;
  }
  std::printf(
      "\n[%s] wall mean %.3fs ±%.3fs (95%% CI, n=%zu)  median %.3fs  "
      "stddev %.3fs  rsd %.1f%%%s\n",
      name_.c_str(), s.mean, s.ci95_half, s.n, s.median, s.stddev,
      100.0 * s.rsd(),
      s.outliers > 0
          ? StrFormat("  [%zu outlier%s]", s.outliers,
                      s.outliers == 1 ? "" : "s")
                .c_str()
          : "");
}

void Harness::BeginTraceCapture() {
  if (trace_path_.empty()) return;
  obs::Tracer::SetCurrentThreadName("main");
  obs::Tracer::Global().Clear();
  obs::Tracer::Global().Start();
}

void Harness::EndTraceCapture() {
  if (trace_path_.empty()) return;
  // Quiesce the shared pool so no worker is mid-Record while we flush.
  ThreadPool::Shared().WaitIdle();
  if (obs::Tracer::Global().StopAndWrite(trace_path_)) {
    if (!quiet_) std::printf("trace written to %s\n", trace_path_.c_str());
  } else {
    std::fprintf(stderr, "cannot write trace to %s\n", trace_path_.c_str());
  }
}

int Harness::Finish() {
  // Benches that measure through MeasureThroughput() instead of Run()
  // (bench_micro) have no whole-pass wall samples; skip the empty metric.
  if (!wall_samples_.empty()) {
    json_.MetricSamples("wall_seconds", "s", wall_samples_, wall_warmup_);
  }
  for (auto& [metric, samples] : metric_samples_) {
    json_.MetricSamples(metric, "s", samples);
  }
  if (metrics_) std::fputs(obs::DumpMetrics().c_str(), stdout);
  json_.Write(total_timer_.Seconds());
  return 0;
}

}  // namespace benchkit
}  // namespace coradd
