// Repetition harness for the bench binaries: runs a bench body through
// warmup + N measured repetitions, collects per-repetition wall-clock
// samples (plus any named sub-metrics the body reports via Sample()), and
// emits the schema-v2 BENCH_<name>.json with summary statistics.
//
// Pass protocol: the body runs warmup() + repetitions() times. Pass 0 is
// the *reporting* pass — the only one where the body should print tables
// and record json Config()/Row() output. With the default --warmup=1 the
// reporting pass is also a warmup pass, so print overhead and cold-cache
// effects never contaminate the measured samples; under --warmup=0 pass 0
// is measured and its (small) print overhead is accepted. Fixtures built
// inside the body are recreated every pass, so repetitions measure
// cold-start work and memo caches cannot leak across samples.
//
// Flags parsed (shared by every bench): --reps=N (default 3), --warmup=N
// (default 1), --json, --fast, --quiet, --trace=<path>, --metrics.
//
// --trace captures spans during pass 0 only (the reporting pass, which is
// a warmup pass under the default --warmup=1), so measured samples are
// never polluted by trace recording; the Chrome trace JSON is written when
// pass 0 ends. --metrics prints the obs::DumpMetrics() table at Finish().
// When --json is also set, the full metrics snapshot lands in the
// "obs_metrics" section of BENCH_<name>.json either way.
#pragma once

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "benchkit/bench_json.h"
#include "benchkit/flags.h"
#include "benchkit/stats.h"

namespace coradd {
namespace benchkit {

/// Wall-clock stopwatch (moved here from bench/bench_util.h).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// State handed to the bench body on every pass.
struct RunPass {
  int index = 0;         ///< 0-based over all passes.
  bool warmup = false;   ///< True for the first --warmup passes.
  /// True exactly once (pass 0): print tables / record json rows now.
  bool reporting = false;
};

class Harness {
 public:
  Harness(std::string name, int argc, char** argv);

  int repetitions() const { return repetitions_; }
  int warmup() const { return warmup_; }
  bool fast() const { return fast_; }
  BenchJson& json() { return json_; }

  /// Records `value` into metric `name` for the current measured pass
  /// (ignored during warmup passes, so samples align with wall samples).
  void Sample(const std::string& name, double value);

  /// Runs `body` through all passes, timing each into the "wall_seconds"
  /// metric, then prints a summary line (unless --quiet).
  template <typename Fn>
  void Run(Fn&& body) {
    for (int pass = 0; pass < warmup_ + repetitions_; ++pass) {
      RunPass rp;
      rp.index = pass;
      rp.warmup = pass < warmup_;
      rp.reporting = pass == 0;
      in_measured_pass_ = !rp.warmup;
      if (rp.reporting) BeginTraceCapture();
      const WallTimer t;
      body(static_cast<const RunPass&>(rp));
      const double wall = t.Seconds();
      if (rp.reporting) EndTraceCapture();
      (rp.warmup ? wall_warmup_ : wall_samples_).push_back(wall);
      in_measured_pass_ = false;
    }
    PrintSummary();
  }

  const std::vector<double>& wall_samples() const { return wall_samples_; }

  /// Computes final statistics and writes BENCH_<name>.json (no-op
  /// without --json). Returns the process exit code (0).
  int Finish();

 private:
  void PrintSummary() const;
  /// Starts span capture for pass 0 when --trace=<path> was given.
  void BeginTraceCapture();
  /// Stops capture and writes the Chrome trace file.
  void EndTraceCapture();

  std::string name_;
  int repetitions_;
  int warmup_;
  bool fast_;
  bool quiet_;
  std::string trace_path_;  ///< empty = tracing off
  bool metrics_;            ///< print DumpMetrics() at Finish()
  BenchJson json_;
  WallTimer total_timer_;
  std::vector<double> wall_samples_;
  std::vector<double> wall_warmup_;
  std::vector<std::pair<std::string, std::vector<double>>> metric_samples_;
  bool in_measured_pass_ = false;
};

/// Calibrated throughput measurement for microbenchmarks: doubles the
/// inner iteration count until one batch takes at least
/// `min_sample_seconds`, then times `opts.warmup + opts.repetitions`
/// batches. Samples are seconds *per iteration*.
struct ThroughputOptions {
  int warmup = 1;
  int repetitions = 3;
  double min_sample_seconds = 0.02;
};
struct ThroughputResult {
  std::vector<double> samples;         ///< Seconds per iteration, measured.
  std::vector<double> warmup_samples;  ///< Seconds per iteration, warmup.
  long long iterations = 1;            ///< Iterations per timed batch.
};

template <typename Fn>
ThroughputResult MeasureThroughput(const ThroughputOptions& opts, Fn&& op) {
  ThroughputResult r;
  // Calibrate: grow the batch until it runs long enough to time reliably.
  while (true) {
    const WallTimer t;
    for (long long i = 0; i < r.iterations; ++i) op();
    if (t.Seconds() >= opts.min_sample_seconds || r.iterations >= (1LL << 30)) {
      break;
    }
    r.iterations *= 2;
  }
  for (int pass = 0; pass < opts.warmup + opts.repetitions; ++pass) {
    const WallTimer t;
    for (long long i = 0; i < r.iterations; ++i) op();
    const double per_iter = t.Seconds() / static_cast<double>(r.iterations);
    (pass < opts.warmup ? r.warmup_samples : r.samples).push_back(per_iter);
  }
  return r;
}

}  // namespace benchkit
}  // namespace coradd
