#include "discovery/thread_pool.h"

#include <algorithm>

namespace coradd {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  WaitIdle();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

size_t ThreadPool::ChunkSize(size_t n, size_t num_threads) {
  // ~4 chunks per worker balances load without flooding the queue.
  const size_t chunks = std::max<size_t>(1, num_threads * 4);
  return std::max<size_t>(1, (n + chunks - 1) / chunks);
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t chunk = ChunkSize(n, num_threads());
  // The final WaitIdle() keeps this frame alive until every task finishes,
  // so tasks may capture the cursor and `fn` by reference.
  std::atomic<size_t> cursor{0};
  const size_t num_tasks = std::min(num_threads(), (n + chunk - 1) / chunk);
  for (size_t t = 0; t < num_tasks; ++t) {
    Submit([&cursor, chunk, n, &fn] {
      for (;;) {
        const size_t begin = cursor.fetch_add(chunk);
        if (begin >= n) return;
        const size_t end = std::min(n, begin + chunk);
        for (size_t i = begin; i < end; ++i) fn(i);
      }
    });
  }
  WaitIdle();
}

}  // namespace coradd
