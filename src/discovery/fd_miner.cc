#include "discovery/fd_miner.h"

#include <algorithm>
#include <memory>

#include "common/status.h"
#include "common/thread_pool.h"
#include "discovery/flat_map.h"
#include "discovery/lattice.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace coradd {

namespace {

/// One validated candidate: RHS column with its g3 error.
struct RhsVerdict {
  int rhs = -1;
  double error = 0.0;
};

/// g3 error of lhs -> rhs from the two dense partitions: the fraction of
/// rows outside the per-LHS-group majority RHS value. `counts` and
/// `group_max` are caller-owned scratch reused across RHS columns.
double G3Error(const std::vector<uint32_t>& lhs_groups, uint32_t lhs_num_groups,
               const std::vector<uint32_t>& rhs_groups, FlatCountMap* counts,
               std::vector<uint32_t>* group_max) {
  const size_t n = lhs_groups.size();
  counts->Reset(n);
  for (size_t i = 0; i < n; ++i) {
    // Both group ids are dense and < 2^32: the composite key is exact.
    counts->Add((static_cast<uint64_t>(lhs_groups[i]) << 32) | rhs_groups[i]);
  }
  group_max->assign(lhs_num_groups, 0);
  counts->ForEach([&](uint64_t key, uint32_t cnt) {
    uint32_t& m = (*group_max)[key >> 32];
    m = std::max(m, cnt);
  });
  uint64_t kept = 0;
  for (uint32_t m : *group_max) kept += m;
  return static_cast<double>(n - kept) / static_cast<double>(n);
}

/// Runs fn(i) for i in [0, n): serially when `pool` is null (the 1-thread
/// configuration skips pool construction entirely), else across `pool`.
void RunIndexed(ThreadPool* pool, size_t n,
                const std::function<void(size_t)>& fn) {
  if (pool == nullptr) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->ParallelFor(n, fn);
}

/// The num_threads policy, in one place: 0 = the process-wide shared pool
/// (no per-call thread churn), 1 = inline (null pool, no threads at all),
/// else a private pool of that size (tests pin counts to prove
/// determinism). Returns the pool to use; `local` owns a private one.
ThreadPool* AcquirePool(size_t num_threads,
                        std::unique_ptr<ThreadPool>* local) {
  if (num_threads == 0) return &ThreadPool::Shared();
  if (num_threads == 1) return nullptr;
  *local = std::make_unique<ThreadPool>(num_threads);
  return local->get();
}

void InsertSorted(std::vector<int>* v, int value) {
  auto it = std::lower_bound(v->begin(), v->end(), value);
  if (it == v->end() || *it != value) v->insert(it, value);
}

/// Emits soft correlations from the refined pair partitions: strength
/// (a -> b) = |distinct(a)| / |distinct(a,b)|. Strength exactly 1 means the
/// pair FD held (reported as an FD, not a soft pair); (near-)unique pairs
/// are not correlations.
void HarvestSoftCorrelations(const std::vector<LatticeNode>& pairs,
                             const std::vector<LatticeNode>& singles,
                             double near_key_cutoff,
                             const DependencyMinerOptions& options,
                             std::vector<SoftCorrelation>* soft) {
  for (const LatticeNode& node : pairs) {
    if (node.is_key ||
        static_cast<double>(node.num_groups) > near_key_cutoff) {
      continue;
    }
    const int a = node.cols[0];
    const int b = node.cols[1];
    for (const auto& [from, to] :
         {std::pair<int, int>{a, b}, std::pair<int, int>{b, a}}) {
      const uint32_t from_groups =
          singles[static_cast<size_t>(from)].num_groups;
      if (from_groups == node.num_groups) continue;  // exact pair FD
      const double strength = static_cast<double>(from_groups) /
                              static_cast<double>(node.num_groups);
      if (strength >= options.min_soft_strength) {
        soft->push_back(SoftCorrelation{from, to, strength});
      }
    }
  }
}

}  // namespace

DiscoveredDependencies DependencyMiner::Mine(const MinerInput& input) const {
  DiscoveredDependencies report;
  report.column_names_ = input.column_names;
  report.mined_rows_ = input.NumRows();
  report.source_rows_ = input.source_rows;

  const size_t n = input.NumRows();
  const size_t m = input.NumColumns();
  if (n == 0 || m == 0) return report;
  CORADD_CHECK(n < (1ull << 32));  // dense group ids are 32-bit

  TRACE_SPAN("discovery.mine", {{"rows", static_cast<int64_t>(n)},
                                {"cols", static_cast<int64_t>(m)}});
  auto& reg = obs::MetricsRegistry::Global();
  static obs::Counter& levels_mined =
      *reg.GetCounter("discovery.levels_mined");
  static obs::Counter& nodes_mined = *reg.GetCounter("discovery.lattice_nodes");
  static obs::Counter& fds_found = *reg.GetCounter("discovery.fds_found");

  std::unique_ptr<ThreadPool> local_pool;
  ThreadPool* pool = AcquirePool(options_.num_threads, &local_pool);

  // --- Level 1: one partition per column. ---
  std::vector<LatticeNode> singles(m);
  RunIndexed(pool, m, [&](size_t c) {
    singles[c].cols = {static_cast<int>(c)};
    BuildSingletonPartition(input.columns[c], &singles[c]);
  });

  // Distinct counts above this are "near-keys": almost-unique LHS sets that
  // trivially almost-determine everything, so validating or expanding them
  // buys nothing but AFD spam (the CORDS soft-key exclusion).
  const double near_key_cutoff =
      options_.near_key_fraction * static_cast<double>(n);

  // Classify columns; only "active" ones take part in the lattice. Constant
  // columns are trivially determined by everything; (near-)unique columns
  // would make every LHS containing them a key — all are reported as facts,
  // not as FD spam.
  std::vector<int> active;
  for (size_t c = 0; c < m; ++c) {
    report.set_stats_[singles[c].cols] =
        SetStats{singles[c].num_groups, singles[c].f1, singles[c].f2};
    if (singles[c].num_groups <= 1) {
      report.constants_.push_back(static_cast<int>(c));
    } else if (singles[c].is_key) {
      report.keys_.push_back(singles[c].cols);
    } else if (static_cast<double>(singles[c].num_groups) > near_key_cutoff) {
      report.near_keys_.push_back(static_cast<int>(c));
    } else {
      active.push_back(static_cast<int>(c));
      singles[c].exact_rhs = singles[c].cols;
    }
  }

  // Current lattice level (starting from the active singletons) and the
  // previous one, kept alive because children refine their parents'
  // partitions. Level-1 nodes carry bookkeeping only — their partitions
  // stay in `singles` (copying them would duplicate n entries per active
  // column); PartitionOf resolves the right groups array either way.
  std::vector<LatticeNode> level;
  std::vector<LatticeNode> parents;
  for (int c : active) {
    LatticeNode node = singles[static_cast<size_t>(c)];
    node.groups.clear();
    level.push_back(std::move(node));
  }
  const auto partition_of = [&singles](const LatticeNode& node)
      -> const LatticeNode& {
    return node.groups.empty() && node.cols.size() == 1
               ? singles[static_cast<size_t>(node.cols[0])]
               : node;
  };

  for (size_t arity = 1; arity <= options_.max_lhs_arity; ++arity) {
    if (level.empty()) break;
    TRACE_SPAN("discovery.level",
               {{"arity", static_cast<int64_t>(arity)},
                {"nodes", static_cast<int64_t>(level.size())}});
    levels_mined.Add(1);
    nodes_mined.Add(level.size());

    // Refine partitions (levels >= 2; singletons arrive pre-built) and
    // validate every eligible RHS, in parallel across nodes. Writes are
    // confined to node i / verdict slot i, and all pruning state was merged
    // at the previous barrier, so every thread count yields the same set.
    std::vector<std::vector<RhsVerdict>> verdicts(level.size());
    RunIndexed(pool, level.size(), [&](size_t i) {
      LatticeNode& node = level[i];
      if (node.parent_index >= 0 && node.groups.empty()) {
        RefinePartition(
            partition_of(parents[static_cast<size_t>(node.parent_index)]),
            singles[static_cast<size_t>(node.extension_col)], &node);
      }
      if (node.is_key) return;  // determines everything; reported as a key
      if (static_cast<double>(node.num_groups) > near_key_cutoff) {
        return;  // near-key: only its distinct statistics are worth keeping
      }
      FlatCountMap counts;
      std::vector<uint32_t> group_max;
      for (int r : active) {
        if (std::binary_search(node.exact_rhs.begin(), node.exact_rhs.end(),
                               r)) {
          continue;  // non-minimal: some subset already determines r exactly
        }
        const double error =
            G3Error(partition_of(node).groups, node.num_groups,
                    singles[static_cast<size_t>(r)].groups, &counts,
                    &group_max);
        if (error <= options_.afd_error_threshold) {
          verdicts[i].push_back(RhsVerdict{r, error});
        }
      }
    });

    // Barrier reached: merge verdicts in deterministic node order.
    for (size_t i = 0; i < level.size(); ++i) {
      LatticeNode& node = level[i];
      report.set_stats_[node.cols] =
          SetStats{node.num_groups, node.f1, node.f2};
      if (node.is_key) {
        report.keys_.push_back(node.cols);
        continue;
      }
      if (static_cast<double>(node.num_groups) > near_key_cutoff) {
        node.is_key = true;  // prune expansion like a key, but not keys()
        continue;
      }
      for (const RhsVerdict& v : verdicts[i]) {
        if (v.error == 0.0) {
          report.fds_.push_back(FunctionalDependency{node.cols, v.rhs, 0.0});
          InsertSorted(&node.exact_rhs, v.rhs);
        } else if (!std::binary_search(node.afd_rhs.begin(),
                                       node.afd_rhs.end(), v.rhs)) {
          // A subset AFD subsumes this one; only new AFDs are reported.
          report.fds_.push_back(
              FunctionalDependency{node.cols, v.rhs, v.error});
          InsertSorted(&node.afd_rhs, v.rhs);
        }
      }
    }

    // Soft correlations fall out of the pair partitions.
    if (arity == 2) {
      HarvestSoftCorrelations(level, singles, near_key_cutoff, options_,
                              &report.soft_);
    }

    if (arity == options_.max_lhs_arity) break;
    std::vector<LatticeNode> next = ExpandLattice(level, active);
    parents = std::move(level);  // keep partitions alive for refinement
    level = std::move(next);
  }

  // An arity cap of 1 never builds the pair level the soft correlations
  // come from; build it here (partitions only — no FD validation) so
  // min_soft_strength is honored at every cap.
  if (options_.max_lhs_arity == 1 && !level.empty()) {
    std::vector<LatticeNode> pairs = ExpandLattice(level, active);
    RunIndexed(pool, pairs.size(), [&](size_t i) {
      RefinePartition(
          partition_of(level[static_cast<size_t>(pairs[i].parent_index)]),
          singles[static_cast<size_t>(pairs[i].extension_col)], &pairs[i]);
    });
    for (const LatticeNode& node : pairs) {
      report.set_stats_[node.cols] =
          SetStats{node.num_groups, node.f1, node.f2};
    }
    HarvestSoftCorrelations(pairs, singles, near_key_cutoff, options_,
                            &report.soft_);
  }

  fds_found.Add(report.fds_.size());
  report.Finish();
  return report;
}

std::vector<int> DependencyMiner::ColumnsToVerify(
    const DiscoveredDependencies& report) {
  std::vector<int> cols;
  for (const FunctionalDependency& fd : report.fds()) {
    if (!fd.exact()) continue;
    cols.push_back(fd.rhs);
    cols.insert(cols.end(), fd.lhs.begin(), fd.lhs.end());
  }
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return cols;
}

size_t DependencyMiner::VerifyExactFds(const MinerInput& full,
                                       DiscoveredDependencies* report) const {
  CORADD_CHECK(report != nullptr);
  CORADD_CHECK(full.column_names == report->column_names());
  if (report->fds_.empty()) return 0;
  TRACE_SPAN("discovery.verify_exact_fds",
             {{"fds", static_cast<int64_t>(report->fds_.size())}});

  // Full-row singleton partitions, but only for columns some exact FD
  // touches. `full` may carry values for just those columns.
  std::vector<size_t> exact_idx;
  std::vector<char> needed(full.NumColumns(), 0);
  for (size_t i = 0; i < report->fds_.size(); ++i) {
    const FunctionalDependency& fd = report->fds_[i];
    if (!fd.exact()) continue;
    exact_idx.push_back(i);
    needed[static_cast<size_t>(fd.rhs)] = 1;
    for (int c : fd.lhs) needed[static_cast<size_t>(c)] = 1;
  }
  if (exact_idx.empty()) return 0;

  size_t n = 0;
  for (size_t c = 0; c < needed.size(); ++c) {
    if (!needed[c]) continue;
    if (n == 0) n = full.columns[c].size();
    CORADD_CHECK(full.columns[c].size() == n);  // sparse inputs must align
  }
  if (n == 0) return 0;
  CORADD_CHECK(n < (1ull << 32));

  std::unique_ptr<ThreadPool> local_pool;
  ThreadPool* pool = AcquirePool(options_.num_threads, &local_pool);

  std::vector<size_t> needed_cols;
  for (size_t c = 0; c < needed.size(); ++c) {
    if (needed[c]) needed_cols.push_back(c);
  }
  std::vector<LatticeNode> singles(full.NumColumns());
  RunIndexed(pool, needed_cols.size(), [&](size_t i) {
    const size_t c = needed_cols[i];
    singles[c].cols = {static_cast<int>(c)};
    BuildSingletonPartition(full.columns[c], &singles[c]);
  });

  // One pass per FD: refine the LHS partition column by column, then
  // measure its g3 against the RHS partition. Slot-per-FD writes keep any
  // pool size deterministic.
  std::vector<double> errors(exact_idx.size(), 0.0);
  RunIndexed(pool, exact_idx.size(), [&](size_t k) {
    const FunctionalDependency& fd = report->fds_[exact_idx[k]];
    const LatticeNode* lhs = &singles[static_cast<size_t>(fd.lhs[0])];
    LatticeNode refined;
    for (size_t j = 1; j < fd.lhs.size(); ++j) {
      LatticeNode next;
      RefinePartition(*lhs, singles[static_cast<size_t>(fd.lhs[j])], &next);
      refined = std::move(next);
      lhs = &refined;
    }
    FlatCountMap counts;
    std::vector<uint32_t> group_max;
    errors[k] = G3Error(lhs->groups, lhs->num_groups,
                        singles[static_cast<size_t>(fd.rhs)].groups, &counts,
                        &group_max);
  });

  // Demote in deterministic report order; drop above the AFD threshold.
  size_t changed = 0;
  std::vector<FunctionalDependency> kept;
  kept.reserve(report->fds_.size());
  size_t k = 0;
  for (size_t i = 0; i < report->fds_.size(); ++i) {
    FunctionalDependency fd = report->fds_[i];
    if (k < exact_idx.size() && exact_idx[k] == i) {
      const double error = errors[k++];
      if (error != 0.0) {
        ++changed;
        if (error > options_.afd_error_threshold) continue;  // dropped
        fd.error = error;
      }
    }
    kept.push_back(std::move(fd));
  }
  report->fds_ = std::move(kept);
  report->Finish();
  return changed;
}

}  // namespace coradd
