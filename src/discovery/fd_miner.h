// Lattice-based dependency miner (TANE-family, cf. Desbordante; Hermit,
// arXiv:1903.11203, motivates the soft-correlation output): given a
// column-major row set, discovers
//   * exact functional dependencies (no violating rows among the mined set),
//   * approximate FDs whose g3 error — the fraction of rows one would have
//     to delete for the FD to hold — is within a configurable threshold,
//   * CORDS-style soft correlation strengths for attribute pairs,
// with a configurable cap on LHS arity. Candidate validation at each lattice
// level is partitioned across a ThreadPool; levels synchronize at barriers,
// so the discovered dependency set is identical for every thread count.
//
// Mining over a uniform row sample (the designer's default, via
// MinerInput::FromSynopsis) makes every verdict a sample statement: an FD
// that holds on the full data shows zero violations in any sample, but a
// sample-exact FD may be approximate on the full data. docs/DISCOVERY.md
// discusses the trade-off.
#pragma once

#include <cstddef>

#include "discovery/dependencies.h"
#include "discovery/row_source.h"

namespace coradd {

/// Mining knobs.
struct DependencyMinerOptions {
  /// Maximum LHS size explored in the lattice.
  size_t max_lhs_arity = 2;
  /// Report lhs -> rhs with 0 < g3 error <= threshold as approximate FDs.
  double afd_error_threshold = 0.05;
  /// Worker threads for candidate validation: 0 = the process-wide shared
  /// pool (ThreadPool::Shared), 1 = inline (no pool), else a private pool of
  /// that size. Every setting mines the identical dependency set.
  size_t num_threads = 1;
  /// Only pairs at least this strong are emitted as soft correlations
  /// (distinct-count ratios are still recorded for every validated set).
  double min_soft_strength = 0.25;
  /// LHS sets whose distinct count exceeds this fraction of the mined rows
  /// are "near-keys": within a whisker of unique, so they trivially
  /// almost-determine everything (the CORDS soft-key exclusion). They are
  /// recorded (singletons in near_key_columns(), every set in the distinct
  /// statistics) but neither validated as LHS nor expanded.
  double near_key_fraction = 0.75;
};

/// Mines dependencies from row sets.
class DependencyMiner {
 public:
  explicit DependencyMiner(DependencyMinerOptions options = {})
      : options_(options) {}

  const DependencyMinerOptions& options() const { return options_; }

  /// Runs the lattice search over `input` and returns the report.
  DiscoveredDependencies Mine(const MinerInput& input) const;

  /// Re-checks every exact FD of `report` — typically mined from a sample —
  /// against `full` (all rows of the same relation; column order must match
  /// the report). Each FD costs one pass over its columns: the g3 error is
  /// recomputed from full-row partitions. Sample-exact FDs that are only
  /// approximate on the full data are demoted to AFDs (error updated) or
  /// dropped when the error exceeds afd_error_threshold. Returns the number
  /// demoted or dropped. Supersets pruned as "non-minimal" during sample
  /// mining are not revisited.
  /// `full` may be sparse: only the columns ColumnsToVerify(report) names
  /// need values (MinerInput::FromUniverseColumns builds exactly that),
  /// but all provided columns must have equal row counts.
  size_t VerifyExactFds(const MinerInput& full,
                        DiscoveredDependencies* report) const;

  /// The column indexes VerifyExactFds will read: every LHS/RHS of an
  /// exact FD in `report`, sorted, deduplicated.
  static std::vector<int> ColumnsToVerify(const DiscoveredDependencies& report);

 private:
  DependencyMinerOptions options_;
};

}  // namespace coradd
