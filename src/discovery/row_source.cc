#include "discovery/row_source.h"

#include <algorithm>
#include <unordered_set>

#include "catalog/universe.h"
#include "common/rng.h"
#include "stats/synopsis.h"
#include "storage/clustered_table.h"

namespace coradd {

MinerInput MinerInput::FromUniverse(const Universe& universe, size_t max_rows,
                                    uint64_t seed) {
  MinerInput input;
  input.source_rows = universe.NumRows();
  const size_t total = universe.NumRows();
  const size_t n = (max_rows == 0) ? total : std::min(max_rows, total);

  // Floyd's algorithm, as in Synopsis::Build, for a uniform sample without
  // replacement; degenerates to the identity when n == total.
  std::vector<RowId> chosen;
  chosen.reserve(n);
  if (n == total) {
    for (size_t r = 0; r < total; ++r) chosen.push_back(static_cast<RowId>(r));
  } else {
    Rng rng(seed);
    std::unordered_set<uint64_t> in_sample;
    for (uint64_t j = total - n; j < total; ++j) {
      const uint64_t t = rng.Uniform(j + 1);
      if (in_sample.insert(t).second) {
        chosen.push_back(static_cast<RowId>(t));
      } else {
        in_sample.insert(j);
        chosen.push_back(static_cast<RowId>(j));
      }
    }
    std::sort(chosen.begin(), chosen.end());
  }

  input.column_names.reserve(universe.NumColumns());
  input.columns.resize(universe.NumColumns());
  for (size_t c = 0; c < universe.NumColumns(); ++c) {
    input.column_names.push_back(universe.Column(c).name);
    auto& col = input.columns[c];
    col.reserve(n);
    for (RowId r : chosen) col.push_back(universe.Value(r, static_cast<int>(c)));
  }
  return input;
}

MinerInput MinerInput::FromUniverseColumns(const Universe& universe,
                                           const std::vector<int>& ucols) {
  MinerInput input;
  input.source_rows = universe.NumRows();
  const size_t total = universe.NumRows();
  input.column_names.reserve(universe.NumColumns());
  for (size_t c = 0; c < universe.NumColumns(); ++c) {
    input.column_names.push_back(universe.Column(c).name);
  }
  input.columns.resize(universe.NumColumns());
  for (int uc : ucols) {
    auto& col = input.columns[static_cast<size_t>(uc)];
    col.reserve(total);
    for (size_t r = 0; r < total; ++r) {
      col.push_back(universe.Value(static_cast<RowId>(r), uc));
    }
  }
  return input;
}

MinerInput MinerInput::FromSynopsis(const Universe& universe,
                                    const Synopsis& synopsis) {
  MinerInput input;
  input.source_rows = synopsis.total_rows();
  input.column_names.reserve(universe.NumColumns());
  input.columns.reserve(universe.NumColumns());
  for (size_t c = 0; c < universe.NumColumns(); ++c) {
    input.column_names.push_back(universe.Column(c).name);
    input.columns.push_back(synopsis.Values(static_cast<int>(c)));
  }
  return input;
}

MinerInput MinerInput::FromTable(const Table& table) {
  MinerInput input;
  input.source_rows = table.NumRows();
  input.column_names.reserve(table.NumColumns());
  input.columns.reserve(table.NumColumns());
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    input.column_names.push_back(table.schema().Column(c).name);
    input.columns.push_back(table.ColumnData(c));
  }
  return input;
}

MinerInput MinerInput::FromClusteredTable(const ClusteredTable& table) {
  return FromTable(table.table());
}

}  // namespace coradd
