#include "discovery/lattice.h"

#include <algorithm>
#include <map>

#include "common/status.h"
#include "discovery/flat_map.h"

namespace coradd {

namespace {

/// Fills num_groups / f1 / f2 / is_key from a completed groups array.
void FinishPartition(LatticeNode* node, uint32_t num_groups) {
  node->num_groups = num_groups;
  std::vector<uint32_t> sizes(num_groups, 0);
  for (uint32_t g : node->groups) ++sizes[g];
  node->f1 = 0;
  node->f2 = 0;
  for (uint32_t s : sizes) {
    if (s == 1) ++node->f1;
    if (s == 2) ++node->f2;
  }
  node->is_key = (static_cast<size_t>(num_groups) == node->groups.size());
}

std::vector<int> MergedSorted(const std::vector<int>& a,
                              const std::vector<int>& b) {
  std::vector<int> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace

void BuildSingletonPartition(const std::vector<int64_t>& values,
                             LatticeNode* out) {
  out->groups.resize(values.size());
  FlatIdMap ids;
  ids.Reset(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out->groups[i] = ids.IdOf(static_cast<uint64_t>(values[i]));
  }
  FinishPartition(out, ids.size());
}

void RefinePartition(const LatticeNode& parent, const LatticeNode& single,
                     LatticeNode* out) {
  const size_t n = parent.groups.size();
  CORADD_CHECK(single.groups.size() == n);
  out->groups.resize(n);
  FlatIdMap ids;
  ids.Reset(n);
  for (size_t i = 0; i < n; ++i) {
    // Exact composite key: both group ids are dense and < 2^32.
    const uint64_t key =
        (static_cast<uint64_t>(parent.groups[i]) << 32) | single.groups[i];
    out->groups[i] = ids.IdOf(key);
  }
  FinishPartition(out, ids.size());
}

std::vector<LatticeNode> ExpandLattice(const std::vector<LatticeNode>& level,
                                       const std::vector<int>& active_cols) {
  std::vector<LatticeNode> next;
  if (level.empty()) return next;

  std::map<std::vector<int>, size_t> survivors;
  for (size_t i = 0; i < level.size(); ++i) {
    if (!level[i].is_key) survivors.emplace(level[i].cols, i);
  }

  for (size_t node_index = 0; node_index < level.size(); ++node_index) {
    const LatticeNode& node = level[node_index];
    if (node.is_key) continue;
    for (int c : active_cols) {
      if (c <= node.cols.back()) continue;
      std::vector<int> child_cols = node.cols;
      child_cols.push_back(c);

      // Apriori: every size-k subset must be a surviving level-k node.
      LatticeNode child;
      child.cols = child_cols;
      child.parent_index = static_cast<int>(node_index);
      child.extension_col = c;
      bool viable = true;
      for (size_t drop = 0; drop < child_cols.size(); ++drop) {
        std::vector<int> subset;
        subset.reserve(child_cols.size() - 1);
        for (size_t j = 0; j < child_cols.size(); ++j) {
          if (j != drop) subset.push_back(child_cols[j]);
        }
        auto it = survivors.find(subset);
        if (it == survivors.end()) {
          viable = false;
          break;
        }
        const LatticeNode& sub = level[it->second];
        child.exact_rhs = MergedSorted(child.exact_rhs, sub.exact_rhs);
        child.afd_rhs = MergedSorted(child.afd_rhs, sub.afd_rhs);
      }
      if (viable) next.push_back(std::move(child));
    }
  }
  return next;
}

}  // namespace coradd
