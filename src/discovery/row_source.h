// Row sources for the dependency miner: a column-major snapshot of the rows
// to mine, decoupled from where they came from. Adapters build one from a
// pre-joined Universe (full scan or uniform row sample), from an existing
// table Synopsis (the designer's default: mining piggybacks on the sample
// the stats layer already drew), or from a physical Table / ClusteredTable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace coradd {

class ClusteredTable;
class Synopsis;
class Table;
class Universe;

/// The rows the miner validates candidates against, column-major.
struct MinerInput {
  std::vector<std::string> column_names;
  /// columns[c][i] = value of mined row i in column c.
  std::vector<std::vector<int64_t>> columns;
  /// Rows in the underlying relation (== mined rows for full scans; larger
  /// when the input is a sample). Used to scale distinct-count estimates.
  uint64_t source_rows = 0;

  size_t NumRows() const { return columns.empty() ? 0 : columns[0].size(); }
  size_t NumColumns() const { return columns.size(); }

  /// Every column of `universe`, all rows (exact mining) or a uniform
  /// sample without replacement of `max_rows` rows when 0 < max_rows < N.
  static MinerInput FromUniverse(const Universe& universe, size_t max_rows = 0,
                                 uint64_t seed = 42);

  /// All rows of only the listed universe columns; the other column slots
  /// stay empty (names are still carried for all columns, so indexes line
  /// up with reports mined from the full universe). The FD verification
  /// pass uses this to avoid duplicating every column it will never read.
  static MinerInput FromUniverseColumns(const Universe& universe,
                                        const std::vector<int>& ucols);

  /// The rows a Synopsis already sampled from `universe` (no extra scan).
  static MinerInput FromSynopsis(const Universe& universe,
                                 const Synopsis& synopsis);

  /// Every column and row of a physical table.
  static MinerInput FromTable(const Table& table);

  /// The heap rows of a clustered table (physical order is irrelevant to
  /// dependency mining).
  static MinerInput FromClusteredTable(const ClusteredTable& table);
};

}  // namespace coradd
