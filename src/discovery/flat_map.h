// Open-addressing hash tables for the miner's hot loops. Candidate
// validation performs hundreds of millions of (group, value) count/lookup
// operations per mining run; linear-probing tables over flat arrays are
// several times faster than std::unordered_map there and reusable across
// candidates without reallocation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace coradd {

/// Counts occurrences of 64-bit keys. Reset() + Add()*; iterate via ForEach.
class FlatCountMap {
 public:
  /// Clears the table and sizes it for ~`expected` distinct keys.
  void Reset(size_t expected) {
    size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    if (cap != keys_.size()) {
      keys_.resize(cap);
      counts_.assign(cap, 0);
    } else {
      std::fill(counts_.begin(), counts_.end(), 0u);
    }
    mask_ = cap - 1;
  }

  void Add(uint64_t key) {
    size_t i = HashU64(key) & mask_;
    while (counts_[i] != 0 && keys_[i] != key) i = (i + 1) & mask_;
    keys_[i] = key;
    ++counts_[i];
  }

  /// Calls fn(key, count) for every occupied slot.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (size_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] != 0) fn(keys_[i], counts_[i]);
    }
  }

 private:
  std::vector<uint64_t> keys_;
  std::vector<uint32_t> counts_;
  size_t mask_ = 0;
};

/// Assigns dense ids (0, 1, 2, ...) to 64-bit keys in insertion order.
class FlatIdMap {
 public:
  static constexpr uint32_t kEmpty = 0xffffffffu;

  void Reset(size_t expected) {
    size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    if (cap != keys_.size()) {
      keys_.resize(cap);
      ids_.assign(cap, kEmpty);
    } else {
      std::fill(ids_.begin(), ids_.end(), kEmpty);
    }
    mask_ = cap - 1;
    next_ = 0;
  }

  /// Returns the id of `key`, assigning the next dense id on first sight.
  uint32_t IdOf(uint64_t key) {
    size_t i = HashU64(key) & mask_;
    while (ids_[i] != kEmpty && keys_[i] != key) i = (i + 1) & mask_;
    if (ids_[i] == kEmpty) {
      keys_[i] = key;
      ids_[i] = next_++;
    }
    return ids_[i];
  }

  uint32_t size() const { return next_; }

 private:
  std::vector<uint64_t> keys_;
  std::vector<uint32_t> ids_;
  size_t mask_ = 0;
  uint32_t next_ = 0;
};

}  // namespace coradd
