// A small fixed-size worker pool — the first multi-threaded component in
// the codebase. The dependency miner partitions its candidate lattice across
// the pool for parallel validation; levels are separated by barriers
// (ParallelFor blocks), so all cross-level pruning decisions are taken on
// fully merged results and the mined output is identical for any pool size.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace coradd {

/// Fixed set of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = one per hardware thread, minimum 1).
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains outstanding tasks, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues one task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void WaitIdle();

  /// Runs fn(i) for every i in [0, n), spread across the pool, and blocks
  /// until all iterations complete. Iterations are claimed in chunks via an
  /// atomic cursor; writers must target disjoint state per index (the miner
  /// writes result slot i from iteration i only).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Picks a chunk size that gives each worker several chunks to steal.
  static size_t ChunkSize(size_t n, size_t num_threads);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable queue_cv_;  ///< Signals workers: task or stop.
  std::condition_variable idle_cv_;   ///< Signals waiters: queue drained.
  size_t in_flight_ = 0;              ///< Tasks popped but not yet finished.
  bool stop_ = false;
};

}  // namespace coradd
