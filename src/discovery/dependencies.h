// The miner's output: exact functional dependencies, approximate FDs under
// a g3 error threshold, soft correlation strengths for attribute pairs, and
// the per-attribute-set distinct statistics gathered while validating the
// lattice. The report is self-describing (column names travel with it) so
// consumers — CorrelationCatalog overlays, designers, reports — can map its
// column indexes back onto universe attributes by name.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace coradd {

/// One mined dependency lhs -> rhs. `error` is the g3 measure: the minimum
/// fraction of mined rows to delete for the FD to hold exactly (0 == exact).
struct FunctionalDependency {
  std::vector<int> lhs;  ///< Sorted column indexes into the mined input.
  int rhs = -1;
  double error = 0.0;

  bool exact() const { return error == 0.0; }
};

/// CORDS-style soft correlation between two attributes:
/// strength(from -> to) = |distinct(from)| / |distinct(from, to)|.
struct SoftCorrelation {
  int from = -1;
  int to = -1;
  double strength = 0.0;
};

/// Sample statistics of one attribute set, collected from its lattice
/// partition: enough to re-run GEE/AE scaling on the mined rows.
struct SetStats {
  uint64_t distinct = 0;  ///< Distinct joint values among the mined rows.
  uint64_t f1 = 0;        ///< Values occurring exactly once.
  uint64_t f2 = 0;        ///< Values occurring exactly twice.
};

/// Everything one mining run discovered about one relation.
class DiscoveredDependencies {
 public:
  const std::vector<std::string>& column_names() const { return column_names_; }
  size_t mined_rows() const { return mined_rows_; }
  uint64_t source_rows() const { return source_rows_; }

  /// Minimal dependencies, exact first, in deterministic lattice order.
  const std::vector<FunctionalDependency>& fds() const { return fds_; }
  /// Pairs with strength >= the mining threshold and no exact pairwise FD.
  const std::vector<SoftCorrelation>& soft_correlations() const {
    return soft_;
  }
  /// Columns with a single value across the mined rows (excluded from the
  /// lattice; trivially determined by everything).
  const std::vector<int>& constant_columns() const { return constants_; }
  /// Minimal column sets whose values were unique across the mined rows.
  /// They determine every attribute; reported here instead of as FD spam.
  const std::vector<std::vector<int>>& keys() const { return keys_; }
  /// Columns distinct on more than a near_key_fraction of the mined rows:
  /// excluded from the LHS lattice (CORDS-style soft-key exclusion).
  const std::vector<int>& near_key_columns() const { return near_keys_; }

  /// Index of `name` in column_names(), or -1.
  int ColumnIndex(const std::string& name) const;

  /// The mined FD lhs -> rhs (lhs in any order), or nullptr.
  const FunctionalDependency* FindFd(std::vector<int> lhs, int rhs) const;

  /// True iff some mined exact FD (or constant/key fact) proves
  /// `determinant` (or a subset of it) -> rhs.
  bool DeterminesExactly(const std::vector<int>& determinant, int rhs) const;

  /// Distinct statistics of an attribute set if its lattice node was
  /// validated, else nullptr.
  const SetStats* StatsForSet(std::vector<int> cols) const;

  /// strength(from -> to) over the mined rows, derived from mined facts:
  /// 1.0 when exact FDs cover `to`, the distinct-count ratio when both set
  /// statistics are known, FD-error based otherwise. Negative when the
  /// mined lattice has no evidence (caller should fall back).
  double StrengthFor(const std::vector<int>& from,
                     const std::vector<int>& to) const;

  /// Human-readable summary; at most `max_fds` dependency lines.
  std::string ToString(size_t max_fds = 32) const;

 private:
  friend class DependencyMiner;

  /// Called once by the miner: orders fds_ (exact first, stable) and builds
  /// the per-RHS lookup index.
  void Finish();

  std::vector<std::string> column_names_;
  size_t mined_rows_ = 0;
  uint64_t source_rows_ = 0;
  std::vector<FunctionalDependency> fds_;
  std::vector<SoftCorrelation> soft_;
  std::vector<int> constants_;
  std::vector<int> near_keys_;
  std::vector<std::vector<int>> keys_;
  /// Sorted attribute set -> partition statistics (every validated node).
  std::map<std::vector<int>, SetStats> set_stats_;
  /// rhs -> indexes into fds_ (for subset-determination lookups).
  std::map<int, std::vector<size_t>> fds_by_rhs_;
};

}  // namespace coradd
