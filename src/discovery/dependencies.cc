#include "discovery/dependencies.h"

#include <algorithm>

#include "common/string_util.h"

namespace coradd {

namespace {

std::vector<int> Normalized(std::vector<int> cols) {
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return cols;
}

/// True iff sorted `a` is a subset of sorted `b`.
bool IsSubset(const std::vector<int>& a, const std::vector<int>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace

int DiscoveredDependencies::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (column_names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

const FunctionalDependency* DiscoveredDependencies::FindFd(
    std::vector<int> lhs, int rhs) const {
  lhs = Normalized(std::move(lhs));
  for (const auto& fd : fds_) {
    if (fd.rhs == rhs && fd.lhs == lhs) return &fd;
  }
  return nullptr;
}

bool DiscoveredDependencies::DeterminesExactly(
    const std::vector<int>& determinant, int rhs) const {
  const std::vector<int> det = Normalized(determinant);
  if (std::binary_search(det.begin(), det.end(), rhs)) return true;  // trivial
  if (std::find(constants_.begin(), constants_.end(), rhs) !=
      constants_.end()) {
    return true;
  }
  for (const auto& key : keys_) {
    if (IsSubset(key, det)) return true;  // a key determines everything
  }
  auto it = fds_by_rhs_.find(rhs);
  if (it == fds_by_rhs_.end()) return false;
  for (size_t idx : it->second) {
    const FunctionalDependency& fd = fds_[idx];
    if (fd.exact() && IsSubset(fd.lhs, det)) return true;
  }
  return false;
}

const SetStats* DiscoveredDependencies::StatsForSet(
    std::vector<int> cols) const {
  auto it = set_stats_.find(Normalized(std::move(cols)));
  return it == set_stats_.end() ? nullptr : &it->second;
}

double DiscoveredDependencies::StrengthFor(const std::vector<int>& from,
                                           const std::vector<int>& to) const {
  const std::vector<int> det = Normalized(from);
  // 1) Exact coverage: every target attribute follows from `from` by mined
  //    exact FDs, so the joint count equals the determinant's count.
  bool all_exact = true;
  for (int t : Normalized(to)) {
    if (!DeterminesExactly(det, t)) {
      all_exact = false;
      break;
    }
  }
  if (all_exact) return 1.0;

  // 2) Distinct-count ratio when both lattice nodes were validated.
  std::vector<int> joint = det;
  joint.insert(joint.end(), to.begin(), to.end());
  joint = Normalized(std::move(joint));
  const SetStats* d_from = StatsForSet(det);
  const SetStats* d_joint = StatsForSet(joint);
  if (d_from != nullptr && d_joint != nullptr && d_joint->distinct > 0) {
    return std::min(1.0, static_cast<double>(d_from->distinct) /
                             static_cast<double>(d_joint->distinct));
  }

  // 3) Single-target AFD: error e means a 1-e fraction of rows follow the
  //    majority mapping, a serviceable strength estimate.
  if (to.size() == 1) {
    auto it = fds_by_rhs_.find(to[0]);
    if (it != fds_by_rhs_.end()) {
      double best = -1.0;
      for (size_t idx : it->second) {
        const FunctionalDependency& fd = fds_[idx];
        if (IsSubset(fd.lhs, det)) best = std::max(best, 1.0 - fd.error);
      }
      if (best >= 0.0) return best;
    }
  }
  return -1.0;  // no mined evidence
}

void DiscoveredDependencies::Finish() {
  std::stable_partition(fds_.begin(), fds_.end(),
                        [](const FunctionalDependency& fd) { return fd.exact(); });
  fds_by_rhs_.clear();
  for (size_t i = 0; i < fds_.size(); ++i) {
    fds_by_rhs_[fds_[i].rhs].push_back(i);
  }
}

std::string DiscoveredDependencies::ToString(size_t max_fds) const {
  auto render_set = [this](const std::vector<int>& cols) {
    std::vector<std::string> names;
    for (int c : cols) names.push_back(column_names_[static_cast<size_t>(c)]);
    return Join(names, ",");
  };
  std::string out =
      StrFormat("DiscoveredDependencies over %zu rows (of %llu): %zu FDs, "
                "%zu soft pairs, %zu keys, %zu constant columns\n",
                mined_rows_, static_cast<unsigned long long>(source_rows_),
                fds_.size(), soft_.size(), keys_.size(), constants_.size());
  size_t shown = 0;
  for (const auto& fd : fds_) {
    if (shown++ >= max_fds) {
      out += StrFormat("  ... %zu more\n", fds_.size() - max_fds);
      break;
    }
    out += StrFormat("  %s -> %s%s\n", render_set(fd.lhs).c_str(),
                     column_names_[static_cast<size_t>(fd.rhs)].c_str(),
                     fd.exact()
                         ? ""
                         : StrFormat("  (afd, error %.4f)", fd.error).c_str());
  }
  return out;
}

}  // namespace coradd
