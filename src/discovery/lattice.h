// The candidate lattice the miner walks: level k holds one node per size-k
// LHS attribute set, carrying its row partition (group id per mined row) and
// the pruning bookkeeping inherited from its subsets (TANE-style):
//   * exact_rhs — attributes already determined exactly by some subset;
//     candidates (node, r in exact_rhs) are non-minimal and skipped,
//   * afd_rhs — attributes within the error threshold for some subset; a
//     superset AFD is weaker news and not reported (an exact superset FD
//     still is),
//   * is_key — the partition separates every row; every extension is also a
//     key, so the node is reported as a key and not expanded.
#pragma once

#include <cstdint>
#include <vector>

namespace coradd {

/// One LHS candidate with its partition and inherited pruning state.
struct LatticeNode {
  std::vector<int> cols;  ///< Sorted attribute set.
  /// groups[i] = partition group of mined row i under `cols` (dense ids,
  /// 0..num_groups-1, in first-occurrence order — deterministic).
  std::vector<uint32_t> groups;
  uint32_t num_groups = 0;
  uint64_t f1 = 0;  ///< Groups of size 1.
  uint64_t f2 = 0;  ///< Groups of size 2.
  bool is_key = false;
  std::vector<int> exact_rhs;  ///< Sorted; includes members of `cols`.
  std::vector<int> afd_rhs;    ///< Sorted.
  /// How ExpandLattice derived this node: the generating node of the
  /// previous level (cols minus its maximum) and the extension column. The
  /// miner refines parent ⨯ singleton(extension) to get the partition.
  int parent_index = -1;
  int extension_col = -1;
};

/// Builds level k+1 candidates from the surviving (non-key) nodes of level
/// k: each node is extended with every active singleton column greater than
/// its maximum (so each set is generated once), and kept only if all of its
/// size-k subsets survive in `level` (apriori). Subset exact/afd sets are
/// merged into the child; partitions are left empty for the miner to fill.
/// Output order is deterministic: by (node index, extension column).
std::vector<LatticeNode> ExpandLattice(const std::vector<LatticeNode>& level,
                                       const std::vector<int>& active_cols);

/// Dense partition of the rows under (parent groups refined by one singleton
/// partition): result.groups[i] enumerates distinct (parent.groups[i],
/// single.groups[i]) pairs in first-occurrence order. Also fills num_groups
/// and the f1/f2 group-size tallies.
void RefinePartition(const LatticeNode& parent, const LatticeNode& single,
                     LatticeNode* out);

/// Builds a singleton node's partition from raw column values.
void BuildSingletonPartition(const std::vector<int64_t>& values,
                             LatticeNode* out);

}  // namespace coradd
