#include "cm/correlation_map.h"

#include <algorithm>
#include <map>

#include "common/status.h"

namespace coradd {

namespace {
int64_t BucketOf(int64_t v, int64_t width) {
  if (width <= 1) return v;
  // Floor division so negative domains bucket consistently.
  int64_t q = v / width;
  if (v % width != 0 && v < 0) --q;
  return q;
}
}  // namespace

CorrelationMap::CorrelationMap(
    std::vector<std::string> key_columns,
    const std::vector<const std::vector<int64_t>*>& key_values,
    std::vector<uint32_t> key_byte_sizes, const ClusteredTable& table,
    CmBucketing bucketing)
    : key_columns_(std::move(key_columns)),
      key_byte_sizes_(std::move(key_byte_sizes)),
      bucketing_(bucketing) {
  CORADD_CHECK(!key_columns_.empty());
  CORADD_CHECK(key_values.size() == key_columns_.size());
  CORADD_CHECK(key_byte_sizes_.size() == key_columns_.size());
  CORADD_CHECK(bucketing_.clustered_bucket_pages > 0);

  const size_t n = table.NumRows();
  std::map<std::vector<int64_t>, std::vector<uint32_t>> acc;
  std::vector<int64_t> key(key_columns_.size());
  for (RowId r = 0; r < n; ++r) {
    for (size_t k = 0; k < key_values.size(); ++k) {
      key[k] = BucketOf((*key_values[k])[r], bucketing_.key_bucket_width);
    }
    const uint32_t cbucket = static_cast<uint32_t>(
        table.PageOfRow(r) / bucketing_.clustered_bucket_pages);
    auto& buckets = acc[key];
    if (buckets.empty() || buckets.back() != cbucket) {
      // Rows arrive in clustered order, so bucket ids per key are
      // non-decreasing; dedupe against the tail only.
      if (!std::binary_search(buckets.begin(), buckets.end(), cbucket)) {
        buckets.push_back(cbucket);
      }
    }
  }

  entries_.reserve(acc.size());
  for (auto& [k, buckets] : acc) {
    total_pairs_ += buckets.size();
    entries_.push_back(Entry{k, std::move(buckets)});
  }
}

uint64_t CorrelationMap::SizeBytes() const {
  uint32_t key_bytes = 0;
  for (uint32_t b : key_byte_sizes_) key_bytes += b;
  // One stored pair per (key bucket, clustered bucket): key + 4-byte bucket.
  return total_pairs_ * (key_bytes + 4);
}

std::vector<uint32_t> CorrelationMap::LookupBuckets(
    const std::vector<std::function<bool(int64_t, int64_t)>>& matches) const {
  CORADD_CHECK(matches.size() == key_columns_.size());
  std::vector<uint32_t> out;
  const int64_t w = std::max<int64_t>(1, bucketing_.key_bucket_width);
  for (const Entry& e : entries_) {
    bool ok = true;
    for (size_t k = 0; k < matches.size(); ++k) {
      const int64_t lo = e.key_buckets[k] * w;
      const int64_t hi = lo + w - 1;
      if (!matches[k](lo, hi)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      out.insert(out.end(), e.clustered_buckets.begin(),
                 e.clustered_buckets.end());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

PageRun CorrelationMap::BucketPages(uint32_t bucket,
                                    uint64_t num_pages) const {
  const uint64_t first =
      static_cast<uint64_t>(bucket) * bucketing_.clustered_bucket_pages;
  const uint64_t last = std::min(
      num_pages == 0 ? 0 : num_pages - 1,
      first + bucketing_.clustered_bucket_pages - 1);
  return PageRun{first, last};
}

}  // namespace coradd
