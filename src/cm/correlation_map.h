// Correlation Maps (A-1; Kimura et al., VLDB 2009): compressed secondary
// indexes that map each distinct (bucketed) value of an unclustered
// attribute to the set of co-occurring clustered-key buckets. A clustered
// bucket is a fixed run of heap pages (A-1.1's "bucket ID" column, ~20
// pages each); lookups return bucket ids which the executor turns into
// page runs — the superset-scan-then-filter plan of Figure 12.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/clustered_table.h"

namespace coradd {

/// Bucketing parameters of a CM (A-1.1).
struct CmBucketing {
  /// Truncation width on each key attribute's value domain (1 = exact
  /// distinct values). Wider buckets shrink the CM but add false positives.
  int64_t key_bucket_width = 1;
  /// Heap pages per clustered bucket id.
  uint32_t clustered_bucket_pages = 8;
};

/// A materialized correlation map over one or more key columns of a
/// clustered table.
class CorrelationMap {
 public:
  /// Builds the CM by one pass over `table` (already clustered).
  /// `key_values[k][row]` = value of key column k for table row `row`.
  /// `key_byte_sizes[k]` = declared width of key column k (for sizing).
  CorrelationMap(std::vector<std::string> key_columns,
                 const std::vector<const std::vector<int64_t>*>& key_values,
                 std::vector<uint32_t> key_byte_sizes,
                 const ClusteredTable& table, CmBucketing bucketing);

  const std::vector<std::string>& key_columns() const { return key_columns_; }
  const CmBucketing& bucketing() const { return bucketing_; }

  /// Number of (key-bucket, clustered-bucket) pairs stored.
  uint64_t NumPairs() const { return total_pairs_; }
  uint64_t NumKeyEntries() const { return entries_.size(); }

  /// Declared size in bytes: one (key tuple, bucket id) pair per entry.
  uint64_t SizeBytes() const;

  /// Returns the sorted clustered bucket ids whose key bucket *may* contain
  /// a value satisfying all of `matches` (one callback per key column:
  /// given the inclusive value range [lo, hi] covered by a key bucket,
  /// return true if a matching value could lie inside).
  /// Scanning all entries is deliberate: a CM is small by construction.
  std::vector<uint32_t> LookupBuckets(
      const std::vector<std::function<bool(int64_t, int64_t)>>& matches) const;

  /// Page range covered by a clustered bucket id.
  PageRun BucketPages(uint32_t bucket, uint64_t num_pages) const;

 private:
  struct Entry {
    std::vector<int64_t> key_buckets;      ///< Truncated key values.
    std::vector<uint32_t> clustered_buckets;  ///< Sorted, unique.
  };

  std::vector<std::string> key_columns_;
  std::vector<uint32_t> key_byte_sizes_;
  CmBucketing bucketing_;
  std::vector<Entry> entries_;
  uint64_t total_pairs_ = 0;
};

}  // namespace coradd
