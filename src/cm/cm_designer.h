// The CM Designer (A-1.2): given an MV design and the queries it serves,
// choose which correlation maps to build — trying attribute combinations of
// each query's predicates and bucketing widths, picking the fastest design
// whose estimated size fits the per-CM space limit (1 MB per CM in the
// paper). Sizes are estimated with AE over the table synopsis.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cm/correlation_map.h"
#include "cost/correlation_cost_model.h"

namespace coradd {

/// A chosen CM design (not yet materialized).
struct CmSpec {
  std::vector<std::string> key_columns;
  CmBucketing bucketing;
  uint64_t est_size_bytes = 0;
  double est_cost_seconds = 0.0;
  std::string designed_for_query;
  /// Mined strength(key_columns -> clustered key) when the stats carry a
  /// DiscoveredDependencies report: the discovery subsystem's cross-check of
  /// the synopsis-driven choice (1.0 = mined exact FD, i.e. the CM keys pin
  /// down the clustered position). Negative when nothing was mined.
  double mined_strength = -1.0;

  std::string ToString() const;
};

/// Knobs for CM design.
struct CmDesignerOptions {
  /// Per-CM space limit (the paper uses 1 MB per CM).
  uint64_t per_cm_budget_bytes = 1ull << 20;
  uint32_t clustered_bucket_pages = 8;
  /// Key bucket widths to sweep, in increasing order.
  std::vector<int64_t> key_bucket_widths = {1, 2, 4, 8, 16, 32, 64, 128};
};

/// Designs CMs for MV candidates.
class CmDesigner {
 public:
  CmDesigner(const StatsRegistry* registry, const CorrelationCostModel* model,
             CmDesignerOptions options = {});

  /// For each query the MV serves, picks the fastest CM (attribute
  /// combination + bucketing) within budget; deduplicates identical key
  /// sets across queries. Queries best served by the clustered index get no
  /// CM. Returns the chosen specs.
  std::vector<CmSpec> Design(const MvSpec& spec,
                             const std::vector<const Query*>& queries) const;

  /// Estimated full-data size of a CM via AE over the synopsis.
  uint64_t EstimateCmSize(const MvSpec& spec,
                          const std::vector<std::string>& key_columns,
                          const CmBucketing& bucketing) const;

 private:
  const StatsRegistry* registry_;
  const CorrelationCostModel* model_;
  CmDesignerOptions options_;
};

}  // namespace coradd
