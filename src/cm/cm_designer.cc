#include "cm/cm_designer.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/hash.h"
#include "common/string_util.h"
#include "stats/ae_estimator.h"

namespace coradd {

std::string CmSpec::ToString() const {
  std::string out = StrFormat("CM{(%s), key_width=%lld, %s, for %s",
                              Join(key_columns, ",").c_str(),
                              static_cast<long long>(bucketing.key_bucket_width),
                              HumanBytes(est_size_bytes).c_str(),
                              designed_for_query.c_str());
  if (mined_strength >= 0.0) {
    out += StrFormat(", mined_strength=%.3f", mined_strength);
  }
  return out + "}";
}

CmDesigner::CmDesigner(const StatsRegistry* registry,
                       const CorrelationCostModel* model,
                       CmDesignerOptions options)
    : registry_(registry), model_(model), options_(std::move(options)) {
  CORADD_CHECK(registry != nullptr);
  CORADD_CHECK(model != nullptr);
}

uint64_t CmDesigner::EstimateCmSize(const MvSpec& spec,
                                    const std::vector<std::string>& key_columns,
                                    const CmBucketing& bucketing) const {
  const UniverseStats* stats = registry_->ForFact(spec.fact_table);
  CORADD_CHECK(stats != nullptr);
  const Synopsis& syn = stats->synopsis();
  const size_t n = syn.sample_rows();
  if (n == 0) return 0;

  // Clustered-order rank of each synopsis row (approximates its position,
  // hence its page and clustered bucket, in the hypothetical MV).
  std::vector<int> cluster_cols;
  for (const auto& c : spec.clustered_key) {
    cluster_cols.push_back(stats->universe().ColumnIndex(c));
  }
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    for (int c : cluster_cols) {
      const int64_t va = syn.Values(c)[a];
      const int64_t vb = syn.Values(c)[b];
      if (va != vb) return va < vb;
    }
    return a < b;
  });
  std::vector<uint32_t> rank(n);
  for (size_t pos = 0; pos < n; ++pos) rank[order[pos]] = static_cast<uint32_t>(pos);

  const DiskParams& disk = stats->options().disk;
  const double pages = static_cast<double>(MvHeapPages(spec, *stats, disk));
  const double num_buckets =
      std::max(1.0, pages / bucketing.clustered_bucket_pages);

  std::vector<int> key_cols;
  uint32_t key_bytes = 0;
  for (const auto& c : key_columns) {
    const int idx = stats->universe().ColumnIndex(c);
    CORADD_CHECK(idx >= 0);
    key_cols.push_back(idx);
    key_bytes += stats->universe().Column(static_cast<size_t>(idx)).byte_size;
  }

  // Distinct (bucketed key tuple, clustered bucket) pairs in the sample,
  // scaled to the full table with AE.
  const int64_t w = std::max<int64_t>(1, bucketing.key_bucket_width);
  std::vector<uint64_t> pair_hashes;
  pair_hashes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t h = 0x5bd1e995u;
    for (int c : key_cols) {
      h = HashCombine(h, static_cast<uint64_t>(syn.Values(c)[i] / w));
    }
    const uint64_t cbucket = static_cast<uint64_t>(
        static_cast<double>(rank[i]) / static_cast<double>(n) * num_buckets);
    h = HashCombine(h, cbucket);
    pair_hashes.push_back(h);
  }
  const auto profile =
      SampleFrequencyProfile::FromHashes(pair_hashes, stats->num_rows());
  const double pairs = EstimateDistinctAe(profile);
  return static_cast<uint64_t>(pairs) * (key_bytes + 4);
}

std::vector<CmSpec> CmDesigner::Design(
    const MvSpec& spec, const std::vector<const Query*>& queries) const {
  std::vector<CmSpec> chosen;
  std::map<std::vector<std::string>, size_t> dedupe;

  for (const Query* q : queries) {
    if (q == nullptr) continue;
    const CostBreakdown best = model_->Cost(*q, spec);
    if (!best.feasible() || best.path != AccessPath::kSecondary) {
      continue;  // clustered or full scan already optimal; no CM needed.
    }
    // Marginal predicted wins are estimation noise; a CM must clearly beat
    // the sequential scan to be worth building (and the executor applies
    // the same margin when choosing plans).
    const UniverseStats* stats = registry_->ForFact(spec.fact_table);
    const double fullscan =
        MvFullScanSeconds(spec, *stats, stats->options().disk) +
        stats->options().disk.seek_seconds;
    if (best.seconds * 1.25 >= fullscan) continue;
    // The model's winning secondary path names the attribute combination.
    const std::vector<std::string>& key_cols = best.secondary_columns;
    if (key_cols.empty()) continue;

    auto it = dedupe.find(key_cols);
    if (it != dedupe.end()) continue;  // already chosen for another query.

    // Sweep key bucket widths until the estimated size fits the budget
    // (wider buckets only shrink the CM, at the price of false positives).
    CmSpec cm;
    cm.key_columns = key_cols;
    cm.designed_for_query = q->id;
    cm.est_cost_seconds = best.seconds;
    bool fits = false;
    for (int64_t w : options_.key_bucket_widths) {
      cm.bucketing.key_bucket_width = w;
      cm.bucketing.clustered_bucket_pages = options_.clustered_bucket_pages;
      cm.est_size_bytes = EstimateCmSize(spec, key_cols, cm.bucketing);
      if (cm.est_size_bytes <= options_.per_cm_budget_bytes) {
        fits = true;
        break;
      }
    }
    if (!fits) continue;  // No bucketing fits: skip this CM.
    // Cross-check against mined dependencies when the discovery subsystem
    // has run: how strongly the mined data says these keys determine the
    // clustered key (and hence how tight the CM's bucket lists will be).
    if (stats->mined() != nullptr) {
      std::vector<int> key_ucols, clustered_ucols;
      bool resolved = !spec.clustered_key.empty();
      for (const auto& c : key_cols) {
        const int idx = stats->universe().ColumnIndex(c);
        resolved &= idx >= 0;
        key_ucols.push_back(idx);
      }
      for (const auto& c : spec.clustered_key) {
        const int idx = stats->universe().ColumnIndex(c);
        resolved &= idx >= 0;
        clustered_ucols.push_back(idx);
      }
      if (resolved) {
        // MinedStrength, not Strength: the field must report mined evidence
        // only, never the seeded AE fallback.
        cm.mined_strength =
            stats->correlations().MinedStrength(key_ucols, clustered_ucols);
      }
    }
    dedupe[key_cols] = chosen.size();
    chosen.push_back(std::move(cm));
  }
  return chosen;
}

}  // namespace coradd
