// Tests for src/common: Status/Result semantics, deterministic RNG streams,
// hashing helpers, and string formatting. Part of the smoke ctest label.
#include <gtest/gtest.h>

#include <set>

#include "common/hash.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace coradd {
namespace {

// ---------- Status / Result ----------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::OutOfRange("").code(),      Status::AlreadyExists("").code(),
      Status::Internal("").code(),        Status::NotImplemented("").code(),
      Status::ResourceExhausted("").code()};
  EXPECT_EQ(codes.size(), 7u);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

// ---------- Rng ----------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(RngTest, ZipfStaysInRangeAndSkews) {
  Rng rng(19);
  uint64_t low = 0;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = rng.Zipf(1000, 0.8);
    ASSERT_LT(v, 1000u);
    if (v < 100) ++low;
  }
  // Skewed: the first 10% of ranks receive far more than 10% of the mass.
  EXPECT_GT(low, 20000 * 0.3);
}

TEST(RngTest, ZipfSingleElement) {
  Rng rng(21);
  EXPECT_EQ(rng.Zipf(1, 1.2), 0u);
}

// ---------- Hash ----------

TEST(HashTest, HashU64IsDeterministicAndSpreads) {
  EXPECT_EQ(HashU64(42), HashU64(42));
  EXPECT_NE(HashU64(42), HashU64(43));
  // Low bits of sequential keys should differ (avalanche).
  int same_low = 0;
  for (uint64_t i = 0; i < 64; ++i) {
    if ((HashU64(i) & 0xff) == (HashU64(i + 1) & 0xff)) ++same_low;
  }
  EXPECT_LT(same_low, 5);
}

TEST(HashTest, HashCombineOrderSensitive) {
  const uint64_t a = HashCombine(HashCombine(0, 1), 2);
  const uint64_t b = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(a, b);
}

TEST(HashTest, HashBytes) {
  EXPECT_EQ(HashBytes("abc"), HashBytes("abc"));
  EXPECT_NE(HashBytes("abc"), HashBytes("abd"));
  EXPECT_NE(HashBytes(""), HashBytes("a"));
}

// ---------- String utils ----------

TEST(StringUtilTest, StrFormatBasic) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, StrFormatLongOutput) {
  const std::string s = StrFormat("%0512d", 1);
  EXPECT_EQ(s.size(), 512u);
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(HumanBytes(3ull << 30), "3.00 GB");
}

TEST(StringUtilTest, HumanSeconds) {
  EXPECT_EQ(HumanSeconds(0.5e-4), "50.0 us");
  EXPECT_EQ(HumanSeconds(0.25), "250.0 ms");
  EXPECT_EQ(HumanSeconds(2.5), "2.50 s");
  EXPECT_EQ(HumanSeconds(600), "10.0 min");
}

TEST(StringUtilTest, Split) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

}  // namespace
}  // namespace coradd
